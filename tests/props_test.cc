// Physical-property tests, including the paper's key satisfaction rule:
// hash partitioning on any non-empty subset S of C satisfies a partitioning
// requirement on C (rows equal on C are equal on S, hence co-located).

#include <gtest/gtest.h>

#include <random>

#include "props/physical_props.h"

namespace scx {
namespace {

TEST(PartitioningReqTest, NoneIsSatisfiedByAnything) {
  PartitioningReq req = PartitioningReq::None();
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Random()));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Serial()));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({1}))));
}

TEST(PartitioningReqTest, SerialRequiresSerial) {
  PartitioningReq req = PartitioningReq::Serial();
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Serial()));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Random()));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({1}))));
}

TEST(PartitioningReqTest, SubsetRuleFromThePaper) {
  // Paper Sec. I: "if the data is partitioned on {B}, or any subset of
  // {A,B,C}, it is also partitioned on {A,B,C}".
  PartitioningReq req = PartitioningReq::SubsetOf(ColumnSet::Of({1, 2, 3}));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({2}))));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({1, 3}))));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({1, 2, 3}))));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({4}))));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({1, 4}))));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Random()));
  // A single partition trivially co-locates everything.
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Serial()));
  // Hash on the empty set is not a valid partitioning scheme.
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Hash(ColumnSet())));
}

TEST(PartitioningReqTest, ExactRequiresExact) {
  PartitioningReq req = PartitioningReq::Exactly(ColumnSet::Of({2}));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({2}))));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({1, 2}))));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Serial()));
}

TEST(SortSpecTest, PrefixSatisfaction) {
  SortSpec delivered{{1, 2, 3}};
  EXPECT_TRUE(delivered.SatisfiesPrefix(SortSpec{}));
  EXPECT_TRUE(delivered.SatisfiesPrefix(SortSpec{{1}}));
  EXPECT_TRUE(delivered.SatisfiesPrefix(SortSpec{{1, 2}}));
  EXPECT_TRUE(delivered.SatisfiesPrefix(SortSpec{{1, 2, 3}}));
  EXPECT_FALSE(delivered.SatisfiesPrefix(SortSpec{{2}}));
  EXPECT_FALSE(delivered.SatisfiesPrefix(SortSpec{{1, 3}}));
  EXPECT_FALSE(delivered.SatisfiesPrefix(SortSpec{{1, 2, 3, 4}}));
}

TEST(PropertySatisfiedTest, BothDimensionsMustHold) {
  RequiredProps req{PartitioningReq::SubsetOf(ColumnSet::Of({1, 2})),
                    SortSpec{{1}}};
  DeliveredProps good{Partitioning::Hash(ColumnSet::Of({1})),
                      SortSpec{{1, 2}}};
  DeliveredProps bad_sort{Partitioning::Hash(ColumnSet::Of({1})),
                          SortSpec{{2}}};
  DeliveredProps bad_part{Partitioning::Random(), SortSpec{{1, 2}}};
  EXPECT_TRUE(PropertySatisfied(req, good));
  EXPECT_FALSE(PropertySatisfied(req, bad_sort));
  EXPECT_FALSE(PropertySatisfied(req, bad_part));
}

TEST(PropsTest, HashAndEqualityConsistent) {
  RequiredProps a{PartitioningReq::SubsetOf(ColumnSet::Of({1, 2})),
                  SortSpec{{3}}};
  RequiredProps b{PartitioningReq::SubsetOf(ColumnSet::Of({1, 2})),
                  SortSpec{{3}}};
  RequiredProps c{PartitioningReq::Exactly(ColumnSet::Of({1, 2})),
                  SortSpec{{3}}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.HashValue(), b.HashValue());
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(PropsTest, ToStringRendersRangeNotation) {
  RequiredProps req{PartitioningReq::SubsetOf(ColumnSet::Of({0, 1})), {}};
  // Matches the paper's [∅,{...}] range notation for subset requirements.
  EXPECT_NE(req.ToString().find("[∅,"), std::string::npos);
}

// Property-style sweep: subset satisfaction is exactly set inclusion.
class SubsetSatisfactionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubsetSatisfactionSweep, HashSatisfiesSubsetIffIncluded) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> coin(0, 1);
  for (int trial = 0; trial < 50; ++trial) {
    ColumnSet required, delivered;
    for (ColumnId c = 0; c < 8; ++c) {
      if (coin(rng)) required.Insert(c);
      if (coin(rng)) delivered.Insert(c);
    }
    if (required.Empty() || delivered.Empty()) continue;
    PartitioningReq req = PartitioningReq::SubsetOf(required);
    bool satisfied = req.SatisfiedBy(Partitioning::Hash(delivered));
    EXPECT_EQ(satisfied, delivered.IsSubsetOf(required))
        << "delivered=" << delivered.ToString()
        << " required=" << required.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetSatisfactionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: transitivity — if S satisfies req(C) and C ⊆ D then S
// satisfies req(D).
class SubsetTransitivitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SubsetTransitivitySweep, SatisfactionIsMonotoneInRequirement) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 977);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int trial = 0; trial < 50; ++trial) {
    ColumnSet s, c, extra;
    for (ColumnId i = 0; i < 8; ++i) {
      if (coin(rng)) s.Insert(i);
      if (coin(rng)) c.Insert(i);
      if (coin(rng)) extra.Insert(i);
    }
    if (s.Empty() || c.Empty()) continue;
    ColumnSet d = c.Union(extra);
    Partitioning hash_s = Partitioning::Hash(s);
    if (PartitioningReq::SubsetOf(c).SatisfiedBy(hash_s)) {
      EXPECT_TRUE(PartitioningReq::SubsetOf(d).SatisfiedBy(hash_s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetTransitivitySweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace scx
