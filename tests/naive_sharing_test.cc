// Tests for the kNaiveSharing baseline (the related-work strategy of the
// paper's Secs. I-II): shared subexpressions execute once but with the
// locally optimal plan, so consumers pay compensation above the spool.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "exec/executor.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

TEST(NaiveSharingTest, OrderedBetweenConventionalAndCse) {
  Engine engine(MakePaperCatalog());
  for (const char* script : {kScriptS1, kScriptS2, kScriptS3, kScriptS4}) {
    auto compiled = engine.Compile(script);
    ASSERT_TRUE(compiled.ok());
    auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
    auto naive = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
    auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
    ASSERT_TRUE(conv.ok() && naive.ok() && cse.ok());
    // Sharing helps; cost-based enforcement helps at least as much.
    EXPECT_LT(naive->cost(), conv->cost());
    EXPECT_LE(cse->cost(), naive->cost() + 1e-9);
  }
}

TEST(NaiveSharingTest, CostBasedStrictlyBeatsNaiveOnConflicts) {
  // S1's consumers have conflicting partitioning requirements ({A,B} vs
  // {B,C}); the locally optimal shared plan serves neither for free.
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto naive = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(naive.ok() && cse.ok());
  EXPECT_LT(cse->cost(), naive->cost() * 0.98);
}

TEST(NaiveSharingTest, OneRoundPerLca) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS3);  // two LCAs
  ASSERT_TRUE(compiled.ok());
  auto naive = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->result.diagnostics.rounds_executed, 2);
}

TEST(NaiveSharingTest, SharesTheSpool) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto naive = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
  ASSERT_TRUE(naive.ok());
  // The plan contains exactly one extract and one spool (single execution).
  int extracts = 0, spools = 0;
  std::vector<PhysicalNodePtr> stack = {naive->plan()};
  std::set<const PhysicalNode*> seen;
  while (!stack.empty()) {
    PhysicalNodePtr n = stack.back();
    stack.pop_back();
    if (!seen.insert(n.get()).second) continue;
    if (n->kind == PhysicalOpKind::kExtract) ++extracts;
    if (n->kind == PhysicalOpKind::kSpool) ++spools;
    for (const auto& c : n->children) stack.push_back(c);
  }
  EXPECT_EQ(extracts, 1);
  EXPECT_EQ(spools, 1);
}

TEST(NaiveSharingTest, ExecutesCorrectly) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(4000), config);
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  auto naive = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
  ASSERT_TRUE(conv.ok() && naive.ok());
  auto conv_m = engine.Execute(*conv);
  auto naive_m = engine.Execute(*naive);
  ASSERT_TRUE(conv_m.ok() && naive_m.ok());
  EXPECT_TRUE(SameOutputs(*conv_m, *naive_m));
  EXPECT_EQ(naive_m->spool_executions, 1);
}

}  // namespace
}  // namespace scx
