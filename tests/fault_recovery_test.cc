// Fault-injected spool recovery tests (docs/architecture.md §17): machine
// failures at operator-pass granularity must be invisible — the recovered
// run stays bit-identical to the clean run in raw outputs and every legacy
// counter, whether the lost partition is re-read from a surviving spool
// (run-local or cross-query) or deterministically recomputed. Stragglers
// only stretch the simulated makespan, never results.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "exec/executor.h"
#include "exec/spool_cache.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

OptimizerConfig SmallCluster() {
  OptimizerConfig config;
  config.cluster.machines = 4;
  config.cluster.exec_threads = 1;
  config.num_threads = 1;
  return config;
}

/// Optimizes `script` in kCse mode against the shared execution catalog.
PhysicalNodePtr CsePlan(Engine* engine, const std::string& script) {
  auto compiled = engine->Compile(script);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine->Optimize(*compiled, OptimizerMode::kCse);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  return optimized->plan();
}

/// The fault-vs-clean identity contract: raw output rows and every legacy
/// counter equal; the fault counters are additive-only on top.
void ExpectCleanIdentity(const ExecMetrics& clean, const ExecMetrics& faulted,
                         const std::string& label) {
  EXPECT_EQ(faulted.rows_extracted, clean.rows_extracted) << label;
  EXPECT_EQ(faulted.bytes_extracted, clean.bytes_extracted) << label;
  EXPECT_EQ(faulted.rows_shuffled, clean.rows_shuffled) << label;
  EXPECT_EQ(faulted.bytes_shuffled, clean.bytes_shuffled) << label;
  EXPECT_EQ(faulted.rows_spooled, clean.rows_spooled) << label;
  EXPECT_EQ(faulted.bytes_spooled, clean.bytes_spooled) << label;
  EXPECT_EQ(faulted.spool_executions, clean.spool_executions) << label;
  EXPECT_EQ(faulted.spool_reads, clean.spool_reads) << label;
  EXPECT_EQ(faulted.spool_cache_hits, clean.spool_cache_hits) << label;
  EXPECT_EQ(faulted.spool_bytes_evicted, clean.spool_bytes_evicted) << label;
  EXPECT_EQ(faulted.operator_invocations, clean.operator_invocations)
      << label;
  EXPECT_EQ(faulted.rows_output, clean.rows_output) << label;
  EXPECT_EQ(faulted.outputs, clean.outputs)
      << label << ": raw output rows diverged";
}

// A single machine failure at EVERY pass of the plan — which walks the
// injection point through every operator class the plan contains (extract,
// filter, aggregate, exchange, spool, spool-scan, join, ...) — must recover
// to the clean run, on both the batch pipeline and the batch_size=1 row
// path, and every injected failure must be recovered.
TEST(FaultRecoveryTest, FailureAtEveryPassRecoversIdentically) {
  for (int batch_size : {0, 1}) {
    OptimizerConfig config = SmallCluster();
    config.cluster.batch_size = batch_size;
    Engine engine(MakeExecutionCatalog(5000), config);
    PhysicalNodePtr plan = CsePlan(&engine, kScriptS1);
    ASSERT_NE(plan, nullptr);

    Executor clean_exec(config.cluster);
    auto clean = clean_exec.Execute(plan);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    ASSERT_GT(clean->operator_invocations, 0);

    int64_t injected_total = 0;
    for (int64_t pass = 1; pass <= clean->operator_invocations; ++pass) {
      ClusterConfig cluster = config.cluster;
      cluster.fault_plan.failures = {{pass, /*machine=*/1}};
      Executor exec(cluster);
      auto faulted = exec.Execute(plan);
      std::string label = "batch_size=" + std::to_string(batch_size) +
                          " pass=" + std::to_string(pass);
      ASSERT_TRUE(faulted.ok()) << label << ": "
                                << faulted.status().ToString();
      ExpectCleanIdentity(*clean, *faulted, label);
      EXPECT_EQ(faulted->partitions_recovered,
                faulted->machine_failures_injected)
          << label;
      injected_total += faulted->machine_failures_injected;
    }
    // Output/Sequence passes carry no recoverable data, but most passes do:
    // the sweep must actually have injected failures.
    EXPECT_GT(injected_total, 0) << "batch_size=" << batch_size;
  }
}

// Across the every-pass sweep both recovery strategies must fire: a spool
// whose data survives in the run-local cache is re-read (recovery_spool_hits
// with zero recomputation), while a lost extract partition can only be
// recomputed.
TEST(FaultRecoveryTest, BothRecoveryStrategiesAreExercised) {
  OptimizerConfig config = SmallCluster();
  Engine engine(MakeExecutionCatalog(5000), config);
  PhysicalNodePtr plan = CsePlan(&engine, kScriptS1);
  ASSERT_NE(plan, nullptr);

  Executor clean_exec(config.cluster);
  auto clean = clean_exec.Execute(plan);
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->spool_executions, 0)
      << "S1's CSE plan must spool the shared aggregate";

  bool spool_served = false;
  bool recomputed = false;
  for (int64_t pass = 1; pass <= clean->operator_invocations; ++pass) {
    ClusterConfig cluster = config.cluster;
    cluster.fault_plan.failures = {{pass, /*machine=*/0}};
    Executor exec(cluster);
    auto faulted = exec.Execute(plan);
    ASSERT_TRUE(faulted.ok()) << "pass=" << pass;
    if (faulted->machine_failures_injected == 0) continue;
    if (faulted->recovery_spool_hits > 0 && faulted->rows_recomputed == 0) {
      spool_served = true;
    }
    if (faulted->rows_recomputed > 0) recomputed = true;
  }
  EXPECT_TRUE(spool_served)
      << "no failure was recovered from a surviving spool";
  EXPECT_TRUE(recomputed) << "no failure required recomputation";
}

// Turning off recovery spool reads (the pure-recompute strategy) still
// recovers bit-identically, and the spool-assisted strategy never
// recomputes more rows or moves more bytes than it (oracle 9's bound).
TEST(FaultRecoveryTest, SpoolAssistedRecoveryBoundedByPureRecompute) {
  OptimizerConfig config = SmallCluster();
  Engine engine(MakeExecutionCatalog(5000), config);
  PhysicalNodePtr plan = CsePlan(&engine, kScriptS2);
  ASSERT_NE(plan, nullptr);

  Executor clean_exec(config.cluster);
  auto clean = clean_exec.Execute(plan);
  ASSERT_TRUE(clean.ok());

  ClusterConfig faulted_cluster = config.cluster;
  faulted_cluster.fault_plan.seed = 7;
  faulted_cluster.fault_plan.failure_prob = 0.1;
  faulted_cluster.fault_plan.max_failures = 4;
  Executor assisted_exec(faulted_cluster);
  auto assisted = assisted_exec.Execute(plan);
  ASSERT_TRUE(assisted.ok());
  ASSERT_GT(assisted->machine_failures_injected, 0)
      << "seed 7 at p=0.1 should kill at least one machine; if the plan "
         "shape changed, pick a new seed";
  ExpectCleanIdentity(*clean, *assisted, "spool-assisted");

  ClusterConfig pure_cluster = faulted_cluster;
  pure_cluster.fault_plan.disable_recovery_spool_reads = true;
  Executor pure_exec(pure_cluster);
  auto pure = pure_exec.Execute(plan);
  ASSERT_TRUE(pure.ok());
  ExpectCleanIdentity(*clean, *pure, "pure-recompute");

  // Identical failure sets by construction (FailsAt ignores the strategy).
  EXPECT_EQ(pure->machine_failures_injected,
            assisted->machine_failures_injected);
  EXPECT_LE(assisted->rows_recomputed, pure->rows_recomputed);
  EXPECT_LE(assisted->recovery_bytes_moved, pure->recovery_bytes_moved);
}

// Randomized fault plans (Bernoulli kills + stragglers) stay bit-identical
// to the clean baseline at hostile thread/batch/morsel knobs, and the
// faulted run itself is deterministic: same plan, same counters, fault
// counters included.
TEST(FaultRecoveryTest, RandomFaultsBitIdenticalAcrossKnobs) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  PhysicalNodePtr plan = CsePlan(&engine, kScriptS1);
  ASSERT_NE(plan, nullptr);

  FaultPlan fp;
  fp.seed = 11;
  fp.failure_prob = 0.05;
  fp.max_failures = 4;
  fp.straggler_prob = 0.25;
  fp.straggler_factor = 8.0;

  ClusterConfig base = SmallCluster().cluster;
  Executor clean_exec(base);
  auto clean = clean_exec.Execute(plan);
  ASSERT_TRUE(clean.ok());

  ExecMetrics reference;
  bool have_reference = false;
  for (int threads : {1, 4}) {
    for (int batch_size : {0, 61}) {
      ClusterConfig cluster = base;
      cluster.exec_threads = threads;
      cluster.batch_size = batch_size;
      cluster.morsel_size = threads == 4 ? 53 : 0;
      cluster.fault_plan = fp;
      Executor exec(cluster);
      auto faulted = exec.Execute(plan);
      std::string label = "threads=" + std::to_string(threads) +
                          " batch_size=" + std::to_string(batch_size);
      ASSERT_TRUE(faulted.ok()) << label;
      ExpectCleanIdentity(*clean, *faulted, label);
      EXPECT_EQ(faulted->partitions_recovered,
                faulted->machine_failures_injected)
          << label;
      // Both knob combinations run the batch pipeline, so the fault
      // counters (pass-structural) must agree exactly across all of them.
      if (!have_reference) {
        reference = *faulted;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(faulted->machine_failures_injected,
                reference.machine_failures_injected)
          << label;
      EXPECT_EQ(faulted->rows_recomputed, reference.rows_recomputed)
          << label;
      EXPECT_EQ(faulted->recovery_spool_hits, reference.recovery_spool_hits)
          << label;
      EXPECT_EQ(faulted->recovery_bytes_moved,
                reference.recovery_bytes_moved)
          << label;
      EXPECT_EQ(faulted->sim_makespan_ticks, reference.sim_makespan_ticks)
          << label;
    }
  }
}

// Stragglers are simulation-only: with the multiplier armed the makespan
// grows deterministically, while results and every legacy counter stay
// bit-identical to the clean run.
TEST(FaultRecoveryTest, StragglersStretchMakespanOnly) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  PhysicalNodePtr plan = CsePlan(&engine, kScriptS1);
  ASSERT_NE(plan, nullptr);

  ClusterConfig base = SmallCluster().cluster;
  Executor clean_exec(base);
  auto clean = clean_exec.Execute(plan);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->sim_makespan_ticks, 0)
      << "no fault plan, no simulated clock";

  auto ticks_at = [&](double factor) {
    ClusterConfig cluster = base;
    cluster.fault_plan.seed = 3;
    cluster.fault_plan.straggler_prob = 0.5;
    cluster.fault_plan.straggler_factor = factor;
    Executor exec(cluster);
    auto run = exec.Execute(plan);
    EXPECT_TRUE(run.ok());
    ExpectCleanIdentity(*clean, *run,
                        "straggler_factor=" + std::to_string(factor));
    EXPECT_EQ(run->machine_failures_injected, 0);
    return run->sim_makespan_ticks;
  };

  int64_t uniform = ticks_at(1.0);   // armed plan, but no machine slowed
  int64_t stretched = ticks_at(8.0);
  EXPECT_GT(uniform, 0);
  EXPECT_GT(stretched, uniform)
      << "an 8x straggler must stretch the simulated makespan";
  EXPECT_EQ(stretched, ticks_at(8.0)) << "simulated clock is deterministic";
}

// A machine failure in the middle of a cross-query batched run: the merged
// plan's lost partition may be served by the cross-query spool cache or the
// merged run-local spools; per-script demultiplexed outputs must stay
// bit-identical to the clean merged run.
TEST(FaultRecoveryTest, BatchedSubmissionRecoversAcrossQueries) {
  std::vector<std::string> scripts = {kScriptS1, kScriptS2};

  Engine clean_engine(MakeExecutionCatalog(5000), SmallCluster());
  auto clean = clean_engine.SubmitBatch(scripts, OptimizerMode::kCse);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  OptimizerConfig faulted_config = SmallCluster();
  faulted_config.cluster.fault_plan.seed = 5;
  faulted_config.cluster.fault_plan.failure_prob = 0.1;
  faulted_config.cluster.fault_plan.max_failures = 6;
  Engine fault_engine(MakeExecutionCatalog(5000), faulted_config);
  auto faulted = fault_engine.SubmitBatch(scripts, OptimizerMode::kCse);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  ASSERT_GT(faulted->metrics.machine_failures_injected, 0)
      << "seed 5 at p=0.1 should kill at least one machine; if the merged "
         "plan shape changed, pick a new seed";
  EXPECT_EQ(faulted->metrics.partitions_recovered,
            faulted->metrics.machine_failures_injected);
  ExpectCleanIdentity(clean->metrics, faulted->metrics, "merged");
  ASSERT_EQ(faulted->script_outputs.size(), clean->script_outputs.size());
  for (size_t i = 0; i < clean->script_outputs.size(); ++i) {
    EXPECT_EQ(faulted->script_outputs[i], clean->script_outputs[i])
        << "script " << i;
  }

  // Warm resubmission under the same fault plan: recovery re-reads may now
  // be served by the cross-query cache; outputs must not move.
  auto again = fault_engine.SubmitBatch(scripts, OptimizerMode::kCse);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < clean->script_outputs.size(); ++i) {
    EXPECT_EQ(again->script_outputs[i], faulted->script_outputs[i])
        << "script " << i << " (warm resubmission)";
  }
}

// An inert FaultPlan (all zeros) is Enabled()==false and must leave the
// executor on the exact clean code path: no fault counters, no simulated
// clock, bit-identical metrics.
TEST(FaultRecoveryTest, ZeroFaultPlanIsInert) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  PhysicalNodePtr plan = CsePlan(&engine, kScriptS1);
  ASSERT_NE(plan, nullptr);

  FaultPlan inert;
  EXPECT_FALSE(inert.Enabled());

  ClusterConfig base = SmallCluster().cluster;
  Executor clean_exec(base);
  auto clean = clean_exec.Execute(plan);
  ASSERT_TRUE(clean.ok());

  ClusterConfig with_plan = base;
  with_plan.fault_plan = inert;
  Executor exec(with_plan);
  auto run = exec.Execute(plan);
  ASSERT_TRUE(run.ok());
  ExpectCleanIdentity(*clean, *run, "inert plan");
  EXPECT_EQ(run->machine_failures_injected, 0);
  EXPECT_EQ(run->partitions_recovered, 0);
  EXPECT_EQ(run->rows_recomputed, 0);
  EXPECT_EQ(run->recovery_spool_hits, 0);
  EXPECT_EQ(run->recovery_bytes_moved, 0);
  EXPECT_EQ(run->sim_makespan_ticks, 0);
}

}  // namespace
}  // namespace scx
