// Randomized end-to-end property tests: for generated scripts, the
// CSE-optimized plan must (1) produce exactly the same outputs as the
// conventional plan on the simulated cluster, (2) never cost more, and
// (3) never shuffle more bytes.

#include <gtest/gtest.h>

#include <random>

#include "api/engine.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

/// Generates a random multi-output script over test.log / test2.log:
/// a few base aggregates, consumers with varied grouping sets, optional
/// filters, optional joins between consumers.
std::string RandomScript(std::mt19937* rng) {
  std::uniform_int_distribution<int> consumers_dist(2, 4);
  std::uniform_int_distribution<int> coin(0, 1);
  const char* group_sets[] = {"A,B", "B,C", "A,C", "B", "A", "C", "A,B,C"};
  const char* agg_fns[] = {"Sum", "Min", "Max", "Count"};

  std::string script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n";
  if (coin(*rng)) {
    script += "F0 = SELECT A,B,C,D FROM R0 WHERE D > 50;\n";
  } else {
    script += "F0 = SELECT A,B,C,D FROM R0 WHERE A > 2;\n";
  }
  script += "R = SELECT A,B,C,Sum(D) AS S FROM F0 GROUP BY A,B,C;\n";

  int consumers = consumers_dist(*rng);
  std::vector<std::string> names;
  for (int i = 0; i < consumers; ++i) {
    std::string name = "C" + std::to_string(i);
    const char* groups = group_sets[(*rng)() % 7];
    const char* fn = agg_fns[(*rng)() % 4];
    std::string arg = std::string(fn) == "Count" ? "*" : "S";
    script += name + " = SELECT " + groups + "," + fn + "(" + arg +
              ") AS T FROM R GROUP BY " + groups + ";\n";
    names.push_back(name);
  }
  // Maybe join the first two consumers on B when both group on it.
  bool joined = false;
  if (consumers >= 2 && coin(*rng)) {
    script +=
        "J = SELECT C0.B,C0.T AS T0,C1.T AS T1 FROM C0,C1 "
        "WHERE C0.B=C1.B;\n";
    // Only valid when both C0 and C1 have a B column; group sets 0,1,3,6
    // contain B. Regenerate deterministically instead of validating: use a
    // bind check below (invalid scripts are skipped by the caller).
    script += "OUTPUT J TO \"j.out\";\n";
    joined = true;
  }
  for (int i = 0; i < consumers; ++i) {
    if (!joined || i >= 2 || coin(*rng)) {
      script += "OUTPUT " + names[static_cast<size_t>(i)] + " TO \"" +
                names[static_cast<size_t>(i)] + ".out\";\n";
    }
  }
  if (script.find("OUTPUT") == std::string::npos) {
    script += "OUTPUT C0 TO \"C0.out\";\n";
  }
  return script;
}

class RandomScriptEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomScriptEquivalence, CsePlanIsCorrectAndCheaper) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u + 1);
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(4000), config);

  int valid_scripts = 0;
  for (int attempt = 0; attempt < 6 && valid_scripts < 2; ++attempt) {
    std::string script = RandomScript(&rng);
    auto compiled = engine.Compile(script);
    if (!compiled.ok()) continue;  // e.g. join side lacks B
    ++valid_scripts;

    auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
    auto naive = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
    auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
    ASSERT_TRUE(conv.ok()) << script << conv.status().ToString();
    ASSERT_TRUE(naive.ok()) << script << naive.status().ToString();
    ASSERT_TRUE(cse.ok()) << script << cse.status().ToString();

    // Cost: exploiting common subexpressions never hurts (the optimizer
    // keeps the phase-1 plan when sharing does not pay off), and the
    // cost-based strategy never loses to naive local-optimum sharing.
    EXPECT_LE(cse->cost(), conv->cost() * 1.0001) << script;
    EXPECT_LE(cse->cost(), naive->cost() * 1.0001) << script;

    auto conv_m = engine.Execute(*conv);
    auto naive_m = engine.Execute(*naive);
    auto cse_m = engine.Execute(*cse);
    ASSERT_TRUE(conv_m.ok()) << script << conv_m.status().ToString();
    ASSERT_TRUE(naive_m.ok()) << script << naive_m.status().ToString();
    ASSERT_TRUE(cse_m.ok()) << script << cse_m.status().ToString();
    EXPECT_TRUE(SameOutputs(*conv_m, *cse_m)) << script;
    EXPECT_TRUE(SameOutputs(*conv_m, *naive_m)) << script;
    EXPECT_LE(cse_m->bytes_shuffled, conv_m->bytes_shuffled) << script;
  }
  EXPECT_GT(valid_scripts, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScriptEquivalence,
                         ::testing::Range(1, 13));

// Sweeping cluster sizes: plan choice changes, results must not.
class ClusterSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClusterSizeSweep, ResultsInvariantUnderClusterSize) {
  OptimizerConfig config;
  config.cluster.machines = GetParam();
  Engine engine(MakeExecutionCatalog(3000), config);
  auto compiled = engine.Compile(kScriptS2);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  auto m = engine.Execute(*cse);
  ASSERT_TRUE(m.ok()) << m.status().ToString();

  // Reference: one machine, conventional plan.
  OptimizerConfig serial_cfg;
  serial_cfg.cluster.machines = 1;
  Engine serial(MakeExecutionCatalog(3000), serial_cfg);
  auto sc = serial.Compile(kScriptS2);
  ASSERT_TRUE(sc.ok());
  auto sp = serial.Optimize(*sc, OptimizerMode::kConventional);
  ASSERT_TRUE(sp.ok());
  auto sm = serial.Execute(*sp);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  EXPECT_TRUE(SameOutputs(*m, *sm)) << "machines=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Machines, ClusterSizeSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 31));

}  // namespace
}  // namespace scx
