// Cross-query spool cache and batched-submission tests: resubmission hits,
// catalog-version invalidation, eviction under byte pressure, the run-local
// spool budget, knob-invariance of batched execution, per-script output
// demultiplexing, and the SubmissionQueue front door.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/submission_queue.h"
#include "exec/spool_cache.h"
#include "testing/script_gen.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

OptimizerConfig SmallCluster() {
  OptimizerConfig config;
  config.cluster.machines = 8;
  config.cluster.exec_threads = 1;
  config.num_threads = 1;
  return config;
}

// Two scripts sharing the S1 aggregate's text, plus per-script private
// consumers, so a merged submission has real cross-script sharing.
std::vector<std::string> SharedPairScripts() {
  return {
      R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "a1.out";
OUTPUT R2 TO "a2.out";
)",
      R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R3 = SELECT A,C,Max(S) AS S3 FROM R GROUP BY A,C;
R4 = SELECT A,Sum(S) AS S4 FROM R GROUP BY A;
OUTPUT R3 TO "b1.out";
OUTPUT R4 TO "b2.out";
)"};
}

// Row order within unordered sinks is plan-dependent, so sequential-vs-
// batched comparisons sort rows per path (merged-run-to-merged-run
// comparisons stay raw).
std::map<std::string, std::vector<Row>> Canonical(
    const std::map<std::string, std::vector<Row>>& outputs) {
  std::map<std::string, std::vector<Row>> canon = outputs;
  for (auto& [path, rows] : canon) std::sort(rows.begin(), rows.end());
  return canon;
}

TEST(CrossQueryCacheTest, ResubmissionServesFromCache) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  auto first = engine.SubmitBatch(SharedPairScripts());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->metrics.cross_query_spool_hits, 0)
      << "nothing was cached before the first submission";
  EXPECT_GT(first->metrics.spool_executions, 0)
      << "the shared aggregate should be spooled";

  auto again = engine.SubmitBatch(SharedPairScripts());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_GT(again->metrics.cross_query_spool_hits, 0)
      << "resubmitting the identical batch must hit the cross-query cache";
  // Same engine, same merged plan: the resubmission is bit-identical.
  ASSERT_EQ(again->script_outputs.size(), first->script_outputs.size());
  for (size_t i = 0; i < first->script_outputs.size(); ++i) {
    EXPECT_EQ(again->script_outputs[i], first->script_outputs[i]);
  }
}

TEST(CrossQueryCacheTest, SingleScriptExecuteNeverTouchesCache) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  auto batch = engine.SubmitBatch(SharedPairScripts());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_GT(engine.spool_cache().stats().insertions, 0);

  auto compiled = engine.Compile(SharedPairScripts()[0]);
  ASSERT_TRUE(compiled.ok());
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(optimized.ok());
  SpoolCacheStats before = engine.spool_cache().stats();
  auto metrics = engine.Execute(*optimized);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->cross_query_spool_hits, 0);
  SpoolCacheStats after = engine.spool_cache().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.insertions, before.insertions)
      << "Engine::Execute must stay bit-identical to a fresh engine, so it "
         "can neither read nor fill the cross-query cache";
}

TEST(CrossQueryCacheTest, CatalogVersionInvalidatesEntries) {
  OptimizerConfig config = SmallCluster();
  Engine engine(MakeExecutionCatalog(5000), config);
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(optimized.ok());

  CrossQuerySpoolCache cache(-1);  // unlimited
  Executor warm(config.cluster, &cache, /*catalog_version=*/1);
  auto first = warm.Execute(optimized->plan());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->cross_query_spool_hits, 0);
  ASSERT_GT(cache.stats().insertions, 0);

  // Same catalog version: served from cache.
  Executor same(config.cluster, &cache, /*catalog_version=*/1);
  auto hit = same.Execute(optimized->plan());
  ASSERT_TRUE(hit.ok());
  EXPECT_GT(hit->cross_query_spool_hits, 0);

  // Bumped catalog version: every lookup misses — stale data must never
  // serve a run against a changed catalog.
  Executor bumped(config.cluster, &cache, /*catalog_version=*/2);
  auto miss = bumped.Execute(optimized->plan());
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->cross_query_spool_hits, 0);

  EXPECT_EQ(hit->outputs, first->outputs);
  EXPECT_EQ(miss->outputs, first->outputs);
}

TEST(CrossQueryCacheTest, EvictionUnderPressureKeepsResultsCorrect) {
  OptimizerConfig config = SmallCluster();
  Engine engine(MakeExecutionCatalog(5000), config);
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(optimized.ok());

  Executor reference(config.cluster);
  auto expected = reference.Execute(optimized->plan());
  ASSERT_TRUE(expected.ok());

  CrossQuerySpoolCache tiny(1);  // one byte: every insertion must evict
  Executor pressured(config.cluster, &tiny, /*catalog_version=*/1);
  auto run = pressured.Execute(optimized->plan());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(tiny.stats().evictions, 0);
  EXPECT_GT(tiny.stats().bytes_evicted, 0);
  EXPECT_LE(tiny.stats().bytes_used, tiny.budget_bytes());
  EXPECT_EQ(run->outputs, expected->outputs)
      << "a cache under pressure may forget, never corrupt";
}

TEST(CrossQueryCacheTest, RunLocalBudgetDropsSpoolsNotResults) {
  OptimizerConfig unlimited = SmallCluster();
  unlimited.cluster.spool_cache_bytes = -1;
  Engine reference(MakeExecutionCatalog(5000), unlimited);
  auto compiled = reference.Compile(kScriptS2);
  ASSERT_TRUE(compiled.ok());
  auto optimized = reference.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(optimized.ok());
  auto roomy = reference.Execute(*optimized);
  ASSERT_TRUE(roomy.ok());
  EXPECT_EQ(roomy->spool_bytes_evicted, 0);

  OptimizerConfig strapped = SmallCluster();
  strapped.cluster.spool_cache_bytes = 1;
  Engine engine(MakeExecutionCatalog(5000), strapped);
  auto c2 = engine.Compile(kScriptS2);
  ASSERT_TRUE(c2.ok());
  auto o2 = engine.Optimize(*c2, OptimizerMode::kCse);
  ASSERT_TRUE(o2.ok());
  auto squeezed = engine.Execute(*o2);
  ASSERT_TRUE(squeezed.ok()) << squeezed.status().ToString();
  EXPECT_GT(squeezed->spool_bytes_evicted, 0)
      << "a one-byte run-local budget cannot retain any spool";
  EXPECT_EQ(squeezed->outputs, roomy->outputs);
}

TEST(CrossQueryCacheTest, BatchedOutputsInvariantAcrossExecutionKnobs) {
  GeneratedBatch batch = GenerateScriptBatch(3);
  ASSERT_GE(batch.scripts.size(), 2u);

  // Sequential reference at the default knobs, canonical per-script.
  std::vector<std::map<std::string, std::vector<Row>>> expected;
  {
    Engine engine(batch.catalog, SmallCluster());
    for (const std::string& script : batch.scripts) {
      auto compiled = engine.Compile(script);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
      ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
      auto metrics = engine.Execute(*optimized);
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      expected.push_back(Canonical(metrics->outputs));
    }
  }

  for (int threads : {1, 4}) {
    for (int batch_size : {1, 64}) {
      for (int morsel : {0, 7}) {
        OptimizerConfig config = SmallCluster();
        config.cluster.exec_threads = threads;
        config.cluster.batch_size = batch_size;
        config.cluster.morsel_size = morsel;
        Engine engine(batch.catalog, config);
        auto merged = engine.SubmitBatch(batch.scripts);
        ASSERT_TRUE(merged.ok())
            << "threads=" << threads << " batch=" << batch_size
            << " morsel=" << morsel << ": " << merged.status().ToString();
        ASSERT_EQ(merged->script_outputs.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(Canonical(merged->script_outputs[i]), expected[i])
              << "script " << i << " diverged at threads=" << threads
              << " batch=" << batch_size << " morsel=" << morsel;
        }
      }
    }
  }
}

TEST(CrossQueryCacheTest, CollidingOutputPathsDemuxPerScript) {
  // Both scripts write "report.out", with different contents. Provenance
  // tagging must keep the sinks separate and demux each back to its script.
  std::vector<std::string> scripts = {
      R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;
OUTPUT R TO "report.out";
)",
      R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT B,Max(D) AS M FROM R0 GROUP BY B;
OUTPUT R TO "report.out";
)"};
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  auto merged = engine.SubmitBatch(scripts);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->script_outputs.size(), 2u);
  ASSERT_EQ(merged->script_outputs[0].count("report.out"), 1u);
  ASSERT_EQ(merged->script_outputs[1].count("report.out"), 1u);

  for (size_t i = 0; i < scripts.size(); ++i) {
    Engine alone(MakeExecutionCatalog(5000), SmallCluster());
    auto compiled = alone.Compile(scripts[i]);
    ASSERT_TRUE(compiled.ok());
    auto optimized = alone.Optimize(*compiled, OptimizerMode::kCse);
    ASSERT_TRUE(optimized.ok());
    auto metrics = alone.Execute(*optimized);
    ASSERT_TRUE(metrics.ok());
    EXPECT_EQ(Canonical(merged->script_outputs[i]),
              Canonical(metrics->outputs))
        << "script " << i;
  }
}

TEST(CrossQueryCacheTest, SubmissionQueueFlushPreservesTicketOrder) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  SubmissionQueue queue(&engine, /*max_batch=*/32);
  std::vector<std::string> scripts = SharedPairScripts();
  EXPECT_EQ(queue.Enqueue(scripts[0]), 0u);
  EXPECT_EQ(queue.Enqueue(scripts[1]), 1u);
  EXPECT_EQ(queue.pending(), 2u);

  auto flushed = queue.Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(queue.pending(), 0u);
  ASSERT_EQ(flushed->script_outputs.size(), 2u);
  // Ticket k's outputs carry script k's paths.
  EXPECT_EQ(flushed->script_outputs[0].count("a1.out"), 1u);
  EXPECT_EQ(flushed->script_outputs[1].count("b1.out"), 1u);

  auto empty = queue.Flush();
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kFailedPrecondition);
}

// --- Pin API (fault-recovery re-reads vs eviction) ------------------------

PartitionedData TaggedRows(int64_t tag, int rows) {
  PartitionedData data;
  data.schema.AddColumn({/*id=*/1, "A", "", DataType::kInt64});
  data.partitions.resize(1);
  for (int i = 0; i < rows; ++i) {
    data.partitions[0].push_back({Value::Int(tag * 1000 + i)});
  }
  return data;
}

SpoolCacheKey KeyFor(const std::string& canon) {
  SpoolCacheKey key;
  key.canon = canon;
  key.catalog_version = 1;
  key.machines = 1;
  return key;
}

TEST(CrossQueryCacheTest, PinnedEntrySurvivesEvictionPressure) {
  // Budget admits the 32-byte entry below, and nothing more.
  CrossQuerySpoolCache cache(50);
  // Cheapest possible entry: the eviction policy's first victim.
  cache.InsertRows(KeyFor("pinned"), TaggedRows(1, 4), /*recompute_cost=*/1);

  auto pin = cache.Pin(KeyFor("pinned"));
  ASSERT_TRUE(pin);
  const PartitionedData& held = pin.rows();
  ASSERT_EQ(held.TotalRows(), 4);

  // Budget pressure while pinned: the recovery re-read (this is the
  // eviction-racing-a-recovery bug) must keep reading valid data.
  for (int64_t i = 0; i < 8; ++i) {
    cache.InsertRows(KeyFor("filler" + std::to_string(i)),
                     TaggedRows(100 + i, 64), /*recompute_cost=*/1e9);
  }
  EXPECT_EQ(held.partitions[0][0][0], Value::Int(1000))
      << "pinned data must stay readable under eviction pressure";
  EXPECT_TRUE(cache.LookupRows(KeyFor("pinned")).has_value())
      << "a pinned entry must never be evicted";

  // Released, the entry is an ordinary (cheap) victim again.
  pin.Release();
  EXPECT_FALSE(pin);
  cache.InsertRows(KeyFor("last"), TaggedRows(999, 64),
                   /*recompute_cost=*/1e9);
  EXPECT_FALSE(cache.LookupRows(KeyFor("pinned")).has_value())
      << "after Release the budget pressure must evict it";
}

TEST(CrossQueryCacheTest, InsertOverPinnedEntryKeepsPinnedData) {
  CrossQuerySpoolCache cache(-1);  // unlimited
  cache.InsertRows(KeyFor("k"), TaggedRows(1, 3), /*recompute_cost=*/10);
  auto pin = cache.Pin(KeyFor("k"));
  ASSERT_TRUE(pin);

  // In real use a same-key insert carries identical data (the key is the
  // exact canonical sub-DAG); distinct rows here make "old entry kept"
  // observable.
  cache.InsertRows(KeyFor("k"), TaggedRows(2, 3), /*recompute_cost=*/10);
  EXPECT_EQ(pin.rows().partitions[0][0][0], Value::Int(1000))
      << "replacing a pinned entry would dangle the recovery read";
  auto lookup = cache.LookupRows(KeyFor("k"));
  ASSERT_TRUE(lookup.has_value());
  EXPECT_EQ(lookup->partitions[0][0][0], Value::Int(1000));

  pin.Release();
  cache.InsertRows(KeyFor("k"), TaggedRows(3, 3), /*recompute_cost=*/10);
  lookup = cache.LookupRows(KeyFor("k"));
  ASSERT_TRUE(lookup.has_value());
  EXPECT_EQ(lookup->partitions[0][0][0], Value::Int(3000))
      << "unpinned entries are replaceable again";
}

TEST(CrossQueryCacheTest, PinMissesAreEmptyAndHarmless) {
  CrossQuerySpoolCache cache(-1);
  auto miss = cache.Pin(KeyFor("absent"));
  EXPECT_FALSE(miss);
  miss.Release();  // idempotent on empty handles
  SpoolCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0)
      << "pinning bypasses hit/miss accounting (oracle 8: a recovery "
         "re-read must not perturb eviction state)";
}

// tsan target: concurrent inserts under a tiny budget (eviction storms)
// racing pinned reads must neither tear data nor deadlock.
TEST(CrossQueryCacheTest, ConcurrentEvictionNeverInvalidatesPins) {
  // Budget admits the 128-byte hot entry; every 256-byte insert below
  // overflows it and triggers an eviction pass.
  CrossQuerySpoolCache cache(200);
  cache.InsertRows(KeyFor("hot"), TaggedRows(7, 16), /*recompute_cost=*/1);

  // Long-lived anchor pin: the cheapest entry would otherwise be the first
  // victim of every insertion below.
  auto anchor = cache.Pin(KeyFor("hot"));
  ASSERT_TRUE(anchor);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      cache.InsertRows(KeyFor("w" + std::to_string(i % 13)),
                       TaggedRows(i, 32), /*recompute_cost=*/1e9);
    }
  });
  for (int iter = 0; iter < 200; ++iter) {
    auto pin = cache.Pin(KeyFor("hot"));  // nested pin, as two recoveries
    ASSERT_TRUE(pin) << "pinned entry evicted at iteration " << iter;
    const PartitionedData& rows = pin.rows();
    ASSERT_EQ(rows.TotalRows(), 16);
    EXPECT_EQ(rows.partitions[0][0][0], Value::Int(7000));
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  anchor.Release();
}

TEST(CrossQueryCacheTest, SubmissionQueueAutoFlushesAtCapacity) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  SubmissionQueue queue(&engine, /*max_batch=*/2);
  std::vector<std::string> scripts = SharedPairScripts();
  queue.Enqueue(scripts[0]);
  queue.Enqueue(scripts[1]);
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_TRUE(queue.TakeAutoFlushed().empty());

  // The enqueue that would exceed max_batch flushes the full queue first,
  // then admits the newcomer with a fresh ticket 0.
  EXPECT_EQ(queue.Enqueue(scripts[0]), 0u);
  EXPECT_EQ(queue.pending(), 1u);
  auto flushed = queue.TakeAutoFlushed();
  ASSERT_EQ(flushed.size(), 1u);
  ASSERT_TRUE(flushed[0].ok()) << flushed[0].status().ToString();
  EXPECT_EQ(flushed[0]->script_outputs.size(), 2u);
  EXPECT_TRUE(queue.TakeAutoFlushed().empty());
}

}  // namespace
}  // namespace scx
