// Join-commutativity rule tests: the commuted alternative exists, enables
// broadcasting the (small) LEFT side, never changes results, and can be
// disabled.

#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

int CountKind(const PhysicalNodePtr& root, PhysicalOpKind kind) {
  int n = 0;
  std::vector<PhysicalNodePtr> stack = {root};
  std::set<const PhysicalNode*> seen;
  while (!stack.empty()) {
    PhysicalNodePtr node = stack.back();
    stack.pop_back();
    if (!seen.insert(node.get()).second) continue;
    if (node->kind == kind) ++n;
    for (const auto& c : node->children) stack.push_back(c);
  }
  return n;
}

// The SMALL side is on the LEFT: only a commuted join can broadcast it
// (the broadcast variant replicates the right/build side).
const char kSmallLeftJoin[] = R"(
Small0 = EXTRACT A,B,C,D FROM "test2.log" USING X;
Dim    = SELECT A,Max(D) AS Cap FROM Small0 GROUP BY A;
Big    = EXTRACT A,B,C,D FROM "test.log" USING X;
J      = SELECT Big.A,B,D,Cap FROM Dim,Big WHERE Dim.A=Big.A;
Agg    = SELECT B,Sum(D) AS S FROM J GROUP BY B;
OUTPUT Agg TO "o";
)";

TEST(JoinCommuteTest, EnablesLeftSideBroadcast) {
  OptimizerConfig with;
  OptimizerConfig without;
  without.enable_join_commute = false;
  Engine e_with(MakePaperCatalog(), with);
  Engine e_without(MakePaperCatalog(), without);
  auto c_with = e_with.Compile(kSmallLeftJoin);
  auto c_without = e_without.Compile(kSmallLeftJoin);
  ASSERT_TRUE(c_with.ok() && c_without.ok());
  auto p_with = e_with.Optimize(*c_with, OptimizerMode::kConventional);
  auto p_without =
      e_without.Optimize(*c_without, OptimizerMode::kConventional);
  ASSERT_TRUE(p_with.ok() && p_without.ok());
  // With commutativity the tiny Dim side is broadcast; commuting must not
  // cost more than the best uncommuted plan.
  EXPECT_GE(CountKind(p_with->plan(), PhysicalOpKind::kBroadcastExchange), 1)
      << p_with->Explain();
  EXPECT_LE(p_with->cost(), p_without->cost() * 1.0001);
  EXPECT_TRUE(ValidatePlan(p_with->plan()).ok());
}

TEST(JoinCommuteTest, ResultsUnchangedAcrossRuleToggle) {
  OptimizerConfig base;
  base.cluster.machines = 8;
  OptimizerConfig no_commute = base;
  no_commute.enable_join_commute = false;
  Engine e1(MakeExecutionCatalog(3000), base);
  Engine e2(MakeExecutionCatalog(3000), no_commute);
  for (const char* script : {kSmallLeftJoin, kScriptS3, kScriptS4}) {
    auto c1 = e1.Compile(script);
    auto c2 = e2.Compile(script);
    ASSERT_TRUE(c1.ok() && c2.ok());
    auto p1 = e1.Optimize(*c1, OptimizerMode::kCse);
    auto p2 = e2.Optimize(*c2, OptimizerMode::kCse);
    ASSERT_TRUE(p1.ok() && p2.ok());
    auto m1 = e1.Execute(*p1);
    auto m2 = e2.Execute(*p2);
    ASSERT_TRUE(m1.ok()) << m1.status().ToString();
    ASSERT_TRUE(m2.ok()) << m2.status().ToString();
    EXPECT_TRUE(SameOutputs(*m1, *m2)) << script;
  }
}

TEST(JoinCommuteTest, CommutedPlanRestoresColumnOrder) {
  // Whatever join orientation wins, the output schema (and therefore row
  // layout) must match the script's declared column order.
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(MakeExecutionCatalog(2000), config);
  auto compiled = engine.Compile(kSmallLeftJoin);
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  // Output is (B, S): both int64, with B drawn from the catalog's B domain.
  for (const Row& r : m->outputs.at("o")) {
    ASSERT_EQ(r.size(), 2u);
    EXPECT_LE(r[0].as_int(), 50);  // ndv(B)=50 domain values start at 1
    EXPECT_GE(r[0].as_int(), 1);
  }
}

}  // namespace
}  // namespace scx
