// Lexer and parser tests for the SCOPE-dialect script language.

#include <gtest/gtest.h>

#include "script/lexer.h"
#include "script/parser.h"

namespace scx {
namespace {

TEST(LexerTest, TokenizesSymbolsAndIdentifiers) {
  auto tokens = Tokenize("R1 = SELECT a.b, Sum(c) FROM x;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kEq, TokenKind::kIdent,
                       TokenKind::kIdent, TokenKind::kDot, TokenKind::kIdent,
                       TokenKind::kComma, TokenKind::kIdent,
                       TokenKind::kLParen, TokenKind::kIdent,
                       TokenKind::kRParen, TokenKind::kIdent,
                       TokenKind::kIdent, TokenKind::kSemicolon,
                       TokenKind::kEnd}));
}

TEST(LexerTest, StringLiteralsStripQuotes) {
  auto tokens = Tokenize("OUTPUT R TO \"a/b.out\";");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[3].text, "a/b.out");
}

TEST(LexerTest, NumbersIntAndReal) {
  auto tokens = Tokenize("WHERE A > 42 AND B < 3.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[3].text, "42");
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kReal);
  EXPECT_EQ((*tokens)[7].text, "3.25");
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("= == != <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kEq, TokenKind::kEq, TokenKind::kNe,
                       TokenKind::kNe, TokenKind::kLt, TokenKind::kLe,
                       TokenKind::kGt, TokenKind::kGe, TokenKind::kEnd}));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("A // comment to end of line\n= 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 4u);  // A, =, 1, end
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Tokenize("A\nB\n  C");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 3);
  EXPECT_EQ((*tokens)[2].column, 3);
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("OUTPUT R TO \"oops").ok());
}

TEST(LexerTest, UnknownCharacterIsError) {
  auto r = Tokenize("A ? B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, KeywordMatchIsCaseInsensitive) {
  auto tokens = Tokenize("select Select SELECT");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE((*tokens)[i].IsKeyword("SELECT"));
  }
  EXPECT_FALSE((*tokens)[0].IsKeyword("SELECTX"));
  EXPECT_FALSE((*tokens)[0].IsKeyword("SEL"));
}

// --- parser ---

TEST(ParserTest, ParsesExtract) {
  auto script = ParseScript(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING LogExtractor;\n"
      "OUTPUT R0 TO \"o.out\";");
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->statements.size(), 2u);
  const AstStatement& s = script->statements[0];
  EXPECT_EQ(s.kind, AstStatement::Kind::kAssign);
  EXPECT_EQ(s.target, "R0");
  ASSERT_EQ(s.query.kind, AstQuery::Kind::kExtract);
  EXPECT_EQ(s.query.extract.columns,
            (std::vector<std::string>{"A", "B", "C", "D"}));
  EXPECT_EQ(s.query.extract.path, "test.log");
  EXPECT_EQ(s.query.extract.extractor, "LogExtractor");
}

TEST(ParserTest, ParsesSelectWithGroupByAndAlias) {
  auto script = ParseScript(
      "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
      "OUTPUT R TO \"o.out\";");
  ASSERT_TRUE(script.ok());
  const AstSelect& sel = script->statements[0].query.select;
  ASSERT_EQ(sel.items.size(), 3u);
  EXPECT_FALSE(sel.items[0].is_aggregate);
  EXPECT_EQ(sel.items[0].column.name, "A");
  EXPECT_TRUE(sel.items[2].is_aggregate);
  EXPECT_EQ(sel.items[2].fn, AggFn::kSum);
  EXPECT_EQ(sel.items[2].column.name, "D");
  EXPECT_EQ(sel.items[2].alias, "S");
  ASSERT_EQ(sel.group_by.size(), 2u);
  EXPECT_EQ(sel.group_by[1].name, "B");
}

TEST(ParserTest, ParsesJoinWithQualifiedPredicate) {
  auto script = ParseScript(
      "RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B AND A > 3;\n"
      "OUTPUT RR TO \"o.out\";");
  ASSERT_TRUE(script.ok());
  const AstSelect& sel = script->statements[0].query.select;
  EXPECT_EQ(sel.sources, (std::vector<std::string>{"R1", "R2"}));
  ASSERT_EQ(sel.where.size(), 2u);
  EXPECT_EQ(sel.where[0].lhs.qualifier, "R1");
  EXPECT_EQ(sel.where[0].lhs.name, "B");
  EXPECT_TRUE(sel.where[0].rhs_is_column);
  EXPECT_EQ(sel.where[0].rhs_column.qualifier, "R2");
  EXPECT_FALSE(sel.where[1].rhs_is_column);
  EXPECT_EQ(sel.where[1].op, CompareOp::kGt);
  EXPECT_EQ(sel.where[1].rhs_literal, Value::Int(3));
  EXPECT_EQ(sel.items[0].column.ToString(), "R1.B");
}

TEST(ParserTest, CountStarAndAllAggregates) {
  auto script = ParseScript(
      "R = SELECT A,Count(*) AS N,Min(D) AS LO,Max(D) AS HI,Avg(D) AS M,"
      "Count(D) AS ND FROM R0 GROUP BY A;\nOUTPUT R TO \"o\";");
  ASSERT_TRUE(script.ok());
  const AstSelect& sel = script->statements[0].query.select;
  EXPECT_TRUE(sel.items[1].count_star);
  EXPECT_EQ(sel.items[1].fn, AggFn::kCount);
  EXPECT_EQ(sel.items[2].fn, AggFn::kMin);
  EXPECT_EQ(sel.items[3].fn, AggFn::kMax);
  EXPECT_EQ(sel.items[4].fn, AggFn::kAvg);
  EXPECT_FALSE(sel.items[5].count_star);
}

TEST(ParserTest, OutputStatement) {
  auto script = ParseScript("OUTPUT R1 TO \"result1.out\";");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->statements[0].kind, AstStatement::Kind::kOutput);
  EXPECT_EQ(script->statements[0].output_rel, "R1");
  EXPECT_EQ(script->statements[0].output_path, "result1.out");
}

TEST(ParserTest, ErrorsAreDescriptive) {
  auto r = ParseScript("R = SELECT FROM x;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, RejectsMissingSemicolon) {
  EXPECT_FALSE(ParseScript("OUTPUT R TO \"x\"").ok());
}

TEST(ParserTest, RejectsStarOutsideCount) {
  EXPECT_FALSE(
      ParseScript("R = SELECT Sum(*) FROM X; OUTPUT R TO \"o\";").ok());
}

TEST(ParserTest, RejectsUnknownAggregate) {
  EXPECT_FALSE(
      ParseScript("R = SELECT Median(D) FROM X; OUTPUT R TO \"o\";").ok());
}

TEST(ParserTest, RejectsThreeWayFrom) {
  EXPECT_FALSE(
      ParseScript("R = SELECT A FROM X,Y,Z; OUTPUT R TO \"o\";").ok());
}

TEST(ParserTest, RejectsEmptyScript) {
  EXPECT_FALSE(ParseScript("").ok());
  EXPECT_FALSE(ParseScript("// nothing but a comment").ok());
}

TEST(ParserTest, PredicateLiteralKinds) {
  auto script = ParseScript(
      "R = SELECT A FROM X WHERE A = 1 AND A < 2.5 AND A != \"s\";\n"
      "OUTPUT R TO \"o\";");
  ASSERT_TRUE(script.ok());
  const auto& where = script->statements[0].query.select.where;
  EXPECT_TRUE(where[0].rhs_literal.is_int());
  EXPECT_TRUE(where[1].rhs_literal.is_double());
  EXPECT_TRUE(where[2].rhs_literal.is_string());
}

}  // namespace
}  // namespace scx
