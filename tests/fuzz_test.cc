// Robustness "fuzz-lite" tests: mutated and truncated scripts must produce
// a clean Status (never crash, never return an unvalidated plan).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

class MutatedScriptFuzz : public ::testing::TestWithParam<int> {};

// Splitmix64-style mix so each trial gets an unrelated seed derivable from
// just (shard, trial) — a failure is rerun with that one seed alone.
uint64_t TrialSeed(int shard, int trial) {
  uint64_t z = static_cast<uint64_t>(shard) * 0x9e3779b97f4a7c15ull +
               static_cast<uint64_t>(trial) + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST_P(MutatedScriptFuzz, MutationsNeverCrash) {
  Engine engine(MakePaperCatalog());
  std::string base = kScriptS3;  // largest of the paper scripts
  const char kNoise[] = "(),;=<>+-*/.\"ABXZ019 ";

  for (int trial = 0; trial < 60; ++trial) {
    // Fresh RNG per trial: a failing trial replays from its own seed
    // without rerunning the 0..trial-1 prefix.
    uint64_t seed = TrialSeed(GetParam(), trial);
    std::mt19937_64 rng(seed);
    std::string script = base;
    std::uniform_int_distribution<int> mutation_dist(0, 3);
    std::uniform_int_distribution<size_t> noise_dist(0, sizeof(kNoise) - 2);
    int mutations = 1 + trial % 4;
    for (int k = 0; k < mutations; ++k) {
      std::uniform_int_distribution<size_t> pos_dist(0, script.size() - 1);
      size_t pos = pos_dist(rng);
      switch (mutation_dist(rng)) {
        case 0:  // replace a character
          script[pos] = kNoise[noise_dist(rng)];
          break;
        case 1:  // delete a character
          script.erase(pos, 1);
          break;
        case 2:  // insert noise
          script.insert(pos, 1, kNoise[noise_dist(rng)]);
          break;
        case 3:  // truncate
          script.resize(pos);
          break;
      }
      if (script.empty()) script = "x";
    }

    SCOPED_TRACE(::testing::Message()
                 << "shard " << GetParam() << " trial " << trial << " seed "
                 << seed << "\nmutated script:\n"
                 << script);
    auto compiled = engine.Compile(script);
    if (!compiled.ok()) continue;  // clean rejection is the expected path
    // A mutated script that still compiles must optimize to a valid plan
    // in every mode.
    for (OptimizerMode mode :
         {OptimizerMode::kConventional, OptimizerMode::kCse}) {
      auto plan = engine.Optimize(*compiled, mode);
      ASSERT_TRUE(plan.ok()) << "seed " << seed << ": "
                             << plan.status().ToString();
      EXPECT_TRUE(ValidatePlan(plan->plan()).ok()) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutatedScriptFuzz, ::testing::Range(1, 9));

TEST(FuzzTest, DeeplyNestedParenthesesParse) {
  std::string expr(200, '(');
  expr += "A";
  expr += std::string(200, ')');
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile("R0 = EXTRACT A FROM \"test.log\" USING X;\n"
                          "R = SELECT " + expr + " AS X FROM R0;\n"
                          "OUTPUT R TO \"o\";");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(FuzzTest, VeryLongSelectList) {
  std::string items = "A";
  for (int i = 0; i < 300; ++i) {
    items += ",A+" + std::to_string(i) + " AS X" + std::to_string(i);
  }
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile("R0 = EXTRACT A FROM \"test.log\" USING X;\n"
                          "R = SELECT " + items + " FROM R0;\n"
                          "OUTPUT R TO \"o\";");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto plan = engine.Optimize(*r, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
}

TEST(FuzzTest, GarbageBytesRejectedCleanly) {
  Engine engine(MakePaperCatalog());
  for (int trial = 0; trial < 30; ++trial) {
    uint64_t seed = TrialSeed(99, trial);
    std::mt19937_64 rng(seed);
    std::string garbage;
    std::uniform_int_distribution<int> len(1, 200);
    std::uniform_int_distribution<int> byte(1, 126);
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(byte(rng)));
    }
    SCOPED_TRACE(::testing::Message() << "trial " << trial << " seed "
                                      << seed << "\ninput:\n"
                                      << garbage);
    auto r = engine.Compile(garbage);
    // Either a clean error or (rarely) a valid parse; never a crash.
    if (r.ok()) {
      auto plan = engine.Optimize(*r, OptimizerMode::kCse);
      if (plan.ok()) {
        EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
      }
    }
  }
}

}  // namespace
}  // namespace scx
