// Robustness "fuzz-lite" tests: mutated and truncated scripts must produce
// a clean Status (never crash, never return an unvalidated plan).

#include <gtest/gtest.h>

#include <random>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

class MutatedScriptFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MutatedScriptFuzz, MutationsNeverCrash) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271u + 7);
  Engine engine(MakePaperCatalog());
  std::string base = kScriptS3;  // largest of the paper scripts
  const char kNoise[] = "(),;=<>+-*/.\"ABXZ019 ";

  for (int trial = 0; trial < 60; ++trial) {
    std::string script = base;
    std::uniform_int_distribution<int> mutation_dist(0, 3);
    std::uniform_int_distribution<size_t> noise_dist(0, sizeof(kNoise) - 2);
    int mutations = 1 + trial % 4;
    for (int k = 0; k < mutations; ++k) {
      std::uniform_int_distribution<size_t> pos_dist(0, script.size() - 1);
      size_t pos = pos_dist(rng);
      switch (mutation_dist(rng)) {
        case 0:  // replace a character
          script[pos] = kNoise[noise_dist(rng)];
          break;
        case 1:  // delete a character
          script.erase(pos, 1);
          break;
        case 2:  // insert noise
          script.insert(pos, 1, kNoise[noise_dist(rng)]);
          break;
        case 3:  // truncate
          script.resize(pos);
          break;
      }
      if (script.empty()) script = "x";
    }

    auto compiled = engine.Compile(script);
    if (!compiled.ok()) continue;  // clean rejection is the expected path
    // A mutated script that still compiles must optimize to a valid plan
    // in every mode.
    for (OptimizerMode mode :
         {OptimizerMode::kConventional, OptimizerMode::kCse}) {
      auto plan = engine.Optimize(*compiled, mode);
      ASSERT_TRUE(plan.ok()) << script << "\n" << plan.status().ToString();
      EXPECT_TRUE(ValidatePlan(plan->plan()).ok()) << script;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutatedScriptFuzz, ::testing::Range(1, 9));

TEST(FuzzTest, DeeplyNestedParenthesesParse) {
  std::string expr(200, '(');
  expr += "A";
  expr += std::string(200, ')');
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile("R0 = EXTRACT A FROM \"test.log\" USING X;\n"
                          "R = SELECT " + expr + " AS X FROM R0;\n"
                          "OUTPUT R TO \"o\";");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(FuzzTest, VeryLongSelectList) {
  std::string items = "A";
  for (int i = 0; i < 300; ++i) {
    items += ",A+" + std::to_string(i) + " AS X" + std::to_string(i);
  }
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile("R0 = EXTRACT A FROM \"test.log\" USING X;\n"
                          "R = SELECT " + items + " FROM R0;\n"
                          "OUTPUT R TO \"o\";");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto plan = engine.Optimize(*r, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
}

TEST(FuzzTest, GarbageBytesRejectedCleanly) {
  Engine engine(MakePaperCatalog());
  std::mt19937 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::string garbage;
    std::uniform_int_distribution<int> len(1, 200);
    std::uniform_int_distribution<int> byte(1, 126);
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(byte(rng)));
    }
    auto r = engine.Compile(garbage);
    // Either a clean error or (rarely) a valid parse; never a crash.
    if (r.ok()) {
      auto plan = engine.Optimize(*r, OptimizerMode::kCse);
      if (plan.ok()) EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
    }
  }
}

}  // namespace
}  // namespace scx
