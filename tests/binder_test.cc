// Binder tests: schema derivation, explicit sharing of named results,
// join binding with column-identity disambiguation, error reporting.

#include <gtest/gtest.h>

#include "plan/binder.h"
#include "script/parser.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

BoundScript Bind(const std::string& script) {
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto bound = BindScript(*ast, catalog);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return std::move(bound.value());
}

Status BindError(const std::string& script) {
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto bound = BindScript(*ast, catalog);
  EXPECT_FALSE(bound.ok());
  return bound.status();
}

TEST(BinderTest, ExtractSchemaFromCatalog) {
  BoundScript b = Bind(
      "R0 = EXTRACT A,B FROM \"test.log\" USING X;\n"
      "OUTPUT R0 TO \"o\";");
  const LogicalNodePtr& r0 = b.results.at("R0");
  EXPECT_EQ(r0->kind(), LogicalOpKind::kExtract);
  ASSERT_EQ(r0->schema().NumColumns(), 2);
  EXPECT_EQ(r0->schema().column(0).name, "A");
  EXPECT_EQ(r0->schema().column(0).qualifier, "R0");
  // Column metadata carries the catalog's distinct counts.
  EXPECT_EQ(b.columns->Get(r0->schema().column(0).id).base_ndv, 40);
}

TEST(BinderTest, SharedResultIsOneNode) {
  BoundScript b = Bind(kScriptS1);
  // R is consumed by R1 and R2: one logical node, two parents.
  const LogicalNode* r = b.results.at("R").get();
  int refs = 0;
  for (const LogicalNodePtr& node : TopologicalNodes(b.root)) {
    for (const LogicalNodePtr& child : node->children()) {
      if (child.get() == r) ++refs;
    }
  }
  EXPECT_EQ(refs, 2);
}

TEST(BinderTest, GroupByPreservesColumnIds) {
  BoundScript b = Bind(kScriptS1);
  const LogicalNodePtr& r = b.results.at("R");
  const LogicalNodePtr& r1 = b.results.at("R1");
  ASSERT_EQ(r->kind(), LogicalOpKind::kGbAgg);
  ASSERT_EQ(r1->kind(), LogicalOpKind::kGbAgg);
  // R1 groups on A,B — the same plan-wide ids R produced.
  EXPECT_EQ(r1->group_cols[0], r->schema().column(0).id);  // A
  EXPECT_EQ(r1->group_cols[1], r->schema().column(1).id);  // B
}

TEST(BinderTest, AggregateOutputsGetFreshIds) {
  BoundScript b = Bind(kScriptS1);
  const LogicalNodePtr& r = b.results.at("R");
  ASSERT_EQ(r->aggregates.size(), 1u);
  EXPECT_EQ(r->aggregates[0].out_name, "S");
  EXPECT_EQ(r->schema().column(3).id, r->aggregates[0].out);
  EXPECT_NE(r->aggregates[0].out, r->aggregates[0].arg);
}

TEST(BinderTest, NoProjectWhenSelectMatchesAggSchema) {
  BoundScript b = Bind(kScriptS1);
  // R1 = SELECT A,B,Sum(S) AS S1 ... GROUP BY A,B — select list equals the
  // aggregate's natural schema, so no Project node is added.
  EXPECT_EQ(b.results.at("R1")->kind(), LogicalOpKind::kGbAgg);
}

TEST(BinderTest, ProjectAddedWhenReordering) {
  BoundScript b = Bind(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT B,A FROM R0;\n"
      "OUTPUT R TO \"o\";");
  const LogicalNodePtr& r = b.results.at("R");
  ASSERT_EQ(r->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(r->schema().column(0).name, "B");
  EXPECT_EQ(r->schema().column(1).name, "A");
  // Pure reorder: ids preserved.
  EXPECT_EQ(r->project_map[0].first, r->project_map[0].second);
}

TEST(BinderTest, FilterBinding) {
  BoundScript b = Bind(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,D FROM R0 WHERE D > 3 AND A = 1;\n"
      "OUTPUT R TO \"o\";");
  const LogicalNodePtr& r = b.results.at("R");
  ASSERT_EQ(r->kind(), LogicalOpKind::kFilter);
  ASSERT_EQ(r->predicates.size(), 2u);
  EXPECT_EQ(r->predicates[0].op, CompareOp::kGt);
  EXPECT_FALSE(r->predicates[0].rhs_is_column);
}

TEST(BinderTest, JoinOnSharedAncestorRenamesRightIds) {
  BoundScript b = Bind(kScriptS4);
  const LogicalNodePtr& rr = b.results.at("RR");
  ASSERT_EQ(rr->kind(), LogicalOpKind::kProject);  // output column selection
  const LogicalNodePtr& join = rr->child(0);
  ASSERT_EQ(join->kind(), LogicalOpKind::kJoin);
  ASSERT_EQ(join->join_keys.size(), 1u);
  // R1.B and R2.B both descend from R's B; the right side must have been
  // renamed so the join's key ids differ.
  EXPECT_NE(join->join_keys[0].first, join->join_keys[0].second);
  // And no duplicate ids in the join output schema.
  ColumnSet seen;
  for (const ColumnInfo& c : join->schema().columns()) {
    EXPECT_FALSE(seen.Contains(c.id)) << "duplicate id " << c.id;
    seen.Insert(c.id);
  }
}

TEST(BinderTest, JoinOnDistinctSourcesKeepsIds) {
  BoundScript b = Bind(kScriptS3);
  // RR joins R1,R2 (both from R, same file) -> renamed; but check the
  // independent T-branch exists and binds.
  EXPECT_TRUE(b.results.count("TT"));
  EXPECT_EQ(b.results.at("TT")->kind(), LogicalOpKind::kProject);
}

TEST(BinderTest, SequenceRootForMultipleOutputs) {
  BoundScript b = Bind(kScriptS1);
  EXPECT_EQ(b.root->kind(), LogicalOpKind::kSequence);
  EXPECT_EQ(b.root->num_children(), 2);
  EXPECT_EQ(b.root->child(0)->kind(), LogicalOpKind::kOutput);
}

TEST(BinderTest, SingleOutputHasNoSequence) {
  BoundScript b = Bind(
      "R0 = EXTRACT A,B FROM \"test.log\" USING X;\n"
      "OUTPUT R0 TO \"o\";");
  EXPECT_EQ(b.root->kind(), LogicalOpKind::kOutput);
}

TEST(BinderTest, GrandTotalAggregation) {
  BoundScript b = Bind(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT Sum(D) AS S FROM R0;\n"
      "OUTPUT R TO \"o\";");
  const LogicalNodePtr& r = b.results.at("R");
  EXPECT_EQ(r->kind(), LogicalOpKind::kGbAgg);
  EXPECT_TRUE(r->group_cols.empty());
}

TEST(BinderTest, AvgGetsDoubleType) {
  BoundScript b = Bind(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Avg(D) AS M FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";");
  EXPECT_EQ(b.results.at("R")->aggregates[0].out_type, DataType::kDouble);
}

// --- error cases ---

TEST(BinderTest, ErrorUnknownFile) {
  Status s = BindError(
      "R0 = EXTRACT A FROM \"nope.log\" USING X; OUTPUT R0 TO \"o\";");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(BinderTest, ErrorUnknownColumnInFile) {
  Status s = BindError(
      "R0 = EXTRACT A,Z FROM \"test.log\" USING X; OUTPUT R0 TO \"o\";");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST(BinderTest, ErrorUnknownRelation) {
  Status s = BindError("R = SELECT A FROM NOPE; OUTPUT R TO \"o\";");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST(BinderTest, ErrorRedefinition) {
  Status s = BindError(
      "R = EXTRACT A FROM \"test.log\" USING X;\n"
      "R = EXTRACT B FROM \"test.log\" USING X;\n"
      "OUTPUT R TO \"o\";");
  EXPECT_NE(s.message().find("redefined"), std::string::npos);
}

TEST(BinderTest, ErrorNonGroupedColumn) {
  Status s = BindError(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";");
  EXPECT_NE(s.message().find("GROUP BY"), std::string::npos);
}

TEST(BinderTest, ErrorJoinWithoutEquality) {
  Status s = BindError(
      "R0 = EXTRACT A,B FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,B FROM \"test2.log\" USING X;\n"
      "J = SELECT R0.A FROM R0,T0 WHERE R0.A > T0.A;\n"
      "OUTPUT J TO \"o\";");
  EXPECT_NE(s.message().find("equality"), std::string::npos);
}

TEST(BinderTest, ErrorSelfJoin) {
  Status s = BindError(
      "R0 = EXTRACT A,B FROM \"test.log\" USING X;\n"
      "J = SELECT A FROM R0,R0;\n"
      "OUTPUT J TO \"o\";");
  EXPECT_NE(s.message().find("self-join"), std::string::npos);
}

TEST(BinderTest, ErrorAmbiguousJoinColumn) {
  Status s = BindError(
      "R0 = EXTRACT A,B FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,B FROM \"test2.log\" USING X;\n"
      "J = SELECT A FROM R0,T0 WHERE R0.B=T0.B;\n"
      "OUTPUT J TO \"o\";");
  EXPECT_NE(s.message().find("ambiguous"), std::string::npos);
}

TEST(BinderTest, ErrorOutputOfUndefined) {
  Status s = BindError("OUTPUT Z TO \"o\";");
  EXPECT_NE(s.message().find("undefined"), std::string::npos);
}

TEST(BinderTest, ErrorNoOutput) {
  Status s = BindError("R0 = EXTRACT A FROM \"test.log\" USING X;");
  EXPECT_NE(s.message().find("OUTPUT"), std::string::npos);
}

TEST(BinderTest, ErrorGroupByWithoutAggregate) {
  Status s = BindError(
      "R0 = EXTRACT A,B FROM \"test.log\" USING X;\n"
      "R = SELECT A FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST(BinderTest, ErrorDuplicateGroupByColumn) {
  Status s = BindError(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R = SELECT A,Sum(D) AS S FROM R0 GROUP BY A,A;\n"
      "OUTPUT R TO \"o\";");
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST(BinderTest, DagPrinterMarksSharedNodes) {
  BoundScript b = Bind(kScriptS1);
  std::string dump = PrintLogicalDag(b.root);
  EXPECT_NE(dump.find("shared, see above"), std::string::npos);
  EXPECT_NE(dump.find("GbAgg"), std::string::npos);
}

}  // namespace
}  // namespace scx
