// Tests for the phase-2 round enumerator (paper Sec. VII ordering and the
// Sec. VIII-A independent-shared-group extension, including the paper's
// 8x8 = 64 → 8+7 = 15 rounds example), in both the serial Next/ReportCost
// protocol and the batch protocol used by the parallel scheduler.

#include <gtest/gtest.h>

#include <limits>

#include "core/rounds.h"

namespace scx {
namespace {

std::vector<RoundAssignment> Drain(RoundEnumerator* sched,
                                   const std::map<RoundAssignment, double>&
                                       costs = {}) {
  std::vector<RoundAssignment> out;
  RoundAssignment a;
  while (sched->Next(&a)) {
    out.push_back(a);
    auto it = costs.find(a);
    sched->ReportCost(it == costs.end() ? 100.0 : it->second);
  }
  return out;
}

std::vector<RoundAssignment> DrainBatches(
    RoundEnumerator* sched,
    const std::map<RoundAssignment, double>& costs = {}) {
  std::vector<RoundAssignment> out;
  std::vector<RoundAssignment> batch;
  while (sched->NextBatch(&batch)) {
    std::vector<double> batch_costs;
    for (const RoundAssignment& a : batch) {
      out.push_back(a);
      auto it = costs.find(a);
      batch_costs.push_back(it == costs.end() ? 100.0 : it->second);
    }
    sched->ReportBatch(batch_costs);
  }
  return out;
}

TEST(RoundEnumeratorTest, SingleGroupEnumeratesAllEntries) {
  RoundEnumerator sched({{7}}, {{7, 3}});
  EXPECT_EQ(sched.TotalRounds(), 3);
  auto rounds = Drain(&sched);
  ASSERT_EQ(rounds.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rounds[static_cast<size_t>(i)].at(7), i);
  }
}

TEST(RoundEnumeratorTest, JointClassIsCartesianFirstGroupFastest) {
  // Paper Sec. VII: for groups 3,4 with histories {p1,p2} and {q1,q2} the
  // rounds are (p1,q1),(p2,q1),(p1,q2),(p2,q2) — first group varies first.
  RoundEnumerator sched({{3, 4}}, {{3, 2}, {4, 2}});
  EXPECT_EQ(sched.TotalRounds(), 4);
  auto rounds = Drain(&sched);
  ASSERT_EQ(rounds.size(), 4u);
  EXPECT_EQ(rounds[0], (RoundAssignment{{3, 0}, {4, 0}}));
  EXPECT_EQ(rounds[1], (RoundAssignment{{3, 1}, {4, 0}}));
  EXPECT_EQ(rounds[2], (RoundAssignment{{3, 0}, {4, 1}}));
  EXPECT_EQ(rounds[3], (RoundAssignment{{3, 1}, {4, 1}}));
}

TEST(RoundEnumeratorTest, PaperSixtyFourToFifteenExample) {
  // Sec. VIII-A: two independent groups with 8 property sets each: 8 rounds
  // for the first, then 7 for the second (its all-initial combination was
  // already evaluated), 15 total instead of 64.
  RoundEnumerator sched({{5}, {6}}, {{5, 8}, {6, 8}});
  EXPECT_EQ(sched.TotalRounds(), 15);
  auto rounds = Drain(&sched);
  EXPECT_EQ(rounds.size(), 15u);
  // First 8 rounds vary group 5 with group 6 pinned at its best entry (0).
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rounds[static_cast<size_t>(i)].at(5), i);
    EXPECT_EQ(rounds[static_cast<size_t>(i)].at(6), 0);
  }
  // Last 7 rounds vary group 6 from entry 1, group 5 pinned to its best.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(rounds[static_cast<size_t>(8 + i)].at(6), i + 1);
  }
}

TEST(RoundEnumeratorTest, SecondClassPinsBestOfFirst) {
  // Make entry 2 of group 5 the cheapest; the second class must run with
  // group 5 pinned at 2.
  RoundEnumerator sched({{5}, {6}}, {{5, 3}, {6, 2}});
  RoundAssignment a;
  std::vector<double> costs = {50, 20, 10};  // best is entry 2
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sched.Next(&a));
    sched.ReportCost(costs[static_cast<size_t>(i)]);
  }
  ASSERT_TRUE(sched.Next(&a));
  EXPECT_EQ(a.at(5), 2);
  EXPECT_EQ(a.at(6), 1);
  sched.ReportCost(99);
  EXPECT_FALSE(sched.Next(&a));
}

TEST(RoundEnumeratorTest, EmptyClassesYieldNoRounds) {
  RoundEnumerator sched({}, {});
  EXPECT_EQ(sched.TotalRounds(), 0);
  RoundAssignment a;
  EXPECT_FALSE(sched.Next(&a));
}

TEST(RoundEnumeratorTest, GroupWithEmptyHistoryIsDegenerate) {
  // A shared group with no recorded properties contributes one degenerate
  // entry so joint enumeration still works.
  RoundEnumerator sched({{1, 2}}, {{1, 0}, {2, 2}});
  EXPECT_EQ(sched.TotalRounds(), 2);
  auto rounds = Drain(&sched);
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].at(1), 0);
  EXPECT_EQ(rounds[1].at(2), 1);
}

TEST(RoundEnumeratorTest, SingleEntryClassesCollapse) {
  // Three independent groups with one entry each: one round total (all at
  // entry 0), the rest skipped as already-evaluated.
  RoundEnumerator sched({{1}, {2}, {3}}, {{1, 1}, {2, 1}, {3, 1}});
  EXPECT_EQ(sched.TotalRounds(), 1);
  auto rounds = Drain(&sched);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0],
            (RoundAssignment{{1, 0}, {2, 0}, {3, 0}}));
}

TEST(RoundEnumeratorTest, ThreeClassesChainBests) {
  RoundEnumerator sched({{1}, {2}, {3}}, {{1, 2}, {2, 2}, {3, 2}});
  // 2 + 1 + 1 = 4 rounds.
  EXPECT_EQ(sched.TotalRounds(), 4);
  auto rounds = Drain(&sched);
  EXPECT_EQ(rounds.size(), 4u);
}

TEST(RoundEnumeratorTest, BatchProtocolMatchesSerial) {
  // The concatenation of all batches must be exactly the serial Next()
  // sequence, including the class pinning decided by the reported costs.
  std::map<RoundAssignment, double> costs;
  costs[{{5, 1}, {6, 0}}] = 7.0;   // entry 1 of group 5 wins its class
  costs[{{5, 1}, {6, 2}}] = 3.0;
  RoundEnumerator serial({{5}, {6}}, {{5, 3}, {6, 3}});
  RoundEnumerator batched({{5}, {6}}, {{5, 3}, {6, 3}});
  EXPECT_EQ(Drain(&serial, costs), DrainBatches(&batched, costs));
}

TEST(RoundEnumeratorTest, BatchesSplitPerClass) {
  RoundEnumerator sched({{5}, {6}}, {{5, 8}, {6, 8}});
  std::vector<RoundAssignment> batch;
  ASSERT_TRUE(sched.NextBatch(&batch));
  EXPECT_EQ(batch.size(), 8u);  // whole first class at once
  sched.ReportBatch(std::vector<double>(8, 100.0));
  ASSERT_TRUE(sched.NextBatch(&batch));
  EXPECT_EQ(batch.size(), 7u);  // second class minus the all-zero round
  sched.ReportBatch(std::vector<double>(7, 100.0));
  EXPECT_FALSE(sched.NextBatch(&batch));
}

TEST(RoundEnumeratorTest, BatchPinsLowestCostTiesByIndex) {
  RoundEnumerator sched({{5}, {6}}, {{5, 3}, {6, 2}});
  std::vector<RoundAssignment> batch;
  ASSERT_TRUE(sched.NextBatch(&batch));
  ASSERT_EQ(batch.size(), 3u);
  sched.ReportBatch({20.0, 10.0, 10.0});  // tie between entries 1 and 2
  ASSERT_TRUE(sched.NextBatch(&batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].at(5), 1);  // first of the tied rounds wins
  EXPECT_EQ(batch[0].at(6), 1);
  sched.ReportBatch({5.0});
  EXPECT_FALSE(sched.NextBatch(&batch));
}

TEST(RoundEnumeratorTest, TotalRoundsSaturatesInsteadOfOverflowing) {
  // 2^64 joint combinations in one class: the naive product overflows a
  // signed long. TotalRounds must saturate to LONG_MAX (a count this large
  // only ever meets the round budget, which stops far earlier), and the
  // enumerator must stay usable.
  std::vector<GroupId> cls;
  std::map<GroupId, int> sizes;
  for (GroupId g = 1; g <= 64; ++g) {
    cls.push_back(g);
    sizes[g] = 2;
  }
  RoundEnumerator sched({cls}, sizes);
  EXPECT_EQ(sched.TotalRounds(), std::numeric_limits<long>::max());
  RoundAssignment a;
  ASSERT_TRUE(sched.Next(&a));
  EXPECT_EQ(a.size(), 64u);
  for (const auto& [g, idx] : a) EXPECT_EQ(idx, 0) << "group " << g;
  sched.ReportCost(1.0);
  ASSERT_TRUE(sched.Next(&a));  // first group varies fastest
  EXPECT_EQ(a.at(1), 1);
}

TEST(RoundEnumeratorTest, TotalRoundsSaturatesAcrossClassSums) {
  // Each class saturates on its own; adding them must not wrap around
  // either. Also checks a saturated count mixed with a small class.
  std::vector<std::vector<GroupId>> classes;
  std::map<GroupId, int> sizes;
  for (int c = 0; c < 2; ++c) {
    std::vector<GroupId> cls;
    for (int i = 0; i < 64; ++i) {
      GroupId g = static_cast<GroupId>(100 * c + i + 1);
      cls.push_back(g);
      sizes[g] = 2;
    }
    classes.push_back(std::move(cls));
  }
  classes.push_back({500});
  sizes[500] = 3;
  RoundEnumerator sched(classes, sizes);
  EXPECT_EQ(sched.TotalRounds(), std::numeric_limits<long>::max());
  RoundAssignment a;
  EXPECT_TRUE(sched.Next(&a));
}

TEST(RoundEnumeratorTest, BatchProtocolCollapsesSingleEntryClasses) {
  RoundEnumerator sched({{1}, {2}, {3}}, {{1, 1}, {2, 1}, {3, 1}});
  std::vector<RoundAssignment> batch;
  ASSERT_TRUE(sched.NextBatch(&batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], (RoundAssignment{{1, 0}, {2, 0}, {3, 0}}));
  sched.ReportBatch({42.0});
  EXPECT_FALSE(sched.NextBatch(&batch));
}

}  // namespace
}  // namespace scx
