// Scalar expressions inside WHERE / HAVING: parsing, desugaring through a
// Compute with temporary columns, schema restoration, join-side
// classification, and runtime semantics.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

ExecMetrics RunScript(const std::string& script,
                      OptimizerMode mode = OptimizerMode::kConventional,
                      int64_t rows = 2000) {
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(MakeExecutionCatalog(rows), config);
  auto compiled = engine.Compile(script);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, mode);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_TRUE(ValidatePlan(optimized->plan()).ok());
  auto metrics = engine.Execute(*optimized);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return std::move(metrics.value());
}

TEST(ScalarPredicateTest, WhereExpressionFilters) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,B,D FROM R0 WHERE A+B > 40;\n"
      "OUTPUT F TO \"o\";");
  ASSERT_FALSE(m.outputs.at("o").empty());
  for (const Row& r : m.outputs.at("o")) {
    EXPECT_GT(r[0].as_int() + r[1].as_int(), 40);
  }
}

TEST(ScalarPredicateTest, BothSidesComposite) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,B,D FROM R0 WHERE A*10 < B+D;\n"
      "OUTPUT F TO \"o\";");
  for (const Row& r : m.outputs.at("o")) {
    EXPECT_LT(r[0].as_int() * 10, r[1].as_int() + r[2].as_int());
  }
}

TEST(ScalarPredicateTest, SchemaRestoredAboveDesugaredFilter) {
  // The comparison temporaries must not leak into the result schema.
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,B,D FROM R0 WHERE A+B > 40;\n"
      "OUTPUT F TO \"o\";");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const LogicalNodePtr& f = compiled->bound.results.at("F");
  EXPECT_EQ(f->schema().NumColumns(), 3);
  for (const ColumnInfo& c : f->schema().columns()) {
    EXPECT_NE(c.name.rfind("cmp_", 0), 0u) << c.name;
  }
}

TEST(ScalarPredicateTest, HavingExpression) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Sum(D) AS S,Count(*) AS N FROM R0 GROUP BY A "
      "HAVING S/N > 240;\n"
      "OUTPUT R TO \"o\";");
  for (const Row& r : m.outputs.at("o")) {
    double mean = static_cast<double>(r[1].as_int()) /
                  static_cast<double>(r[2].as_int());
    EXPECT_GT(mean, 240.0);
  }
}

TEST(ScalarPredicateTest, JoinSideClassification) {
  // A composite predicate resolving only on one side becomes a pre-join
  // filter on that side.
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,B,D FROM \"test2.log\" USING X;\n"
      "RA = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "TA = SELECT A,Sum(D) AS T FROM T0 GROUP BY A;\n"
      "J  = SELECT RA.A,S,T FROM RA,TA WHERE RA.A=TA.A AND S*2 > 120000;\n"
      "OUTPUT J TO \"j\";");
  for (const Row& r : m.outputs.at("j")) {
    EXPECT_GT(r[1].as_int() * 2, 120000);
  }
}

TEST(ScalarPredicateTest, CompositeAgainstOtherSideColumnRejected) {
  // `S*2 > T` mixes a left-side expression with a right-side column; that
  // would require post-join computation, which the dialect rejects.
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,B,D FROM \"test2.log\" USING X;\n"
      "RA = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "TA = SELECT A,Sum(D) AS T FROM T0 GROUP BY A;\n"
      "J  = SELECT RA.A,S,T FROM RA,TA WHERE RA.A=TA.A AND S*2 > T;\n"
      "OUTPUT J TO \"j\";");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("one join side"), std::string::npos);
}

TEST(ScalarPredicateTest, CrossSideCompositeRejected) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,B,D FROM \"test2.log\" USING X;\n"
      "RA = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "TA = SELECT A,Sum(D) AS T FROM T0 GROUP BY A;\n"
      "J  = SELECT RA.A,S,T FROM RA,TA WHERE RA.A=TA.A AND S+T > 10;\n"
      "OUTPUT J TO \"j\";");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("one join side"), std::string::npos);
}

TEST(ScalarPredicateTest, MatchesManualFilterSemantics) {
  // `WHERE D-100 > 50` ≡ `WHERE D > 150`.
  ExecMetrics a = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,D FROM R0 WHERE D-100 > 50;\nOUTPUT F TO \"o\";");
  ExecMetrics b = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,D FROM R0 WHERE D > 150;\nOUTPUT F TO \"o\";");
  EXPECT_TRUE(SameOutputs(a, b));
}

TEST(ScalarPredicateTest, SharedSubexpressionStillExploited) {
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 WHERE A+B > 10 "
      "GROUP BY A,B,C;\n"
      "R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;\n"
      "R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;\n"
      "OUTPUT R1 TO \"o1\";\nOUTPUT R2 TO \"o2\";";
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(script);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->cse.result.diagnostics.num_shared_groups, 1);
  EXPECT_LT(c->cse.cost(), c->conventional.cost());
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(conv, cse));
}

}  // namespace
}  // namespace scx
