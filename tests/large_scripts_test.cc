// Tests for the LS1/LS2 structural reproduction (paper Fig. 6) and the
// Sec. VIII large-script machinery end to end.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "workload/large_scripts.h"

namespace scx {
namespace {

TEST(LargeScriptTest, Ls1MatchesPublishedStructure) {
  GeneratedScript gen = GenerateLargeScript(Ls1Spec());
  EXPECT_EQ(gen.predicted_ops, 101);
  Engine engine(gen.catalog);
  auto compiled = engine.Compile(gen.text);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(conv.ok());
  // Paper Fig. 6: LS1 has 101 operators in the initial operator DAG...
  EXPECT_EQ(conv->result.diagnostics.reachable_groups, 101);
  // ...and 4 shared groups: 3 with 2 consumers, 1 with 3.
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  EXPECT_EQ(cse->result.diagnostics.num_shared_groups, 4);
  const SharedInfo* info = cse->optimizer->shared_info();
  ASSERT_NE(info, nullptr);
  std::multiset<size_t> consumer_counts;
  for (GroupId s : info->shared_groups()) {
    consumer_counts.insert(info->ConsumersOf(s).size());
  }
  EXPECT_EQ(consumer_counts, (std::multiset<size_t>{2, 2, 2, 3}));
}

TEST(LargeScriptTest, Ls2MatchesPublishedStructure) {
  GeneratedScript gen = GenerateLargeScript(Ls2Spec());
  EXPECT_EQ(gen.predicted_ops, 1034);
  OptimizerConfig config;
  config.budget_seconds = 60;
  Engine engine(gen.catalog, config);
  auto compiled = engine.Compile(gen.text);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(conv.ok());
  EXPECT_EQ(conv->result.diagnostics.reachable_groups, 1034);
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  EXPECT_EQ(cse->result.diagnostics.num_shared_groups, 17);
  const SharedInfo* info = cse->optimizer->shared_info();
  std::multiset<size_t> counts;
  for (GroupId s : info->shared_groups()) {
    counts.insert(info->ConsumersOf(s).size());
  }
  std::multiset<size_t> expected;
  for (int i = 0; i < 15; ++i) expected.insert(2);
  expected.insert(4);
  expected.insert(5);
  EXPECT_EQ(counts, expected);
}

TEST(LargeScriptTest, CseSavesOnBothLargeScripts) {
  for (LargeScriptSpec spec : {Ls1Spec(), Ls2Spec()}) {
    GeneratedScript gen = GenerateLargeScript(spec);
    OptimizerConfig config;
    config.budget_seconds = spec.target_ops > 500 ? 60.0 : 30.0;
    Engine engine(gen.catalog, config);
    auto c = engine.Compare(gen.text);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    // Paper Fig. 7: 21% (LS1) and 45% (LS2) savings. The exact figure
    // depends on the proprietary scripts; assert the band's direction.
    EXPECT_LT(c->cost_ratio, 0.95) << "target_ops=" << spec.target_ops;
    EXPECT_FALSE(c->cse.result.diagnostics.budget_exhausted);
  }
}

TEST(LargeScriptTest, RankedRoundsFindGoodPlanUnderTightRoundCap) {
  // With a hard cap well under the full round count, the VIII-B/C rankings
  // should still land within a few percent of the unbounded best.
  GeneratedScript gen = GenerateLargeScript(Ls1Spec());
  OptimizerConfig unlimited;
  OptimizerConfig capped;
  capped.max_rounds = 12;
  Engine e1(gen.catalog, unlimited);
  Engine e2(gen.catalog, capped);
  auto full = e1.Compare(gen.text);
  auto cut = e2.Compare(gen.text);
  ASSERT_TRUE(full.ok() && cut.ok());
  EXPECT_TRUE(cut->cse.result.diagnostics.budget_exhausted);
  EXPECT_LE(cut->cse.result.diagnostics.rounds_executed, 12);
  // Never worse than conventional, and within 25% of the unbounded best.
  EXPECT_LE(cut->cse.cost(), cut->conventional.cost());
  EXPECT_LE(cut->cse.cost(), full->cse.cost() * 1.25);
}

TEST(LargeScriptTest, SmallScaleLs1ExecutesIdenticallyAcrossModes) {
  // Run the full LS1-shaped DAG on the simulated cluster at reduced data
  // scale and verify all three optimizer modes produce the same outputs.
  LargeScriptSpec spec = Ls1Spec();
  spec.rows_per_file = 1500;
  GeneratedScript gen = GenerateLargeScript(spec);
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(gen.catalog, config);
  auto compiled = engine.Compile(gen.text);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::vector<ExecMetrics> runs;
  for (OptimizerMode mode :
       {OptimizerMode::kConventional, OptimizerMode::kNaiveSharing,
        OptimizerMode::kCse}) {
    auto plan = engine.Optimize(*compiled, mode);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto m = engine.Execute(*plan);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    runs.push_back(std::move(m.value()));
  }
  EXPECT_TRUE(SameOutputs(runs[0], runs[1]));
  EXPECT_TRUE(SameOutputs(runs[0], runs[2]));
  // CSE scans each shared module's input once instead of per consumer.
  EXPECT_LT(runs[2].rows_extracted, runs[0].rows_extracted);
  EXPECT_LE(runs[2].bytes_shuffled, runs[0].bytes_shuffled);
}

TEST(LargeScriptTest, GeneratorHonorsCustomSpecs) {
  LargeScriptSpec spec;
  spec.shared_consumers = {2, 5};
  spec.target_ops = 60;
  GeneratedScript gen = GenerateLargeScript(spec);
  Engine engine(gen.catalog);
  auto compiled = engine.Compile(gen.text);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(conv.ok());
  EXPECT_EQ(conv->result.diagnostics.reachable_groups, gen.predicted_ops);
}

TEST(LargeScriptTest, TooSmallTargetStillProducesModules) {
  LargeScriptSpec spec;
  spec.shared_consumers = {2, 2};
  spec.target_ops = 5;  // far below the module footprint
  GeneratedScript gen = GenerateLargeScript(spec);
  Engine engine(gen.catalog);
  auto compiled = engine.Compile(gen.text);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  EXPECT_EQ(cse->result.diagnostics.num_shared_groups, 2);
}

}  // namespace
}  // namespace scx
