// Configuration sweeps (TEST_P): the subset-expansion cap, cluster size,
// and rule toggles must never produce invalid plans, and more search freedom
// must never produce a worse plan.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

class ExpandCapSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExpandCapSweep, ValidPlansAtEveryCap) {
  OptimizerConfig config;
  config.max_expand_cols = GetParam();
  Engine engine(MakePaperCatalog(), config);
  for (const char* script : {kScriptS1, kScriptS2, kScriptS4}) {
    auto c = engine.Compare(script);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    EXPECT_TRUE(ValidatePlan(c->cse.plan()).ok());
    EXPECT_LE(c->cse.cost(), c->conventional.cost() * 1.0001);
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, ExpandCapSweep, ::testing::Values(1, 2, 3, 4, 6));

TEST(ExpandCapSweepTest, LargerCapNeverWorse) {
  // A larger expansion cap strictly enlarges the phase-2 search space, so
  // the best plan can only improve (with an unlimited budget).
  double prev = -1;
  for (int cap : {1, 2, 3, 4}) {
    OptimizerConfig config;
    config.max_expand_cols = cap;
    Engine engine(MakePaperCatalog(), config);
    auto c = engine.Compare(kScriptS1);
    ASSERT_TRUE(c.ok());
    if (prev >= 0) {
      EXPECT_LE(c->cse.cost(), prev * 1.0001) << "cap=" << cap;
    }
    prev = c->cse.cost();
  }
}

class MachineSweep : public ::testing::TestWithParam<int> {};

TEST_P(MachineSweep, OptimizerScalesAcrossClusterSizes) {
  OptimizerConfig config;
  config.cluster.machines = GetParam();
  Engine engine(MakePaperCatalog(), config);
  auto c = engine.Compare(kScriptS1);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(ValidatePlan(c->cse.plan()).ok());
  EXPECT_TRUE(ValidatePlan(c->conventional.plan()).ok());
  // Sharing pays off at every cluster size on S1.
  EXPECT_LT(c->cse.cost(), c->conventional.cost());
}

INSTANTIATE_TEST_SUITE_P(Machines, MachineSweep,
                         ::testing::Values(1, 4, 16, 100, 400));

TEST(RuleToggleTest, EveryCombinationProducesValidPlans) {
  for (bool agg_split : {false, true}) {
    for (bool commute : {false, true}) {
      OptimizerConfig config;
      config.enable_agg_split = agg_split;
      config.enable_join_commute = commute;
      Engine engine(MakePaperCatalog(), config);
      for (const char* script : {kScriptS1, kScriptS3}) {
        auto c = engine.Compare(script);
        ASSERT_TRUE(c.ok()) << c.status().ToString();
        EXPECT_TRUE(ValidatePlan(c->cse.plan()).ok())
            << "agg_split=" << agg_split << " commute=" << commute;
        EXPECT_LE(c->cse.cost(), c->conventional.cost() * 1.0001);
      }
    }
  }
}

TEST(RuleToggleTest, MoreRulesNeverHurtCost) {
  OptimizerConfig all_on;
  OptimizerConfig all_off;
  all_off.enable_agg_split = false;
  all_off.enable_join_commute = false;
  Engine e_on(MakePaperCatalog(), all_on);
  Engine e_off(MakePaperCatalog(), all_off);
  for (const char* script : {kScriptS1, kScriptS2, kScriptS3, kScriptS4}) {
    auto c_on = e_on.Compare(script);
    auto c_off = e_off.Compare(script);
    ASSERT_TRUE(c_on.ok() && c_off.ok());
    EXPECT_LE(c_on->cse.cost(), c_off->cse.cost() * 1.0001) << script;
    EXPECT_LE(c_on->conventional.cost(),
              c_off->conventional.cost() * 1.0001)
        << script;
  }
}

}  // namespace
}  // namespace scx
