// Edge-case and robustness tests across the stack: mixed column types,
// empty intermediate results, one-machine clusters, trace monotonicity,
// aggregate type checking, deep pipelines.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

TEST(EdgeCaseTest, StringAndDoubleColumnsFlowThroughTheStack) {
  Catalog catalog;
  FileDef def;
  def.path = "events.log";
  def.row_count = 2000;
  def.columns = {{"Region", DataType::kString, 6, 10},
                 {"Score", DataType::kDouble, 200, 8},
                 {"Hits", DataType::kInt64, 50, 8}};
  ASSERT_TRUE(catalog.RegisterFile(def).ok());
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(std::move(catalog), config);
  auto compiled = engine.Compile(
      "E = EXTRACT Region,Score,Hits FROM \"events.log\" USING X;\n"
      "R = SELECT Region,Sum(Score) AS Total,Min(Region) AS First,"
      "Avg(Hits) AS MeanHits FROM E GROUP BY Region;\n"
      "OUTPUT R TO \"o\";");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  const auto& rows = m->outputs.at("o");
  EXPECT_EQ(rows.size(), 6u);  // ndv(Region) = 6
  for (const Row& r : rows) {
    EXPECT_TRUE(r[0].is_string());
    EXPECT_TRUE(r[1].is_double());
    EXPECT_TRUE(r[2].is_string());
    EXPECT_TRUE(r[3].is_double());
  }
}

TEST(EdgeCaseTest, SumOverStringIsABindError) {
  Catalog catalog;
  FileDef def;
  def.path = "s.log";
  def.row_count = 10;
  def.columns = {{"S", DataType::kString, 5, 8}};
  ASSERT_TRUE(catalog.RegisterFile(def).ok());
  Engine engine(std::move(catalog));
  auto r = engine.Compile(
      "E = EXTRACT S FROM \"s.log\" USING X;\n"
      "R = SELECT S,Sum(S) AS T FROM E GROUP BY S;\nOUTPUT R TO \"o\";");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
  EXPECT_NE(r.status().message().find("numeric"), std::string::npos);
}

TEST(EdgeCaseTest, FilterEliminatingEverything) {
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(MakeExecutionCatalog(1000), config);
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,D FROM R0 WHERE A > 1000000;\n"
      "R  = SELECT A,Sum(D) AS S FROM F GROUP BY A;\n"
      "OUTPUT R TO \"o\";");
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE(m->outputs.at("o").empty());
}

TEST(EdgeCaseTest, SingleMachineClusterDegeneratesGracefully) {
  OptimizerConfig config;
  config.cluster.machines = 1;
  Engine engine(MakeExecutionCatalog(1000), config);
  for (const char* script : {kScriptS1, kScriptS3}) {
    auto compiled = engine.Compile(script);
    ASSERT_TRUE(compiled.ok());
    for (OptimizerMode mode :
         {OptimizerMode::kConventional, OptimizerMode::kCse}) {
      auto plan = engine.Optimize(*compiled, mode);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto m = engine.Execute(*plan);
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      for (const auto& [path, rows] : m->outputs) {
        EXPECT_FALSE(rows.empty()) << path;
      }
    }
  }
}

TEST(EdgeCaseTest, RoundTraceIsRecordedAndMonotone) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS4);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  const auto& trace = cse->result.diagnostics.round_trace;
  ASSERT_EQ(static_cast<long>(trace.size()),
            cse->result.diagnostics.rounds_executed);
  std::map<GroupId, double> best;
  for (const RoundTraceEntry& e : trace) {
    EXPECT_FALSE(e.assignment.empty());
    EXPECT_GE(e.cost, e.best_so_far);
    auto it = best.find(e.lca);
    if (it != best.end()) {
      EXPECT_LE(e.best_so_far, it->second + 1e-9);  // monotone per LCA
    }
    best[e.lca] = e.best_so_far;
  }
}

TEST(EdgeCaseTest, TraceCanBeDisabled) {
  OptimizerConfig config;
  config.trace_rounds = false;
  Engine engine(MakePaperCatalog(), config);
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  EXPECT_TRUE(cse->result.diagnostics.round_trace.empty());
}

TEST(EdgeCaseTest, DeepAggregationPipeline) {
  // A six-level reduction chain exercises repeated requirement push-down.
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(MakeExecutionCatalog(2000), config);
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "L1 = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
      "L2 = SELECT A,B,Sum(S) AS S FROM L1 GROUP BY A,B;\n"
      "L3 = SELECT A,Sum(S) AS S FROM L2 GROUP BY A;\n"
      "L4 = SELECT Sum(S) AS S FROM L3;\n"
      "OUTPUT L4 TO \"o\";");
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->outputs.at("o").size(), 1u);  // grand total: one row
  // Cross-check the grand total against a direct sum.
  auto direct = engine.Compile(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "T  = SELECT Sum(D) AS S FROM R0;\n"
      "OUTPUT T TO \"o\";");
  ASSERT_TRUE(direct.ok());
  auto dplan = engine.Optimize(*direct, OptimizerMode::kConventional);
  ASSERT_TRUE(dplan.ok());
  auto dm = engine.Execute(*dplan);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(m->outputs.at("o")[0][0], dm->outputs.at("o")[0][0]);
}

TEST(EdgeCaseTest, ManyConsumersOfOneSharedGroup) {
  // Eight consumers: history stays bounded, rounds complete, sharing holds.
  std::string script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n";
  // Seven structurally distinct consumers (an eighth duplicate would be
  // fingerprint-merged into one — see ManyConsumersWithDuplicate below).
  const char* sets[] = {"A", "B", "C", "A,B", "B,C", "A,C", "A,B,C"};
  for (int i = 0; i < 7; ++i) {
    script += "C" + std::to_string(i) + " = SELECT " + sets[i] +
              ",Sum(S) AS T FROM R GROUP BY " + sets[i] + ";\n";
    script += "OUTPUT C" + std::to_string(i) + " TO \"o" +
              std::to_string(i) + "\";\n";
  }
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(script);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_LT(c->cost_ratio, 0.5);  // seven-fold sharing pays well
  EXPECT_EQ(c->cse.result.diagnostics.num_shared_groups, 1);
}

TEST(EdgeCaseTest, DuplicateConsumersAreThemselvesMerged) {
  // Two textually separate but identical consumers of the shared aggregate
  // become one shared group via fingerprints — sharing composes.
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
      "C0 = SELECT B,Sum(S) AS T FROM R GROUP BY B;\n"
      "C1 = SELECT B,Sum(S) AS T FROM R GROUP BY B;\n"
      "OUTPUT C0 TO \"o0\";\nOUTPUT C1 TO \"o1\";";
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(script);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  // Shared groups: R (explicit) and the merged C0/C1 aggregate.
  EXPECT_EQ(c->cse.result.diagnostics.num_shared_groups, 2);
  EXPECT_EQ(c->cse.result.diagnostics.merged_subexpressions, 1);
}

}  // namespace
}  // namespace scx
