// Expression-level CSE (src/plan/expr_cse): structurally duplicate
// ScalarExpr subtrees across one Compute stage's items must collapse to a
// single shared-slot step — including operand-swapped '+'/'*' forms via
// commutative canonicalization — while end-to-end execution stays
// bit-identical to the legacy row path (the pass may only change how often
// a subtree is evaluated, never any produced value).

#include "plan/expr_cse.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "catalog/catalog.h"
#include "exec/executor.h"
#include "plan/scalar.h"

namespace scx {
namespace {

using BinOp = ScalarExpr::BinOp;

ComputeItem Item(ScalarExprPtr expr, ColumnId out) {
  ComputeItem item;
  item.expr = std::move(expr);
  item.out = out;
  item.out_name = "c" + std::to_string(out);
  return item;
}

int CountBinarySteps(const ExprSchedule& sched) {
  int n = 0;
  for (const ExprStep& s : sched.steps) {
    if (s.kind == ScalarExpr::Kind::kBinary) ++n;
  }
  return n;
}

TEST(ExprCseTest, PassthroughItemsShareColumnSteps) {
  // Two items forwarding the same column: one kColumn step, no duplicates
  // counted (only binary memo hits count as eliminations).
  auto a = ScalarExpr::Column(1);
  ExprSchedule sched = BuildExprSchedule({Item(a, 10), Item(a, 11)});
  ASSERT_EQ(sched.item_steps.size(), 2u);
  EXPECT_EQ(sched.item_steps[0], sched.item_steps[1]);
  EXPECT_EQ(sched.duplicates_eliminated, 0);
  EXPECT_FALSE(sched.HasSharing());
}

TEST(ExprCseTest, DuplicateSubtreeEvaluatedOnce) {
  // X = (A+B)*(A+B), Y = (A+B)*C: the (A+B) step must appear once and be
  // referenced three times.
  auto a = ScalarExpr::Column(1);
  auto b = ScalarExpr::Column(2);
  auto c = ScalarExpr::Column(3);
  auto ab = ScalarExpr::Binary(BinOp::kAdd, a, b);
  auto x = ScalarExpr::Binary(BinOp::kMul, ab, ab);
  auto ab2 = ScalarExpr::Binary(BinOp::kAdd, a, b);  // distinct tree object
  auto y = ScalarExpr::Binary(BinOp::kMul, ab2, c);
  ExprSchedule sched = BuildExprSchedule({Item(x, 10), Item(y, 11)});

  // Binary steps: one (A+B), one *, one * — the three duplicate uses of
  // (A+B) fold into one step.
  EXPECT_EQ(CountBinarySteps(sched), 3);
  // Memo hits: x's rhs (A+B), and y's lhs (A+B) = 2. (x's lhs built it.)
  EXPECT_EQ(sched.duplicates_eliminated, 2);
  EXPECT_TRUE(sched.HasSharing());

  // The two items map to distinct multiply steps sharing one operand.
  ASSERT_EQ(sched.item_steps.size(), 2u);
  const ExprStep& sx = sched.steps[sched.item_steps[0]];
  const ExprStep& sy = sched.steps[sched.item_steps[1]];
  EXPECT_EQ(sx.lhs, sx.rhs);      // (A+B)*(A+B): both operands one step
  EXPECT_EQ(sy.lhs, sx.lhs);      // y reuses the same (A+B) step
  EXPECT_NE(sched.item_steps[0], sched.item_steps[1]);
}

TEST(ExprCseTest, CommutativeOperandsCanonicalize) {
  // B+A shares A+B's step; B-A must NOT share A-B's.
  auto a = ScalarExpr::Column(1);
  auto b = ScalarExpr::Column(2);
  auto ab = ScalarExpr::Binary(BinOp::kAdd, a, b);
  auto ba = ScalarExpr::Binary(BinOp::kAdd, b, a);
  ExprSchedule add = BuildExprSchedule({Item(ab, 10), Item(ba, 11)});
  EXPECT_EQ(add.item_steps[0], add.item_steps[1]);
  EXPECT_EQ(add.duplicates_eliminated, 1);

  ExprSchedule mul = BuildExprSchedule(
      {Item(ScalarExpr::Binary(BinOp::kMul, a, b), 10),
       Item(ScalarExpr::Binary(BinOp::kMul, b, a), 11)});
  EXPECT_EQ(mul.item_steps[0], mul.item_steps[1]);

  ExprSchedule sub = BuildExprSchedule(
      {Item(ScalarExpr::Binary(BinOp::kSub, a, b), 10),
       Item(ScalarExpr::Binary(BinOp::kSub, b, a), 11)});
  EXPECT_NE(sub.item_steps[0], sub.item_steps[1]);
  EXPECT_EQ(sub.duplicates_eliminated, 0);

  ExprSchedule div = BuildExprSchedule(
      {Item(ScalarExpr::Binary(BinOp::kDiv, a, b), 10),
       Item(ScalarExpr::Binary(BinOp::kDiv, b, a), 11)});
  EXPECT_NE(div.item_steps[0], div.item_steps[1]);
}

TEST(ExprCseTest, LiteralsDedupByValueAndType) {
  // A+2 twice shares everything; Int(2) and Real(2.0) stay distinct steps
  // (different runtime types produce different arithmetic).
  auto a = ScalarExpr::Column(1);
  auto two_int = ScalarExpr::Literal(Value::Int(2));
  auto two_real = ScalarExpr::Literal(Value::Real(2.0));
  ExprSchedule same = BuildExprSchedule(
      {Item(ScalarExpr::Binary(BinOp::kAdd, a, two_int), 10),
       Item(ScalarExpr::Binary(BinOp::kAdd, a, two_int), 11)});
  EXPECT_EQ(same.item_steps[0], same.item_steps[1]);
  EXPECT_EQ(same.duplicates_eliminated, 1);

  ExprSchedule mixed = BuildExprSchedule(
      {Item(ScalarExpr::Binary(BinOp::kAdd, a, two_int), 10),
       Item(ScalarExpr::Binary(BinOp::kAdd, a, two_real), 11)});
  EXPECT_NE(mixed.item_steps[0], mixed.item_steps[1]);
  EXPECT_EQ(mixed.duplicates_eliminated, 0);
}

TEST(ExprCseTest, StepsAreInDependencyOrder) {
  auto a = ScalarExpr::Column(1);
  auto b = ScalarExpr::Column(2);
  auto ab = ScalarExpr::Binary(BinOp::kAdd, a, b);
  auto nested = ScalarExpr::Binary(
      BinOp::kMul, ScalarExpr::Binary(BinOp::kSub, ab, a), ab);
  ExprSchedule sched = BuildExprSchedule({Item(nested, 10)});
  for (size_t i = 0; i < sched.steps.size(); ++i) {
    const ExprStep& s = sched.steps[i];
    if (s.kind == ScalarExpr::Kind::kBinary) {
      EXPECT_GE(s.lhs, 0);
      EXPECT_GE(s.rhs, 0);
      EXPECT_LT(s.lhs, static_cast<int>(i));
      EXPECT_LT(s.rhs, static_cast<int>(i));
    }
  }
}

// --- Cross-stage pipeline schedules (BuildPipelineSchedule) --------------

TEST(PipelineScheduleTest, SharesSubtreesAcrossStages) {
  // Stage 0 computes X=(A+B)*(A+B); stage 1 computes Y=X+A... in pipeline
  // terms: a second compute whose expression re-lowers (A+B) must hit the
  // first stage's step, because stage outputs are lowered into the SAME
  // value-numbering space.
  auto a = ScalarExpr::Column(1);
  auto b = ScalarExpr::Column(2);
  auto ab = ScalarExpr::Binary(BinOp::kAdd, a, b);
  std::vector<ComputeItem> stage0 = {
      Item(ScalarExpr::Binary(BinOp::kMul, ab, ab), 10),
      Item(a, 11)};
  // Stage 1 sees the schema {10, 11}: X=10 squared again (passthrough step
  // reuse) plus a swapped (B+A)-style reference is impossible here (A and B
  // are out of scope), so reference the stage-0 outputs only.
  std::vector<ComputeItem> stage1 = {
      Item(ScalarExpr::Binary(BinOp::kMul, ScalarExpr::Column(10),
                              ScalarExpr::Column(10)),
           20),
      Item(ScalarExpr::Column(11), 21)};
  PipelineStageDesc d0, d1;
  d0.items = &stage0;
  d1.items = &stage1;
  PipelineSchedule sched = BuildPipelineSchedule({d0, d1});

  ASSERT_EQ(sched.stages.size(), 2u);
  // Stage 1's X*X lowers ColumnId 10 THROUGH the scope to stage 0's
  // multiply step — no fresh kColumn step for 10 and no re-evaluation.
  ASSERT_EQ(sched.stages[1].out_steps.size(), 2u);
  const ExprStep& xsq = sched.steps[sched.stages[1].out_steps[0]];
  EXPECT_EQ(xsq.kind, ScalarExpr::Kind::kBinary);
  EXPECT_EQ(xsq.lhs, sched.stages[0].out_steps[0]);
  EXPECT_EQ(xsq.rhs, sched.stages[0].out_steps[0]);
  // Stage 1's passthrough of 11 IS stage 0's step for 11.
  EXPECT_EQ(sched.stages[1].out_steps[1], sched.stages[0].out_steps[1]);
  // Final outputs are stage 1's, marked live forever.
  EXPECT_TRUE(sched.reshaped);
  ASSERT_EQ(sched.output_steps.size(), 2u);
  for (int s : sched.output_steps) {
    EXPECT_EQ(sched.last_use[static_cast<size_t>(s)], kPipelineOutputUse);
  }
}

TEST(PipelineScheduleTest, PredicatesShareStepsWithItems) {
  // WHERE A > 3 then compute (A+B), A: the predicate's kColumn step for A
  // and the items' A references must be one step, and the filter stage must
  // not count as evaluating anything (has_eval false — selection only).
  std::vector<BoundPredicate> preds(1);
  preds[0].lhs = 1;
  preds[0].op = CompareOp::kGt;
  preds[0].literal = Value::Int(3);
  std::vector<ComputeItem> items = {
      Item(ScalarExpr::Binary(BinOp::kAdd, ScalarExpr::Column(1),
                              ScalarExpr::Column(2)),
           10),
      Item(ScalarExpr::Column(1), 11)};
  PipelineStageDesc d0, d1;
  d0.predicates = &preds;
  d1.items = &items;
  PipelineSchedule sched = BuildPipelineSchedule({d0, d1});

  ASSERT_EQ(sched.stages.size(), 2u);
  EXPECT_TRUE(sched.stages[0].is_filter);
  EXPECT_FALSE(sched.stages[0].has_eval);
  ASSERT_EQ(sched.stages[0].preds.size(), 1u);
  int pred_a = sched.stages[0].preds[0].lhs;
  EXPECT_LT(sched.stages[0].preds[0].rhs, 0);  // literal side
  // The compute stage's A+B lhs and passthrough both resolve to the SAME
  // kColumn step the predicate loaded.
  const ExprStep& add = sched.steps[sched.stages[1].out_steps[0]];
  EXPECT_EQ(add.lhs, pred_a);
  EXPECT_EQ(sched.stages[1].out_steps[1], pred_a);
  // The input column A stays live through the compute stage.
  EXPECT_GE(sched.last_use[static_cast<size_t>(pred_a)], 1);
}

TEST(PipelineScheduleTest, ProjectIsScopeRemapOnly) {
  // compute {10: A+B} then project 10 -> 20: the project stage introduces
  // no new steps and keeps reshaped outputs pointing at the compute step.
  std::vector<ComputeItem> items = {
      Item(ScalarExpr::Binary(BinOp::kAdd, ScalarExpr::Column(1),
                              ScalarExpr::Column(2)),
           10)};
  std::vector<std::pair<ColumnId, ColumnId>> remap = {{10, 20}};
  PipelineStageDesc d0, d1;
  d0.items = &items;
  d1.project = &remap;
  PipelineSchedule sched = BuildPipelineSchedule({d0, d1});

  ASSERT_EQ(sched.stages.size(), 2u);
  EXPECT_TRUE(sched.stages[1].eval_steps.empty());  // nothing interned
  EXPECT_FALSE(sched.stages[1].has_eval);
  ASSERT_EQ(sched.output_steps.size(), 1u);
  EXPECT_EQ(sched.output_steps[0], sched.stages[0].out_steps[0]);
}

TEST(PipelineScheduleTest, StageOutputsShadowChainInputs) {
  // After compute {10: A+B}, a later stage's reference to ColumnId 1 (A)
  // must intern a FRESH kColumn step only if 1 is genuinely a chain input
  // again — but the scope was replaced, so a stage referencing 10 gets the
  // compute step while a reference to 1 would be a new load. Liveness: the
  // dead input columns drop at the compute stage's index.
  std::vector<ComputeItem> s0 = {
      Item(ScalarExpr::Binary(BinOp::kAdd, ScalarExpr::Column(1),
                              ScalarExpr::Column(2)),
           10)};
  std::vector<ComputeItem> s1 = {
      Item(ScalarExpr::Binary(BinOp::kMul, ScalarExpr::Column(10),
                              ScalarExpr::Column(10)),
           20)};
  PipelineStageDesc d0, d1;
  d0.items = &s0;
  d1.items = &s1;
  PipelineSchedule sched = BuildPipelineSchedule({d0, d1});
  // The kColumn loads of A and B die at stage 0 (the compute that consumed
  // them): their last_use is 0, so the runner's compaction stops copying
  // them past that stage.
  for (size_t s = 0; s < sched.steps.size(); ++s) {
    if (sched.steps[s].kind == ScalarExpr::Kind::kColumn) {
      EXPECT_EQ(sched.last_use[s], 0) << "step " << s;
    }
  }
}

// --- End-to-end: the pass must never change results, only work done ------

/// A script whose Compute stage repeats (A+B) three times — once operand-
/// swapped — so the CSE schedule has real duplicates to merge.
constexpr char kDupScript[] = R"(E = EXTRACT A,B,C,D FROM "t.log" USING LogExtractor;
P = SELECT A,(A+B)*(A+B) AS X,(B+A)*C AS Y,(A+B)*C AS Z FROM E;
G = SELECT A,Sum(X) AS SX,Min(Y) AS MY,Max(Z) AS MZ FROM P GROUP BY A;
OUTPUT G TO "dup.out";
)";

Catalog DupCatalog() {
  Catalog catalog;
  Status s = catalog.RegisterLog("t.log", {"A", "B", "C", "D"}, 4000,
                                 {8, 25, 4, 200}, /*data_seed=*/7);
  EXPECT_TRUE(s.ok());
  return catalog;
}

ExecMetrics RunDupScript(int batch_size, int exec_threads) {
  Catalog catalog = DupCatalog();
  OptimizerConfig config;
  config.cluster.machines = 4;
  config.num_threads = 1;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(kDupScript);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();

  ClusterConfig cluster;
  cluster.machines = 4;
  cluster.exec_threads = exec_threads;
  cluster.batch_size = batch_size;
  Executor executor(cluster);
  auto metrics = executor.Execute(optimized->plan());
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return std::move(metrics.value());
}

TEST(ExprCseExecutionTest, BatchedRunCountsDedupedExprsAndBatches) {
  ExecMetrics batched = RunDupScript(/*batch_size=*/256, /*exec_threads=*/1);
  // (B+A) and the second (A+B) hit the memo in every Compute invocation.
  EXPECT_GT(batched.exprs_deduped, 0);
  EXPECT_GT(batched.batches_evaluated, 0);

  // The batch_size=1 legacy row path reports 0 for both by definition.
  ExecMetrics rows = RunDupScript(/*batch_size=*/1, /*exec_threads=*/1);
  EXPECT_EQ(rows.exprs_deduped, 0);
  EXPECT_EQ(rows.batches_evaluated, 0);
}

TEST(ExprCseExecutionTest, BatchedExecutionBitIdenticalToRowPath) {
  ExecMetrics rows = RunDupScript(/*batch_size=*/1, /*exec_threads=*/1);
  for (int batch_size : {2, 3, 256, 4096}) {
    ExecMetrics batched = RunDupScript(batch_size, /*exec_threads=*/1);
    EXPECT_EQ(batched.outputs, rows.outputs) << "batch " << batch_size;
    EXPECT_EQ(batched.rows_output, rows.rows_output) << batch_size;
    EXPECT_EQ(batched.rows_shuffled, rows.rows_shuffled) << batch_size;
    EXPECT_EQ(batched.operator_invocations, rows.operator_invocations)
        << batch_size;
  }
}

TEST(ExprCseExecutionTest, BatchCountersDeterministicAcrossThreads) {
  ExecMetrics serial = RunDupScript(/*batch_size=*/256, /*exec_threads=*/1);
  ExecMetrics parallel = RunDupScript(/*batch_size=*/256, /*exec_threads=*/4);
  EXPECT_EQ(serial.batches_evaluated, parallel.batches_evaluated);
  EXPECT_EQ(serial.exprs_deduped, parallel.exprs_deduped);
  EXPECT_EQ(serial.outputs, parallel.outputs);
}

}  // namespace
}  // namespace scx
