// Intra-query parallel determinism: executing the SAME physical plan with a
// worker pool must be bit-identical to the serial run — every ExecMetrics
// counter AND the raw (uncanonicalized) output rows. This is the contract
// documented in docs/architecture.md §12/§15: partition and (partition,
// morsel) jobs write only their own output slot and all merges happen in
// fixed partition/morsel order, so neither thread count nor morsel size can
// ever change results. Runs under tsan in CI with SCX_NUM_THREADS=4 and an
// odd SCX_MORSEL_SIZE.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

struct PlanUnderTest {
  std::string name;
  PhysicalNodePtr plan;
  int machines = 8;
};

PlanUnderTest OptimizeOnce(const std::string& name, const Catalog& catalog,
                           const std::string& text, OptimizerMode mode,
                           int machines) {
  OptimizerConfig config;
  config.cluster.machines = machines;
  config.num_threads = 1;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(text);
  EXPECT_TRUE(compiled.ok()) << name << ": " << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, mode);
  EXPECT_TRUE(optimized.ok()) << name << ": "
                              << optimized.status().ToString();
  return {name, optimized->plan(), machines};
}

ExecMetrics RunWithThreads(const PlanUnderTest& t, int threads,
                           int batch_size = 0, int morsel_size = 0) {
  ClusterConfig cluster;
  cluster.machines = t.machines;
  cluster.exec_threads = threads;
  cluster.batch_size = batch_size;
  cluster.morsel_size = morsel_size;
  Executor executor(cluster);
  auto metrics = executor.Execute(t.plan);
  EXPECT_TRUE(metrics.ok()) << t.name << ": "
                            << metrics.status().ToString();
  return std::move(metrics.value());
}

void ExpectBitIdentical(const PlanUnderTest& t, const ExecMetrics& serial,
                        const ExecMetrics& parallel) {
  EXPECT_EQ(serial.rows_extracted, parallel.rows_extracted) << t.name;
  EXPECT_EQ(serial.rows_shuffled, parallel.rows_shuffled) << t.name;
  EXPECT_EQ(serial.bytes_shuffled, parallel.bytes_shuffled) << t.name;
  EXPECT_EQ(serial.bytes_spooled, parallel.bytes_spooled) << t.name;
  EXPECT_EQ(serial.rows_spooled, parallel.rows_spooled) << t.name;
  EXPECT_EQ(serial.spool_executions, parallel.spool_executions) << t.name;
  EXPECT_EQ(serial.spool_reads, parallel.spool_reads) << t.name;
  EXPECT_EQ(serial.spool_cache_hits, parallel.spool_cache_hits) << t.name;
  EXPECT_EQ(serial.operator_invocations, parallel.operator_invocations)
      << t.name;
  EXPECT_EQ(serial.rows_output, parallel.rows_output) << t.name;
  // The batch-path counters are accounted on the master from partition
  // sizes alone (per-partition accumulator slots merged in partition
  // order), so they too are thread-count invariant.
  EXPECT_EQ(serial.batches_evaluated, parallel.batches_evaluated) << t.name;
  EXPECT_EQ(serial.exprs_deduped, parallel.exprs_deduped) << t.name;
  EXPECT_EQ(serial.rows_converted, parallel.rows_converted) << t.name;
  EXPECT_EQ(serial.batch_pipeline_breaks, parallel.batch_pipeline_breaks)
      << t.name;
  // The morsel counters are functions of partition live counts and the
  // morsel size only — never of the thread schedule.
  EXPECT_EQ(serial.morsels_evaluated, parallel.morsels_evaluated) << t.name;
  EXPECT_EQ(serial.morsel_steal_count, parallel.morsel_steal_count)
      << t.name;
  // Raw row-for-row equality — not just canonical equivalence. The merge
  // order is part of the determinism contract.
  EXPECT_EQ(serial.outputs, parallel.outputs) << t.name;
}

void CheckScript(const std::string& name, const Catalog& catalog,
                 const std::string& text, OptimizerMode mode,
                 int machines = 8) {
  PlanUnderTest t = OptimizeOnce(name, catalog, text, mode, machines);
  ASSERT_NE(t.plan, nullptr) << name;
  ExecMetrics serial = RunWithThreads(t, 1);
  ExecMetrics parallel = RunWithThreads(t, 4);
  ExpectBitIdentical(t, serial, parallel);
  ASSERT_FALSE(serial.outputs.empty()) << name;
}

class PaperScriptParallel
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(PaperScriptParallel, CseMatchesSerial) {
  CheckScript(GetParam().first, MakeExecutionCatalog(5000), GetParam().second,
              OptimizerMode::kCse);
}

TEST_P(PaperScriptParallel, ConventionalMatchesSerial) {
  CheckScript(GetParam().first, MakeExecutionCatalog(5000), GetParam().second,
              OptimizerMode::kConventional);
}

INSTANTIATE_TEST_SUITE_P(
    PaperScripts, PaperScriptParallel,
    ::testing::Values(std::make_pair("S1", kScriptS1),
                      std::make_pair("S2", kScriptS2),
                      std::make_pair("S3", kScriptS3),
                      std::make_pair("S4", kScriptS4)),
    [](const auto& info) { return info.param.first; });

TEST(ExecutorParallelTest, Ls1MatchesSerial) {
  LargeScriptSpec spec = Ls1Spec();
  spec.rows_per_file = 1500;
  GeneratedScript ls = GenerateLargeScript(spec);
  CheckScript("LS1", ls.catalog, ls.text, OptimizerMode::kCse);
}

TEST(ExecutorParallelTest, Ls2MatchesSerial) {
  LargeScriptSpec spec = Ls2Spec();
  spec.rows_per_file = 400;
  GeneratedScript ls = GenerateLargeScript(spec);
  CheckScript("LS2", ls.catalog, ls.text, OptimizerMode::kCse);
}

TEST(ExecutorParallelTest, ManyThreadsAndFewMachines) {
  // More threads than partitions, and threads > machines: the pool just
  // leaves workers idle, results unchanged.
  PlanUnderTest t = OptimizeOnce("S1", MakeExecutionCatalog(3000), kScriptS1,
                                 OptimizerMode::kCse, /*machines=*/3);
  ExecMetrics serial = RunWithThreads(t, 1);
  ExecMetrics parallel = RunWithThreads(t, 8);
  ExpectBitIdentical(t, serial, parallel);
}

TEST(ExecutorParallelTest, BatchSizeSweepBitIdenticalToRowPath) {
  // Any batch size must produce the exact rows and legacy counters of the
  // batch_size=1 row-at-a-time path, at any thread count. (batch_size=1 is
  // the differential anchor: it runs the verbatim legacy loops.)
  for (auto [name, script] :
       {std::make_pair("S2", kScriptS2), std::make_pair("S4", kScriptS4)}) {
    PlanUnderTest t = OptimizeOnce(name, MakeExecutionCatalog(4000), script,
                                   OptimizerMode::kCse, /*machines=*/4);
    ASSERT_NE(t.plan, nullptr) << name;
    ExecMetrics rows = RunWithThreads(t, /*threads=*/1, /*batch_size=*/1);
    EXPECT_EQ(rows.batches_evaluated, 0) << name;
    EXPECT_EQ(rows.exprs_deduped, 0) << name;
    for (int batch_size : {2, 3, 7, 1024, 4096}) {
      ExecMetrics serial = RunWithThreads(t, 1, batch_size);
      ExecMetrics parallel = RunWithThreads(t, 4, batch_size);
      ExpectBitIdentical(t, serial, parallel);
      // Cross-batch-size: everything but the batch counters matches the
      // row path bit for bit.
      EXPECT_EQ(serial.outputs, rows.outputs)
          << name << " batch " << batch_size;
      EXPECT_EQ(serial.rows_shuffled, rows.rows_shuffled) << batch_size;
      EXPECT_EQ(serial.rows_output, rows.rows_output) << batch_size;
      EXPECT_EQ(serial.spool_cache_hits, rows.spool_cache_hits)
          << batch_size;
      EXPECT_GT(serial.batches_evaluated, 0)
          << name << " batch " << batch_size;
    }
  }
}

TEST(ExecutorParallelTest, SpoolHeavyBatchSweepPreservesSpoolCounters) {
  // A shared aggregate with three consumers: in kCse mode the optimizer
  // spools it, so the batch pipeline's column-batch spool cache must
  // reproduce the row path's spool accounting exactly — one execution,
  // three reads, two cache hits worth of sharing — at every batch size.
  PlanUnderTest t = OptimizeOnce("S2-spool", MakeExecutionCatalog(4000),
                                 kScriptS2, OptimizerMode::kCse,
                                 /*machines=*/4);
  ASSERT_NE(t.plan, nullptr);
  ExecMetrics rows = RunWithThreads(t, /*threads=*/1, /*batch_size=*/1);
  ASSERT_GT(rows.spool_cache_hits, 0) << "S2 kCse must share via a spool";
  EXPECT_EQ(rows.rows_converted, 0);
  EXPECT_EQ(rows.batch_pipeline_breaks, 0);
  for (int batch_size : {2, 61, 4096}) {
    ExecMetrics serial = RunWithThreads(t, 1, batch_size);
    ExecMetrics parallel = RunWithThreads(t, 4, batch_size);
    ExpectBitIdentical(t, serial, parallel);
    EXPECT_EQ(serial.outputs, rows.outputs) << "batch " << batch_size;
    EXPECT_EQ(serial.bytes_spooled, rows.bytes_spooled) << batch_size;
    EXPECT_EQ(serial.rows_spooled, rows.rows_spooled) << batch_size;
    EXPECT_EQ(serial.spool_executions, rows.spool_executions) << batch_size;
    EXPECT_EQ(serial.spool_reads, rows.spool_reads) << batch_size;
    EXPECT_EQ(serial.spool_cache_hits, rows.spool_cache_hits) << batch_size;
    // The pipeline is batch-native end to end: no unsanctioned row bridge
    // (Output's sink conversion is sanctioned and not counted).
    EXPECT_EQ(serial.rows_converted, 0) << batch_size;
    EXPECT_EQ(serial.batch_pipeline_breaks, 0) << batch_size;
  }
}

TEST(ExecutorParallelTest, ExchangeHeavyBatchSweepPreservesShuffleCounters) {
  // Hash exchanges (group-bys over a shared spool) plus a range exchange
  // (the ORDER BY) — formerly the one operator that bridged through rows,
  // now batch-native (columnar quantile boundaries + morsel-binned
  // scatter). Shuffle accounting and raw rows must match the row path at
  // every batch size, with zero bridges.
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING LogExtractor;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
      "R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B ORDER BY A,B;\n"
      "R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;\n"
      "OUTPUT R1 TO \"result1.out\";\n"
      "OUTPUT R2 TO \"result2.out\";\n";
  PlanUnderTest t = OptimizeOnce("orderby", MakeExecutionCatalog(4000),
                                 script, OptimizerMode::kCse, /*machines=*/4);
  ASSERT_NE(t.plan, nullptr);
  ExecMetrics rows = RunWithThreads(t, /*threads=*/1, /*batch_size=*/1);
  ASSERT_GT(rows.rows_shuffled, 0);
  for (int batch_size : {2, 61, 4096}) {
    ExecMetrics serial = RunWithThreads(t, 1, batch_size);
    ExecMetrics parallel = RunWithThreads(t, 4, batch_size);
    ExpectBitIdentical(t, serial, parallel);
    EXPECT_EQ(serial.outputs, rows.outputs) << "batch " << batch_size;
    EXPECT_EQ(serial.rows_shuffled, rows.rows_shuffled) << batch_size;
    EXPECT_EQ(serial.bytes_shuffled, rows.bytes_shuffled) << batch_size;
    EXPECT_EQ(serial.batch_pipeline_breaks, 0) << batch_size;
    EXPECT_EQ(serial.rows_converted, 0) << batch_size;
  }
}

TEST(ExecutorParallelTest, MorselSizeSweepBitIdenticalToRowPath) {
  // The tentpole contract: outputs and legacy counters are bit-identical
  // across every morsel size x thread count combination, and match the
  // batch_size=1 row anchor. At a fixed (batch, morsel) size the batch and
  // morsel counters are thread-invariant too (ExpectBitIdentical); across
  // morsel sizes the batch counters stay fixed (they are functions of live
  // counts and batch_size alone) while the morsel counters move.
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING LogExtractor;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
      "R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B ORDER BY A,B;\n"
      "R2 = SELECT B,C,Sum(S) AS S2 FROM R WHERE S > 10 GROUP BY B,C;\n"
      "OUTPUT R1 TO \"result1.out\";\n"
      "OUTPUT R2 TO \"result2.out\";\n";
  for (auto [name, text] : {std::make_pair("S4", kScriptS4),
                            std::make_pair("orderby-filter", script)}) {
    PlanUnderTest t = OptimizeOnce(name, MakeExecutionCatalog(4000), text,
                                   OptimizerMode::kCse, /*machines=*/4);
    ASSERT_NE(t.plan, nullptr) << name;
    ExecMetrics rows = RunWithThreads(t, /*threads=*/1, /*batch_size=*/1);
    const int batch_size = 64;
    ExecMetrics anchor;  // morsel size 1: maximal morsel fan-out
    bool have_anchor = false;
    for (int morsel_size : {1, 61, 4096, 1 << 30}) {
      ExecMetrics serial = RunWithThreads(t, 1, batch_size, morsel_size);
      ExecMetrics parallel = RunWithThreads(t, 4, batch_size, morsel_size);
      ExpectBitIdentical(t, serial, parallel);
      EXPECT_EQ(serial.outputs, rows.outputs)
          << name << " morsel " << morsel_size;
      EXPECT_EQ(serial.rows_shuffled, rows.rows_shuffled) << morsel_size;
      EXPECT_EQ(serial.bytes_shuffled, rows.bytes_shuffled) << morsel_size;
      EXPECT_EQ(serial.rows_output, rows.rows_output) << morsel_size;
      EXPECT_EQ(serial.rows_converted, 0) << morsel_size;
      EXPECT_EQ(serial.batch_pipeline_breaks, 0) << morsel_size;
      EXPECT_GT(serial.morsels_evaluated, 0) << morsel_size;
      if (!have_anchor) {
        anchor = std::move(serial);
        have_anchor = true;
      } else {
        // Batch counters do not depend on the morsel size.
        EXPECT_EQ(serial.batches_evaluated, anchor.batches_evaluated)
            << name << " morsel " << morsel_size;
        EXPECT_EQ(serial.exprs_deduped, anchor.exprs_deduped) << morsel_size;
        // One-row morsels maximize the job count; whole-partition morsels
        // collapse to one job per non-empty partition (steal count 0).
        EXPECT_LE(serial.morsels_evaluated, anchor.morsels_evaluated)
            << morsel_size;
      }
      if (morsel_size == 1 << 30) {
        EXPECT_EQ(serial.morsel_steal_count, 0) << name;
      }
    }
  }
}

TEST(ExecutorParallelTest, ExecThreadsZeroUsesDefaultAndMatchesSerial) {
  PlanUnderTest t = OptimizeOnce("S2", MakeExecutionCatalog(3000), kScriptS2,
                                 OptimizerMode::kCse, /*machines=*/8);
  ExecMetrics serial = RunWithThreads(t, 1);
  ExecMetrics defaulted = RunWithThreads(t, 0);  // DefaultNumThreads()
  ExpectBitIdentical(t, serial, defaulted);
}

}  // namespace
}  // namespace scx
