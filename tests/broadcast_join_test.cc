// Broadcast hash join tests: the optimizer picks replication when one side
// is tiny relative to the cost of exchanging the big side; the executor
// produces identical results either way.

#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

bool HasKind(const PhysicalNodePtr& root, PhysicalOpKind kind) {
  std::vector<PhysicalNodePtr> stack = {root};
  std::set<const PhysicalNode*> seen;
  while (!stack.empty()) {
    PhysicalNodePtr n = stack.back();
    stack.pop_back();
    if (!seen.insert(n.get()).second) continue;
    if (n->kind == kind) return true;
    for (const auto& c : n->children) stack.push_back(c);
  }
  return false;
}

// A big raw stream joined with a tiny dimension-like aggregate: exchanging
// the raw stream on the join key would dwarf replicating the aggregate.
const char kBigSmallJoin[] = R"(
Big   = EXTRACT A,B,C,D FROM "test.log" USING X;
Small0 = EXTRACT A,B,C,D FROM "test2.log" USING X;
Dim   = SELECT A,Max(D) AS Cap FROM Small0 GROUP BY A;
J     = SELECT Big.A,B,D,Cap FROM Big,Dim WHERE Big.A=Dim.A;
Agg   = SELECT B,Sum(D) AS S FROM J GROUP BY B;
OUTPUT Agg TO "o";
)";

TEST(BroadcastJoinTest, PickedForBigSmallJoins) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kBigSmallJoin);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The 40-row Dim side is broadcast; the 2M-row Big side is not exchanged
  // before the join (ndv(A)=40 would also cripple parallelism).
  EXPECT_TRUE(HasKind(plan->plan(), PhysicalOpKind::kBroadcastExchange))
      << plan->Explain();
  EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
}

TEST(BroadcastJoinTest, NotPickedForComparableSides) {
  // S3's joins are between two similar-size aggregates that the CSE plan
  // already co-partitions for free — broadcasting would add network cost.
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS3);
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(HasKind(plan->plan(), PhysicalOpKind::kBroadcastExchange))
      << plan->Explain();
}

TEST(BroadcastJoinTest, ExecutesCorrectly) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(4000), config);
  auto compiled = engine.Compile(kBigSmallJoin);
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();

  // Reference: force a no-broadcast plan by turning the net cost of
  // broadcast prohibitive is intrusive; instead cross-check against a
  // single-machine run where every strategy degenerates to the same join.
  OptimizerConfig serial_cfg;
  serial_cfg.cluster.machines = 1;
  Engine serial(MakeExecutionCatalog(4000), serial_cfg);
  auto sc = serial.Compile(kBigSmallJoin);
  ASSERT_TRUE(sc.ok());
  auto sp = serial.Optimize(*sc, OptimizerMode::kConventional);
  ASSERT_TRUE(sp.ok());
  auto sm = serial.Execute(*sp);
  ASSERT_TRUE(sm.ok());
  EXPECT_TRUE(SameOutputs(*m, *sm));
}

TEST(BroadcastJoinTest, WorksUnderCseSharing) {
  // The broadcast side reading a shared spool must not break sharing.
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(4000), config);
  const char* script =
      "Big  = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "Dim  = SELECT A,Max(D) AS Cap FROM Big GROUP BY A;\n"
      "J    = SELECT Big.A,B,Cap FROM Big,Dim WHERE Big.A=Dim.A;\n"
      "Agg  = SELECT B,Count(*) AS N FROM J GROUP BY B;\n"
      "OUTPUT Agg TO \"o1\";\nOUTPUT Dim TO \"o2\";";
  auto compiled = engine.Compile(script);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(conv.ok() && cse.ok());
  auto conv_m = engine.Execute(*conv);
  auto cse_m = engine.Execute(*cse);
  ASSERT_TRUE(conv_m.ok() && cse_m.ok());
  EXPECT_TRUE(SameOutputs(*conv_m, *cse_m));
}

}  // namespace
}  // namespace scx
