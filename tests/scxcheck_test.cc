// scxcheck tier-1 smoke: the generative differential-testing harness runs
// >= 200 seeded random scripts through all five oracles (conventional ==
// cse outputs; cse cost <= conventional; serial == parallel optimize +
// execute; plan validity + JSON round-trip; columnar-batch == batch_size=1
// row execution), plus targeted generator edge cases and replay of the
// checked-in fuzz corpus. Every failure message
// carries the script seed, so a red run reproduces with
//   scx_fuzz --iters 1 ... (or GenerateScript(seed) directly).

#include <gtest/gtest.h>

#include <fstream>

#include "testing/catalog_text.h"
#include "testing/diff_harness.h"
#include "testing/json_lite.h"
#include "testing/script_gen.h"

namespace scx {
namespace {

HarnessOptions SmokeOptions() {
  HarnessOptions opts;
  opts.machines = 4;
  opts.threads = 4;
  // The smoke must stay fast: a failing script is minimized by the fuzz CLI
  // run, not inside the unit test.
  opts.minimize = false;
  return opts;
}

ScriptGenOptions SmokeGenOptions() {
  ScriptGenOptions gen;
  gen.max_rows = 1500;  // keep executor-backed oracles cheap
  return gen;
}

void CheckSeeds(uint64_t base, int count, const ScriptGenOptions& gen,
                const char* label) {
  DiffHarness harness(SmokeOptions());
  for (int i = 0; i < count; ++i) {
    uint64_t seed = base + static_cast<uint64_t>(i);
    GeneratedCase c = GenerateScript(seed, gen);
    OracleReport report = harness.Check(c.catalog, c.script, seed);
    ASSERT_TRUE(report.ok)
        << label << ": oracle '" << report.oracle << "' failed for seed "
        << seed << "\ndetail: " << report.detail << "\nscript:\n"
        << c.script;
  }
}

// 8 shards x 25 scripts = 200 random scripts per run, fixed seeds.
class ScxCheckSmoke : public ::testing::TestWithParam<int> {};

TEST_P(ScxCheckSmoke, RandomScriptsPassAllOracles) {
  CheckSeeds(static_cast<uint64_t>(GetParam()) * 1000u, 25,
             SmokeGenOptions(), "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScxCheckSmoke, ::testing::Range(1, 9));

// --- Generator edge cases -------------------------------------------------

TEST(ScxCheckEdgeCases, SingleConsumerScriptsPass) {
  // No sharing at all: conventional and cse must coincide everywhere.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_single_consumer = true;
  CheckSeeds(90001, 12, gen, "single-consumer");
}

TEST(ScxCheckEdgeCases, EmptyInputTablesPass) {
  // rows=0 inputs: every operator sees empty partitions, outputs stay
  // empty-but-present in both modes.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_empty_inputs = true;
  CheckSeeds(91001, 12, gen, "empty-input");
}

TEST(ScxCheckEdgeCases, ExprConsumerScriptsPass) {
  // Every consumer computes deep arithmetic with deliberately repeated
  // subterms: exercises the expression-CSE pass, the typed batch kernels
  // (incl. double division), and the batch-vs-row identity oracle.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_expr_consumers = true;
  CheckSeeds(93001, 12, gen, "expr-consumer");
}

TEST(ScxCheckEdgeCases, DuplicateOutputScriptsPass) {
  // The same result OUTPUT twice (same or different path): spool sharing
  // must not double- or under-count rows.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_duplicate_outputs = true;
  CheckSeeds(92001, 12, gen, "duplicate-output");
}

TEST(ScxCheckEdgeCases, GeneratorIsDeterministic) {
  ScriptGenOptions gen = SmokeGenOptions();
  for (uint64_t seed : {1ull, 77ull, 123456789ull}) {
    GeneratedCase a = GenerateScript(seed, gen);
    GeneratedCase b = GenerateScript(seed, gen);
    EXPECT_EQ(a.script, b.script) << "seed " << seed;
    EXPECT_EQ(CatalogToText(a.catalog), CatalogToText(b.catalog))
        << "seed " << seed;
  }
  // Different seeds should (essentially always) differ.
  EXPECT_NE(GenerateScript(1, gen).script, GenerateScript(2, gen).script);
}

// --- Checked-in corpus regression ----------------------------------------

// Locates the repo's testdata/ directory from the test's working directory
// (tests run from anywhere inside the build tree).
std::string TestdataDir() {
  std::string prefix;
  for (int depth = 0; depth < 6; ++depth, prefix += "../") {
    std::ifstream probe(prefix + "testdata/s1.scope");
    if (probe) return prefix + "testdata";
  }
  return "testdata";
}

TEST(ScxCheckCorpus, CheckedInReprosPass) {
  std::vector<std::string> files =
      ListCorpusFiles(TestdataDir() + "/fuzz_corpus");
  ASSERT_FALSE(files.empty())
      << "no corpus files under testdata/fuzz_corpus";
  for (const std::string& path : files) {
    auto corpus = LoadCorpusFile(path);
    ASSERT_TRUE(corpus.ok()) << path << ": "
                             << corpus.status().ToString();
    HarnessOptions opts = SmokeOptions();
    opts.machines = corpus->machines;
    opts.threads = corpus->threads;
    DiffHarness harness(opts);
    OracleReport report =
        harness.Check(corpus->catalog, corpus->script, corpus->seed);
    EXPECT_TRUE(report.ok)
        << path << ": oracle '" << report.oracle
        << "' failed\ndetail: " << report.detail << "\nscript:\n"
        << corpus->script;
  }
}

TEST(ScxCheckCorpus, CorpusTextRoundTrips) {
  ScriptGenOptions gen = SmokeGenOptions();
  GeneratedCase c = GenerateScript(42, gen);
  CorpusCase original;
  original.seed = 42;
  original.oracle = "outputs";
  original.machines = 4;
  original.threads = 2;
  original.catalog = c.catalog;
  original.script = c.script;
  auto reparsed = ParseCorpusText(CorpusCaseToText(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->seed, original.seed);
  EXPECT_EQ(reparsed->oracle, original.oracle);
  EXPECT_EQ(reparsed->machines, original.machines);
  EXPECT_EQ(reparsed->threads, original.threads);
  EXPECT_EQ(reparsed->script, original.script);
  EXPECT_EQ(CatalogToText(reparsed->catalog), CatalogToText(c.catalog));
}

// --- Minimizer ------------------------------------------------------------

TEST(ScxCheckMinimizer, ShrinksToFailingCore) {
  // An artificial "oracle" exercised via a script that cannot compile: the
  // minimizer must keep exactly the offending statement (plus nothing
  // else), because dropping any other line still reproduces "compile".
  GeneratedCase c = GenerateScript(7, SmokeGenOptions());
  std::string broken = c.script +
                       "BAD = SELECT Nope FROM Missing;\n"
                       "OUTPUT BAD TO \"bad.out\";\n";
  DiffHarness harness(SmokeOptions());
  OracleReport report = harness.Check(c.catalog, broken, 7);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.oracle, "compile");
  std::string minimized = harness.Minimize(c.catalog, broken, "compile");
  // All generated statements are droppable; only the broken one must stay.
  EXPECT_NE(minimized.find("BAD = SELECT"), std::string::npos);
  EXPECT_LT(minimized.size(), broken.size());
  EXPECT_EQ(minimized.find("OUTPUT"), std::string::npos);
}

// --- json_lite ------------------------------------------------------------

TEST(JsonLiteTest, RoundTripsPlanShapedDocuments) {
  const std::string doc =
      "{\"root\":0,\"dag_cost\":1.5e+06,\"nodes\":[{\"id\":0,\"kind\":"
      "\"HashAgg\",\"children\":[1]},{\"id\":1,\"kind\":\"Extract\","
      "\"children\":[]}],\"flag\":true,\"none\":null,\"esc\":\"a\\\"b\\\\c"
      "\\n\\u0007\"}";
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeJson(*parsed), doc);
  const JsonValue* nodes = parsed->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->array.size(), 2u);
  EXPECT_EQ(parsed->Find("dag_cost")->AsNumber(), 1.5e6);
}

TEST(JsonLiteTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nan").ok());
}

}  // namespace
}  // namespace scx
