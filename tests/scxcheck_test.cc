// scxcheck tier-1 smoke: the generative differential-testing harness runs
// >= 200 seeded random scripts through all five oracles (conventional ==
// cse outputs; cse cost <= conventional; serial == parallel optimize +
// execute; plan validity + JSON round-trip; columnar-batch == batch_size=1
// row execution), plus targeted generator edge cases and replay of the
// checked-in fuzz corpus. Every failure message
// carries the script seed, so a red run reproduces with
//   scx_fuzz --iters 1 ... (or GenerateScript(seed) directly).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "api/engine.h"
#include "testing/catalog_text.h"
#include "testing/diff_harness.h"
#include "testing/json_lite.h"
#include "testing/script_gen.h"

namespace scx {
namespace {

HarnessOptions SmokeOptions() {
  HarnessOptions opts;
  opts.machines = 4;
  opts.threads = 4;
  // The smoke must stay fast: a failing script is minimized by the fuzz CLI
  // run, not inside the unit test.
  opts.minimize = false;
  return opts;
}

ScriptGenOptions SmokeGenOptions() {
  ScriptGenOptions gen;
  gen.max_rows = 1500;  // keep executor-backed oracles cheap
  return gen;
}

void CheckSeeds(uint64_t base, int count, const ScriptGenOptions& gen,
                const char* label) {
  DiffHarness harness(SmokeOptions());
  for (int i = 0; i < count; ++i) {
    uint64_t seed = base + static_cast<uint64_t>(i);
    GeneratedCase c = GenerateScript(seed, gen);
    OracleReport report = harness.Check(c.catalog, c.script, seed);
    ASSERT_TRUE(report.ok)
        << label << ": oracle '" << report.oracle << "' failed for seed "
        << seed << "\ndetail: " << report.detail << "\nscript:\n"
        << c.script;
  }
}

// 8 shards x 25 scripts = 200 random scripts per run, fixed seeds.
class ScxCheckSmoke : public ::testing::TestWithParam<int> {};

TEST_P(ScxCheckSmoke, RandomScriptsPassAllOracles) {
  CheckSeeds(static_cast<uint64_t>(GetParam()) * 1000u, 25,
             SmokeGenOptions(), "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScxCheckSmoke, ::testing::Range(1, 9));

// --- Generator edge cases -------------------------------------------------

TEST(ScxCheckEdgeCases, SingleConsumerScriptsPass) {
  // No sharing at all: conventional and cse must coincide everywhere.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_single_consumer = true;
  CheckSeeds(90001, 12, gen, "single-consumer");
}

TEST(ScxCheckEdgeCases, EmptyInputTablesPass) {
  // rows=0 inputs: every operator sees empty partitions, outputs stay
  // empty-but-present in both modes.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_empty_inputs = true;
  CheckSeeds(91001, 12, gen, "empty-input");
}

TEST(ScxCheckEdgeCases, ExprConsumerScriptsPass) {
  // Every consumer computes deep arithmetic with deliberately repeated
  // subterms: exercises the expression-CSE pass, the typed batch kernels
  // (incl. double division), and the batch-vs-row identity oracle.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_expr_consumers = true;
  CheckSeeds(93001, 12, gen, "expr-consumer");
}

TEST(ScxCheckEdgeCases, DuplicateOutputScriptsPass) {
  // The same result OUTPUT twice (same or different path): spool sharing
  // must not double- or under-count rows.
  ScriptGenOptions gen = SmokeGenOptions();
  gen.force_duplicate_outputs = true;
  CheckSeeds(92001, 12, gen, "duplicate-output");
}

TEST(ScxCheckEdgeCases, GeneratorIsDeterministic) {
  ScriptGenOptions gen = SmokeGenOptions();
  for (uint64_t seed : {1ull, 77ull, 123456789ull}) {
    GeneratedCase a = GenerateScript(seed, gen);
    GeneratedCase b = GenerateScript(seed, gen);
    EXPECT_EQ(a.script, b.script) << "seed " << seed;
    EXPECT_EQ(CatalogToText(a.catalog), CatalogToText(b.catalog))
        << "seed " << seed;
  }
  // Different seeds should (essentially always) differ.
  EXPECT_NE(GenerateScript(1, gen).script, GenerateScript(2, gen).script);
}

// --- Checked-in corpus regression ----------------------------------------

// Locates the repo's testdata/ directory from the test's working directory
// (tests run from anywhere inside the build tree).
std::string TestdataDir() {
  std::string prefix;
  for (int depth = 0; depth < 6; ++depth, prefix += "../") {
    std::ifstream probe(prefix + "testdata/s1.scope");
    if (probe) return prefix + "testdata";
  }
  return "testdata";
}

TEST(ScxCheckCorpus, CheckedInReprosPass) {
  std::vector<std::string> files =
      ListCorpusFiles(TestdataDir() + "/fuzz_corpus");
  ASSERT_FALSE(files.empty())
      << "no corpus files under testdata/fuzz_corpus";
  for (const std::string& path : files) {
    auto corpus = LoadCorpusFile(path);
    ASSERT_TRUE(corpus.ok()) << path << ": "
                             << corpus.status().ToString();
    HarnessOptions opts = SmokeOptions();
    opts.machines = corpus->machines;
    opts.threads = corpus->threads;
    opts.fault_plan = corpus->fault_plan;
    DiffHarness harness(opts);
    OracleReport report =
        harness.Check(corpus->catalog, corpus->script, corpus->seed);
    EXPECT_TRUE(report.ok)
        << path << ": oracle '" << report.oracle
        << "' failed\ndetail: " << report.detail << "\nscript:\n"
        << corpus->script;
  }
}

TEST(ScxCheckCorpus, CorpusTextRoundTrips) {
  ScriptGenOptions gen = SmokeGenOptions();
  GeneratedCase c = GenerateScript(42, gen);
  CorpusCase original;
  original.seed = 42;
  original.oracle = "outputs";
  original.machines = 4;
  original.threads = 2;
  original.catalog = c.catalog;
  original.script = c.script;
  auto reparsed = ParseCorpusText(CorpusCaseToText(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->seed, original.seed);
  EXPECT_EQ(reparsed->oracle, original.oracle);
  EXPECT_EQ(reparsed->machines, original.machines);
  EXPECT_EQ(reparsed->threads, original.threads);
  EXPECT_EQ(reparsed->script, original.script);
  EXPECT_EQ(CatalogToText(reparsed->catalog), CatalogToText(c.catalog));
  EXPECT_FALSE(reparsed->fault_plan.Enabled());
}

TEST(ScxCheckCorpus, FaultPlanRoundTrips) {
  GeneratedCase c = GenerateScript(43, SmokeGenOptions());
  CorpusCase original;
  original.seed = 43;
  original.oracle = "fault-identity";
  original.catalog = c.catalog;
  original.script = c.script;
  original.fault_plan.seed = 999;
  original.fault_plan.failure_prob = 0.02;
  original.fault_plan.max_failures = 4;
  original.fault_plan.straggler_prob = 0.25;
  original.fault_plan.straggler_factor = 8.0;
  original.fault_plan.disable_recovery_spool_reads = true;
  original.fault_plan.failures = {{7, 2}, {11, 0}};
  auto reparsed = ParseCorpusText(CorpusCaseToText(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const FaultPlan& f = reparsed->fault_plan;
  EXPECT_EQ(f.seed, original.fault_plan.seed);
  EXPECT_EQ(f.failure_prob, original.fault_plan.failure_prob);
  EXPECT_EQ(f.max_failures, original.fault_plan.max_failures);
  EXPECT_EQ(f.straggler_prob, original.fault_plan.straggler_prob);
  EXPECT_EQ(f.straggler_factor, original.fault_plan.straggler_factor);
  EXPECT_TRUE(f.disable_recovery_spool_reads);
  ASSERT_EQ(f.failures.size(), 2u);
  EXPECT_EQ(f.failures[0].pass, 7);
  EXPECT_EQ(f.failures[0].machine, 2);
  EXPECT_EQ(f.failures[1].pass, 11);
  EXPECT_EQ(f.failures[1].machine, 0);
  // The serialized form is itself round-trip stable (the corpus files are
  // checked in verbatim).
  EXPECT_EQ(CorpusCaseToText(*reparsed), CorpusCaseToText(original));
}

// --- Skewed key distributions ---------------------------------------------

/// Histogram of column A from a seeded synthetic file with `alpha` skew.
std::map<int64_t, int64_t> KeyHistogram(double alpha, uint64_t data_seed) {
  std::string spec = "file skew.log rows=4000 seed=" +
                     std::to_string(data_seed) + " A:64";
  if (alpha > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ":skew=%g", alpha);
    spec += buf;
  }
  spec += " B:16\n";
  auto catalog = ParseCatalogText(spec);
  EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();

  OptimizerConfig config;
  config.cluster.machines = 4;
  config.num_threads = 1;
  Engine engine(*catalog, config);
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,B FROM \"skew.log\" USING LogExtractor;\n"
      "R  = SELECT A,Count(*) AS N FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"hist.out\";\n");
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  EXPECT_TRUE(optimized.ok());
  auto metrics = engine.Execute(*optimized);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();

  std::map<int64_t, int64_t> hist;
  for (const Row& row : metrics->outputs.at("hist.out")) {
    hist[row[0].as_int()] = row[1].as_int();
  }
  return hist;
}

TEST(SkewedKeysTest, HistogramIsAPureFunctionOfSeedAndAlpha) {
  EXPECT_EQ(KeyHistogram(1.5, 9), KeyHistogram(1.5, 9));
  EXPECT_NE(KeyHistogram(1.5, 9), KeyHistogram(0.5, 9))
      << "different alphas must draw different histograms";
  // The data seed permutes which ROW draws which key (the synthetic
  // generator hashes seed ^ row), so XOR-adjacent seeds can produce the
  // same aggregate histogram; seed sensitivity is a raw-row property.
  auto raw_rows = [](uint64_t data_seed) {
    auto catalog = ParseCatalogText("file skew.log rows=64 seed=" +
                                    std::to_string(data_seed) +
                                    " A:64:skew=1.5 B:16\n");
    EXPECT_TRUE(catalog.ok());
    Engine engine(*catalog, OptimizerConfig{});
    auto compiled = engine.Compile(
        "R0 = EXTRACT A,B FROM \"skew.log\" USING LogExtractor;\n"
        "OUTPUT R0 TO \"raw.out\";\n");
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
    EXPECT_TRUE(optimized.ok());
    auto metrics = engine.Execute(*optimized);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return metrics->outputs.at("raw.out");
  };
  EXPECT_EQ(raw_rows(9), raw_rows(9));
  EXPECT_NE(raw_rows(9), raw_rows(10))
      << "different data seeds must draw different rows";
}

TEST(SkewedKeysTest, ConcentrationGrowsWithAlpha) {
  auto hottest_share = [](const std::map<int64_t, int64_t>& hist) {
    int64_t total = 0;
    int64_t hottest = 0;
    for (const auto& [key, count] : hist) {
      total += count;
      hottest = std::max(hottest, count);
    }
    return static_cast<double>(hottest) / static_cast<double>(total);
  };
  double uniform = hottest_share(KeyHistogram(0, 9));
  double mild = hottest_share(KeyHistogram(1.0, 9));
  double heavy = hottest_share(KeyHistogram(3.0, 9));
  EXPECT_LT(uniform, 0.10) << "64 uniform keys: no bucket should dominate";
  EXPECT_GT(mild, uniform);
  EXPECT_GT(heavy, mild);
  // The hottest key's expected share is domain^(-1/(1+alpha)): for 64 keys
  // at alpha=3 that is 64^-0.25 ~ 0.35 of all rows on one machine's key.
  EXPECT_GT(heavy, 0.3)
      << "alpha=3 power law should pile ~35% of rows onto key 0";
}

TEST(SkewedKeysTest, SkewedCatalogTextRoundTrips) {
  auto catalog =
      ParseCatalogText("file s.log rows=10 seed=1 A:8:skew=1.5 B:4\n");
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  std::string rendered = CatalogToText(*catalog);
  EXPECT_NE(rendered.find("A:8:skew=1.5"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("B:4:"), std::string::npos)
      << "alpha=0 columns must render exactly as before the knob existed: "
      << rendered;
  auto again = ParseCatalogText(rendered);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(CatalogToText(*again), rendered);
  EXPECT_FALSE(ParseCatalogText("file s.log rows=10 A:8:skew=-1\n").ok())
      << "negative alpha must be rejected";
}

TEST(SkewedKeysTest, GeneratorSkewKnobIsDeterministic) {
  ScriptGenOptions gen = SmokeGenOptions();
  gen.key_skew_alpha = 1.2;
  GeneratedCase a = GenerateScript(17, gen);
  GeneratedCase b = GenerateScript(17, gen);
  EXPECT_EQ(a.script, b.script);
  EXPECT_EQ(CatalogToText(a.catalog), CatalogToText(b.catalog));
  EXPECT_NE(CatalogToText(a.catalog).find("skew=1.2"), std::string::npos)
      << "key columns must carry the configured alpha:\n"
      << CatalogToText(a.catalog);
  // The skew knob only changes catalogs (data), never script text.
  ScriptGenOptions plain = SmokeGenOptions();
  GeneratedCase c = GenerateScript(17, plain);
  EXPECT_EQ(a.script, c.script);
}

// --- Hostile-cluster smoke ------------------------------------------------

// A small sweep through the fault-oracle family: skewed keys, stragglers,
// and seeded machine kills. Oracles 8-9 assert the recovered runs stay
// bit-identical to the clean ones; the big sweep lives in the hostile-smoke
// CI job (scx_fuzz --profile hostile).
TEST(ScxCheckHostile, FaultedScriptsPassFaultOracles) {
  ScriptGenOptions gen = SmokeGenOptions();
  gen.key_skew_alpha = 1.2;
  for (int i = 0; i < 8; ++i) {
    uint64_t seed = 94001 + static_cast<uint64_t>(i);
    HarnessOptions opts = SmokeOptions();
    opts.fault_plan.seed = seed;
    opts.fault_plan.failure_prob = 0.05;
    opts.fault_plan.max_failures = 4;
    opts.fault_plan.straggler_prob = 0.25;
    opts.fault_plan.straggler_factor = 8.0;
    DiffHarness harness(opts);
    GeneratedCase c = GenerateScript(seed, gen);
    OracleReport report = harness.Check(c.catalog, c.script, seed);
    ASSERT_TRUE(report.ok)
        << "hostile: oracle '" << report.oracle << "' failed for seed "
        << seed << "\ndetail: " << report.detail << "\nscript:\n"
        << c.script;
  }
}

// --- Minimizer ------------------------------------------------------------

TEST(ScxCheckMinimizer, ShrinksToFailingCore) {
  // An artificial "oracle" exercised via a script that cannot compile: the
  // minimizer must keep exactly the offending statement (plus nothing
  // else), because dropping any other line still reproduces "compile".
  GeneratedCase c = GenerateScript(7, SmokeGenOptions());
  std::string broken = c.script +
                       "BAD = SELECT Nope FROM Missing;\n"
                       "OUTPUT BAD TO \"bad.out\";\n";
  DiffHarness harness(SmokeOptions());
  OracleReport report = harness.Check(c.catalog, broken, 7);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.oracle, "compile");
  std::string minimized = harness.Minimize(c.catalog, broken, "compile");
  // All generated statements are droppable; only the broken one must stay.
  EXPECT_NE(minimized.find("BAD = SELECT"), std::string::npos);
  EXPECT_LT(minimized.size(), broken.size());
  EXPECT_EQ(minimized.find("OUTPUT"), std::string::npos);
}

// --- json_lite ------------------------------------------------------------

TEST(JsonLiteTest, RoundTripsPlanShapedDocuments) {
  const std::string doc =
      "{\"root\":0,\"dag_cost\":1.5e+06,\"nodes\":[{\"id\":0,\"kind\":"
      "\"HashAgg\",\"children\":[1]},{\"id\":1,\"kind\":\"Extract\","
      "\"children\":[]}],\"flag\":true,\"none\":null,\"esc\":\"a\\\"b\\\\c"
      "\\n\\u0007\"}";
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeJson(*parsed), doc);
  const JsonValue* nodes = parsed->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->array.size(), 2u);
  EXPECT_EQ(parsed->Find("dag_cost")->AsNumber(), 1.5e6);
}

TEST(JsonLiteTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nan").ok());
}

}  // namespace
}  // namespace scx
