// Multi-column equi-join tests: binder key extraction, optimizer subset
// alignment (co-partitioning on aligned subsets of a 2-key join), and
// executor correctness.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

const char kTwoKeyJoin[] = R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING X;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING X;
RA = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;
TA = SELECT A,B,Sum(D) AS T FROM T0 GROUP BY A,B;
J  = SELECT RA.A,RA.B,S,T FROM RA,TA WHERE RA.A=TA.A AND RA.B=TA.B;
OUTPUT J TO "j";
)";

TEST(MultiKeyJoinTest, BinderExtractsBothKeys) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kTwoKeyJoin);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const LogicalNodePtr& j = compiled->bound.results.at("J");
  const LogicalNodePtr join =
      j->kind() == LogicalOpKind::kJoin ? j : j->child(0);
  ASSERT_EQ(join->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(join->join_keys.size(), 2u);
}

TEST(MultiKeyJoinTest, PlanValidatesAndCoPartitions) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kTwoKeyJoin);
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
}

TEST(MultiKeyJoinTest, ExecutesCorrectly) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(3000), config);
  auto compiled = engine.Compile(kTwoKeyJoin);
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  // Reference: single machine.
  OptimizerConfig serial_cfg;
  serial_cfg.cluster.machines = 1;
  Engine serial(MakeExecutionCatalog(3000), serial_cfg);
  auto sc = serial.Compile(kTwoKeyJoin);
  auto sp = serial.Optimize(*sc, OptimizerMode::kConventional);
  ASSERT_TRUE(sp.ok());
  auto sm = serial.Execute(*sp);
  ASSERT_TRUE(sm.ok());
  EXPECT_TRUE(SameOutputs(*m, *sm));
  EXPECT_FALSE(m->outputs.at("j").empty());
}

TEST(MultiKeyJoinTest, SharedInputJoinAcrossModes) {
  // Both join sides derive from one shared aggregate (S4-style) with a
  // two-column key — the paper's conflicting-requirements scenario with a
  // composite key.
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
      "R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;\n"
      "R2 = SELECT A,B,Max(S) AS S2 FROM R GROUP BY A,B;\n"
      "J  = SELECT R1.A,R1.B,S1,S2 FROM R1,R2 "
      "WHERE R1.A=R2.A AND R1.B=R2.B;\n"
      "OUTPUT J TO \"j\";\nOUTPUT R1 TO \"o1\";";
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(3000), config);
  auto compiled = engine.Compile(script);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ExecMetrics results[3];
  int i = 0;
  for (OptimizerMode mode :
       {OptimizerMode::kConventional, OptimizerMode::kNaiveSharing,
        OptimizerMode::kCse}) {
    auto plan = engine.Optimize(*compiled, mode);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
    auto m = engine.Execute(*plan);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    results[i++] = std::move(m.value());
  }
  EXPECT_TRUE(SameOutputs(results[0], results[1]));
  EXPECT_TRUE(SameOutputs(results[0], results[2]));
}

TEST(MultiKeyJoinTest, MixedEquiAndRangePredicates) {
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,B,C,D FROM \"test2.log\" USING X;\n"
      "RA = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
      "TA = SELECT A,B,Sum(D) AS T FROM T0 GROUP BY A,B;\n"
      "J  = SELECT RA.A,S,T FROM RA,TA "
      "WHERE RA.A=TA.A AND RA.B < TA.B;\n"
      "OUTPUT J TO \"j\";";
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(MakeExecutionCatalog(2000), config);
  auto compiled = engine.Compile(script);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok());
  // One equi key => co-partitioned on A; residual B-inequality applied.
  EXPECT_FALSE(m->outputs.at("j").empty());
}

}  // namespace
}  // namespace scx
