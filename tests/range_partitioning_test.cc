// Range-partitioning tests: property satisfaction, optimizer choice between
// gather-to-serial and parallel range-partitioned ordered output, and
// runtime global ordering.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

TEST(RangePropsTest, RangeSatisfiesColocationSubsetRule) {
  // Range partitioning co-locates equal rows just like hash partitioning,
  // so it satisfies grouping requirements via the same subset rule.
  PartitioningReq req = PartitioningReq::SubsetOf(ColumnSet::Of({1, 2, 3}));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Range({2})));
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Range({3, 1})));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Range({4})));
}

TEST(RangePropsTest, RangeExactRequiresOrderedMatch) {
  PartitioningReq req = PartitioningReq::RangeExactly({1, 2});
  EXPECT_TRUE(req.SatisfiedBy(Partitioning::Range({1, 2})));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Range({2, 1})));  // order matters
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Hash(ColumnSet::Of({1, 2}))));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Serial()));
}

TEST(RangePropsTest, HashExactNotSatisfiedByRange) {
  PartitioningReq req = PartitioningReq::Exactly(ColumnSet::Of({1}));
  EXPECT_FALSE(req.SatisfiedBy(Partitioning::Range({1})));
}

TEST(RangeOptimizerTest, LargeOrderedOutputUsesRangePartitioning) {
  // A big ordered output: gathering everything to one machine is costed
  // against range partitioning + per-partition sort; the parallel plan wins.
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C ORDER BY B;\n"
      "OUTPUT R TO \"sorted.out\";");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool has_range = false, has_gather = false;
  std::vector<PhysicalNodePtr> stack = {plan->plan()};
  std::set<const PhysicalNode*> seen;
  while (!stack.empty()) {
    PhysicalNodePtr n = stack.back();
    stack.pop_back();
    if (!seen.insert(n.get()).second) continue;
    if (n->kind == PhysicalOpKind::kRangeExchange) has_range = true;
    if (n->kind == PhysicalOpKind::kGather) has_gather = true;
    for (const auto& c : n->children) stack.push_back(c);
  }
  EXPECT_TRUE(has_range);
  EXPECT_FALSE(has_gather);
  EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
}

TEST(RangeExecutorTest, RangePartitionedOutputIsGloballySorted) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  // Large enough that the range plan wins over gather.
  Engine engine(MakeExecutionCatalog(20000), config);
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C ORDER BY B,C;\n"
      "OUTPUT R TO \"o\";");
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  const std::vector<Row>& rows = m->outputs.at("o");
  ASSERT_GT(rows.size(), 10u);
  // Globally sorted on (B, C) — positions 1, 2 of the output schema.
  for (size_t i = 1; i < rows.size(); ++i) {
    auto prev = std::make_pair(rows[i - 1][1], rows[i - 1][2]);
    auto cur = std::make_pair(rows[i][1], rows[i][2]);
    EXPECT_LE(prev, cur) << "row " << i;
  }
}

TEST(RangeExecutorTest, EqualKeysStayTogether) {
  // Aggregating over range-partitioned data must be exact: grouping on B
  // downstream of a range exchange on B relies on co-location.
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(5000), config);
  const char* script =
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT B,Sum(D) AS S FROM R0 GROUP BY B ORDER BY B;\n"
      "OUTPUT R TO \"o\";";
  auto compiled = engine.Compile(script);
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto m = engine.Execute(*plan);
  ASSERT_TRUE(m.ok());
  // One row per distinct B (ndv(B)=50 in the execution catalog).
  std::set<int64_t> bs;
  for (const Row& r : m->outputs.at("o")) {
    EXPECT_TRUE(bs.insert(r[0].as_int()).second)
        << "duplicate group " << r[0].as_int();
  }
  EXPECT_EQ(bs.size(), 50u);
}

TEST(RangeExecutorTest, OrderedSharedOutputAcrossModes) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(8000), config);
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
      "R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B ORDER BY B,A;\n"
      "R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;\n"
      "OUTPUT R1 TO \"o1\";\nOUTPUT R2 TO \"o2\";";
  auto compiled = engine.Compile(script);
  ASSERT_TRUE(compiled.ok());
  for (OptimizerMode mode :
       {OptimizerMode::kConventional, OptimizerMode::kNaiveSharing,
        OptimizerMode::kCse}) {
    auto plan = engine.Optimize(*compiled, mode);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto m = engine.Execute(*plan);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    const std::vector<Row>& rows = m->outputs.at("o1");
    for (size_t i = 1; i < rows.size(); ++i) {
      auto prev = std::make_pair(rows[i - 1][1], rows[i - 1][0]);
      auto cur = std::make_pair(rows[i][1], rows[i][0]);
      EXPECT_LE(prev, cur);
    }
  }
}

}  // namespace
}  // namespace scx
