// RowKeyTable unit tests: dense insertion-order ids, collision handling,
// rehash growth, and the empty-key (grand-total) case.

#include "exec/row_key_table.h"

#include <gtest/gtest.h>

#include <vector>

namespace scx {
namespace {

Row IntRow(int64_t a, int64_t b) { return Row{Value::Int(a), Value::Int(b)}; }

TEST(RowKeyTableTest, AssignsDenseInsertionOrderIds) {
  RowKeyTable table;
  const std::vector<int> key_pos = {0};
  auto [id0, ins0] = table.FindOrInsert(IntRow(7, 100), key_pos);
  auto [id1, ins1] = table.FindOrInsert(IntRow(3, 200), key_pos);
  auto [id2, ins2] = table.FindOrInsert(IntRow(7, 300), key_pos);
  EXPECT_TRUE(ins0);
  EXPECT_TRUE(ins1);
  EXPECT_FALSE(ins2);  // same key as the first row
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, id0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.KeyAt(0), (Row{Value::Int(7)}));
  EXPECT_EQ(table.KeyAt(1), (Row{Value::Int(3)}));
}

TEST(RowKeyTableTest, FindDoesNotInsert) {
  RowKeyTable table;
  const std::vector<int> key_pos = {0};
  EXPECT_EQ(table.Find(IntRow(1, 0), key_pos), RowKeyTable::kNotFound);
  table.FindOrInsert(IntRow(1, 0), key_pos);
  EXPECT_EQ(table.Find(IntRow(1, 99), key_pos), 0u);
  EXPECT_EQ(table.Find(IntRow(2, 0), key_pos), RowKeyTable::kNotFound);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RowKeyTableTest, CompositeKeysCompareAllPositions) {
  RowKeyTable table;
  const std::vector<int> key_pos = {0, 1};
  auto [id0, ins0] = table.FindOrInsert(IntRow(1, 2), key_pos);
  auto [id1, ins1] = table.FindOrInsert(IntRow(2, 1), key_pos);
  auto [id2, ins2] = table.FindOrInsert(IntRow(1, 2), key_pos);
  EXPECT_TRUE(ins0);
  EXPECT_TRUE(ins1);
  EXPECT_FALSE(ins2);
  EXPECT_NE(id0, id1);
  EXPECT_EQ(id2, id0);
}

TEST(RowKeyTableTest, EmptyKeyMapsEveryRowToOneGroup) {
  // The grand-total aggregation case: no grouping columns.
  RowKeyTable table;
  const std::vector<int> no_cols;
  auto [id0, ins0] = table.FindOrInsert(IntRow(1, 2), no_cols);
  auto [id1, ins1] = table.FindOrInsert(IntRow(3, 4), no_cols);
  EXPECT_TRUE(ins0);
  EXPECT_FALSE(ins1);
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 0u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.KeyAt(0).empty());
}

TEST(RowKeyTableTest, CollidingHashesStayDistinct) {
  // Force distinct keys onto the same hash: open addressing must probe past
  // the collision and keep both keys findable with separate ids.
  RowKeyTable table;
  const uint64_t hash = 0xdeadbeefULL;
  auto [id0, ins0] = table.FindOrInsertKey(Row{Value::Int(1)}, hash);
  auto [id1, ins1] = table.FindOrInsertKey(Row{Value::Int(2)}, hash);
  auto [id2, ins2] = table.FindOrInsertKey(Row{Value::Int(1)}, hash);
  auto [id3, ins3] = table.FindOrInsertKey(Row{Value::Int(2)}, hash);
  EXPECT_TRUE(ins0);
  EXPECT_TRUE(ins1);
  EXPECT_FALSE(ins2);
  EXPECT_FALSE(ins3);
  EXPECT_NE(id0, id1);
  EXPECT_EQ(id2, id0);
  EXPECT_EQ(id3, id1);
}

TEST(RowKeyTableTest, SurvivesRehash) {
  // Default capacity is tiny; hundreds of keys force several growth steps.
  RowKeyTable table;
  const std::vector<int> key_pos = {0};
  const int kKeys = 500;
  for (int i = 0; i < kKeys; ++i) {
    auto [id, inserted] = table.FindOrInsert(IntRow(i, 0), key_pos);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(id, static_cast<size_t>(i));  // ids stay dense across growth
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(table.Find(IntRow(i, 7), key_pos), static_cast<size_t>(i));
    EXPECT_EQ(table.KeyAt(static_cast<size_t>(i)), (Row{Value::Int(i)}));
  }
  EXPECT_EQ(table.Find(IntRow(kKeys, 0), key_pos), RowKeyTable::kNotFound);
}

TEST(RowKeyTableTest, PreSizingAcceptsExpectedKeys) {
  RowKeyTable table(1000);
  const std::vector<int> key_pos = {0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(table.FindOrInsert(IntRow(i, 0), key_pos).second);
  }
  EXPECT_EQ(table.size(), 1000u);
  EXPECT_EQ(table.Find(IntRow(123, 0), key_pos), 123u);
}

TEST(RowKeyTableTest, MixedTypeKeys) {
  RowKeyTable table;
  const std::vector<int> key_pos = {0, 1};
  Row a{Value::Str("x"), Value::Real(1.5)};
  Row b{Value::Str("x"), Value::Real(2.5)};
  auto [id0, ins0] = table.FindOrInsert(a, key_pos);
  auto [id1, ins1] = table.FindOrInsert(b, key_pos);
  EXPECT_TRUE(ins0);
  EXPECT_TRUE(ins1);
  EXPECT_NE(id0, id1);
  EXPECT_EQ(table.Find(a, key_pos), id0);
  EXPECT_EQ(table.Find(b, key_pos), id1);
}

}  // namespace
}  // namespace scx
