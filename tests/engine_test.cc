// Engine facade tests: compile/optimize/execute lifecycle and error paths.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

TEST(EngineTest, CompileOptimizeExecute) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(2000), config);
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_GT(optimized->cost(), 0);
  EXPECT_FALSE(optimized->Explain().empty());
  auto metrics = engine.Execute(*optimized);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->outputs.size(), 2u);
}

TEST(EngineTest, CompileReportsParseErrors) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile("THIS IS NOT A SCRIPT");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(EngineTest, CompileReportsBindErrors) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R = SELECT A FROM MISSING; OUTPUT R TO \"o\";");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(EngineTest, CompiledScriptIsReusableAcrossModes) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  // Optimize the SAME compiled script in both modes, twice each: the memo
  // clones payloads, so runs must not interfere.
  auto c1 = engine.Optimize(*compiled, OptimizerMode::kCse);
  auto v1 = engine.Optimize(*compiled, OptimizerMode::kConventional);
  auto c2 = engine.Optimize(*compiled, OptimizerMode::kCse);
  auto v2 = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(c1.ok() && v1.ok() && c2.ok() && v2.ok());
  EXPECT_DOUBLE_EQ(c1->cost(), c2->cost());
  EXPECT_DOUBLE_EQ(v1->cost(), v2->cost());
}

TEST(EngineTest, CompareComputesRatio) {
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(kScriptS1);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c->cost_ratio, c->cse.cost() / c->conventional.cost(), 1e-12);
}

TEST(EngineTest, DiagnosticsExposed) {
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(kScriptS1);
  ASSERT_TRUE(c.ok());
  const OptimizeDiagnostics& d = c->cse.result.diagnostics;
  EXPECT_EQ(d.num_shared_groups, 1);
  EXPECT_EQ(d.explicit_shared, 1);
  EXPECT_EQ(d.merged_subexpressions, 0);
  EXPECT_GT(d.rounds_planned, 0);
  EXPECT_GT(d.optimize_seconds, 0);
  EXPECT_EQ(d.lca_of.size(), 1u);
  EXPECT_GE(d.history_sizes.begin()->second, 3);
  EXPECT_DOUBLE_EQ(d.final_cost, c->cse.cost());
}

TEST(EngineTest, ExecMetricsToJsonCarriesEveryCounter) {
  // Regression for the scx_cli --json --execute surface: the JSON must
  // carry every ExecMetrics counter, including the batch-pipeline ones
  // (batches_evaluated / exprs_deduped / rows_converted /
  // batch_pipeline_breaks) next to the spool counters.
  OptimizerConfig config;
  config.cluster.machines = 4;
  config.cluster.batch_size = 256;  // pinned: SCX_BATCH_SIZE must not leak in
  Engine engine(MakeExecutionCatalog(2000), config);
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(optimized.ok());
  auto metrics = engine.Execute(*optimized);
  ASSERT_TRUE(metrics.ok());

  std::string json = ExecMetricsToJson(*metrics);
  for (const char* key :
       {"\"rows_extracted\":", "\"rows_shuffled\":", "\"bytes_shuffled\":",
        "\"bytes_spooled\":", "\"rows_spooled\":", "\"spool_executions\":",
        "\"spool_reads\":", "\"spool_cache_hits\":",
        "\"operator_invocations\":", "\"rows_output\":",
        "\"batches_evaluated\":", "\"exprs_deduped\":",
        "\"rows_converted\":", "\"batch_pipeline_breaks\":",
        "\"morsels_evaluated\":", "\"morsel_steal_count\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Counter values round-trip: spot-check the two batch counters against
  // the struct (S1 runs with batch_size 256, so batches > 0).
  EXPECT_NE(json.find("\"batches_evaluated\":" +
                      std::to_string(metrics->batches_evaluated)),
            std::string::npos);
  EXPECT_NE(json.find("\"exprs_deduped\":" +
                      std::to_string(metrics->exprs_deduped)),
            std::string::npos);
  EXPECT_GT(metrics->batches_evaluated, 0);
  // The pipeline is batch-native end to end: no unsanctioned row bridge
  // anywhere (Output's sink conversion is sanctioned and not counted).
  EXPECT_EQ(metrics->rows_converted, 0);
  EXPECT_EQ(metrics->batch_pipeline_breaks, 0);
  EXPECT_GT(metrics->morsels_evaluated, 0);
}

TEST(EngineTest, BatchSizeConfigSelectsRowPath) {
  // ClusterConfig.batch_size = 1 is the legacy row path: identical outputs,
  // zero batch counters.
  OptimizerConfig batched_cfg;
  batched_cfg.cluster.machines = 4;
  batched_cfg.cluster.batch_size = 256;  // pinned against SCX_BATCH_SIZE
  Engine batched(MakeExecutionCatalog(2000), batched_cfg);
  OptimizerConfig row_cfg = batched_cfg;
  row_cfg.cluster.batch_size = 1;
  Engine rowwise(MakeExecutionCatalog(2000), row_cfg);

  auto run = [](Engine& e) {
    auto compiled = e.Compile(kScriptS1);
    EXPECT_TRUE(compiled.ok());
    auto optimized = e.Optimize(*compiled, OptimizerMode::kCse);
    EXPECT_TRUE(optimized.ok());
    auto metrics = e.Execute(*optimized);
    EXPECT_TRUE(metrics.ok());
    return std::move(metrics.value());
  };
  ExecMetrics b = run(batched);
  ExecMetrics r = run(rowwise);
  EXPECT_GT(b.batches_evaluated, 0);
  EXPECT_EQ(r.batches_evaluated, 0);
  EXPECT_EQ(r.exprs_deduped, 0);
  EXPECT_EQ(r.rows_converted, 0);
  EXPECT_EQ(r.batch_pipeline_breaks, 0);
  EXPECT_EQ(b.outputs, r.outputs);
  EXPECT_EQ(b.rows_output, r.rows_output);
}

TEST(EngineTest, OptimizerIntrospectionAvailable) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  EXPECT_NE(cse->optimizer->shared_info(), nullptr);
  EXPECT_GT(cse->optimizer->memo().num_groups(), 0);
}

}  // namespace
}  // namespace scx
