// Memo substrate tests: construction from a logical DAG, parent queries,
// topological order, reference redirection, expression dedup.

#include <gtest/gtest.h>

#include "memo/memo.h"
#include "plan/binder.h"
#include "script/parser.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

Memo MemoOf(const std::string& script) {
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto bound = BindScript(*ast, catalog);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return Memo::FromLogicalDag(bound->root);
}

GroupId FindGroup(const Memo& memo, LogicalOpKind kind,
                  const std::string& result_name = "") {
  for (GroupId g = 0; g < memo.num_groups(); ++g) {
    const GroupExpr& e = memo.group(g).initial_expr();
    if (e.op->kind() == kind &&
        (result_name.empty() || e.op->result_name == result_name)) {
      return g;
    }
  }
  return kInvalidGroup;
}

TEST(MemoTest, OneGroupPerDagNode) {
  Memo memo = MemoOf(kScriptS1);
  // S1 DAG: Extract, GbAgg(R), GbAgg(R1), GbAgg(R2), 2 Outputs, Sequence.
  EXPECT_EQ(memo.num_groups(), 7);
  EXPECT_EQ(memo.TopologicalOrder().size(), 7u);
}

TEST(MemoTest, SharedNodeHasTwoParents) {
  Memo memo = MemoOf(kScriptS1);
  GroupId r = FindGroup(memo, LogicalOpKind::kGbAgg, "R");
  ASSERT_NE(r, kInvalidGroup);
  EXPECT_EQ(memo.ParentsOf(r).size(), 2u);
}

TEST(MemoTest, TopologicalOrderChildrenFirst) {
  Memo memo = MemoOf(kScriptS1);
  std::vector<GroupId> order = memo.TopologicalOrder();
  std::map<GroupId, size_t> pos;
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GroupId g : order) {
    for (const GroupExpr& e : memo.group(g).exprs()) {
      for (GroupId c : e.children) {
        EXPECT_LT(pos.at(c), pos.at(g));
      }
    }
  }
  EXPECT_EQ(order.back(), memo.root());
}

TEST(MemoTest, RedirectChildReferences) {
  Memo memo = MemoOf(kScriptS1);
  GroupId r = FindGroup(memo, LogicalOpKind::kGbAgg, "R");
  GroupExpr spool;
  spool.op = std::make_shared<LogicalNode>(
      LogicalOpKind::kSpool, memo.group(r).schema(),
      std::vector<LogicalNodePtr>{});
  spool.children = {r};
  GroupId spool_id = memo.NewGroup(std::move(spool));
  memo.RedirectChildReferencesExcept(r, spool_id, spool_id);
  EXPECT_EQ(memo.ParentsOf(spool_id).size(), 2u);
  EXPECT_EQ(memo.ParentsOf(r), std::vector<GroupId>{spool_id});
}

TEST(MemoTest, AddExprDeduplicates) {
  Memo memo = MemoOf(kScriptS1);
  GroupId r = FindGroup(memo, LogicalOpKind::kGbAgg, "R");
  Group& group = memo.group(r);
  GroupExpr copy = group.initial_expr();
  copy.op = copy.op->Clone();
  EXPECT_FALSE(group.AddExpr(copy));  // structurally identical
  EXPECT_EQ(group.exprs().size(), 1u);
  // A different child makes it distinct.
  copy.children = {r};
  EXPECT_TRUE(group.AddExpr(copy));
  EXPECT_EQ(group.exprs().size(), 2u);
}

TEST(MemoTest, PayloadHashDistinguishesOperators) {
  Memo memo = MemoOf(kScriptS1);
  GroupId r = FindGroup(memo, LogicalOpKind::kGbAgg, "R");
  GroupId r1 = FindGroup(memo, LogicalOpKind::kGbAgg, "R1");
  const LogicalNode& a = *memo.group(r).initial_expr().op;
  const LogicalNode& b = *memo.group(r1).initial_expr().op;
  EXPECT_NE(OperatorPayloadHash(a), OperatorPayloadHash(b));
  EXPECT_FALSE(OperatorPayloadEquals(a, b));
  EXPECT_TRUE(OperatorPayloadEquals(a, a));
  EXPECT_EQ(OperatorPayloadHash(a), OperatorPayloadHash(*a.Clone()));
}

TEST(MemoTest, ClonedPayloadIsolation) {
  // Memo construction clones payloads so optimizer-side rewrites never leak
  // into the caller's bound DAG.
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(kScriptS1);
  auto bound = BindScript(*ast, catalog);
  ASSERT_TRUE(bound.ok());
  Memo memo = Memo::FromLogicalDag(bound->root);
  GroupId r = FindGroup(memo, LogicalOpKind::kGbAgg, "R");
  memo.group(r).initial_expr().op->group_cols.clear();
  EXPECT_EQ(bound->results.at("R")->group_cols.size(), 3u);
}

TEST(MemoTest, ToStringListsGroups) {
  Memo memo = MemoOf(kScriptS1);
  std::string dump = memo.ToString();
  EXPECT_NE(dump.find("group 0"), std::string::npos);
  EXPECT_NE(dump.find("root:"), std::string::npos);
}

}  // namespace
}  // namespace scx
