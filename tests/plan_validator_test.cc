// Plan-validator tests: every optimizer-produced plan passes; hand-broken
// plans are rejected with the right diagnostics.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

OptimizedScript OptimizeScript(const char* script, OptimizerMode mode) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(script);
  EXPECT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, mode);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan.value());
}

TEST(PlanValidatorTest, AllPaperScriptsAllModesValidate) {
  for (const char* script : {kScriptS1, kScriptS2, kScriptS3, kScriptS4}) {
    for (OptimizerMode mode :
         {OptimizerMode::kConventional, OptimizerMode::kNaiveSharing,
          OptimizerMode::kCse}) {
      OptimizedScript plan = OptimizeScript(script, mode);
      EXPECT_TRUE(ValidatePlan(plan.plan()).ok());
    }
  }
}

TEST(PlanValidatorTest, LargeScriptValidates) {
  GeneratedScript gen = GenerateLargeScript(Ls1Spec());
  Engine engine(gen.catalog);
  auto compiled = engine.Compile(gen.text);
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(plan->plan()).ok());
}

TEST(PlanValidatorTest, RejectsNullPlan) {
  EXPECT_FALSE(ValidatePlan(nullptr).ok());
}

PhysicalNodePtr FindNode(const PhysicalNodePtr& root, PhysicalOpKind kind) {
  if (root->kind == kind) return root;
  for (const PhysicalNodePtr& c : root->children) {
    PhysicalNodePtr found = FindNode(c, kind);
    if (found != nullptr) return found;
  }
  return nullptr;
}

TEST(PlanValidatorTest, DetectsMispartitionedAggregate) {
  OptimizedScript plan =
      OptimizeScript(kScriptS1, OptimizerMode::kConventional);
  // Break the plan: claim the input of some full aggregate is random.
  PhysicalNodePtr agg = FindNode(plan.plan(), PhysicalOpKind::kHashAgg);
  ASSERT_NE(agg, nullptr);
  agg->children[0]->delivered.partitioning = Partitioning::Random();
  Status s = ValidatePlan(plan.plan());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not partitioned within"), std::string::npos);
}

TEST(PlanValidatorTest, DetectsMissingExchangeColumns) {
  OptimizedScript plan =
      OptimizeScript(kScriptS1, OptimizerMode::kConventional);
  PhysicalNodePtr ex = FindNode(plan.plan(), PhysicalOpKind::kHashExchange);
  ASSERT_NE(ex, nullptr);
  ex->exchange_cols = ColumnSet();
  Status s = ValidatePlan(plan.plan());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("exchange"), std::string::npos);
}

TEST(PlanValidatorTest, DetectsSpoolPropertyMismatch) {
  OptimizedScript plan = OptimizeScript(kScriptS1, OptimizerMode::kCse);
  PhysicalNodePtr spool = FindNode(plan.plan(), PhysicalOpKind::kSpool);
  ASSERT_NE(spool, nullptr);
  spool->delivered.partitioning = Partitioning::Serial();
  Status s = ValidatePlan(plan.plan());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("spool"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsSpoolScan) {
  // SpoolScan is a dead operator: shared spools appear once in the plan
  // DAG, so nothing may emit a scan-side placeholder. The executor relies
  // on the validator rejecting it before execution.
  OptimizedScript plan = OptimizeScript(kScriptS1, OptimizerMode::kCse);
  PhysicalNodePtr spool = FindNode(plan.plan(), PhysicalOpKind::kSpool);
  ASSERT_NE(spool, nullptr);
  spool->kind = PhysicalOpKind::kSpoolScan;
  Status s = ValidatePlan(plan.plan());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("SpoolScan"), std::string::npos);
}

TEST(PlanValidatorTest, DetectsForeignColumnInFilter) {
  OptimizedScript plan = OptimizeScript(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,B,C,D FROM R0 WHERE A > 1;\n"
      "OUTPUT F TO \"o\";",
      OptimizerMode::kConventional);
  PhysicalNodePtr filter = FindNode(plan.plan(), PhysicalOpKind::kFilter);
  ASSERT_NE(filter, nullptr);
  filter->proto->predicates[0].lhs = 4242;
  Status s = ValidatePlan(plan.plan());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("filter"), std::string::npos);
}

}  // namespace
}  // namespace scx
