// Key-scheme equivalence: the interned/hashed winner-cache path must produce
// exactly the plan, cost, and phase-2 optimization trace the seed's
// string-keyed path produced. The golden files under testdata/golden/ were
// recorded from the seed optimizer (string keys, no pruning); re-record with
// SCX_WRITE_GOLDEN=1 only when an intentional plan-affecting change lands.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

// Locates the repo's testdata/ directory from the test's working directory
// (ctest runs tests from somewhere inside the build tree).
std::string TestdataDir() {
  std::string prefix;
  for (int up = 0; up < 6; ++up) {
    std::ifstream probe(prefix + "testdata/s1.scope");
    if (probe) return prefix + "testdata";
    prefix += "../";
  }
  return "testdata";
}

// Serializes everything the determinism contract covers: final cost, plan,
// round counts, and the full round trace. Floats are written as hex floats
// (%a) so the comparison is bit-exact.
std::string Serialize(const OptimizedScript& o) {
  std::string out;
  char buf[128];
  const OptimizeDiagnostics& d = o.result.diagnostics;
  std::snprintf(buf, sizeof(buf), "cost %a\n", o.cost());
  out += buf;
  std::snprintf(buf, sizeof(buf), "rounds_planned %ld\n", d.rounds_planned);
  out += buf;
  std::snprintf(buf, sizeof(buf), "rounds_executed %ld\n", d.rounds_executed);
  out += buf;
  for (const RoundTraceEntry& e : d.round_trace) {
    std::snprintf(buf, sizeof(buf), "round %ld lca %d cost %a best %a asg",
                  e.round_index, e.lca, e.cost, e.best_so_far);
    out += buf;
    for (const auto& [g, idx] : e.assignment) {
      std::snprintf(buf, sizeof(buf), " %d:%d", g, idx);
      out += buf;
    }
    out += "\n";
  }
  out += "plan\n";
  out += o.Explain();
  return out;
}

void CheckAgainstGolden(const char* name, const Catalog& catalog,
                        const std::string& text) {
  OptimizerConfig config;
  config.num_threads = 1;
  config.budget_seconds = 1e9;  // determinism requires no budget stop
  Engine engine(catalog, config);
  auto compiled = engine.Compile(text);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  std::string got = Serialize(*optimized);

  std::string path = TestdataDir() + "/golden/" + name + ".trace.txt";
  if (std::getenv("SCX_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "recorded " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (record with SCX_WRITE_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got) << name
                             << ": optimizer output diverged from the seed "
                                "string-keyed optimizer's golden trace";
}

TEST(GoldenTraceTest, S1) {
  CheckAgainstGolden("s1", MakePaperCatalog(), kScriptS1);
}

TEST(GoldenTraceTest, S2) {
  CheckAgainstGolden("s2", MakePaperCatalog(), kScriptS2);
}

TEST(GoldenTraceTest, S3) {
  CheckAgainstGolden("s3", MakePaperCatalog(), kScriptS3);
}

TEST(GoldenTraceTest, S4) {
  CheckAgainstGolden("s4", MakePaperCatalog(), kScriptS4);
}

TEST(GoldenTraceTest, LS1) {
  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  CheckAgainstGolden("ls1", ls1.catalog, ls1.text);
}

}  // namespace
}  // namespace scx
