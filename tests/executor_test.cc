// Simulated-cluster executor tests: per-operator semantics via small
// scripts, plan-equivalence between conventional and CSE modes, and shuffle
// accounting.

#include <gtest/gtest.h>

#include <map>

#include "api/engine.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

OptimizerConfig SmallCluster() {
  OptimizerConfig config;
  config.cluster.machines = 8;
  return config;
}

/// Runs a script in the given mode on the execution-scale catalog.
ExecMetrics RunScript(const std::string& script, OptimizerMode mode,
                int64_t rows = 5000) {
  Engine engine(MakeExecutionCatalog(rows), SmallCluster());
  auto compiled = engine.Compile(script);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, mode);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto metrics = engine.Execute(*optimized);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return std::move(metrics.value());
}

/// Reference single-node evaluation of a two-level aggregation used to
/// cross-check distributed results.
TEST(ExecutorTest, SumAggregationMatchesReference) {
  // Compute Sum(D) GROUP BY A twice — once through the engine, once by a
  // simple reference loop over the same deterministic synthetic data.
  const char* script =
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";";
  ExecMetrics m = RunScript(script, OptimizerMode::kConventional, 2000);
  // Reference: re-derive the same synthetic data through a trivial plan
  // (extract only) and aggregate by hand.
  Engine engine(MakeExecutionCatalog(2000), SmallCluster());
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\nOUTPUT R0 TO \"raw\";");
  ASSERT_TRUE(compiled.ok());
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  auto raw = engine.Execute(*plan);
  ASSERT_TRUE(raw.ok());
  std::map<int64_t, int64_t> expected;
  for (const Row& r : raw->outputs.at("raw")) {
    expected[r[0].as_int()] += r[1].as_int();
  }
  const auto& rows = m.outputs.at("o");
  ASSERT_EQ(rows.size(), expected.size());
  for (const Row& r : rows) {
    EXPECT_EQ(r[1].as_int(), expected.at(r[0].as_int()));
  }
}

TEST(ExecutorTest, FilterSemantics) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,D FROM R0 WHERE A = 3 AND D > 100;\n"
      "OUTPUT F TO \"o\";",
      OptimizerMode::kConventional, 2000);
  ASSERT_FALSE(m.outputs.at("o").empty());
  for (const Row& r : m.outputs.at("o")) {
    EXPECT_EQ(r[0].as_int(), 3);
    EXPECT_GT(r[1].as_int(), 100);
  }
}

TEST(ExecutorTest, ProjectionReordersColumns) {
  ExecMetrics a = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\nOUTPUT R0 TO \"o\";",
      OptimizerMode::kConventional, 500);
  ExecMetrics b = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "P  = SELECT D,A FROM R0;\nOUTPUT P TO \"o\";",
      OptimizerMode::kConventional, 500);
  auto rows_a = CanonicalRows(a.outputs.at("o"));
  auto rows_b = CanonicalRows(b.outputs.at("o"));
  ASSERT_EQ(rows_a.size(), rows_b.size());
  std::vector<Row> swapped;
  for (const Row& r : rows_b) swapped.push_back({r[1], r[0]});
  EXPECT_EQ(rows_a, CanonicalRows(std::move(swapped)));
}

TEST(ExecutorTest, CountMinMaxAvg) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Count(*) AS N,Min(D) AS LO,Max(D) AS HI,Avg(D) AS M "
      "FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional, 2000);
  int64_t total = 0;
  for (const Row& r : m.outputs.at("o")) {
    int64_t n = r[1].as_int();
    int64_t lo = r[2].as_int();
    int64_t hi = r[3].as_int();
    double avg = r[4].as_double();
    total += n;
    EXPECT_GT(n, 0);
    EXPECT_LE(lo, hi);
    EXPECT_GE(avg, static_cast<double>(lo));
    EXPECT_LE(avg, static_cast<double>(hi));
  }
  EXPECT_EQ(total, 2000);  // counts partition the input
}

TEST(ExecutorTest, AggregatesAgreeAcrossModesWithSplit) {
  // The local/global split must be algebraically invisible: compare against
  // the conventional plan for a script whose CSE plan uses partials.
  const char* script =
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,Count(*) AS N,Avg(D) AS M FROM R0 GROUP BY A,B;\n"
      "R1 = SELECT A,Sum(N) AS NN FROM R GROUP BY A;\n"
      "R2 = SELECT B,Sum(N) AS NN FROM R GROUP BY B;\n"
      "OUTPUT R1 TO \"o1\";\nOUTPUT R2 TO \"o2\";";
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(conv, cse));
}

TEST(ExecutorTest, JoinSemantics) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,B,D FROM \"test2.log\" USING X;\n"
      "RA = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "TA = SELECT A,Sum(D) AS T FROM T0 GROUP BY A;\n"
      "J  = SELECT RA.A,S,T FROM RA,TA WHERE RA.A=TA.A;\n"
      "OUTPUT J TO \"j\";\nOUTPUT RA TO \"ra\";\nOUTPUT TA TO \"ta\";",
      OptimizerMode::kConventional, 2000);
  // Build reference join from the two sides.
  std::map<int64_t, int64_t> ra, ta;
  for (const Row& r : m.outputs.at("ra")) ra[r[0].as_int()] = r[1].as_int();
  for (const Row& r : m.outputs.at("ta")) ta[r[0].as_int()] = r[1].as_int();
  size_t expected = 0;
  for (const auto& [k, v] : ra) {
    (void)v;
    if (ta.count(k)) ++expected;
  }
  EXPECT_EQ(m.outputs.at("j").size(), expected);
  for (const Row& r : m.outputs.at("j")) {
    int64_t a = r[0].as_int();
    EXPECT_EQ(r[1].as_int(), ra.at(a));
    EXPECT_EQ(r[2].as_int(), ta.at(a));
  }
}

TEST(ExecutorTest, ResidualJoinPredicate) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,D FROM \"test2.log\" USING X;\n"
      "RA = SELECT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "TA = SELECT A,Sum(D) AS T FROM T0 GROUP BY A;\n"
      "J  = SELECT RA.A,S,T FROM RA,TA WHERE RA.A=TA.A AND S < T;\n"
      "OUTPUT J TO \"j\";",
      OptimizerMode::kConventional, 2000);
  for (const Row& r : m.outputs.at("j")) {
    EXPECT_LT(r[1].as_int(), r[2].as_int());
  }
}

class PaperScriptExecution
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(PaperScriptExecution, ConventionalAndCseProduceIdenticalOutputs) {
  const char* script = GetParam().second;
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(conv, cse)) << GetParam().first;
  EXPECT_FALSE(conv.outputs.empty());
  for (const auto& [path, rows] : conv.outputs) {
    EXPECT_FALSE(rows.empty()) << path;
  }
}

TEST_P(PaperScriptExecution, CseShufflesNoMoreBytes) {
  const char* script = GetParam().second;
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_LE(cse.bytes_shuffled, conv.bytes_shuffled) << GetParam().first;
  EXPECT_LE(cse.rows_extracted, conv.rows_extracted) << GetParam().first;
}

INSTANTIATE_TEST_SUITE_P(
    PaperScripts, PaperScriptExecution,
    ::testing::Values(std::make_pair("S1", kScriptS1),
                      std::make_pair("S2", kScriptS2),
                      std::make_pair("S3", kScriptS3),
                      std::make_pair("S4", kScriptS4)),
    [](const auto& info) { return info.param.first; });

TEST(ExecutorTest, SpoolExecutesOncePerPlanNode) {
  Engine engine(MakeExecutionCatalog(5000), SmallCluster());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  auto m = engine.Execute(*cse);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->spool_executions, 1);
  EXPECT_EQ(m->spool_reads, 2);  // two consumers
  EXPECT_EQ(m->spool_cache_hits, 1);  // second read served from the cache
  EXPECT_GT(m->bytes_spooled, 0);
  EXPECT_GT(m->rows_spooled, 0);
}

TEST(ExecutorTest, DeterministicAcrossRuns) {
  ExecMetrics a = RunScript(kScriptS1, OptimizerMode::kCse);
  ExecMetrics b = RunScript(kScriptS1, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(a, b));
  EXPECT_EQ(a.bytes_shuffled, b.bytes_shuffled);
}

TEST(ExecutorTest, ClusterSizeDoesNotChangeResults) {
  OptimizerConfig small = SmallCluster();
  OptimizerConfig big;
  big.cluster.machines = 23;
  Engine e1(MakeExecutionCatalog(3000), small);
  Engine e2(MakeExecutionCatalog(3000), big);
  auto run = [](Engine& e, const char* script) {
    auto compiled = e.Compile(script);
    EXPECT_TRUE(compiled.ok());
    auto plan = e.Optimize(*compiled, OptimizerMode::kCse);
    EXPECT_TRUE(plan.ok());
    auto m = e.Execute(*plan);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return std::move(m.value());
  };
  ExecMetrics a = run(e1, kScriptS1);
  ExecMetrics b = run(e2, kScriptS1);
  EXPECT_TRUE(SameOutputs(a, b));
}

TEST(ExecutorTest, CanonicalRowsSorts) {
  std::vector<Row> rows = {{Value::Int(2)}, {Value::Int(1)}};
  auto sorted = CanonicalRows(rows);
  EXPECT_EQ(sorted[0][0].as_int(), 1);
  EXPECT_EQ(rows[0][0].as_int(), 2);  // copy overload leaves input alone
}

TEST(ExecutorTest, CanonicalRowsOverloadsAgree) {
  std::vector<Row> rows = {{Value::Int(3)}, {Value::Int(1)}, {Value::Int(2)}};
  std::vector<Row> copy = rows;
  EXPECT_EQ(CanonicalRows(rows), CanonicalRows(std::move(copy)));
}

TEST(ExecutorTest, SameOutputsIgnoresRowOrder) {
  ExecMetrics a, b;
  a.outputs["x"] = {{Value::Int(1)}, {Value::Int(2)}};
  b.outputs["x"] = {{Value::Int(2)}, {Value::Int(1)}};
  EXPECT_TRUE(SameOutputs(a, b));
  EXPECT_EQ(CanonicalOutputs(a), CanonicalOutputs(b));
}

TEST(ExecutorTest, SameOutputsDetectsDifferences) {
  ExecMetrics a, b;
  a.outputs["x"] = {{Value::Int(1)}};
  b.outputs["x"] = {{Value::Int(2)}};
  EXPECT_FALSE(SameOutputs(a, b));
  b.outputs["x"] = {{Value::Int(1)}};
  EXPECT_TRUE(SameOutputs(a, b));
  b.outputs["y"] = {};
  EXPECT_FALSE(SameOutputs(a, b));
}

}  // namespace
}  // namespace scx
