// JSON serialization tests for plans and diagnostics.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "opt/plan_json.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

/// Minimal structural JSON check: balanced braces/brackets outside strings.
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t n = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

TEST(PlanJsonTest, S1CsePlanSerializes) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  std::string json = PlanToJson(cse->plan());
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"root\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dag_cost\":"), std::string::npos);
  // The shared spool appears exactly once in the node array even though it
  // has two consumers.
  EXPECT_EQ(CountOccurrences(json, "\"kind\":\"Spool\""), 1u);
  // Its id appears in two children lists plus its own node definition.
}

TEST(PlanJsonTest, SharingIsVisibleThroughChildIds) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  std::string json = PlanToJson(cse->plan());
  // Find the spool's id.
  size_t spool_pos = json.find("\"kind\":\"Spool\"");
  ASSERT_NE(spool_pos, std::string::npos);
  size_t id_pos = json.rfind("\"id\":", spool_pos);
  ASSERT_NE(id_pos, std::string::npos);
  size_t comma = json.find(',', id_pos);
  std::string id = json.substr(id_pos + 5, comma - id_pos - 5);
  // Two consumers reference it by id.
  size_t refs = 0, pos = 0;
  std::string needle_a = "[" + id + "]";
  std::string needle_b = "," + id + "]";
  std::string needle_c = "[" + id + ",";
  while ((pos = json.find("\"children\":", pos)) != std::string::npos) {
    size_t end = json.find(']', pos);
    std::string kids = json.substr(pos, end - pos + 1);
    if (kids.find(needle_a) != std::string::npos ||
        kids.find(needle_b) != std::string::npos ||
        kids.find(needle_c) != std::string::npos) {
      ++refs;
    }
    pos = end;
  }
  EXPECT_EQ(refs, 2u) << json;
}

TEST(PlanJsonTest, DiagnosticsSerialize) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS4);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  std::string json = DiagnosticsToJson(cse->result.diagnostics);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"num_shared_groups\":3"), std::string::npos);
  EXPECT_NE(json.find("\"round_trace\":["), std::string::npos);
  EXPECT_NE(json.find("\"assignment\":{"), std::string::npos);
}

TEST(PlanJsonTest, NullPlan) {
  EXPECT_EQ(PlanToJson(nullptr), "{\"root\":null,\"nodes\":[]}");
}

TEST(PlanJsonTest, EscapingHandlesSpecialCharacters) {
  // Output paths flow into JSON; quotes and backslashes must be escaped.
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterLog("f.log", {"A"}, 10, {5}).ok());
  Engine engine(std::move(catalog));
  auto compiled = engine.Compile(
      "R = EXTRACT A FROM \"f.log\" USING X;\n"
      "OUTPUT R TO \"dir\\sub.out\";");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  std::string json = PlanToJson(plan->plan());
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("dir\\\\sub.out"), std::string::npos) << json;
}

}  // namespace
}  // namespace scx
