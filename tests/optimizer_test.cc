// End-to-end optimizer tests for paper Secs. III–VIII: phase-1 conventional
// optimization, property-history recording, phase-2 enforcement, plan shape
// (Fig. 8), and the large-script extensions.

#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

Engine::Comparison CompareScript(const char* script,
                                 OptimizerConfig config = {}) {
  Engine engine(MakePaperCatalog(), config);
  auto c = engine.Compare(script);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return std::move(c.value());
}

/// Collects all distinct nodes of a plan DAG.
void Collect(const PhysicalNodePtr& node,
             std::set<const PhysicalNode*>* seen,
             std::vector<PhysicalNodePtr>* out) {
  if (!seen->insert(node.get()).second) return;
  out->push_back(node);
  for (const PhysicalNodePtr& c : node->children) Collect(c, seen, out);
}

std::vector<PhysicalNodePtr> DagNodes(const PhysicalNodePtr& root) {
  std::set<const PhysicalNode*> seen;
  std::vector<PhysicalNodePtr> out;
  Collect(root, &seen, &out);
  return out;
}

int CountKind(const PhysicalNodePtr& root, PhysicalOpKind kind) {
  int n = 0;
  for (const PhysicalNodePtr& node : DagNodes(root)) {
    if (node->kind == kind) ++n;
  }
  return n;
}

TEST(OptimizerTest, S1CseBeatsConventional) {
  auto c = CompareScript(kScriptS1);
  EXPECT_LT(c.cse.cost(), c.conventional.cost());
  // Paper Fig. 7: S1 saving is 38%; ours lands in the same regime.
  EXPECT_LT(c.cost_ratio, 0.8);
  EXPECT_GT(c.cost_ratio, 0.3);
}

TEST(OptimizerTest, S1ConventionalExecutesSubexpressionTwice) {
  auto c = CompareScript(kScriptS1);
  // Two extracts in tree terms: the Extract winner may be pointer-shared,
  // but the plan has two repartition+aggregate pipelines and no spool.
  EXPECT_EQ(CountKind(c.conventional.plan(), PhysicalOpKind::kSpool), 0);
  EXPECT_GE(CountKind(c.conventional.plan(), PhysicalOpKind::kHashExchange) +
                CountKind(c.conventional.plan(),
                          PhysicalOpKind::kMergeExchange),
            2);
}

TEST(OptimizerTest, S1CsePlanMatchesPaperFig8b) {
  auto c = CompareScript(kScriptS1);
  const PhysicalNodePtr& plan = c.cse.plan();
  // Exactly one spool, exactly one extract, exactly one exchange — the
  // shared subexpression executes once.
  EXPECT_EQ(CountKind(plan, PhysicalOpKind::kSpool), 1);
  EXPECT_EQ(CountKind(plan, PhysicalOpKind::kExtract), 1);
  int exchanges = CountKind(plan, PhysicalOpKind::kHashExchange) +
                  CountKind(plan, PhysicalOpKind::kMergeExchange);
  EXPECT_EQ(exchanges, 1);
  // The one exchange partitions on {B} alone: the covering subset that
  // serves both consumers (paper Fig. 8(b)).
  for (const PhysicalNodePtr& node : DagNodes(plan)) {
    if (node->kind == PhysicalOpKind::kHashExchange ||
        node->kind == PhysicalOpKind::kMergeExchange) {
      EXPECT_EQ(node->exchange_cols.Size(), 1);
    }
  }
  // Consumers read the spool without further repartitioning: the spool's
  // parents in the DAG are aggregation (or sort) operators, not exchanges.
  for (const PhysicalNodePtr& node : DagNodes(plan)) {
    for (const PhysicalNodePtr& child : node->children) {
      if (child->kind == PhysicalOpKind::kSpool) {
        EXPECT_NE(node->kind, PhysicalOpKind::kHashExchange);
        EXPECT_NE(node->kind, PhysicalOpKind::kMergeExchange);
      }
    }
  }
}

TEST(OptimizerTest, S2ThreeConsumersSaveMore) {
  auto c1 = CompareScript(kScriptS1);
  auto c2 = CompareScript(kScriptS2);
  // Paper: more consumers -> larger saving (S2 55% vs S1 38%).
  EXPECT_LT(c2.cost_ratio, c1.cost_ratio);
}

TEST(OptimizerTest, S3TwoSharedGroupsBothExploited) {
  auto c = CompareScript(kScriptS3);
  EXPECT_LT(c.cost_ratio, 0.8);
  EXPECT_EQ(CountKind(c.cse.plan(), PhysicalOpKind::kSpool), 2);
  EXPECT_EQ(c.cse.result.diagnostics.num_shared_groups, 2);
  // Different LCAs for the two shared groups (paper Fig. 6 / S3).
  std::set<GroupId> lcas;
  for (const auto& [s, lca] : c.cse.result.diagnostics.lca_of) {
    lcas.insert(lca);
  }
  EXPECT_EQ(lcas.size(), 2u);
}

TEST(OptimizerTest, S4NonIndependentGroups) {
  auto c = CompareScript(kScriptS4);
  EXPECT_LT(c.cost_ratio, 0.8);
  EXPECT_EQ(c.cse.result.diagnostics.num_shared_groups, 3);
}

TEST(OptimizerTest, PlansDeliverValidProperties) {
  for (const char* script : {kScriptS1, kScriptS2, kScriptS3, kScriptS4}) {
    auto c = CompareScript(script);
    for (const PhysicalNodePtr& node : DagNodes(c.cse.plan())) {
      // Every aggregation's input must be partitioned within its grouping
      // columns (or serial): the runtime-correctness invariant.
      if (node->kind == PhysicalOpKind::kHashAgg ||
          node->kind == PhysicalOpKind::kStreamAgg) {
        if (node->proto->kind() == LogicalOpKind::kLocalGbAgg) continue;
        const Partitioning& in = node->children[0]->delivered.partitioning;
        if (node->proto->group_cols.empty()) {
          EXPECT_EQ(in.kind, PartitioningKind::kSerial);
        } else {
          PartitioningReq req = PartitioningReq::SubsetOf(
              ColumnSet::FromVector(node->proto->group_cols));
          EXPECT_TRUE(req.SatisfiedBy(in))
              << script << ": " << node->Describe();
        }
      }
      // Stream aggregates must receive input sorted on their order.
      if (node->kind == PhysicalOpKind::kStreamAgg) {
        EXPECT_TRUE(node->children[0]->delivered.sort.SatisfiesPrefix(
            node->sort_spec))
            << node->Describe();
      }
    }
  }
}

TEST(OptimizerTest, HistoryRecordsSubsetExpansion) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  // Find the shared spool group and its history.
  const Optimizer& opt = *cse->optimizer;
  const SharedInfo* info = opt.shared_info();
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->shared_groups().size(), 1u);
  const PropertyHistory* history = opt.HistoryOf(info->shared_groups()[0]);
  ASSERT_NE(history, nullptr);
  // Sec. V: requirement [∅,{A,B}] from R1 and [∅,{B,C}] from R2 expand into
  // exact entries; {B} must be among them, with more than 4 entries total.
  EXPECT_GE(history->size(), 5);
  bool has_single_b = false;
  for (const auto& e : history->entries()) {
    if (e.props.partitioning.kind == PartReqKind::kHashExact &&
        e.props.partitioning.cols.Size() == 1) {
      has_single_b = true;
    }
  }
  EXPECT_TRUE(has_single_b);
}

TEST(OptimizerTest, RoundsExecutedMatchPlanned) {
  auto c = CompareScript(kScriptS1);
  const auto& d = c.cse.result.diagnostics;
  EXPECT_GT(d.rounds_planned, 0);
  EXPECT_EQ(d.rounds_executed, d.rounds_planned);
  EXPECT_FALSE(d.budget_exhausted);
}

TEST(OptimizerTest, BudgetStopsRoundsButStillReturnsPlan) {
  OptimizerConfig config;
  config.max_rounds = 2;
  auto c = CompareScript(kScriptS4, config);
  const auto& d = c.cse.result.diagnostics;
  EXPECT_LE(d.rounds_executed, 2);
  EXPECT_TRUE(d.budget_exhausted);
  ASSERT_NE(c.cse.plan(), nullptr);
  // Still at least as good as phase 1 alone.
  EXPECT_LE(c.cse.cost(), d.phase1_cost + 1e-9);
}

TEST(OptimizerTest, ZeroSecondBudgetFallsBackGracefully) {
  OptimizerConfig config;
  config.budget_seconds = 0.0;
  auto c = CompareScript(kScriptS1, config);
  ASSERT_NE(c.cse.plan(), nullptr);
  EXPECT_TRUE(c.cse.result.diagnostics.budget_exhausted);
}

TEST(OptimizerTest, IndependentGroupsExtensionReducesRounds) {
  // S3's shared groups live under different LCAs, so use a two-module
  // script with one LCA (the Sequence root) for this ablation.
  const char kTwoModules[] = R"(
A0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
A  = SELECT A,B,C,Sum(D) AS S FROM A0 GROUP BY A,B,C;
A1 = SELECT A,B,Sum(S) AS T FROM A GROUP BY A,B;
A2 = SELECT B,C,Sum(S) AS T FROM A GROUP BY B,C;
B0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
B  = SELECT A,B,C,Sum(D) AS S FROM B0 GROUP BY A,B,C;
B1 = SELECT A,B,Sum(S) AS T FROM B GROUP BY A,B;
B2 = SELECT B,C,Sum(S) AS T FROM B GROUP BY B,C;
OUTPUT A1 TO "a1.out";
OUTPUT A2 TO "a2.out";
OUTPUT B1 TO "b1.out";
OUTPUT B2 TO "b2.out";
)";
  OptimizerConfig with;
  with.exploit_independent_groups = true;
  OptimizerConfig without;
  without.exploit_independent_groups = false;
  auto c_with = CompareScript(kTwoModules, with);
  auto c_without = CompareScript(kTwoModules, without);
  EXPECT_LT(c_with.cse.result.diagnostics.rounds_executed,
            c_without.cse.result.diagnostics.rounds_executed);
  // Same final cost: the sequential search explores the same frontier.
  EXPECT_NEAR(c_with.cse.cost(), c_without.cse.cost(),
              c_with.cse.cost() * 0.01);
}

TEST(OptimizerTest, ExtensionsPreserveResultQuality) {
  // Turning rankings off must not change the best cost when the budget is
  // unlimited (they only change evaluation ORDER).
  OptimizerConfig plain;
  plain.rank_shared_groups = false;
  plain.rank_properties = false;
  plain.exploit_independent_groups = false;
  auto base = CompareScript(kScriptS4);
  auto noext = CompareScript(kScriptS4, plain);
  EXPECT_NEAR(base.cse.cost(), noext.cse.cost(), base.cse.cost() * 0.02);
}

TEST(OptimizerTest, AggSplitCanBeDisabled) {
  OptimizerConfig config;
  config.enable_agg_split = false;
  auto c = CompareScript(kScriptS1, config);
  // No local/global pairs anywhere in either plan.
  for (const PhysicalNodePtr& node : DagNodes(c.cse.plan())) {
    if (node->proto != nullptr) {
      EXPECT_NE(node->proto->kind(), LogicalOpKind::kLocalGbAgg);
      EXPECT_NE(node->proto->kind(), LogicalOpKind::kGlobalGbAgg);
    }
  }
  EXPECT_LT(c.cse.cost(), c.conventional.cost());
}

TEST(OptimizerTest, ConventionalModeHasNoSharedDiagnostics) {
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(conv.ok());
  EXPECT_EQ(conv->result.diagnostics.num_shared_groups, 0);
  EXPECT_EQ(conv->result.diagnostics.rounds_executed, 0);
}

TEST(OptimizerTest, DagCostNeverExceedsTreeCost) {
  for (const char* script : {kScriptS1, kScriptS2, kScriptS3, kScriptS4}) {
    auto c = CompareScript(script);
    EXPECT_LE(DagCost(c.cse.plan()), TreeCost(c.cse.plan()) + 1e-6);
    EXPECT_LE(DagCost(c.conventional.plan()),
              TreeCost(c.conventional.plan()) + 1e-6);
  }
}

TEST(OptimizerTest, GrandTotalAggregationIsSerial) {
  auto c = CompareScript(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT Sum(D) AS S FROM R0;\n"
      "OUTPUT R TO \"o\";");
  bool found_serial_agg = false;
  for (const PhysicalNodePtr& node : DagNodes(c.conventional.plan())) {
    if ((node->kind == PhysicalOpKind::kHashAgg ||
         node->kind == PhysicalOpKind::kStreamAgg) &&
        node->proto->group_cols.empty() &&
        node->proto->kind() != LogicalOpKind::kLocalGbAgg) {
      EXPECT_EQ(node->children[0]->delivered.partitioning.kind,
                PartitioningKind::kSerial);
      found_serial_agg = true;
    }
  }
  EXPECT_TRUE(found_serial_agg);
}

TEST(OptimizerTest, JoinInputsAreCoPartitioned) {
  auto c = CompareScript(kScriptS3);
  for (const PhysicalNodePtr& node : DagNodes(c.cse.plan())) {
    if (node->kind != PhysicalOpKind::kHashJoin &&
        node->kind != PhysicalOpKind::kMergeJoin) {
      continue;
    }
    const Partitioning& l = node->children[0]->delivered.partitioning;
    const Partitioning& r = node->children[1]->delivered.partitioning;
    if (l.kind == PartitioningKind::kSerial) {
      EXPECT_EQ(r.kind, PartitioningKind::kSerial);
      continue;
    }
    ASSERT_EQ(l.kind, PartitioningKind::kHash);
    ASSERT_EQ(r.kind, PartitioningKind::kHash);
    // The sides are partitioned on aligned subsets of the key columns.
    ColumnSet lkeys, rkeys;
    for (const auto& [lk, rk] : node->proto->join_keys) {
      lkeys.Insert(lk);
      rkeys.Insert(rk);
    }
    EXPECT_TRUE(l.cols.IsSubsetOf(lkeys)) << node->Describe();
    EXPECT_TRUE(r.cols.IsSubsetOf(rkeys)) << node->Describe();
    EXPECT_EQ(l.cols.Size(), r.cols.Size());
  }
}

}  // namespace
}  // namespace scx
