// Tests for the dialect extensions beyond the paper's scripts: DISTINCT,
// HAVING, and ORDER BY — parsed, bound, optimized (all three modes) and
// executed, with results cross-checked between modes and against
// hand-computed references.

#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"
#include "script/parser.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

ExecMetrics RunScript(const std::string& script, OptimizerMode mode,
                      int64_t rows = 3000) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(rows), config);
  auto compiled = engine.Compile(script);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, mode);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto metrics = engine.Execute(*optimized);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return std::move(metrics.value());
}

TEST(DistinctTest, ParsesAndBinds) {
  auto ast = ParseScript(
      "R = SELECT DISTINCT A,B FROM R0;\nOUTPUT R TO \"o\";");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->statements[0].query.select.distinct);
}

TEST(DistinctTest, ProducesUniqueRows) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT DISTINCT A,B FROM R0;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional);
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const Row& r : m.outputs.at("o")) {
    auto key = std::make_pair(r[0].as_int(), r[1].as_int());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate row";
  }
  // With ndv(A)=8, ndv(B)=50 and 3000 rows, most combinations appear.
  EXPECT_GT(seen.size(), 100u);
  EXPECT_LE(seen.size(), 400u);
}

TEST(DistinctTest, SharedDistinctIsExploited) {
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT DISTINCT A,B,C FROM R0;\n"
      "R1 = SELECT A,Count(*) AS N FROM R GROUP BY A;\n"
      "R2 = SELECT B,Count(*) AS N FROM R GROUP BY B;\n"
      "OUTPUT R1 TO \"o1\";\nOUTPUT R2 TO \"o2\";";
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(script);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->cse.result.diagnostics.num_shared_groups, 1);
  EXPECT_LT(c->cse.cost(), c->conventional.cost());
  // And executes identically in both modes.
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(conv, cse));
}

TEST(DistinctTest, RejectsDistinctWithAggregates) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R = SELECT DISTINCT A,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";");
  EXPECT_FALSE(r.ok());
}

TEST(HavingTest, FiltersGroups) {
  ExecMetrics all = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Count(*) AS N FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional);
  ExecMetrics filtered = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Count(*) AS N FROM R0 GROUP BY A HAVING N > 380;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional);
  // HAVING output = subset of the unfiltered output with N > 380.
  std::vector<Row> expected;
  for (const Row& r : all.outputs.at("o")) {
    if (r[1].as_int() > 380) expected.push_back(r);
  }
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(CanonicalRows(filtered.outputs.at("o")),
            CanonicalRows(expected));
}

TEST(HavingTest, RequiresAggregation) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R = SELECT A,D FROM R0 HAVING D > 3;\n"
      "OUTPUT R TO \"o\";");
  EXPECT_FALSE(r.ok());
}

TEST(HavingTest, CanReferenceAggregateAlias) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B HAVING S > 10 "
      "AND A > 1;\n"
      "OUTPUT R TO \"o\";");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(OrderByTest, OutputIsGloballySorted) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Sum(D) AS S FROM R0 GROUP BY A ORDER BY A;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional);
  const std::vector<Row>& rows = m.outputs.at("o");
  ASSERT_GT(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][0], rows[i][0]) << "row " << i << " out of order";
  }
}

TEST(OrderByTest, MultiColumnOrder) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B ORDER BY B,A;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional);
  const std::vector<Row>& rows = m.outputs.at("o");
  ASSERT_GT(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    auto prev = std::make_pair(rows[i - 1][1], rows[i - 1][0]);
    auto cur = std::make_pair(rows[i][1], rows[i][0]);
    EXPECT_LE(prev, cur);
  }
}

TEST(OrderByTest, IgnoredWhenConsumedDownstream) {
  // ORDER BY on an intermediate does not force a serial plan for consumers.
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B ORDER BY A;\n"
      "R1 = SELECT A,Sum(S) AS T FROM R GROUP BY A;\n"
      "OUTPUT R1 TO \"o\";");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
}

TEST(OrderByTest, SortedCseOutputMatchesConventional) {
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n"
      "R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B ORDER BY A,B;\n"
      "R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C ORDER BY C;\n"
      "OUTPUT R1 TO \"o1\";\nOUTPUT R2 TO \"o2\";";
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(conv, cse));
  // o1's ORDER BY (A,B) is total over its group-by keys: exact equality.
  EXPECT_EQ(conv.outputs.at("o1"), cse.outputs.at("o1"));
  // o2's ORDER BY C is a partial order (ties on C may differ between
  // plans): assert sortedness in each plan's output instead.
  for (const ExecMetrics* m : {&conv, &cse}) {
    const std::vector<Row>& rows = m->outputs.at("o2");
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LE(rows[i - 1][1], rows[i][1]);  // C is output column 1
    }
  }
}

}  // namespace
}  // namespace scx
