// Unit tests for the common layer: Status/Result, Value, ColumnSet, Schema,
// hashing.

#include <gtest/gtest.h>

#include <set>

#include "common/column_set.h"
#include "common/hash.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace scx {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kBindError, StatusCode::kOptimizeError,
        StatusCode::kExecutionError, StatusCode::kInternal,
        StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SCX_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Real(1.5).is_double());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_EQ(Value::Int(3).as_int(), 3);
  EXPECT_DOUBLE_EQ(Value::Real(1.5).as_double(), 1.5);
  EXPECT_EQ(Value::Str("x").as_string(), "x");
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Real(1.0), Value::Real(1.5));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Int(7), Value::Int(7));
}

TEST(ValueTest, CrossTypeOrderingIsDeterministic) {
  // ints < doubles < strings (by variant index) — a canonical total order.
  EXPECT_LT(Value::Int(999), Value::Real(0.0));
  EXPECT_LT(Value::Real(999.0), Value::Str(""));
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Int(6).Hash());
}

TEST(ValueTest, ByteWidth) {
  EXPECT_EQ(Value::Int(1).ByteWidth(), 8);
  EXPECT_EQ(Value::Real(1.0).ByteWidth(), 8);
  EXPECT_EQ(Value::Str("abcd").ByteWidth(), 8);  // 4 chars + 4 overhead
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

TEST(HashRowKeyTest, DependsOnSelectedPositionsOnly) {
  Row a = {Value::Int(1), Value::Int(2), Value::Int(3)};
  Row b = {Value::Int(1), Value::Int(99), Value::Int(3)};
  EXPECT_EQ(HashRowKey(a, {0, 2}), HashRowKey(b, {0, 2}));
  EXPECT_NE(HashRowKey(a, {0, 1}), HashRowKey(b, {0, 1}));
}

TEST(ColumnSetTest, InsertContainsRemove) {
  ColumnSet s;
  EXPECT_TRUE(s.Empty());
  s.Insert(3);
  s.Insert(70);  // beyond one word
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(70));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Size(), 2);
  s.Remove(70);
  EXPECT_FALSE(s.Contains(70));
  EXPECT_EQ(s.Size(), 1);
}

TEST(ColumnSetTest, SetAlgebra) {
  ColumnSet a = ColumnSet::Of({1, 2, 3});
  ColumnSet b = ColumnSet::Of({2, 3, 4});
  EXPECT_EQ(a.Union(b), ColumnSet::Of({1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), ColumnSet::Of({2, 3}));
  EXPECT_EQ(a.Difference(b), ColumnSet::Of({1}));
  EXPECT_TRUE(ColumnSet::Of({2}).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(ColumnSet::Of({9})));
}

TEST(ColumnSetTest, EmptySetIsSubsetOfEverything) {
  ColumnSet empty;
  EXPECT_TRUE(empty.IsSubsetOf(ColumnSet::Of({1})));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
}

TEST(ColumnSetTest, EqualityNormalizesTrailingZeros) {
  ColumnSet a = ColumnSet::Of({1});
  ColumnSet b = ColumnSet::Of({1, 100});
  b.Remove(100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ColumnSetTest, NonEmptySubsetsEnumeration) {
  ColumnSet s = ColumnSet::Of({1, 2, 3});
  std::vector<ColumnSet> subsets = s.NonEmptySubsets();
  EXPECT_EQ(subsets.size(), 7u);  // 2^3 - 1
  // Sorted by size: three singletons first, full set last.
  EXPECT_EQ(subsets[0].Size(), 1);
  EXPECT_EQ(subsets[6], s);
  std::set<std::vector<ColumnId>> distinct;
  for (const ColumnSet& sub : subsets) {
    EXPECT_TRUE(sub.IsSubsetOf(s));
    EXPECT_FALSE(sub.Empty());
    distinct.insert(sub.ToVector());
  }
  EXPECT_EQ(distinct.size(), 7u);
}

TEST(ColumnSetTest, ToVectorAscending) {
  ColumnSet s = ColumnSet::Of({65, 3, 127});
  EXPECT_EQ(s.ToVector(), (std::vector<ColumnId>{3, 65, 127}));
}

TEST(SchemaTest, ResolveQualifiedAndUnqualified) {
  Schema schema({{0, "A", "R", DataType::kInt64},
                 {1, "B", "R", DataType::kInt64},
                 {2, "B", "T", DataType::kInt64}});
  EXPECT_EQ(schema.Resolve("", "A")->id, 0u);
  EXPECT_EQ(schema.Resolve("R", "B")->id, 1u);
  EXPECT_EQ(schema.Resolve("T", "B")->id, 2u);
  EXPECT_FALSE(schema.Resolve("", "B").ok());   // ambiguous
  EXPECT_FALSE(schema.Resolve("", "Z").ok());   // unknown
  EXPECT_FALSE(schema.Resolve("X", "A").ok());  // wrong qualifier
}

TEST(SchemaTest, PositionsAndIdSet) {
  Schema schema({{5, "A", "", DataType::kInt64},
                 {9, "B", "", DataType::kInt64}});
  EXPECT_EQ(schema.PositionOf(9), 1);
  EXPECT_EQ(schema.PositionOf(42), -1);
  EXPECT_EQ(schema.IdSet(), ColumnSet::Of({5, 9}));
  EXPECT_EQ(schema.PositionsOf(ColumnSet::Of({5, 9})),
            (std::vector<int>{0, 1}));
  EXPECT_EQ(schema.NameOf(5), "A");
  EXPECT_EQ(schema.NameOf(1234), "#1234");
}

TEST(HashTest, Mix64AvoidsTrivialCollisions) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
}

}  // namespace
}  // namespace scx
