// UNION ALL tests: parsing, schema compatibility checking, execution
// semantics, and interaction with shared subexpressions.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "opt/plan_validator.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

ExecMetrics RunScript(const std::string& script, OptimizerMode mode,
                      int64_t rows = 2000) {
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(MakeExecutionCatalog(rows), config);
  auto compiled = engine.Compile(script);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, mode);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_TRUE(ValidatePlan(optimized->plan()).ok());
  auto metrics = engine.Execute(*optimized);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return std::move(metrics.value());
}

TEST(UnionTest, ConcatenatesBothInputs) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,D FROM \"test2.log\" USING X;\n"
      "U  = UNION ALL R0,T0;\n"
      "OUTPUT U TO \"u\";",
      OptimizerMode::kConventional, 1000);
  EXPECT_EQ(m.outputs.at("u").size(), 2000u);
  EXPECT_EQ(m.rows_extracted, 2000);
}

TEST(UnionTest, AggregationOverUnion) {
  // Sum over the union equals the sum of per-source sums.
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,D FROM \"test2.log\" USING X;\n"
      "U  = UNION ALL R0,T0;\n"
      "S  = SELECT Sum(D) AS Total FROM U;\n"
      "SR = SELECT Sum(D) AS Total FROM R0;\n"
      "ST = SELECT Sum(D) AS Total FROM T0;\n"
      "OUTPUT S TO \"s\";\nOUTPUT SR TO \"sr\";\nOUTPUT ST TO \"st\";",
      OptimizerMode::kConventional, 1500);
  int64_t total = m.outputs.at("s")[0][0].as_int();
  int64_t parts = m.outputs.at("sr")[0][0].as_int() +
                  m.outputs.at("st")[0][0].as_int();
  EXPECT_EQ(total, parts);
}

TEST(UnionTest, ThreeWayUnion) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A,D FROM \"test2.log\" USING X;\n"
      "F  = SELECT A,D FROM R0 WHERE A = 1;\n"
      "U  = UNION ALL R0,T0,F;\n"
      "C  = SELECT Count(*) AS N FROM U;\n"
      "OUTPUT C TO \"c\";",
      OptimizerMode::kConventional, 800);
  int64_t n = m.outputs.at("c")[0][0].as_int();
  EXPECT_GT(n, 1600);  // both extracts plus the filtered slice
}

TEST(UnionTest, SharedBranchUnderUnionAcrossModes) {
  // The same aggregate feeds a union branch and a direct output —
  // the spool must survive under a UnionAll parent.
  const char* script =
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
      "H  = SELECT A,B,S FROM R WHERE S > 2000;\n"
      "L  = SELECT A,B,S FROM R WHERE S <= 2000;\n"
      "U  = UNION ALL H,L;\n"
      "C  = SELECT A,Count(*) AS N FROM U GROUP BY A;\n"
      "OUTPUT C TO \"c\";\nOUTPUT R TO \"r\";";
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(conv, cse));
  // High + low band partition R exactly: counts match R's size.
  size_t r_rows = conv.outputs.at("r").size();
  int64_t c_total = 0;
  for (const Row& r : conv.outputs.at("c")) c_total += r[1].as_int();
  EXPECT_EQ(static_cast<size_t>(c_total), r_rows);
}

TEST(UnionTest, RejectsWidthMismatch) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A,B FROM \"test.log\" USING X;\n"
      "T0 = EXTRACT A FROM \"test2.log\" USING X;\n"
      "U = UNION ALL R0,T0;\nOUTPUT U TO \"u\";");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("width"), std::string::npos);
}

TEST(UnionTest, RejectsSingleSource) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A FROM \"test.log\" USING X;\n"
      "U = UNION ALL R0;\nOUTPUT U TO \"u\";");
  EXPECT_FALSE(r.ok());
}

TEST(UnionTest, RejectsUnknownSource) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A FROM \"test.log\" USING X;\n"
      "U = UNION ALL R0,NOPE;\nOUTPUT U TO \"u\";");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

}  // namespace
}  // namespace scx
