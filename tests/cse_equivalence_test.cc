// Conventional-vs-CSE executed-output equivalence over the paper workload:
// for every script (S1-S4 plus the LS1/LS2-shaped generated scripts), the
// kConventional and kCse plans must produce identical canonical outputs at
// both 1 and 4 executor threads. This is the end-to-end correctness
// contract of common-subexpression sharing — spools may restructure the
// plan, never the result. Runs cleanly under tsan (the 4-thread runs
// exercise the parallel partition workers).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "exec/executor.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

void ExpectModesEquivalent(const std::string& label, const Catalog& catalog,
                           const std::string& script) {
  for (int threads : {1, 4}) {
    OptimizerConfig config;
    config.cluster.machines = 8;
    config.cluster.exec_threads = threads;
    Engine engine(catalog, config);
    auto compiled = engine.Compile(script);
    ASSERT_TRUE(compiled.ok())
        << label << ": " << compiled.status().ToString();

    auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
    ASSERT_TRUE(conv.ok()) << label << ": " << conv.status().ToString();
    auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
    ASSERT_TRUE(cse.ok()) << label << ": " << cse.status().ToString();
    EXPECT_LE(cse->cost(), conv->cost() * 1.0001)
        << label << ": CSE plan must never cost more than conventional";

    auto conv_metrics = engine.Execute(*conv);
    ASSERT_TRUE(conv_metrics.ok())
        << label << ": " << conv_metrics.status().ToString();
    auto cse_metrics = engine.Execute(*cse);
    ASSERT_TRUE(cse_metrics.ok())
        << label << ": " << cse_metrics.status().ToString();

    EXPECT_TRUE(SameOutputs(*conv_metrics, *cse_metrics))
        << label << " at " << threads
        << " executor thread(s): conventional and cse outputs diverge";
    // Both plans answer the same script, so they must name the same sinks.
    ASSERT_EQ(conv_metrics->outputs.size(), cse_metrics->outputs.size())
        << label;
  }
}

class PaperScriptEquivalence
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {
};

TEST_P(PaperScriptEquivalence, ConvAndCseOutputsMatch) {
  ExpectModesEquivalent(GetParam().first, MakeExecutionCatalog(5000),
                        GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Scripts, PaperScriptEquivalence,
    ::testing::Values(std::make_pair("S1", kScriptS1),
                      std::make_pair("S2", kScriptS2),
                      std::make_pair("S3", kScriptS3),
                      std::make_pair("S4", kScriptS4)),
    [](const auto& info) { return info.param.first; });

TEST(LargeScriptEquivalence, Ls1ConvAndCseOutputsMatch) {
  LargeScriptSpec spec = Ls1Spec();
  spec.rows_per_file = 1500;
  GeneratedScript ls = GenerateLargeScript(spec);
  ExpectModesEquivalent("LS1", ls.catalog, ls.text);
}

TEST(LargeScriptEquivalence, Ls2ConvAndCseOutputsMatch) {
  LargeScriptSpec spec = Ls2Spec();
  spec.rows_per_file = 400;
  GeneratedScript ls = GenerateLargeScript(spec);
  ExpectModesEquivalent("LS2", ls.catalog, ls.text);
}

}  // namespace
}  // namespace scx
