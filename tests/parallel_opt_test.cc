// The parallel round scheduler's determinism contract: for a fixed script
// and config, num_threads must not change anything observable — final cost,
// plan shape, rounds planned/executed, round trace (docs/architecture.md,
// "Determinism"). Also covers thread-safety of concurrent Engine::Optimize
// calls on one Engine and the single-shot Optimizer::Run guard.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

struct RunOutcome {
  double cost = 0;
  std::string plan;
  long rounds_planned = 0;
  long rounds_executed = 0;
  std::vector<RoundTraceEntry> trace;
  OptCacheCounters cache;
};

void ExpectSameCounters(const OptCacheCounters& a, const OptCacheCounters& b,
                        const char* what) {
  EXPECT_EQ(a.winner_hits, b.winner_hits) << what;
  EXPECT_EQ(a.winner_misses, b.winner_misses) << what;
  EXPECT_EQ(a.spool_hits, b.spool_hits) << what;
  EXPECT_EQ(a.spool_misses, b.spool_misses) << what;
  EXPECT_EQ(a.pruned_alternatives, b.pruned_alternatives) << what;
  EXPECT_EQ(a.pruned_rounds, b.pruned_rounds) << what;
  EXPECT_EQ(a.interner_size, b.interner_size) << what;
}

RunOutcome RunWithThreads(const Catalog& catalog, const std::string& text,
                          int num_threads, bool trace_rounds = true) {
  OptimizerConfig config;
  config.num_threads = num_threads;
  config.trace_rounds = trace_rounds;
  // Determinism is only promised while the budget never expires; disable it.
  config.budget_seconds = 1e9;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(text);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  RunOutcome out;
  out.cost = optimized->cost();
  out.plan = optimized->Explain();
  out.rounds_planned = optimized->result.diagnostics.rounds_planned;
  out.rounds_executed = optimized->result.diagnostics.rounds_executed;
  out.trace = optimized->result.diagnostics.round_trace;
  out.cache = optimized->result.diagnostics.cache;
  return out;
}

void ExpectIdenticalAcrossThreadCounts(const Catalog& catalog,
                                       const std::string& text) {
  RunOutcome serial = RunWithThreads(catalog, text, 1);
  for (int threads : {2, 8}) {
    RunOutcome parallel = RunWithThreads(catalog, text, threads);
    EXPECT_EQ(serial.cost, parallel.cost) << "threads=" << threads;
    EXPECT_EQ(serial.plan, parallel.plan) << "threads=" << threads;
    EXPECT_EQ(serial.rounds_planned, parallel.rounds_planned)
        << "threads=" << threads;
    EXPECT_EQ(serial.rounds_executed, parallel.rounds_executed)
        << "threads=" << threads;
    ASSERT_EQ(serial.trace.size(), parallel.trace.size())
        << "threads=" << threads;
    for (size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(serial.trace[i].lca, parallel.trace[i].lca);
      EXPECT_EQ(serial.trace[i].round_index, parallel.trace[i].round_index);
      EXPECT_EQ(serial.trace[i].assignment, parallel.trace[i].assignment);
      EXPECT_EQ(serial.trace[i].cost, parallel.trace[i].cost);
      EXPECT_EQ(serial.trace[i].best_so_far, parallel.trace[i].best_so_far);
    }
  }
}

TEST(ParallelOptTest, S1BitIdenticalAcrossThreadCounts) {
  ExpectIdenticalAcrossThreadCounts(MakePaperCatalog(), kScriptS1);
}

TEST(ParallelOptTest, S2BitIdenticalAcrossThreadCounts) {
  ExpectIdenticalAcrossThreadCounts(MakePaperCatalog(), kScriptS2);
}

TEST(ParallelOptTest, S3BitIdenticalAcrossThreadCounts) {
  ExpectIdenticalAcrossThreadCounts(MakePaperCatalog(), kScriptS3);
}

TEST(ParallelOptTest, S4BitIdenticalAcrossThreadCounts) {
  ExpectIdenticalAcrossThreadCounts(MakePaperCatalog(), kScriptS4);
}

TEST(ParallelOptTest, LS1BitIdenticalAcrossThreadCounts) {
  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  ExpectIdenticalAcrossThreadCounts(ls1.catalog, ls1.text);
}

TEST(ParallelOptTest, CountersDeterministicPerThreadCount) {
  // Cache hit/miss totals depend on the thread count (parallel workers
  // recompute entries redundantly in their overlays before absorption), but
  // for a FIXED thread count they must be reproducible run to run —
  // including worker counters merged into the master via AbsorbCaches.
  Catalog catalog = MakePaperCatalog();
  for (int threads : {1, 2, 4}) {
    RunOutcome a = RunWithThreads(catalog, kScriptS3, threads);
    RunOutcome b = RunWithThreads(catalog, kScriptS3, threads);
    ExpectSameCounters(a.cache, b.cache, "S3 repeated run");
    EXPECT_GT(a.cache.winner_hits, 0);
    EXPECT_GT(a.cache.winner_misses, 0);
    EXPECT_GT(a.cache.interner_size, 0);
  }
}

TEST(ParallelOptTest, RoundPruningNeverChangesWinner) {
  // trace off enables class-local branch-and-bound across rounds; the
  // chosen plan and cost must still match the traced (unpruned) run bit
  // for bit, at every thread count.
  Catalog catalog = MakePaperCatalog();
  for (const std::string& script :
       {std::string(kScriptS1), std::string(kScriptS3),
        std::string(kScriptS4)}) {
    RunOutcome traced = RunWithThreads(catalog, script, 1, true);
    for (int threads : {1, 2, 8}) {
      RunOutcome fast = RunWithThreads(catalog, script, threads, false);
      EXPECT_EQ(traced.cost, fast.cost) << "threads=" << threads;
      EXPECT_EQ(traced.plan, fast.plan) << "threads=" << threads;
      EXPECT_EQ(traced.rounds_executed, fast.rounds_executed)
          << "threads=" << threads;
    }
    // Serial untraced runs do prune rounds on these scripts.
    RunOutcome fast1 = RunWithThreads(catalog, script, 1, false);
    EXPECT_GT(fast1.cache.pruned_rounds, 0);
  }
}

TEST(ParallelOptTest, NaiveSharingUnaffectedByThreadCount) {
  Catalog catalog = MakePaperCatalog();
  for (int threads : {1, 4}) {
    OptimizerConfig config;
    config.num_threads = threads;
    Engine engine(catalog, config);
    auto compiled = engine.Compile(kScriptS1);
    ASSERT_TRUE(compiled.ok());
    auto a = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    auto b = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->cost(), b->cost());
  }
}

TEST(ParallelOptTest, ConcurrentOptimizeOnOneEngine) {
  // Two threads drive the same Engine and CompiledScript at once; each run
  // builds a private memo/registry/optimizer, so results must match a quiet
  // single-threaded run exactly.
  Catalog catalog = MakePaperCatalog();
  OptimizerConfig config;
  config.num_threads = 2;
  config.budget_seconds = 1e9;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(kScriptS2);
  ASSERT_TRUE(compiled.ok());
  RunOutcome reference = RunWithThreads(catalog, kScriptS2, 1);

  constexpr int kRuns = 4;
  std::vector<double> costs(kRuns, -1.0);
  std::vector<std::string> plans(kRuns);
  std::vector<std::thread> threads;
  for (int t = 0; t < kRuns; ++t) {
    threads.emplace_back([&, t] {
      auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
      if (optimized.ok()) {
        costs[static_cast<size_t>(t)] = optimized->cost();
        plans[static_cast<size_t>(t)] = optimized->Explain();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kRuns; ++t) {
    EXPECT_EQ(costs[static_cast<size_t>(t)], reference.cost);
    EXPECT_EQ(plans[static_cast<size_t>(t)], reference.plan);
  }
}

TEST(ParallelOptTest, CompareMatchesSeparateOptimizeCalls) {
  Catalog catalog = MakePaperCatalog();
  OptimizerConfig config;
  config.num_threads = 4;  // Compare overlaps its two runs on two threads
  Engine engine(catalog, config);
  auto c = engine.Compare(kScriptS1);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(conv.ok());
  ASSERT_TRUE(cse.ok());
  EXPECT_EQ(c->conventional.cost(), conv->cost());
  EXPECT_EQ(c->cse.cost(), cse->cost());
}

TEST(ParallelOptTest, SecondRunReturnsFailedPrecondition) {
  Catalog catalog = MakePaperCatalog();
  Engine engine(catalog);
  auto compiled = engine.Compile(kScriptS1);
  ASSERT_TRUE(compiled.ok());
  Memo memo = Memo::FromLogicalDag(compiled->bound.root);
  Optimizer optimizer(std::move(memo), compiled->bound.columns,
                      engine.config());
  auto first = optimizer.Run(OptimizerMode::kCse);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = optimizer.Run(OptimizerMode::kCse);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);

  // Re-optimization goes through a fresh context instead (the Engine builds
  // one per Optimize call).
  auto again = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->cost(), first->cost);
}

}  // namespace
}  // namespace scx
