// Tests for paper Sec. IV: expression fingerprints (Def. 1) and
// IdentifyCommonSubexpressions (Algorithm 1) — explicit spool insertion,
// fingerprint-based duplicate merging, and column-identity rewriting.

#include <gtest/gtest.h>

#include "core/fingerprint.h"
#include "memo/memo.h"
#include "plan/binder.h"
#include "script/parser.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

Memo MemoOf(const std::string& script) {
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto bound = BindScript(*ast, catalog);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return Memo::FromLogicalDag(bound->root);
}

int CountShared(const Memo& memo) {
  int n = 0;
  for (GroupId g : memo.TopologicalOrder()) {
    if (memo.group(g).is_shared()) ++n;
  }
  return n;
}

// The same subexpression written twice, with distinct result names (and
// therefore distinct column ids): only fingerprints can merge these.
const char kDuplicatedScript[] = R"(
A0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
A1 = SELECT A,B,Sum(D) AS S FROM A0 GROUP BY A,B;
B0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
B1 = SELECT A,B,Sum(D) AS S FROM B0 GROUP BY A,B;
A2 = SELECT A,Sum(S) AS T FROM A1 GROUP BY A;
B2 = SELECT B,Sum(S) AS T FROM B1 GROUP BY B;
OUTPUT A2 TO "a.out";
OUTPUT B2 TO "b.out";
)";

// Structurally different aggregates over the same extract: same Def. 1
// fingerprint (payload excluded) but NOT equal — must not merge.
const char kCollidingScript[] = R"(
A0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
A1 = SELECT A,Sum(D) AS S FROM A0 GROUP BY A;
A2 = SELECT B,Sum(D) AS S FROM A0 GROUP BY B;
OUTPUT A1 TO "a.out";
OUTPUT A2 TO "b.out";
)";

TEST(FingerprintTest, Definition1LeafIsFileId) {
  Memo memo = MemoOf(kScriptS1);
  auto fp = ComputeFingerprints(memo, false);
  for (GroupId g : memo.TopologicalOrder()) {
    const GroupExpr& e = memo.group(g).initial_expr();
    if (e.op->kind() == LogicalOpKind::kExtract) {
      EXPECT_EQ(fp.at(g), static_cast<uint64_t>(e.op->file.file_id) %
                              (((uint64_t{1} << 61) - 1)));
    }
  }
}

TEST(FingerprintTest, EqualSubexpressionsGetEqualFingerprints) {
  Memo memo = MemoOf(kDuplicatedScript);
  auto fp = ComputeFingerprints(memo, false);
  // Find the two first-level aggregates (A1 / B1).
  std::vector<uint64_t> agg_fps;
  for (GroupId g : memo.TopologicalOrder()) {
    const GroupExpr& e = memo.group(g).initial_expr();
    if (e.op->kind() == LogicalOpKind::kGbAgg &&
        (e.op->result_name == "A1" || e.op->result_name == "B1")) {
      agg_fps.push_back(fp.at(g));
    }
  }
  ASSERT_EQ(agg_fps.size(), 2u);
  EXPECT_EQ(agg_fps[0], agg_fps[1]);
}

TEST(FingerprintTest, DifferentFilesGetDifferentFingerprints) {
  Memo memo = MemoOf(kScriptS3);  // reads test.log and test2.log
  auto fp = ComputeFingerprints(memo, false);
  std::vector<uint64_t> extract_fps;
  for (GroupId g : memo.TopologicalOrder()) {
    if (memo.group(g).initial_expr().op->kind() == LogicalOpKind::kExtract) {
      extract_fps.push_back(fp.at(g));
    }
  }
  ASSERT_EQ(extract_fps.size(), 2u);
  EXPECT_NE(extract_fps[0], extract_fps[1]);
}

TEST(EquivalenceTest, EqualSubexpressionsProduceColumnMap) {
  Memo memo = MemoOf(kDuplicatedScript);
  GroupId a1 = kInvalidGroup, b1 = kInvalidGroup;
  for (GroupId g : memo.TopologicalOrder()) {
    const GroupExpr& e = memo.group(g).initial_expr();
    if (e.op->result_name == "A1") a1 = g;
    if (e.op->result_name == "B1") b1 = g;
  }
  ASSERT_NE(a1, kInvalidGroup);
  ASSERT_NE(b1, kInvalidGroup);
  std::map<ColumnId, ColumnId> remap;
  ASSERT_TRUE(EquivalentSubexpressions(memo, a1, b1, &remap));
  // Every output column of B1 maps positionally onto A1's.
  const Schema& sa = memo.group(a1).schema();
  const Schema& sb = memo.group(b1).schema();
  for (int i = 0; i < sb.NumColumns(); ++i) {
    EXPECT_EQ(remap.at(sb.column(i).id), sa.column(i).id);
  }
}

TEST(EquivalenceTest, DifferentGroupingsAreNotEquivalent) {
  Memo memo = MemoOf(kCollidingScript);
  GroupId a1 = kInvalidGroup, a2 = kInvalidGroup;
  for (GroupId g : memo.TopologicalOrder()) {
    const GroupExpr& e = memo.group(g).initial_expr();
    if (e.op->result_name == "A1") a1 = g;
    if (e.op->result_name == "A2") a2 = g;
  }
  EXPECT_FALSE(EquivalentSubexpressions(memo, a1, a2, nullptr));
  // ...even though their Def. 1 fingerprints collide (same OpIDs, same
  // child), which is exactly why Algorithm 1 compares colliding entries.
  auto fp = ComputeFingerprints(memo, false);
  EXPECT_EQ(fp.at(a1), fp.at(a2));
}

TEST(Algorithm1Test, ExplicitSharedGroupGetsSpool) {
  Memo memo = MemoOf(kScriptS1);
  int before = memo.num_groups();
  CseIdentifyResult r = IdentifyCommonSubexpressions(&memo, {});
  EXPECT_EQ(r.explicit_shared, 1);  // R
  EXPECT_EQ(r.merged, 0);
  EXPECT_EQ(memo.num_groups(), before + 1);  // one spool group
  EXPECT_EQ(CountShared(memo), 1);
  // The spool has the two consumers as parents; R has only the spool.
  for (GroupId g : memo.TopologicalOrder()) {
    if (!memo.group(g).is_shared()) continue;
    EXPECT_EQ(memo.group(g).initial_expr().op->kind(), LogicalOpKind::kSpool);
    EXPECT_EQ(memo.ParentsOf(g).size(), 2u);
  }
}

TEST(Algorithm1Test, FingerprintMergeUnifiesDuplicates) {
  Memo memo = MemoOf(kDuplicatedScript);
  CseIdentifyResult r = IdentifyCommonSubexpressions(&memo, {});
  // A0/B0 and A1/B1 are textual duplicates. Merging the A1/B1 subexpression
  // subsumes the extract duplication (one merge at the highest root).
  EXPECT_GE(r.merged, 1);
  EXPECT_GE(CountShared(memo), 1);
  // After the merge, consumers A2 and B2 must reference valid columns of
  // the canonical subexpression: their group columns must exist in their
  // child's schema.
  for (GroupId g : memo.TopologicalOrder()) {
    const GroupExpr& e = memo.group(g).initial_expr();
    if (e.op->kind() != LogicalOpKind::kGbAgg) continue;
    const Schema& child_schema = memo.group(e.children[0]).schema();
    for (ColumnId c : e.op->group_cols) {
      EXPECT_GE(child_schema.PositionOf(c), 0)
          << "dangling column #" << c << " in " << e.op->Describe();
    }
  }
}

TEST(Algorithm1Test, CollidingButUnequalNotMerged) {
  Memo memo = MemoOf(kCollidingScript);
  CseIdentifyResult r = IdentifyCommonSubexpressions(&memo, {});
  EXPECT_EQ(r.merged, 0);
  // A0 is explicitly shared (two consumers) — exactly one spool.
  EXPECT_EQ(r.explicit_shared, 1);
}

TEST(Algorithm1Test, FingerprintMergeCanBeDisabled) {
  Memo memo = MemoOf(kDuplicatedScript);
  CseIdentifyOptions opts;
  opts.fingerprint_merge = false;
  CseIdentifyResult r = IdentifyCommonSubexpressions(&memo, opts);
  EXPECT_EQ(r.merged, 0);
  EXPECT_EQ(r.explicit_shared, 0);  // nothing explicitly shared here
}

TEST(Algorithm1Test, PayloadSeasoningSeparatesColliders) {
  Memo memo = MemoOf(kCollidingScript);
  auto plain = ComputeFingerprints(memo, false);
  auto seasoned = ComputeFingerprints(memo, true);
  GroupId a1 = kInvalidGroup, a2 = kInvalidGroup;
  for (GroupId g : memo.TopologicalOrder()) {
    const GroupExpr& e = memo.group(g).initial_expr();
    if (e.op->result_name == "A1") a1 = g;
    if (e.op->result_name == "A2") a2 = g;
  }
  EXPECT_EQ(plain.at(a1), plain.at(a2));
  // Seasoning keeps equal-shape expressions colliding (these two have the
  // same shape), so results must be identical either way — the merge
  // decision is made by structural comparison, not the hash.
  Memo m1 = MemoOf(kCollidingScript);
  CseIdentifyOptions with;
  with.include_payload_hash = true;
  CseIdentifyResult r1 = IdentifyCommonSubexpressions(&m1, with);
  EXPECT_EQ(r1.merged, 0);
  (void)seasoned;
}

TEST(Algorithm1Test, S3FindsTwoSharedGroups) {
  Memo memo = MemoOf(kScriptS3);
  CseIdentifyResult r = IdentifyCommonSubexpressions(&memo, {});
  // R and T are each consumed twice (different files — not merged).
  EXPECT_EQ(r.explicit_shared, 2);
  EXPECT_EQ(CountShared(memo), 2);
}

TEST(Algorithm1Test, S4FindsNestedSharedGroups) {
  Memo memo = MemoOf(kScriptS4);
  CseIdentifyResult r = IdentifyCommonSubexpressions(&memo, {});
  // R (consumed by R1, R2), R1 (join + output), R2 (join + output).
  EXPECT_EQ(r.explicit_shared, 3);
}

}  // namespace
}  // namespace scx
