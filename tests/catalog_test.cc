// Catalog and file-definition tests.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace scx {
namespace {

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterLog("a.log", {"X", "Y"}, 100, {10, 20}).ok());
  EXPECT_TRUE(catalog.HasFile("a.log"));
  EXPECT_FALSE(catalog.HasFile("b.log"));
  auto file = catalog.GetFile("a.log");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->row_count, 100);
  EXPECT_EQ(file->columns.size(), 2u);
  EXPECT_EQ(file->columns[1].distinct_count, 20);
}

TEST(CatalogTest, FileIdsAreUniqueAndStable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterLog("a.log", {"X"}, 1, {1}).ok());
  ASSERT_TRUE(catalog.RegisterLog("b.log", {"X"}, 1, {1}).ok());
  auto a = catalog.GetFile("a.log");
  auto b = catalog.GetFile("b.log");
  EXPECT_NE(a->file_id, b->file_id);
  EXPECT_NE(a->data_seed, 0u);  // auto-assigned
}

TEST(CatalogTest, DuplicateRegistrationFails) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterLog("a.log", {"X"}, 1, {1}).ok());
  Status s = catalog.RegisterLog("a.log", {"X"}, 1, {1});
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MismatchedStatsVectorFails) {
  Catalog catalog;
  Status s = catalog.RegisterLog("a.log", {"X", "Y"}, 1, {1});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, MissingFileLookupFails) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetFile("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RowWidthAndColumnIndex) {
  FileDef def;
  def.columns = {{"X", DataType::kInt64, 10, 8},
                 {"Y", DataType::kString, 5, 20}};
  EXPECT_EQ(def.RowWidth(), 28);
  EXPECT_EQ(def.ColumnIndex("Y"), 1);
  EXPECT_EQ(def.ColumnIndex("Z"), -1);
}

TEST(CatalogTest, MixedColumnTypes) {
  Catalog catalog;
  FileDef def;
  def.path = "typed.log";
  def.row_count = 50;
  def.columns = {{"K", DataType::kInt64, 10, 8},
                 {"V", DataType::kDouble, 100, 8},
                 {"S", DataType::kString, 5, 12}};
  ASSERT_TRUE(catalog.RegisterFile(def).ok());
  auto f = catalog.GetFile("typed.log");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->columns[1].type, DataType::kDouble);
  EXPECT_EQ(f->columns[2].type, DataType::kString);
}

}  // namespace
}  // namespace scx
