// Tests for paper Sec. VI: shared-group propagation, consumer sets, and LCA
// identification — including the paper's Fig. 3(c) case where the LCA is
// NOT the lowest common ancestor, and the agreement between the paper's
// Algorithm 3 and the independent post-dominator construction.

#include <gtest/gtest.h>

#include <random>

#include "core/fingerprint.h"
#include "core/shared_info.h"
#include "plan/binder.h"
#include "script/parser.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

struct Prepared {
  Memo memo;
  SharedInfo info;
};

Prepared Prepare(const std::string& script) {
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto bound = BindScript(*ast, catalog);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  Memo memo = Memo::FromLogicalDag(bound->root);
  IdentifyCommonSubexpressions(&memo, {});
  SharedInfo info = SharedInfo::Compute(memo);
  return {std::move(memo), std::move(info)};
}

LogicalOpKind KindOf(const Memo& memo, GroupId g) {
  return memo.group(g).initial_expr().op->kind();
}

TEST(SharedInfoTest, Fig3aLcaIsSequenceRoot) {
  Prepared p = Prepare(kScriptFig3a);
  ASSERT_EQ(p.info.shared_groups().size(), 1u);
  GroupId spool = p.info.shared_groups()[0];
  EXPECT_EQ(p.info.ConsumersOf(spool).size(), 2u);
  // Paper Fig. 3(a): the consumers' paths only meet at the Sequence root.
  GroupId lca = p.info.LcaOf(spool);
  EXPECT_EQ(lca, p.memo.root());
  EXPECT_EQ(KindOf(p.memo, lca), LogicalOpKind::kSequence);
}

TEST(SharedInfoTest, Fig3cLcaIsNotLowestCommonAncestor) {
  // Fig. 3(c): consumers R1, R2 feed both a Join and their own Outputs.
  // The Join is their lowest common ancestor but some consumer→root paths
  // (through the direct outputs) bypass it, so the LCA is the root.
  Prepared p = Prepare(kScriptFig3c);
  // Shared groups: R, R1, R2. Find R's spool: the one whose consumers are
  // both GbAgg groups.
  GroupId r_spool = kInvalidGroup;
  for (GroupId s : p.info.shared_groups()) {
    bool all_aggs = true;
    for (GroupId c : p.info.ConsumersOf(s)) {
      if (KindOf(p.memo, c) != LogicalOpKind::kGbAgg) all_aggs = false;
    }
    if (all_aggs && p.info.ConsumersOf(s).size() == 2) r_spool = s;
  }
  ASSERT_NE(r_spool, kInvalidGroup);
  GroupId lca = p.info.LcaOf(r_spool);
  EXPECT_EQ(lca, p.memo.root());
  EXPECT_EQ(KindOf(p.memo, lca), LogicalOpKind::kSequence);
  // The join IS a common ancestor of both consumers but must not be chosen.
  for (GroupId g : p.memo.TopologicalOrder()) {
    if (KindOf(p.memo, g) == LogicalOpKind::kJoin) {
      EXPECT_NE(lca, g);
    }
  }
}

TEST(SharedInfoTest, S3HasTwoSharedGroupsWithDifferentLcas) {
  Prepared p = Prepare(kScriptS3);
  ASSERT_EQ(p.info.shared_groups().size(), 2u);
  GroupId s0 = p.info.shared_groups()[0];
  GroupId s1 = p.info.shared_groups()[1];
  // Each branch's consumers meet at that branch's Join (all consumer paths
  // pass through it before the root).
  EXPECT_NE(p.info.LcaOf(s0), p.info.LcaOf(s1));
  EXPECT_EQ(KindOf(p.memo, p.info.LcaOf(s0)), LogicalOpKind::kJoin);
  EXPECT_EQ(KindOf(p.memo, p.info.LcaOf(s1)), LogicalOpKind::kJoin);
}

TEST(SharedInfoTest, Algorithm3AgreesWithPostDominators) {
  for (const char* script :
       {kScriptS1, kScriptS2, kScriptS3, kScriptS4, kScriptFig3c}) {
    Prepared p = Prepare(script);
    for (GroupId s : p.info.shared_groups()) {
      ASSERT_TRUE(p.info.algorithm3_lca().count(s))
          << "Algorithm 3 found no LCA for shared group " << s;
      EXPECT_EQ(p.info.algorithm3_lca().at(s), p.info.LcaOf(s))
          << "script disagreement at shared group " << s;
    }
  }
}

TEST(SharedInfoTest, Algorithm3AgreesOnLs1Dag) {
  GeneratedScript gen = GenerateLargeScript(Ls1Spec());
  auto ast = ParseScript(gen.text);
  ASSERT_TRUE(ast.ok());
  auto bound = BindScript(*ast, gen.catalog);
  ASSERT_TRUE(bound.ok());
  Memo memo = Memo::FromLogicalDag(bound->root);
  IdentifyCommonSubexpressions(&memo, {});
  SharedInfo info = SharedInfo::Compute(memo);
  ASSERT_EQ(info.shared_groups().size(), 4u);
  for (GroupId s : info.shared_groups()) {
    ASSERT_TRUE(info.algorithm3_lca().count(s));
    EXPECT_EQ(info.algorithm3_lca().at(s), info.LcaOf(s));
  }
}

TEST(SharedInfoTest, SharedBelowPropagatesToRoot) {
  Prepared p = Prepare(kScriptS1);
  GroupId spool = p.info.shared_groups()[0];
  // Root knows about the shared group below it.
  EXPECT_TRUE(p.info.SharedBelow(p.memo.root()).count(spool));
  // The spool knows about itself.
  EXPECT_TRUE(p.info.SharedBelow(spool).count(spool));
  // The extract below the spool does not.
  for (GroupId g : p.memo.TopologicalOrder()) {
    if (KindOf(p.memo, g) == LogicalOpKind::kExtract) {
      EXPECT_TRUE(p.info.SharedBelow(g).empty());
    }
  }
}

TEST(SharedInfoTest, SharedGroupsWithLcaInverse) {
  Prepared p = Prepare(kScriptS3);
  for (GroupId s : p.info.shared_groups()) {
    auto at_lca = p.info.SharedGroupsWithLca(p.info.LcaOf(s));
    EXPECT_NE(std::find(at_lca.begin(), at_lca.end(), s), at_lca.end());
  }
}

TEST(SharedInfoTest, IndependenceS3BranchesAreSeparate) {
  // S3's two shared groups have different LCAs — each LCA sees exactly one
  // class with one group.
  Prepared p = Prepare(kScriptS3);
  for (GroupId s : p.info.shared_groups()) {
    auto classes = p.info.IndependenceClassesAt(p.memo, p.info.LcaOf(s));
    ASSERT_EQ(classes.size(), 1u);
    EXPECT_EQ(classes[0], std::vector<GroupId>{s});
  }
}

TEST(SharedInfoTest, IndependenceS4GroupsAreJoint) {
  // S4: R1-spool and R2-spool share the same LCA and their consuming paths
  // share the Join — non-independent (paper Fig. 6, S4).
  Prepared p = Prepare(kScriptS4);
  std::map<GroupId, std::vector<GroupId>> by_lca;
  for (GroupId s : p.info.shared_groups()) {
    by_lca[p.info.LcaOf(s)].push_back(s);
  }
  bool found_joint_class = false;
  for (const auto& [lca, groups] : by_lca) {
    if (groups.size() < 2) continue;
    auto classes = p.info.IndependenceClassesAt(p.memo, lca);
    for (const auto& cls : classes) {
      if (cls.size() >= 2) found_joint_class = true;
    }
  }
  EXPECT_TRUE(found_joint_class);
}

// Independent shared groups: two disjoint modules whose outputs meet only
// at the Sequence root (paper Fig. 5 shape).
TEST(SharedInfoTest, IndependenceDisjointModules) {
  const char kTwoModules[] = R"(
A0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
A  = SELECT A,B,C,Sum(D) AS S FROM A0 GROUP BY A,B,C;
A1 = SELECT A,B,Sum(S) AS T FROM A GROUP BY A,B;
A2 = SELECT B,C,Sum(S) AS T FROM A GROUP BY B,C;
B0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
B  = SELECT A,B,C,Sum(D) AS S FROM B0 GROUP BY A,B,C;
B1 = SELECT A,B,Sum(S) AS T FROM B GROUP BY A,B;
B2 = SELECT B,C,Sum(S) AS T FROM B GROUP BY B,C;
OUTPUT A1 TO "a1.out";
OUTPUT A2 TO "a2.out";
OUTPUT B1 TO "b1.out";
OUTPUT B2 TO "b2.out";
)";
  Prepared p = Prepare(kTwoModules);
  ASSERT_EQ(p.info.shared_groups().size(), 2u);
  GroupId root = p.memo.root();
  EXPECT_EQ(p.info.LcaOf(p.info.shared_groups()[0]), root);
  EXPECT_EQ(p.info.LcaOf(p.info.shared_groups()[1]), root);
  auto classes = p.info.IndependenceClassesAt(p.memo, root);
  ASSERT_EQ(classes.size(), 2u);  // independent: sequential optimization
  EXPECT_EQ(classes[0].size(), 1u);
  EXPECT_EQ(classes[1].size(), 1u);
}

// Randomized check: Algorithm 3 and the post-dominator LCA agree on
// generated multi-output scripts.
class RandomDagAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagAgreement, Alg3MatchesPostDominators) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919);
  // Generate a random script: one shared aggregate, 2-4 consumers, random
  // subset of consumers joined pairwise, all terminals output.
  std::uniform_int_distribution<int> consumers_dist(2, 4);
  int consumers = consumers_dist(rng);
  const char* group_sets[] = {"A,B", "B,C", "A,C", "B"};
  std::string script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;\n";
  for (int i = 0; i < consumers; ++i) {
    script += "C" + std::to_string(i) + " = SELECT " +
              group_sets[i % 4] + ",Sum(S) AS T FROM R GROUP BY " +
              group_sets[i % 4] + ";\n";
  }
  std::uniform_int_distribution<int> coin(0, 1);
  bool join_first_two = consumers >= 2 && coin(rng) == 1;
  if (join_first_two) {
    script += "J = SELECT C0.B,C0.T AS T0,C1.T AS T1 FROM C0,C1 "
              "WHERE C0.B=C1.B;\n";
    script += "OUTPUT J TO \"j.out\";\n";
  }
  for (int i = 0; i < consumers; ++i) {
    if (coin(rng) == 1 || !join_first_two || i >= 2) {
      script += "OUTPUT C" + std::to_string(i) + " TO \"c" +
                std::to_string(i) + ".out\";\n";
    }
  }
  // Ensure at least one output exists.
  if (script.find("OUTPUT") == std::string::npos) {
    script += "OUTPUT C0 TO \"c0.out\";\n";
  }
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  ASSERT_TRUE(ast.ok()) << script;
  auto bound = BindScript(*ast, catalog);
  if (!bound.ok()) GTEST_SKIP() << bound.status().ToString();
  Memo memo = Memo::FromLogicalDag(bound->root);
  IdentifyCommonSubexpressions(&memo, {});
  SharedInfo info = SharedInfo::Compute(memo);
  for (GroupId s : info.shared_groups()) {
    if (info.ConsumersOf(s).empty()) continue;
    ASSERT_TRUE(info.algorithm3_lca().count(s)) << script;
    EXPECT_EQ(info.algorithm3_lca().at(s), info.LcaOf(s)) << script;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagAgreement,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace scx
