// Cardinality-estimation and cost-model tests.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "plan/binder.h"
#include "script/parser.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

struct Prepared {
  Memo memo;
  ColumnRegistryPtr columns;
};

Prepared Prepare(const std::string& script) {
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  EXPECT_TRUE(ast.ok());
  auto bound = BindScript(*ast, catalog);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return {Memo::FromLogicalDag(bound->root), bound->columns};
}

GroupId FindGroup(const Memo& memo, const std::string& result_name) {
  for (GroupId g = 0; g < memo.num_groups(); ++g) {
    if (memo.group(g).initial_expr().op->result_name == result_name) return g;
  }
  return kInvalidGroup;
}

TEST(DistinctSeenTest, BasicShape) {
  // No draws -> nothing seen; many draws -> approaches the domain size;
  // monotone in both arguments.
  EXPECT_DOUBLE_EQ(CardinalityEstimator::DistinctSeen(100, 0), 0);
  EXPECT_NEAR(CardinalityEstimator::DistinctSeen(100, 1e9), 100, 1e-6);
  EXPECT_LT(CardinalityEstimator::DistinctSeen(100, 50),
            CardinalityEstimator::DistinctSeen(100, 100));
  EXPECT_LT(CardinalityEstimator::DistinctSeen(50, 100),
            CardinalityEstimator::DistinctSeen(100, 100));
  // Never exceeds the draw count or the domain.
  EXPECT_LE(CardinalityEstimator::DistinctSeen(100, 50), 50 + 1e-9);
  EXPECT_LE(CardinalityEstimator::DistinctSeen(50, 1000), 50 + 1e-9);
}

TEST(EstimatorTest, ExtractUsesCatalogRows) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  GroupId r0 = FindGroup(p.memo, "R0");
  EXPECT_DOUBLE_EQ(est.StatsOf(r0).rows, 2000000);
  EXPECT_DOUBLE_EQ(est.StatsOf(r0).row_width, 32);  // 4 int64 columns
}

TEST(EstimatorTest, GroupByReducesRows) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  GroupId r0 = FindGroup(p.memo, "R0");
  GroupId r = FindGroup(p.memo, "R");
  GroupId r1 = FindGroup(p.memo, "R1");
  EXPECT_LT(est.StatsOf(r).rows, est.StatsOf(r0).rows);
  EXPECT_LT(est.StatsOf(r1).rows, est.StatsOf(r).rows);
  // ndv(A,B,C) = 40*400*40 = 640k caps the aggregate size.
  EXPECT_LE(est.StatsOf(r).rows, 640000);
}

TEST(EstimatorTest, NdvOfIsProduct) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  GroupId r0 = FindGroup(p.memo, "R0");
  const Schema& schema = p.memo.group(r0).schema();
  ColumnId a = schema.column(0).id, b = schema.column(1).id;
  EXPECT_DOUBLE_EQ(est.Ndv(a), 40);
  EXPECT_DOUBLE_EQ(est.Ndv(b), 400);
  EXPECT_DOUBLE_EQ(est.NdvOf(ColumnSet::Of({a, b})), 16000);
}

TEST(EstimatorTest, AggregateOutputNdvDerived) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  GroupId r = FindGroup(p.memo, "R");
  ColumnId s = p.memo.group(r).initial_expr().op->aggregates[0].out;
  EXPECT_DOUBLE_EQ(est.Ndv(s), est.StatsOf(r).rows);
}

TEST(EstimatorTest, FilterSelectivity) {
  Prepared p = Prepare(
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "F  = SELECT A,B,C,D FROM R0 WHERE A = 7;\n"
      "G  = SELECT A,B,C,D FROM R0 WHERE D > 3;\n"
      "OUTPUT F TO \"f\";\nOUTPUT G TO \"g\";");
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  GroupId f = FindGroup(p.memo, "F");
  GroupId g = FindGroup(p.memo, "G");
  GroupId r0 = FindGroup(p.memo, "R0");
  // Equality on A (ndv 40): 1/40 of rows; range: 1/3.
  EXPECT_NEAR(est.StatsOf(f).rows, est.StatsOf(r0).rows / 40, 1);
  EXPECT_NEAR(est.StatsOf(g).rows, est.StatsOf(r0).rows / 3, 1);
}

TEST(EstimatorTest, JoinCardinality) {
  Prepared p = Prepare(kScriptS3);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  GroupId r1 = FindGroup(p.memo, "R1");
  GroupId rr = FindGroup(p.memo, "RR");
  // |R1 join R2 on B| = |R1|*|R2| / ndv(B); much larger than either side
  // here, but finite and positive.
  EXPECT_GT(est.StatsOf(rr).rows, 0);
  EXPECT_GT(est.StatsOf(r1).rows, 0);
}

TEST(CostModelTest, EffectiveParallelismSkew) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;  // 100 machines
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  CostModel model(CostConstants{}, cluster, &est);
  GroupId r0 = FindGroup(p.memo, "R0");
  const Schema& schema = p.memo.group(r0).schema();
  ColumnId a = schema.column(0).id;  // ndv 40
  ColumnId b = schema.column(1).id;  // ndv 400
  double eff_a = model.EffectiveParallelism(
      Partitioning::Hash(ColumnSet::Of({a})));
  double eff_b = model.EffectiveParallelism(
      Partitioning::Hash(ColumnSet::Of({b})));
  double eff_ab = model.EffectiveParallelism(
      Partitioning::Hash(ColumnSet::Of({a, b})));
  EXPECT_LT(eff_a, eff_b);   // fewer distinct values -> more skew
  EXPECT_LT(eff_b, eff_ab);  // more columns -> more balanced
  EXPECT_LE(eff_ab, 100.0);
  EXPECT_DOUBLE_EQ(
      model.EffectiveParallelism(Partitioning::Serial()), 1.0);
  EXPECT_DOUBLE_EQ(
      model.EffectiveParallelism(Partitioning::Random()), 100.0);
}

TEST(CostModelTest, ExchangeCostScalesWithBytes) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  CostModel model(CostConstants{}, cluster, &est);
  GroupStats small{1000, 32};
  GroupStats big{1000000, 32};
  ColumnSet cols = p.memo.group(FindGroup(p.memo, "R0")).schema().IdSet();
  double c_small = model.HashExchange(small, Partitioning::Random(), cols);
  double c_big = model.HashExchange(big, Partitioning::Random(), cols);
  EXPECT_NEAR(c_big / c_small, 1000.0, 1e-6);
  // Merge exchange strictly costs more than a plain exchange.
  EXPECT_GT(model.MergeExchange(big, Partitioning::Random(), cols), c_big);
}

TEST(CostModelTest, StreamCheaperThanHashAggregation) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  CostModel model(CostConstants{}, cluster, &est);
  GroupStats in{1000000, 32};
  EXPECT_LT(model.StreamAgg(in, Partitioning::Random()),
            model.HashAgg(in, Partitioning::Random()));
  // ...but a sort plus stream agg may exceed hash agg — both plans are
  // explored by the optimizer and costed, not hard-coded.
}

TEST(CostModelTest, RepartCostMatchesPaperFormulaInputs) {
  Prepared p = Prepare(kScriptS1);
  ClusterConfig cluster;
  CardinalityEstimator est(cluster, p.columns);
  est.EstimateMemo(p.memo);
  CostModel model(CostConstants{}, cluster, &est);
  GroupStats g{1000, 10};
  // RepartCost is a full shuffle of the group's bytes.
  EXPECT_DOUBLE_EQ(model.RepartCostOf(g),
                   10000 * CostConstants{}.net_per_byte / 100);
}

}  // namespace
}  // namespace scx
