// Scalar-expression tests: parsing precedence, binding/type checks, the
// Compute operator through the optimizer and executor, expressions as
// aggregate arguments, and CSE interaction (equal computed subexpressions
// merge; properties pass through passthrough columns).

#include <gtest/gtest.h>

#include <cmath>

#include "api/engine.h"
#include "plan/scalar.h"
#include "script/parser.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

ExecMetrics RunScript(const std::string& script, OptimizerMode mode,
                      int64_t rows = 2000) {
  OptimizerConfig config;
  config.cluster.machines = 4;
  Engine engine(MakeExecutionCatalog(rows), config);
  auto compiled = engine.Compile(script);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto optimized = engine.Optimize(*compiled, mode);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto metrics = engine.Execute(*optimized);
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return std::move(metrics.value());
}

TEST(ScalarExprTest, EvaluateArithmetic) {
  Schema schema({{0, "A", "", DataType::kInt64},
                 {1, "B", "", DataType::kInt64}});
  Row row = {Value::Int(7), Value::Int(3)};
  auto a = ScalarExpr::Column(0);
  auto b = ScalarExpr::Column(1);
  auto sum = ScalarExpr::Binary(ScalarExpr::BinOp::kAdd, a, b);
  auto prod = ScalarExpr::Binary(ScalarExpr::BinOp::kMul, a, b);
  auto diff = ScalarExpr::Binary(ScalarExpr::BinOp::kSub, a, b);
  auto quot = ScalarExpr::Binary(ScalarExpr::BinOp::kDiv, a, b);
  EXPECT_EQ(sum->Evaluate(row, schema), Value::Int(10));
  EXPECT_EQ(prod->Evaluate(row, schema), Value::Int(21));
  EXPECT_EQ(diff->Evaluate(row, schema), Value::Int(4));
  EXPECT_TRUE(quot->Evaluate(row, schema).is_double());
  EXPECT_NEAR(quot->Evaluate(row, schema).as_double(), 7.0 / 3.0, 1e-12);
}

TEST(ScalarExprTest, DivisionByZeroYieldsZero) {
  Schema schema({{0, "A", "", DataType::kInt64}});
  Row row = {Value::Int(5)};
  auto quot = ScalarExpr::Binary(ScalarExpr::BinOp::kDiv,
                                 ScalarExpr::Column(0),
                                 ScalarExpr::Literal(Value::Int(0)));
  EXPECT_DOUBLE_EQ(quot->Evaluate(row, schema).as_double(), 0.0);
}

TEST(ScalarExprTest, HashRemapAndEquality) {
  auto e1 = ScalarExpr::Binary(ScalarExpr::BinOp::kAdd,
                               ScalarExpr::Column(1), ScalarExpr::Column(2));
  auto e2 = ScalarExpr::Binary(ScalarExpr::BinOp::kAdd,
                               ScalarExpr::Column(11), ScalarExpr::Column(12));
  EXPECT_NE(e1->Hash(), e2->Hash());
  std::map<ColumnId, ColumnId> remap = {{11, 1}, {12, 2}};
  EXPECT_TRUE(e1->EqualsMapped(*e2, remap));
  EXPECT_FALSE(e1->EqualsMapped(*e2, {}));
  auto e3 = e2->Remap(remap);
  EXPECT_EQ(e1->Hash(), e3->Hash());
  EXPECT_TRUE(e1->EqualsMapped(*e3, {}));
}

TEST(ScalarParserTest, PrecedenceAndParens) {
  auto ast = ParseScript(
      "R = SELECT A+B*C AS X,(A+B)*C AS Y FROM R0;\nOUTPUT R TO \"o\";");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const auto& items = ast->statements[0].query.select.items;
  ASSERT_NE(items[0].scalar, nullptr);
  // A + (B*C): top op is '+'.
  EXPECT_EQ(items[0].scalar->op, '+');
  EXPECT_EQ(items[0].scalar->rhs->op, '*');
  // (A+B) * C: top op is '*'.
  EXPECT_EQ(items[1].scalar->op, '*');
  EXPECT_EQ(items[1].scalar->lhs->op, '+');
}

TEST(ScalarParserTest, BareColumnStaysPlain) {
  auto ast = ParseScript("R = SELECT A FROM R0;\nOUTPUT R TO \"o\";");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->statements[0].query.select.items[0].scalar, nullptr);
}

TEST(ScalarBindTest, StringArithmeticRejected) {
  Catalog catalog;
  FileDef def;
  def.path = "s.log";
  def.row_count = 10;
  def.columns = {{"S", DataType::kString, 5, 8},
                 {"N", DataType::kInt64, 5, 8}};
  ASSERT_TRUE(catalog.RegisterFile(def).ok());
  Engine engine(std::move(catalog));
  auto r = engine.Compile(
      "E = EXTRACT S,N FROM \"s.log\" USING X;\n"
      "R = SELECT S+N AS X FROM E;\nOUTPUT R TO \"o\";");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("STRING"), std::string::npos);
}

TEST(ScalarExecTest, ComputedSelectItem) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,D,A*1000+D AS K,D/2 AS H FROM R0;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional, 500);
  ASSERT_EQ(m.outputs.at("o").size(), 500u);
  for (const Row& r : m.outputs.at("o")) {
    EXPECT_EQ(r[2].as_int(), r[0].as_int() * 1000 + r[1].as_int());
    EXPECT_NEAR(r[3].as_double(), static_cast<double>(r[1].as_int()) / 2.0,
                1e-12);
  }
}

TEST(ScalarExecTest, ExpressionAsAggregateArgument) {
  // Sum(D*2) must equal 2*Sum(D).
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,Sum(D*2) AS S2,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional);
  ASSERT_FALSE(m.outputs.at("o").empty());
  for (const Row& r : m.outputs.at("o")) {
    EXPECT_EQ(r[1].as_int(), 2 * r[2].as_int());
  }
}

TEST(ScalarExecTest, ComputedItemOverGroupColumns) {
  ExecMetrics m = RunScript(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,A*100+B AS Key,Sum(D) AS S FROM R0 GROUP BY A,B;\n"
      "OUTPUT R TO \"o\";",
      OptimizerMode::kConventional);
  ASSERT_FALSE(m.outputs.at("o").empty());
  for (const Row& r : m.outputs.at("o")) {
    EXPECT_EQ(r[2].as_int(), r[0].as_int() * 100 + r[1].as_int());
  }
}

TEST(ScalarBindTest, ComputedItemOutsideGroupColumnsRejected) {
  Engine engine(MakePaperCatalog());
  auto r = engine.Compile(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,A+D AS X,Sum(D) AS S FROM R0 GROUP BY A;\n"
      "OUTPUT R TO \"o\";");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY"), std::string::npos);
}

TEST(ScalarCseTest, SharedComputedSubexpressionAcrossModes) {
  const char* script =
      "R0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "R  = SELECT A,B,Sum(D*D) AS S FROM R0 GROUP BY A,B;\n"
      "R1 = SELECT A,Sum(S) AS T FROM R GROUP BY A;\n"
      "R2 = SELECT B,Max(S) AS T FROM R GROUP BY B;\n"
      "OUTPUT R1 TO \"o1\";\nOUTPUT R2 TO \"o2\";";
  ExecMetrics conv = RunScript(script, OptimizerMode::kConventional);
  ExecMetrics cse = RunScript(script, OptimizerMode::kCse);
  EXPECT_TRUE(SameOutputs(conv, cse));
}

TEST(ScalarCseTest, IdenticalComputedExpressionsMerge) {
  // Two separately written identical computed pipelines merge by
  // fingerprint, including the ScalarExpr payload comparison.
  const char* script =
      "A0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "A1 = SELECT A,A*10+B AS K,D FROM A0;\n"
      "B0 = EXTRACT A,B,C,D FROM \"test.log\" USING X;\n"
      "B1 = SELECT A,A*10+B AS K,D FROM B0;\n"
      "A2 = SELECT K,Sum(D) AS S FROM A1 GROUP BY K;\n"
      "B2 = SELECT A,Max(D) AS M FROM B1 GROUP BY A;\n"
      "OUTPUT A2 TO \"a\";\nOUTPUT B2 TO \"b\";";
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(script);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok()) << cse.status().ToString();
  EXPECT_GE(cse->result.diagnostics.merged_subexpressions, 1);
}

TEST(ScalarCseTest, DifferentComputedExpressionsDoNotMerge) {
  const char* script =
      "A0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "A1 = SELECT A,A*10+B AS K FROM A0;\n"
      "B1 = SELECT A,A*11+B AS K FROM A0;\n"
      "OUTPUT A1 TO \"a\";\nOUTPUT B1 TO \"b\";";
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(script);
  ASSERT_TRUE(compiled.ok());
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  ASSERT_TRUE(cse.ok());
  EXPECT_EQ(cse->result.diagnostics.merged_subexpressions, 0);
  // A0 itself is explicitly shared.
  EXPECT_EQ(cse->result.diagnostics.explicit_shared, 1);
}

TEST(ScalarOptimizerTest, PropertiesPassThroughPassthroughColumns) {
  // Grouping above a Compute on passthrough columns should not force an
  // extra exchange above the Compute.
  Engine engine(MakePaperCatalog());
  auto compiled = engine.Compile(
      "R0 = EXTRACT A,B,D FROM \"test.log\" USING X;\n"
      "C  = SELECT A,B,D,D*2 AS DD FROM R0;\n"
      "R  = SELECT A,B,Sum(DD) AS S FROM C GROUP BY A,B;\n"
      "OUTPUT R TO \"o\";");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto plan = engine.Optimize(*compiled, OptimizerMode::kConventional);
  ASSERT_TRUE(plan.ok());
  // Exactly one exchange in the whole plan (below or above the compute, but
  // not both).
  int exchanges = 0;
  std::vector<PhysicalNodePtr> stack = {plan->plan()};
  std::set<const PhysicalNode*> seen;
  while (!stack.empty()) {
    auto n = stack.back();
    stack.pop_back();
    if (!seen.insert(n.get()).second) continue;
    if (n->kind == PhysicalOpKind::kHashExchange ||
        n->kind == PhysicalOpKind::kMergeExchange) {
      ++exchanges;
    }
    for (const auto& c : n->children) stack.push_back(c);
  }
  EXPECT_EQ(exchanges, 1) << plan->Explain();
}

}  // namespace
}  // namespace scx
