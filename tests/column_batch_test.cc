// Unit tests for the columnar batch layer (src/exec/column_batch): the
// row <-> batch converters must be lossless and bit-identical, selection
// vectors must gather exactly the selected cells, rep adoption/demotion
// must keep mixed-type columns exact, and the null mask must stay scoped
// to kernel-level intermediates.

#include "exec/column_batch.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/value.h"

namespace scx {
namespace {

std::vector<Row> MixedRows() {
  // 3 columns: pure int, pure double, mixed (int then string).
  return {
      {Value::Int(1), Value::Real(1.5), Value::Int(10)},
      {Value::Int(2), Value::Real(-0.0), Value::Str("x")},
      {Value::Int(3), Value::Real(2.5), Value::Int(30)},
      {Value::Int(-4), Value::Real(1e300), Value::Str("")},
  };
}

TEST(ColumnVectorTest, AdoptsRepFromFirstAppendAndDemotesOnMismatch) {
  ColumnVector col;
  col.AppendValue(Value::Int(7));
  EXPECT_EQ(col.rep(), ColumnRep::kInt64);
  col.AppendValue(Value::Int(8));
  ASSERT_EQ(col.ints().size(), 2u);

  // A double arrives: the whole column demotes to kValue, and every cell —
  // including the previously typed ones — reads back bit-identically.
  col.AppendValue(Value::Real(2.25));
  EXPECT_EQ(col.rep(), ColumnRep::kValue);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.ValueAt(0), Value::Int(7));
  EXPECT_EQ(col.ValueAt(1), Value::Int(8));
  EXPECT_EQ(col.ValueAt(2), Value::Real(2.25));
}

TEST(ColumnVectorTest, CellEqualsUsesExactValueSemantics) {
  ColumnVector col;
  col.AppendValue(Value::Int(5));
  col.AppendValue(Value::Real(5.0));
  // Type must match: Int(5) != Real(5.0) under Value::operator==.
  EXPECT_TRUE(col.CellEquals(0, Value::Int(5)));
  EXPECT_FALSE(col.CellEquals(0, Value::Real(5.0)));
  EXPECT_TRUE(col.CellEquals(1, Value::Real(5.0)));
  EXPECT_FALSE(col.CellEquals(1, Value::Int(5)));
}

TEST(ColumnVectorTest, CellHashMatchesValueHash) {
  ColumnVector col;
  std::vector<Value> cells = {Value::Int(42), Value::Real(-0.0),
                              Value::Str("abc"), Value::Int(-1)};
  for (const Value& v : cells) col.AppendValue(v);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(col.CellHash(i), col.ValueAt(i).Hash()) << "cell " << i;
  }
}

TEST(ColumnVectorTest, NullMaskTracksAppendNull) {
  ColumnVector col(ColumnRep::kInt64);
  col.AppendValue(Value::Int(1));
  col.AppendNull();
  col.AppendValue(Value::Int(3));
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  // Fully-valid columns never allocate a mask.
  ColumnVector valid;
  valid.AppendValue(Value::Int(1));
  EXPECT_EQ(valid.null_count(), 0u);
  EXPECT_FALSE(valid.IsNull(0));
}

TEST(ColumnBatchTest, RowBatchRoundTripIsBitIdentical) {
  std::vector<Row> rows = MixedRows();
  ColumnBatch batch =
      BatchFromRows(rows, 0, rows.size(), 3, /*wanted=*/{0, 1, 2});
  ASSERT_EQ(batch.rows, rows.size());
  // The mixed column demoted to kValue; the typed ones adopted their rep.
  EXPECT_EQ(batch.col(0).rep(), ColumnRep::kInt64);
  EXPECT_EQ(batch.col(1).rep(), ColumnRep::kDouble);
  EXPECT_EQ(batch.col(2).rep(), ColumnRep::kValue);

  std::vector<Row> back;
  AppendBatchRows(batch, &back);
  EXPECT_EQ(back, rows);  // raw Value equality, row for row
}

TEST(ColumnBatchTest, ChunkedConversionPreservesRowOrder) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value::Int(i)});
  std::vector<Row> back;
  for (size_t begin = 0; begin < rows.size(); begin += 3) {
    size_t end = std::min(begin + 3, rows.size());
    ColumnBatch batch = BatchFromRows(rows, begin, end, 1, {0});
    AppendBatchRows(batch, &back);
  }
  EXPECT_EQ(back, rows);
}

TEST(ColumnBatchTest, MaterializesOnlyWantedPositions) {
  std::vector<Row> rows = MixedRows();
  // Duplicate positions in `wanted` must be harmless.
  ColumnBatch batch = BatchFromRows(rows, 1, 3, 3, {2, 2, 0, 0});
  EXPECT_EQ(batch.rows, 2u);
  ASSERT_EQ(batch.columns.size(), 3u);
  EXPECT_EQ(batch.col(0).size(), 2u);
  EXPECT_TRUE(batch.col(1).empty());  // not requested: stays empty
  EXPECT_EQ(batch.col(2).size(), 2u);
  EXPECT_EQ(batch.col(0).ValueAt(0), rows[1][0]);
  EXPECT_EQ(batch.col(2).ValueAt(1), rows[2][2]);
}

TEST(ColumnBatchTest, GatherColumnFollowsSelectionVector) {
  ColumnVector col;
  for (int64_t i = 0; i < 6; ++i) col.AppendValue(Value::Int(i * 10));
  SelectionVector sel = {1, 3, 4};
  ColumnVector picked = GatherColumn(col, sel);
  EXPECT_EQ(picked.rep(), ColumnRep::kInt64);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked.ValueAt(0), Value::Int(10));
  EXPECT_EQ(picked.ValueAt(1), Value::Int(30));
  EXPECT_EQ(picked.ValueAt(2), Value::Int(40));

  // Empty selection: empty column, rep kept.
  ColumnVector none = GatherColumn(col, {});
  EXPECT_TRUE(none.empty());
}

TEST(ColumnBatchTest, GatherColumnKeepsNullMask) {
  ColumnVector col(ColumnRep::kInt64);
  col.AppendValue(Value::Int(1));
  col.AppendNull();
  col.AppendValue(Value::Int(3));
  ColumnVector picked = GatherColumn(col, {1, 2});
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_TRUE(picked.IsNull(0));
  EXPECT_FALSE(picked.IsNull(1));
  EXPECT_EQ(picked.ValueAt(1), Value::Int(3));
}

TEST(ColumnBatchTest, AppendRowsFromColumnsZipsColumns) {
  ColumnVector a, b;
  for (int64_t i = 0; i < 3; ++i) {
    a.AppendValue(Value::Int(i));
    b.AppendValue(Value::Str(std::to_string(i)));
  }
  std::vector<Row> out;
  AppendRowsFromColumns({&a, &b}, 3, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], (Row{Value::Int(2), Value::Str("2")}));
  // The same column may back several output positions (shared CSE slot).
  std::vector<Row> dup;
  AppendRowsFromColumns({&a, &a}, 3, &dup);
  EXPECT_EQ(dup[1], (Row{Value::Int(1), Value::Int(1)}));
}

TEST(ColumnBatchTest, AppendColumnBulkCopyMatchesPerCellFallback) {
  // Typed source into typed accumulator: the bulk memcpy-style path.
  ColumnVector src;
  for (int64_t i = 0; i < 5; ++i) src.AppendValue(Value::Int(i * 3));
  ColumnVector all;
  all.AppendColumn(src, nullptr);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all.rep(), ColumnRep::kInt64);
  EXPECT_EQ(all.ValueAt(4), Value::Int(12));

  // With a selection: only the selected cells, in selection order.
  SelectionVector sel = {4, 0};
  ColumnVector some;
  some.AppendColumn(src, &sel);
  ASSERT_EQ(some.size(), 2u);
  EXPECT_EQ(some.ValueAt(0), Value::Int(12));
  EXPECT_EQ(some.ValueAt(1), Value::Int(0));

  // Mixed-rep append (int column into an accumulator that already adopted
  // kValue): per-cell fallback, still cell-for-cell identical.
  ColumnVector mixed;
  mixed.AppendValue(Value::Str("s"));
  mixed.AppendColumn(src, &sel);
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed.rep(), ColumnRep::kValue);
  EXPECT_EQ(mixed.ValueAt(1), Value::Int(12));
}

TEST(ColumnBatchTest, CompareCellsMatchesValueOrdering) {
  // Cross-type ordering is Value's: int < double < string by type index.
  ColumnVector a, b;
  a.AppendValue(Value::Int(5));
  a.AppendValue(Value::Str("abc"));
  b.AppendValue(Value::Int(7));
  b.AppendValue(Value::Real(0.5));
  EXPECT_LT(CompareCells(a, 0, b, 0), 0);  // 5 < 7
  EXPECT_GT(CompareCells(b, 0, a, 0), 0);
  EXPECT_GT(CompareCells(a, 1, b, 1), 0);  // string > double
  EXPECT_EQ(CompareCells(a, 0, a, 0), 0);
  // Same-rep typed fast path agrees with the generic Value path.
  ColumnVector c, d;
  c.AppendValue(Value::Int(-1));
  d.AppendValue(Value::Int(2));
  EXPECT_LT(CompareCells(c, 0, d, 0), 0);
}

TEST(ColumnBatchTest, CompactPartitionGathersSurvivorsOnce) {
  BatchPartition part;
  part.rows = 4;
  ColumnVector col;
  for (int64_t i = 0; i < 4; ++i) col.AppendValue(Value::Int(i));
  part.columns.push_back(std::make_shared<ColumnVector>(std::move(col)));
  part.sel = {1, 3};
  part.filtered = true;

  BatchPartition dense = CompactPartition(part);
  EXPECT_FALSE(dense.filtered);
  EXPECT_EQ(dense.rows, 2u);
  EXPECT_EQ(dense.LiveRows(), 2u);
  ASSERT_EQ(dense.columns.size(), 1u);
  EXPECT_EQ(dense.columns[0]->ValueAt(0), Value::Int(1));
  EXPECT_EQ(dense.columns[0]->ValueAt(1), Value::Int(3));

  // Unfiltered partitions pass through sharing the same columns.
  BatchPartition through = CompactPartition(dense);
  EXPECT_EQ(through.columns[0].get(), dense.columns[0].get());
}

TEST(ColumnBatchTest, PartitionRowConvertersRoundTrip) {
  std::vector<Row> rows = MixedRows();
  BatchPartition part = PartitionFromRows(rows, 3);
  EXPECT_EQ(part.rows, rows.size());
  EXPECT_FALSE(part.filtered);
  ASSERT_EQ(part.columns.size(), 3u);

  std::vector<Row> back;
  AppendPartitionRows(part, &back);
  EXPECT_EQ(back, rows);

  // With a selection, only live rows convert, in selection order.
  part.sel = {2, 0};
  part.filtered = true;
  std::vector<Row> live;
  AppendPartitionRows(part, &live);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], rows[2]);
  EXPECT_EQ(live[1], rows[0]);
}

TEST(NumBatchesTest, CeilDivisionAndEdgeCases) {
  EXPECT_EQ(NumBatches(0, 4096), 0);
  EXPECT_EQ(NumBatches(1, 4096), 1);
  EXPECT_EQ(NumBatches(4096, 4096), 1);
  EXPECT_EQ(NumBatches(4097, 4096), 2);
  EXPECT_EQ(NumBatches(10, 1), 10);
  EXPECT_EQ(NumBatches(10, 0), 0);  // guarded: batch paths never use 0
}

TEST(DefaultBatchSizeTest, EnvOverridesAndFallsBack) {
  // The test mutates the process environment, so it restores it at the end;
  // gtest runs tests in one process, so keep this self-contained.
  const char* old = std::getenv("SCX_BATCH_SIZE");
  std::string saved = old != nullptr ? old : "";
  ::setenv("SCX_BATCH_SIZE", "128", 1);
  EXPECT_EQ(DefaultBatchSize(), 128);
  ::setenv("SCX_BATCH_SIZE", "0", 1);  // non-positive: fall back
  EXPECT_EQ(DefaultBatchSize(), 4096);
  ::unsetenv("SCX_BATCH_SIZE");
  EXPECT_EQ(DefaultBatchSize(), 4096);
  if (old != nullptr) ::setenv("SCX_BATCH_SIZE", saved.c_str(), 1);
}

}  // namespace
}  // namespace scx
