// scx command-line driver: compile a SCOPE-dialect script against a catalog
// description, optimize it (conventional / naive-sharing / cse), print the
// plan and diagnostics, and optionally execute it on the simulated cluster.
//
// Usage:
//   scx_cli --catalog CATFILE --script SCRIPTFILE
//           [--mode conv|naive|cse] [--machines N] [--budget SECONDS]
//           [--threads N] [--batch N] [--spool-cache BYTES]
//           [--fault-seed N] [--fault-prob P] [--fault-max N]
//           [--straggler-prob P] [--straggler-factor F] [--no-recovery-spools]
//           [--compare] [--execute] [--quiet]
//
// --batch sets the executor's rows-per-batch (0 = default / SCX_BATCH_SIZE
// env; 1 = the exact legacy row-at-a-time path). --spool-cache bounds the
// bytes held for spooled intermediates (0 = default / SCX_SPOOL_CACHE_BYTES
// env / 256 MiB; negative = unlimited); evictions surface as
// spool_bytes_evicted. The --fault-*/--straggler-* flags arm a FaultPlan
// (hostile-cluster simulation, docs/architecture.md §17): seeded machine
// failures are injected at operator-pass granularity and recovered from
// surviving spools or by recomputation — outputs stay bit-identical to the
// clean run; --no-recovery-spools forces pure recomputation. With --json
// --execute the output gains an "execution" object carrying every
// ExecMetrics counter, including the fault family (machine_failures_
// injected, partitions_recovered, rows_recomputed, recovery_spool_hits,
// recovery_bytes_moved, sim_makespan_ticks).
//
// Catalog file format (one file per line, '#' comments; see
// testing/catalog_text.h):
//   file <path> rows=<n> [seed=<n>] <col>:<ndv>[:int64|double|string] ...
// Example:
//   file test.log rows=2000000 A:40 B:400 C:40 D:10000

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "api/engine.h"
#include "opt/plan_json.h"
#include "testing/catalog_text.h"

namespace scx {
namespace {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result<Catalog> ParseCatalogFile(const std::string& path) {
  SCX_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto catalog = ParseCatalogText(text);
  if (!catalog.ok()) {
    return Status(catalog.status().code(),
                  path + ": " + catalog.status().message());
  }
  return catalog;
}

void PrintDiagnostics(const OptimizeDiagnostics& d) {
  std::printf("  operators (reachable groups) : %d\n", d.reachable_groups);
  std::printf("  shared groups                : %d (%d explicit, %d merged)\n",
              d.num_shared_groups, d.explicit_shared,
              d.merged_subexpressions);
  std::printf("  phase-2 rounds               : %ld of %ld planned%s\n",
              d.rounds_executed, d.rounds_planned,
              d.budget_exhausted ? " (budget exhausted)" : "");
  std::printf("  optimization time            : %.3f s (phase 2 %.3f s)\n",
              d.optimize_seconds, d.phase2_seconds);
  const OptCacheCounters& c = d.cache;
  long wt = c.winner_hits + c.winner_misses;
  long st = c.spool_hits + c.spool_misses;
  std::printf("  winner cache                 : %ld/%ld hits (%.1f%%)\n",
              c.winner_hits, wt,
              wt > 0 ? 100.0 * c.winner_hits / wt : 0.0);
  std::printf("  spool cache                  : %ld/%ld hits (%.1f%%)\n",
              c.spool_hits, st,
              st > 0 ? 100.0 * c.spool_hits / st : 0.0);
  std::printf("  props interned               : %ld\n", c.interner_size);
  std::printf("  pruned                       : %ld alternatives, %ld "
              "rounds\n",
              c.pruned_alternatives, c.pruned_rounds);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "scx: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int Main(int argc, char** argv) {
  std::string catalog_path, script_path, mode_name = "cse";
  OptimizerConfig config;
  bool compare = false, execute = false, quiet = false, json = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--catalog") {
      catalog_path = next();
    } else if (arg == "--script") {
      script_path = next();
    } else if (arg == "--mode") {
      mode_name = next();
    } else if (arg == "--machines") {
      config.cluster.machines = std::atoi(next());
    } else if (arg == "--budget") {
      config.budget_seconds = std::atof(next());
    } else if (arg == "--threads") {
      int n = std::atoi(next());
      if (n < 1) {
        std::fprintf(stderr, "scx: --threads needs a positive integer\n");
        return 2;
      }
      config.num_threads = n;
      config.cluster.exec_threads = n;
    } else if (arg == "--batch") {
      int n = std::atoi(next());
      if (n < 0) {
        std::fprintf(stderr, "scx: --batch needs a non-negative integer\n");
        return 2;
      }
      config.cluster.batch_size = n;
    } else if (arg == "--morsel") {
      int n = std::atoi(next());
      if (n < 0) {
        std::fprintf(stderr, "scx: --morsel needs a non-negative integer\n");
        return 2;
      }
      config.cluster.morsel_size = n;
    } else if (arg == "--spool-cache") {
      // Byte budget for spooled intermediates (run-local and cross-query).
      // 0 = default (SCX_SPOOL_CACHE_BYTES or 256 MiB), negative =
      // unlimited.
      config.cluster.spool_cache_bytes = std::atoll(next());
    } else if (arg == "--fault-seed") {
      config.cluster.fault_plan.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fault-prob") {
      config.cluster.fault_plan.failure_prob = std::atof(next());
    } else if (arg == "--fault-max") {
      config.cluster.fault_plan.max_failures = std::atoi(next());
    } else if (arg == "--straggler-prob") {
      config.cluster.fault_plan.straggler_prob = std::atof(next());
    } else if (arg == "--straggler-factor") {
      config.cluster.fault_plan.straggler_factor = std::atof(next());
    } else if (arg == "--no-recovery-spools") {
      config.cluster.fault_plan.disable_recovery_spool_reads = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help") {
      std::printf(
          "usage: scx_cli --catalog FILE --script FILE [--mode conv|naive|"
          "cse]\n              [--machines N] [--budget S] [--threads N] "
          "[--batch N] [--morsel N]\n              [--spool-cache BYTES] "
          "[--fault-seed N] [--fault-prob P]\n              [--fault-max N] "
          "[--straggler-prob P] [--straggler-factor F]\n              "
          "[--no-recovery-spools] [--compare] [--execute] [--quiet] "
          "[--json]\n");
      return 0;
    } else {
      std::fprintf(stderr, "scx: unknown flag %s (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (catalog_path.empty() || script_path.empty()) {
    std::fprintf(stderr,
                 "scx: --catalog and --script are required (try --help)\n");
    return 2;
  }

  OptimizerMode mode;
  if (mode_name == "conv" || mode_name == "conventional") {
    mode = OptimizerMode::kConventional;
  } else if (mode_name == "naive") {
    mode = OptimizerMode::kNaiveSharing;
  } else if (mode_name == "cse") {
    mode = OptimizerMode::kCse;
  } else {
    std::fprintf(stderr, "scx: unknown mode '%s'\n", mode_name.c_str());
    return 2;
  }

  auto catalog = ParseCatalogFile(catalog_path);
  if (!catalog.ok()) return Fail(catalog.status());
  auto source = ReadFileToString(script_path);
  if (!source.ok()) return Fail(source.status());

  Engine engine(std::move(catalog.value()), config);
  auto compiled = engine.Compile(*source);
  if (!compiled.ok()) return Fail(compiled.status());

  if (compare) {
    auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
    auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
    if (!conv.ok()) return Fail(conv.status());
    if (!cse.ok()) return Fail(cse.status());
    std::printf("conventional cost : %.0f\n", conv->cost());
    std::printf("cse cost          : %.0f  (%.0f%% saving)\n", cse->cost(),
                100.0 * (1.0 - cse->cost() / conv->cost()));
    if (!quiet) {
      std::printf("\nCSE plan:\n%s", cse->Explain().c_str());
    }
    return 0;
  }

  auto optimized = engine.Optimize(*compiled, mode);
  if (!optimized.ok()) return Fail(optimized.status());
  if (json) {
    std::string execution;
    if (execute) {
      auto metrics = engine.Execute(*optimized);
      if (!metrics.ok()) return Fail(metrics.status());
      execution = ",\"execution\":" + ExecMetricsToJson(*metrics);
    }
    std::printf("{\"plan\":%s,\"diagnostics\":%s%s}\n",
                PlanToJson(optimized->plan()).c_str(),
                DiagnosticsToJson(optimized->result.diagnostics).c_str(),
                execution.c_str());
    return 0;
  }
  std::printf("mode            : %s\n", mode_name.c_str());
  std::printf("estimated cost  : %.0f\n", optimized->cost());
  PrintDiagnostics(optimized->result.diagnostics);
  if (!quiet) {
    std::printf("\nplan:\n%s", optimized->Explain().c_str());
  }
  if (execute) {
    auto metrics = engine.Execute(*optimized);
    if (!metrics.ok()) return Fail(metrics.status());
    std::printf("\nexecution (simulated, %d machines):\n",
                config.cluster.machines);
    std::printf("  rows extracted : %lld\n",
                static_cast<long long>(metrics->rows_extracted));
    std::printf("  bytes shuffled : %lld\n",
                static_cast<long long>(metrics->bytes_shuffled));
    std::printf("  bytes spooled  : %lld\n",
                static_cast<long long>(metrics->bytes_spooled));
    std::printf("  rows spooled   : %lld\n",
                static_cast<long long>(metrics->rows_spooled));
    std::printf("  spool reads    : %lld (%lld from cache, %lld cross-"
                "query)\n",
                static_cast<long long>(metrics->spool_reads),
                static_cast<long long>(metrics->spool_cache_hits),
                static_cast<long long>(metrics->cross_query_spool_hits));
    std::printf("  spool evicted  : %lld bytes\n",
                static_cast<long long>(metrics->spool_bytes_evicted));
    std::printf("  batches        : %lld evaluated, %lld exprs deduped\n",
                static_cast<long long>(metrics->batches_evaluated),
                static_cast<long long>(metrics->exprs_deduped));
    std::printf("  row bridges    : %lld rows converted, %lld pipeline "
                "breaks\n",
                static_cast<long long>(metrics->rows_converted),
                static_cast<long long>(metrics->batch_pipeline_breaks));
    std::printf("  morsels        : %lld evaluated, %lld beyond "
                "one-per-partition\n",
                static_cast<long long>(metrics->morsels_evaluated),
                static_cast<long long>(metrics->morsel_steal_count));
    if (config.cluster.fault_plan.Enabled()) {
      std::printf("  faults         : %lld machines killed, %lld "
                  "partitions recovered\n",
                  static_cast<long long>(metrics->machine_failures_injected),
                  static_cast<long long>(metrics->partitions_recovered));
      std::printf("  recovery       : %lld rows recomputed, %lld spool "
                  "re-reads, %lld bytes moved\n",
                  static_cast<long long>(metrics->rows_recomputed),
                  static_cast<long long>(metrics->recovery_spool_hits),
                  static_cast<long long>(metrics->recovery_bytes_moved));
      std::printf("  makespan       : %lld simulated ticks\n",
                  static_cast<long long>(metrics->sim_makespan_ticks));
    }
    for (const auto& [path, rows] : metrics->outputs) {
      std::printf("  %-14s : %zu rows\n", path.c_str(), rows.size());
    }
  }
  return 0;
}

}  // namespace scx

int main(int argc, char** argv) { return scx::Main(argc, argv); }
