#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag throughput regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 0.10]
    tools/bench_diff.py --fast-vs-traced BENCH_opt_cache.json [--threshold 0.10]
    tools/bench_diff.py --batch-vs-row BENCH_exec.json [--threshold 0.10]
    tools/bench_diff.py --morsel-vs-partition BENCH_exec.json [--threshold 0.10]
    tools/bench_diff.py --batched-vs-sequential BENCH_multiquery.json
    tools/bench_diff.py --faulty-vs-clean BENCH_fault.json [--threshold 0.02]

Both files must come from the same benchmark binary (bench/opt_parallel,
bench/opt_cache, or bench/exec_throughput). Every rate metric (keys ending in
``rounds_per_sec`` or ``rows_per_sec``) found in both files is compared; a
drop of more than ``--threshold`` (default 10%) is a regression. Exits 1 when
any regression is found, 0 otherwise, so the CI perf-smoke job can gate on
it. Stdlib only.

``--fast-vs-traced`` gates within a single BENCH_opt_cache.json instead: the
untraced (fast) optimizer path must not round-process slower than the traced
path on any workload, beyond ``--threshold`` (the workloads run sub-second on
small scripts, so a noise margin is required for a meaningful gate).

``--batch-vs-row`` gates within a single BENCH_exec.json: per script, the
batched serial pipeline must not run slower than the batch_size=1 row
pipeline beyond ``--threshold``, and the two must have been bit-identical
(``batch_identical``) — the end-to-end payoff gate of the columnar executor.

``--morsel-vs-partition`` gates within a single BENCH_exec.json: per script,
the morsel-grained run must not run slower than the one-morsel-per-partition
baseline beyond ``--threshold``, and the two must have been bit-identical
(``morsel_identical``) — the determinism-plus-overhead gate of the morsel
scheduler.

``--batched-vs-sequential`` gates within a single BENCH_multiquery.json: per
grid cell, the batched submission must never move more bytes
(extracted + shuffled + spooled) than running the same scripts one at a
time, per-script outputs must match running alone (``outputs_identical``),
and where library overlap is >= 70% the summed sequential plan cost must be
at least 1.3x the merged plan's — the payoff gate of cross-query CSE. The
byte and identity checks ignore ``--threshold``: they are theorems of the
merged optimization, not noisy rates.

``--faulty-vs-clean`` gates within a single BENCH_fault.json: every armed and
faulty arm must have reproduced the clean arm's outputs and legacy counters
(``identical``, the tentpole bit-identity contract), the faulty sweep must
have injected at least one failure (an inert sweep proves nothing), the armed
arms must never inject, and the *aggregate* armed runtime (sum of per-script
best-of-K times) must stay within ``--threshold`` (default here 2%) of the
aggregate clean runtime — the always-on price of carrying the fault
machinery. The overhead gate is aggregate rather than per-script because
individual sub-20ms runs are noise-dominated even at best-of-K.
"""

import argparse
import json
import sys

RATE_SUFFIXES = ("rounds_per_sec", "rows_per_sec")


def collect_rates(node, prefix, out):
    """Flatten every numeric rate leaf (see RATE_SUFFIXES) into out[path]."""
    if isinstance(node, dict):
        for key, value in node.items():
            collect_rates(value, f"{prefix}.{key}" if prefix else key, out)
    elif isinstance(node, list):
        for item in node:
            # Benchmark rows are keyed by their "name"/"config" field so the
            # comparison survives reordering between runs.
            if isinstance(item, dict):
                label = item.get("name") or item.get("config")
                collect_rates(
                    item, f"{prefix}[{label}]" if label else prefix, out)
    elif isinstance(node, (int, float)) and prefix.endswith(RATE_SUFFIXES):
        out[prefix] = float(node)


def load_rates(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    rates = {}
    collect_rates(doc, "", rates)
    if not rates:
        suffixes = " / ".join(RATE_SUFFIXES)
        sys.exit(f"bench_diff: no {suffixes} metrics in {path}")
    return rates


def fast_vs_traced(path, threshold):
    """Gate: fast (untraced) phase-2 must keep up with traced per script."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    scripts = doc.get("scripts")
    if not isinstance(scripts, list) or not scripts:
        sys.exit(f"bench_diff: {path} has no 'scripts' array "
                 "(expected a BENCH_opt_cache.json)")

    regressions = []
    print(f"{'script':<10} {'traced r/s':>12} {'fast r/s':>12} {'delta':>8}")
    for entry in scripts:
        name = entry.get("name", "?")
        traced = entry.get("traced", {}).get("phase2_rounds_per_sec")
        fast = entry.get("fast", {}).get("phase2_rounds_per_sec")
        if not traced or not fast:
            sys.exit(f"bench_diff: script {name} lacks traced/fast "
                     "phase2_rounds_per_sec")
        delta = (fast - traced) / traced
        marker = ""
        if delta < -threshold:
            regressions.append((name, traced, fast, delta))
            marker = "  << REGRESSION"
        print(f"{name:<10} {traced:>12.1f} {fast:>12.1f} {delta:>+7.1%}"
              f"{marker}")

    if regressions:
        print(f"\nfast path slower than traced beyond {threshold:.0%} on "
              f"{len(regressions)} workload(s):")
        for name, traced, fast, delta in regressions:
            print(f"  {name}: {traced:.1f} -> {fast:.1f} ({delta:+.1%})")
        return 1
    print(f"\nfast >= traced (within {threshold:.0%}) on all "
          f"{len(scripts)} workloads")
    return 0


def batch_vs_row(path, threshold):
    """Gate: the batched pipeline must keep up with the row path per script."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    scripts = doc.get("scripts")
    if not isinstance(scripts, list) or not scripts:
        sys.exit(f"bench_diff: {path} has no 'scripts' array "
                 "(expected a BENCH_exec.json)")

    failures = []
    print(f"{'script':<10} {'row r/s':>12} {'batch r/s':>12} {'delta':>8}")
    for entry in scripts:
        name = entry.get("name", "?")
        row = entry.get("row", {}).get("rows_per_sec")
        batch = entry.get("serial", {}).get("rows_per_sec")
        if not row or not batch:
            sys.exit(f"bench_diff: script {name} lacks row/serial "
                     "rows_per_sec (rerun bench/exec_throughput)")
        delta = (batch - row) / row
        marker = ""
        if delta < -threshold:
            failures.append((name, f"{delta:+.1%} slower than row path"))
            marker = "  << REGRESSION"
        if not entry.get("batch_identical", False):
            failures.append((name, "batched output diverged from row path"))
            marker += "  << DIVERGED"
        print(f"{name:<10} {row:>12.1f} {batch:>12.1f} {delta:>+7.1%}"
              f"{marker}")

    if failures:
        print(f"\nbatched pipeline failed the row-path gate on "
              f"{len(failures)} count(s):")
        for name, why in failures:
            print(f"  {name}: {why}")
        return 1
    print(f"\nbatched >= row path (within {threshold:.0%}) and bit-identical "
          f"on all {len(scripts)} scripts")
    return 0


def morsel_vs_partition(path, threshold):
    """Gate: morsel scheduling must keep up with whole-partition jobs."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    scripts = doc.get("scripts")
    if not isinstance(scripts, list) or not scripts:
        sys.exit(f"bench_diff: {path} has no 'scripts' array "
                 "(expected a BENCH_exec.json)")

    failures = []
    print(f"{'script':<10} {'part r/s':>12} {'morsel r/s':>12} {'delta':>8}")
    for entry in scripts:
        name = entry.get("name", "?")
        part = entry.get("partition", {}).get("rows_per_sec")
        morsel = entry.get("parallel", {}).get("rows_per_sec")
        if not part or not morsel:
            sys.exit(f"bench_diff: script {name} lacks partition/parallel "
                     "rows_per_sec (rerun bench/exec_throughput)")
        delta = (morsel - part) / part
        marker = ""
        if delta < -threshold:
            failures.append((name, f"{delta:+.1%} slower than "
                             "one-morsel-per-partition"))
            marker = "  << REGRESSION"
        if not entry.get("morsel_identical", False):
            failures.append((name, "morsel output diverged from "
                             "whole-partition run"))
            marker += "  << DIVERGED"
        print(f"{name:<10} {part:>12.1f} {morsel:>12.1f} {delta:>+7.1%}"
              f"{marker}")

    if failures:
        print(f"\nmorsel scheduling failed the partition-granularity gate "
              f"on {len(failures)} count(s):")
        for name, why in failures:
            print(f"  {name}: {why}")
        return 1
    print(f"\nmorsel >= partition granularity (within {threshold:.0%}) and "
          f"bit-identical on all {len(scripts)} scripts")
    return 0


def batched_vs_sequential(path):
    """Gate: one merged batch must beat running its scripts one at a time."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        sys.exit(f"bench_diff: {path} has no 'cells' array "
                 "(expected a BENCH_multiquery.json)")

    failures = []
    print(f"{'cell':<10} {'seq bytes':>14} {'batch bytes':>14} "
          f"{'cost ratio':>11}")
    for entry in cells:
        name = entry.get("name", "?")
        seq = entry.get("sequential", {}).get("bytes_moved")
        batch = entry.get("batched", {}).get("bytes_moved")
        ratio = entry.get("cost_ratio")
        overlap = entry.get("overlap", 0.0)
        if seq is None or batch is None or ratio is None:
            sys.exit(f"bench_diff: cell {name} lacks bytes_moved/cost_ratio "
                     "(rerun bench/multi_query)")
        marker = ""
        if batch > seq:
            failures.append((name, f"batched moved {batch - seq} more bytes "
                             "than sequential"))
            marker = "  << MORE-BYTES"
        if not entry.get("outputs_identical", False):
            failures.append((name, "batched outputs diverged from running "
                             "each script alone"))
            marker += "  << DIVERGED"
        if overlap >= 0.7 and ratio < 1.3:
            failures.append((name, f"cost ratio {ratio:.2f}x < 1.3x at "
                             f"{overlap:.0%} overlap"))
            marker += "  << NO-PAYOFF"
        print(f"{name:<10} {seq:>14} {batch:>14} {ratio:>10.2f}x{marker}")

    if failures:
        print(f"\nbatched submission failed the sequential-baseline gate on "
              f"{len(failures)} count(s):")
        for name, why in failures:
            print(f"  {name}: {why}")
        return 1
    print(f"\nbatched <= sequential bytes, identical outputs, and >= 1.3x "
          f"cheaper at high overlap on all {len(cells)} cells")
    return 0


def faulty_vs_clean(path, threshold):
    """Gate: fault machinery is free when idle and invisible when firing."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    scripts = doc.get("scripts")
    if not isinstance(scripts, list) or not scripts:
        sys.exit(f"bench_diff: {path} has no 'scripts' array "
                 "(expected a BENCH_fault.json)")

    failures = []
    clean_total = 0.0
    armed_total = 0.0
    injected_total = 0
    print(f"{'script':<10} {'clean ms':>10} {'armed ms':>10} "
          f"{'faulty ms':>10} {'killed':>7} {'recovered':>10}")
    for entry in scripts:
        name = entry.get("name", "?")
        clean = entry.get("clean", {})
        armed = entry.get("armed", {})
        faulty = entry.get("faulty", {})
        for arm_name, arm in (("clean", clean), ("armed", armed),
                              ("faulty", faulty)):
            if arm.get("seconds") is None:
                sys.exit(f"bench_diff: script {name} lacks a '{arm_name}' "
                         "arm (rerun bench/fault_recovery)")
        marker = ""
        for arm_name, arm in (("armed", armed), ("faulty", faulty)):
            if not arm.get("identical", False):
                failures.append((name, f"{arm_name} arm diverged from the "
                                 "clean run"))
                marker += f"  << {arm_name.upper()}-DIVERGED"
        if armed.get("failures_injected", 0) != 0:
            failures.append((name, "the inert armed plan injected a "
                             "failure"))
            marker += "  << INERT-PLAN-FIRED"
        clean_total += clean["seconds"]
        armed_total += armed["seconds"]
        injected_total += faulty.get("failures_injected", 0)
        print(f"{name:<10} {clean['seconds'] * 1e3:>10.2f} "
              f"{armed['seconds'] * 1e3:>10.2f} "
              f"{faulty['seconds'] * 1e3:>10.2f} "
              f"{faulty.get('failures_injected', 0):>7} "
              f"{faulty.get('partitions_recovered', 0):>10}{marker}")

    overhead = (armed_total / clean_total - 1.0) if clean_total > 0 else 0.0
    if overhead > threshold:
        failures.append(("aggregate",
                         f"armed-but-inert runtime {overhead:+.1%} over "
                         f"clean exceeds {threshold:.0%}"))
    if injected_total == 0:
        failures.append(("aggregate", "the faulty sweep injected zero "
                         "failures — recovery was never exercised"))

    print(f"\narmed-vs-clean aggregate overhead: {overhead:+.2%} "
          f"(threshold {threshold:.0%}), {injected_total} failures injected")
    if failures:
        print(f"fault machinery failed the clean-baseline gate on "
              f"{len(failures)} count(s):")
        for name, why in failures:
            print(f"  {name}: {why}")
        return 1
    print(f"fault-armed runs bit-identical and idle overhead within "
          f"{threshold:.0%} on all {len(scripts)} scripts")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="flag >threshold throughput regressions between two "
                    "bench JSONs")
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional drop that counts as a regression "
                             "(default 0.10)")
    parser.add_argument("--fast-vs-traced", action="store_true",
                        help="gate fast vs traced phase-2 rates within one "
                             "BENCH_opt_cache.json")
    parser.add_argument("--batch-vs-row", action="store_true",
                        help="gate batched vs row-path script rates within "
                             "one BENCH_exec.json")
    parser.add_argument("--morsel-vs-partition", action="store_true",
                        help="gate morsel vs whole-partition script rates "
                             "within one BENCH_exec.json")
    parser.add_argument("--batched-vs-sequential", action="store_true",
                        help="gate batched vs per-script-sequential bytes, "
                             "identity and cost within one "
                             "BENCH_multiquery.json")
    parser.add_argument("--faulty-vs-clean", action="store_true",
                        help="gate fault-armed vs clean identity and "
                             "armed-but-inert overhead within one "
                             "BENCH_fault.json")
    args = parser.parse_args()

    gates = [args.fast_vs_traced, args.batch_vs_row, args.morsel_vs_partition,
             args.batched_vs_sequential, args.faulty_vs_clean]
    if sum(gates) > 1:
        parser.error("--fast-vs-traced, --batch-vs-row, "
                     "--morsel-vs-partition, --batched-vs-sequential and "
                     "--faulty-vs-clean are exclusive")
    if any(gates):
        if args.current is not None:
            parser.error("single-file gates take exactly one JSON file")
        if args.fast_vs_traced:
            return fast_vs_traced(args.baseline, args.threshold)
        if args.batch_vs_row:
            return batch_vs_row(args.baseline, args.threshold)
        if args.batched_vs_sequential:
            return batched_vs_sequential(args.baseline)
        if args.faulty_vs_clean:
            return faulty_vs_clean(args.baseline, args.threshold)
        return morsel_vs_partition(args.baseline, args.threshold)
    if args.current is None:
        parser.error("two files required unless a single-file gate is given")

    base = load_rates(args.baseline)
    cur = load_rates(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("bench_diff: the two files share no rate metrics "
                 "(different benchmarks?)")

    regressions = []
    print(f"{'metric':<60} {'base':>10} {'cur':>10} {'delta':>8}")
    for key in shared:
        b, c = base[key], cur[key]
        delta = (c - b) / b if b > 0 else 0.0
        marker = ""
        if b > 0 and delta < -args.threshold:
            regressions.append((key, b, c, delta))
            marker = "  << REGRESSION"
        print(f"{key:<60} {b:>10.1f} {c:>10.1f} {delta:>+7.1%}{marker}")

    only_base = set(base) - set(cur)
    only_cur = set(cur) - set(base)
    for key in sorted(only_base):
        print(f"{key:<60} {base[key]:>10.1f} {'-':>10}   (missing in current)")
    for key in sorted(only_cur):
        print(f"{key:<60} {'-':>10} {cur[key]:>10.1f}   (new)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for key, b, c, delta in regressions:
            print(f"  {key}: {b:.1f} -> {c:.1f} ({delta:+.1%})")
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} "
          f"across {len(shared)} shared metric(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
