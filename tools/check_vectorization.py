#!/usr/bin/env python3
"""Verify that every simd-guard-marked loop in a source file vectorized.

Usage:
    tools/check_vectorization.py SOURCE REMARKS

SOURCE is a C++ file carrying ``// simd-guard: NAME`` markers immediately
above loops that the executor's throughput depends on staying
auto-vectorized. REMARKS is the compiler's vectorizer report for that file,
produced with::

    g++ -O3 -march=x86-64-v3 -fopt-info-vec-optimized=REMARKS -c SOURCE

Each remark line carries the source location of a vectorized loop
(``path:line:col: optimized: loop vectorized ...``). A marker passes when a
"loop vectorized" remark lands within a few lines below it — the loop the
marker guards. Exits 1 listing every marker without a matching remark, so
the CI perf-smoke job fails the moment a refactor silently turns a guarded
kernel loop back into scalar code. Stdlib only.
"""

import re
import sys

# A guarded loop's `for` header must begin within this many lines below its
# marker comment (markers sit directly above the loop, but a wrapped
# condition or an intervening local can push the header down a bit).
MARKER_WINDOW = 6

MARKER_RE = re.compile(r"//\s*simd-guard:\s*([A-Za-z0-9_-]+)")
REMARK_RE = re.compile(r":(\d+):\d+:\s+optimized:.*loop vectorized")


def read_markers(source_path):
    markers = []
    try:
        with open(source_path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                m = MARKER_RE.search(line)
                if m:
                    markers.append((m.group(1), lineno))
    except OSError as err:
        sys.exit(f"check_vectorization: cannot read {source_path}: {err}")
    if not markers:
        sys.exit(f"check_vectorization: no '// simd-guard:' markers in "
                 f"{source_path} — wrong file?")
    return markers


def read_vectorized_lines(remarks_path):
    lines = set()
    try:
        with open(remarks_path, encoding="utf-8") as f:
            for line in f:
                m = REMARK_RE.search(line)
                if m:
                    lines.add(int(m.group(1)))
    except OSError as err:
        sys.exit(f"check_vectorization: cannot read {remarks_path}: {err}")
    return lines


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} SOURCE REMARKS")
    source_path, remarks_path = sys.argv[1], sys.argv[2]
    markers = read_markers(source_path)
    vectorized = read_vectorized_lines(remarks_path)
    if not vectorized:
        sys.exit(f"check_vectorization: no 'loop vectorized' remarks in "
                 f"{remarks_path} — was it produced with "
                 "-fopt-info-vec-optimized on an -O3 build?")

    missing = []
    for name, lineno in markers:
        window = range(lineno + 1, lineno + 1 + MARKER_WINDOW)
        hit = next((v for v in window if v in vectorized), None)
        status = f"vectorized (line {hit})" if hit else "NOT VECTORIZED"
        print(f"  {name:<28} marker at line {lineno:<5} {status}")
        if hit is None:
            missing.append((name, lineno))

    if missing:
        print(f"\n{len(missing)} guarded loop(s) no longer vectorize:")
        for name, lineno in missing:
            print(f"  {name} ({source_path}:{lineno})")
        return 1
    print(f"\nall {len(markers)} guarded loops vectorized")
    return 0


if __name__ == "__main__":
    sys.exit(main())
