// scxcheck driver: generative differential testing of the CSE optimizer.
//
// Generates seeded random multi-output DAG scripts with deliberate
// structural sharing and checks each against five oracles (conventional ==
// cse executed outputs; cse cost <= conventional; serial == parallel
// optimize + execute; plan validity + JSON round-trip; columnar-batch ==
// batch_size=1 row execution). On failure the script is greedily minimized
// and the repro written to a corpus directory.
//
// Usage:
//   scx_fuzz [--seed N] [--iters N] [--threads N] [--machines N]
//            [--minimize|--no-minimize] [--corpus DIR] [--profile NAME]
//            [--replay FILE]... [--quiet]
//
// --iters defaults to $SCX_FUZZ_ITERS when set (so nightly CI can scale the
// same job up), else 200. --profile pins a generator edge case:
// default | single (single-consumer, no sharing) | empty (rows=0 inputs) |
// dup (duplicated OUTPUTs) | expr (every consumer computes duplicated
// arithmetic, stressing expression-CSE and the batch kernels) | pipeline
// (every consumer is a deep filter->compute->...->aggregate chain over the
// shared node, stressing the batch pipeline's fused cross-stage schedules
// and shared spool reads through all five oracles) | multiquery (each
// iteration generates a BATCH of scripts with shared library modules and
// checks the batch-vs-sequential oracle: merged submission is bit-identical
// per script to running each alone, moves no more bytes, and is invariant
// to thread/batch/morsel knobs and to cross-query cache warmth) | hostile
// (hostile-cluster simulation: power-law key skew piles rows onto a few
// machines, stragglers stretch the simulated makespan, and a per-seed
// FaultPlan kills machines mid-run at operator-pass granularity; the fault
// oracles then require the recovered run to stay bit-identical to the clean
// one and recovery to never beat pure recomputation on bytes moved).
//
// Exit code: 0 when every iteration and replay passed, 1 on any oracle
// failure, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/diff_harness.h"
#include "testing/script_gen.h"

namespace scx {
namespace {

/// Per-iteration seed derivation: mix the base seed with the iteration
/// index (splitmix64 finalizer) so neighbouring iterations are unrelated
/// and every failure is reproducible from (base_seed, index) — or directly
/// from the printed per-script seed.
uint64_t DeriveSeed(uint64_t base, uint64_t index) {
  uint64_t z = base * 0x9e3779b97f4a7c15ull + index + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// The hostile profile's per-script FaultPlan: a modest failure rate capped
/// at a handful of kills (so even pass-heavy scripts stay recoverable-fast)
/// plus aggressive stragglers. Seeded from the script seed, so every
/// failure reproduces from --replay-seed alone.
FaultPlan HostileFaultPlan(uint64_t seed) {
  FaultPlan fp;
  fp.seed = seed;
  fp.failure_prob = 0.02;
  fp.max_failures = 4;
  fp.straggler_prob = 0.25;
  fp.straggler_factor = 8.0;
  return fp;
}

void PrintFailure(const OracleReport& report) {
  std::fprintf(stderr,
               "scx_fuzz: FAIL oracle=%s seed=%llu\n  detail: %s\n",
               report.oracle.c_str(),
               static_cast<unsigned long long>(report.seed),
               report.detail.c_str());
  std::fprintf(stderr, "--- failing script ---\n%s", report.script.c_str());
  if (!report.minimized_script.empty() &&
      report.minimized_script != report.script) {
    std::fprintf(stderr, "--- minimized repro ---\n%s",
                 report.minimized_script.c_str());
  }
  if (!report.corpus_path.empty()) {
    std::fprintf(stderr, "repro written to %s\n",
                 report.corpus_path.c_str());
  }
}

int Main(int argc, char** argv) {
  uint64_t base_seed = 1;
  long iters = -1;
  HarnessOptions harness_opts;
  harness_opts.machines = 8;
  ScriptGenOptions gen_opts;
  BatchGenOptions batch_opts;
  bool multiquery = false;
  bool hostile = false;
  std::vector<std::string> replays;
  std::vector<uint64_t> replay_seeds;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--seed") {
      base_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::atol(next());
    } else if (arg == "--threads") {
      harness_opts.threads = std::atoi(next());
    } else if (arg == "--machines") {
      harness_opts.machines = std::atoi(next());
    } else if (arg == "--minimize") {
      harness_opts.minimize = true;
    } else if (arg == "--no-minimize") {
      harness_opts.minimize = false;
    } else if (arg == "--corpus") {
      harness_opts.corpus_dir = next();
    } else if (arg == "--replay") {
      replays.push_back(next());
    } else if (arg == "--replay-seed") {
      replay_seeds.push_back(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--profile") {
      std::string profile = next();
      if (profile == "single") {
        gen_opts.force_single_consumer = true;
      } else if (profile == "empty") {
        gen_opts.force_empty_inputs = true;
      } else if (profile == "dup") {
        gen_opts.force_duplicate_outputs = true;
      } else if (profile == "expr") {
        gen_opts.force_expr_consumers = true;
      } else if (profile == "pipeline") {
        gen_opts.force_pipeline_consumers = true;
      } else if (profile == "multiquery") {
        multiquery = true;
      } else if (profile == "hostile") {
        hostile = true;
        gen_opts.key_skew_alpha = 1.2;
      } else if (profile != "default") {
        std::fprintf(stderr, "scx_fuzz: unknown profile '%s'\n",
                     profile.c_str());
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help") {
      std::printf(
          "usage: scx_fuzz [--seed N] [--iters N] [--threads N] "
          "[--machines N]\n                [--minimize|--no-minimize] "
          "[--corpus DIR]\n                [--profile default|single|empty|"
          "dup|expr|pipeline|multiquery|hostile]\n                "
          "[--replay FILE]... [--replay-seed N]... [--quiet]\n");
      return 0;
    } else {
      std::fprintf(stderr, "scx_fuzz: unknown flag %s (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (iters < 0) {
    const char* env = std::getenv("SCX_FUZZ_ITERS");
    iters = env != nullptr && *env != '\0' ? std::atol(env) : 200;
  }

  int failures = 0;

  // Replay checked-in corpus repros first: each must pass all oracles with
  // its recorded cluster shape (regression gate for previously-minimized
  // bugs).
  for (const std::string& path : replays) {
    auto corpus = LoadCorpusFile(path);
    if (!corpus.ok()) {
      std::fprintf(stderr, "scx_fuzz: %s\n",
                   corpus.status().ToString().c_str());
      return 2;
    }
    HarnessOptions replay_opts = harness_opts;
    replay_opts.machines = corpus->machines;
    replay_opts.threads = corpus->threads;
    replay_opts.fault_plan = corpus->fault_plan;
    replay_opts.corpus_dir.clear();  // never re-write while replaying
    DiffHarness harness(replay_opts);
    OracleReport report =
        harness.Check(corpus->catalog, corpus->script, corpus->seed);
    if (!report.ok) {
      std::fprintf(stderr, "scx_fuzz: replay %s failed\n", path.c_str());
      PrintFailure(report);
      ++failures;
    } else if (!quiet) {
      std::printf("replay %s: ok\n", path.c_str());
    }
  }

  DiffHarness harness(harness_opts);

  // One multiquery iteration = one generated batch through the
  // batch-vs-sequential oracle (reproducible from the seed alone).
  auto check_one = [&](uint64_t seed) {
    if (multiquery) {
      GeneratedBatch batch = GenerateScriptBatch(seed, batch_opts);
      return harness.CheckBatch(batch.catalog, batch.scripts, seed);
    }
    GeneratedCase generated = GenerateScript(seed, gen_opts);
    if (hostile) {
      // Per-seed fault plan: rebuilt per script so the failure pattern
      // varies across the sweep while staying a pure function of the seed.
      HarnessOptions hopts = harness_opts;
      hopts.fault_plan = HostileFaultPlan(seed);
      return DiffHarness(hopts).Check(generated.catalog, generated.script,
                                      seed);
    }
    return harness.Check(generated.catalog, generated.script, seed);
  };

  // Re-run exact per-script seeds (the values printed in failure reports),
  // bypassing DeriveSeed.
  for (uint64_t seed : replay_seeds) {
    OracleReport report = check_one(seed);
    if (!report.ok) {
      PrintFailure(report);
      ++failures;
    } else if (!quiet) {
      std::printf("replay-seed %llu: ok\n",
                  static_cast<unsigned long long>(seed));
    }
  }

  for (long i = 0; i < iters; ++i) {
    uint64_t seed = DeriveSeed(base_seed, static_cast<uint64_t>(i));
    OracleReport report = check_one(seed);
    if (!report.ok) {
      PrintFailure(report);
      ++failures;
    }
    if (!quiet && iters >= 20 && (i + 1) % (iters / 10) == 0) {
      std::printf("scx_fuzz: %ld/%ld %s checked, %d failure%s\n",
                  i + 1, iters, multiquery ? "batches" : "scripts",
                  failures, failures == 1 ? "" : "s");
      std::fflush(stdout);
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "scx_fuzz: %d failure%s over %ld iterations\n",
                 failures, failures == 1 ? "" : "s", iters);
    return 1;
  }
  if (!quiet) {
    std::printf(
        "scx_fuzz: all %ld scripts passed (seed %llu, %d machines, %d "
        "threads)\n",
        iters, static_cast<unsigned long long>(base_seed),
        harness_opts.machines, harness_opts.threads);
  }
  return 0;
}

}  // namespace
}  // namespace scx

int main(int argc, char** argv) { return scx::Main(argc, argv); }
