# Empty dependencies file for join_commute_test.
# This may be replaced when dependencies are built.
