file(REMOVE_RECURSE
  "CMakeFiles/join_commute_test.dir/join_commute_test.cc.o"
  "CMakeFiles/join_commute_test.dir/join_commute_test.cc.o.d"
  "join_commute_test"
  "join_commute_test.pdb"
  "join_commute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_commute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
