# Empty dependencies file for plan_validator_test.
# This may be replaced when dependencies are built.
