file(REMOVE_RECURSE
  "CMakeFiles/plan_json_test.dir/plan_json_test.cc.o"
  "CMakeFiles/plan_json_test.dir/plan_json_test.cc.o.d"
  "plan_json_test"
  "plan_json_test.pdb"
  "plan_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
