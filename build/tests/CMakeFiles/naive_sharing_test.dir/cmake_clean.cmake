file(REMOVE_RECURSE
  "CMakeFiles/naive_sharing_test.dir/naive_sharing_test.cc.o"
  "CMakeFiles/naive_sharing_test.dir/naive_sharing_test.cc.o.d"
  "naive_sharing_test"
  "naive_sharing_test.pdb"
  "naive_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
