# Empty compiler generated dependencies file for naive_sharing_test.
# This may be replaced when dependencies are built.
