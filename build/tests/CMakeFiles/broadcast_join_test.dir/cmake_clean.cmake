file(REMOVE_RECURSE
  "CMakeFiles/broadcast_join_test.dir/broadcast_join_test.cc.o"
  "CMakeFiles/broadcast_join_test.dir/broadcast_join_test.cc.o.d"
  "broadcast_join_test"
  "broadcast_join_test.pdb"
  "broadcast_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
