# Empty compiler generated dependencies file for broadcast_join_test.
# This may be replaced when dependencies are built.
