# Empty dependencies file for scalar_predicate_test.
# This may be replaced when dependencies are built.
