file(REMOVE_RECURSE
  "CMakeFiles/scalar_predicate_test.dir/scalar_predicate_test.cc.o"
  "CMakeFiles/scalar_predicate_test.dir/scalar_predicate_test.cc.o.d"
  "scalar_predicate_test"
  "scalar_predicate_test.pdb"
  "scalar_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
