file(REMOVE_RECURSE
  "CMakeFiles/range_partitioning_test.dir/range_partitioning_test.cc.o"
  "CMakeFiles/range_partitioning_test.dir/range_partitioning_test.cc.o.d"
  "range_partitioning_test"
  "range_partitioning_test.pdb"
  "range_partitioning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_partitioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
