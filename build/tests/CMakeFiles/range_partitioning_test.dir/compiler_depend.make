# Empty compiler generated dependencies file for range_partitioning_test.
# This may be replaced when dependencies are built.
