# Empty compiler generated dependencies file for large_scripts_test.
# This may be replaced when dependencies are built.
