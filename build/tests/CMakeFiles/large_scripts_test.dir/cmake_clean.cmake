file(REMOVE_RECURSE
  "CMakeFiles/large_scripts_test.dir/large_scripts_test.cc.o"
  "CMakeFiles/large_scripts_test.dir/large_scripts_test.cc.o.d"
  "large_scripts_test"
  "large_scripts_test.pdb"
  "large_scripts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_scripts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
