file(REMOVE_RECURSE
  "CMakeFiles/shared_info_test.dir/shared_info_test.cc.o"
  "CMakeFiles/shared_info_test.dir/shared_info_test.cc.o.d"
  "shared_info_test"
  "shared_info_test.pdb"
  "shared_info_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_info_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
