# Empty dependencies file for shared_info_test.
# This may be replaced when dependencies are built.
