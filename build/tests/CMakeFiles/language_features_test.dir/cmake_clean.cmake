file(REMOVE_RECURSE
  "CMakeFiles/language_features_test.dir/language_features_test.cc.o"
  "CMakeFiles/language_features_test.dir/language_features_test.cc.o.d"
  "language_features_test"
  "language_features_test.pdb"
  "language_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
