# Empty dependencies file for language_features_test.
# This may be replaced when dependencies are built.
