file(REMOVE_RECURSE
  "CMakeFiles/rounds_test.dir/rounds_test.cc.o"
  "CMakeFiles/rounds_test.dir/rounds_test.cc.o.d"
  "rounds_test"
  "rounds_test.pdb"
  "rounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
