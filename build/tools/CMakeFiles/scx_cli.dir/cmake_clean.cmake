file(REMOVE_RECURSE
  "CMakeFiles/scx_cli.dir/scx_cli.cc.o"
  "CMakeFiles/scx_cli.dir/scx_cli.cc.o.d"
  "scx_cli"
  "scx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
