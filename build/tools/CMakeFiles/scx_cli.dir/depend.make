# Empty dependencies file for scx_cli.
# This may be replaced when dependencies are built.
