# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(scx_cli_compare "/root/repo/build/tools/scx_cli" "--catalog" "/root/repo/testdata/paper_catalog.txt" "--script" "/root/repo/testdata/s1.scope" "--compare" "--quiet")
set_tests_properties(scx_cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scx_cli_execute "/root/repo/build/tools/scx_cli" "--catalog" "/root/repo/testdata/small_catalog.txt" "--script" "/root/repo/testdata/s1.scope" "--mode" "cse" "--machines" "8" "--execute" "--quiet")
set_tests_properties(scx_cli_execute PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scx_cli_naive "/root/repo/build/tools/scx_cli" "--catalog" "/root/repo/testdata/paper_catalog.txt" "--script" "/root/repo/testdata/s1.scope" "--mode" "naive" "--quiet")
set_tests_properties(scx_cli_naive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scx_cli_missing_args "/root/repo/build/tools/scx_cli")
set_tests_properties(scx_cli_missing_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scx_cli_bad_catalog "/root/repo/build/tools/scx_cli" "--catalog" "/nonexistent.txt" "--script" "/root/repo/testdata/s1.scope")
set_tests_properties(scx_cli_bad_catalog PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scx_cli_json "/root/repo/build/tools/scx_cli" "--catalog" "/root/repo/testdata/paper_catalog.txt" "--script" "/root/repo/testdata/s1.scope" "--mode" "cse" "--json")
set_tests_properties(scx_cli_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
