
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/engine.cc" "src/CMakeFiles/scx.dir/api/engine.cc.o" "gcc" "src/CMakeFiles/scx.dir/api/engine.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/scx.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/scx.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/column_set.cc" "src/CMakeFiles/scx.dir/common/column_set.cc.o" "gcc" "src/CMakeFiles/scx.dir/common/column_set.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/scx.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/scx.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/scx.dir/common/status.cc.o" "gcc" "src/CMakeFiles/scx.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/scx.dir/common/value.cc.o" "gcc" "src/CMakeFiles/scx.dir/common/value.cc.o.d"
  "/root/repo/src/core/fingerprint.cc" "src/CMakeFiles/scx.dir/core/fingerprint.cc.o" "gcc" "src/CMakeFiles/scx.dir/core/fingerprint.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/scx.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/scx.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/rounds.cc" "src/CMakeFiles/scx.dir/core/rounds.cc.o" "gcc" "src/CMakeFiles/scx.dir/core/rounds.cc.o.d"
  "/root/repo/src/core/shared_info.cc" "src/CMakeFiles/scx.dir/core/shared_info.cc.o" "gcc" "src/CMakeFiles/scx.dir/core/shared_info.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/scx.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/scx.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/scx.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/scx.dir/exec/executor.cc.o.d"
  "/root/repo/src/memo/memo.cc" "src/CMakeFiles/scx.dir/memo/memo.cc.o" "gcc" "src/CMakeFiles/scx.dir/memo/memo.cc.o.d"
  "/root/repo/src/opt/physical_plan.cc" "src/CMakeFiles/scx.dir/opt/physical_plan.cc.o" "gcc" "src/CMakeFiles/scx.dir/opt/physical_plan.cc.o.d"
  "/root/repo/src/opt/plan_json.cc" "src/CMakeFiles/scx.dir/opt/plan_json.cc.o" "gcc" "src/CMakeFiles/scx.dir/opt/plan_json.cc.o.d"
  "/root/repo/src/opt/plan_validator.cc" "src/CMakeFiles/scx.dir/opt/plan_validator.cc.o" "gcc" "src/CMakeFiles/scx.dir/opt/plan_validator.cc.o.d"
  "/root/repo/src/plan/binder.cc" "src/CMakeFiles/scx.dir/plan/binder.cc.o" "gcc" "src/CMakeFiles/scx.dir/plan/binder.cc.o.d"
  "/root/repo/src/plan/expr.cc" "src/CMakeFiles/scx.dir/plan/expr.cc.o" "gcc" "src/CMakeFiles/scx.dir/plan/expr.cc.o.d"
  "/root/repo/src/plan/logical_op.cc" "src/CMakeFiles/scx.dir/plan/logical_op.cc.o" "gcc" "src/CMakeFiles/scx.dir/plan/logical_op.cc.o.d"
  "/root/repo/src/plan/scalar.cc" "src/CMakeFiles/scx.dir/plan/scalar.cc.o" "gcc" "src/CMakeFiles/scx.dir/plan/scalar.cc.o.d"
  "/root/repo/src/props/physical_props.cc" "src/CMakeFiles/scx.dir/props/physical_props.cc.o" "gcc" "src/CMakeFiles/scx.dir/props/physical_props.cc.o.d"
  "/root/repo/src/script/ast.cc" "src/CMakeFiles/scx.dir/script/ast.cc.o" "gcc" "src/CMakeFiles/scx.dir/script/ast.cc.o.d"
  "/root/repo/src/script/lexer.cc" "src/CMakeFiles/scx.dir/script/lexer.cc.o" "gcc" "src/CMakeFiles/scx.dir/script/lexer.cc.o.d"
  "/root/repo/src/script/parser.cc" "src/CMakeFiles/scx.dir/script/parser.cc.o" "gcc" "src/CMakeFiles/scx.dir/script/parser.cc.o.d"
  "/root/repo/src/workload/large_scripts.cc" "src/CMakeFiles/scx.dir/workload/large_scripts.cc.o" "gcc" "src/CMakeFiles/scx.dir/workload/large_scripts.cc.o.d"
  "/root/repo/src/workload/paper_scripts.cc" "src/CMakeFiles/scx.dir/workload/paper_scripts.cc.o" "gcc" "src/CMakeFiles/scx.dir/workload/paper_scripts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
