file(REMOVE_RECURSE
  "libscx.a"
)
