# Empty dependencies file for scx.
# This may be replaced when dependencies are built.
