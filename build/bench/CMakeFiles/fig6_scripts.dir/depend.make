# Empty dependencies file for fig6_scripts.
# This may be replaced when dependencies are built.
