file(REMOVE_RECURSE
  "CMakeFiles/fig6_scripts.dir/fig6_scripts.cc.o"
  "CMakeFiles/fig6_scripts.dir/fig6_scripts.cc.o.d"
  "fig6_scripts"
  "fig6_scripts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
