file(REMOVE_RECURSE
  "CMakeFiles/fig8_plans.dir/fig8_plans.cc.o"
  "CMakeFiles/fig8_plans.dir/fig8_plans.cc.o.d"
  "fig8_plans"
  "fig8_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
