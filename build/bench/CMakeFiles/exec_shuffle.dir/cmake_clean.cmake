file(REMOVE_RECURSE
  "CMakeFiles/exec_shuffle.dir/exec_shuffle.cc.o"
  "CMakeFiles/exec_shuffle.dir/exec_shuffle.cc.o.d"
  "exec_shuffle"
  "exec_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
