# Empty dependencies file for exec_shuffle.
# This may be replaced when dependencies are built.
