# Empty compiler generated dependencies file for exec_shuffle.
# This may be replaced when dependencies are built.
