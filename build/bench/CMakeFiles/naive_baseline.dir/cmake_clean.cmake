file(REMOVE_RECURSE
  "CMakeFiles/naive_baseline.dir/naive_baseline.cc.o"
  "CMakeFiles/naive_baseline.dir/naive_baseline.cc.o.d"
  "naive_baseline"
  "naive_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
