# Empty compiler generated dependencies file for naive_baseline.
# This may be replaced when dependencies are built.
