# Empty dependencies file for rounds_viii.
# This may be replaced when dependencies are built.
