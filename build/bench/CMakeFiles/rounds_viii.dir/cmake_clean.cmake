file(REMOVE_RECURSE
  "CMakeFiles/rounds_viii.dir/rounds_viii.cc.o"
  "CMakeFiles/rounds_viii.dir/rounds_viii.cc.o.d"
  "rounds_viii"
  "rounds_viii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rounds_viii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
