# Empty compiler generated dependencies file for opt_time.
# This may be replaced when dependencies are built.
