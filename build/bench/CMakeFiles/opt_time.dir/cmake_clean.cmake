file(REMOVE_RECURSE
  "CMakeFiles/opt_time.dir/opt_time.cc.o"
  "CMakeFiles/opt_time.dir/opt_time.cc.o.d"
  "opt_time"
  "opt_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
