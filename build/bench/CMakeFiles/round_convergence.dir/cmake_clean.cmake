file(REMOVE_RECURSE
  "CMakeFiles/round_convergence.dir/round_convergence.cc.o"
  "CMakeFiles/round_convergence.dir/round_convergence.cc.o.d"
  "round_convergence"
  "round_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
