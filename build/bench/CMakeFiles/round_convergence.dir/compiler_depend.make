# Empty compiler generated dependencies file for round_convergence.
# This may be replaced when dependencies are built.
