file(REMOVE_RECURSE
  "CMakeFiles/fig7_costs.dir/fig7_costs.cc.o"
  "CMakeFiles/fig7_costs.dir/fig7_costs.cc.o.d"
  "fig7_costs"
  "fig7_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
