# Empty dependencies file for fig7_costs.
# This may be replaced when dependencies are built.
