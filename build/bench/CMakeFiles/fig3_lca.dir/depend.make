# Empty dependencies file for fig3_lca.
# This may be replaced when dependencies are built.
