file(REMOVE_RECURSE
  "CMakeFiles/fig3_lca.dir/fig3_lca.cc.o"
  "CMakeFiles/fig3_lca.dir/fig3_lca.cc.o.d"
  "fig3_lca"
  "fig3_lca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
