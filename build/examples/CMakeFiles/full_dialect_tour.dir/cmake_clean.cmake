file(REMOVE_RECURSE
  "CMakeFiles/full_dialect_tour.dir/full_dialect_tour.cpp.o"
  "CMakeFiles/full_dialect_tour.dir/full_dialect_tour.cpp.o.d"
  "full_dialect_tour"
  "full_dialect_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_dialect_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
