# Empty compiler generated dependencies file for full_dialect_tour.
# This may be replaced when dependencies are built.
