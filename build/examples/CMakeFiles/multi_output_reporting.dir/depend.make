# Empty dependencies file for multi_output_reporting.
# This may be replaced when dependencies are built.
