file(REMOVE_RECURSE
  "CMakeFiles/multi_output_reporting.dir/multi_output_reporting.cpp.o"
  "CMakeFiles/multi_output_reporting.dir/multi_output_reporting.cpp.o.d"
  "multi_output_reporting"
  "multi_output_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_output_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
