file(REMOVE_RECURSE
  "CMakeFiles/large_script_budget.dir/large_script_budget.cpp.o"
  "CMakeFiles/large_script_budget.dir/large_script_budget.cpp.o.d"
  "large_script_budget"
  "large_script_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_script_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
