# Empty dependencies file for large_script_budget.
# This may be replaced when dependencies are built.
