// Ablation harness for the paper's Sec. VIII large-script extensions:
//   VIII-A exploiting independent shared groups (Cartesian -> sequential),
//   VIII-B ranking shared groups by repartitioning savings,
//   VIII-C ranking property sets by phase-1 win frequency.
// Reports phase-2 round counts and final costs with each extension toggled,
// plus the paper's 8x8 = 64 -> 8+7 = 15 scheduler example.

#include <cstdio>

#include "api/engine.h"
#include "core/rounds.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

// Two independent modules whose shared groups have the Sequence root as
// their common LCA — the Fig. 5 shape.
const char kTwoModules[] = R"(
A0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
A  = SELECT A,B,C,Sum(D) AS S FROM A0 GROUP BY A,B,C;
A1 = SELECT A,B,Sum(S) AS T FROM A GROUP BY A,B;
A2 = SELECT B,C,Sum(S) AS T FROM A GROUP BY B,C;
B0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
B  = SELECT A,B,C,Sum(D) AS S FROM B0 GROUP BY A,B,C;
B1 = SELECT A,B,Sum(S) AS T FROM B GROUP BY A,B;
B2 = SELECT B,C,Sum(S) AS T FROM B GROUP BY B,C;
OUTPUT A1 TO "a1.out";
OUTPUT A2 TO "a2.out";
OUTPUT B1 TO "b1.out";
OUTPUT B2 TO "b2.out";
)";

void AblationRow(const char* name, const scx::Catalog& catalog,
         const std::string& text, bool independent, bool rank_groups,
         bool rank_props, long max_rounds = 1000000) {
  using namespace scx;
  OptimizerConfig config;
  config.exploit_independent_groups = independent;
  config.rank_shared_groups = rank_groups;
  config.rank_properties = rank_props;
  config.max_rounds = max_rounds;
  Engine engine(catalog, config);
  auto c = engine.Compare(text);
  if (!c.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, c.status().ToString().c_str());
    return;
  }
  const auto& d = c->cse.result.diagnostics;
  std::printf("%-22s %6s %6s %6s %8ld %8ld %14.0f %7.2f\n", name,
              independent ? "on" : "off", rank_groups ? "on" : "off",
              rank_props ? "on" : "off", d.rounds_planned, d.rounds_executed,
              c->cse.cost(), c->cost_ratio);
}

}  // namespace

int main() {
  using namespace scx;

  std::printf(
      "Sec. VIII-A scheduler example: two independent shared groups with 8 "
      "property sets each\n");
  {
    RoundEnumerator cartesian({{5, 6}}, {{5, 8}, {6, 8}});
    RoundEnumerator sequential({{5}, {6}}, {{5, 8}, {6, 8}});
    std::printf("  joint (Cartesian) rounds: %ld (paper: 64)\n",
                cartesian.TotalRounds());
    std::printf("  independent rounds:       %ld (paper: 15)\n\n",
                sequential.TotalRounds());
  }

  std::printf("%-22s %6s %6s %6s %8s %8s %14s %7s\n", "workload", "VIIIA",
              "VIIIB", "VIIIC", "planned", "run", "cse cost", "ratio");

  Catalog paper = MakePaperCatalog();
  for (bool independent : {false, true}) {
    AblationRow("two-modules", paper, kTwoModules, independent, true, true);
  }
  for (bool rank : {false, true}) {
    AblationRow("S4", paper, kScriptS4, true, rank, rank);
  }

  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  for (bool independent : {false, true}) {
    AblationRow("LS1", ls1.catalog, ls1.text, independent, true, true);
  }
  // Ranking quality under a tight round cap: with rankings the early rounds
  // are the promising ones.
  std::printf("\nwith a hard cap of 10 rounds (budgeted optimization):\n");
  std::printf("%-22s %6s %6s %6s %8s %8s %14s %7s\n", "workload", "VIIIA",
              "VIIIB", "VIIIC", "planned", "run", "cse cost", "ratio");
  for (bool rank : {false, true}) {
    AblationRow("LS1 capped", ls1.catalog, ls1.text, true, rank, rank, 10);
  }
  return 0;
}
