// Cache and pruning behavior of the interned, hashed phase-2 hot path.
// Runs the CSE optimizer serially (1 thread) in two configurations per
// script:
//   * traced — round trace on: no cross-round branch-and-bound (the
//     determinism oracle; matches the PR-1 baseline configuration);
//   * fast   — round trace off: class-local branch-and-bound across rounds
//     is active.
// The chosen plan and cost must be identical in both (pruning only skips
// provably-losing work). Reports winner/spool hit rates, pruned counters,
// interner size, and phase-2 wall time; writes BENCH_opt_cache.json.

#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

using namespace scx;

struct Run {
  double total_seconds = 0;
  double phase2_seconds = 0;
  long rounds = 0;
  double cost = 0;
  std::string plan;
  OptCacheCounters cache;

  double rounds_per_sec() const {
    return total_seconds > 0 ? rounds / total_seconds : 0;
  }
  double phase2_rounds_per_sec() const {
    return phase2_seconds > 0 ? rounds / phase2_seconds : 0;
  }
};

struct ScriptRow {
  std::string name;
  Run traced;
  Run fast;
  bool identical = false;
};

double HitRate(long hits, long misses) {
  long total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0;
}

bool RunOnce(const Catalog& catalog, const std::string& text, bool trace,
             Run* out) {
  OptimizerConfig config;
  config.num_threads = 1;
  config.trace_rounds = trace;
  config.budget_seconds = 1e9;  // identical results require no budget stop
  Engine engine(catalog, config);
  auto compiled = engine.Compile(text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return false;
  }
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 optimized.status().ToString().c_str());
    return false;
  }
  const OptimizeDiagnostics& d = optimized->result.diagnostics;
  out->total_seconds = d.optimize_seconds;
  out->phase2_seconds = d.phase2_seconds;
  out->rounds = d.rounds_executed;
  out->cost = optimized->cost();
  out->plan = optimized->Explain();
  out->cache = d.cache;
  return true;
}

bool Measure(const char* name, const Catalog& catalog,
             const std::string& text, std::vector<ScriptRow>* out) {
  ScriptRow r;
  r.name = name;
  if (!RunOnce(catalog, text, /*trace=*/true, &r.traced)) return false;
  if (!RunOnce(catalog, text, /*trace=*/false, &r.fast)) return false;
  r.identical =
      r.traced.cost == r.fast.cost && r.traced.plan == r.fast.plan;
  std::printf(
      "%-5s %7ld %9.3fs %9.3fs %9.0f %9.0f  %5.1f%% %5.1f%% %7ld %6ld %6ld "
      "%9s\n",
      name, r.traced.rounds, r.traced.phase2_seconds, r.fast.phase2_seconds,
      r.traced.phase2_rounds_per_sec(), r.fast.phase2_rounds_per_sec(),
      100 * HitRate(r.fast.cache.winner_hits, r.fast.cache.winner_misses),
      100 * HitRate(r.fast.cache.spool_hits, r.fast.cache.spool_misses),
      r.fast.cache.pruned_alternatives, r.fast.cache.pruned_rounds,
      r.fast.cache.interner_size, r.identical ? "yes" : "NO");
  out->push_back(std::move(r));
  return true;
}

void WriteRunJson(FILE* f, const char* key, const Run& r) {
  std::fprintf(f,
               "     \"%s\": {\"total_seconds\": %.6f, "
               "\"phase2_seconds\": %.6f, \"rounds\": %ld, "
               "\"rounds_per_sec\": %.1f, \"phase2_rounds_per_sec\": %.1f, "
               "\"winner_hits\": %ld, \"winner_misses\": %ld, "
               "\"winner_hit_rate\": %.4f, "
               "\"spool_hits\": %ld, \"spool_misses\": %ld, "
               "\"spool_hit_rate\": %.4f, "
               "\"pruned_alternatives\": %ld, \"pruned_rounds\": %ld, "
               "\"interner_size\": %ld}",
               key, r.total_seconds, r.phase2_seconds, r.rounds,
               r.rounds_per_sec(), r.phase2_rounds_per_sec(),
               r.cache.winner_hits, r.cache.winner_misses,
               HitRate(r.cache.winner_hits, r.cache.winner_misses),
               r.cache.spool_hits, r.cache.spool_misses,
               HitRate(r.cache.spool_hits, r.cache.spool_misses),
               r.cache.pruned_alternatives, r.cache.pruned_rounds,
               r.cache.interner_size);
}

void WriteJson(const std::vector<ScriptRow>& rows) {
  FILE* f = std::fopen("BENCH_opt_cache.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_opt_cache.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"opt_cache\",\n  \"threads\": 1,\n");
  std::fprintf(f, "  \"scripts\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScriptRow& r = rows[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"cost\": %.6f,\n",
                 r.name.c_str(), r.fast.cost);
    WriteRunJson(f, "traced", r.traced);
    std::fprintf(f, ",\n");
    WriteRunJson(f, "fast", r.fast);
    std::fprintf(f, ",\n     \"identical\": %s}%s\n",
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_opt_cache.json\n");
}

}  // namespace

int main() {
  std::printf(
      "phase-2 cache/pruning (serial; traced = round trace on, "
      "fast = trace off with class-local branch-and-bound)\n");
  std::printf(
      "%-5s %7s %10s %10s %9s %9s  %6s %6s %7s %6s %6s %9s\n", "name",
      "rounds", "p2 trace", "p2 fast", "tr r/s", "fast r/s", "whit",
      "shit", "prunedA", "prunR", "intern", "identical");

  std::vector<ScriptRow> rows;
  Catalog paper = MakePaperCatalog();
  bool ok = true;
  ok &= Measure("S1", paper, kScriptS1, &rows);
  ok &= Measure("S2", paper, kScriptS2, &rows);
  ok &= Measure("S3", paper, kScriptS3, &rows);
  ok &= Measure("S4", paper, kScriptS4, &rows);
  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  GeneratedScript ls2 = GenerateLargeScript(Ls2Spec());
  ok &= Measure("LS1", ls1.catalog, ls1.text, &rows);
  ok &= Measure("LS2", ls2.catalog, ls2.text, &rows);

  WriteJson(rows);

  for (const ScriptRow& r : rows) ok &= r.identical;
  return ok ? 0 : 1;
}
