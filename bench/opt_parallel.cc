// Serial vs parallel phase-2 round evaluation (OptimizerConfig::num_threads).
// For each script, runs the CSE optimizer at 1 and 4 threads, checks the
// results are bit-identical, and reports wall-clock, rounds/sec and speedup.
// Writes BENCH_opt_time.json next to the working directory so future changes
// have a perf trajectory to compare against.

#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

using namespace scx;

struct Measurement {
  std::string name;
  double serial_seconds = 0;
  double parallel_seconds = 0;
  long rounds = 0;
  double serial_cost = 0;
  double parallel_cost = 0;
  bool identical = false;

  double serial_rounds_per_sec() const {
    return serial_seconds > 0 ? rounds / serial_seconds : 0;
  }
  double parallel_rounds_per_sec() const {
    return parallel_seconds > 0 ? rounds / parallel_seconds : 0;
  }
  double speedup() const {
    return parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0;
  }
};

Result<OptimizedScript> RunOnce(const Catalog& catalog,
                                const std::string& text, int threads,
                                double* seconds) {
  OptimizerConfig config;
  config.num_threads = threads;
  config.budget_seconds = 1e9;  // identical results require no budget stop
  Engine engine(catalog, config);
  SCX_ASSIGN_OR_RETURN(CompiledScript compiled, engine.Compile(text));
  SCX_ASSIGN_OR_RETURN(OptimizedScript optimized,
                       engine.Optimize(compiled, OptimizerMode::kCse));
  *seconds = optimized.result.diagnostics.optimize_seconds;
  return optimized;
}

bool Measure(const char* name, const Catalog& catalog,
             const std::string& text, int threads,
             std::vector<Measurement>* out) {
  Measurement m;
  m.name = name;
  double s1 = 0, sn = 0;
  auto serial = RunOnce(catalog, text, 1, &s1);
  auto parallel = RunOnce(catalog, text, threads, &sn);
  if (!serial.ok() || !parallel.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 (!serial.ok() ? serial.status() : parallel.status())
                     .ToString()
                     .c_str());
    return false;
  }
  m.serial_seconds = s1;
  m.parallel_seconds = sn;
  m.rounds = serial->result.diagnostics.rounds_executed;
  m.serial_cost = serial->cost();
  m.parallel_cost = parallel->cost();
  m.identical =
      serial->cost() == parallel->cost() &&
      serial->Explain() == parallel->Explain() &&
      serial->result.diagnostics.rounds_executed ==
          parallel->result.diagnostics.rounds_executed;
  std::printf("%-5s %9ld %11.3fs %12.3fs %10.0f %12.0f %8.2fx %10s\n", name,
              m.rounds, m.serial_seconds, m.parallel_seconds,
              m.serial_rounds_per_sec(), m.parallel_rounds_per_sec(),
              m.speedup(), m.identical ? "yes" : "NO");
  out->push_back(std::move(m));
  return true;
}

void WriteJson(const std::vector<Measurement>& rows, int threads) {
  FILE* f = std::fopen("BENCH_opt_time.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_opt_time.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"opt_parallel\",\n");
  std::fprintf(f, "  \"threads\": %d,\n  \"scripts\": [\n", threads);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rounds\": %ld, "
                 "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
                 "\"serial_rounds_per_sec\": %.1f, "
                 "\"parallel_rounds_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"identical\": %s}%s\n",
                 m.name.c_str(), m.rounds, m.serial_seconds,
                 m.parallel_seconds, m.serial_rounds_per_sec(),
                 m.parallel_rounds_per_sec(), m.speedup(),
                 m.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_opt_time.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  if (argc > 1) threads = std::atoi(argv[1]);
  if (threads < 2) threads = 2;

  std::printf("phase-2 round evaluation, serial vs %d threads\n", threads);
  std::printf("%-5s %9s %12s %13s %10s %12s %9s %10s\n", "name", "rounds",
              "serial", "parallel", "ser r/s", "par r/s", "speedup",
              "identical");

  std::vector<Measurement> rows;
  Catalog paper = MakePaperCatalog();
  Measure("S1", paper, kScriptS1, threads, &rows);
  Measure("S2", paper, kScriptS2, threads, &rows);
  Measure("S3", paper, kScriptS3, threads, &rows);
  Measure("S4", paper, kScriptS4, threads, &rows);
  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  GeneratedScript ls2 = GenerateLargeScript(Ls2Spec());
  Measure("LS1", ls1.catalog, ls1.text, threads, &rows);
  Measure("LS2", ls2.catalog, ls2.text, threads, &rows);

  WriteJson(rows, threads);

  bool all_identical = true;
  for (const Measurement& m : rows) all_identical &= m.identical;
  return all_identical ? 0 : 1;
}
