// Executor throughput: RowKeyTable vs the former std::map hot paths, and
// end-to-end script execution at 1 and N worker threads.
//
// Two sections:
//   * kernels — single-threaded aggregation / join / shuffle microkernels
//     over synthetic rows, each run twice: with the tree-map structure the
//     executor used before (std::map keyed by materialized
//     std::vector<Value>, per-row copy scatter) and with the current
//     open-addressed RowKeyTable / move-based scatter. Both variants must
//     produce identical results; the speedup column is the point.
//   * scripts — S1–S4 and the LS1/LS2 generators, optimized once in CSE
//     mode, then the same plan executed with exec_threads = 1 and N.
//     Counters and outputs must be bit-identical across thread counts
//     (exit 1 otherwise), so this doubles as a determinism gate.
//
// Writes BENCH_exec.json (rates keyed *_rows_per_sec for tools/bench_diff.py).

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/hash.h"
#include "exec/row_key_table.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

using namespace scx;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Kernels.

struct KernelRow {
  std::string name;
  int64_t rows = 0;
  double seconds = 0;
  double rows_per_sec = 0;
  double speedup = 0;  // vs the matching *_map baseline (0 for baselines)
};

// Rows are {key1, key2, value}: group/join keys are composite, like the
// paper scripts' GROUP BY {A,B,C}. Inputs are generated once, outside the
// timed region.
std::vector<Row> MakeKernelRows(int64_t n, int64_t ndv1, int64_t ndv2,
                                uint64_t seed) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    uint64_t h = Mix64(seed ^ static_cast<uint64_t>(i));
    rows.push_back(
        Row{Value::Int(static_cast<int64_t>(h % static_cast<uint64_t>(ndv1))),
            Value::Int(static_cast<int64_t>((h >> 32) %
                                            static_cast<uint64_t>(ndv2))),
            Value::Int(i % 1000)});
  }
  return rows;
}

KernelRow MeasureKernel(const char* name, int64_t rows,
                        const std::function<double()>& body,
                        const KernelRow* baseline) {
  KernelRow r;
  r.name = name;
  r.rows = rows;
  Clock::time_point start = Clock::now();
  double checksum = body();
  r.seconds = SecondsSince(start);
  r.rows_per_sec = r.seconds > 0 ? static_cast<double>(rows) / r.seconds : 0;
  if (baseline != nullptr && r.seconds > 0) {
    r.speedup = baseline->seconds / r.seconds;
  }
  std::printf("%-14s %10lld rows %9.3fs %12.0f rows/s", name,
              static_cast<long long>(rows), r.seconds, r.rows_per_sec);
  if (baseline != nullptr) std::printf("  %5.2fx", r.speedup);
  std::printf("   (checksum %.0f)\n", checksum);
  return r;
}

constexpr int64_t kAggRows = 400000;
constexpr int64_t kProbeRows = 400000;
constexpr int64_t kBuildRows = 100000;
constexpr int64_t kShuffleRows = 400000;
constexpr int kShuffleDests = 16;
const std::vector<int> kKeyPos = {0, 1};

double AggMapBody(const std::vector<Row>& input) {
  // The executor's former aggregation structure: a tree map keyed by the
  // materialized key vector.
  std::map<std::vector<Value>, std::pair<double, int64_t>> groups;
  for (const Row& r : input) {
    std::vector<Value> key{r[0], r[1]};
    auto& s = groups[std::move(key)];
    s.first += r[2].AsNumeric();
    ++s.second;
  }
  double sum = 0;
  for (const auto& [k, s] : groups) {
    (void)k;
    sum += s.first;
  }
  return sum + static_cast<double>(groups.size());
}

double AggTableBody(const std::vector<Row>& input) {
  RowKeyTable table(input.size());
  std::vector<std::pair<double, int64_t>> states;
  for (const Row& r : input) {
    auto [id, inserted] = table.FindOrInsert(r, kKeyPos);
    if (inserted) states.emplace_back(0.0, 0);
    states[id].first += r[2].AsNumeric();
    ++states[id].second;
  }
  double sum = 0;
  for (const auto& s : states) sum += s.first;
  return sum + static_cast<double>(table.size());
}

double JoinMapBody(const std::vector<Row>& build,
                   const std::vector<Row>& probe) {
  std::map<std::vector<Value>, std::vector<const Row*>> table;
  for (const Row& r : build) table[{r[0], r[1]}].push_back(&r);
  int64_t matches = 0;
  for (const Row& l : probe) {
    auto it = table.find({l[0], l[1]});
    if (it == table.end()) continue;
    matches += static_cast<int64_t>(it->second.size());
  }
  return static_cast<double>(matches);
}

double JoinTableBody(const std::vector<Row>& build,
                     const std::vector<Row>& probe) {
  RowKeyTable table(build.size());
  std::vector<std::vector<const Row*>> rows_by_key;
  for (const Row& r : build) {
    auto [id, inserted] = table.FindOrInsert(r, kKeyPos);
    if (inserted) rows_by_key.emplace_back();
    rows_by_key[id].push_back(&r);
  }
  int64_t matches = 0;
  for (const Row& l : probe) {
    size_t id = table.Find(l, kKeyPos);
    if (id == RowKeyTable::kNotFound) continue;
    matches += static_cast<int64_t>(rows_by_key[id].size());
  }
  return static_cast<double>(matches);
}

double ShuffleCopyBody(const std::vector<Row>& input) {
  std::vector<std::vector<Row>> buckets(kShuffleDests);
  for (const Row& r : input) {
    buckets[HashRowKey(r, kKeyPos) % kShuffleDests].push_back(r);
  }
  double total = 0;
  for (const auto& b : buckets) total += static_cast<double>(b.size());
  return total;
}

double ShuffleMoveBody(std::vector<Row>& input) {
  std::vector<uint32_t> dest(input.size());
  std::vector<size_t> count(kShuffleDests, 0);
  for (size_t i = 0; i < input.size(); ++i) {
    dest[i] = static_cast<uint32_t>(HashRowKey(input[i], kKeyPos) %
                                    kShuffleDests);
    ++count[dest[i]];
  }
  std::vector<std::vector<Row>> buckets(kShuffleDests);
  for (int d = 0; d < kShuffleDests; ++d) buckets[d].reserve(count[d]);
  for (size_t i = 0; i < input.size(); ++i) {
    buckets[dest[i]].push_back(std::move(input[i]));
  }
  double total = 0;
  for (const auto& b : buckets) total += static_cast<double>(b.size());
  return total;
}

// ---------------------------------------------------------------------------
// Scripts.

struct ExecRun {
  double seconds = 0;
  int64_t processed_rows = 0;  // extracted + shuffled + output
  ExecMetrics metrics;

  double rows_per_sec() const {
    return seconds > 0 ? static_cast<double>(processed_rows) / seconds : 0;
  }
  double rate(int64_t rows) const {
    return seconds > 0 ? static_cast<double>(rows) / seconds : 0;
  }
};

struct ScriptRow {
  std::string name;
  ExecRun t1;
  ExecRun tn;
  bool identical = false;
};

bool SameCounters(const ExecMetrics& a, const ExecMetrics& b) {
  return a.rows_extracted == b.rows_extracted &&
         a.rows_shuffled == b.rows_shuffled &&
         a.bytes_shuffled == b.bytes_shuffled &&
         a.bytes_spooled == b.bytes_spooled &&
         a.rows_spooled == b.rows_spooled &&
         a.spool_executions == b.spool_executions &&
         a.spool_reads == b.spool_reads &&
         a.spool_cache_hits == b.spool_cache_hits &&
         a.operator_invocations == b.operator_invocations &&
         a.rows_output == b.rows_output;
}

bool RunPlan(const PhysicalNodePtr& plan, int machines, int threads,
             ExecRun* out) {
  ClusterConfig cluster;
  cluster.machines = machines;
  cluster.exec_threads = threads;
  Executor executor(cluster);
  Clock::time_point start = Clock::now();
  auto metrics = executor.Execute(plan);
  out->seconds = SecondsSince(start);
  if (!metrics.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 metrics.status().ToString().c_str());
    return false;
  }
  out->metrics = std::move(metrics.value());
  out->processed_rows = out->metrics.rows_extracted +
                        out->metrics.rows_shuffled +
                        out->metrics.rows_output;
  return true;
}

bool MeasureScript(const char* name, const Catalog& catalog,
                   const std::string& text, int machines, int nthreads,
                   std::vector<ScriptRow>* out) {
  OptimizerConfig config;
  config.num_threads = 1;
  config.cluster.machines = machines;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile %s: %s\n", name,
                 compiled.status().ToString().c_str());
    return false;
  }
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize %s: %s\n", name,
                 optimized.status().ToString().c_str());
    return false;
  }

  ScriptRow r;
  r.name = name;
  if (!RunPlan(optimized->plan(), machines, 1, &r.t1)) return false;
  if (!RunPlan(optimized->plan(), machines, nthreads, &r.tn)) return false;
  r.identical = SameCounters(r.t1.metrics, r.tn.metrics) &&
                r.t1.metrics.outputs == r.tn.metrics.outputs;
  std::printf("%-5s %9.3fs %12.0f r/s | x%d %9.3fs %12.0f r/s  %9s\n", name,
              r.t1.seconds, r.t1.rows_per_sec(), nthreads, r.tn.seconds,
              r.tn.rows_per_sec(), r.identical ? "identical" : "DIVERGED");
  out->push_back(std::move(r));
  return true;
}

// ---------------------------------------------------------------------------
// JSON.

void WriteExecRunJson(FILE* f, const char* key, const ExecRun& r,
                      int threads) {
  const ExecMetrics& m = r.metrics;
  std::fprintf(f,
               "     \"%s\": {\"threads\": %d, \"seconds\": %.6f, "
               "\"rows_per_sec\": %.1f, "
               "\"extract_rows_per_sec\": %.1f, "
               "\"shuffle_rows_per_sec\": %.1f, "
               "\"output_rows_per_sec\": %.1f, "
               "\"spool_rows_per_sec\": %.1f, "
               "\"rows_extracted\": %lld, \"rows_shuffled\": %lld, "
               "\"rows_spooled\": %lld, \"rows_output\": %lld, "
               "\"spool_executions\": %lld, \"spool_reads\": %lld, "
               "\"spool_cache_hits\": %lld}",
               key, threads, r.seconds, r.rows_per_sec(),
               r.rate(m.rows_extracted), r.rate(m.rows_shuffled),
               r.rate(m.rows_output), r.rate(m.rows_spooled),
               static_cast<long long>(m.rows_extracted),
               static_cast<long long>(m.rows_shuffled),
               static_cast<long long>(m.rows_spooled),
               static_cast<long long>(m.rows_output),
               static_cast<long long>(m.spool_executions),
               static_cast<long long>(m.spool_reads),
               static_cast<long long>(m.spool_cache_hits));
}

void WriteJson(const std::vector<KernelRow>& kernels,
               const std::vector<ScriptRow>& scripts, int nthreads) {
  FILE* f = std::fopen("BENCH_exec.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_exec.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"exec_throughput\",\n");
  std::fprintf(f, "  \"threads\": [1, %d],\n", nthreads);
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& k = kernels[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rows\": %lld, "
                 "\"seconds\": %.6f, \"rows_per_sec\": %.1f, "
                 "\"speedup_vs_map\": %.3f}%s\n",
                 k.name.c_str(), static_cast<long long>(k.rows), k.seconds,
                 k.rows_per_sec, k.speedup,
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"scripts\": [\n");
  for (size_t i = 0; i < scripts.size(); ++i) {
    const ScriptRow& r = scripts[i];
    std::fprintf(f, "    {\"name\": \"%s\",\n", r.name.c_str());
    WriteExecRunJson(f, "serial", r.t1, 1);
    std::fprintf(f, ",\n");
    WriteExecRunJson(f, "parallel", r.tn, nthreads);
    std::fprintf(f, ",\n     \"identical\": %s}%s\n",
                 r.identical ? "true" : "false",
                 i + 1 < scripts.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_exec.json\n");
}

}  // namespace

int main() {
  std::printf("executor kernels (single-threaded; *_map = former std::map "
              "paths, *_table/_move = current)\n");
  const std::vector<Row> agg_input = MakeKernelRows(kAggRows, 200, 200, 1);
  const std::vector<Row> build_input = MakeKernelRows(kBuildRows, 100, 100, 2);
  const std::vector<Row> probe_input = MakeKernelRows(kProbeRows, 100, 100, 3);
  const std::vector<Row> shuffle_input =
      MakeKernelRows(kShuffleRows, 200, 200, 4);
  std::vector<Row> shuffle_mut = shuffle_input;  // consumed by the move body

  KernelRow agg_map = MeasureKernel(
      "agg_map", kAggRows, [&] { return AggMapBody(agg_input); }, nullptr);
  KernelRow agg_table = MeasureKernel(
      "agg_table", kAggRows, [&] { return AggTableBody(agg_input); },
      &agg_map);
  KernelRow join_map = MeasureKernel(
      "join_map", kProbeRows,
      [&] { return JoinMapBody(build_input, probe_input); }, nullptr);
  KernelRow join_table = MeasureKernel(
      "join_table", kProbeRows,
      [&] { return JoinTableBody(build_input, probe_input); }, &join_map);
  KernelRow shuffle_copy = MeasureKernel(
      "shuffle_copy", kShuffleRows,
      [&] { return ShuffleCopyBody(shuffle_input); }, nullptr);
  KernelRow shuffle_move = MeasureKernel(
      "shuffle_move", kShuffleRows, [&] { return ShuffleMoveBody(shuffle_mut); },
      &shuffle_copy);
  std::vector<KernelRow> kernels = {agg_map,    agg_table,    join_map,
                                    join_table, shuffle_copy, shuffle_move};

  int nthreads = DefaultNumThreads();
  if (nthreads < 2) nthreads = 4;  // the identity gate needs real threads

  std::printf("\nscript execution (CSE plan, serial vs %d threads)\n",
              nthreads);
  std::vector<ScriptRow> scripts;
  Catalog catalog = MakeExecutionCatalog(40000);
  bool ok = true;
  ok &= MeasureScript("S1", catalog, kScriptS1, 16, nthreads, &scripts);
  ok &= MeasureScript("S2", catalog, kScriptS2, 16, nthreads, &scripts);
  ok &= MeasureScript("S3", catalog, kScriptS3, 16, nthreads, &scripts);
  ok &= MeasureScript("S4", catalog, kScriptS4, 16, nthreads, &scripts);
  LargeScriptSpec ls1_spec = Ls1Spec();
  ls1_spec.rows_per_file = 20000;
  GeneratedScript ls1 = GenerateLargeScript(ls1_spec);
  ok &= MeasureScript("LS1", ls1.catalog, ls1.text, 16, nthreads, &scripts);
  LargeScriptSpec ls2_spec = Ls2Spec();
  ls2_spec.rows_per_file = 4000;
  GeneratedScript ls2 = GenerateLargeScript(ls2_spec);
  ok &= MeasureScript("LS2", ls2.catalog, ls2.text, 16, nthreads, &scripts);

  WriteJson(kernels, scripts, nthreads);

  for (const ScriptRow& r : scripts) ok &= r.identical;
  if (!ok) std::fprintf(stderr, "exec_throughput: FAILED\n");
  return ok ? 0 : 1;
}
