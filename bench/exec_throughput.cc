// Executor throughput: RowKeyTable vs the former std::map hot paths, and
// end-to-end script execution at 1 and N worker threads.
//
// Two sections:
//   * kernels — single-threaded aggregation / join / shuffle microkernels
//     over synthetic rows, each run twice: with the tree-map structure the
//     executor used before (std::map keyed by materialized
//     std::vector<Value>, per-row copy scatter) and with the current
//     open-addressed RowKeyTable / move-based scatter. Both variants must
//     produce identical results; the speedup column is the point.
//   * scripts — S1–S4 and the LS1/LS2 generators, optimized once in CSE
//     mode, then the same plan executed four ways: batch_size = 1 (the
//     legacy row pipeline), the default batch size serially, the default
//     batch size with N worker threads at morsel granularity, and the same
//     N threads with one whole-partition morsel per partition. Outputs and
//     legacy counters must be bit-identical across all four (exit 1
//     otherwise), so this doubles as a determinism gate; the row-vs-batched
//     pair is the end-to-end payoff of the columnar pipeline
//     (batch_speedup), and the partition-vs-morsel pair isolates the morsel
//     scheduler's overhead/benefit (morsel_speedup).
//
// Writes BENCH_exec.json (rates keyed *_rows_per_sec for tools/bench_diff.py).

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/hash.h"
#include "exec/column_batch.h"
#include "exec/row_key_table.h"
#include "exec/vector_kernels.h"
#include "plan/expr_cse.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

using namespace scx;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Kernels.

struct KernelRow {
  std::string name;
  int64_t rows = 0;
  double seconds = 0;
  double rows_per_sec = 0;
  double speedup = 0;  // vs the matching baseline variant (0 for baselines)
  double checksum = 0;
};

// Rows are {key1, key2, value}: group/join keys are composite, like the
// paper scripts' GROUP BY {A,B,C}. Inputs are generated once, outside the
// timed region.
std::vector<Row> MakeKernelRows(int64_t n, int64_t ndv1, int64_t ndv2,
                                uint64_t seed) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    uint64_t h = Mix64(seed ^ static_cast<uint64_t>(i));
    rows.push_back(
        Row{Value::Int(static_cast<int64_t>(h % static_cast<uint64_t>(ndv1))),
            Value::Int(static_cast<int64_t>((h >> 32) %
                                            static_cast<uint64_t>(ndv2))),
            Value::Int(i % 1000)});
  }
  return rows;
}

KernelRow MeasureKernel(const char* name, int64_t rows,
                        const std::function<double()>& body,
                        const KernelRow* baseline) {
  KernelRow r;
  r.name = name;
  r.rows = rows;
  Clock::time_point start = Clock::now();
  double checksum = body();
  r.checksum = checksum;
  r.seconds = SecondsSince(start);
  r.rows_per_sec = r.seconds > 0 ? static_cast<double>(rows) / r.seconds : 0;
  if (baseline != nullptr && r.seconds > 0) {
    r.speedup = baseline->seconds / r.seconds;
  }
  std::printf("%-14s %10lld rows %9.3fs %12.0f rows/s", name,
              static_cast<long long>(rows), r.seconds, r.rows_per_sec);
  if (baseline != nullptr) std::printf("  %5.2fx", r.speedup);
  std::printf("   (checksum %.0f)\n", checksum);
  return r;
}

constexpr int64_t kAggRows = 400000;
constexpr int64_t kProbeRows = 400000;
constexpr int64_t kBuildRows = 100000;
constexpr int64_t kShuffleRows = 400000;
constexpr int kShuffleDests = 16;
const std::vector<int> kKeyPos = {0, 1};

double AggMapBody(const std::vector<Row>& input) {
  // The executor's former aggregation structure: a tree map keyed by the
  // materialized key vector.
  std::map<std::vector<Value>, std::pair<double, int64_t>> groups;
  for (const Row& r : input) {
    std::vector<Value> key{r[0], r[1]};
    auto& s = groups[std::move(key)];
    s.first += r[2].AsNumeric();
    ++s.second;
  }
  double sum = 0;
  for (const auto& [k, s] : groups) {
    (void)k;
    sum += s.first;
  }
  return sum + static_cast<double>(groups.size());
}

double AggTableBody(const std::vector<Row>& input) {
  RowKeyTable table(input.size());
  std::vector<std::pair<double, int64_t>> states;
  for (const Row& r : input) {
    auto [id, inserted] = table.FindOrInsert(r, kKeyPos);
    if (inserted) states.emplace_back(0.0, 0);
    states[id].first += r[2].AsNumeric();
    ++states[id].second;
  }
  double sum = 0;
  for (const auto& s : states) sum += s.first;
  return sum + static_cast<double>(table.size());
}

double JoinMapBody(const std::vector<Row>& build,
                   const std::vector<Row>& probe) {
  std::map<std::vector<Value>, std::vector<const Row*>> table;
  for (const Row& r : build) table[{r[0], r[1]}].push_back(&r);
  int64_t matches = 0;
  for (const Row& l : probe) {
    auto it = table.find({l[0], l[1]});
    if (it == table.end()) continue;
    matches += static_cast<int64_t>(it->second.size());
  }
  return static_cast<double>(matches);
}

double JoinTableBody(const std::vector<Row>& build,
                     const std::vector<Row>& probe) {
  RowKeyTable table(build.size());
  std::vector<std::vector<const Row*>> rows_by_key;
  for (const Row& r : build) {
    auto [id, inserted] = table.FindOrInsert(r, kKeyPos);
    if (inserted) rows_by_key.emplace_back();
    rows_by_key[id].push_back(&r);
  }
  int64_t matches = 0;
  for (const Row& l : probe) {
    size_t id = table.Find(l, kKeyPos);
    if (id == RowKeyTable::kNotFound) continue;
    matches += static_cast<int64_t>(rows_by_key[id].size());
  }
  return static_cast<double>(matches);
}

const std::vector<int> kAllPos = {0, 1, 2};

/// Batched variant of AggTableBody: the executor's columnar aggregation
/// path — whole-column key hashing, hashed table probes, column-major
/// state updates. Checksum must equal AggTableBody's exactly.
double AggBatchBody(const std::vector<Row>& input, size_t batch_size) {
  RowKeyTable table(input.size());
  std::vector<std::pair<double, int64_t>> states;
  std::vector<uint64_t> hashes;
  std::vector<size_t> ids;
  for (size_t begin = 0; begin < input.size(); begin += batch_size) {
    size_t end = std::min(input.size(), begin + batch_size);
    ColumnBatch batch = BatchFromRows(input, begin, end, 3, kAllPos);
    HashColumns(batch, kKeyPos, &hashes);
    ids.resize(batch.rows);
    for (size_t r = 0; r < batch.rows; ++r) {
      auto [id, inserted] = table.FindOrInsertHashed(
          hashes[r],
          [&](const Row& key) {
            return batch.col(0).CellEquals(r, key[0]) &&
                   batch.col(1).CellEquals(r, key[1]);
          },
          [&] {
            return Row{batch.col(0).ValueAt(r), batch.col(1).ValueAt(r)};
          });
      if (inserted) states.emplace_back(0.0, 0);
      ids[r] = id;
    }
    const int64_t* v = batch.col(2).ints().data();
    for (size_t r = 0; r < batch.rows; ++r) {
      auto& s = states[ids[r]];
      s.first += static_cast<double>(v[r]);
      ++s.second;
    }
  }
  double sum = 0;
  for (const auto& s : states) sum += s.first;
  return sum + static_cast<double>(table.size());
}

/// Batched variant of JoinTableBody: build and probe keys hashed per whole
/// column chunk.
double JoinBatchBody(const std::vector<Row>& build,
                     const std::vector<Row>& probe, size_t batch_size) {
  RowKeyTable table(build.size());
  std::vector<std::vector<const Row*>> rows_by_key;
  std::vector<uint64_t> hashes;
  for (size_t begin = 0; begin < build.size(); begin += batch_size) {
    size_t end = std::min(build.size(), begin + batch_size);
    ColumnBatch batch = BatchFromRows(build, begin, end, 3, kKeyPos);
    HashColumns(batch, kKeyPos, &hashes);
    for (size_t r = 0; r < batch.rows; ++r) {
      auto [id, inserted] = table.FindOrInsertHashed(
          hashes[r],
          [&](const Row& key) {
            return batch.col(0).CellEquals(r, key[0]) &&
                   batch.col(1).CellEquals(r, key[1]);
          },
          [&] {
            return Row{batch.col(0).ValueAt(r), batch.col(1).ValueAt(r)};
          });
      if (inserted) rows_by_key.emplace_back();
      rows_by_key[id].push_back(&build[begin + r]);
    }
  }
  int64_t matches = 0;
  for (size_t begin = 0; begin < probe.size(); begin += batch_size) {
    size_t end = std::min(probe.size(), begin + batch_size);
    ColumnBatch batch = BatchFromRows(probe, begin, end, 3, kKeyPos);
    HashColumns(batch, kKeyPos, &hashes);
    for (size_t i = 0; i < batch.rows; ++i) {
      size_t id = table.FindHashed(hashes[i], [&](const Row& key) {
        return batch.col(0).CellEquals(i, key[0]) &&
               batch.col(1).CellEquals(i, key[1]);
      });
      if (id == RowKeyTable::kNotFound) continue;
      matches += static_cast<int64_t>(rows_by_key[id].size());
    }
  }
  return static_cast<double>(matches);
}

Schema MakeKernelSchema() {
  return Schema({ColumnInfo{1, "k1", "", DataType::kInt64},
                 ColumnInfo{2, "k2", "", DataType::kInt64},
                 ColumnInfo{3, "v", "", DataType::kInt64}});
}

std::vector<BoundPredicate> MakeFilterPreds() {
  BoundPredicate p1;
  p1.lhs = 1;
  p1.op = CompareOp::kLt;
  p1.literal = Value::Int(150);
  BoundPredicate p2;
  p2.lhs = 2;
  p2.op = CompareOp::kGe;
  p2.literal = Value::Int(20);
  return {p1, p2};
}

double FilterRowsBody(const std::vector<Row>& input, const Schema& schema,
                      const std::vector<BoundPredicate>& preds) {
  double sum = 0;
  for (const Row& r : input) {
    bool pass = true;
    for (const BoundPredicate& pred : preds) {
      if (!pred.Evaluate(r, schema)) {
        pass = false;
        break;
      }
    }
    if (pass) sum += static_cast<double>(r[2].as_int());
  }
  return sum;
}

double SelectRowsBody(const std::vector<Row>& input, const Schema& schema,
                      const BoundPredicate& pred) {
  int64_t n = 0;
  for (const Row& r : input) {
    if (pred.Evaluate(r, schema)) ++n;
  }
  return static_cast<double>(n);
}

/// One SelectByPredicate pass over a dense int64 column: the branchless
/// mask-and-append loop the simd-guard markers protect. Run twice — with a
/// predicate nearly every row passes (dense) and one few rows pass
/// (selective) — to show the branchless form's throughput is selectivity-
/// independent, where the branchy form it replaced was not.
double SelectBatchBody(const BatchPartition& part,
                       const BoundPredicate& pred) {
  SelectionVector sel;
  SelectByPredicate(*part.columns[0], nullptr, pred.literal, pred.op,
                    part.rows, /*first=*/true, &sel);
  return static_cast<double>(sel.size());
}

double FilterBatchBody(const BatchPartition& part,
                       const std::vector<BoundPredicate>& preds) {
  // Batch-native operator boundary: the input is already columnar (the
  // producing operator hands over shared columns), the filter only narrows
  // a selection vector, and the consumer reads survivors through it — no
  // row<->column conversion anywhere. This is exactly the executor's
  // whole-partition filter stage.
  SelectionVector sel;
  SelectByPredicate(*part.columns[0], nullptr, preds[0].literal, preds[0].op,
                    part.rows, /*first=*/true, &sel);
  if (!sel.empty()) {
    SelectByPredicate(*part.columns[1], nullptr, preds[1].literal,
                      preds[1].op, part.rows, /*first=*/false, &sel);
  }
  const int64_t* v = part.columns[2]->ints().data();
  double sum = 0;
  for (uint32_t i : sel) sum += static_cast<double>(v[i]);
  return sum;
}

/// Expression-heavy compute stage with deliberate duplication: (a+b)
/// appears in three items (once operand-swapped) and c*c in two, so the
/// CSE schedule computes them once per batch.
std::vector<ComputeItem> MakeExprItems() {
  ScalarExprPtr a = ScalarExpr::Column(1);
  ScalarExprPtr b = ScalarExpr::Column(2);
  ScalarExprPtr c = ScalarExpr::Column(3);
  ScalarExprPtr ab = ScalarExpr::Binary(ScalarExpr::BinOp::kAdd, a, b);
  ScalarExprPtr ba = ScalarExpr::Binary(ScalarExpr::BinOp::kAdd, b, a);
  ScalarExprPtr cc = ScalarExpr::Binary(ScalarExpr::BinOp::kMul, c, c);
  std::vector<ComputeItem> items;
  items.push_back({ScalarExpr::Binary(ScalarExpr::BinOp::kMul, ab, ab), 10,
                   "e0"});
  items.push_back({ScalarExpr::Binary(ScalarExpr::BinOp::kMul, ab, c), 11,
                   "e1"});
  items.push_back({ScalarExpr::Binary(ScalarExpr::BinOp::kAdd, cc, ba), 12,
                   "e2"});
  items.push_back({ScalarExpr::Binary(ScalarExpr::BinOp::kDiv, cc, ab), 13,
                   "e3"});
  return items;
}

double ExprRowsBody(const std::vector<Row>& input, const Schema& schema,
                    const std::vector<ComputeItem>& items) {
  // Per-item accumulators: both variants then add each item's values in
  // global row order, so the float checksums are bit-identical.
  std::vector<double> acc(items.size(), 0.0);
  for (const Row& r : input) {
    for (size_t k = 0; k < items.size(); ++k) {
      acc[k] += items[k].expr->Evaluate(r, schema).AsNumeric();
    }
  }
  double sum = 0;
  for (double a : acc) sum += a;
  return sum;
}

double ExprBatchBody(const std::vector<Row>& input,
                     const std::vector<ComputeItem>& items,
                     size_t batch_size) {
  ExprSchedule sched = BuildExprSchedule(items);
  std::vector<int> step_pos(sched.steps.size(), -1);
  for (size_t s = 0; s < sched.steps.size(); ++s) {
    if (sched.steps[s].kind == ScalarExpr::Kind::kColumn) {
      step_pos[s] = static_cast<int>(sched.steps[s].column) - 1;
    }
  }
  std::vector<double> acc(items.size(), 0.0);
  EvaluatedSchedule ev;
  for (size_t begin = 0; begin < input.size(); begin += batch_size) {
    size_t end = std::min(input.size(), begin + batch_size);
    ColumnBatch batch = BatchFromRows(input, begin, end, 3, kAllPos);
    EvalExprSchedule(sched, batch, step_pos, &ev);
    for (size_t k = 0; k < sched.item_steps.size(); ++k) {
      const ColumnVector& col =
          *ev.cols[static_cast<size_t>(sched.item_steps[k])];
      if (col.rep() == ColumnRep::kInt64) {
        for (int64_t v : col.ints()) acc[k] += static_cast<double>(v);
      } else {
        for (double v : col.doubles()) acc[k] += v;
      }
    }
  }
  double sum = 0;
  for (double a : acc) sum += a;
  return sum;
}

double ShuffleCopyBody(const std::vector<Row>& input) {
  std::vector<std::vector<Row>> buckets(kShuffleDests);
  for (const Row& r : input) {
    buckets[HashRowKey(r, kKeyPos) % kShuffleDests].push_back(r);
  }
  double total = 0;
  for (const auto& b : buckets) total += static_cast<double>(b.size());
  return total;
}

double ShuffleMoveBody(std::vector<Row>& input) {
  std::vector<uint32_t> dest(input.size());
  std::vector<size_t> count(kShuffleDests, 0);
  for (size_t i = 0; i < input.size(); ++i) {
    dest[i] = static_cast<uint32_t>(HashRowKey(input[i], kKeyPos) %
                                    kShuffleDests);
    ++count[dest[i]];
  }
  std::vector<std::vector<Row>> buckets(kShuffleDests);
  for (int d = 0; d < kShuffleDests; ++d) buckets[d].reserve(count[d]);
  for (size_t i = 0; i < input.size(); ++i) {
    buckets[dest[i]].push_back(std::move(input[i]));
  }
  double total = 0;
  for (const auto& b : buckets) total += static_cast<double>(b.size());
  return total;
}

// ---------------------------------------------------------------------------
// Scripts.

struct ExecRun {
  double seconds = 0;
  int64_t processed_rows = 0;  // extracted + shuffled + output
  ExecMetrics metrics;

  double rows_per_sec() const {
    return seconds > 0 ? static_cast<double>(processed_rows) / seconds : 0;
  }
  double rate(int64_t rows) const {
    return seconds > 0 ? static_cast<double>(rows) / seconds : 0;
  }
};

struct ScriptRow {
  std::string name;
  ExecRun row1;  // batch_size = 1: the legacy row-at-a-time pipeline
  ExecRun t1;    // default batch size, serial
  ExecRun tn;    // default batch size, N threads, default morsel size
  ExecRun part;  // N threads, one whole-partition morsel per partition
  bool identical = false;         // t1 vs tn (thread invariance)
  bool batch_identical = false;   // row1 vs t1 (pipeline bit-identity)
  bool morsel_identical = false;  // part vs tn (morsel-size invariance)

  double batch_speedup() const {
    return t1.seconds > 0 ? row1.seconds / t1.seconds : 0;
  }
  double morsel_speedup() const {
    return tn.seconds > 0 ? part.seconds / tn.seconds : 0;
  }
};

bool SameCounters(const ExecMetrics& a, const ExecMetrics& b) {
  return a.rows_extracted == b.rows_extracted &&
         a.rows_shuffled == b.rows_shuffled &&
         a.bytes_shuffled == b.bytes_shuffled &&
         a.bytes_spooled == b.bytes_spooled &&
         a.rows_spooled == b.rows_spooled &&
         a.spool_executions == b.spool_executions &&
         a.spool_reads == b.spool_reads &&
         a.spool_cache_hits == b.spool_cache_hits &&
         a.operator_invocations == b.operator_invocations &&
         a.rows_output == b.rows_output;
}

bool RunPlan(const PhysicalNodePtr& plan, int machines, int threads,
             int batch_size, int morsel_size, ExecRun* out) {
  ClusterConfig cluster;
  cluster.machines = machines;
  cluster.exec_threads = threads;
  cluster.batch_size = batch_size;
  cluster.morsel_size = morsel_size;
  Executor executor(cluster);
  Clock::time_point start = Clock::now();
  auto metrics = executor.Execute(plan);
  out->seconds = SecondsSince(start);
  if (!metrics.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 metrics.status().ToString().c_str());
    return false;
  }
  out->metrics = std::move(metrics.value());
  out->processed_rows = out->metrics.rows_extracted +
                        out->metrics.rows_shuffled +
                        out->metrics.rows_output;
  return true;
}

/// Best-of-three timing: the scripts run in tens of milliseconds, so a
/// single-shot measurement is too noisy for the 10% bench_diff gates.
/// Execution is deterministic, so keeping the fastest run's metrics loses
/// nothing.
bool RunPlanBest(const PhysicalNodePtr& plan, int machines, int threads,
                 int batch_size, int morsel_size, ExecRun* out) {
  for (int rep = 0; rep < 3; ++rep) {
    ExecRun r;
    if (!RunPlan(plan, machines, threads, batch_size, morsel_size, &r)) {
      return false;
    }
    if (rep == 0 || r.seconds < out->seconds) *out = std::move(r);
  }
  return true;
}

bool MeasureScript(const char* name, const Catalog& catalog,
                   const std::string& text, int machines, int nthreads,
                   std::vector<ScriptRow>* out) {
  OptimizerConfig config;
  config.num_threads = 1;
  config.cluster.machines = machines;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile %s: %s\n", name,
                 compiled.status().ToString().c_str());
    return false;
  }
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize %s: %s\n", name,
                 optimized.status().ToString().c_str());
    return false;
  }

  ScriptRow r;
  r.name = name;
  const int batch = DefaultBatchSize();
  // Morsel sizes: 0 = default (SCX_MORSEL_SIZE env / DefaultMorselSize),
  // 1<<30 = effectively one morsel per partition.
  if (!RunPlanBest(optimized->plan(), machines, 1, 1, 0, &r.row1)) {
    return false;
  }
  if (!RunPlanBest(optimized->plan(), machines, 1, batch, 0, &r.t1)) {
    return false;
  }
  if (!RunPlanBest(optimized->plan(), machines, nthreads, batch, 0, &r.tn)) {
    return false;
  }
  if (!RunPlanBest(optimized->plan(), machines, nthreads, batch, 1 << 30,
               &r.part)) {
    return false;
  }
  r.identical = SameCounters(r.t1.metrics, r.tn.metrics) &&
                r.t1.metrics.outputs == r.tn.metrics.outputs;
  // Pipeline bit-identity gate: the batched pipeline must reproduce the
  // legacy row path's outputs and legacy counters exactly.
  r.batch_identical = SameCounters(r.row1.metrics, r.t1.metrics) &&
                      r.row1.metrics.outputs == r.t1.metrics.outputs;
  // Morsel-size invariance gate: splitting partitions into morsels must not
  // change outputs or legacy counters vs whole-partition scheduling.
  r.morsel_identical = SameCounters(r.part.metrics, r.tn.metrics) &&
                       r.part.metrics.outputs == r.tn.metrics.outputs;
  std::printf(
      "%-5s row %8.3fs | batch %8.3fs %12.0f r/s  %5.2fx | x%d %8.3fs "
      "%12.0f r/s  %5.2fx vs part  %9s %9s %9s\n",
      name, r.row1.seconds, r.t1.seconds, r.t1.rows_per_sec(),
      r.batch_speedup(), nthreads, r.tn.seconds, r.tn.rows_per_sec(),
      r.morsel_speedup(),
      r.identical ? "identical" : "DIVERGED",
      r.batch_identical ? "bit-exact" : "BATCH-DIVERGED",
      r.morsel_identical ? "morsel-ok" : "MORSEL-DIVERGED");
  out->push_back(std::move(r));
  return true;
}

// ---------------------------------------------------------------------------
// JSON.

void WriteExecRunJson(FILE* f, const char* key, const ExecRun& r,
                      int threads) {
  const ExecMetrics& m = r.metrics;
  std::fprintf(f,
               "     \"%s\": {\"threads\": %d, \"seconds\": %.6f, "
               "\"rows_per_sec\": %.1f, "
               "\"extract_rows_per_sec\": %.1f, "
               "\"shuffle_rows_per_sec\": %.1f, "
               "\"output_rows_per_sec\": %.1f, "
               "\"spool_rows_per_sec\": %.1f, "
               "\"rows_extracted\": %lld, \"rows_shuffled\": %lld, "
               "\"rows_spooled\": %lld, \"rows_output\": %lld, "
               "\"spool_executions\": %lld, \"spool_reads\": %lld, "
               "\"spool_cache_hits\": %lld}",
               key, threads, r.seconds, r.rows_per_sec(),
               r.rate(m.rows_extracted), r.rate(m.rows_shuffled),
               r.rate(m.rows_output), r.rate(m.rows_spooled),
               static_cast<long long>(m.rows_extracted),
               static_cast<long long>(m.rows_shuffled),
               static_cast<long long>(m.rows_spooled),
               static_cast<long long>(m.rows_output),
               static_cast<long long>(m.spool_executions),
               static_cast<long long>(m.spool_reads),
               static_cast<long long>(m.spool_cache_hits));
}

void WriteJson(const std::vector<KernelRow>& kernels,
               const std::vector<ScriptRow>& scripts, int nthreads) {
  FILE* f = std::fopen("BENCH_exec.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_exec.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"exec_throughput\",\n");
  std::fprintf(f, "  \"threads\": [1, %d],\n", nthreads);
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& k = kernels[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rows\": %lld, "
                 "\"seconds\": %.6f, \"rows_per_sec\": %.1f, "
                 "\"speedup_vs_map\": %.3f}%s\n",
                 k.name.c_str(), static_cast<long long>(k.rows), k.seconds,
                 k.rows_per_sec, k.speedup,
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"scripts\": [\n");
  for (size_t i = 0; i < scripts.size(); ++i) {
    const ScriptRow& r = scripts[i];
    std::fprintf(f, "    {\"name\": \"%s\",\n", r.name.c_str());
    WriteExecRunJson(f, "row", r.row1, 1);
    std::fprintf(f, ",\n");
    WriteExecRunJson(f, "serial", r.t1, 1);
    std::fprintf(f, ",\n");
    WriteExecRunJson(f, "parallel", r.tn, nthreads);
    std::fprintf(f, ",\n");
    WriteExecRunJson(f, "partition", r.part, nthreads);
    std::fprintf(f, ",\n     \"batch_speedup\": %.3f,"
                 " \"batch_identical\": %s,"
                 " \"morsel_speedup\": %.3f,"
                 " \"morsel_identical\": %s,"
                 " \"identical\": %s}%s\n",
                 r.batch_speedup(), r.batch_identical ? "true" : "false",
                 r.morsel_speedup(), r.morsel_identical ? "true" : "false",
                 r.identical ? "true" : "false",
                 i + 1 < scripts.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_exec.json\n");
}

}  // namespace

int main() {
  std::printf("executor kernels (single-threaded; *_map = former std::map "
              "paths, *_table/_move = current)\n");
  const std::vector<Row> agg_input = MakeKernelRows(kAggRows, 200, 200, 1);
  const std::vector<Row> build_input = MakeKernelRows(kBuildRows, 100, 100, 2);
  const std::vector<Row> probe_input = MakeKernelRows(kProbeRows, 100, 100, 3);
  const std::vector<Row> shuffle_input =
      MakeKernelRows(kShuffleRows, 200, 200, 4);
  std::vector<Row> shuffle_mut = shuffle_input;  // consumed by the move body

  KernelRow agg_map = MeasureKernel(
      "agg_map", kAggRows, [&] { return AggMapBody(agg_input); }, nullptr);
  KernelRow agg_table = MeasureKernel(
      "agg_table", kAggRows, [&] { return AggTableBody(agg_input); },
      &agg_map);
  KernelRow join_map = MeasureKernel(
      "join_map", kProbeRows,
      [&] { return JoinMapBody(build_input, probe_input); }, nullptr);
  KernelRow join_table = MeasureKernel(
      "join_table", kProbeRows,
      [&] { return JoinTableBody(build_input, probe_input); }, &join_map);
  KernelRow shuffle_copy = MeasureKernel(
      "shuffle_copy", kShuffleRows,
      [&] { return ShuffleCopyBody(shuffle_input); }, nullptr);
  KernelRow shuffle_move = MeasureKernel(
      "shuffle_move", kShuffleRows, [&] { return ShuffleMoveBody(shuffle_mut); },
      &shuffle_copy);

  std::printf("\nbatched kernels (vs the row-at-a-time variants; "
              "batch=%d)\n", DefaultBatchSize());
  const size_t kBatch = static_cast<size_t>(DefaultBatchSize());
  const Schema kernel_schema = MakeKernelSchema();
  const std::vector<BoundPredicate> filter_preds = MakeFilterPreds();
  const std::vector<ComputeItem> expr_items = MakeExprItems();
  KernelRow agg_batch = MeasureKernel(
      "agg_batch", kAggRows, [&] { return AggBatchBody(agg_input, kBatch); },
      &agg_table);
  KernelRow join_batch = MeasureKernel(
      "join_batch", kProbeRows,
      [&] { return JoinBatchBody(build_input, probe_input, kBatch); },
      &join_table);
  KernelRow filter_rows = MeasureKernel(
      "filter_rows", kAggRows,
      [&] { return FilterRowsBody(agg_input, kernel_schema, filter_preds); },
      nullptr);
  // The columns exist before the filter runs in the batch-native executor
  // (its producer made them), so their construction is outside the timer.
  const BatchPartition filter_part = PartitionFromRows(agg_input, 3);
  KernelRow filter_batch = MeasureKernel(
      "filter_batch", kAggRows,
      [&] { return FilterBatchBody(filter_part, filter_preds); },
      &filter_rows);
  KernelRow expr_rows = MeasureKernel(
      "expr_rows", kAggRows,
      [&] { return ExprRowsBody(agg_input, kernel_schema, expr_items); },
      nullptr);
  KernelRow expr_batch = MeasureKernel(
      "expr_batch", kAggRows,
      [&] { return ExprBatchBody(agg_input, expr_items, kBatch); },
      &expr_rows);

  // Dense vs selective single-predicate selection over one int64 column
  // (k1 is uniform in [0, 200), so < 190 passes ~95% and < 10 passes ~5%).
  BoundPredicate dense_pred;
  dense_pred.lhs = 1;
  dense_pred.op = CompareOp::kLt;
  dense_pred.literal = Value::Int(190);
  BoundPredicate selective_pred = dense_pred;
  selective_pred.literal = Value::Int(10);
  KernelRow sel_dense_rows = MeasureKernel(
      "select_dense_rows", kAggRows,
      [&] { return SelectRowsBody(agg_input, kernel_schema, dense_pred); },
      nullptr);
  KernelRow sel_dense = MeasureKernel(
      "select_dense_int64", kAggRows,
      [&] { return SelectBatchBody(filter_part, dense_pred); },
      &sel_dense_rows);
  KernelRow sel_selective_rows = MeasureKernel(
      "select_selective_rows", kAggRows,
      [&] {
        return SelectRowsBody(agg_input, kernel_schema, selective_pred);
      },
      nullptr);
  KernelRow sel_selective = MeasureKernel(
      "select_selective_int64", kAggRows,
      [&] { return SelectBatchBody(filter_part, selective_pred); },
      &sel_selective_rows);

  bool kernels_ok = true;
  const std::pair<const KernelRow*, const KernelRow*> pairs[] = {
      {&agg_table, &agg_batch},
      {&join_table, &join_batch},
      {&filter_rows, &filter_batch},
      {&expr_rows, &expr_batch},
      {&sel_dense_rows, &sel_dense},
      {&sel_selective_rows, &sel_selective}};
  for (const auto& [row_variant, batch_variant] : pairs) {
    if (row_variant->checksum != batch_variant->checksum) {
      std::fprintf(stderr, "%s checksum %.6f != %s checksum %.6f\n",
                   row_variant->name.c_str(), row_variant->checksum,
                   batch_variant->name.c_str(), batch_variant->checksum);
      kernels_ok = false;
    }
  }

  std::vector<KernelRow> kernels = {
      agg_map,      agg_table,    join_map,   join_table,
      shuffle_copy, shuffle_move, agg_batch,  join_batch,
      filter_rows,  filter_batch, expr_rows,  expr_batch};

  int nthreads = DefaultNumThreads();
  if (nthreads < 2) nthreads = 4;  // the identity gate needs real threads

  std::printf("\nscript execution (CSE plan; row = batch_size 1, batch = "
              "batch_size %d serial, x%d = %d threads)\n",
              DefaultBatchSize(), nthreads, nthreads);
  std::vector<ScriptRow> scripts;
  // 400k rows over 16 machines = 25k-row partitions: big enough that the
  // default morsel size (16384) splits every partition, so the
  // morsel-vs-partition gate compares genuinely different schedules, and
  // big enough that best-of-three timings are stable against the 10%
  // bench_diff thresholds.
  Catalog catalog = MakeExecutionCatalog(400000);
  bool ok = true;
  ok &= MeasureScript("S1", catalog, kScriptS1, 16, nthreads, &scripts);
  ok &= MeasureScript("S2", catalog, kScriptS2, 16, nthreads, &scripts);
  ok &= MeasureScript("S3", catalog, kScriptS3, 16, nthreads, &scripts);
  ok &= MeasureScript("S4", catalog, kScriptS4, 16, nthreads, &scripts);
  LargeScriptSpec ls1_spec = Ls1Spec();
  ls1_spec.rows_per_file = 20000;
  GeneratedScript ls1 = GenerateLargeScript(ls1_spec);
  ok &= MeasureScript("LS1", ls1.catalog, ls1.text, 16, nthreads, &scripts);
  LargeScriptSpec ls2_spec = Ls2Spec();
  ls2_spec.rows_per_file = 4000;
  GeneratedScript ls2 = GenerateLargeScript(ls2_spec);
  ok &= MeasureScript("LS2", ls2.catalog, ls2.text, 16, nthreads, &scripts);

  WriteJson(kernels, scripts, nthreads);

  ok &= kernels_ok;
  for (const ScriptRow& r : scripts) {
    ok &= r.identical && r.batch_identical && r.morsel_identical;
  }
  if (!ok) std::fprintf(stderr, "exec_throughput: FAILED\n");
  return ok ? 0 : 1;
}
