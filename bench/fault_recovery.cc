// Fault-injected recovery: what the hostile-cluster machinery costs.
//
// Per generated script (skewed keys, alpha = 1.2), three arms over the same
// compiled-and-optimized CSE plan, each timed best-of-K:
//   * clean — no FaultPlan; the pre-PR execution path, byte for byte;
//   * armed — an Enabled() plan that injects nothing (straggler_prob = 1,
//     straggler_factor = 1, failure_prob = 0): every operator pass pays the
//     FailsAt() probe and the makespan bookkeeping but no partition is ever
//     lost. This arm prices the always-on cost of carrying the machinery;
//   * faulty — a seeded probabilistic plan (prob 0.05, cap 4, stragglers
//     0.25 x 8) that kills partitions mid-run and recovers them from
//     surviving spools or by recomputation.
//
// Both non-clean arms must reproduce the clean arm's outputs and legacy
// counters exactly (the tentpole's bit-identity contract,
// docs/architecture.md §17); any divergence exits 1. Writes BENCH_fault.json
// for tools/bench_diff.py --faulty-vs-clean, whose gate requires identity
// everywhere, armed-arm overhead <= 2%, and at least one injected failure
// across the sweep (so the faulty arm really exercises recovery).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/engine.h"
#include "testing/script_gen.h"

namespace {

using namespace scx;

using Clock = std::chrono::steady_clock;

constexpr int kScripts = 6;
constexpr uint64_t kFirstSeed = 7100;
constexpr int kReps = 5;  // best-of-K timing

OptimizerConfig BenchConfig() {
  OptimizerConfig config;
  // One worker, no optimization budget: arms differ only in the fault plan,
  // so output and counter comparisons are exact, not statistical.
  config.num_threads = 1;
  config.cluster.exec_threads = 1;
  config.budget_seconds = 1e9;
  return config;
}

FaultPlan ArmedInertPlan() {
  FaultPlan fp;
  fp.seed = 1;
  fp.straggler_prob = 1.0;   // Enabled(), but...
  fp.straggler_factor = 1.0; // ...every "straggler" runs at normal speed,
  return fp;                 // and failure_prob = 0 injects nothing.
}

FaultPlan FaultyPlan(uint64_t seed) {
  FaultPlan fp;
  fp.seed = seed;
  fp.failure_prob = 0.05;
  fp.max_failures = 4;
  fp.straggler_prob = 0.25;
  fp.straggler_factor = 8.0;
  return fp;
}

struct ArmResult {
  double seconds = 0;  // best (min) of kReps
  int64_t rows_extracted = 0;
  bool identical = true;  // outputs + legacy counters match the clean arm
  // Fault family (zero on the clean and armed arms).
  int64_t failures_injected = 0;
  int64_t partitions_recovered = 0;
  int64_t rows_recomputed = 0;
  int64_t recovery_spool_hits = 0;
  int64_t recovery_bytes_moved = 0;

  double rows_per_sec() const {
    return seconds > 0 ? static_cast<double>(rows_extracted) / seconds : 0;
  }
};

struct ScriptRow {
  std::string name;
  ArmResult clean;
  ArmResult armed;
  ArmResult faulty;
};

// The legacy counters the bit-identity contract covers: everything the
// pre-PR executor reported. Fault-family counters are deliberately absent.
std::vector<int64_t> LegacyCounters(const ExecMetrics& m) {
  return {m.rows_extracted,    m.bytes_extracted,  m.bytes_shuffled,
          m.bytes_spooled,     m.spool_executions, m.spool_reads,
          m.operator_invocations, m.batches_evaluated, m.exprs_deduped,
          m.morsels_evaluated};
}

bool RunArm(const Catalog& catalog, const std::string& script,
            const FaultPlan& fault, const char* label,
            const ExecMetrics& clean_baseline, ArmResult* out) {
  OptimizerConfig config = BenchConfig();
  config.cluster.fault_plan = fault;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(script);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s: compile: %s\n", label,
                 compiled.status().ToString().c_str());
    return false;
  }
  auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s: optimize: %s\n", label,
                 optimized.status().ToString().c_str());
    return false;
  }

  ExecMetrics last;
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = Clock::now();
    auto metrics = engine.Execute(*optimized);
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!metrics.ok()) {
      std::fprintf(stderr, "%s: execute: %s\n", label,
                   metrics.status().ToString().c_str());
      return false;
    }
    if (rep == 0 || secs < best) best = secs;
    last = *metrics;
  }

  out->seconds = best;
  out->rows_extracted = last.rows_extracted;
  out->failures_injected = last.machine_failures_injected;
  out->partitions_recovered = last.partitions_recovered;
  out->rows_recomputed = last.rows_recomputed;
  out->recovery_spool_hits = last.recovery_spool_hits;
  out->recovery_bytes_moved = last.recovery_bytes_moved;
  out->identical = last.outputs == clean_baseline.outputs &&
                   LegacyCounters(last) == LegacyCounters(clean_baseline);
  return true;
}

bool RunScript(uint64_t seed, std::vector<ScriptRow>* out) {
  ScriptGenOptions gen;
  gen.key_skew_alpha = 1.2;
  GeneratedCase generated = GenerateScript(seed, gen);

  ScriptRow row;
  row.name = "seed" + std::to_string(seed);

  // Clean arm first: its metrics are the identity baseline.
  ExecMetrics clean_metrics;
  {
    OptimizerConfig config = BenchConfig();
    Engine engine(generated.catalog, config);
    auto compiled = engine.Compile(generated.script);
    if (!compiled.ok()) {
      std::fprintf(stderr, "%s: compile: %s\n", row.name.c_str(),
                   compiled.status().ToString().c_str());
      return false;
    }
    auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
    if (!optimized.ok()) {
      std::fprintf(stderr, "%s: optimize: %s\n", row.name.c_str(),
                   optimized.status().ToString().c_str());
      return false;
    }
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = Clock::now();
      auto metrics = engine.Execute(*optimized);
      double secs = std::chrono::duration<double>(Clock::now() - t0).count();
      if (!metrics.ok()) {
        std::fprintf(stderr, "%s: clean execute: %s\n", row.name.c_str(),
                     metrics.status().ToString().c_str());
        return false;
      }
      if (rep == 0 || secs < row.clean.seconds) row.clean.seconds = secs;
      clean_metrics = *metrics;
    }
    row.clean.rows_extracted = clean_metrics.rows_extracted;
  }

  FaultPlan armed = ArmedInertPlan();
  FaultPlan faulty = FaultyPlan(seed);
  if (!RunArm(generated.catalog, generated.script, armed,
              (row.name + "/armed").c_str(), clean_metrics, &row.armed) ||
      !RunArm(generated.catalog, generated.script, faulty,
              (row.name + "/faulty").c_str(), clean_metrics, &row.faulty)) {
    return false;
  }
  bool inert_stayed_inert = row.armed.failures_injected == 0;

  bool ok = row.armed.identical && row.faulty.identical && inert_stayed_inert;
  double overhead =
      row.clean.seconds > 0
          ? row.armed.seconds / row.clean.seconds - 1.0
          : 0.0;
  std::printf("%-9s clean %8.2f ms  armed %8.2f ms (%+5.1f%%)  faulty "
              "%8.2f ms  %lld killed %lld spool-served %lld recomputed  "
              "%s%s\n",
              row.name.c_str(), row.clean.seconds * 1e3,
              row.armed.seconds * 1e3, overhead * 100,
              row.faulty.seconds * 1e3,
              static_cast<long long>(row.faulty.failures_injected),
              static_cast<long long>(row.faulty.recovery_spool_hits),
              static_cast<long long>(row.faulty.rows_recomputed),
              row.armed.identical && row.faulty.identical ? "identical"
                                                          : "DIVERGED",
              inert_stayed_inert ? "" : "  INERT-PLAN-FIRED");
  out->push_back(std::move(row));
  return ok;
}

void WriteArmJson(FILE* f, const char* key, const ArmResult& a,
                  bool fault_fields) {
  std::fprintf(f,
               "     \"%s\": {\"seconds\": %.6f, \"rows_per_sec\": %.1f, "
               "\"rows_extracted\": %lld, \"identical\": %s",
               key, a.seconds, a.rows_per_sec(),
               static_cast<long long>(a.rows_extracted),
               a.identical ? "true" : "false");
  if (fault_fields) {
    std::fprintf(f,
                 ",\n      \"failures_injected\": %lld, "
                 "\"partitions_recovered\": %lld, \"rows_recomputed\": %lld, "
                 "\"recovery_spool_hits\": %lld, \"recovery_bytes_moved\": "
                 "%lld",
                 static_cast<long long>(a.failures_injected),
                 static_cast<long long>(a.partitions_recovered),
                 static_cast<long long>(a.rows_recomputed),
                 static_cast<long long>(a.recovery_spool_hits),
                 static_cast<long long>(a.recovery_bytes_moved));
  }
  std::fprintf(f, "}");
}

void WriteJson(const std::vector<ScriptRow>& rows) {
  FILE* f = std::fopen("BENCH_fault.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_recovery\",\n  \"scripts\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScriptRow& r = rows[i];
    std::fprintf(f, "    {\"name\": \"%s\",\n", r.name.c_str());
    WriteArmJson(f, "clean", r.clean, false);
    std::fprintf(f, ",\n");
    WriteArmJson(f, "armed", r.armed, true);
    std::fprintf(f, ",\n");
    WriteArmJson(f, "faulty", r.faulty, true);
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_fault.json\n");
}

}  // namespace

int main() {
  std::printf("fault recovery: clean vs armed-but-inert vs fault-injected "
              "runs of the same plan\n");
  std::vector<ScriptRow> rows;
  bool ok = true;
  for (int i = 0; i < kScripts; ++i) {
    ok = RunScript(kFirstSeed + i, &rows) && ok;
  }
  WriteJson(rows);
  int64_t total_failures = 0;
  for (const ScriptRow& r : rows) total_failures += r.faulty.failures_injected;
  if (total_failures == 0) {
    std::fprintf(stderr, "FAIL: the faulty arm never injected a failure — "
                         "the sweep proved nothing about recovery\n");
    ok = false;
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: a fault-armed run diverged from its clean "
                         "run (or the sweep was inert)\n");
    return 1;
  }
  return 0;
}
