// Beyond the paper (whose evaluation is estimated-cost only): executes both
// plans for every evaluation script on the simulated cluster and reports
// measured work — rows extracted, bytes shuffled, spool traffic — plus an
// output-equality check between the conventional and CSE plans.

#include <cstdio>

#include "api/engine.h"
#include "workload/paper_scripts.h"

int main() {
  using namespace scx;
  OptimizerConfig config;
  config.cluster.machines = 16;
  Engine engine(MakeExecutionCatalog(40000), config);

  std::printf(
      "Simulated execution (16 machines, 40k-row inputs): conventional vs "
      "CSE plans\n");
  std::printf("%-4s %10s %10s %12s %12s %8s %8s %7s\n", "", "rows conv",
              "rows cse", "shuffle conv", "shuffle cse", "spooled", "equal",
              "saving");

  struct S {
    const char* name;
    const char* text;
  } scripts[] = {{"S1", kScriptS1},
                 {"S2", kScriptS2},
                 {"S3", kScriptS3},
                 {"S4", kScriptS4}};
  for (const S& s : scripts) {
    auto c = engine.Compare(s.text);
    if (!c.ok()) {
      std::fprintf(stderr, "%s: %s\n", s.name, c.status().ToString().c_str());
      return 1;
    }
    auto conv = engine.Execute(c->conventional);
    auto cse = engine.Execute(c->cse);
    if (!conv.ok() || !cse.ok()) {
      std::fprintf(stderr, "%s: execution failed: %s %s\n", s.name,
                   conv.status().ToString().c_str(),
                   cse.status().ToString().c_str());
      return 1;
    }
    double saving =
        1.0 - static_cast<double>(cse->bytes_shuffled) /
                  static_cast<double>(conv->bytes_shuffled);
    std::printf("%-4s %10lld %10lld %12lld %12lld %8lld %8s %6.0f%%\n",
                s.name, static_cast<long long>(conv->rows_extracted),
                static_cast<long long>(cse->rows_extracted),
                static_cast<long long>(conv->bytes_shuffled),
                static_cast<long long>(cse->bytes_shuffled),
                static_cast<long long>(cse->bytes_spooled),
                SameOutputs(*conv, *cse) ? "yes" : "NO!", saving * 100.0);
  }
  return 0;
}
