// Reproduces the structural statistics of the paper's Figure 6: for every
// evaluation script, the number of operators in the initial operator DAG,
// the number of shared groups found by Algorithm 1, and the consumer count
// of each shared group.

#include <cstdio>
#include <map>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

void Report(const char* name, scx::Engine& engine, const std::string& text,
            const char* paper_note) {
  using namespace scx;
  auto compiled = engine.Compile(text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, compiled.status().ToString().c_str());
    return;
  }
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!conv.ok() || !cse.ok()) {
    std::fprintf(stderr, "%s: optimize failed\n", name);
    return;
  }
  const SharedInfo* info = cse->optimizer->shared_info();
  std::map<size_t, int> by_consumers;
  if (info != nullptr) {
    for (GroupId s : info->shared_groups()) {
      ++by_consumers[info->ConsumersOf(s).size()];
    }
  }
  std::string consumers;
  for (const auto& [n, count] : by_consumers) {
    consumers += std::to_string(count) + "x" + std::to_string(n) + "-cons ";
  }
  std::printf("%-5s %12d %13d   %-22s %s\n", name,
              conv->result.diagnostics.reachable_groups,
              cse->result.diagnostics.num_shared_groups,
              consumers.empty() ? "-" : consumers.c_str(), paper_note);
}

}  // namespace

int main() {
  using namespace scx;
  std::printf("Figure 6 — evaluation scripts, structural statistics\n");
  std::printf("%-5s %12s %13s   %-22s %s\n", "name", "operators",
              "shared groups", "consumers", "paper");
  Engine engine(MakePaperCatalog());
  Report("S1", engine, kScriptS1, "1 shared, 2 consumers");
  Report("S2", engine, kScriptS2, "1 shared, 3 consumers");
  Report("S3", engine, kScriptS3, "2 shared, different LCAs");
  Report("S4", engine, kScriptS4, "2 non-independent shared, same LCA");

  for (auto [name, spec, note] :
       {std::tuple{"LS1", Ls1Spec(), "101 ops, 4 shared (3x2 + 1x3)"},
        std::tuple{"LS2", Ls2Spec(), "1034 ops, 17 shared (15x2+1x4+1x5)"}}) {
    GeneratedScript gen = GenerateLargeScript(spec);
    Engine ls_engine(gen.catalog);
    Report(name, ls_engine, gen.text, note);
  }
  return 0;
}
