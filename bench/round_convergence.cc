// Phase-2 convergence: best-plan cost as a function of rounds executed,
// with and without the Sec. VIII-B/C rankings. With rankings on, the curve
// drops early — that is why the paper's optimization budget works: stopping
// at an intermediate round keeps a near-optimal plan.

#include <cstdio>
#include <map>

#include "api/engine.h"
#include "workload/large_scripts.h"

namespace {

std::vector<double> ConvergenceCurve(const scx::Catalog& catalog,
                                     const std::string& text, bool rank) {
  using namespace scx;
  OptimizerConfig config;
  config.rank_shared_groups = rank;
  config.rank_properties = rank;
  Engine engine(catalog, config);
  auto compiled = engine.Compile(text);
  if (!compiled.ok()) return {};
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!cse.ok()) return {};
  // Combine per-LCA best-so-far traces into a global curve: after round k,
  // the achievable plan cost is phase-1 cost with every finished LCA's
  // improvement applied; approximate with the per-round global best-so-far
  // sum over LCAs seen so far.
  std::map<GroupId, double> best_per_lca;
  std::vector<double> curve;
  for (const RoundTraceEntry& e : cse->result.diagnostics.round_trace) {
    best_per_lca[e.lca] = e.best_so_far;
    double total = 0;
    for (const auto& [lca, cost] : best_per_lca) {
      (void)lca;
      total = std::max(total, cost);  // root LCA dominates the final cost
    }
    curve.push_back(best_per_lca.rbegin()->second);
  }
  // Normalize to the final best.
  return curve;
}

}  // namespace

int main() {
  using namespace scx;
  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  std::vector<double> ranked = ConvergenceCurve(ls1.catalog, ls1.text, true);
  std::vector<double> plain = ConvergenceCurve(ls1.catalog, ls1.text, false);
  if (ranked.empty() || plain.empty()) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }
  double final_ranked = ranked.back();
  std::printf(
      "LS1 phase-2 convergence (best-so-far cost at the last active LCA,\n"
      "normalized to the final best):\n\n");
  std::printf("%8s %14s %14s\n", "round", "ranked", "unranked");
  size_t n = std::max(ranked.size(), plain.size());
  for (size_t i = 0; i < n; i += (i < 10 ? 1 : 5)) {
    std::printf("%8zu %13.2fx %13.2fx\n", i + 1,
                i < ranked.size() ? ranked[i] / final_ranked : 1.0,
                i < plain.size() ? plain[i] / final_ranked : 1.0);
  }
  std::printf("\nrounds to reach within 5%% of the final best: ");
  auto rounds_to = [&](const std::vector<double>& curve) {
    for (size_t i = 0; i < curve.size(); ++i) {
      if (curve[i] <= final_ranked * 1.05) return i + 1;
    }
    return curve.size();
  };
  std::printf("ranked=%zu unranked=%zu (of %zu total)\n", rounds_to(ranked),
              rounds_to(plain), n);
  return 0;
}
