// Cross-query CSE payoff: batched submission vs running each script alone.
//
// Grid: batch size K in {2, 8, 32} x library overlap in {0%, 30%, 70%}.
// Each cell generates one deterministic batch (testing/script_gen.h's
// GenerateScriptBatch) whose "library" modules are textually identical in
// ceil(K * overlap) member scripts, then runs it two ways:
//   * sequential — a fresh Engine per cell, each script compiled, optimized
//     in CSE mode and executed on its own, costs and data movement summed;
//   * batched — one Engine::SubmitBatch over the same scripts, so the
//     fingerprint merge unifies the library sub-DAGs across scripts and the
//     shared spools amortize over every consumer in the batch.
//
// "Bytes moved" is bytes_extracted + bytes_shuffled + bytes_spooled — the
// run's total data movement. The batched arm must never move more than the
// sequential arm (the batch-vs-sequential oracle's theorem, given the
// generator's >= 2 in-script consumers per library module), and per-script
// outputs must match running alone up to row order within unordered sinks
// (merged optimization may legally pick different exchange shapes). Either
// violation exits 1, so this doubles as a correctness gate.
//
// Writes BENCH_multiquery.json (rates keyed *_rows_per_sec for
// tools/bench_diff.py; the --batched-vs-sequential gate checks bytes,
// output identity, and the cost ratio at high overlap).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/engine.h"
#include "testing/script_gen.h"

namespace {

using namespace scx;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t BytesMoved(const ExecMetrics& m) {
  return m.bytes_extracted + m.bytes_shuffled + m.bytes_spooled;
}

// Row order within unordered sinks is plan-dependent (sharing changes
// exchange shapes), so script outputs are compared row-sorted per path.
std::map<std::string, std::vector<Row>> Canonical(
    const std::map<std::string, std::vector<Row>>& outputs) {
  std::map<std::string, std::vector<Row>> canon = outputs;
  for (auto& [path, rows] : canon) std::sort(rows.begin(), rows.end());
  return canon;
}

struct ArmResult {
  double seconds = 0;
  double cost = 0;
  int64_t rows_extracted = 0;
  int64_t bytes_moved = 0;
  int64_t spool_executions = 0;
  int64_t cross_query_spool_hits = 0;

  double rows_per_sec() const {
    return seconds > 0 ? static_cast<double>(rows_extracted) / seconds : 0;
  }
};

struct CellRow {
  std::string name;
  int k = 0;
  double overlap = 0;
  ArmResult seq;
  ArmResult batch;
  bool outputs_identical = false;

  double cost_ratio() const {
    return batch.cost > 0 ? seq.cost / batch.cost : 0;
  }
};

OptimizerConfig BenchConfig() {
  OptimizerConfig config;
  // One worker, no optimization budget: every run of a cell is
  // deterministic, so the identity check is exact, not statistical.
  config.num_threads = 1;
  config.cluster.exec_threads = 1;
  config.budget_seconds = 1e9;
  return config;
}

bool RunCell(int k, double overlap, uint64_t seed, std::vector<CellRow>* out) {
  BatchGenOptions gen;
  gen.min_scripts = k;
  gen.max_scripts = k;
  gen.overlap = overlap;
  // Big library inputs, small private ones: the shared work dominates, so
  // the cell measures the sharing machinery rather than generator noise.
  gen.library_rows = 20000;
  gen.min_rows = 400;
  gen.max_rows = 1200;
  GeneratedBatch batch = GenerateScriptBatch(seed, gen);

  CellRow row;
  row.k = k;
  row.overlap = overlap;
  row.name = "k" + std::to_string(k) + "_o" +
             std::to_string(static_cast<int>(overlap * 100));

  // Sequential arm: each script alone, nothing shared between them.
  std::vector<std::map<std::string, std::vector<Row>>> seq_outputs;
  {
    Engine engine(batch.catalog, BenchConfig());
    auto t0 = Clock::now();
    for (const std::string& script : batch.scripts) {
      auto compiled = engine.Compile(script);
      if (!compiled.ok()) {
        std::fprintf(stderr, "%s: sequential compile: %s\n",
                     row.name.c_str(),
                     compiled.status().ToString().c_str());
        return false;
      }
      auto optimized = engine.Optimize(*compiled, OptimizerMode::kCse);
      if (!optimized.ok()) {
        std::fprintf(stderr, "%s: sequential optimize: %s\n",
                     row.name.c_str(),
                     optimized.status().ToString().c_str());
        return false;
      }
      auto metrics = engine.Execute(*optimized);
      if (!metrics.ok()) {
        std::fprintf(stderr, "%s: sequential execute: %s\n",
                     row.name.c_str(), metrics.status().ToString().c_str());
        return false;
      }
      row.seq.cost += optimized->cost();
      row.seq.rows_extracted += metrics->rows_extracted;
      row.seq.bytes_moved += BytesMoved(*metrics);
      row.seq.spool_executions += metrics->spool_executions;
      seq_outputs.push_back(Canonical(metrics->outputs));
    }
    row.seq.seconds = SecondsSince(t0);
  }

  // Batched arm: one merged submission on a fresh engine (empty cross-query
  // cache, same as the sequential arm's starting state).
  {
    Engine engine(batch.catalog, BenchConfig());
    auto t0 = Clock::now();
    auto merged = engine.SubmitBatch(batch.scripts);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s: batched submit: %s\n", row.name.c_str(),
                   merged.status().ToString().c_str());
      return false;
    }
    row.batch.seconds = SecondsSince(t0);
    row.batch.cost = merged->optimized.cost();
    row.batch.rows_extracted = merged->metrics.rows_extracted;
    row.batch.bytes_moved = BytesMoved(merged->metrics);
    row.batch.spool_executions = merged->metrics.spool_executions;
    row.batch.cross_query_spool_hits =
        merged->metrics.cross_query_spool_hits;

    row.outputs_identical =
        merged->script_outputs.size() == seq_outputs.size();
    for (size_t i = 0; row.outputs_identical && i < seq_outputs.size(); ++i) {
      if (Canonical(merged->script_outputs[i]) != seq_outputs[i]) {
        row.outputs_identical = false;
      }
    }
  }

  bool ok = row.outputs_identical &&
            row.batch.bytes_moved <= row.seq.bytes_moved;
  std::printf("%-8s %2d scripts  seq %10.0f cost %9lld B  batch %10.0f "
              "cost %9lld B  ratio %5.2fx  %s%s\n",
              row.name.c_str(), row.k, row.seq.cost,
              static_cast<long long>(row.seq.bytes_moved), row.batch.cost,
              static_cast<long long>(row.batch.bytes_moved),
              row.cost_ratio(),
              row.outputs_identical ? "identical" : "DIVERGED",
              row.batch.bytes_moved <= row.seq.bytes_moved
                  ? ""
                  : "  MORE-BYTES");
  out->push_back(std::move(row));
  return ok;
}

void WriteArmJson(FILE* f, const char* key, const ArmResult& a) {
  std::fprintf(f,
               "     \"%s\": {\"seconds\": %.6f, \"cost\": %.0f, "
               "\"rows_per_sec\": %.1f, \"rows_extracted\": %lld, "
               "\"bytes_moved\": %lld, \"spool_executions\": %lld, "
               "\"cross_query_spool_hits\": %lld}",
               key, a.seconds, a.cost, a.rows_per_sec(),
               static_cast<long long>(a.rows_extracted),
               static_cast<long long>(a.bytes_moved),
               static_cast<long long>(a.spool_executions),
               static_cast<long long>(a.cross_query_spool_hits));
}

void WriteJson(const std::vector<CellRow>& cells) {
  FILE* f = std::fopen("BENCH_multiquery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_multiquery.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"multi_query\",\n  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellRow& r = cells[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"k\": %d, \"overlap\": %.2f,\n",
                 r.name.c_str(), r.k, r.overlap);
    WriteArmJson(f, "sequential", r.seq);
    std::fprintf(f, ",\n");
    WriteArmJson(f, "batched", r.batch);
    std::fprintf(f,
                 ",\n     \"cost_ratio\": %.3f, \"outputs_identical\": "
                 "%s}%s\n",
                 r.cost_ratio(), r.outputs_identical ? "true" : "false",
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_multiquery.json\n");
}

}  // namespace

int main() {
  std::printf("multi-query batching: sequential per-script runs vs one "
              "merged SubmitBatch\n");
  const int ks[] = {2, 8, 32};
  const double overlaps[] = {0.0, 0.3, 0.7};
  std::vector<CellRow> cells;
  bool ok = true;
  uint64_t seed = 11;
  for (int k : ks) {
    for (double overlap : overlaps) {
      ok = RunCell(k, overlap, seed++, &cells) && ok;
    }
  }
  WriteJson(cells);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: a batched run diverged from its sequential runs or "
                 "moved more bytes\n");
    return 1;
  }
  return 0;
}
