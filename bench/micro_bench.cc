// Google-benchmark microbenchmarks for the optimizer's building blocks:
// parsing, binding, fingerprinting (paper Def. 1), Algorithm 1, shared-info
// propagation (Algorithm 3), and full optimization runs in both modes.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "core/fingerprint.h"
#include "core/shared_info.h"
#include "plan/binder.h"
#include "script/parser.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace scx {
namespace {

void BM_ParseS1(benchmark::State& state) {
  for (auto _ : state) {
    auto ast = ParseScript(kScriptS1);
    benchmark::DoNotOptimize(ast);
  }
}
BENCHMARK(BM_ParseS1);

void BM_BindS1(benchmark::State& state) {
  Catalog catalog = MakePaperCatalog();
  auto ast = std::move(ParseScript(kScriptS1)).ValueOrDie();
  for (auto _ : state) {
    auto bound = BindScript(ast, catalog);
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_BindS1);

void BM_FingerprintMemo(benchmark::State& state) {
  Catalog catalog = MakePaperCatalog();
  auto ast = std::move(ParseScript(kScriptS3)).ValueOrDie();
  auto bound = std::move(BindScript(ast, catalog)).ValueOrDie();
  Memo memo = Memo::FromLogicalDag(bound.root);
  for (auto _ : state) {
    auto fp = ComputeFingerprints(memo, false);
    benchmark::DoNotOptimize(fp);
  }
}
BENCHMARK(BM_FingerprintMemo);

void BM_IdentifyCommonSubexpressions(benchmark::State& state) {
  Catalog catalog = MakePaperCatalog();
  auto ast = std::move(ParseScript(kScriptS3)).ValueOrDie();
  auto bound = std::move(BindScript(ast, catalog)).ValueOrDie();
  for (auto _ : state) {
    state.PauseTiming();
    Memo memo = Memo::FromLogicalDag(bound.root);
    state.ResumeTiming();
    auto r = IdentifyCommonSubexpressions(&memo, {});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IdentifyCommonSubexpressions);

void BM_SharedInfoLs1(benchmark::State& state) {
  GeneratedScript gen = GenerateLargeScript(Ls1Spec());
  auto ast = std::move(ParseScript(gen.text)).ValueOrDie();
  auto bound = std::move(BindScript(ast, gen.catalog)).ValueOrDie();
  Memo memo = Memo::FromLogicalDag(bound.root);
  IdentifyCommonSubexpressions(&memo, {});
  for (auto _ : state) {
    SharedInfo info = SharedInfo::Compute(memo);
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(BM_SharedInfoLs1);

void BM_OptimizeS1(benchmark::State& state) {
  const bool cse = state.range(0) != 0;
  Engine engine(MakePaperCatalog());
  auto compiled = std::move(engine.Compile(kScriptS1)).ValueOrDie();
  for (auto _ : state) {
    auto plan = engine.Optimize(
        compiled, cse ? OptimizerMode::kCse : OptimizerMode::kConventional);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeS1)->Arg(0)->Arg(1);

void BM_OptimizeLs1(benchmark::State& state) {
  const bool cse = state.range(0) != 0;
  GeneratedScript gen = GenerateLargeScript(Ls1Spec());
  Engine engine(gen.catalog);
  auto compiled = std::move(engine.Compile(gen.text)).ValueOrDie();
  for (auto _ : state) {
    auto plan = engine.Optimize(
        compiled, cse ? OptimizerMode::kCse : OptimizerMode::kConventional);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeLs1)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SubsetExpansion(benchmark::State& state) {
  ColumnSet cols;
  for (int i = 0; i < state.range(0); ++i) {
    cols.Insert(static_cast<ColumnId>(i));
  }
  for (auto _ : state) {
    auto subsets = cols.NonEmptySubsets();
    benchmark::DoNotOptimize(subsets);
  }
}
BENCHMARK(BM_SubsetExpansion)->Arg(3)->Arg(6)->Arg(10);

void BM_ExecuteS1(benchmark::State& state) {
  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(MakeExecutionCatalog(5000), config);
  auto compiled = std::move(engine.Compile(kScriptS1)).ValueOrDie();
  auto plan =
      std::move(engine.Optimize(compiled, OptimizerMode::kCse)).ValueOrDie();
  for (auto _ : state) {
    auto metrics = engine.Execute(plan);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_ExecuteS1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scx
