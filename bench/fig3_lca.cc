// Demonstrates paper Sec. VI (Figure 3): shared-group propagation and LCA
// identification, including the Fig. 3(c) case where the LCA of a shared
// group's consumers is NOT their lowest common ancestor, and the agreement
// between Algorithm 3 and the post-dominator construction.

#include <cstdio>

#include "core/fingerprint.h"
#include "core/shared_info.h"
#include "plan/binder.h"
#include "script/parser.h"
#include "workload/paper_scripts.h"

namespace {

void Report(const char* name, const char* script, const char* note) {
  using namespace scx;
  Catalog catalog = MakePaperCatalog();
  auto ast = ParseScript(script);
  auto bound = BindScript(*ast, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, bound.status().ToString().c_str());
    return;
  }
  Memo memo = Memo::FromLogicalDag(bound->root);
  IdentifyCommonSubexpressions(&memo, {});
  SharedInfo info = SharedInfo::Compute(memo);
  std::printf("== %s (%s) ==\n", name, note);
  std::printf("%s", info.ToString(memo).c_str());
  for (GroupId s : info.shared_groups()) {
    GroupId lca = info.LcaOf(s);
    std::printf("  LCA of shared group %d is group %d: %s\n", s, lca,
                memo.group(lca).initial_expr().op->Describe().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Report("Fig. 3(a)", scx::kScriptFig3a,
         "single shared group; LCA is the Sequence root");
  Report("Fig. 3(c)", scx::kScriptFig3c,
         "the Join is the lowest common ancestor of R's consumers, but "
         "output paths bypass it, so the LCA is the root");
  Report("S3 / Fig. 3(b)", scx::kScriptS3,
         "two shared groups with different LCAs (the two joins)");
  return 0;
}
