// Reproduces the paper's Figure 7: estimated plan cost with conventional
// optimization vs the common-subexpression framework, for S1-S4 and the
// LS1/LS2-style large scripts. Absolute cost units differ from the paper's
// (different cost model); the reproduced quantity is the relative saving.

#include <cstdio>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

struct PaperRow {
  const char* name;
  double paper_saving;  // fraction of conventional cost saved (Fig. 7 text)
};

void PrintRow(const char* name, double conv, double cse,
              double paper_saving) {
  double saving = 1.0 - cse / conv;
  std::printf("%-6s %16.0f %16.0f %9.0f%% %14.0f%%\n", name, conv, cse,
              saving * 100.0, paper_saving * 100.0);
}

}  // namespace

int main() {
  using namespace scx;
  std::printf(
      "Figure 7 — estimated cost: conventional vs. exploiting common "
      "subexpressions\n");
  std::printf("%-6s %16s %16s %10s %15s\n", "script", "conventional",
              "with CSE", "saving", "paper saving");

  PaperRow rows[] = {{"S1", 0.38}, {"S2", 0.55}, {"S3", 0.45}, {"S4", 0.57}};
  const char* scripts[] = {kScriptS1, kScriptS2, kScriptS3, kScriptS4};
  Engine engine(MakePaperCatalog());
  for (int i = 0; i < 4; ++i) {
    auto c = engine.Compare(scripts[i]);
    if (!c.ok()) {
      std::fprintf(stderr, "%s: %s\n", rows[i].name,
                   c.status().ToString().c_str());
      return 1;
    }
    PrintRow(rows[i].name, c->conventional.cost(), c->cse.cost(),
             rows[i].paper_saving);
  }

  struct LsRow {
    const char* name;
    LargeScriptSpec spec;
    double budget;
    double paper_saving;
  } ls_rows[] = {{"LS1", Ls1Spec(), 30.0, 0.21},
                 {"LS2", Ls2Spec(), 60.0, 0.45}};
  for (const LsRow& row : ls_rows) {
    GeneratedScript gen = GenerateLargeScript(row.spec);
    OptimizerConfig config;
    config.budget_seconds = row.budget;
    Engine ls_engine(gen.catalog, config);
    auto c = ls_engine.Compare(gen.text);
    if (!c.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.name,
                   c.status().ToString().c_str());
      return 1;
    }
    PrintRow(row.name, c->conventional.cost(), c->cse.cost(),
             row.paper_saving);
  }
  std::printf(
      "\nnote: LS1/LS2 are synthetic stand-ins matching the published DAG\n"
      "statistics of the paper's proprietary production scripts.\n");
  return 0;
}
