// Reproduces the paper's Sec. IX timing observations: optimization of
// S1-S4 completes well under a second; LS1/LS2 run within their 30 s / 60 s
// budgets; and the budget mechanism stops rounds early when exhausted while
// still returning the best plan found so far.

#include <cstdio>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

void TimeRow(const char* name, const scx::Catalog& catalog,
         const std::string& text, double budget_seconds) {
  using namespace scx;
  OptimizerConfig config;
  config.budget_seconds = budget_seconds;
  Engine engine(catalog, config);
  auto c = engine.Compare(text);
  if (!c.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, c.status().ToString().c_str());
    return;
  }
  std::printf("%-5s %10.3fs %12.3fs %9ld %10s %9.0f%%\n", name,
              c->conventional.result.diagnostics.optimize_seconds,
              c->cse.result.diagnostics.optimize_seconds,
              c->cse.result.diagnostics.rounds_executed,
              c->cse.result.diagnostics.budget_exhausted ? "yes" : "no",
              (1.0 - c->cost_ratio) * 100.0);
}

}  // namespace

int main() {
  using namespace scx;
  std::printf(
      "Sec. IX — optimization time (paper: <1 s for S1-S4; budgets 30 s for "
      "LS1, 60 s for LS2)\n");
  std::printf("%-5s %11s %13s %9s %10s %10s\n", "name", "conv time",
              "cse time", "rounds", "budgeted", "saving");
  Catalog paper = MakePaperCatalog();
  TimeRow("S1", paper, kScriptS1, 30);
  TimeRow("S2", paper, kScriptS2, 30);
  TimeRow("S3", paper, kScriptS3, 30);
  TimeRow("S4", paper, kScriptS4, 30);
  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  GeneratedScript ls2 = GenerateLargeScript(Ls2Spec());
  TimeRow("LS1", ls1.catalog, ls1.text, 30);
  TimeRow("LS2", ls2.catalog, ls2.text, 60);

  std::printf("\nbudget stress (LS2 with tiny budgets):\n");
  std::printf("%-10s %13s %9s %10s %10s\n", "budget", "cse time", "rounds",
              "budgeted", "saving");
  for (double budget : {0.0, 0.01, 0.05, 60.0}) {
    OptimizerConfig config;
    config.budget_seconds = budget;
    Engine engine(ls2.catalog, config);
    auto c = engine.Compare(ls2.text);
    if (!c.ok()) continue;
    std::printf("%9.2fs %12.3fs %9ld %10s %9.0f%%\n", budget,
                c->cse.result.diagnostics.optimize_seconds,
                c->cse.result.diagnostics.rounds_executed,
                c->cse.result.diagnostics.budget_exhausted ? "yes" : "no",
                (1.0 - c->cost_ratio) * 100.0);
  }
  return 0;
}
