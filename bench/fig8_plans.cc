// Reproduces the paper's Figure 8: the physical plans chosen for script S1
// by the conventional optimizer (shared subexpression executed once per
// consumer, each branch repartitioning on its own full grouping set) and by
// the CSE-extended optimizer (single execution, repartitioned once on the
// covering subset {B}, materialized in a spool read by both consumers).

#include <cstdio>

#include "api/engine.h"
#include "workload/paper_scripts.h"

int main() {
  using namespace scx;
  Engine engine(MakePaperCatalog());
  auto c = engine.Compare(kScriptS1);
  if (!c.ok()) {
    std::fprintf(stderr, "error: %s\n", c.status().ToString().c_str());
    return 1;
  }
  std::printf("Figure 8(a) — conventional optimization (cost %.0f):\n\n%s\n",
              c->conventional.cost(), c->conventional.Explain().c_str());
  std::printf(
      "Figure 8(b) — exploiting common subexpressions (cost %.0f):\n\n%s\n",
      c->cse.cost(), c->cse.Explain().c_str());
  std::printf("cost ratio: %.2f (paper: 5037/8185 = 0.62)\n", c->cost_ratio);

  // Structural checks mirrored from the paper's description.
  auto count = [&](const PhysicalNodePtr& root, PhysicalOpKind kind) {
    int n = 0;
    std::vector<PhysicalNodePtr> stack = {root};
    std::set<const PhysicalNode*> seen;
    while (!stack.empty()) {
      PhysicalNodePtr node = stack.back();
      stack.pop_back();
      if (!seen.insert(node.get()).second) continue;
      if (node->kind == kind) ++n;
      for (const auto& ch : node->children) stack.push_back(ch);
    }
    return n;
  };
  std::printf("\nstructural summary:\n");
  std::printf("  conventional: %d extract pipelines, %d exchanges, %d spools\n",
              count(c->conventional.plan(), PhysicalOpKind::kExtract),
              count(c->conventional.plan(), PhysicalOpKind::kHashExchange) +
                  count(c->conventional.plan(),
                        PhysicalOpKind::kMergeExchange),
              count(c->conventional.plan(), PhysicalOpKind::kSpool));
  std::printf("  with CSE    : %d extract pipelines, %d exchanges, %d spools\n",
              count(c->cse.plan(), PhysicalOpKind::kExtract),
              count(c->cse.plan(), PhysicalOpKind::kHashExchange) +
                  count(c->cse.plan(), PhysicalOpKind::kMergeExchange),
              count(c->cse.plan(), PhysicalOpKind::kSpool));
  return 0;
}
