// Reproduces the paper's Sec. I/II argument against earlier multi-query
// optimization techniques ([10]-[12] in the paper): identifying common
// subexpressions and sharing the LOCALLY optimal plan is better than no
// sharing, but worse than trading off the consumers' competing physical
// requirements cost-based. Three-way comparison per evaluation script.

#include <cstdio>

#include "api/engine.h"
#include "workload/large_scripts.h"
#include "workload/paper_scripts.h"

namespace {

void ThreeWay(const char* name, scx::Engine& engine,
              const std::string& text) {
  using namespace scx;
  auto compiled = engine.Compile(text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 compiled.status().ToString().c_str());
    return;
  }
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  auto naive = engine.Optimize(*compiled, OptimizerMode::kNaiveSharing);
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!conv.ok() || !naive.ok() || !cse.ok()) {
    std::fprintf(stderr, "%s: optimize failed\n", name);
    return;
  }
  std::printf("%-5s %14.0f %14.0f %14.0f %10.0f%% %10.0f%%\n", name,
              conv->cost(), naive->cost(), cse->cost(),
              (1 - naive->cost() / conv->cost()) * 100,
              (1 - cse->cost() / conv->cost()) * 100);
}

}  // namespace

int main() {
  using namespace scx;
  std::printf(
      "Sharing strategies: none (conventional) vs locally-optimal shared\n"
      "plan (prior work) vs cost-based property enforcement (this paper)\n");
  std::printf("%-5s %14s %14s %14s %11s %11s\n", "", "conventional",
              "naive share", "cost-based", "naive save", "cse save");
  Engine engine(MakePaperCatalog());
  ThreeWay("S1", engine, kScriptS1);
  ThreeWay("S2", engine, kScriptS2);
  ThreeWay("S3", engine, kScriptS3);
  ThreeWay("S4", engine, kScriptS4);
  GeneratedScript ls1 = GenerateLargeScript(Ls1Spec());
  Engine ls_engine(ls1.catalog);
  ThreeWay("LS1", ls_engine, ls1.text);
  std::printf(
      "\ncost-based enforcement is never worse than naive sharing and wins\n"
      "whenever consumers' partitioning requirements conflict (S1, S3, S4).\n");
  return 0;
}
