#ifndef SCX_MEMO_MEMO_H_
#define SCX_MEMO_MEMO_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "plan/binder.h"
#include "plan/logical_op.h"

namespace scx {

/// Index of a group within a Memo.
using GroupId = int;

inline constexpr GroupId kInvalidGroup = -1;

/// One logically-equivalent expression inside a group: an operator
/// descriptor plus child group references. The operator payload is carried
/// by a LogicalNode whose own child pointers are ignored in memo context.
struct GroupExpr {
  LogicalNodePtr op;
  std::vector<GroupId> children;
};

/// Payload-only structural hash of an operator (children excluded).
uint64_t OperatorPayloadHash(const LogicalNode& op);

/// Payload-only structural equality of two operators (children excluded).
bool OperatorPayloadEquals(const LogicalNode& a, const LogicalNode& b);

/// A memo group: the set of logically equivalent expressions that produce
/// the same result (paper Sec. III). Exactly one expression exists right
/// after construction; transformation rules add more.
class Group {
 public:
  Group(GroupId id, GroupExpr initial) : id_(id) {
    exprs_.push_back(std::move(initial));
  }

  GroupId id() const { return id_; }
  const std::vector<GroupExpr>& exprs() const { return exprs_; }
  std::vector<GroupExpr>& mutable_exprs() { return exprs_; }
  const GroupExpr& initial_expr() const { return exprs_.front(); }
  const Schema& schema() const { return exprs_.front().op->schema(); }

  /// Adds `expr` unless an identical (payload + children) one is present.
  /// Returns true when added.
  bool AddExpr(GroupExpr expr);

  /// True when Algorithm 1 marked this group as the root of a shared
  /// subexpression (always a SPOOL group).
  bool is_shared() const { return is_shared_; }
  void set_shared(bool shared) { is_shared_ = shared; }

  /// True when the group was introduced by a transformation rule (e.g. the
  /// LocalGbAgg group of the aggregate split). Such groups are plan
  /// implementation details and are not counted as consumers of shared
  /// groups.
  bool rule_generated() const { return rule_generated_; }
  void set_rule_generated(bool v) { rule_generated_ = v; }

 private:
  GroupId id_;
  std::vector<GroupExpr> exprs_;
  bool is_shared_ = false;
  bool rule_generated_ = false;
};

/// The memo: a DAG of groups. Group 1:1 with logical DAG node at
/// construction time; rules may add derived groups.
class Memo {
 public:
  /// Builds a memo isomorphic to the logical DAG rooted at `root`.
  /// Shared logical nodes (multiple parents) become multi-referenced groups.
  /// When `node_groups` is non-null it receives the logical-node -> group
  /// mapping, which batch compilation uses to locate each script's root
  /// group inside the merged memo.
  static Memo FromLogicalDag(const LogicalNodePtr& root,
                             std::map<const LogicalNode*, GroupId>*
                                 node_groups = nullptr);

  GroupId root() const { return root_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  Group& group(GroupId id) { return groups_[static_cast<size_t>(id)]; }
  const Group& group(GroupId id) const {
    return groups_[static_cast<size_t>(id)];
  }

  /// Creates a new group seeded with `expr`; returns its id.
  GroupId NewGroup(GroupExpr expr);

  /// Distinct parent groups of `id` (groups having an expression that
  /// references `id` as a child), ascending.
  std::vector<GroupId> ParentsOf(GroupId id) const;

  /// Groups reachable from the root, children before parents.
  std::vector<GroupId> TopologicalOrder() const;

  /// Rewrites every child reference `from` → `to` in all group expressions.
  /// Used by Algorithm 1 when merging duplicate subexpressions and when
  /// splicing SPOOL groups in.
  void RedirectChildReferences(GroupId from, GroupId to);

  /// Like RedirectChildReferences but leaves group `except` untouched
  /// (the SPOOL group itself must keep pointing at the original).
  void RedirectChildReferencesExcept(GroupId from, GroupId to, GroupId except);

  void set_root(GroupId id) { root_ = id; }

  /// Multi-line dump of all groups and expressions.
  std::string ToString() const;

 private:
  std::deque<Group> groups_;  // deque: stable references across NewGroup
  GroupId root_ = kInvalidGroup;
};

}  // namespace scx

#endif  // SCX_MEMO_MEMO_H_
