#include "memo/memo.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/hash.h"

namespace scx {

uint64_t OperatorPayloadHash(const LogicalNode& op) {
  uint64_t h = LogicalOpId(op.kind());
  switch (op.kind()) {
    case LogicalOpKind::kExtract:
      h = HashCombine(h, static_cast<uint64_t>(op.file.file_id));
      for (const ColumnInfo& c : op.schema().columns()) {
        h = HashCombine(h, Fnv1a64(c.name));
      }
      break;
    case LogicalOpKind::kFilter:
      for (const BoundPredicate& p : op.predicates) {
        h = HashCombine(h, p.Hash());
      }
      break;
    case LogicalOpKind::kProject:
    case LogicalOpKind::kUnionAll:
      for (const auto& [src, out] : op.project_map) {
        h = HashCombine(h, HashCombine(src, out));
      }
      break;
    case LogicalOpKind::kCompute:
      for (const ComputeItem& item : op.compute_items) {
        h = HashCombine(h, HashCombine(item.expr->Hash(), item.out));
      }
      break;
    case LogicalOpKind::kGbAgg:
    case LogicalOpKind::kLocalGbAgg:
    case LogicalOpKind::kGlobalGbAgg:
      for (ColumnId c : op.group_cols) h = HashCombine(h, c);
      for (const AggregateDesc& a : op.aggregates) {
        h = HashCombine(h, a.Hash());
      }
      break;
    case LogicalOpKind::kJoin:
      for (const auto& [l, r] : op.join_keys) {
        h = HashCombine(h, HashCombine(l, r));
      }
      for (const BoundPredicate& p : op.predicates) {
        h = HashCombine(h, p.Hash());
      }
      break;
    case LogicalOpKind::kOutput:
      h = HashCombine(h, Fnv1a64(op.output_path));
      break;
    case LogicalOpKind::kSpool:
    case LogicalOpKind::kSequence:
      break;
  }
  return h;
}

bool OperatorPayloadEquals(const LogicalNode& a, const LogicalNode& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case LogicalOpKind::kExtract: {
      if (a.file.file_id != b.file.file_id) return false;
      if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
      for (int i = 0; i < a.schema().NumColumns(); ++i) {
        if (a.schema().column(i).name != b.schema().column(i).name) {
          return false;
        }
      }
      return true;
    }
    case LogicalOpKind::kFilter:
      return a.predicates == b.predicates;
    case LogicalOpKind::kProject:
    case LogicalOpKind::kUnionAll:
      return a.project_map == b.project_map;
    case LogicalOpKind::kCompute: {
      if (a.compute_items.size() != b.compute_items.size()) return false;
      for (size_t i = 0; i < a.compute_items.size(); ++i) {
        const ComputeItem& x = a.compute_items[i];
        const ComputeItem& y = b.compute_items[i];
        if (x.out != y.out || !x.expr->EqualsMapped(*y.expr, {})) {
          return false;
        }
      }
      return true;
    }
    case LogicalOpKind::kGbAgg:
    case LogicalOpKind::kLocalGbAgg:
    case LogicalOpKind::kGlobalGbAgg:
      return a.group_cols == b.group_cols && a.aggregates == b.aggregates;
    case LogicalOpKind::kJoin:
      return a.join_keys == b.join_keys && a.predicates == b.predicates;
    case LogicalOpKind::kOutput:
      return a.output_path == b.output_path;
    case LogicalOpKind::kSpool:
    case LogicalOpKind::kSequence:
      return true;
  }
  return false;
}

bool Group::AddExpr(GroupExpr expr) {
  for (const GroupExpr& existing : exprs_) {
    if (existing.children == expr.children &&
        OperatorPayloadEquals(*existing.op, *expr.op)) {
      return false;
    }
  }
  exprs_.push_back(std::move(expr));
  return true;
}

Memo Memo::FromLogicalDag(const LogicalNodePtr& root,
                          std::map<const LogicalNode*, GroupId>* node_groups) {
  Memo memo;
  std::map<const LogicalNode*, GroupId> group_of;
  for (const LogicalNodePtr& node : TopologicalNodes(root)) {
    GroupExpr expr;
    expr.op = node->Clone();
    for (const LogicalNodePtr& child : node->children()) {
      expr.children.push_back(group_of.at(child.get()));
    }
    GroupId id = memo.NewGroup(std::move(expr));
    group_of[node.get()] = id;
  }
  memo.root_ = group_of.at(root.get());
  if (node_groups != nullptr) *node_groups = std::move(group_of);
  return memo;
}

GroupId Memo::NewGroup(GroupExpr expr) {
  GroupId id = static_cast<GroupId>(groups_.size());
  groups_.emplace_back(id, std::move(expr));
  return id;
}

std::vector<GroupId> Memo::ParentsOf(GroupId id) const {
  std::set<GroupId> parents;
  for (const Group& g : groups_) {
    for (const GroupExpr& e : g.exprs()) {
      for (GroupId child : e.children) {
        if (child == id) parents.insert(g.id());
      }
    }
  }
  return {parents.begin(), parents.end()};
}

std::vector<GroupId> Memo::TopologicalOrder() const {
  std::vector<GroupId> order;
  std::set<GroupId> seen;
  // Iterative DFS from the root, emitting children before parents.
  struct Frame {
    GroupId id;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  if (root_ == kInvalidGroup) return order;
  stack.push_back({root_});
  seen.insert(root_);
  while (!stack.empty()) {
    Frame& top = stack.back();
    // Children across all expressions of the group.
    std::vector<GroupId> children;
    for (const GroupExpr& e : group(top.id).exprs()) {
      for (GroupId c : e.children) children.push_back(c);
    }
    if (top.next_child < children.size()) {
      GroupId c = children[top.next_child++];
      if (seen.insert(c).second) {
        stack.push_back({c});
      }
    } else {
      order.push_back(top.id);
      stack.pop_back();
    }
  }
  return order;
}

void Memo::RedirectChildReferences(GroupId from, GroupId to) {
  RedirectChildReferencesExcept(from, to, kInvalidGroup);
}

void Memo::RedirectChildReferencesExcept(GroupId from, GroupId to,
                                         GroupId except) {
  for (Group& g : groups_) {
    if (g.id() == except) continue;
    for (GroupExpr& e : g.mutable_exprs()) {
      for (GroupId& c : e.children) {
        if (c == from) c = to;
      }
    }
  }
}

std::string Memo::ToString() const {
  std::string out;
  for (const Group& g : groups_) {
    out += "group " + std::to_string(g.id());
    if (g.is_shared()) out += " [shared]";
    out += ":\n";
    for (const GroupExpr& e : g.exprs()) {
      out += "  " + e.op->Describe() + " children=[";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(e.children[i]);
      }
      out += "]\n";
    }
  }
  out += "root: " + std::to_string(root_) + "\n";
  return out;
}

}  // namespace scx
