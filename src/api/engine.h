#ifndef SCX_API_ENGINE_H_
#define SCX_API_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/spool_cache.h"
#include "plan/binder.h"

namespace scx {

/// A parsed and bound script, ready to be optimized any number of times.
struct CompiledScript {
  std::string source;
  BoundScript bound;
};

/// A batch of scripts parsed and bound into one merged multi-root DAG (see
/// BoundBatch): all scripts share one column-id space and one memo, which is
/// what lets the optimizer's fingerprint merge unify structurally equal
/// sub-DAGs across script boundaries.
struct CompiledBatch {
  std::vector<std::string> sources;
  BoundBatch bound;

  size_t num_scripts() const { return sources.size(); }
};

/// The result of one optimization run: the chosen plan, its cost under the
/// mode's accounting, diagnostics, and the optimizer kept alive for
/// introspection (memo, shared-group info, property histories).
struct OptimizedScript {
  OptimizerMode mode = OptimizerMode::kConventional;
  OptimizeResult result;
  std::shared_ptr<Optimizer> optimizer;

  const PhysicalNodePtr& plan() const { return result.plan; }
  double cost() const { return result.cost; }
  std::string Explain() const { return PrintPhysicalPlan(result.plan); }
};

/// One batched execution: the merged plan, the merged run's metrics (sinks
/// keyed by provenance-tagged paths), and each script's outputs demultiplexed
/// back under its original paths — bit-identical to running that script
/// alone.
struct BatchExecution {
  OptimizedScript optimized;
  ExecMetrics metrics;
  /// Per script, in submission order: original output path -> rows.
  std::vector<std::map<std::string, std::vector<Row>>> script_outputs;
};

/// Top-level library entry point: compile a SCOPE-dialect script against a
/// catalog, optimize it conventionally or with the common-subexpression
/// framework, and execute the plan on the simulated cluster.
///
/// Typical use:
///   Engine engine(catalog);
///   auto compiled  = engine.Compile(script).ValueOrDie();
///   auto cse       = engine.Optimize(compiled, OptimizerMode::kCse)
///                        .ValueOrDie();
///   auto metrics   = engine.Execute(cse).ValueOrDie();
class Engine {
 public:
  explicit Engine(Catalog catalog, OptimizerConfig config = {})
      : catalog_(std::move(catalog)), config_(std::move(config)) {}

  /// Parses and binds `source`.
  Result<CompiledScript> Compile(const std::string& source) const;

  /// Builds a fresh memo from the compiled script and runs the optimizer in
  /// the requested mode.
  Result<OptimizedScript> Optimize(const CompiledScript& script,
                                   OptimizerMode mode) const;

  /// Executes the chosen plan on the simulated cluster. Never touches the
  /// cross-query spool cache: single-script submissions through this path
  /// are bit-identical to an engine that has executed nothing before.
  Result<ExecMetrics> Execute(const OptimizedScript& optimized) const;

  // --- Cross-query batching (docs/architecture.md §16) ---

  /// Parses and binds a batch of concurrently submitted scripts into one
  /// merged multi-root DAG with per-script output provenance.
  Result<CompiledBatch> CompileBatch(
      const std::vector<std::string>& sources) const;

  /// Optimizes the merged DAG as one plan: every script root hangs under a
  /// shared Sequence, so Algorithm 1's fingerprint merge unifies equal
  /// sub-DAGs from different scripts into one group and the spool cost
  /// trade-off counts consumers across script boundaries.
  Result<OptimizedScript> OptimizeBatch(const CompiledBatch& batch,
                                        OptimizerMode mode) const;

  /// Optimizes and executes the merged DAG, serving/filling the engine's
  /// persistent cross-query spool cache, and demultiplexes the sinks back
  /// into per-script outputs.
  Result<BatchExecution> ExecuteBatch(const CompiledBatch& batch,
                                      OptimizerMode mode = OptimizerMode::kCse);

  /// The batching front door: compile + optimize + execute a set of
  /// concurrently arriving scripts as one merged run.
  Result<BatchExecution> SubmitBatch(const std::vector<std::string>& sources,
                                     OptimizerMode mode = OptimizerMode::kCse);

  /// The engine's persistent cross-query spool cache (created on first use
  /// with the ClusterConfig::spool_cache_bytes budget). Entries are keyed by
  /// canonical sub-DAG serialization + catalog version, so they survive
  /// across SubmitBatch calls but never across a catalog change.
  CrossQuerySpoolCache& spool_cache();

  /// Convenience: compile + optimize in both modes, for cost comparisons.
  struct Comparison {
    CompiledScript compiled;
    OptimizedScript conventional;
    OptimizedScript cse;
    /// cse cost / conventional cost (paper Fig. 7 reports ~0.43–0.79).
    double cost_ratio = 1.0;
  };
  Result<Comparison> Compare(const std::string& source) const;

  const Catalog& catalog() const { return catalog_; }
  const OptimizerConfig& config() const { return config_; }
  OptimizerConfig* mutable_config() { return &config_; }

 private:
  /// Shared implementation of Optimize/OptimizeBatch. `script_roots` (empty
  /// for single scripts) locates each script's root group in the merged
  /// memo for the cross-script diagnostics.
  Result<OptimizedScript> OptimizeBound(
      const BoundScript& bound, OptimizerMode mode,
      const std::vector<LogicalNodePtr>& script_roots) const;

  Catalog catalog_;
  OptimizerConfig config_;
  /// shared_ptr keeps Engine copyable; copies share the cache, matching the
  /// "one engine front door per cluster" reading of a copy.
  std::shared_ptr<CrossQuerySpoolCache> cross_cache_;
};

}  // namespace scx

#endif  // SCX_API_ENGINE_H_
