#ifndef SCX_API_ENGINE_H_
#define SCX_API_ENGINE_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "plan/binder.h"

namespace scx {

/// A parsed and bound script, ready to be optimized any number of times.
struct CompiledScript {
  std::string source;
  BoundScript bound;
};

/// The result of one optimization run: the chosen plan, its cost under the
/// mode's accounting, diagnostics, and the optimizer kept alive for
/// introspection (memo, shared-group info, property histories).
struct OptimizedScript {
  OptimizerMode mode = OptimizerMode::kConventional;
  OptimizeResult result;
  std::shared_ptr<Optimizer> optimizer;

  const PhysicalNodePtr& plan() const { return result.plan; }
  double cost() const { return result.cost; }
  std::string Explain() const { return PrintPhysicalPlan(result.plan); }
};

/// Top-level library entry point: compile a SCOPE-dialect script against a
/// catalog, optimize it conventionally or with the common-subexpression
/// framework, and execute the plan on the simulated cluster.
///
/// Typical use:
///   Engine engine(catalog);
///   auto compiled  = engine.Compile(script).ValueOrDie();
///   auto cse       = engine.Optimize(compiled, OptimizerMode::kCse)
///                        .ValueOrDie();
///   auto metrics   = engine.Execute(cse).ValueOrDie();
class Engine {
 public:
  explicit Engine(Catalog catalog, OptimizerConfig config = {})
      : catalog_(std::move(catalog)), config_(std::move(config)) {}

  /// Parses and binds `source`.
  Result<CompiledScript> Compile(const std::string& source) const;

  /// Builds a fresh memo from the compiled script and runs the optimizer in
  /// the requested mode.
  Result<OptimizedScript> Optimize(const CompiledScript& script,
                                   OptimizerMode mode) const;

  /// Executes the chosen plan on the simulated cluster.
  Result<ExecMetrics> Execute(const OptimizedScript& optimized) const;

  /// Convenience: compile + optimize in both modes, for cost comparisons.
  struct Comparison {
    CompiledScript compiled;
    OptimizedScript conventional;
    OptimizedScript cse;
    /// cse cost / conventional cost (paper Fig. 7 reports ~0.43–0.79).
    double cost_ratio = 1.0;
  };
  Result<Comparison> Compare(const std::string& source) const;

  const Catalog& catalog() const { return catalog_; }
  const OptimizerConfig& config() const { return config_; }
  OptimizerConfig* mutable_config() { return &config_; }

 private:
  Catalog catalog_;
  OptimizerConfig config_;
};

}  // namespace scx

#endif  // SCX_API_ENGINE_H_
