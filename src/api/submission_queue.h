#ifndef SCX_API_SUBMISSION_QUEUE_H_
#define SCX_API_SUBMISSION_QUEUE_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "api/engine.h"

namespace scx {

/// A small front-door queue that collects concurrently arriving scripts and
/// flushes them to Engine::SubmitBatch as one merged run. Arrival order is
/// submission order: the k-th Enqueue's results are Flush().script_outputs[k].
///
/// Flushing is explicit (or automatic when the queue reaches `max_batch`
/// pending scripts), which keeps batching deterministic — no timers, no
/// thread-dependent cut points. Thread-safe for concurrent Enqueue calls;
/// Flush drains whatever has arrived so far.
class SubmissionQueue {
 public:
  explicit SubmissionQueue(Engine* engine, size_t max_batch = 32)
      : engine_(engine), max_batch_(max_batch) {}

  /// Adds a script to the pending batch; returns its ticket (index into the
  /// next Flush's script_outputs). When the queue reaches max_batch pending
  /// scripts the NEXT Enqueue flushes first, so a ticket stays valid until
  /// the flush that consumes it.
  size_t Enqueue(std::string source);

  size_t pending() const;
  size_t max_batch() const { return max_batch_; }

  /// Optimizes + executes everything pending as one merged batch and clears
  /// the queue. Fails on an empty queue.
  Result<BatchExecution> Flush(OptimizerMode mode = OptimizerMode::kCse);

  /// Result of the flush the last Enqueue triggered on overflow (empty
  /// unless an auto-flush happened since the last TakeAutoFlushed call).
  std::vector<Result<BatchExecution>> TakeAutoFlushed();

 private:
  Engine* engine_;
  size_t max_batch_;
  mutable std::mutex mu_;
  std::vector<std::string> pending_;
  std::vector<Result<BatchExecution>> auto_flushed_;
};

}  // namespace scx

#endif  // SCX_API_SUBMISSION_QUEUE_H_
