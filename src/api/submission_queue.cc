#include "api/submission_queue.h"

#include <utility>

namespace scx {

size_t SubmissionQueue::Enqueue(std::string source) {
  std::unique_lock<std::mutex> lock(mu_);
  if (pending_.size() >= max_batch_) {
    // Overflow: flush what has accumulated before admitting the newcomer,
    // so no batch ever exceeds max_batch scripts.
    std::vector<std::string> batch = std::move(pending_);
    pending_.clear();
    lock.unlock();
    Result<BatchExecution> flushed = engine_->SubmitBatch(batch);
    lock.lock();
    auto_flushed_.push_back(std::move(flushed));
  }
  pending_.push_back(std::move(source));
  return pending_.size() - 1;
}

size_t SubmissionQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

Result<BatchExecution> SubmissionQueue::Flush(OptimizerMode mode) {
  std::vector<std::string> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) {
      return Status::FailedPrecondition(
          "SubmissionQueue::Flush: nothing pending");
    }
    batch = std::move(pending_);
    pending_.clear();
  }
  return engine_->SubmitBatch(batch, mode);
}

std::vector<Result<BatchExecution>> SubmissionQueue::TakeAutoFlushed() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(auto_flushed_, {});
}

}  // namespace scx
