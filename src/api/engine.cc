#include "api/engine.h"

#include <optional>
#include <thread>
#include <utility>

#include "opt/plan_validator.h"
#include "script/parser.h"

namespace scx {

Result<CompiledScript> Engine::Compile(const std::string& source) const {
  SCX_ASSIGN_OR_RETURN(AstScript ast, ParseScript(source));
  SCX_ASSIGN_OR_RETURN(BoundScript bound, BindScript(ast, catalog_));
  CompiledScript out;
  out.source = source;
  out.bound = std::move(bound);
  return out;
}

namespace {

/// Builds a single-shot Optimizer over a fresh memo for `bound`, declaring
/// the memo groups of `script_roots` when batching.
std::shared_ptr<Optimizer> MakeOptimizer(
    const BoundScript& bound, const std::vector<LogicalNodePtr>& script_roots,
    const OptimizerConfig& config) {
  std::map<const LogicalNode*, GroupId> node_groups;
  Memo memo = Memo::FromLogicalDag(
      bound.root, script_roots.empty() ? nullptr : &node_groups);
  // Each run gets a private copy of the registry: exploration rules mint
  // columns (aggregate split), and one CompiledScript may be optimized from
  // several threads at once.
  auto columns = std::make_shared<ColumnRegistry>(*bound.columns);
  auto optimizer = std::make_shared<Optimizer>(std::move(memo),
                                               std::move(columns), config);
  if (!script_roots.empty()) {
    std::vector<GroupId> roots;
    roots.reserve(script_roots.size());
    for (const LogicalNodePtr& r : script_roots) {
      roots.push_back(node_groups.at(r.get()));
    }
    optimizer->SetScriptRoots(std::move(roots));
  }
  return optimizer;
}

}  // namespace

Result<OptimizedScript> Engine::OptimizeBound(
    const BoundScript& bound, OptimizerMode mode,
    const std::vector<LogicalNodePtr>& script_roots) const {
  auto optimizer = MakeOptimizer(bound, script_roots, config_);
  SCX_ASSIGN_OR_RETURN(OptimizeResult result, optimizer->Run(mode));
  SCX_RETURN_IF_ERROR(ValidatePlan(result.plan));

  // The kCse search space forces every common subexpression through a
  // spool, so the no-sharing plan is not among its alternatives. A
  // cost-based optimizer must never pick sharing it estimates to be worse
  // than recomputation (degenerate case: near-empty inputs, where the
  // spool's fixed overhead exceeds the recompute saving), so compare
  // against the conventional plan and keep the cheaper of the two.
  if (mode == OptimizerMode::kCse) {
    auto conv_optimizer = MakeOptimizer(bound, script_roots, config_);
    SCX_ASSIGN_OR_RETURN(OptimizeResult conv,
                         conv_optimizer->Run(OptimizerMode::kConventional));
    if (conv.cost < result.cost) {
      SCX_RETURN_IF_ERROR(ValidatePlan(conv.plan));
      result.plan = std::move(conv.plan);
      result.cost = conv.cost;
      result.diagnostics.final_cost = conv.cost;
      result.diagnostics.fell_back_to_conventional = true;
      optimizer = std::move(conv_optimizer);
    }
  }

  OptimizedScript out;
  out.mode = mode;
  out.result = std::move(result);
  out.optimizer = std::move(optimizer);
  return out;
}

Result<OptimizedScript> Engine::Optimize(const CompiledScript& script,
                                         OptimizerMode mode) const {
  return OptimizeBound(script.bound, mode, {});
}

Result<Engine::Comparison> Engine::Compare(const std::string& source) const {
  Comparison out;
  SCX_ASSIGN_OR_RETURN(out.compiled, Compile(source));
  if (config_.num_threads > 1) {
    // The two optimizer runs are fully independent (fresh memo and registry
    // each); overlap them.
    std::optional<Result<OptimizedScript>> conv;
    std::thread conv_thread([&] {
      conv.emplace(Optimize(out.compiled, OptimizerMode::kConventional));
    });
    Result<OptimizedScript> cse = Optimize(out.compiled, OptimizerMode::kCse);
    conv_thread.join();
    SCX_ASSIGN_OR_RETURN(out.conventional, std::move(*conv));
    SCX_ASSIGN_OR_RETURN(out.cse, std::move(cse));
  } else {
    SCX_ASSIGN_OR_RETURN(out.conventional,
                         Optimize(out.compiled, OptimizerMode::kConventional));
    SCX_ASSIGN_OR_RETURN(out.cse, Optimize(out.compiled, OptimizerMode::kCse));
  }
  out.cost_ratio = out.conventional.cost() > 0
                       ? out.cse.cost() / out.conventional.cost()
                       : 1.0;
  return out;
}

Result<ExecMetrics> Engine::Execute(const OptimizedScript& optimized) const {
  Executor executor(config_.cluster);
  return executor.Execute(optimized.plan());
}

Result<CompiledBatch> Engine::CompileBatch(
    const std::vector<std::string>& sources) const {
  SCX_ASSIGN_OR_RETURN(std::vector<AstScript> asts, ParseScriptBatch(sources));
  SCX_ASSIGN_OR_RETURN(BoundBatch bound, BindScriptBatch(asts, catalog_));
  CompiledBatch out;
  out.sources = sources;
  out.bound = std::move(bound);
  return out;
}

Result<OptimizedScript> Engine::OptimizeBatch(const CompiledBatch& batch,
                                              OptimizerMode mode) const {
  return OptimizeBound(batch.bound.merged, mode, batch.bound.script_roots);
}

CrossQuerySpoolCache& Engine::spool_cache() {
  if (cross_cache_ == nullptr) {
    cross_cache_ = std::make_shared<CrossQuerySpoolCache>(
        config_.cluster.spool_cache_bytes);
  }
  return *cross_cache_;
}

Result<BatchExecution> Engine::ExecuteBatch(const CompiledBatch& batch,
                                            OptimizerMode mode) {
  BatchExecution out;
  SCX_ASSIGN_OR_RETURN(out.optimized, OptimizeBatch(batch, mode));
  Executor executor(config_.cluster, &spool_cache(), catalog_.version());
  SCX_ASSIGN_OR_RETURN(out.metrics, executor.Execute(out.optimized.plan()));
  // Demultiplex the merged run's sinks back to per-script outputs keyed by
  // each script's original paths.
  out.script_outputs.reserve(batch.bound.outputs.size());
  for (const auto& prov : batch.bound.outputs) {
    std::map<std::string, std::vector<Row>> script;
    for (const auto& [merged_path, original] : prov) {
      auto it = out.metrics.outputs.find(merged_path);
      script[original] =
          it != out.metrics.outputs.end() ? it->second : std::vector<Row>{};
    }
    out.script_outputs.push_back(std::move(script));
  }
  return out;
}

Result<BatchExecution> Engine::SubmitBatch(
    const std::vector<std::string>& sources, OptimizerMode mode) {
  SCX_ASSIGN_OR_RETURN(CompiledBatch batch, CompileBatch(sources));
  return ExecuteBatch(batch, mode);
}

}  // namespace scx
