#include "api/engine.h"

#include "opt/plan_validator.h"
#include "script/parser.h"

namespace scx {

Result<CompiledScript> Engine::Compile(const std::string& source) const {
  SCX_ASSIGN_OR_RETURN(AstScript ast, ParseScript(source));
  SCX_ASSIGN_OR_RETURN(BoundScript bound, BindScript(ast, catalog_));
  CompiledScript out;
  out.source = source;
  out.bound = std::move(bound);
  return out;
}

Result<OptimizedScript> Engine::Optimize(const CompiledScript& script,
                                         OptimizerMode mode) const {
  Memo memo = Memo::FromLogicalDag(script.bound.root);
  auto optimizer =
      std::make_shared<Optimizer>(std::move(memo), script.bound.columns,
                                  config_);
  SCX_ASSIGN_OR_RETURN(OptimizeResult result, optimizer->Run(mode));
  SCX_RETURN_IF_ERROR(ValidatePlan(result.plan));
  OptimizedScript out;
  out.mode = mode;
  out.result = std::move(result);
  out.optimizer = std::move(optimizer);
  return out;
}

Result<ExecMetrics> Engine::Execute(const OptimizedScript& optimized) const {
  Executor executor(config_.cluster);
  return executor.Execute(optimized.plan());
}

Result<Engine::Comparison> Engine::Compare(const std::string& source) const {
  Comparison out;
  SCX_ASSIGN_OR_RETURN(out.compiled, Compile(source));
  SCX_ASSIGN_OR_RETURN(out.conventional,
                       Optimize(out.compiled, OptimizerMode::kConventional));
  SCX_ASSIGN_OR_RETURN(out.cse, Optimize(out.compiled, OptimizerMode::kCse));
  out.cost_ratio = out.conventional.cost() > 0
                       ? out.cse.cost() / out.conventional.cost()
                       : 1.0;
  return out;
}

}  // namespace scx
