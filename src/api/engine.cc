#include "api/engine.h"

#include <optional>
#include <thread>
#include <utility>

#include "opt/plan_validator.h"
#include "script/parser.h"

namespace scx {

Result<CompiledScript> Engine::Compile(const std::string& source) const {
  SCX_ASSIGN_OR_RETURN(AstScript ast, ParseScript(source));
  SCX_ASSIGN_OR_RETURN(BoundScript bound, BindScript(ast, catalog_));
  CompiledScript out;
  out.source = source;
  out.bound = std::move(bound);
  return out;
}

Result<OptimizedScript> Engine::Optimize(const CompiledScript& script,
                                         OptimizerMode mode) const {
  Memo memo = Memo::FromLogicalDag(script.bound.root);
  // Each run gets a private copy of the registry: exploration rules mint
  // columns (aggregate split), and one CompiledScript may be optimized from
  // several threads at once.
  auto columns = std::make_shared<ColumnRegistry>(*script.bound.columns);
  auto optimizer =
      std::make_shared<Optimizer>(std::move(memo), std::move(columns),
                                  config_);
  SCX_ASSIGN_OR_RETURN(OptimizeResult result, optimizer->Run(mode));
  SCX_RETURN_IF_ERROR(ValidatePlan(result.plan));

  // The kCse search space forces every common subexpression through a
  // spool, so the no-sharing plan is not among its alternatives. A
  // cost-based optimizer must never pick sharing it estimates to be worse
  // than recomputation (degenerate case: near-empty inputs, where the
  // spool's fixed overhead exceeds the recompute saving), so compare
  // against the conventional plan and keep the cheaper of the two.
  if (mode == OptimizerMode::kCse) {
    Memo conv_memo = Memo::FromLogicalDag(script.bound.root);
    auto conv_columns =
        std::make_shared<ColumnRegistry>(*script.bound.columns);
    auto conv_optimizer = std::make_shared<Optimizer>(
        std::move(conv_memo), std::move(conv_columns), config_);
    SCX_ASSIGN_OR_RETURN(OptimizeResult conv,
                         conv_optimizer->Run(OptimizerMode::kConventional));
    if (conv.cost < result.cost) {
      SCX_RETURN_IF_ERROR(ValidatePlan(conv.plan));
      result.plan = std::move(conv.plan);
      result.cost = conv.cost;
      result.diagnostics.final_cost = conv.cost;
      result.diagnostics.fell_back_to_conventional = true;
      optimizer = std::move(conv_optimizer);
    }
  }

  OptimizedScript out;
  out.mode = mode;
  out.result = std::move(result);
  out.optimizer = std::move(optimizer);
  return out;
}

Result<Engine::Comparison> Engine::Compare(const std::string& source) const {
  Comparison out;
  SCX_ASSIGN_OR_RETURN(out.compiled, Compile(source));
  if (config_.num_threads > 1) {
    // The two optimizer runs are fully independent (fresh memo and registry
    // each); overlap them.
    std::optional<Result<OptimizedScript>> conv;
    std::thread conv_thread([&] {
      conv.emplace(Optimize(out.compiled, OptimizerMode::kConventional));
    });
    Result<OptimizedScript> cse = Optimize(out.compiled, OptimizerMode::kCse);
    conv_thread.join();
    SCX_ASSIGN_OR_RETURN(out.conventional, std::move(*conv));
    SCX_ASSIGN_OR_RETURN(out.cse, std::move(cse));
  } else {
    SCX_ASSIGN_OR_RETURN(out.conventional,
                         Optimize(out.compiled, OptimizerMode::kConventional));
    SCX_ASSIGN_OR_RETURN(out.cse, Optimize(out.compiled, OptimizerMode::kCse));
  }
  out.cost_ratio = out.conventional.cost() > 0
                       ? out.cse.cost() / out.conventional.cost()
                       : 1.0;
  return out;
}

Result<ExecMetrics> Engine::Execute(const OptimizedScript& optimized) const {
  Executor executor(config_.cluster);
  return executor.Execute(optimized.plan());
}

}  // namespace scx
