#include "core/round_scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

namespace scx {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

RoundScheduler::RoundScheduler(const OptimizationContext* ctx,
                               OptimizeDiagnostics* diag)
    : ctx_(ctx),
      diag_(diag),
      phase2_start_(std::chrono::steady_clock::now()),
      best_cost_seen_(kInf) {}

void RoundScheduler::StartPhase2() {
  phase2_start_ = std::chrono::steady_clock::now();
}

bool RoundScheduler::BudgetExceeded() const {
  if (budget_exhausted_.load(std::memory_order_relaxed)) return true;
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - phase2_start_)
                       .count();
  return elapsed > ctx_->config().budget_seconds;
}

void RoundScheduler::NoteBestCost(double cost) {
  double cur = best_cost_seen_.load(std::memory_order_relaxed);
  while (cost < cur && !best_cost_seen_.compare_exchange_weak(
                           cur, cost, std::memory_order_relaxed)) {
  }
}

PhysicalNodePtr RoundScheduler::RunRoundsAt(RoundTask* task, GroupId g,
                                            const RequiredProps& req) {
  task->in_rounds_.insert(g);
  const SharedInfo& shared = *ctx_->shared_info();
  std::vector<GroupId> here = shared.SharedGroupsWithLca(g);

  // Diagnostics are written single-threaded by the master walk. Workers
  // never reach rounds (parallelism is restricted to LCAs without nested
  // LCAs), but if that invariant ever broke, their counts go to a scratch
  // sink rather than racing the shared one.
  OptimizeDiagnostics scratch;
  OptimizeDiagnostics* sink = task->worker() ? &scratch : diag_;

  if (ctx_->mode() == OptimizerMode::kNaiveSharing) {
    // Related-work baseline: exactly one round per LCA, every shared group
    // enforced with NO requirement — i.e. the locally cheapest shared plan,
    // which all consumers must then compensate above (paper Secs. I-II).
    sink->rounds_planned += 1;
    ++sink->rounds_executed;
    RoundAssignment naive;
    for (GroupId s : here) naive[s] = kNaiveEntryIndex;
    task->InstallAssignment(naive);
    PhysicalNodePtr plan = task->LogPhysOpt(g, req);
    task->RemoveAssignment(naive);
    task->in_rounds_.erase(g);
    return plan;
  }

  const OptimizerConfig& config = ctx_->config();

  // Sec. VIII-B: rank shared groups by potential repartitioning savings
  // RepartSav(G) = (NoConsumers(G)-1) * RepartCost(G).
  std::map<GroupId, double> savings;
  for (GroupId s : here) {
    double consumers = static_cast<double>(shared.ConsumersOf(s).size());
    savings[s] =
        (consumers - 1.0) * ctx_->cost_model().RepartCostOf(ctx_->StatsOf(s));
  }

  std::vector<std::vector<GroupId>> classes;
  if (config.exploit_independent_groups) {
    classes = shared.IndependenceClassesAt(ctx_->memo(), g);
  } else {
    classes.push_back(here);
  }
  if (config.rank_shared_groups) {
    for (auto& cls : classes) {
      std::stable_sort(cls.begin(), cls.end(), [&](GroupId a, GroupId b) {
        return savings[a] > savings[b];
      });
    }
    std::stable_sort(classes.begin(), classes.end(),
                     [&](const std::vector<GroupId>& a,
                         const std::vector<GroupId>& b) {
                       double ma = 0, mb = 0;
                       for (GroupId s : a) ma = std::max(ma, savings[s]);
                       for (GroupId s : b) mb = std::max(mb, savings[s]);
                       return ma > mb;
                     });
  }

  std::map<GroupId, int> sizes;
  for (GroupId s : here) {
    const PropertyHistory* h = ctx_->HistoryOf(s);
    sizes[s] = h != nullptr ? h->size() : 0;
  }

  RoundEnumerator enumerator(classes, sizes);
  sink->rounds_planned += enumerator.TotalRounds();

  // Rounds of one class are mutually independent, so they can be evaluated
  // concurrently; the enumerator only makes pinning decisions at class
  // boundaries. Nested-LCA rounds stay serial: a worker must never spawn
  // its own parallel batch.
  bool parallel = !task->worker() && config.num_threads > 1 &&
                  ctx_->mode() == OptimizerMode::kCse && !ctx_->HasNestedLca(g);

  PhysicalNodePtr best;
  double best_cost = kInf;

  // Class-local branch-and-bound across rounds (serial loop only: a batch
  // hands out a whole class at once, so no earlier same-class cost exists).
  // Active only while the round trace is off — a pruned round has no exact
  // cost to record, and the determinism contract promises the traced cost
  // stream bit-identical to the unpruned path. Pruning never changes the
  // winner or the class pin: a finite bound was achieved by an EARLIER
  // round of the same class, and a pruned round's true cost is >= that
  // bound, so it loses both strict-`<` comparisons either way.
  bool round_bound = !config.trace_rounds &&
                     ctx_->mode() == OptimizerMode::kCse;

  if (!parallel) {
    RoundAssignment assignment;
    while (enumerator.Next(&assignment)) {
      if (BudgetExceeded() || sink->rounds_executed >= config.max_rounds) {
        budget_exhausted_.store(true, std::memory_order_relaxed);
        sink->budget_exhausted = true;
        break;
      }
      ++sink->rounds_executed;
      double bound = round_bound ? enumerator.BestCostInClass() : kInf;
      task->InstallAssignment(assignment);
      double cost;
      PhysicalNodePtr plan = task->LogPhysOpt(g, req, &cost, bound);
      task->RemoveAssignment(assignment);
      if (plan == nullptr && bound < kInf) ++task->counters_.pruned_rounds;
      enumerator.ReportCost(cost);
      if (plan != nullptr && cost < best_cost) {
        best = plan;
        best_cost = cost;
        NoteBestCost(cost);
      }
      if (config.trace_rounds) {
        RoundTraceEntry entry;
        entry.lca = g;
        entry.round_index = sink->rounds_executed;
        entry.assignment = assignment;
        entry.cost = cost;
        entry.best_so_far = best_cost;
        sink->round_trace.push_back(std::move(entry));
      }
    }
  } else {
    EnsurePool();
    std::vector<RoundAssignment> batch;
    bool stopped = false;
    while (!stopped && enumerator.NextBatch(&batch)) {
      // One forked task per round: each reads the master's caches through
      // an immutable base pointer and records into its own overlay. The
      // master thread participates in evaluation, so its caches are not
      // touched until the batch is applied below.
      std::vector<RoundTask> workers;
      workers.reserve(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) workers.push_back(task->Fork());
      std::vector<RoundResult> results(batch.size());
      pool_->Run(batch.size(), [&](size_t i) {
        results[i] = workers[i].EvaluateRound(g, req, batch[i]);
      });

      // Apply in enumeration order — this replays the serial loop exactly:
      // same round numbering, same strict-< winner updates. Worker cache
      // OVERLAYS are discarded (only their counters merge): a cache VALUE
      // is a pure function of its key, but its pointer identities are not —
      // two workers that each compute the same spool base embed distinct
      // instances of the same sub-DAG into their other entries, and a later
      // round mixing entries of different provenance would double-count
      // that subtree under DAG costing (the serial loop never does: its
      // single evolving cache hands every entry the same instance). The
      // class's pinned round is instead re-evaluated serially below, which
      // rebuilds exactly its closure in the master cache with serial-
      // consistent sharing.
      std::vector<double> costs;
      costs.reserve(batch.size());
      double prev_best = best_cost;
      long pin = -1;  // batch index of the class pin (strict <, first wins)
      double pin_cost = kInf;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (BudgetExceeded() || sink->rounds_executed >= config.max_rounds ||
            results[i].budget_skipped) {
          budget_exhausted_.store(true, std::memory_order_relaxed);
          sink->budget_exhausted = true;
          stopped = true;
          break;
        }
        ++sink->rounds_executed;
        if (results[i].plan != nullptr && results[i].cost < pin_cost) {
          pin = static_cast<long>(i);
          pin_cost = results[i].cost;
        }
        if (results[i].plan != nullptr && results[i].cost < best_cost) {
          best = results[i].plan;
          best_cost = results[i].cost;
          NoteBestCost(best_cost);
        }
        if (config.trace_rounds) {
          RoundTraceEntry entry;
          entry.lca = g;
          entry.round_index = sink->rounds_executed;
          entry.assignment = batch[i];
          entry.cost = results[i].cost;
          entry.best_so_far = best_cost;
          sink->round_trace.push_back(std::move(entry));
        }
        task->MergeCounters(workers[i]);
        costs.push_back(results[i].cost);
      }
      if (!stopped) {
        enumerator.ReportBatch(costs);
        if (pin >= 0) {
          // Serial re-evaluation of the pinned round on the master task:
          // its winners now live in the master cache (so later batches hit
          // them instead of recomputing the fixed part per worker), and the
          // returned plan shares subtrees through the master's spool cache
          // exactly as the serial loop's would. Cost purity makes the
          // re-evaluated cost equal the worker's reported one.
          RoundResult re = task->EvaluateRound(g, req, batch[pin]);
          if (re.plan != nullptr && re.cost < prev_best) {
            best = re.plan;
            best_cost = re.cost;
          }
        }
      }
    }
  }

  task->in_rounds_.erase(g);
  if (best == nullptr) {
    best = task->LogPhysOpt(g, req);  // budget exhausted before the 1st round
  }
  return best;
}

void RoundScheduler::EnsurePool() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<WorkerPool>(ctx_->config().num_threads);
}

}  // namespace scx
