#include "core/round_task.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/round_scheduler.h"

namespace scx {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Chooses the sort order a stream aggregate will produce: the required
/// output order extended by the remaining grouping columns. Fails when the
/// required order cannot be embedded in the grouping columns.
std::optional<SortSpec> ExtendSort(const SortSpec& required,
                                   const std::vector<ColumnId>& group_cols) {
  ColumnSet gc = ColumnSet::FromVector(group_cols);
  SortSpec out;
  ColumnSet used;
  for (ColumnId c : required.cols) {
    if (!gc.Contains(c) || used.Contains(c)) return std::nullopt;
    out.cols.push_back(c);
    used.Insert(c);
  }
  for (ColumnId c : group_cols) {
    if (!used.Contains(c)) {
      out.cols.push_back(c);
      used.Insert(c);
    }
  }
  return out;
}

/// Maps a delivered property set through a projection (source → output).
DeliveredProps MapDeliveredThroughProject(
    const DeliveredProps& in,
    const std::vector<std::pair<ColumnId, ColumnId>>& project_map) {
  std::map<ColumnId, ColumnId> fwd;
  for (const auto& [src, out] : project_map) {
    fwd.emplace(src, out);  // first wins on duplicate sources
  }
  DeliveredProps out;
  switch (in.partitioning.kind) {
    case PartitioningKind::kSerial:
    case PartitioningKind::kRandom:
      out.partitioning = in.partitioning;
      break;
    case PartitioningKind::kHash: {
      ColumnSet mapped;
      bool complete = true;
      for (ColumnId c : in.partitioning.cols.ToVector()) {
        auto it = fwd.find(c);
        if (it == fwd.end()) {
          complete = false;
          break;
        }
        mapped.Insert(it->second);
      }
      out.partitioning =
          complete ? Partitioning::Hash(mapped) : Partitioning::Random();
      break;
    }
    case PartitioningKind::kRange: {
      std::vector<ColumnId> mapped;
      bool complete = true;
      for (ColumnId c : in.partitioning.range_cols) {
        auto it = fwd.find(c);
        if (it == fwd.end()) {
          complete = false;
          break;
        }
        mapped.push_back(it->second);
      }
      out.partitioning = complete ? Partitioning::Range(std::move(mapped))
                                  : Partitioning::Random();
      break;
    }
  }
  for (ColumnId c : in.sort.cols) {
    auto it = fwd.find(c);
    if (it == fwd.end()) break;
    out.sort.cols.push_back(it->second);
  }
  return out;
}

/// Maps a requirement through a projection (output → source). Every output
/// column has a source, so this always succeeds.
RequiredProps MapRequiredThroughProject(
    const RequiredProps& req,
    const std::vector<std::pair<ColumnId, ColumnId>>& project_map) {
  std::map<ColumnId, ColumnId> back;
  for (const auto& [src, out] : project_map) back.emplace(out, src);
  RequiredProps creq;
  creq.partitioning.kind = req.partitioning.kind;
  for (ColumnId c : req.partitioning.cols.ToVector()) {
    auto it = back.find(c);
    creq.partitioning.cols.Insert(it != back.end() ? it->second : c);
  }
  for (ColumnId c : req.sort.cols) {
    auto it = back.find(c);
    creq.sort.cols.push_back(it != back.end() ? it->second : c);
  }
  return creq;
}

/// Combines the parent's partitioning requirement with an operator's own
/// constraint "input must be partitioned within `own`" (grouping columns for
/// aggregates, join keys for joins). Returns nullopt when no partitioning
/// can satisfy both natively — the enforcer framework then compensates above
/// the operator. This push-down is what lets phase 2 enforce e.g. {B} at a
/// shared aggregate and have the exchange happen below the aggregation
/// (paper Fig. 8(b)) instead of reshuffling its output.
std::optional<PartitioningReq> CombinePartReq(const PartitioningReq& parent,
                                              const ColumnSet& own) {
  switch (parent.kind) {
    case PartReqKind::kNone:
      return PartitioningReq::SubsetOf(own);
    case PartReqKind::kSerial:
      return PartitioningReq::Serial();
    case PartReqKind::kHashExact:
    case PartReqKind::kRangeExact:
      if (parent.cols.IsSubsetOf(own)) return parent;
      return std::nullopt;
    case PartReqKind::kHashSubset: {
      ColumnSet inter = parent.cols.Intersect(own);
      if (inter.Empty()) return std::nullopt;
      return PartitioningReq::SubsetOf(std::move(inter));
    }
  }
  return std::nullopt;
}

/// Nonzero seed of every phase-2 enforcement signature of a group with
/// shared groups below — keeps those cache keys distinct from the phase-1
/// signature 0 even when the current assignment touches none of them
/// (phase-1 winners of such groups embed unenforced spools).
constexpr uint64_t kPhase2SigSeed = 0x9e3779b97f4a7c15ULL;

}  // namespace

RoundTask::RoundTask(OptimizationContext* ctx, RoundScheduler* scheduler)
    : ctx_(ctx), build_ctx_(ctx), scheduler_(scheduler) {}

void RoundTask::BeginPhase2() {
  phase_ = 2;
  build_ctx_ = nullptr;  // the context is frozen; only const reads from here
}

RoundTask RoundTask::Fork() const {
  RoundTask t;
  t.ctx_ = ctx_;
  t.scheduler_ = scheduler_;
  t.phase_ = phase_;
  t.worker_ = true;
  t.base_winners_ = &winners_;
  t.base_spools_ = &spool_bases_;
  t.enforced_ = enforced_;
  t.in_rounds_ = in_rounds_;
  return t;
}

void RoundTask::MergeCounters(const RoundTask& other) {
  counters_.MergeFrom(other.counters_);
}

const std::optional<PhysicalNodePtr>* RoundTask::FindWinner(
    const WinnerKey& key) const {
  auto it = winners_.find(key);
  if (it != winners_.end()) return &it->second;
  if (base_winners_ != nullptr) {
    auto bit = base_winners_->find(key);
    if (bit != base_winners_->end()) return &bit->second;
  }
  return nullptr;
}

const PhysicalNodePtr* RoundTask::FindSpool(const SpoolKey& key) const {
  auto it = spool_bases_.find(key);
  if (it != spool_bases_.end()) return &it->second;
  if (base_spools_ != nullptr) {
    auto bit = base_spools_->find(key);
    if (bit != base_spools_->end()) return &bit->second;
  }
  return nullptr;
}

void RoundTask::InstallAssignment(const RoundAssignment& assignment) {
  for (const auto& [s, idx] : assignment) enforced_[s] = idx;
  ++enforce_epoch_;
}

void RoundTask::RemoveAssignment(const RoundAssignment& assignment) {
  for (const auto& [s, idx] : assignment) enforced_.erase(s);
  ++enforce_epoch_;
}

uint64_t RoundTask::EnforcementSig(GroupId g) {
  if (phase_ == 1 || ctx_->shared_info() == nullptr) return 0;
  const std::vector<GroupId>& below = ctx_->SharedBelowSorted(g);
  if (below.empty()) return 0;
  size_t i = static_cast<size_t>(g);
  if (sig_memo_.size() <= i) {
    size_t n = static_cast<size_t>(ctx_->memo().num_groups());
    sig_memo_.resize(n > i ? n : i + 1, {0, 0});
  }
  if (sig_memo_[i].first == enforce_epoch_) return sig_memo_[i].second;
  uint64_t sig = kPhase2SigSeed;
  for (GroupId sg : below) {
    auto it = enforced_.find(sg);
    if (it == enforced_.end()) continue;
    sig = HashCombine(
        sig, (static_cast<uint64_t>(static_cast<uint32_t>(sg)) << 32) |
                 static_cast<uint32_t>(it->second));
  }
  sig_memo_[i] = {enforce_epoch_, sig};
  return sig;
}

RoundResult RoundTask::EvaluateRound(GroupId lca, const RequiredProps& req,
                                     const RoundAssignment& assignment,
                                     double bound) {
  RoundResult out;
  if (scheduler_ != nullptr && scheduler_->BudgetExceeded()) {
    out.budget_skipped = true;
    return out;
  }
  InstallAssignment(assignment);
  // The round root is never cached (only OptimizeGroup writes winners_),
  // so seeding the alternative comparison with the class bound cannot
  // poison any cache entry. out.cost is the accumulator's winning cost —
  // the same memoized DagCost the old PlanCost re-walk computed.
  out.plan = LogPhysOpt(lca, req, &out.cost, bound);
  RemoveAssignment(assignment);
  return out;
}

PhysicalNodePtr RoundTask::OptimizeGroup(GroupId g, const RequiredProps& req) {
  WinnerKey key{g, ctx_->InternProps(req), EnforcementSig(g)};
  if (const std::optional<PhysicalNodePtr>* hit = FindWinner(key)) {
    ++counters_.winner_hits;
    return hit->has_value() ? **hit : nullptr;
  }
  ++counters_.winner_misses;

  if (phase_ == 1 && ctx_->mode() == OptimizerMode::kCse &&
      ctx_->memo().group(g).is_shared() && build_ctx_ != nullptr) {
    build_ctx_->RecordHistory(g, req);
  }

  PhysicalNodePtr plan;
  if (phase_ == 2 && enforced_.count(g) != 0) {
    plan = OptimizeSharedEnforced(g, req);
  } else if (phase_ == 2 && ctx_->shared_info() != nullptr &&
             in_rounds_.count(g) == 0 && !scheduler_->budget_exhausted() &&
             !ctx_->shared_info()->SharedGroupsWithLca(g).empty()) {
    plan = scheduler_->RunRoundsAt(this, g, req);
  } else {
    plan = LogPhysOpt(g, req);
  }

  if (phase_ == 1 && ctx_->mode() == OptimizerMode::kCse &&
      ctx_->memo().group(g).is_shared() && plan != nullptr &&
      build_ctx_ != nullptr) {
    build_ctx_->CreditDelivered(g, plan->delivered);
  }

  winners_[key] = plan;
  return plan;
}

PhysicalNodePtr RoundTask::SpoolBase(GroupId g, int entry_index) {
  GroupId child = ctx_->memo().group(g).initial_expr().children[0];
  // Nested enforcement below the spool can change the base across outer
  // rounds; include the child's enforcement signature in the key.
  SpoolKey full_key{g, entry_index, EnforcementSig(child)};
  if (const PhysicalNodePtr* hit = FindSpool(full_key)) {
    ++counters_.spool_hits;
    return *hit;
  }
  ++counters_.spool_misses;

  RequiredProps eprops;  // trivial for the naive-sharing sentinel entry
  if (entry_index != kNaiveEntryIndex) {
    const PropertyHistory* h = ctx_->HistoryOf(g);
    if (h != nullptr && entry_index < h->size()) {
      eprops = h->entry(entry_index).props;
    }
  }
  PhysicalNodePtr cp = OptimizeGroup(child, eprops);
  PhysicalNodePtr spool;
  if (cp != nullptr) {
    double write = ctx_->cost_model().SpoolWrite(StatsOf(child),
                                                 cp->delivered.partitioning);
    spool = MakePhysicalNode(PhysicalOpKind::kSpool,
                             ctx_->memo().group(g).initial_expr().op, g, {cp},
                             cp->delivered, write);
    spool->extra_consumer_cost = ctx_->cost_model().SpoolRead(
        StatsOf(child), cp->delivered.partitioning);
  }
  spool_bases_[full_key] = spool;
  return spool;
}

PhysicalNodePtr RoundTask::OptimizeSharedEnforced(GroupId g,
                                                  const RequiredProps& req) {
  PhysicalNodePtr base = SpoolBase(g, enforced_.at(g));
  if (base == nullptr) return nullptr;
  AltAccumulator acc(ctx_->mode(), kInf, &counters_);
  WrapEnforcersOverBase(g, base, req, &acc);
  return acc.TakeBest();
}

void RoundTask::WrapEnforcersOverBase(GroupId g, const PhysicalNodePtr& base,
                                      const RequiredProps& req,
                                      AltAccumulator* acc) {
  const CostModel& cost_model = ctx_->cost_model();
  const GroupStats& stats = StatsOf(g);
  if (PropertySatisfied(req, base->delivered)) {
    acc->Consider(base);
    return;
  }
  bool part_ok = req.partitioning.SatisfiedBy(base->delivered.partitioning);
  if (part_ok) {
    // Only the sort is missing: sort each partition above the spool.
    DeliveredProps d{base->delivered.partitioning, req.sort};
    PhysicalNodePtr sort = MakePhysicalNode(
        PhysicalOpKind::kSort, base->proto, g, {base}, d,
        cost_model.Sort(stats, base->delivered.partitioning));
    sort->sort_spec = req.sort;
    acc->Consider(std::move(sort));
    return;
  }
  if (req.partitioning.kind == PartReqKind::kSerial) {
    DeliveredProps d{Partitioning::Serial(), base->delivered.sort};
    PhysicalNodePtr gather =
        MakePhysicalNode(PhysicalOpKind::kGather, base->proto, g, {base}, d,
                         cost_model.Gather(stats));
    if (PropertySatisfied(req, gather->delivered)) {
      acc->Consider(gather);
    } else {
      DeliveredProps ds{Partitioning::Serial(), req.sort};
      PhysicalNodePtr sort = MakePhysicalNode(
          PhysicalOpKind::kSort, base->proto, g, {gather}, ds,
          cost_model.Sort(stats, Partitioning::Serial()));
      sort->sort_spec = req.sort;
      acc->Consider(std::move(sort));
    }
    return;
  }
  if (req.partitioning.kind == PartReqKind::kRangeExact) {
    Partitioning range = Partitioning::Range(req.partitioning.range_cols);
    DeliveredProps d{range, {}};
    PhysicalNodePtr ex = MakePhysicalNode(
        PhysicalOpKind::kRangeExchange, base->proto, g, {base}, d,
        cost_model.RangeExchange(stats, base->delivered.partitioning,
                                 req.partitioning.cols));
    ex->exchange_cols = req.partitioning.cols;
    if (req.sort.Empty()) {
      acc->Consider(std::move(ex));
    } else {
      DeliveredProps ds{range, req.sort};
      PhysicalNodePtr sort =
          MakePhysicalNode(PhysicalOpKind::kSort, base->proto, g, {ex}, ds,
                           cost_model.Sort(stats, range));
      sort->sort_spec = req.sort;
      acc->Consider(std::move(sort));
    }
    return;
  }

  for (ColumnSet& cols : ctx_->EnforceCandidates(req.partitioning)) {
    // Order-preserving exchange when the spool already delivers the order.
    if (!req.sort.Empty() &&
        base->delivered.sort.SatisfiesPrefix(req.sort)) {
      DeliveredProps d{Partitioning::Hash(cols), base->delivered.sort};
      PhysicalNodePtr ex = MakePhysicalNode(
          PhysicalOpKind::kMergeExchange, base->proto, g, {base}, d,
          cost_model.MergeExchange(stats, base->delivered.partitioning,
                                   cols));
      ex->exchange_cols = cols;
      acc->Consider(std::move(ex));
      continue;
    }
    DeliveredProps d{Partitioning::Hash(cols), {}};
    PhysicalNodePtr ex = MakePhysicalNode(
        PhysicalOpKind::kHashExchange, base->proto, g, {base}, d,
        cost_model.HashExchange(stats, base->delivered.partitioning, cols));
    ex->exchange_cols = cols;
    if (req.sort.Empty()) {
      acc->Consider(std::move(ex));
    } else {
      DeliveredProps ds{Partitioning::Hash(cols), req.sort};
      PhysicalNodePtr sort = MakePhysicalNode(
          PhysicalOpKind::kSort, base->proto, g, {ex}, ds,
          cost_model.Sort(stats, Partitioning::Hash(cols)));
      sort->sort_spec = req.sort;
      acc->Consider(std::move(sort));
    }
  }
}

PhysicalNodePtr RoundTask::LogPhysOpt(GroupId g, const RequiredProps& req,
                                      double* out_cost, double bound) {
  if (build_ctx_ != nullptr) build_ctx_->EnsureExplored(g);
  AltAccumulator acc(ctx_->mode(), bound, &counters_);
  if (ctx_->frozen()) {
    // Frozen memo: iterate in place, no rule can append.
    for (const GroupExpr& expr : ctx_->memo().group(g).exprs()) {
      ImplementExpr(g, expr, req, &acc);
    }
  } else {
    // Copy: nested OptimizeGroup calls may add expressions to other groups
    // (and rules could add to this one) while we iterate.
    std::vector<GroupExpr> exprs = ctx_->memo().group(g).exprs();
    for (const GroupExpr& expr : exprs) {
      ImplementExpr(g, expr, req, &acc);
    }
  }
  EnforceAlternatives(g, req, &acc);
  if (out_cost != nullptr) *out_cost = acc.best_cost();
  return acc.TakeBest();
}

void RoundTask::ImplementExpr(GroupId g, const GroupExpr& expr,
                              const RequiredProps& req, AltAccumulator* acc) {
  const CostModel& cost_model = ctx_->cost_model();
  const LogicalNode& op = *expr.op;
  auto push_if_valid = [&](PhysicalNodePtr node) {
    if (node != nullptr && PropertySatisfied(req, node->delivered)) {
      acc->Consider(std::move(node));
    }
  };

  switch (op.kind()) {
    case LogicalOpKind::kExtract: {
      DeliveredProps d{Partitioning::Random(), {}};
      push_if_valid(MakePhysicalNode(PhysicalOpKind::kExtract, expr.op, g, {},
                                     d, cost_model.Extract(StatsOf(g))));
      break;
    }
    case LogicalOpKind::kFilter: {
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], req);
      if (cp == nullptr) break;
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kFilter, expr.op, g, {cp}, cp->delivered,
          cost_model.Filter(StatsOf(expr.children[0]),
                            cp->delivered.partitioning)));
      break;
    }
    case LogicalOpKind::kProject: {
      RequiredProps creq = MapRequiredThroughProject(req, op.project_map);
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], creq);
      if (cp == nullptr) break;
      DeliveredProps d =
          MapDeliveredThroughProject(cp->delivered, op.project_map);
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kProject, expr.op, g, {cp}, d,
          cost_model.Project(StatsOf(expr.children[0]),
                             cp->delivered.partitioning)));
      break;
    }
    case LogicalOpKind::kCompute: {
      // Passthrough items keep their column ids, so requirements on them
      // push straight through; requirements touching computed outputs
      // cannot (the enforcer framework compensates above this node).
      ColumnSet pass;
      for (const ComputeItem& item : op.compute_items) {
        if (item.IsPassthrough()) pass.Insert(item.out);
      }
      RequiredProps creq;
      if (req.partitioning.kind == PartReqKind::kNone ||
          req.partitioning.kind == PartReqKind::kSerial ||
          req.partitioning.cols.IsSubsetOf(pass)) {
        creq.partitioning = req.partitioning;
      }
      for (ColumnId c : req.sort.cols) {
        if (!pass.Contains(c)) break;
        creq.sort.cols.push_back(c);
      }
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], creq);
      if (cp == nullptr) break;
      DeliveredProps d;
      const Partitioning& cpart = cp->delivered.partitioning;
      if (cpart.kind != PartitioningKind::kHash &&
          cpart.kind != PartitioningKind::kRange) {
        d.partitioning = cpart;
      } else if (cpart.cols.IsSubsetOf(pass)) {
        d.partitioning = cpart;
      } else {
        d.partitioning = Partitioning::Random();
      }
      for (ColumnId c : cp->delivered.sort.cols) {
        if (!pass.Contains(c)) break;
        d.sort.cols.push_back(c);
      }
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kCompute, expr.op, g, {cp}, d,
          cost_model.Project(StatsOf(expr.children[0]),
                             cp->delivered.partitioning)));
      break;
    }
    case LogicalOpKind::kSpool: {
      // Un-enforced spool (phase 1, or phase 2 after budget exhaustion):
      // pass the consumer's requirement through to the producer.
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], req);
      if (cp == nullptr) break;
      PhysicalNodePtr spool = MakePhysicalNode(
          PhysicalOpKind::kSpool, expr.op, g, {cp}, cp->delivered,
          cost_model.SpoolWrite(StatsOf(expr.children[0]),
                                cp->delivered.partitioning));
      spool->extra_consumer_cost = cost_model.SpoolRead(
          StatsOf(expr.children[0]), cp->delivered.partitioning);
      push_if_valid(std::move(spool));
      break;
    }
    case LogicalOpKind::kOutput: {
      // ORDER BY output: a globally ordered file can be produced either by
      // gathering everything into one sorted partition (Gather + Sort
      // enforcers) or, in parallel, by range-partitioning on the order
      // columns and sorting each partition — partition order then follows
      // key order. Both alternatives are costed.
      std::vector<RequiredProps> creqs;
      if (op.order_by.empty()) {
        creqs.push_back(RequiredProps{});
      } else {
        creqs.push_back(RequiredProps{PartitioningReq::Serial(),
                                      SortSpec{op.order_by}});
        creqs.push_back(RequiredProps{
            PartitioningReq::RangeExactly(op.order_by),
            SortSpec{op.order_by}});
      }
      for (const RequiredProps& creq : creqs) {
        PhysicalNodePtr cp = OptimizeGroup(expr.children[0], creq);
        if (cp == nullptr) continue;
        push_if_valid(MakePhysicalNode(
            PhysicalOpKind::kOutput, expr.op, g, {cp}, cp->delivered,
            cost_model.Output(StatsOf(expr.children[0]),
                              cp->delivered.partitioning)));
      }
      break;
    }
    case LogicalOpKind::kSequence: {
      std::vector<PhysicalNodePtr> children;
      bool ok = true;
      for (GroupId c : expr.children) {
        PhysicalNodePtr cp = OptimizeGroup(c, RequiredProps{});
        if (cp == nullptr) {
          ok = false;
          break;
        }
        children.push_back(std::move(cp));
      }
      if (!ok) break;
      DeliveredProps d{Partitioning::Random(), {}};
      push_if_valid(MakePhysicalNode(PhysicalOpKind::kSequence, expr.op, g,
                                     std::move(children), d, 0));
      break;
    }
    case LogicalOpKind::kGbAgg:
    case LogicalOpKind::kGlobalGbAgg: {
      GroupId child = expr.children[0];
      std::optional<PartitioningReq> combined =
          op.group_cols.empty()
              ? std::optional<PartitioningReq>(PartitioningReq::Serial())
              : CombinePartReq(req.partitioning,
                               ColumnSet::FromVector(op.group_cols));
      if (!combined.has_value()) break;  // enforcers compensate above
      PartitioningReq part_req = *combined;
      // Stream aggregate: input sorted on a grouping-column order chosen to
      // also serve the required output order.
      std::optional<SortSpec> order = ExtendSort(req.sort, op.group_cols);
      if (order.has_value()) {
        RequiredProps creq{part_req, *order};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, *order};
          PhysicalNodePtr agg = MakePhysicalNode(
              PhysicalOpKind::kStreamAgg, expr.op, g, {cp}, d,
              cost_model.StreamAgg(StatsOf(child),
                                   cp->delivered.partitioning));
          agg->sort_spec = *order;
          push_if_valid(std::move(agg));
        }
      }
      // Hash aggregate: no input order needed, no output order delivered.
      {
        RequiredProps creq{part_req, {}};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, {}};
          push_if_valid(MakePhysicalNode(
              PhysicalOpKind::kHashAgg, expr.op, g, {cp}, d,
              cost_model.HashAgg(StatsOf(child),
                                 cp->delivered.partitioning)));
        }
      }
      break;
    }
    case LogicalOpKind::kLocalGbAgg: {
      // A local (partial) aggregate works on any placement and preserves it,
      // so the parent's partitioning requirement passes straight through.
      GroupId child = expr.children[0];
      std::optional<SortSpec> order = ExtendSort(req.sort, op.group_cols);
      if (order.has_value()) {
        RequiredProps creq{req.partitioning, *order};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, *order};
          PhysicalNodePtr agg = MakePhysicalNode(
              PhysicalOpKind::kStreamAgg, expr.op, g, {cp}, d,
              cost_model.StreamAgg(StatsOf(child),
                                   cp->delivered.partitioning));
          agg->sort_spec = *order;
          push_if_valid(std::move(agg));
        }
      }
      {
        RequiredProps creq{req.partitioning, {}};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, {}};
          push_if_valid(MakePhysicalNode(
              PhysicalOpKind::kHashAgg, expr.op, g, {cp}, d,
              cost_model.HashAgg(StatsOf(child),
                                 cp->delivered.partitioning)));
        }
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      ImplementJoin(g, expr, req, acc);
      break;
    }
    case LogicalOpKind::kUnionAll: {
      std::vector<PhysicalNodePtr> children;
      bool ok = true;
      for (GroupId c : expr.children) {
        PhysicalNodePtr cp = OptimizeGroup(c, RequiredProps{});
        if (cp == nullptr) {
          ok = false;
          break;
        }
        children.push_back(std::move(cp));
      }
      if (!ok) break;
      // Concatenation gives no placement or order guarantee (the sources'
      // column identities differ, so even matching schemes are
      // inexpressible on the output ids).
      DeliveredProps d{Partitioning::Random(), {}};
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kUnionAll, expr.op, g, std::move(children), d,
          cost_model.Project(StatsOf(g), Partitioning::Random())));
      break;
    }
  }
}

void RoundTask::ImplementJoin(GroupId g, const GroupExpr& expr,
                              const RequiredProps& req, AltAccumulator* acc) {
  const CostModel& cost_model = ctx_->cost_model();
  const LogicalNode& op = *expr.op;
  GroupId left = expr.children[0];
  GroupId right = expr.children[1];
  std::vector<ColumnId> lkeys, rkeys;
  for (const auto& [l, r] : op.join_keys) {
    lkeys.push_back(l);
    rkeys.push_back(r);
  }
  auto push_if_valid = [&](PhysicalNodePtr node) {
    if (node != nullptr && PropertySatisfied(req, node->delivered)) {
      acc->Consider(std::move(node));
    }
  };

  // Aligns the follower side's required columns with the positions the
  // driver side actually delivered.
  auto aligned_cols = [&](const ColumnSet& driver_cols,
                          const std::vector<ColumnId>& driver_keys,
                          const std::vector<ColumnId>& other_keys) {
    ColumnSet out;
    for (size_t i = 0; i < driver_keys.size(); ++i) {
      if (driver_cols.Contains(driver_keys[i])) out.Insert(other_keys[i]);
    }
    return out;
  };
  // Mirror of aligned_cols, mapping follower columns back to the left side
  // so delivered partitioning is always expressed in left-side columns.
  auto left_side_cols = [&](const ColumnSet& driver_cols, bool driver_left) {
    if (driver_left) return driver_cols;
    return aligned_cols(driver_cols, rkeys, lkeys);
  };

  // Hash join, driver side optimized first with a free subset requirement;
  // the other side is then pinned to the aligned exact scheme.
  for (bool driver_left : {true, false}) {
    GroupId driver = driver_left ? left : right;
    GroupId other = driver_left ? right : left;
    const std::vector<ColumnId>& dkeys = driver_left ? lkeys : rkeys;
    const std::vector<ColumnId>& okeys = driver_left ? rkeys : lkeys;

    // Fold the parent's partitioning requirement into the driver's when it
    // speaks of this side's key columns (delivered partitioning is always
    // expressed in left-side columns, so only fold for the left driver).
    std::optional<PartitioningReq> dpart =
        driver_left
            ? CombinePartReq(req.partitioning, ColumnSet::FromVector(dkeys))
            : std::optional<PartitioningReq>(
                  PartitioningReq::SubsetOf(ColumnSet::FromVector(dkeys)));
    if (!dpart.has_value()) continue;
    RequiredProps dreq{*dpart, {}};
    PhysicalNodePtr dp = OptimizeGroup(driver, dreq);
    if (dp == nullptr) continue;
    // A range-partitioned driver cannot anchor a co-partitioned join: the
    // other side would need the *same* range bounds, which independent
    // exchanges do not share (and hash on the other side never co-locates
    // with range). Equal-key co-location within one stream — what makes
    // range satisfy a kHashSubset aggregate requirement — is not enough
    // across two streams.
    if (dp->delivered.partitioning.kind == PartitioningKind::kRange) {
      continue;
    }
    RequiredProps oreq;
    Partitioning delivered_part;
    if (dp->delivered.partitioning.kind == PartitioningKind::kSerial) {
      oreq.partitioning = PartitioningReq::Serial();
      delivered_part = Partitioning::Serial();
    } else {
      ColumnSet o =
          aligned_cols(dp->delivered.partitioning.cols, dkeys, okeys);
      oreq.partitioning = PartitioningReq::Exactly(o);
      delivered_part = Partitioning::Hash(
          left_side_cols(dp->delivered.partitioning.cols, driver_left));
    }
    PhysicalNodePtr opn = OptimizeGroup(other, oreq);
    if (opn == nullptr) continue;
    PhysicalNodePtr lp = driver_left ? dp : opn;
    PhysicalNodePtr rp = driver_left ? opn : dp;
    DeliveredProps d{delivered_part, {}};
    push_if_valid(MakePhysicalNode(
        PhysicalOpKind::kHashJoin, expr.op, g, {lp, rp}, d,
        cost_model.HashJoin(StatsOf(left), StatsOf(right),
                            delivered_part)));
  }

  // Broadcast hash join: the (presumably small) right side is replicated to
  // every machine, so the left side needs NO particular partitioning — the
  // parent requirement passes straight through and no exchange of the big
  // side is ever needed.
  {
    // Pass the parent's requirement to the left side only where it speaks
    // of left-side columns (the probe stream flows through unchanged).
    // The replicated build side spans the whole cluster, so this variant
    // does not produce serial plans (Gather-based alternatives cover that).
    if (req.partitioning.kind != PartReqKind::kSerial) {
      ColumnSet left_schema_cols = ctx_->memo().group(left).schema().IdSet();
      RequiredProps lreq;
      if (req.partitioning.cols.IsSubsetOf(left_schema_cols)) {
        lreq.partitioning = req.partitioning;
      }
      if (SortSpec{req.sort}.AsSet().IsSubsetOf(left_schema_cols)) {
        lreq.sort = req.sort;
      }
      PhysicalNodePtr lp = OptimizeGroup(left, lreq);
      PhysicalNodePtr rp = OptimizeGroup(right, RequiredProps{});
      if (lp != nullptr && rp != nullptr &&
          lp->delivered.partitioning.kind != PartitioningKind::kSerial) {
        PhysicalNodePtr bcast = MakePhysicalNode(
            PhysicalOpKind::kBroadcastExchange, rp->proto, right, {rp},
            DeliveredProps{Partitioning::Random(), {}},
            cost_model.Broadcast(StatsOf(right)));
        // The probe stream flows through unchanged: placement and order
        // of the left side are preserved.
        DeliveredProps d = lp->delivered;
        push_if_valid(MakePhysicalNode(
            PhysicalOpKind::kHashJoin, expr.op, g, {lp, std::move(bcast)}, d,
            cost_model.HashJoin(StatsOf(left), StatsOf(right),
                                lp->delivered.partitioning)));
      }
    }
  }

  // Merge join (left-driven): both sides sorted on the aligned full key
  // order; preserves the left order downstream.
  {
    SortSpec lorder;
    std::optional<SortSpec> ext = ExtendSort(req.sort, lkeys);
    lorder = ext.has_value() ? *ext : SortSpec{lkeys};
    std::optional<PartitioningReq> lpart =
        CombinePartReq(req.partitioning, ColumnSet::FromVector(lkeys));
    if (!lpart.has_value()) return;
    RequiredProps lreq{*lpart, lorder};
    PhysicalNodePtr lp = OptimizeGroup(left, lreq);
    // Same range-driver exclusion as the hash join above.
    if (lp != nullptr &&
        lp->delivered.partitioning.kind == PartitioningKind::kRange) {
      lp = nullptr;
    }
    if (lp != nullptr) {
      // Right order aligned with the left key permutation.
      SortSpec rorder;
      for (ColumnId lc : lorder.cols) {
        for (size_t i = 0; i < lkeys.size(); ++i) {
          if (lkeys[i] == lc) {
            rorder.cols.push_back(rkeys[i]);
            break;
          }
        }
      }
      RequiredProps rreq;
      Partitioning delivered_part;
      if (lp->delivered.partitioning.kind == PartitioningKind::kSerial) {
        rreq.partitioning = PartitioningReq::Serial();
        delivered_part = Partitioning::Serial();
      } else {
        ColumnSet o =
            aligned_cols(lp->delivered.partitioning.cols, lkeys, rkeys);
        rreq.partitioning = PartitioningReq::Exactly(o);
        delivered_part = lp->delivered.partitioning;
      }
      rreq.sort = rorder;
      PhysicalNodePtr rp = OptimizeGroup(right, rreq);
      if (rp != nullptr) {
        DeliveredProps d{delivered_part, lorder};
        push_if_valid(MakePhysicalNode(
            PhysicalOpKind::kMergeJoin, expr.op, g, {lp, rp}, d,
            cost_model.MergeJoin(StatsOf(left), StatsOf(right),
                                 delivered_part)));
      }
    }
  }
}

void RoundTask::EnforceAlternatives(GroupId g, const RequiredProps& req,
                                    AltAccumulator* acc) {
  const CostModel& cost_model = ctx_->cost_model();
  const GroupStats& stats = StatsOf(g);

  // Sort enforcer: satisfy the partitioning first, then sort in place.
  if (!req.sort.Empty()) {
    RequiredProps relaxed{req.partitioning, {}};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      DeliveredProps d{inner->delivered.partitioning, req.sort};
      PhysicalNodePtr sort = MakePhysicalNode(
          PhysicalOpKind::kSort, inner->proto, g, {inner}, d,
          cost_model.Sort(stats, inner->delivered.partitioning));
      sort->sort_spec = req.sort;
      acc->Consider(std::move(sort));
    }
  }

  if (req.partitioning.kind == PartReqKind::kSerial) {
    RequiredProps relaxed{PartitioningReq::None(), req.sort};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      DeliveredProps d{Partitioning::Serial(), inner->delivered.sort};
      acc->Consider(MakePhysicalNode(PhysicalOpKind::kGather, inner->proto,
                                        g, {inner}, d,
                                        cost_model.Gather(stats)));
    }
    return;
  }

  if (req.partitioning.kind == PartReqKind::kRangeExact) {
    RequiredProps relaxed{PartitioningReq::None(), {}};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      Partitioning range = Partitioning::Range(req.partitioning.range_cols);
      DeliveredProps d{range, {}};
      PhysicalNodePtr ex = MakePhysicalNode(
          PhysicalOpKind::kRangeExchange, inner->proto, g, {inner}, d,
          cost_model.RangeExchange(stats, inner->delivered.partitioning,
                                   req.partitioning.cols));
      ex->exchange_cols = req.partitioning.cols;
      if (req.sort.Empty()) {
        acc->Consider(std::move(ex));
      } else {
        DeliveredProps ds{range, req.sort};
        PhysicalNodePtr sort =
            MakePhysicalNode(PhysicalOpKind::kSort, inner->proto, g, {ex}, ds,
                             cost_model.Sort(stats, range));
        sort->sort_spec = req.sort;
        acc->Consider(std::move(sort));
      }
    }
    return;
  }

  if (req.partitioning.kind != PartReqKind::kHashSubset &&
      req.partitioning.kind != PartReqKind::kHashExact) {
    return;
  }

  for (ColumnSet& cols : ctx_->EnforceCandidates(req.partitioning)) {
    // Plain hash repartition (destroys order) + optional sort above.
    RequiredProps relaxed{PartitioningReq::None(), {}};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      DeliveredProps d{Partitioning::Hash(cols), {}};
      PhysicalNodePtr ex = MakePhysicalNode(
          PhysicalOpKind::kHashExchange, inner->proto, g, {inner}, d,
          cost_model.HashExchange(stats, inner->delivered.partitioning,
                                  cols));
      ex->exchange_cols = cols;
      if (req.sort.Empty()) {
        acc->Consider(std::move(ex));
      } else {
        DeliveredProps ds{Partitioning::Hash(cols), req.sort};
        PhysicalNodePtr sort =
            MakePhysicalNode(PhysicalOpKind::kSort, inner->proto, g, {ex}, ds,
                             cost_model.Sort(stats, Partitioning::Hash(cols)));
        sort->sort_spec = req.sort;
        acc->Consider(std::move(sort));
      }
    }
    // Order-preserving merge repartition over a locally sorted input.
    if (!req.sort.Empty()) {
      RequiredProps sorted_relax{PartitioningReq::None(), req.sort};
      PhysicalNodePtr inner2 = OptimizeGroup(g, sorted_relax);
      if (inner2 != nullptr) {
        DeliveredProps d{Partitioning::Hash(cols), inner2->delivered.sort};
        PhysicalNodePtr ex = MakePhysicalNode(
            PhysicalOpKind::kMergeExchange, inner2->proto, g, {inner2}, d,
            cost_model.MergeExchange(stats, inner2->delivered.partitioning,
                                     cols));
        ex->exchange_cols = cols;
        acc->Consider(std::move(ex));
      }
    }
  }
}

}  // namespace scx
