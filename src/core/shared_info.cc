#include "core/shared_info.h"

#include <algorithm>

namespace scx {

namespace {

/// Distinct child groups of `g` across all its expressions.
std::vector<GroupId> ChildrenOf(const Memo& memo, GroupId g) {
  std::set<GroupId> out;
  for (const GroupExpr& e : memo.group(g).exprs()) {
    for (GroupId c : e.children) out.insert(c);
  }
  return {out.begin(), out.end()};
}

/// Distinct parent groups, restricted to groups reachable from the root.
std::map<GroupId, std::set<GroupId>> ParentMap(
    const Memo& memo, const std::vector<GroupId>& topo) {
  std::map<GroupId, std::set<GroupId>> parents;
  std::set<GroupId> reachable(topo.begin(), topo.end());
  for (GroupId g : topo) {
    parents[g];  // ensure key
    for (GroupId c : ChildrenOf(memo, g)) {
      if (reachable.count(c)) parents[c].insert(g);
    }
  }
  return parents;
}

/// Paper Algorithm 3 state: one ShrdGrp node per shared group known below.
struct ShrdGrpEntry {
  GroupId shared_group = kInvalidGroup;
  std::set<GroupId> consumers_found;
};

}  // namespace

SharedInfo SharedInfo::Compute(const Memo& memo) {
  SharedInfo info;
  std::vector<GroupId> topo = memo.TopologicalOrder();
  std::set<GroupId> reachable(topo.begin(), topo.end());

  for (GroupId g : topo) {
    if (memo.group(g).is_shared()) info.shared_groups_.push_back(g);
  }

  // Consumers: distinct reachable parent groups of each shared group.
  // Rule-generated groups (e.g. the LocalGbAgg half of an aggregate split)
  // are implementation details of their own parent group, not consumers.
  std::map<GroupId, std::set<GroupId>> parents = ParentMap(memo, topo);
  for (GroupId s : info.shared_groups_) {
    std::set<GroupId> consumers;
    for (GroupId p : parents.at(s)) {
      if (!memo.group(p).rule_generated()) consumers.insert(p);
    }
    info.consumers_[s] = std::move(consumers);
  }

  // Shared-below sets, children before parents.
  for (GroupId g : topo) {
    std::set<GroupId>& below = info.shared_below_[g];
    if (memo.group(g).is_shared()) below.insert(g);
    for (GroupId c : ChildrenOf(memo, g)) {
      if (!reachable.count(c)) continue;
      const std::set<GroupId>& cb = info.shared_below_[c];
      below.insert(cb.begin(), cb.end());
    }
  }

  // --- Paper Algorithm 3 (PropagateSharedGrpInfoAndFindLCA) ---
  // `topo` is already a valid bottom-up visit order, so the recursive
  // formulation is flattened into one pass.
  std::map<GroupId, std::vector<ShrdGrpEntry>> entries;
  for (GroupId g : topo) {
    std::vector<ShrdGrpEntry>& mine = entries[g];
    if (memo.group(g).is_shared()) {
      mine.push_back(ShrdGrpEntry{g, {}});
    }
    for (GroupId input : ChildrenOf(memo, g)) {
      if (!reachable.count(input)) continue;
      for (const ShrdGrpEntry& in_entry : entries[input]) {
        ShrdGrpEntry* found = nullptr;
        for (ShrdGrpEntry& e : mine) {
          if (e.shared_group == in_entry.shared_group) {
            found = &e;
            break;
          }
        }
        GroupId s = in_entry.shared_group;
        const std::set<GroupId>& all_consumers = info.consumers_.at(s);
        if (found != nullptr) {
          // Propagate information of consumer groups; G is a potential LCA
          // when all consumers are now found (SetLCA overwrites).
          found->consumers_found.insert(in_entry.consumers_found.begin(),
                                        in_entry.consumers_found.end());
          if (input == s && all_consumers.count(g)) {
            found->consumers_found.insert(g);
          }
          if (found->consumers_found == all_consumers) {
            info.alg3_lca_[s] = g;
          }
        } else {
          ShrdGrpEntry copy = in_entry;
          if (input == s && all_consumers.count(g)) {
            copy.consumers_found.insert(g);
          }
          mine.push_back(std::move(copy));
        }
      }
    }
  }

  // --- Authoritative LCA via post-dominators ---
  info.lca_ = LcaByPostDominators(memo);
  return info;
}

const std::set<GroupId>& SharedInfo::SharedBelow(GroupId g) const {
  auto it = shared_below_.find(g);
  if (it == shared_below_.end()) return empty_;
  return it->second;
}

std::vector<GroupId> SharedInfo::SharedGroupsWithLca(GroupId g) const {
  std::vector<GroupId> out;
  for (GroupId s : shared_groups_) {
    auto it = lca_.find(s);
    if (it != lca_.end() && it->second == g) out.push_back(s);
  }
  return out;
}

std::map<GroupId, GroupId> SharedInfo::LcaByPostDominators(const Memo& memo) {
  std::vector<GroupId> topo = memo.TopologicalOrder();
  std::map<GroupId, std::set<GroupId>> parents = ParentMap(memo, topo);

  // Post-dominators over the parent-edge DAG with the root as single exit:
  // PD(root) = {root}; PD(g) = {g} ∪ ∩_{p ∈ parents(g)} PD(p).
  // Processing in reverse topological order visits parents before children.
  std::map<GroupId, std::set<GroupId>> pd;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    GroupId g = *it;
    std::set<GroupId> acc;
    bool first = true;
    for (GroupId p : parents.at(g)) {
      if (first) {
        acc = pd.at(p);
        first = false;
      } else {
        std::set<GroupId> tmp;
        std::set_intersection(acc.begin(), acc.end(), pd.at(p).begin(),
                              pd.at(p).end(),
                              std::inserter(tmp, tmp.begin()));
        acc = std::move(tmp);
      }
    }
    acc.insert(g);
    pd[g] = std::move(acc);
  }

  std::map<GroupId, GroupId> lca;
  for (GroupId s : topo) {
    if (!memo.group(s).is_shared()) continue;
    const std::set<GroupId>& consumers = parents.at(s);
    if (consumers.empty()) continue;
    std::set<GroupId> common;
    bool first = true;
    for (GroupId c : consumers) {
      if (first) {
        common = pd.at(c);
        first = false;
      } else {
        std::set<GroupId> tmp;
        std::set_intersection(common.begin(), common.end(), pd.at(c).begin(),
                              pd.at(c).end(),
                              std::inserter(tmp, tmp.begin()));
        common = std::move(tmp);
      }
    }
    // The LCA is the nearest common post-dominator: the element of `common`
    // whose own post-dominator set is exactly `common` (the sets along the
    // post-dominator chain are nested).
    GroupId best = memo.root();
    for (GroupId y : common) {
      if (pd.at(y) == common) {
        best = y;
        break;
      }
    }
    lca[s] = best;
  }
  return lca;
}

std::vector<std::vector<GroupId>> SharedInfo::IndependenceClassesAt(
    const Memo& memo, GroupId g) const {
  std::vector<GroupId> mine = SharedGroupsWithLca(g);
  if (mine.empty()) return {};
  std::set<GroupId> mine_set(mine.begin(), mine.end());

  // Sec. VIII-A: take the shared-group sets under each input of the LCA,
  // keep only groups whose LCA is g, then iteratively merge sets that share
  // an element. The final sets are the independence classes.
  std::vector<std::set<GroupId>> sets;
  for (GroupId input : ChildrenOf(memo, g)) {
    std::set<GroupId> s;
    for (GroupId shared : SharedBelow(input)) {
      if (mine_set.count(shared)) s.insert(shared);
    }
    if (!s.empty()) sets.push_back(std::move(s));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < sets.size() && !changed; ++i) {
      for (size_t j = i + 1; j < sets.size() && !changed; ++j) {
        bool overlap = false;
        for (GroupId x : sets[i]) {
          if (sets[j].count(x)) {
            overlap = true;
            break;
          }
        }
        if (overlap) {
          sets[i].insert(sets[j].begin(), sets[j].end());
          sets.erase(sets.begin() + static_cast<long>(j));
          changed = true;
        }
      }
    }
  }
  std::vector<std::vector<GroupId>> out;
  for (const std::set<GroupId>& s : sets) {
    out.emplace_back(s.begin(), s.end());
  }
  // Deterministic order: by smallest member.
  std::sort(out.begin(), out.end());
  return out;
}

std::string SharedInfo::ToString(const Memo& memo) const {
  std::string out;
  for (GroupId s : shared_groups_) {
    out += "shared group " + std::to_string(s) + ": consumers={";
    bool first = true;
    for (GroupId c : consumers_.at(s)) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(c);
    }
    out += "} LCA=" + std::to_string(lca_.count(s) ? lca_.at(s) : -1);
    auto it = alg3_lca_.find(s);
    out += " (Alg3: " +
           std::to_string(it != alg3_lca_.end() ? it->second : -1) + ")\n";
  }
  (void)memo;
  return out;
}

}  // namespace scx
