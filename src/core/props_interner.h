#ifndef SCX_CORE_PROPS_INTERNER_H_
#define SCX_CORE_PROPS_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "props/physical_props.h"

namespace scx {

/// Dense id for one distinct RequiredProps value within one optimization
/// run. Ids are only meaningful inside the run that produced them (the
/// assignment order depends on which thread interns a new set first), but
/// the props → id mapping itself is stable: equal property sets always get
/// equal ids, which is all the winner-cache keys need.
using PropsId = int32_t;

/// Interns RequiredProps values to dense PropsIds so the phase-2 hot path
/// can key its caches with a 4-byte id instead of a heap-allocated
/// `req.ToString()` string. Phase-1 requests, history entries, and enforcer
/// relaxations all pass through here (every request enters via
/// RoundTask::OptimizeGroup, histories via OptimizationContext::
/// RecordHistory).
///
/// Thread-safe: phase-2 worker tasks may intern requirement sets that only
/// arise under a particular round's enforcement (e.g. join follower
/// requirements pinned to a driver's delivered scheme). Lookups take a
/// shared lock; the rare first-time insert upgrades to an exclusive lock.
class PropsInterner {
 public:
  PropsId Intern(const RequiredProps& props) {
    uint64_t h = props.HashValue();
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = ids_.find(h);
      if (it != ids_.end()) {
        const PropsId* id = FindExact(it->second, props);
        if (id != nullptr) return *id;
      }
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    std::vector<PropsId>& bucket = ids_[h];
    const PropsId* id = FindExact(bucket, props);
    if (id != nullptr) return *id;
    PropsId fresh = static_cast<PropsId>(by_id_.size());
    by_id_.push_back(props);
    bucket.push_back(fresh);
    return fresh;
  }

  /// The interned value for `id` (debugging / tests).
  RequiredProps Get(PropsId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return by_id_[static_cast<size_t>(id)];
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return by_id_.size();
  }

 private:
  /// Buckets hold every id whose props hash to the same 64-bit value; the
  /// exact equality check below makes hash collisions harmless.
  const PropsId* FindExact(const std::vector<PropsId>& bucket,
                           const RequiredProps& props) const {
    for (const PropsId& id : bucket) {
      if (by_id_[static_cast<size_t>(id)] == props) return &id;
    }
    return nullptr;
  }

  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::vector<PropsId>> ids_;
  std::deque<RequiredProps> by_id_;  // deque: stable under growth
};

}  // namespace scx

#endif  // SCX_CORE_PROPS_INTERNER_H_
