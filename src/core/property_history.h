#ifndef SCX_CORE_PROPERTY_HISTORY_H_
#define SCX_CORE_PROPERTY_HISTORY_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/props_interner.h"
#include "props/physical_props.h"

namespace scx {

/// Paper Sec. V: the history of physical property sets requested at a shared
/// group during phase 1. A partitioning requirement [∅,C] is expanded by the
/// recorder into one kHashExact entry per non-empty subset of C; `wins`
/// counts how often an entry matched a best local plan (used by the
/// Sec. VIII-C property ranking).
///
/// Membership is tracked by interned PropsId in a hash index, so Add is
/// O(1) amortized instead of a linear scan with full RequiredProps equality
/// per phase-1 record. Insertion order of entries_ is preserved (rounds
/// enumerate entries by index), and RankByWins keeps the index in sync.
class PropertyHistory {
 public:
  struct Entry {
    RequiredProps props;
    PropsId props_id = -1;
    int wins = 0;
  };

  /// Adds `props` unless present. Returns true when added.
  bool Add(const RequiredProps& props, PropsInterner& interner) {
    PropsId id = interner.Intern(props);
    auto [it, inserted] = index_.emplace(id, static_cast<int>(entries_.size()));
    if (!inserted) return false;
    entries_.push_back(Entry{props, id, 0});
    return true;
  }

  bool Contains(PropsId id) const { return index_.count(id) != 0; }

  /// Entry index of the interned id, -1 when absent.
  int IndexOf(PropsId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? -1 : it->second;
  }

  /// Credits the most specific entry consistent with a winner that
  /// delivered `delivered` (paper Sec. VIII-C: how often a property set
  /// generated a best local plan in phase 1). Stays a linear scan: this is
  /// a compatibility match (delivered sort satisfying a required prefix),
  /// not an equality lookup, so the hash index does not apply.
  void CreditDelivered(const DeliveredProps& delivered) {
    Entry* best = nullptr;
    for (Entry& e : entries_) {
      bool part_match =
          (e.props.partitioning.kind == PartReqKind::kHashExact &&
           delivered.partitioning.kind == PartitioningKind::kHash &&
           delivered.partitioning.cols == e.props.partitioning.cols) ||
          (e.props.partitioning.kind == PartReqKind::kSerial &&
           delivered.partitioning.kind == PartitioningKind::kSerial);
      if (!part_match) continue;
      if (!delivered.sort.SatisfiesPrefix(e.props.sort)) continue;
      if (best == nullptr ||
          e.props.sort.cols.size() > best->props.sort.cols.size()) {
        best = &e;
      }
    }
    if (best != nullptr) ++best->wins;
  }

  /// Reorders entries by descending win count (stable) — Sec. VIII-C.
  void RankByWins() {
    std::stable_sort(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.wins > b.wins; });
    for (size_t i = 0; i < entries_.size(); ++i) {
      index_[entries_[i].props_id] = static_cast<int>(i);
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }
  int size() const { return static_cast<int>(entries_.size()); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(int i) const { return entries_[static_cast<size_t>(i)]; }

 private:
  std::vector<Entry> entries_;
  std::unordered_map<PropsId, int> index_;  ///< props_id → entries_ position
};

}  // namespace scx

#endif  // SCX_CORE_PROPERTY_HISTORY_H_
