#ifndef SCX_CORE_PROPERTY_HISTORY_H_
#define SCX_CORE_PROPERTY_HISTORY_H_

#include <algorithm>
#include <vector>

#include "props/physical_props.h"

namespace scx {

/// Paper Sec. V: the history of physical property sets requested at a shared
/// group during phase 1. A partitioning requirement [∅,C] is expanded by the
/// recorder into one kHashExact entry per non-empty subset of C; `wins`
/// counts how often an entry matched a best local plan (used by the
/// Sec. VIII-C property ranking).
class PropertyHistory {
 public:
  struct Entry {
    RequiredProps props;
    int wins = 0;
  };

  /// Adds `props` unless present. Returns true when added.
  bool Add(const RequiredProps& props) {
    for (const Entry& e : entries_) {
      if (e.props == props) return false;
    }
    entries_.push_back(Entry{props, 0});
    return true;
  }

  bool Contains(const RequiredProps& props) const {
    for (const Entry& e : entries_) {
      if (e.props == props) return true;
    }
    return false;
  }

  /// Credits the most specific entry consistent with a winner that
  /// delivered `delivered` (paper Sec. VIII-C: how often a property set
  /// generated a best local plan in phase 1).
  void CreditDelivered(const DeliveredProps& delivered) {
    Entry* best = nullptr;
    for (Entry& e : entries_) {
      bool part_match =
          (e.props.partitioning.kind == PartReqKind::kHashExact &&
           delivered.partitioning.kind == PartitioningKind::kHash &&
           delivered.partitioning.cols == e.props.partitioning.cols) ||
          (e.props.partitioning.kind == PartReqKind::kSerial &&
           delivered.partitioning.kind == PartitioningKind::kSerial);
      if (!part_match) continue;
      if (!delivered.sort.SatisfiesPrefix(e.props.sort)) continue;
      if (best == nullptr ||
          e.props.sort.cols.size() > best->props.sort.cols.size()) {
        best = &e;
      }
    }
    if (best != nullptr) ++best->wins;
  }

  /// Reorders entries by descending win count (stable) — Sec. VIII-C.
  void RankByWins() {
    std::stable_sort(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.wins > b.wins; });
  }

  const std::vector<Entry>& entries() const { return entries_; }
  int size() const { return static_cast<int>(entries_.size()); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(int i) const { return entries_[static_cast<size_t>(i)]; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace scx

#endif  // SCX_CORE_PROPERTY_HISTORY_H_
