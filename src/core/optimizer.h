#ifndef SCX_CORE_OPTIMIZER_H_
#define SCX_CORE_OPTIMIZER_H_

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "core/property_history.h"
#include "core/shared_info.h"
#include "cost/cost_model.h"
#include "memo/memo.h"
#include "opt/physical_plan.h"

namespace scx {

/// Which optimizer to run.
///  * kConventional reproduces the baseline SCOPE optimizer: no spools,
///    each consumer re-executes shared subexpressions, tree-cost
///    accounting (paper Fig. 8(a)).
///  * kNaiveSharing reproduces the earlier multi-query-optimization
///    techniques the paper argues against ([10]-[12] in its Sec. II):
///    shared subexpressions are identified and executed once, but the
///    shared plan is the LOCALLY optimal one — consumers compensate above
///    the spool with their own enforcers instead of the spool's properties
///    being chosen cost-based across consumers.
///  * kCse runs the paper's full framework of Secs. IV–VIII.
enum class OptimizerMode { kConventional, kNaiveSharing, kCse };

/// Tunables for optimization. The Sec. VIII large-script extensions can be
/// toggled individually for ablation benchmarks.
struct OptimizerConfig {
  ClusterConfig cluster;
  CostConstants costs;
  /// Max column-set size for full subset expansion (history recording and
  /// exchange-enforcer candidates). Larger sets use singletons + full set.
  int max_expand_cols = 4;
  /// Enable the local/global aggregate-split transformation rule.
  bool enable_agg_split = true;
  /// Enable the join-commutativity transformation rule.
  bool enable_join_commute = true;
  /// Phase-2 optimization budget (paper: 30 s for LS1, 60 s for LS2).
  double budget_seconds = 30.0;
  /// Hard cap on phase-2 rounds across all LCAs.
  long max_rounds = 1000000;
  bool exploit_independent_groups = true;  ///< Sec. VIII-A
  bool rank_shared_groups = true;          ///< Sec. VIII-B
  bool rank_properties = true;             ///< Sec. VIII-C
  /// Record a RoundTraceEntry per phase-2 round in the diagnostics.
  bool trace_rounds = true;
  CseIdentifyOptions cse;
};

/// One phase-2 re-optimization round, as recorded in the optimization
/// trace: which LCA ran it, which history entries were enforced, and what
/// the resulting plan cost.
struct RoundTraceEntry {
  GroupId lca = kInvalidGroup;
  long round_index = 0;  ///< global, across all LCAs
  std::map<GroupId, int> assignment;
  double cost = 0;
  double best_so_far = 0;  ///< best cost at this LCA after this round
};

/// Measurements and derived facts exposed alongside the chosen plan.
struct OptimizeDiagnostics {
  double phase1_cost = 0;  ///< best cost after phase 1 (mode accounting)
  double final_cost = 0;
  long rounds_planned = 0;
  long rounds_executed = 0;
  int num_shared_groups = 0;
  int explicit_shared = 0;
  int merged_subexpressions = 0;
  int reachable_groups = 0;
  double optimize_seconds = 0;
  bool budget_exhausted = false;
  /// shared group -> its LCA.
  std::map<GroupId, GroupId> lca_of;
  /// shared group -> history size after phase 1.
  std::map<GroupId, int> history_sizes;
  /// Per-round trace (populated when OptimizerConfig::trace_rounds).
  std::vector<RoundTraceEntry> round_trace;
};

struct OptimizeResult {
  PhysicalNodePtr plan;
  double cost = 0;
  OptimizeDiagnostics diagnostics;
};

/// The SCOPE-style Cascades optimizer extended with the paper's
/// common-subexpression framework.
///
/// Phase 1 (paper Algorithm 2): bottom-up required-properties optimization
/// with enforcer rules (hash/merge repartition, gather, per-partition sort),
/// recording the history of property sets requested at shared groups.
/// Between phases: shared-group propagation and LCA identification
/// (Algorithm 3 / SharedInfo). Phase 2 (Algorithms 4 and 5): at each LCA,
/// one re-optimization round per combination of history entries, enforcing
/// the chosen property set at the shared groups so every consumer reads one
/// materialized spool.
class Optimizer {
 public:
  Optimizer(Memo memo, ColumnRegistryPtr columns, OptimizerConfig config);

  /// Runs the optimizer. Not reusable across calls (build one per run).
  Result<OptimizeResult> Run(OptimizerMode mode);

  const Memo& memo() const { return memo_; }
  const SharedInfo* shared_info() const {
    return shared_.has_value() ? &*shared_ : nullptr;
  }
  const CardinalityEstimator& estimator() const { return estimator_; }
  const PropertyHistory* HistoryOf(GroupId g) const;

 private:
  // --- Algorithm 2 / 4: group optimization with winner memoization ---
  PhysicalNodePtr OptimizeGroup(GroupId g, const RequiredProps& req);
  // --- Algorithm 5: logical exploration + physical optimization ---
  PhysicalNodePtr LogPhysOpt(GroupId g, const RequiredProps& req);
  // Phase 2: rounds at an LCA (Algorithm 4 lines 4-12 + Sec. VIII).
  PhysicalNodePtr RunRounds(GroupId g, const RequiredProps& req);
  // Phase 2: optimize a shared group under the enforced property set and
  // compensate above the fixed spool for the consumer's requirement.
  PhysicalNodePtr OptimizeSharedEnforced(GroupId g, const RequiredProps& req);
  // The materialized spool for (shared group, history entry) — one instance
  // shared by every consumer in the round.
  PhysicalNodePtr SpoolBase(GroupId g, int entry_index);

  // Native (non-enforcer) implementation alternatives for one expression.
  void ImplementExpr(GroupId g, const GroupExpr& expr,
                     const RequiredProps& req,
                     std::vector<PhysicalNodePtr>* valid);
  void ImplementJoin(GroupId g, const GroupExpr& expr,
                     const RequiredProps& req,
                     std::vector<PhysicalNodePtr>* valid);
  // Enforcer alternatives wrapping re-optimizations with relaxed
  // requirements.
  void EnforceAlternatives(GroupId g, const RequiredProps& req,
                           std::vector<PhysicalNodePtr>* valid);
  // Wraps enforcers over a fixed base plan to satisfy `req` (used above
  // enforced spools).
  void WrapEnforcersOverBase(GroupId g, const PhysicalNodePtr& base,
                             const RequiredProps& req,
                             std::vector<PhysicalNodePtr>* valid);

  // Applies transformation rules (aggregate split) to a group, once.
  void EnsureExplored(GroupId g);

  void RecordHistory(GroupId g, const RequiredProps& req);

  // Mode-appropriate plan objective (tree cost conventionally, DAG cost
  // with CSE).
  double PlanCost(const PhysicalNodePtr& plan) const;

  // Candidate partitioning column sets an exchange enforcer may produce for
  // a requirement.
  std::vector<ColumnSet> EnforceCandidates(const PartitioningReq& req) const;

  std::string WinnerKeySuffix(GroupId g) const;
  bool BudgetExceeded() const;

  const GroupStats& StatsOf(GroupId g) const {
    return estimator_.StatsOf(g);
  }

  Memo memo_;
  ColumnRegistryPtr columns_;
  OptimizerConfig config_;
  CardinalityEstimator estimator_;
  CostModel cost_model_;

  OptimizerMode mode_ = OptimizerMode::kConventional;
  int phase_ = 1;
  std::map<std::tuple<GroupId, std::string, std::string>,
           std::optional<PhysicalNodePtr>>
      winners_;
  std::map<GroupId, PropertyHistory> history_;
  std::optional<SharedInfo> shared_;
  std::map<GroupId, int> enforced_;  ///< active round assignment
  std::set<GroupId> in_rounds_;
  std::map<std::tuple<GroupId, int, std::string>, PhysicalNodePtr>
      spool_bases_;
  std::set<GroupId> explored_;

  OptimizeDiagnostics diag_;
  std::chrono::steady_clock::time_point phase2_start_;
  bool budget_exhausted_ = false;
};

}  // namespace scx

#endif  // SCX_CORE_OPTIMIZER_H_
