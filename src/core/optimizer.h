#ifndef SCX_CORE_OPTIMIZER_H_
#define SCX_CORE_OPTIMIZER_H_

#include <memory>

#include "core/optimization_context.h"
#include "core/round_scheduler.h"
#include "core/round_task.h"

namespace scx {

/// The SCOPE-style Cascades optimizer extended with the paper's
/// common-subexpression framework, split into three layers:
///
///  * OptimizationContext — everything a run reads that is not specific to
///    one round (memo, stats, cost model, shared info, phase-1 property
///    histories). Built during phase 1, frozen immutable before phase 2.
///  * RoundTask — the group-optimization recursion (Algorithms 2, 4, 5)
///    plus the state one pass mutates: winner cache, spool-base cache, the
///    active enforcement assignment. Forkable for parallel rounds.
///  * RoundScheduler — executes the phase-2 rounds of each LCA, serially or
///    on a thread pool (OptimizerConfig::num_threads), with deterministic,
///    bit-identical-to-serial results.
///
/// This class only orchestrates: phase 1 (bottom-up required-properties
/// optimization with history recording), shared-group propagation and LCA
/// identification between phases (Algorithm 3 / SharedInfo), then phase 2
/// (one re-optimization round per combination of history entries at each
/// LCA, enforcing the chosen property set so every consumer reads one
/// materialized spool).
class Optimizer {
 public:
  Optimizer(Memo memo, ColumnRegistryPtr columns, OptimizerConfig config);

  /// Declares the memo groups holding each merged script's root, for
  /// batch optimization (Engine::SubmitBatch). Must be called before Run;
  /// feeds the num_scripts / cross_script_shared_groups diagnostics.
  void SetScriptRoots(std::vector<GroupId> roots) {
    ctx_->set_script_roots(std::move(roots));
  }

  /// Runs the optimizer. Single-shot: a second call returns
  /// FailedPrecondition (the context is frozen and the memo restructured by
  /// then — build a fresh Optimizer to re-optimize).
  Result<OptimizeResult> Run(OptimizerMode mode);

  const Memo& memo() const { return ctx_->memo(); }
  const SharedInfo* shared_info() const { return ctx_->shared_info(); }
  const CardinalityEstimator& estimator() const { return ctx_->estimator(); }
  const PropertyHistory* HistoryOf(GroupId g) const {
    return ctx_->HistoryOf(g);
  }

 private:
  /// Fills diag_.cross_script_shared_groups: shared groups reachable from
  /// two or more script roots. No-op for single-script runs.
  void ComputeCrossScriptSharing();

  // Declaration order is destruction-critical: the scheduler's pool threads
  // and the master task both reference the context, so they are destroyed
  // first (members are destroyed in reverse order).
  std::unique_ptr<OptimizationContext> ctx_;
  std::unique_ptr<RoundScheduler> scheduler_;
  std::unique_ptr<RoundTask> master_;
  bool ran_ = false;
  OptimizeDiagnostics diag_;
};

}  // namespace scx

#endif  // SCX_CORE_OPTIMIZER_H_
