#include "core/fingerprint.h"

#include <algorithm>
#include <set>

#include "common/hash.h"

namespace scx {

namespace {

/// N in Definition 1: a prime large enough to avoid accidental collisions
/// between FileIDs and OpID combinations (Mersenne prime 2^61-1).
constexpr uint64_t kFingerprintModulus = (uint64_t{1} << 61) - 1;

uint64_t MapId(const std::map<ColumnId, ColumnId>& m, ColumnId id) {
  auto it = m.find(id);
  return it == m.end() ? id : it->second;
}

/// Inserts b→a into the map; fails on a conflicting existing entry.
bool AddMapping(std::map<ColumnId, ColumnId>* m, ColumnId b, ColumnId a) {
  auto [it, inserted] = m->emplace(b, a);
  return inserted || it->second == a;
}

bool PayloadEquivalent(const LogicalNode& a, const LogicalNode& b,
                       std::map<ColumnId, ColumnId>* b_to_a) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case LogicalOpKind::kExtract: {
      if (a.file.file_id != b.file.file_id) return false;
      if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
      for (int i = 0; i < a.schema().NumColumns(); ++i) {
        if (a.schema().column(i).name != b.schema().column(i).name) {
          return false;
        }
      }
      return true;
    }
    case LogicalOpKind::kFilter: {
      if (a.predicates.size() != b.predicates.size()) return false;
      for (size_t i = 0; i < a.predicates.size(); ++i) {
        const BoundPredicate& pa = a.predicates[i];
        const BoundPredicate& pb = b.predicates[i];
        if (pa.op != pb.op || pa.rhs_is_column != pb.rhs_is_column) {
          return false;
        }
        if (MapId(*b_to_a, pb.lhs) != pa.lhs) return false;
        if (pb.rhs_is_column) {
          if (MapId(*b_to_a, pb.rhs) != pa.rhs) return false;
        } else if (!(pa.literal == pb.literal)) {
          return false;
        }
      }
      return true;
    }
    case LogicalOpKind::kUnionAll:
    case LogicalOpKind::kProject: {
      if (a.project_map.size() != b.project_map.size()) return false;
      for (size_t i = 0; i < a.project_map.size(); ++i) {
        if (MapId(*b_to_a, b.project_map[i].first) !=
            a.project_map[i].first) {
          return false;
        }
        if (!AddMapping(b_to_a, b.project_map[i].second,
                        a.project_map[i].second)) {
          return false;
        }
      }
      return true;
    }
    case LogicalOpKind::kCompute: {
      if (a.compute_items.size() != b.compute_items.size()) return false;
      for (size_t i = 0; i < a.compute_items.size(); ++i) {
        const ComputeItem& ia = a.compute_items[i];
        const ComputeItem& ib = b.compute_items[i];
        if (!ia.expr->EqualsMapped(*ib.expr, *b_to_a)) return false;
        if (!AddMapping(b_to_a, ib.out, ia.out)) return false;
      }
      return true;
    }
    case LogicalOpKind::kGbAgg:
    case LogicalOpKind::kLocalGbAgg:
    case LogicalOpKind::kGlobalGbAgg: {
      if (a.group_cols.size() != b.group_cols.size()) return false;
      for (size_t i = 0; i < a.group_cols.size(); ++i) {
        if (MapId(*b_to_a, b.group_cols[i]) != a.group_cols[i]) return false;
      }
      if (a.aggregates.size() != b.aggregates.size()) return false;
      for (size_t i = 0; i < a.aggregates.size(); ++i) {
        const AggregateDesc& da = a.aggregates[i];
        const AggregateDesc& db = b.aggregates[i];
        if (da.fn != db.fn || da.count_star != db.count_star) return false;
        if (!da.count_star && MapId(*b_to_a, db.arg) != da.arg) return false;
        if (!AddMapping(b_to_a, db.out, da.out)) return false;
        if (da.hidden_count != 0 && db.hidden_count != 0 &&
            !AddMapping(b_to_a, db.hidden_count, da.hidden_count)) {
          return false;
        }
      }
      return true;
    }
    case LogicalOpKind::kJoin: {
      if (a.join_keys.size() != b.join_keys.size()) return false;
      for (size_t i = 0; i < a.join_keys.size(); ++i) {
        if (MapId(*b_to_a, b.join_keys[i].first) != a.join_keys[i].first ||
            MapId(*b_to_a, b.join_keys[i].second) != a.join_keys[i].second) {
          return false;
        }
      }
      if (a.predicates.size() != b.predicates.size()) return false;
      for (size_t i = 0; i < a.predicates.size(); ++i) {
        const BoundPredicate& pa = a.predicates[i];
        const BoundPredicate& pb = b.predicates[i];
        if (pa.op != pb.op || pa.rhs_is_column != pb.rhs_is_column) {
          return false;
        }
        if (MapId(*b_to_a, pb.lhs) != pa.lhs) return false;
        if (pb.rhs_is_column && MapId(*b_to_a, pb.rhs) != pa.rhs) {
          return false;
        }
        if (!pb.rhs_is_column && !(pa.literal == pb.literal)) return false;
      }
      return true;
    }
    case LogicalOpKind::kSpool:
      return true;
    case LogicalOpKind::kOutput:
    case LogicalOpKind::kSequence:
      // Terminal operators are never merged (distinct side effects).
      return false;
  }
  return false;
}

bool EquivalentRec(const Memo& memo, GroupId a, GroupId b,
                   std::map<ColumnId, ColumnId>* b_to_a) {
  if (a == b) {
    // One shared group reached through both subexpressions: identity map.
    for (const ColumnInfo& c : memo.group(a).schema().columns()) {
      if (!AddMapping(b_to_a, c.id, c.id)) return false;
    }
    return true;
  }
  const GroupExpr& ea = memo.group(a).initial_expr();
  const GroupExpr& eb = memo.group(b).initial_expr();
  if (ea.children.size() != eb.children.size()) return false;
  for (size_t i = 0; i < ea.children.size(); ++i) {
    if (!EquivalentRec(memo, ea.children[i], eb.children[i], b_to_a)) {
      return false;
    }
  }
  if (!PayloadEquivalent(*ea.op, *eb.op, b_to_a)) return false;
  // Positional schema mapping (covers Extract columns; aggregate outputs and
  // project renames were mapped by PayloadEquivalent, which must agree).
  const Schema& sa = memo.group(a).schema();
  const Schema& sb = memo.group(b).schema();
  if (sa.NumColumns() != sb.NumColumns()) return false;
  for (int i = 0; i < sa.NumColumns(); ++i) {
    if (sa.column(i).type != sb.column(i).type) return false;
    if (!AddMapping(b_to_a, sb.column(i).id, sa.column(i).id)) return false;
  }
  return true;
}

/// Rewrites all column ids in `op` through `remap`.
void ApplyRemapToOp(LogicalNode* op,
                    const std::map<ColumnId, ColumnId>& remap) {
  Schema rewritten;
  for (const ColumnInfo& c : op->schema().columns()) {
    ColumnInfo copy = c;
    copy.id = static_cast<ColumnId>(MapId(remap, c.id));
    rewritten.AddColumn(copy);
  }
  *op->mutable_schema() = std::move(rewritten);
  for (BoundPredicate& p : op->predicates) {
    p.lhs = static_cast<ColumnId>(MapId(remap, p.lhs));
    if (p.rhs_is_column) p.rhs = static_cast<ColumnId>(MapId(remap, p.rhs));
  }
  for (auto& [src, out] : op->project_map) {
    src = static_cast<ColumnId>(MapId(remap, src));
    out = static_cast<ColumnId>(MapId(remap, out));
  }
  for (ComputeItem& item : op->compute_items) {
    item.expr = item.expr->Remap(remap);
    item.out = static_cast<ColumnId>(MapId(remap, item.out));
  }
  for (ColumnId& c : op->group_cols) {
    c = static_cast<ColumnId>(MapId(remap, c));
  }
  for (AggregateDesc& a : op->aggregates) {
    a.arg = static_cast<ColumnId>(MapId(remap, a.arg));
    a.out = static_cast<ColumnId>(MapId(remap, a.out));
    if (a.hidden_count != 0) {
      a.hidden_count = static_cast<ColumnId>(MapId(remap, a.hidden_count));
    }
  }
  for (auto& [l, r] : op->join_keys) {
    l = static_cast<ColumnId>(MapId(remap, l));
    r = static_cast<ColumnId>(MapId(remap, r));
  }
}

/// Finds an existing shared SPOOL group whose only child is `g`.
GroupId FindSpoolOver(const Memo& memo, GroupId g) {
  for (GroupId i = 0; i < memo.num_groups(); ++i) {
    const Group& grp = memo.group(i);
    if (!grp.is_shared()) continue;
    const GroupExpr& e = grp.initial_expr();
    if (e.op->kind() == LogicalOpKind::kSpool && e.children.size() == 1 &&
        e.children[0] == g) {
      return i;
    }
  }
  return kInvalidGroup;
}

GroupId InsertSpoolOver(Memo* memo, GroupId g) {
  const Group& grp = memo->group(g);
  auto proto = std::make_shared<LogicalNode>(
      LogicalOpKind::kSpool, grp.schema(), std::vector<LogicalNodePtr>{});
  proto->result_name = grp.initial_expr().op->result_name;
  GroupExpr expr;
  expr.op = std::move(proto);
  expr.children.push_back(g);
  GroupId spool = memo->NewGroup(std::move(expr));
  memo->RedirectChildReferencesExcept(g, spool, spool);
  memo->group(spool).set_shared(true);
  return spool;
}

}  // namespace

std::map<GroupId, uint64_t> ComputeFingerprints(const Memo& memo,
                                                bool include_payload_hash) {
  std::map<GroupId, uint64_t> fp;
  for (GroupId g : memo.TopologicalOrder()) {
    const GroupExpr& e = memo.group(g).initial_expr();
    uint64_t f;
    if (e.op->kind() == LogicalOpKind::kExtract) {
      f = static_cast<uint64_t>(e.op->file.file_id) % kFingerprintModulus;
    } else {
      f = LogicalOpId(e.op->kind());
      for (GroupId child : e.children) {
        f ^= fp.at(child);
      }
      f %= kFingerprintModulus;
    }
    if (include_payload_hash) {
      // Canonical (id-free) payload seasoning: operator kind plus shape
      // counts only, so equal subexpressions with different column ids still
      // collide while most unequal ones separate.
      uint64_t payload =
          HashCombine(static_cast<uint64_t>(e.op->group_cols.size()),
                      HashCombine(e.op->aggregates.size(),
                                  HashCombine(e.op->predicates.size(),
                                              e.op->join_keys.size())));
      f = HashCombine(f, payload) % kFingerprintModulus;
    }
    fp[g] = f;
  }
  return fp;
}

bool EquivalentSubexpressions(const Memo& memo, GroupId a, GroupId b,
                              std::map<ColumnId, ColumnId>* b_to_a) {
  std::map<ColumnId, ColumnId> local;
  if (!EquivalentRec(memo, a, b, &local)) return false;
  if (b_to_a != nullptr) *b_to_a = std::move(local);
  return true;
}

CseIdentifyResult IdentifyCommonSubexpressions(Memo* memo,
                                               const CseIdentifyOptions& opts) {
  CseIdentifyResult result;

  // Line 1: IdentifyExplicitCommSubexpr — a group directly referenced from
  // two or more groups gets a SPOOL parent marked shared.
  {
    std::vector<GroupId> topo = memo->TopologicalOrder();
    std::vector<GroupId> multi_parent;
    for (GroupId g : topo) {
      const GroupExpr& e = memo->group(g).initial_expr();
      if (e.op->kind() == LogicalOpKind::kSpool ||
          e.op->kind() == LogicalOpKind::kOutput ||
          e.op->kind() == LogicalOpKind::kSequence) {
        continue;
      }
      if (memo->ParentsOf(g).size() > 1) multi_parent.push_back(g);
    }
    for (GroupId g : multi_parent) {
      InsertSpoolOver(memo, g);
      ++result.explicit_shared;
    }
  }

  // Lines 2-11: fingerprint all subexpressions, compare colliding buckets,
  // merge equal ones under one shared SPOOL.
  if (opts.fingerprint_merge) {
    std::map<GroupId, uint64_t> fp =
        ComputeFingerprints(*memo, opts.include_payload_hash);
    std::map<uint64_t, std::vector<GroupId>> buckets;
    for (GroupId g : memo->TopologicalOrder()) {
      const LogicalOpKind kind = memo->group(g).initial_expr().op->kind();
      if (kind == LogicalOpKind::kOutput || kind == LogicalOpKind::kSequence ||
          kind == LogicalOpKind::kSpool) {
        continue;
      }
      buckets[fp.at(g)].push_back(g);
    }
    std::set<GroupId> dead;
    for (auto& [hash, bucket] : buckets) {
      (void)hash;
      if (bucket.size() < 2) continue;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (dead.count(bucket[i])) continue;
        for (size_t j = i + 1; j < bucket.size(); ++j) {
          if (dead.count(bucket[j])) continue;
          std::map<ColumnId, ColumnId> remap;
          if (!EquivalentSubexpressions(*memo, bucket[i], bucket[j],
                                        &remap)) {
            continue;
          }
          GroupId canonical = bucket[i];
          GroupId dup = bucket[j];
          GroupId spool = FindSpoolOver(*memo, canonical);
          if (spool == kInvalidGroup) {
            spool = InsertSpoolOver(memo, canonical);
          }
          // Point the duplicate's consumers at the spool and rewrite their
          // (and all downstream) column references to canonical identities.
          memo->RedirectChildReferencesExcept(dup, spool, spool);
          for (GroupId g = 0; g < memo->num_groups(); ++g) {
            if (g == dup) continue;
            for (GroupExpr& e : memo->group(g).mutable_exprs()) {
              ApplyRemapToOp(e.op.get(), remap);
            }
          }
          dead.insert(dup);
          ++result.merged;
        }
      }
    }
  }

  // Maximal-subexpression cleanup: a spool whose group is referenced by
  // fewer than two live consumers buys no reuse — bypass it. This arises
  // when a whole duplicated chain merged: each interior node was
  // multi-parent before the merge (one parent per copy) but its parents
  // merged too, leaving one consumer behind a mandatory spool.
  if (opts.prune_single_consumer_spools) {
    std::vector<GroupId> topo = memo->TopologicalOrder();
    std::map<GroupId, int> refs;
    for (GroupId g : topo) {
      for (const GroupExpr& e : memo->group(g).exprs()) {
        for (GroupId c : e.children) ++refs[c];
      }
    }
    for (GroupId g : topo) {
      Group& grp = memo->group(g);
      if (!grp.is_shared()) continue;
      const GroupExpr& e = grp.initial_expr();
      if (e.op->kind() != LogicalOpKind::kSpool || e.children.size() != 1) {
        continue;
      }
      if (refs[g] > 1) continue;
      // Re-point the lone consumer at the spool's child; the spool group
      // goes dead (unreachable) and is skipped by every topological walk.
      memo->RedirectChildReferencesExcept(g, e.children[0], g);
      grp.set_shared(false);
      ++result.pruned_spools;
    }
  }

  for (GroupId g = 0; g < memo->num_groups(); ++g) {
    if (memo->group(g).is_shared()) result.spool_groups.push_back(g);
  }
  return result;
}

}  // namespace scx
