#ifndef SCX_CORE_ROUNDS_H_
#define SCX_CORE_ROUNDS_H_

#include <limits>
#include <map>
#include <vector>

#include "memo/memo.h"

namespace scx {

/// One phase-2 re-optimization round: a choice of history-entry index for
/// every shared group associated with the LCA being optimized.
using RoundAssignment = std::map<GroupId, int>;

/// Enumerates the phase-2 rounds for one LCA (paper Sec. VII with the
/// Sec. VIII-A extension).
///
/// Input: independence classes of shared groups (each class is a list of
/// group ids, already ranked per Sec. VIII-B) and the history size of each
/// group (entries already ranked per Sec. VIII-C, so index 0 is the most
/// promising entry).
///
/// Without the independence extension callers pass a single class holding
/// all groups; the enumerator then produces the full Cartesian product,
/// varying the first group fastest (paper Sec. VII example ordering).
///
/// With independent classes, classes are processed sequentially: while a
/// class is being enumerated, earlier classes are pinned to their best
/// observed assignment and later classes to entry 0. Subsequent classes skip
/// their all-zero combination (it was already evaluated during the previous
/// class), reproducing the paper's 8+8 → 8+7 = 15 rounds example.
///
/// Two driving protocols are supported (do not mix them on one instance):
///  * serial: Next() / ReportCost() per round;
///  * batch: NextBatch() returns every round of the current class at once
///    (rounds within one class are mutually independent, so they may be
///    evaluated concurrently), then ReportBatch() with one cost per round
///    picks the pin for the finished class. The concatenation of all batches
///    is exactly the serial Next() sequence.
class RoundEnumerator {
 public:
  RoundEnumerator(std::vector<std::vector<GroupId>> classes,
                  std::map<GroupId, int> history_sizes);

  /// Total number of rounds this enumerator will produce. The count is a
  /// Cartesian product over history sizes, so it is computed with
  /// saturating arithmetic: adversarially large histories report LONG_MAX
  /// instead of a wrapped (possibly negative) count. Enumeration itself is
  /// unaffected — the budget/round cap stops it long before.
  long TotalRounds() const { return total_rounds_; }

  /// Cheapest cost reported so far within the class currently being
  /// enumerated (+inf before the class's first report; resets at every
  /// class boundary). This is the class-local branch-and-bound bound: a
  /// finite value implies an earlier round of the SAME class achieved it,
  /// so a later round abandoned at this bound can never have become the
  /// class pin or the overall winner.
  double BestCostInClass() const {
    return have_best_in_class_ ? best_cost_in_class_
                               : std::numeric_limits<double>::infinity();
  }

  /// Produces the next assignment; false when enumeration is complete.
  /// After each successful Next(), the caller must call ReportCost() with
  /// the cost of the produced plan before calling Next() again.
  bool Next(RoundAssignment* out);

  /// Reports the cost of the assignment most recently returned by Next().
  void ReportCost(double cost);

  /// Produces every remaining round of the current class; false when
  /// enumeration is complete. The caller must call ReportBatch() before the
  /// next NextBatch().
  bool NextBatch(std::vector<RoundAssignment>* out);

  /// Reports the costs of the batch most recently returned by NextBatch()
  /// (costs[i] belongs to out[i]); the cheapest round — ties broken by batch
  /// index, matching serial ReportCost — becomes the class's pinned
  /// assignment.
  void ReportBatch(const std::vector<double>& costs);

 private:
  /// Builds the assignment for the current class state.
  RoundAssignment CurrentAssignment() const;
  /// Advances the mixed-radix counter of the current class; returns false
  /// on wrap-around (class exhausted).
  bool AdvanceCounter();
  /// Pins the finished class to `pin` and enters the next class; returns
  /// false when no class remains (enumeration done).
  bool BeginNextClass(const std::vector<int>& pin);

  std::vector<std::vector<GroupId>> classes_;
  std::map<GroupId, int> history_sizes_;
  long total_rounds_ = 0;

  size_t current_class_ = 0;
  std::vector<int> counter_;           // per group of current class
  bool counter_fresh_ = true;          // counter not yet consumed
  bool pending_report_ = false;
  RoundAssignment last_assignment_;
  double best_cost_in_class_ = 0;
  bool have_best_in_class_ = false;
  std::vector<int> best_counter_;
  std::vector<std::vector<int>> batch_counters_;  // batch-protocol state
  RoundAssignment fixed_;              // best choices of completed classes
  bool done_ = false;
};

}  // namespace scx

#endif  // SCX_CORE_ROUNDS_H_
