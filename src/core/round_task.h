#ifndef SCX_CORE_ROUND_TASK_H_
#define SCX_CORE_ROUND_TASK_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/optimization_context.h"
#include "core/rounds.h"

namespace scx {

class RoundScheduler;

/// Sentinel history index used by OptimizerMode::kNaiveSharing: enforce no
/// requirement at the shared group (locally cheapest shared plan).
inline constexpr int kNaiveEntryIndex = -1;

/// Result of evaluating one phase-2 round.
struct RoundResult {
  PhysicalNodePtr plan;
  double cost = 0;
  /// The budget expired before the round started; the round was not
  /// evaluated and must not be counted.
  bool budget_skipped = false;
};

/// The group-optimization recursion (paper Algorithms 2, 4 and 5) plus the
/// state one optimization pass — or one phase-2 round — mutates: the winner
/// cache, the spool-base cache, and the active enforcement assignment.
///
/// The master task drives phase 1 (where it is also allowed to mutate the
/// context: exploration rules, history recording) and the phase-2 walk.
/// Fork() produces a worker task for one round of a parallel batch: it reads
/// the master's caches through an immutable base pointer, records its own
/// results in an overlay, and never mutates the context (which is frozen by
/// then). After a batch, the scheduler folds each applied worker's overlay
/// back into the master insert-if-absent — every cache entry is a
/// deterministic function of its key and the frozen context, so the merged
/// cache is identical to what the serial loop would have built.
class RoundTask {
 public:
  /// Master task. `ctx` may still be under construction (phase 1).
  RoundTask(OptimizationContext* ctx, RoundScheduler* scheduler);

  /// Enters phase 2: the context must be frozen; the task stops invoking
  /// build-phase context hooks but keeps its phase-1 winner cache (subtrees
  /// without shared groups below keep their phase-1 winners).
  void BeginPhase2();
  int phase() const { return phase_; }
  bool worker() const { return worker_; }

  /// Algorithm 2 / 4: optimize `g` under `req` with winner memoization.
  PhysicalNodePtr OptimizeGroup(GroupId g, const RequiredProps& req);

  /// Evaluates one phase-2 round at `lca`: enforce `assignment`, re-optimize
  /// the sub-DAG, undo the enforcement.
  RoundResult EvaluateRound(GroupId lca, const RequiredProps& req,
                            const RoundAssignment& assignment);

  /// Worker copy for one parallel round: shares this task's caches as a
  /// read-only base, starts with an empty overlay.
  RoundTask Fork() const;

  /// Folds `other`'s overlay caches into this task's caches, keeping
  /// existing entries (insert-if-absent).
  void AbsorbCaches(RoundTask* other);

 private:
  friend class RoundScheduler;

  using WinnerKey = std::tuple<GroupId, std::string, std::string>;
  using WinnerMap = std::map<WinnerKey, std::optional<PhysicalNodePtr>>;
  using SpoolKey = std::tuple<GroupId, int, std::string>;
  using SpoolMap = std::map<SpoolKey, PhysicalNodePtr>;

  RoundTask() = default;

  // --- Algorithm 5: logical exploration + physical optimization ---
  PhysicalNodePtr LogPhysOpt(GroupId g, const RequiredProps& req);
  // Phase 2: optimize a shared group under the enforced property set and
  // compensate above the fixed spool for the consumer's requirement.
  PhysicalNodePtr OptimizeSharedEnforced(GroupId g, const RequiredProps& req);
  // The materialized spool for (shared group, history entry) — one instance
  // shared by every consumer in the round.
  PhysicalNodePtr SpoolBase(GroupId g, int entry_index);

  // Native (non-enforcer) implementation alternatives for one expression.
  void ImplementExpr(GroupId g, const GroupExpr& expr,
                     const RequiredProps& req,
                     std::vector<PhysicalNodePtr>* valid);
  void ImplementJoin(GroupId g, const GroupExpr& expr,
                     const RequiredProps& req,
                     std::vector<PhysicalNodePtr>* valid);
  // Enforcer alternatives wrapping re-optimizations with relaxed
  // requirements.
  void EnforceAlternatives(GroupId g, const RequiredProps& req,
                           std::vector<PhysicalNodePtr>* valid);
  // Wraps enforcers over a fixed base plan to satisfy `req` (used above
  // enforced spools).
  void WrapEnforcersOverBase(GroupId g, const PhysicalNodePtr& base,
                             const RequiredProps& req,
                             std::vector<PhysicalNodePtr>* valid);

  std::string WinnerKeySuffix(GroupId g) const;

  const std::optional<PhysicalNodePtr>* FindWinner(const WinnerKey& key) const;
  const PhysicalNodePtr* FindSpool(const SpoolKey& key) const;

  const GroupStats& StatsOf(GroupId g) const { return ctx_->StatsOf(g); }

  const OptimizationContext* ctx_ = nullptr;
  /// Non-null only while the master task runs phase 1 (the context is still
  /// being built: exploration, histories, derived stats).
  OptimizationContext* build_ctx_ = nullptr;
  RoundScheduler* scheduler_ = nullptr;
  int phase_ = 1;
  bool worker_ = false;

  WinnerMap winners_;
  SpoolMap spool_bases_;
  /// Read-only snapshot of the forking master's caches (workers only).
  /// Valid for the duration of one batch: the master is blocked and does not
  /// touch its caches while workers run.
  const WinnerMap* base_winners_ = nullptr;
  const SpoolMap* base_spools_ = nullptr;

  std::map<GroupId, int> enforced_;  ///< active round assignment
  std::set<GroupId> in_rounds_;
};

}  // namespace scx

#endif  // SCX_CORE_ROUND_TASK_H_
