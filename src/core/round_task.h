#ifndef SCX_CORE_ROUND_TASK_H_
#define SCX_CORE_ROUND_TASK_H_

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "core/optimization_context.h"
#include "core/rounds.h"

namespace scx {

class RoundScheduler;

/// Sentinel history index used by OptimizerMode::kNaiveSharing: enforce no
/// requirement at the shared group (locally cheapest shared plan).
inline constexpr int kNaiveEntryIndex = -1;

/// Result of evaluating one phase-2 round.
struct RoundResult {
  PhysicalNodePtr plan;
  double cost = 0;
  /// The budget expired before the round started; the round was not
  /// evaluated and must not be counted.
  bool budget_skipped = false;
};

/// The group-optimization recursion (paper Algorithms 2, 4 and 5) plus the
/// state one optimization pass — or one phase-2 round — mutates: the winner
/// cache, the spool-base cache, and the active enforcement assignment.
///
/// Cache keys are fully numeric: the requirement is interned to a dense
/// PropsId by the context, and the active enforcement assignment restricted
/// to the shared groups below the keyed group is summarized by a 64-bit
/// signature maintained incrementally as assignments are installed/removed
/// (see EnforcementSig below) — replacing the two heap strings the
/// string-keyed scheme built per probe.
///
/// The master task drives phase 1 (where it is also allowed to mutate the
/// context: exploration rules, history recording) and the phase-2 walk.
/// Fork() produces a worker task for one round of a parallel batch: it reads
/// the master's caches through an immutable base pointer, records its own
/// results in an overlay, and never mutates the context (which is frozen by
/// then). After a batch the worker overlays are dropped; the master re-runs
/// the class's pinned round itself so its cache stays a single evolving
/// store whose entries all share sub-DAG instances the way the serial
/// loop's would (see Fork for why overlays cannot be merged back).
class RoundTask {
 public:
  /// Master task. `ctx` may still be under construction (phase 1).
  RoundTask(OptimizationContext* ctx, RoundScheduler* scheduler);

  /// Enters phase 2: the context must be frozen; the task stops invoking
  /// build-phase context hooks but keeps its phase-1 winner cache (subtrees
  /// without shared groups below keep their phase-1 winners).
  void BeginPhase2();
  int phase() const { return phase_; }
  bool worker() const { return worker_; }

  /// Algorithm 2 / 4: optimize `g` under `req` with winner memoization.
  PhysicalNodePtr OptimizeGroup(GroupId g, const RequiredProps& req);

  /// Evaluates one phase-2 round at `lca`: enforce `assignment`, re-optimize
  /// the sub-DAG, undo the enforcement. `bound` (when finite) is the best
  /// cost already observed in the round's independence class: alternatives
  /// whose cost lower bound reaches it are abandoned, and a fully pruned
  /// round reports a null plan with +inf cost (sound for winner and pin
  /// selection — see docs/architecture.md §11).
  RoundResult EvaluateRound(
      GroupId lca, const RequiredProps& req, const RoundAssignment& assignment,
      double bound = std::numeric_limits<double>::infinity());

  /// Worker copy for one parallel round: shares this task's caches as a
  /// read-only base, starts with an empty overlay. The overlay is discarded
  /// after the round — only counters are folded back (see MergeCounters):
  /// overlay VALUES are pure functions of their keys, but their pointer
  /// identities are worker-local, and mixing entries of different
  /// provenance in the master cache would let later rounds embed duplicate
  /// instances of the same spool sub-DAG, which DAG costing then counts
  /// twice. The scheduler instead re-evaluates each class's pinned round on
  /// the master task to warm the master cache serial-consistently.
  RoundTask Fork() const;

  /// Folds `other`'s cache/pruning counters into this task's.
  void MergeCounters(const RoundTask& other);

  const OptCacheCounters& counters() const { return counters_; }

 private:
  friend class RoundScheduler;

  /// Winner-cache key: (group, interned requirement, enforcement
  /// signature). Packed POD — hashing and equality never touch the heap.
  struct WinnerKey {
    GroupId group;
    PropsId props;
    uint64_t sig;
    bool operator==(const WinnerKey& o) const {
      return group == o.group && props == o.props && sig == o.sig;
    }
  };
  struct WinnerKeyHash {
    size_t operator()(const WinnerKey& k) const {
      uint64_t h = Mix64((static_cast<uint64_t>(static_cast<uint32_t>(k.group))
                          << 32) |
                         static_cast<uint32_t>(k.props));
      return static_cast<size_t>(HashCombine(h, k.sig));
    }
  };
  /// Spool-base key: (shared group, history entry, enforcement signature of
  /// the group below the spool).
  struct SpoolKey {
    GroupId group;
    int entry;
    uint64_t sig;
    bool operator==(const SpoolKey& o) const {
      return group == o.group && entry == o.entry && sig == o.sig;
    }
  };
  struct SpoolKeyHash {
    size_t operator()(const SpoolKey& k) const {
      uint64_t h = Mix64((static_cast<uint64_t>(static_cast<uint32_t>(k.group))
                          << 32) |
                         static_cast<uint32_t>(k.entry));
      return static_cast<size_t>(HashCombine(h, k.sig));
    }
  };
  using WinnerMap =
      std::unordered_map<WinnerKey, std::optional<PhysicalNodePtr>,
                         WinnerKeyHash>;
  using SpoolMap = std::unordered_map<SpoolKey, PhysicalNodePtr, SpoolKeyHash>;

  /// Streaming replacement for the collect-then-scan candidate vector:
  /// keeps the running cheapest alternative under the mode's objective,
  /// with the exact tie rule of the old scan (strict `<`, first wins).
  /// Under DAG costing it first compares the candidate's precomputed
  /// cost_lb — own cost + the largest child cost_lb, filled in by
  /// MakePhysicalNode, so the check is O(children) with no DAG walk ever
  /// (an earlier version used own cost + the largest child DagCost, whose
  /// memoized walks were cold for the fresh enforcer/spool intermediates
  /// every round mints, making the "fast" path slower than the traced one
  /// on join-heavy scripts) — against the running best, and skips the
  /// candidate's full DAG walk when the bound already rules it out
  /// (DagCost(p) >= p->own_cost + DagCost(child) >= p->own_cost +
  /// child->cost_lb for every child, by induction from the leaves).
  /// The skip only drops candidates whose true cost is >= the running
  /// best, which the strict-`<` rule would have rejected anyway, so winner
  /// and cost are bit-identical to the unpruned scan — and because the
  /// bound is a pure function of the candidate, the pruned count is
  /// deterministic too. Seeding `bound` starts the comparison cost there
  /// with no plan: used at round roots for branch-and-bound across rounds.
  class AltAccumulator {
   public:
    AltAccumulator(OptimizerMode mode, double bound, OptCacheCounters* c)
        : mode_(mode), best_cost_(bound), counters_(c) {}

    void Consider(PhysicalNodePtr p) {
      if (p == nullptr) return;
      if (mode_ == OptimizerMode::kConventional) {
        double c = TreeCost(p);  // O(1): precomputed at node build
        if (c < best_cost_) {
          best_cost_ = c;
          best_ = std::move(p);
        }
        return;
      }
      if (best_cost_ < std::numeric_limits<double>::infinity() &&
          p->cost_lb >= best_cost_) {
        ++counters_->pruned_alternatives;
        return;
      }
      double c = DagCost(p);
      if (c < best_cost_) {
        best_cost_ = c;
        best_ = std::move(p);
      }
    }

    const PhysicalNodePtr& best() const { return best_; }
    PhysicalNodePtr TakeBest() { return std::move(best_); }
    /// Cost of best(); +inf when no candidate beat the seed bound.
    double best_cost() const {
      return best_ != nullptr ? best_cost_
                              : std::numeric_limits<double>::infinity();
    }

   private:
    OptimizerMode mode_;
    PhysicalNodePtr best_;
    double best_cost_;
    OptCacheCounters* counters_;
  };

  RoundTask() = default;

  // --- Algorithm 5: logical exploration + physical optimization ---
  // `out_cost` (optional) receives the winner's cost under the mode's
  // objective (+inf when no plan), saving the caller a re-walk. `bound`
  // seeds the alternative comparison (see AltAccumulator); kept +inf for
  // every nested/cached optimization so cache entries stay exact.
  PhysicalNodePtr LogPhysOpt(
      GroupId g, const RequiredProps& req, double* out_cost = nullptr,
      double bound = std::numeric_limits<double>::infinity());
  // Phase 2: optimize a shared group under the enforced property set and
  // compensate above the fixed spool for the consumer's requirement.
  PhysicalNodePtr OptimizeSharedEnforced(GroupId g, const RequiredProps& req);
  // The materialized spool for (shared group, history entry) — one instance
  // shared by every consumer in the round.
  PhysicalNodePtr SpoolBase(GroupId g, int entry_index);

  // Native (non-enforcer) implementation alternatives for one expression.
  void ImplementExpr(GroupId g, const GroupExpr& expr,
                     const RequiredProps& req, AltAccumulator* acc);
  void ImplementJoin(GroupId g, const GroupExpr& expr,
                     const RequiredProps& req, AltAccumulator* acc);
  // Enforcer alternatives wrapping re-optimizations with relaxed
  // requirements.
  void EnforceAlternatives(GroupId g, const RequiredProps& req,
                           AltAccumulator* acc);
  // Wraps enforcers over a fixed base plan to satisfy `req` (used above
  // enforced spools).
  void WrapEnforcersOverBase(GroupId g, const PhysicalNodePtr& base,
                             const RequiredProps& req, AltAccumulator* acc);

  /// Installs/removes a round assignment in `enforced_` and advances the
  /// signature epoch so cached per-group signatures are recomputed lazily.
  void InstallAssignment(const RoundAssignment& assignment);
  void RemoveAssignment(const RoundAssignment& assignment);

  /// 64-bit signature of the active assignment restricted to the shared
  /// groups below `g`: 0 in phase 1 / when no shared group lies below `g`
  /// (those winners are enforcement-independent); otherwise a nonzero seed
  /// (standing for "phase 2, enforcement-aware") combined via Mix64 /
  /// HashCombine over the (group, entry) pairs in ascending group order.
  /// Memoized per group and invalidated by the epoch counter, so repeated
  /// probes between assignment changes are O(1). Two distinct restricted
  /// assignments colliding is a ~2^-64 event per pair — accepted and
  /// documented (docs/architecture.md §11).
  uint64_t EnforcementSig(GroupId g);

  const std::optional<PhysicalNodePtr>* FindWinner(const WinnerKey& key) const;
  const PhysicalNodePtr* FindSpool(const SpoolKey& key) const;

  const GroupStats& StatsOf(GroupId g) const { return ctx_->StatsOf(g); }

  const OptimizationContext* ctx_ = nullptr;
  /// Non-null only while the master task runs phase 1 (the context is still
  /// being built: exploration, histories, derived stats).
  OptimizationContext* build_ctx_ = nullptr;
  RoundScheduler* scheduler_ = nullptr;
  int phase_ = 1;
  bool worker_ = false;

  WinnerMap winners_;
  SpoolMap spool_bases_;
  /// Read-only snapshot of the forking master's caches (workers only).
  /// Valid for the duration of one batch: the master is blocked and does not
  /// touch its caches while workers run.
  const WinnerMap* base_winners_ = nullptr;
  const SpoolMap* base_spools_ = nullptr;

  std::map<GroupId, int> enforced_;  ///< active round assignment
  /// Epoch stamp of `enforced_`, bumped by Install/RemoveAssignment.
  /// Starts at 1 so zero-initialized memo slots are never valid.
  uint64_t enforce_epoch_ = 1;
  /// Per-group signature memo: (epoch the value was computed at, value).
  std::vector<std::pair<uint64_t, uint64_t>> sig_memo_;
  std::set<GroupId> in_rounds_;

  OptCacheCounters counters_;
};

}  // namespace scx

#endif  // SCX_CORE_ROUND_TASK_H_
