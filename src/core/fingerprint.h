#ifndef SCX_CORE_FINGERPRINT_H_
#define SCX_CORE_FINGERPRINT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "memo/memo.h"

namespace scx {

/// Options for common-subexpression identification (paper Sec. IV).
struct CseIdentifyOptions {
  /// Run the fingerprint-hash pass that merges structurally equal but
  /// separately written subexpressions. Explicit (multi-parent) common
  /// subexpressions are always spooled.
  bool fingerprint_merge = true;
  /// Fold a canonicalized payload hash into the Def. 1 fingerprint. The
  /// paper's fingerprint uses only OpID/FileID and child fingerprints;
  /// enabling this reduces hash-bucket collisions without changing results
  /// (colliding entries are structurally compared either way).
  bool include_payload_hash = false;
  /// Keep only MAXIMAL common subexpressions: after the merge pass, drop
  /// any shared spool that feeds fewer than two consumers. When an entire
  /// duplicated chain merges (the common case for identical scripts in a
  /// batch), every interior node was multi-parent *before* the merge but
  /// feeds exactly one merged consumer *after* it — its spool would
  /// materialize bytes nothing reuses. Off by default so single-script
  /// optimization stays bit-identical to its historical plans; the batch
  /// path (merged multi-script memos) turns it on.
  bool prune_single_consumer_spools = false;
};

/// Outcome statistics of Algorithm 1.
struct CseIdentifyResult {
  int explicit_shared = 0;  ///< spools inserted over multi-parent groups
  int merged = 0;           ///< duplicate subexpressions merged by fingerprint
  int pruned_spools = 0;    ///< single-consumer spools removed post-merge
  std::vector<GroupId> spool_groups;  ///< all shared SPOOL groups
};

/// Paper Definition 1. Computes the fingerprint of every group reachable
/// from the memo root, bottom-up:
///   leaf (Extract):  F = FileID mod N
///   otherwise:       F = (OpID ⊕ ⊕_i F_child[i]) mod N
/// (optionally ⊕ payload hash, see CseIdentifyOptions).
std::map<GroupId, uint64_t> ComputeFingerprints(const Memo& memo,
                                                bool include_payload_hash);

/// Structural equivalence of the subexpressions rooted at `a` and `b`,
/// tolerant of differing column identities: on success, `*b_to_a` maps every
/// column id visible in `b`'s output (and internals) to its counterpart in
/// `a`. Fingerprints are only a filter; this comparison is the ground truth.
bool EquivalentSubexpressions(const Memo& memo, GroupId a, GroupId b,
                              std::map<ColumnId, ColumnId>* b_to_a);

/// Paper Algorithm 1 (IdentifyCommonSubexpressions): inserts a shared SPOOL
/// group over every explicitly shared group, then uses fingerprints to find
/// structurally equal subexpressions, merges duplicates into one, and spools
/// it. Consumers of removed duplicates are re-pointed at the spool and their
/// column references rewritten to the canonical identities.
CseIdentifyResult IdentifyCommonSubexpressions(Memo* memo,
                                               const CseIdentifyOptions& opts);

}  // namespace scx

#endif  // SCX_CORE_FINGERPRINT_H_
