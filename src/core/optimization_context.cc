#include "core/optimization_context.h"

namespace scx {

OptimizationContext::OptimizationContext(Memo memo, ColumnRegistryPtr columns,
                                         OptimizerConfig config)
    : memo_(std::move(memo)),
      columns_(std::move(columns)),
      config_(std::move(config)),
      estimator_(config_.cluster, columns_),
      cost_model_(config_.costs, config_.cluster, &estimator_) {}

const PropertyHistory* OptimizationContext::HistoryOf(GroupId g) const {
  auto it = history_.find(g);
  return it == history_.end() ? nullptr : &it->second;
}

void OptimizationContext::RecordHistory(GroupId g, const RequiredProps& req) {
  PropertyHistory& h = history_[g];
  if (req.partitioning.kind == PartReqKind::kHashSubset) {
    // Sec. V: store one exact entry per partitioning scheme satisfying the
    // range requirement, i.e. per non-empty subset (capped for wide sets).
    std::vector<ColumnSet> candidates = EnforceCandidates(req.partitioning);
    for (ColumnSet& s : candidates) {
      RequiredProps entry;
      entry.partitioning = PartitioningReq::Exactly(std::move(s));
      entry.sort = req.sort;
      h.Add(entry, props_interner_);
    }
  } else {
    h.Add(req, props_interner_);
  }
}

void OptimizationContext::CreditDelivered(GroupId g,
                                          const DeliveredProps& delivered) {
  history_[g].CreditDelivered(delivered);
}

void OptimizationContext::ComputeSharedInfo() {
  shared_ = SharedInfo::Compute(memo_);
}

std::vector<ColumnSet> OptimizationContext::EnforceCandidates(
    const PartitioningReq& req) const {
  std::vector<ColumnSet> out;
  switch (req.kind) {
    case PartReqKind::kHashExact:
      out.push_back(req.cols);
      break;
    case PartReqKind::kHashSubset: {
      if (req.cols.Size() <= config_.max_expand_cols) {
        out = req.cols.NonEmptySubsets();
      } else {
        for (ColumnId c : req.cols.ToVector()) {
          out.push_back(ColumnSet::Of({c}));
        }
        out.push_back(req.cols);
      }
      break;
    }
    case PartReqKind::kRangeExact:  // handled by the range-exchange path
    case PartReqKind::kNone:
    case PartReqKind::kSerial:
      break;
  }
  return out;
}

double OptimizationContext::PlanCost(const PhysicalNodePtr& plan) const {
  return mode_ == OptimizerMode::kConventional ? TreeCost(plan)
                                               : DagCost(plan);
}

void OptimizationContext::EnsureExplored(GroupId g) {
  if (frozen_) return;  // phase 2 never mutates the memo
  if (!explored_.insert(g).second) return;
  std::vector<GroupExpr> snapshot = memo_.group(g).exprs();

  // Join commutativity: Join(L,R) ≡ Project(Join(R,L)) — the commuted join
  // lives in a fresh (rule-generated) group delivering right++left columns;
  // an id-preserving Project restores this group's schema order. Not
  // applied to rule-generated groups (would ping-pong forever).
  if (config_.enable_join_commute && !memo_.group(g).rule_generated()) {
    for (const GroupExpr& expr : snapshot) {
      if (expr.op->kind() != LogicalOpKind::kJoin) continue;
      const LogicalNode& join = *expr.op;
      Schema swapped;
      int left_width =
          memo_.group(expr.children[0]).schema().NumColumns();
      for (int i = left_width; i < join.schema().NumColumns(); ++i) {
        swapped.AddColumn(join.schema().column(i));
      }
      for (int i = 0; i < left_width; ++i) {
        swapped.AddColumn(join.schema().column(i));
      }
      auto commuted = std::make_shared<LogicalNode>(
          LogicalOpKind::kJoin, std::move(swapped),
          std::vector<LogicalNodePtr>{});
      for (const auto& [l, r] : join.join_keys) {
        commuted->join_keys.emplace_back(r, l);
      }
      commuted->predicates = join.predicates;
      GroupExpr cexpr;
      cexpr.op = std::move(commuted);
      cexpr.children = {expr.children[1], expr.children[0]};
      GroupId cgroup = memo_.NewGroup(std::move(cexpr));
      memo_.group(cgroup).set_rule_generated(true);
      estimator_.SetStats(cgroup, StatsOf(g));

      auto restore = std::make_shared<LogicalNode>(
          LogicalOpKind::kProject, join.schema(),
          std::vector<LogicalNodePtr>{});
      for (const ColumnInfo& c : join.schema().columns()) {
        restore->project_map.emplace_back(c.id, c.id);
      }
      GroupExpr pexpr;
      pexpr.op = std::move(restore);
      pexpr.children = {cgroup};
      memo_.group(g).AddExpr(std::move(pexpr));
    }
  }

  if (!config_.enable_agg_split) return;
  for (const GroupExpr& expr : snapshot) {
    if (expr.op->kind() != LogicalOpKind::kGbAgg) continue;
    if (expr.op->group_cols.empty()) continue;  // grand totals stay serial
    const LogicalNode& agg = *expr.op;
    GroupId child = expr.children[0];

    // Build LocalGbAgg: same grouping, partial aggregate outputs.
    Schema local_schema;
    for (ColumnId c : agg.group_cols) {
      int pos = agg.schema().PositionOf(c);
      local_schema.AddColumn(agg.schema().column(pos));
    }
    std::vector<AggregateDesc> local_aggs;
    std::vector<AggregateDesc> global_aggs;
    for (const AggregateDesc& a : agg.aggregates) {
      AggregateDesc local = a;
      ColumnMeta meta;
      meta.name = "partial_" + a.out_name;
      meta.type = a.fn == AggFn::kCount ? DataType::kInt64 : a.out_type;
      if (a.fn == AggFn::kAvg) meta.type = DataType::kDouble;
      local.out = columns_->Create(meta);
      local.out_name = meta.name;
      local.out_type = meta.type;
      local.hidden_count = 0;
      if (a.fn == AggFn::kAvg) {
        ColumnMeta cnt;
        cnt.name = "partialcnt_" + a.out_name;
        cnt.type = DataType::kInt64;
        local.hidden_count = columns_->Create(cnt);
      }
      local_schema.AddColumn(ColumnInfo{local.out, local.out_name, "",
                                        local.out_type});
      if (local.hidden_count != 0) {
        local_schema.AddColumn(ColumnInfo{local.hidden_count,
                                          "partialcnt_" + a.out_name, "",
                                          DataType::kInt64});
      }

      // Global side merges partials: Sum for Sum/Count partials, Min/Max
      // pass through, Avg divides summed partial sums by summed counts
      // (the partial-count column travels in hidden_count).
      AggregateDesc global = a;
      global.arg = local.out;
      global.count_star = false;
      switch (a.fn) {
        case AggFn::kSum:
        case AggFn::kCount:
          global.fn = AggFn::kSum;
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          break;
        case AggFn::kAvg:
          global.hidden_count = local.hidden_count;
          break;
      }
      local_aggs.push_back(std::move(local));
      global_aggs.push_back(std::move(global));
    }

    auto local_proto = std::make_shared<LogicalNode>(
        LogicalOpKind::kLocalGbAgg, std::move(local_schema),
        std::vector<LogicalNodePtr>{});
    local_proto->group_cols = agg.group_cols;
    local_proto->aggregates = std::move(local_aggs);

    GroupExpr local_expr;
    local_expr.op = local_proto;
    local_expr.children = expr.children;
    GroupId local_group = memo_.NewGroup(std::move(local_expr));
    memo_.group(local_group).set_rule_generated(true);
    estimator_.SetStats(
        local_group,
        estimator_.EstimateExpr(*local_proto, {StatsOf(child)}));

    auto global_proto = std::make_shared<LogicalNode>(
        LogicalOpKind::kGlobalGbAgg, agg.schema(),
        std::vector<LogicalNodePtr>{});
    global_proto->group_cols = agg.group_cols;
    global_proto->aggregates = std::move(global_aggs);
    global_proto->result_name = agg.result_name;
    GroupExpr global_expr;
    global_expr.op = std::move(global_proto);
    global_expr.children = {local_group};
    memo_.group(g).AddExpr(std::move(global_expr));
  }
}

void OptimizationContext::Freeze() {
  // Sec. VIII-C: rank history entries by phase-1 win counts.
  if (shared_.has_value() && config_.rank_properties) {
    for (GroupId s : shared_->shared_groups()) history_[s].RankByWins();
  }

  // Explore every reachable group to fixpoint so phase 2 only ever reads
  // the memo. Rules may append groups mid-pass; repeat until stable.
  size_t reachable = 0;
  for (;;) {
    std::vector<GroupId> topo = memo_.TopologicalOrder();
    if (topo.size() == reachable) break;
    reachable = topo.size();
    for (GroupId g : topo) EnsureExplored(g);
  }

  // Precompute which LCAs have another LCA reachable strictly below them:
  // their rounds recursively trigger inner rounds, so the scheduler keeps
  // them serial (a round task never spawns nested parallel rounds).
  if (shared_.has_value()) {
    std::set<GroupId> lcas;
    for (GroupId s : shared_->shared_groups()) lcas.insert(shared_->LcaOf(s));
    for (GroupId l : lcas) {
      std::set<GroupId> seen{l};
      std::vector<GroupId> stack{l};
      bool nested = false;
      while (!stack.empty() && !nested) {
        GroupId g = stack.back();
        stack.pop_back();
        for (const GroupExpr& e : memo_.group(g).exprs()) {
          for (GroupId c : e.children) {
            if (!seen.insert(c).second) continue;
            if (lcas.count(c) != 0) {
              nested = true;
              break;
            }
            stack.push_back(c);
          }
          if (nested) break;
        }
      }
      if (nested) nested_lcas_.insert(l);
    }
  }

  // Materialize shared-below as dense sorted vectors so the enforcement
  // signature can walk them without a map lookup per probe. Recomputed
  // bottom-up over the post-fixpoint memo rather than copied from
  // SharedInfo: the shared-info pass ran before exploration, so groups
  // appended by rules (e.g. a commuted join) have no entry there — yet they
  // can sit above shared groups, and an empty set would make their cache
  // signature claim independence from the round's enforcement assignment.
  if (shared_.has_value()) {
    shared_below_sorted_.assign(static_cast<size_t>(memo_.num_groups()), {});
    for (GroupId g : memo_.TopologicalOrder()) {
      std::set<GroupId> below;
      if (memo_.group(g).is_shared()) below.insert(g);
      for (const GroupExpr& e : memo_.group(g).exprs()) {
        for (GroupId c : e.children) {
          const std::vector<GroupId>& cb =
              shared_below_sorted_[static_cast<size_t>(c)];
          below.insert(cb.begin(), cb.end());
        }
      }
      shared_below_sorted_[static_cast<size_t>(g)].assign(below.begin(),
                                                          below.end());
    }
  }

  frozen_ = true;
}

}  // namespace scx
