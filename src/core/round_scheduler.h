#ifndef SCX_CORE_ROUND_SCHEDULER_H_
#define SCX_CORE_ROUND_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "common/worker_pool.h"
#include "core/optimization_context.h"
#include "core/round_task.h"
#include "core/rounds.h"

namespace scx {

/// Owns phase-2 round execution: partitions the round space of each LCA by
/// independence-class structure (RoundEnumerator), evaluates the rounds of a
/// class either serially or concurrently on a fixed-size thread pool, and
/// tracks the global round budget.
///
/// Determinism contract (see docs/architecture.md): for a fixed script and
/// config, the chosen plan, its cost, rounds_planned/rounds_executed and the
/// round trace are bit-identical for every num_threads value as long as the
/// time budget does not expire. Guarantees making this hold:
///  * only rounds within one independence class run concurrently — they are
///    mutually independent by construction, and the enumerator's pinning
///    decisions only happen at class boundaries;
///  * only LCAs without another LCA strictly below them are parallelized
///    (OptimizationContext::HasNestedLca), so a worker never runs nested
///    rounds;
///  * each worker evaluates its round on a forked RoundTask whose caches
///    overlay the master's read-only snapshot; results are applied in
///    enumeration order, and winner selection uses strict less-than, ties
///    broken by round index — exactly the serial rule;
///  * the atomic best-so-far bound is maintained for reporting only and
///    never prunes work;
///  * branch-and-bound across rounds (serial loop, trace off) uses only
///    the enumerator's class-local best — it abandons rounds that provably
///    lose both the winner and the pin comparison, so the chosen plan and
///    cost still match the unpruned path bit for bit (docs §11).
class RoundScheduler {
 public:
  RoundScheduler(const OptimizationContext* ctx, OptimizeDiagnostics* diag);
  RoundScheduler(const RoundScheduler&) = delete;
  RoundScheduler& operator=(const RoundScheduler&) = delete;

  /// Starts the phase-2 budget clock.
  void StartPhase2();

  /// True when the time budget expired or the round cap was hit.
  bool BudgetExceeded() const;
  /// Sticky flag: a budget stop happened somewhere; remaining LCAs fall
  /// back to phase-1-style optimization.
  bool budget_exhausted() const {
    return budget_exhausted_.load(std::memory_order_relaxed);
  }

  /// Cheapest round cost observed anywhere so far (reporting only; +inf
  /// until a round produced a plan).
  double best_cost_seen() const {
    return best_cost_seen_.load(std::memory_order_relaxed);
  }

  /// Runs the phase-2 rounds at LCA `g` for `task` (paper Algorithm 4
  /// lines 4-12 + Sec. VIII) and returns the winning plan.
  PhysicalNodePtr RunRoundsAt(RoundTask* task, GroupId g,
                              const RequiredProps& req);

 private:
  void EnsurePool();
  void NoteBestCost(double cost);

  const OptimizationContext* ctx_;
  OptimizeDiagnostics* diag_;

  std::chrono::steady_clock::time_point phase2_start_;
  std::atomic<bool> budget_exhausted_{false};
  std::atomic<double> best_cost_seen_;

  // Shared pool machinery (common/worker_pool.h), sized to
  // config.num_threads and created lazily at the first parallel batch.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace scx

#endif  // SCX_CORE_ROUND_SCHEDULER_H_
