#ifndef SCX_CORE_OPTIMIZATION_CONTEXT_H_
#define SCX_CORE_OPTIMIZATION_CONTEXT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/worker_pool.h"
#include "core/fingerprint.h"
#include "core/property_history.h"
#include "core/props_interner.h"
#include "core/shared_info.h"
#include "cost/cost_model.h"
#include "memo/memo.h"
#include "opt/physical_plan.h"

namespace scx {

/// Which optimizer to run.
///  * kConventional reproduces the baseline SCOPE optimizer: no spools,
///    each consumer re-executes shared subexpressions, tree-cost
///    accounting (paper Fig. 8(a)).
///  * kNaiveSharing reproduces the earlier multi-query-optimization
///    techniques the paper argues against ([10]-[12] in its Sec. II):
///    shared subexpressions are identified and executed once, but the
///    shared plan is the LOCALLY optimal one — consumers compensate above
///    the spool with their own enforcers instead of the spool's properties
///    being chosen cost-based across consumers.
///  * kCse runs the paper's full framework of Secs. IV–VIII.
enum class OptimizerMode { kConventional, kNaiveSharing, kCse };

/// Tunables for optimization. The Sec. VIII large-script extensions can be
/// toggled individually for ablation benchmarks.
struct OptimizerConfig {
  ClusterConfig cluster;
  CostConstants costs;
  /// Max column-set size for full subset expansion (history recording and
  /// exchange-enforcer candidates). Larger sets use singletons + full set.
  int max_expand_cols = 4;
  /// Enable the local/global aggregate-split transformation rule.
  bool enable_agg_split = true;
  /// Enable the join-commutativity transformation rule.
  bool enable_join_commute = true;
  /// Phase-2 optimization budget (paper: 30 s for LS1, 60 s for LS2).
  double budget_seconds = 30.0;
  /// Hard cap on phase-2 rounds across all LCAs.
  long max_rounds = 1000000;
  bool exploit_independent_groups = true;  ///< Sec. VIII-A
  bool rank_shared_groups = true;          ///< Sec. VIII-B
  bool rank_properties = true;             ///< Sec. VIII-C
  /// Record a RoundTraceEntry per phase-2 round in the diagnostics.
  bool trace_rounds = true;
  /// Worker threads for phase-2 round evaluation. 1 = the exact legacy
  /// serial path; >1 evaluates the rounds of an independence class
  /// concurrently with bit-identical results (see docs/architecture.md).
  int num_threads = DefaultNumThreads();
  CseIdentifyOptions cse;
};

/// One phase-2 re-optimization round, as recorded in the optimization
/// trace: which LCA ran it, which history entries were enforced, and what
/// the resulting plan cost.
struct RoundTraceEntry {
  GroupId lca = kInvalidGroup;
  long round_index = 0;  ///< global, across all LCAs
  std::map<GroupId, int> assignment;
  double cost = 0;
  double best_so_far = 0;  ///< best cost at this LCA after this round
};

/// Per-run cache/pruning instrumentation of the group-optimization
/// recursion (winner cache, spool-base cache, interner, branch-and-bound).
/// Counts are totals over the whole run; with num_threads > 1, worker
/// overlays recompute some entries redundantly, so hit/miss totals depend
/// on the thread count even though the chosen plan does not.
struct OptCacheCounters {
  long winner_hits = 0;
  long winner_misses = 0;
  long spool_hits = 0;
  long spool_misses = 0;
  /// Candidate plans abandoned because a cost lower bound already matched
  /// or exceeded the running best (never changes the winner).
  long pruned_alternatives = 0;
  /// Phase-2 rounds abandoned whole because every alternative exceeded the
  /// best cost already observed in the round's independence class.
  long pruned_rounds = 0;
  long interner_size = 0;  ///< distinct RequiredProps values interned

  void MergeFrom(const OptCacheCounters& o) {
    winner_hits += o.winner_hits;
    winner_misses += o.winner_misses;
    spool_hits += o.spool_hits;
    spool_misses += o.spool_misses;
    pruned_alternatives += o.pruned_alternatives;
    pruned_rounds += o.pruned_rounds;
  }
};

/// Measurements and derived facts exposed alongside the chosen plan.
struct OptimizeDiagnostics {
  double phase1_cost = 0;  ///< best cost after phase 1 (mode accounting)
  double final_cost = 0;
  long rounds_planned = 0;
  long rounds_executed = 0;
  int num_shared_groups = 0;
  int explicit_shared = 0;
  int merged_subexpressions = 0;
  int reachable_groups = 0;
  /// Scripts merged into this memo (1 for an ordinary single-script run).
  int num_scripts = 1;
  /// Shared groups reachable from two or more script roots — sub-DAGs whose
  /// spool decision amortizes across script boundaries. 0 when num_scripts
  /// is 1 or in conventional mode (no shared-info pass).
  int cross_script_shared_groups = 0;
  double optimize_seconds = 0;
  double phase2_seconds = 0;  ///< wall time of the phase-2 walk alone
  bool budget_exhausted = false;
  /// kCse estimated every sharing plan worse than plain recomputation, so
  /// the conventional plan was returned instead (degenerate inputs).
  bool fell_back_to_conventional = false;
  OptCacheCounters cache;
  /// shared group -> its LCA.
  std::map<GroupId, GroupId> lca_of;
  /// shared group -> history size after phase 1.
  std::map<GroupId, int> history_sizes;
  /// Per-round trace (populated when OptimizerConfig::trace_rounds).
  std::vector<RoundTraceEntry> round_trace;
};

struct OptimizeResult {
  PhysicalNodePtr plan;
  double cost = 0;
  OptimizeDiagnostics diagnostics;
};

/// Everything an optimization run reads that is not specific to one round:
/// the memo, the column registry, the estimator/cost model, the shared-group
/// info, and the phase-1 property histories.
///
/// Lifecycle: during phase 1 the context is under construction — exploration
/// rules append memo expressions, requirements are recorded into histories,
/// the estimator derives NDVs. Freeze() then (a) ranks histories
/// (Sec. VIII-C), (b) explores every reachable group to fixpoint so phase 2
/// never mutates the memo, and (c) precomputes which LCAs contain another
/// LCA strictly below them. After Freeze() the context is immutable and may
/// be read concurrently from any number of RoundTask threads.
class OptimizationContext {
 public:
  OptimizationContext(Memo memo, ColumnRegistryPtr columns,
                      OptimizerConfig config);

  // --- build phase (single-threaded, before Freeze) ---

  Memo& mutable_memo() { return memo_; }
  void set_mode(OptimizerMode mode) { mode_ = mode; }
  /// Declares the memo groups holding each merged script's root (batch
  /// compilation). Empty (the default) means a single-script memo.
  void set_script_roots(std::vector<GroupId> roots) {
    script_roots_ = std::move(roots);
  }
  /// (Re-)estimates stats of all groups reachable from the root.
  void EstimateMemo() { estimator_.EstimateMemo(memo_); }
  /// Applies transformation rules (join commutativity, aggregate split) to
  /// a group, once.
  void EnsureExplored(GroupId g);
  /// Records the requirement `req` in `g`'s property history (paper Sec. V;
  /// subset-range requirements expand into exact entries).
  void RecordHistory(GroupId g, const RequiredProps& req);
  /// Credits the history entry matching a phase-1 winner's delivered
  /// properties (Sec. VIII-C ranking input).
  void CreditDelivered(GroupId g, const DeliveredProps& delivered);
  /// Runs SharedInfo::Compute over the (restructured) memo.
  void ComputeSharedInfo();
  /// Rank histories, explore all groups to fixpoint, precompute nested-LCA
  /// reachability, and make the context immutable.
  void Freeze();

  // --- read-only API (safe from any thread once frozen) ---

  const Memo& memo() const { return memo_; }
  OptimizerMode mode() const { return mode_; }
  const OptimizerConfig& config() const { return config_; }
  const CardinalityEstimator& estimator() const { return estimator_; }
  const CostModel& cost_model() const { return cost_model_; }
  const GroupStats& StatsOf(GroupId g) const { return estimator_.StatsOf(g); }
  const SharedInfo* shared_info() const {
    return shared_.has_value() ? &*shared_ : nullptr;
  }
  const std::vector<GroupId>& script_roots() const { return script_roots_; }
  const PropertyHistory* HistoryOf(GroupId g) const;
  /// Interns a property set to its dense run-local id (thread-safe; the
  /// interner is the one mutable member that stays live after Freeze —
  /// phase-2 workers may still encounter new requirement sets).
  PropsId InternProps(const RequiredProps& props) const {
    return props_interner_.Intern(props);
  }
  const PropsInterner& props_interner() const { return props_interner_; }
  /// Shared groups at or below `g` as a sorted vector (precomputed by
  /// Freeze from SharedInfo::SharedBelow; empty before Freeze or for groups
  /// the shared-info pass never saw — matching the on-demand set lookup the
  /// string-keyed cache suffix used).
  const std::vector<GroupId>& SharedBelowSorted(GroupId g) const {
    static const std::vector<GroupId> kEmpty;
    size_t i = static_cast<size_t>(g);
    return i < shared_below_sorted_.size() ? shared_below_sorted_[i] : kEmpty;
  }
  /// Candidate partitioning column sets an exchange enforcer may produce
  /// for a requirement.
  std::vector<ColumnSet> EnforceCandidates(const PartitioningReq& req) const;
  /// Mode-appropriate plan objective (tree cost conventionally, DAG cost
  /// with CSE).
  double PlanCost(const PhysicalNodePtr& plan) const;
  bool frozen() const { return frozen_; }
  /// True when LCA `g` has another LCA reachable strictly below it — its
  /// rounds recursively trigger inner rounds and must run serially.
  bool HasNestedLca(GroupId g) const { return nested_lcas_.count(g) != 0; }

 private:
  Memo memo_;
  ColumnRegistryPtr columns_;
  OptimizerConfig config_;
  OptimizerMode mode_ = OptimizerMode::kConventional;
  CardinalityEstimator estimator_;
  CostModel cost_model_;
  std::map<GroupId, PropertyHistory> history_;
  /// Thread-safe by construction; mutable so interning stays available
  /// through the const read-only API after Freeze.
  mutable PropsInterner props_interner_;
  std::vector<std::vector<GroupId>> shared_below_sorted_;
  std::optional<SharedInfo> shared_;
  std::vector<GroupId> script_roots_;
  std::set<GroupId> explored_;
  std::set<GroupId> nested_lcas_;
  bool frozen_ = false;
};

}  // namespace scx

#endif  // SCX_CORE_OPTIMIZATION_CONTEXT_H_
