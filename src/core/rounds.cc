#include "core/rounds.h"

namespace scx {

RoundEnumerator::RoundEnumerator(std::vector<std::vector<GroupId>> classes,
                                 std::map<GroupId, int> history_sizes)
    : classes_(std::move(classes)), history_sizes_(std::move(history_sizes)) {
  // Drop classes whose groups all have empty histories.
  std::vector<std::vector<GroupId>> kept;
  for (auto& cls : classes_) {
    bool any = false;
    for (GroupId g : cls) {
      if (history_sizes_[g] > 0) any = true;
      if (history_sizes_[g] == 0) history_sizes_[g] = 1;  // degenerate entry
    }
    if (any && !cls.empty()) kept.push_back(std::move(cls));
  }
  classes_ = std::move(kept);

  for (size_t k = 0; k < classes_.size(); ++k) {
    long combos = 1;
    for (GroupId g : classes_[k]) {
      if (__builtin_mul_overflow(combos, static_cast<long>(history_sizes_[g]),
                                 &combos)) {
        combos = std::numeric_limits<long>::max();
        break;  // saturated; further factors are >= 1
      }
    }
    long add = (k == 0) ? combos : combos - 1;
    if (__builtin_add_overflow(total_rounds_, add, &total_rounds_)) {
      total_rounds_ = std::numeric_limits<long>::max();
    }
  }
  if (classes_.empty()) {
    done_ = true;
    return;
  }
  counter_.assign(classes_[0].size(), 0);
  counter_fresh_ = true;
}

RoundAssignment RoundEnumerator::CurrentAssignment() const {
  RoundAssignment out = fixed_;
  // Current class: counter values.
  const std::vector<GroupId>& cls = classes_[current_class_];
  for (size_t i = 0; i < cls.size(); ++i) {
    out[cls[i]] = counter_[i];
  }
  // Later classes: their most promising entry (index 0).
  for (size_t k = current_class_ + 1; k < classes_.size(); ++k) {
    for (GroupId g : classes_[k]) out[g] = 0;
  }
  return out;
}

bool RoundEnumerator::AdvanceCounter() {
  const std::vector<GroupId>& cls = classes_[current_class_];
  // The paper varies the FIRST shared group fastest.
  for (size_t i = 0; i < counter_.size(); ++i) {
    ++counter_[i];
    if (counter_[i] < history_sizes_[cls[i]]) return true;
    counter_[i] = 0;
  }
  return false;
}

bool RoundEnumerator::BeginNextClass(const std::vector<int>& pin) {
  const std::vector<GroupId>& cls = classes_[current_class_];
  for (size_t i = 0; i < cls.size(); ++i) {
    fixed_[cls[i]] = i < pin.size() ? pin[i] : 0;
  }
  ++current_class_;
  if (current_class_ >= classes_.size()) {
    done_ = true;
    return false;
  }
  counter_.assign(classes_[current_class_].size(), 0);
  have_best_in_class_ = false;
  // The all-zero combination of a later class was already evaluated while
  // the previous class enumerated (later classes are pinned at 0 there).
  counter_fresh_ = false;
  return true;
}

bool RoundEnumerator::Next(RoundAssignment* out) {
  if (done_ || pending_report_) return false;
  if (!counter_fresh_) {
    if (!AdvanceCounter()) {
      // Class exhausted: pin its best assignment, move to the next class.
      if (!BeginNextClass(have_best_in_class_
                              ? best_counter_
                              : std::vector<int>(counter_.size(), 0))) {
        return false;
      }
      // Skip the all-zero combination.
      if (!AdvanceCounter()) {
        // Single-combination class: nothing new to evaluate; recurse.
        return Next(out);
      }
    }
  }
  counter_fresh_ = false;
  last_assignment_ = CurrentAssignment();
  *out = last_assignment_;
  pending_report_ = true;
  return true;
}

void RoundEnumerator::ReportCost(double cost) {
  if (!pending_report_) return;
  pending_report_ = false;
  if (!have_best_in_class_ || cost < best_cost_in_class_) {
    have_best_in_class_ = true;
    best_cost_in_class_ = cost;
    best_counter_ = counter_;
  }
}

bool RoundEnumerator::NextBatch(std::vector<RoundAssignment>* out) {
  out->clear();
  batch_counters_.clear();
  if (done_ || pending_report_) return false;
  for (;;) {
    if (counter_fresh_) {  // start of the first class only
      counter_fresh_ = false;
      out->push_back(CurrentAssignment());
      batch_counters_.push_back(counter_);
    }
    while (AdvanceCounter()) {
      out->push_back(CurrentAssignment());
      batch_counters_.push_back(counter_);
    }
    if (!out->empty()) {
      pending_report_ = true;
      return true;
    }
    // Single-combination class: nothing new to evaluate; pin entry 0 and
    // move on.
    if (!BeginNextClass(std::vector<int>(counter_.size(), 0))) return false;
  }
}

void RoundEnumerator::ReportBatch(const std::vector<double>& costs) {
  if (!pending_report_) return;
  pending_report_ = false;
  // Lowest cost wins; ties broken by batch index (same rule as serial
  // ReportCost's strict `<`).
  size_t best = 0;
  double best_cost = 0;
  bool have = false;
  for (size_t i = 0; i < costs.size() && i < batch_counters_.size(); ++i) {
    if (!have || costs[i] < best_cost) {
      have = true;
      best_cost = costs[i];
      best = i;
    }
  }
  BeginNextClass(have ? batch_counters_[best]
                      : std::vector<int>(counter_.size(), 0));
}

}  // namespace scx
