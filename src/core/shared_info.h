#ifndef SCX_CORE_SHARED_INFO_H_
#define SCX_CORE_SHARED_INFO_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "memo/memo.h"

namespace scx {

/// Paper Sec. VI: bottom-up propagated knowledge about shared groups, the
/// consumers of each shared group, and the least common ancestor (LCA) of
/// those consumers (Def. 2) — the group where phase-2 re-optimization rounds
/// are run.
///
/// Two implementations of LCA identification are provided:
///  * `Compute` runs the paper's Algorithm 3 (bottom-up ShrdGrp-list
///    propagation with SetLCA on consumer-completing merges),
///  * `LcaByPostDominators` derives the LCA independently from the
///    post-dominator relation of the parent-edge DAG (a group lies on every
///    consumer→root path iff it post-dominates the consumer).
/// Tests assert both agree on the paper's Figure 3 DAGs and on random DAGs.
class SharedInfo {
 public:
  /// Computes shared-below sets, consumer sets, and LCAs for `memo`.
  /// Considers every group whose `is_shared()` flag is set (i.e. SPOOL
  /// groups marked by Algorithm 1).
  static SharedInfo Compute(const Memo& memo);

  /// Shared groups strictly below (reachable from) `g`, including `g`
  /// itself when shared.
  const std::set<GroupId>& SharedBelow(GroupId g) const;

  /// All shared groups, ascending.
  const std::vector<GroupId>& shared_groups() const { return shared_groups_; }

  /// Consumer groups of shared group `s` (its distinct parent groups).
  const std::set<GroupId>& ConsumersOf(GroupId s) const {
    return consumers_.at(s);
  }

  /// The LCA associated with shared group `s`.
  GroupId LcaOf(GroupId s) const { return lca_.at(s); }

  /// Shared groups whose LCA is `g` (empty for non-LCA groups).
  std::vector<GroupId> SharedGroupsWithLca(GroupId g) const;

  /// Independent-shared-group classes at LCA `g` (paper Def. 3 via the
  /// Sec. VIII-A merge procedure over the shared-group sets under each
  /// input of `g`). Each class must be optimized jointly; distinct classes
  /// can be optimized sequentially.
  std::vector<std::vector<GroupId>> IndependenceClassesAt(
      const Memo& memo, GroupId g) const;

  /// Reference LCA computation from post-dominators; exposed for tests.
  static std::map<GroupId, GroupId> LcaByPostDominators(const Memo& memo);

  /// The paper's Algorithm-3 SetLCA result; exposed for tests.
  const std::map<GroupId, GroupId>& algorithm3_lca() const {
    return alg3_lca_;
  }

  std::string ToString(const Memo& memo) const;

 private:
  std::vector<GroupId> shared_groups_;
  std::map<GroupId, std::set<GroupId>> shared_below_;
  std::map<GroupId, std::set<GroupId>> consumers_;
  std::map<GroupId, GroupId> lca_;       // authoritative (post-dominators)
  std::map<GroupId, GroupId> alg3_lca_;  // paper Algorithm 3 result
  std::set<GroupId> empty_;
};

}  // namespace scx

#endif  // SCX_CORE_SHARED_INFO_H_
