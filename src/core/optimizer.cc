#include "core/optimizer.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>
#include <vector>

namespace scx {

Optimizer::Optimizer(Memo memo, ColumnRegistryPtr columns,
                     OptimizerConfig config)
    : ctx_(std::make_unique<OptimizationContext>(
          std::move(memo), std::move(columns), std::move(config))) {}

Result<OptimizeResult> Optimizer::Run(OptimizerMode mode) {
  if (ran_) {
    return Status::FailedPrecondition(
        "Optimizer::Run is single-shot: the optimization context is frozen "
        "and the memo restructured; build a fresh Optimizer to re-optimize");
  }
  ran_ = true;

  auto t0 = std::chrono::steady_clock::now();
  ctx_->set_mode(mode);
  diag_.num_scripts = std::max<int>(
      1, static_cast<int>(ctx_->script_roots().size()));

  if (mode != OptimizerMode::kConventional) {
    CseIdentifyOptions cse_opts = ctx_->config().cse;
    // Merged multi-script memos duplicate whole chains; keep only the
    // maximal common subexpressions there. Single-script memos keep the
    // historical behaviour bit for bit.
    cse_opts.prune_single_consumer_spools = ctx_->script_roots().size() >= 2;
    CseIdentifyResult id =
        IdentifyCommonSubexpressions(&ctx_->mutable_memo(), cse_opts);
    diag_.explicit_shared = id.explicit_shared;
    diag_.merged_subexpressions = id.merged;
  }
  ctx_->EstimateMemo();
  {
    std::vector<GroupId> topo = ctx_->memo().TopologicalOrder();
    diag_.reachable_groups = static_cast<int>(topo.size());
    for (GroupId g : topo) {
      if (ctx_->memo().group(g).is_shared()) ++diag_.num_shared_groups;
    }
  }

  scheduler_ = std::make_unique<RoundScheduler>(ctx_.get(), &diag_);
  master_ = std::make_unique<RoundTask>(ctx_.get(), scheduler_.get());

  RequiredProps trivial;
  PhysicalNodePtr p1 = master_->OptimizeGroup(ctx_->memo().root(), trivial);
  if (p1 == nullptr) {
    return Status::OptimizeError("phase 1 found no valid plan");
  }
  diag_.phase1_cost = ctx_->PlanCost(p1);
  PhysicalNodePtr best = p1;
  double best_cost = diag_.phase1_cost;

  if (mode != OptimizerMode::kConventional) {
    ctx_->ComputeSharedInfo();
    for (GroupId s : ctx_->shared_info()->shared_groups()) {
      diag_.lca_of[s] = ctx_->shared_info()->LcaOf(s);
      const PropertyHistory* h = ctx_->HistoryOf(s);
      diag_.history_sizes[s] = h != nullptr ? h->size() : 0;
    }
    ComputeCrossScriptSharing();
    ctx_->Freeze();  // ranks histories, explores to fixpoint, immutable now
    master_->BeginPhase2();
    scheduler_->StartPhase2();
    auto p2_t0 = std::chrono::steady_clock::now();
    PhysicalNodePtr p2 = master_->OptimizeGroup(ctx_->memo().root(), trivial);
    diag_.phase2_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - p2_t0)
                               .count();
    if (p2 != nullptr) {
      double c2 = ctx_->PlanCost(p2);
      if (c2 < best_cost) {
        best = p2;
        best_cost = c2;
      }
    }
  }

  // Cache/pruning instrumentation: worker counters were absorbed into the
  // master as batches were applied.
  diag_.cache = master_->counters();
  diag_.cache.interner_size =
      static_cast<long>(ctx_->props_interner().size());

  diag_.final_cost = best_cost;
  diag_.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  OptimizeResult result;
  result.plan = best;
  result.cost = best_cost;
  result.diagnostics = diag_;
  return result;
}

void Optimizer::ComputeCrossScriptSharing() {
  const std::vector<GroupId>& roots = ctx_->script_roots();
  if (roots.size() < 2 || ctx_->shared_info() == nullptr) return;
  // A shared group reachable from two or more script roots is a sub-DAG the
  // fingerprint merge unified across script boundaries (or a spool whose
  // consumers happen to span scripts): its one spool decision amortizes over
  // all of them. Reachability runs over every memo expression of every
  // group, matching how phase 2 can wire any alternative.
  const Memo& memo = ctx_->memo();
  std::map<GroupId, int> reached_by;
  for (GroupId root : roots) {
    std::set<GroupId> seen;
    std::vector<GroupId> stack{root};
    while (!stack.empty()) {
      GroupId g = stack.back();
      stack.pop_back();
      if (!seen.insert(g).second) continue;
      for (const GroupExpr& expr : memo.group(g).exprs()) {
        for (GroupId child : expr.children) stack.push_back(child);
      }
    }
    for (GroupId g : seen) ++reached_by[g];
  }
  for (GroupId s : ctx_->shared_info()->shared_groups()) {
    auto it = reached_by.find(s);
    if (it != reached_by.end() && it->second >= 2) {
      ++diag_.cross_script_shared_groups;
    }
  }
}

}  // namespace scx
