#include "core/optimizer.h"

#include <chrono>
#include <utility>
#include <vector>

namespace scx {

Optimizer::Optimizer(Memo memo, ColumnRegistryPtr columns,
                     OptimizerConfig config)
    : ctx_(std::make_unique<OptimizationContext>(
          std::move(memo), std::move(columns), std::move(config))) {}

Result<OptimizeResult> Optimizer::Run(OptimizerMode mode) {
  if (ran_) {
    return Status::FailedPrecondition(
        "Optimizer::Run is single-shot: the optimization context is frozen "
        "and the memo restructured; build a fresh Optimizer to re-optimize");
  }
  ran_ = true;

  auto t0 = std::chrono::steady_clock::now();
  ctx_->set_mode(mode);

  if (mode != OptimizerMode::kConventional) {
    CseIdentifyResult id = IdentifyCommonSubexpressions(
        &ctx_->mutable_memo(), ctx_->config().cse);
    diag_.explicit_shared = id.explicit_shared;
    diag_.merged_subexpressions = id.merged;
  }
  ctx_->EstimateMemo();
  {
    std::vector<GroupId> topo = ctx_->memo().TopologicalOrder();
    diag_.reachable_groups = static_cast<int>(topo.size());
    for (GroupId g : topo) {
      if (ctx_->memo().group(g).is_shared()) ++diag_.num_shared_groups;
    }
  }

  scheduler_ = std::make_unique<RoundScheduler>(ctx_.get(), &diag_);
  master_ = std::make_unique<RoundTask>(ctx_.get(), scheduler_.get());

  RequiredProps trivial;
  PhysicalNodePtr p1 = master_->OptimizeGroup(ctx_->memo().root(), trivial);
  if (p1 == nullptr) {
    return Status::OptimizeError("phase 1 found no valid plan");
  }
  diag_.phase1_cost = ctx_->PlanCost(p1);
  PhysicalNodePtr best = p1;
  double best_cost = diag_.phase1_cost;

  if (mode != OptimizerMode::kConventional) {
    ctx_->ComputeSharedInfo();
    for (GroupId s : ctx_->shared_info()->shared_groups()) {
      diag_.lca_of[s] = ctx_->shared_info()->LcaOf(s);
      const PropertyHistory* h = ctx_->HistoryOf(s);
      diag_.history_sizes[s] = h != nullptr ? h->size() : 0;
    }
    ctx_->Freeze();  // ranks histories, explores to fixpoint, immutable now
    master_->BeginPhase2();
    scheduler_->StartPhase2();
    auto p2_t0 = std::chrono::steady_clock::now();
    PhysicalNodePtr p2 = master_->OptimizeGroup(ctx_->memo().root(), trivial);
    diag_.phase2_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - p2_t0)
                               .count();
    if (p2 != nullptr) {
      double c2 = ctx_->PlanCost(p2);
      if (c2 < best_cost) {
        best = p2;
        best_cost = c2;
      }
    }
  }

  // Cache/pruning instrumentation: worker counters were absorbed into the
  // master as batches were applied.
  diag_.cache = master_->counters();
  diag_.cache.interner_size =
      static_cast<long>(ctx_->props_interner().size());

  diag_.final_cost = best_cost;
  diag_.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  OptimizeResult result;
  result.plan = best;
  result.cost = best_cost;
  result.diagnostics = diag_;
  return result;
}

}  // namespace scx
