#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/rounds.h"

namespace scx {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sentinel history index used by OptimizerMode::kNaiveSharing: enforce no
/// requirement at the shared group (locally cheapest shared plan).
constexpr int kNaiveEntryIndex = -1;

/// Chooses the sort order a stream aggregate will produce: the required
/// output order extended by the remaining grouping columns. Fails when the
/// required order cannot be embedded in the grouping columns.
std::optional<SortSpec> ExtendSort(const SortSpec& required,
                                   const std::vector<ColumnId>& group_cols) {
  ColumnSet gc = ColumnSet::FromVector(group_cols);
  SortSpec out;
  ColumnSet used;
  for (ColumnId c : required.cols) {
    if (!gc.Contains(c) || used.Contains(c)) return std::nullopt;
    out.cols.push_back(c);
    used.Insert(c);
  }
  for (ColumnId c : group_cols) {
    if (!used.Contains(c)) {
      out.cols.push_back(c);
      used.Insert(c);
    }
  }
  return out;
}

/// Maps a delivered property set through a projection (source → output).
DeliveredProps MapDeliveredThroughProject(
    const DeliveredProps& in,
    const std::vector<std::pair<ColumnId, ColumnId>>& project_map) {
  std::map<ColumnId, ColumnId> fwd;
  for (const auto& [src, out] : project_map) {
    fwd.emplace(src, out);  // first wins on duplicate sources
  }
  DeliveredProps out;
  switch (in.partitioning.kind) {
    case PartitioningKind::kSerial:
    case PartitioningKind::kRandom:
      out.partitioning = in.partitioning;
      break;
    case PartitioningKind::kHash: {
      ColumnSet mapped;
      bool complete = true;
      for (ColumnId c : in.partitioning.cols.ToVector()) {
        auto it = fwd.find(c);
        if (it == fwd.end()) {
          complete = false;
          break;
        }
        mapped.Insert(it->second);
      }
      out.partitioning =
          complete ? Partitioning::Hash(mapped) : Partitioning::Random();
      break;
    }
    case PartitioningKind::kRange: {
      std::vector<ColumnId> mapped;
      bool complete = true;
      for (ColumnId c : in.partitioning.range_cols) {
        auto it = fwd.find(c);
        if (it == fwd.end()) {
          complete = false;
          break;
        }
        mapped.push_back(it->second);
      }
      out.partitioning = complete ? Partitioning::Range(std::move(mapped))
                                  : Partitioning::Random();
      break;
    }
  }
  for (ColumnId c : in.sort.cols) {
    auto it = fwd.find(c);
    if (it == fwd.end()) break;
    out.sort.cols.push_back(it->second);
  }
  return out;
}

/// Maps a requirement through a projection (output → source). Every output
/// column has a source, so this always succeeds.
RequiredProps MapRequiredThroughProject(
    const RequiredProps& req,
    const std::vector<std::pair<ColumnId, ColumnId>>& project_map) {
  std::map<ColumnId, ColumnId> back;
  for (const auto& [src, out] : project_map) back.emplace(out, src);
  RequiredProps creq;
  creq.partitioning.kind = req.partitioning.kind;
  for (ColumnId c : req.partitioning.cols.ToVector()) {
    auto it = back.find(c);
    creq.partitioning.cols.Insert(it != back.end() ? it->second : c);
  }
  for (ColumnId c : req.sort.cols) {
    auto it = back.find(c);
    creq.sort.cols.push_back(it != back.end() ? it->second : c);
  }
  return creq;
}

/// Combines the parent's partitioning requirement with an operator's own
/// constraint "input must be partitioned within `own`" (grouping columns for
/// aggregates, join keys for joins). Returns nullopt when no partitioning
/// can satisfy both natively — the enforcer framework then compensates above
/// the operator. This push-down is what lets phase 2 enforce e.g. {B} at a
/// shared aggregate and have the exchange happen below the aggregation
/// (paper Fig. 8(b)) instead of reshuffling its output.
std::optional<PartitioningReq> CombinePartReq(const PartitioningReq& parent,
                                              const ColumnSet& own) {
  switch (parent.kind) {
    case PartReqKind::kNone:
      return PartitioningReq::SubsetOf(own);
    case PartReqKind::kSerial:
      return PartitioningReq::Serial();
    case PartReqKind::kHashExact:
    case PartReqKind::kRangeExact:
      if (parent.cols.IsSubsetOf(own)) return parent;
      return std::nullopt;
    case PartReqKind::kHashSubset: {
      ColumnSet inter = parent.cols.Intersect(own);
      if (inter.Empty()) return std::nullopt;
      return PartitioningReq::SubsetOf(std::move(inter));
    }
  }
  return std::nullopt;
}

PhysicalNodePtr Cheapest(const std::vector<PhysicalNodePtr>& valid,
                         OptimizerMode mode) {
  PhysicalNodePtr best;
  double best_cost = kInf;
  for (const PhysicalNodePtr& p : valid) {
    if (p == nullptr) continue;
    double c =
        mode == OptimizerMode::kConventional ? TreeCost(p) : DagCost(p);
    if (c < best_cost) {
      best_cost = c;
      best = p;
    }
  }
  return best;
}

}  // namespace

Optimizer::Optimizer(Memo memo, ColumnRegistryPtr columns,
                     OptimizerConfig config)
    : memo_(std::move(memo)),
      columns_(std::move(columns)),
      config_(config),
      estimator_(config.cluster, columns_),
      cost_model_(config.costs, config.cluster, &estimator_) {}

const PropertyHistory* Optimizer::HistoryOf(GroupId g) const {
  auto it = history_.find(g);
  return it == history_.end() ? nullptr : &it->second;
}

Result<OptimizeResult> Optimizer::Run(OptimizerMode mode) {
  auto t0 = std::chrono::steady_clock::now();
  mode_ = mode;

  if (mode != OptimizerMode::kConventional) {
    CseIdentifyResult id = IdentifyCommonSubexpressions(&memo_, config_.cse);
    diag_.explicit_shared = id.explicit_shared;
    diag_.merged_subexpressions = id.merged;
  }
  estimator_.EstimateMemo(memo_);
  {
    std::vector<GroupId> topo = memo_.TopologicalOrder();
    diag_.reachable_groups = static_cast<int>(topo.size());
    for (GroupId g : topo) {
      if (memo_.group(g).is_shared()) ++diag_.num_shared_groups;
    }
  }

  phase_ = 1;
  RequiredProps trivial;
  PhysicalNodePtr p1 = OptimizeGroup(memo_.root(), trivial);
  if (p1 == nullptr) {
    return Status::OptimizeError("phase 1 found no valid plan");
  }
  diag_.phase1_cost = PlanCost(p1);
  PhysicalNodePtr best = p1;
  double best_cost = diag_.phase1_cost;

  if (mode != OptimizerMode::kConventional) {
    shared_ = SharedInfo::Compute(memo_);
    for (GroupId s : shared_->shared_groups()) {
      diag_.lca_of[s] = shared_->LcaOf(s);
      diag_.history_sizes[s] = history_[s].size();
      if (config_.rank_properties) history_[s].RankByWins();
    }
    phase_ = 2;
    phase2_start_ = std::chrono::steady_clock::now();
    PhysicalNodePtr p2 = OptimizeGroup(memo_.root(), trivial);
    if (p2 != nullptr) {
      double c2 = PlanCost(p2);
      if (c2 < best_cost) {
        best = p2;
        best_cost = c2;
      }
    }
  }

  diag_.final_cost = best_cost;
  diag_.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  OptimizeResult result;
  result.plan = best;
  result.cost = best_cost;
  result.diagnostics = diag_;
  return result;
}

double Optimizer::PlanCost(const PhysicalNodePtr& plan) const {
  return mode_ == OptimizerMode::kConventional ? TreeCost(plan)
                                               : DagCost(plan);
}

bool Optimizer::BudgetExceeded() const {
  if (budget_exhausted_) return true;
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - phase2_start_)
                       .count();
  return elapsed > config_.budget_seconds;
}

std::string Optimizer::WinnerKeySuffix(GroupId g) const {
  if (phase_ == 1 || !shared_.has_value()) return "";
  const std::set<GroupId>& below = shared_->SharedBelow(g);
  if (below.empty()) return "";
  std::string s = "p2|";
  for (GroupId sg : below) {
    auto it = enforced_.find(sg);
    if (it != enforced_.end()) {
      s += std::to_string(sg) + ":" + std::to_string(it->second) + ";";
    }
  }
  return s;
}

void Optimizer::RecordHistory(GroupId g, const RequiredProps& req) {
  PropertyHistory& h = history_[g];
  if (req.partitioning.kind == PartReqKind::kHashSubset) {
    // Sec. V: store one exact entry per partitioning scheme satisfying the
    // range requirement, i.e. per non-empty subset (capped for wide sets).
    std::vector<ColumnSet> candidates = EnforceCandidates(req.partitioning);
    for (ColumnSet& s : candidates) {
      RequiredProps entry;
      entry.partitioning = PartitioningReq::Exactly(std::move(s));
      entry.sort = req.sort;
      h.Add(entry);
    }
  } else {
    h.Add(req);
  }
}

std::vector<ColumnSet> Optimizer::EnforceCandidates(
    const PartitioningReq& req) const {
  std::vector<ColumnSet> out;
  switch (req.kind) {
    case PartReqKind::kHashExact:
      out.push_back(req.cols);
      break;
    case PartReqKind::kHashSubset: {
      if (req.cols.Size() <= config_.max_expand_cols) {
        out = req.cols.NonEmptySubsets();
      } else {
        for (ColumnId c : req.cols.ToVector()) {
          out.push_back(ColumnSet::Of({c}));
        }
        out.push_back(req.cols);
      }
      break;
    }
    case PartReqKind::kRangeExact:  // handled by the range-exchange path
    case PartReqKind::kNone:
    case PartReqKind::kSerial:
      break;
  }
  return out;
}

void Optimizer::EnsureExplored(GroupId g) {
  if (!explored_.insert(g).second) return;
  std::vector<GroupExpr> snapshot = memo_.group(g).exprs();

  // Join commutativity: Join(L,R) ≡ Project(Join(R,L)) — the commuted join
  // lives in a fresh (rule-generated) group delivering right++left columns;
  // an id-preserving Project restores this group's schema order. Not
  // applied to rule-generated groups (would ping-pong forever).
  if (config_.enable_join_commute && !memo_.group(g).rule_generated()) {
    for (const GroupExpr& expr : snapshot) {
      if (expr.op->kind() != LogicalOpKind::kJoin) continue;
      const LogicalNode& join = *expr.op;
      Schema swapped;
      int left_width =
          memo_.group(expr.children[0]).schema().NumColumns();
      for (int i = left_width; i < join.schema().NumColumns(); ++i) {
        swapped.AddColumn(join.schema().column(i));
      }
      for (int i = 0; i < left_width; ++i) {
        swapped.AddColumn(join.schema().column(i));
      }
      auto commuted = std::make_shared<LogicalNode>(
          LogicalOpKind::kJoin, std::move(swapped),
          std::vector<LogicalNodePtr>{});
      for (const auto& [l, r] : join.join_keys) {
        commuted->join_keys.emplace_back(r, l);
      }
      commuted->predicates = join.predicates;
      GroupExpr cexpr;
      cexpr.op = std::move(commuted);
      cexpr.children = {expr.children[1], expr.children[0]};
      GroupId cgroup = memo_.NewGroup(std::move(cexpr));
      memo_.group(cgroup).set_rule_generated(true);
      estimator_.SetStats(cgroup, StatsOf(g));

      auto restore = std::make_shared<LogicalNode>(
          LogicalOpKind::kProject, join.schema(),
          std::vector<LogicalNodePtr>{});
      for (const ColumnInfo& c : join.schema().columns()) {
        restore->project_map.emplace_back(c.id, c.id);
      }
      GroupExpr pexpr;
      pexpr.op = std::move(restore);
      pexpr.children = {cgroup};
      memo_.group(g).AddExpr(std::move(pexpr));
    }
  }

  if (!config_.enable_agg_split) return;
  for (const GroupExpr& expr : snapshot) {
    if (expr.op->kind() != LogicalOpKind::kGbAgg) continue;
    if (expr.op->group_cols.empty()) continue;  // grand totals stay serial
    const LogicalNode& agg = *expr.op;
    GroupId child = expr.children[0];

    // Build LocalGbAgg: same grouping, partial aggregate outputs.
    Schema local_schema;
    for (ColumnId c : agg.group_cols) {
      int pos = agg.schema().PositionOf(c);
      local_schema.AddColumn(agg.schema().column(pos));
    }
    std::vector<AggregateDesc> local_aggs;
    std::vector<AggregateDesc> global_aggs;
    for (const AggregateDesc& a : agg.aggregates) {
      AggregateDesc local = a;
      ColumnMeta meta;
      meta.name = "partial_" + a.out_name;
      meta.type = a.fn == AggFn::kCount ? DataType::kInt64 : a.out_type;
      if (a.fn == AggFn::kAvg) meta.type = DataType::kDouble;
      local.out = columns_->Create(meta);
      local.out_name = meta.name;
      local.out_type = meta.type;
      local.hidden_count = 0;
      if (a.fn == AggFn::kAvg) {
        ColumnMeta cnt;
        cnt.name = "partialcnt_" + a.out_name;
        cnt.type = DataType::kInt64;
        local.hidden_count = columns_->Create(cnt);
      }
      local_schema.AddColumn(ColumnInfo{local.out, local.out_name, "",
                                        local.out_type});
      if (local.hidden_count != 0) {
        local_schema.AddColumn(ColumnInfo{local.hidden_count,
                                          "partialcnt_" + a.out_name, "",
                                          DataType::kInt64});
      }

      // Global side merges partials: Sum for Sum/Count partials, Min/Max
      // pass through, Avg divides summed partial sums by summed counts
      // (the partial-count column travels in hidden_count).
      AggregateDesc global = a;
      global.arg = local.out;
      global.count_star = false;
      switch (a.fn) {
        case AggFn::kSum:
        case AggFn::kCount:
          global.fn = AggFn::kSum;
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          break;
        case AggFn::kAvg:
          global.hidden_count = local.hidden_count;
          break;
      }
      local_aggs.push_back(std::move(local));
      global_aggs.push_back(std::move(global));
    }

    auto local_proto = std::make_shared<LogicalNode>(
        LogicalOpKind::kLocalGbAgg, std::move(local_schema),
        std::vector<LogicalNodePtr>{});
    local_proto->group_cols = agg.group_cols;
    local_proto->aggregates = std::move(local_aggs);

    GroupExpr local_expr;
    local_expr.op = local_proto;
    local_expr.children = expr.children;
    GroupId local_group = memo_.NewGroup(std::move(local_expr));
    memo_.group(local_group).set_rule_generated(true);
    estimator_.SetStats(
        local_group,
        estimator_.EstimateExpr(*local_proto, {StatsOf(child)}));

    auto global_proto = std::make_shared<LogicalNode>(
        LogicalOpKind::kGlobalGbAgg, agg.schema(),
        std::vector<LogicalNodePtr>{});
    global_proto->group_cols = agg.group_cols;
    global_proto->aggregates = std::move(global_aggs);
    global_proto->result_name = agg.result_name;
    GroupExpr global_expr;
    global_expr.op = std::move(global_proto);
    global_expr.children = {local_group};
    memo_.group(g).AddExpr(std::move(global_expr));
  }
}

PhysicalNodePtr Optimizer::OptimizeGroup(GroupId g, const RequiredProps& req) {
  auto key = std::make_tuple(g, req.ToString(), WinnerKeySuffix(g));
  auto it = winners_.find(key);
  if (it != winners_.end()) {
    return it->second.has_value() ? *it->second : nullptr;
  }

  if (phase_ == 1 && mode_ == OptimizerMode::kCse &&
      memo_.group(g).is_shared()) {
    RecordHistory(g, req);
  }

  PhysicalNodePtr plan;
  if (phase_ == 2 && enforced_.count(g) != 0) {
    plan = OptimizeSharedEnforced(g, req);
  } else if (phase_ == 2 && shared_.has_value() &&
             in_rounds_.count(g) == 0 && !budget_exhausted_ &&
             !shared_->SharedGroupsWithLca(g).empty()) {
    plan = RunRounds(g, req);
  } else {
    plan = LogPhysOpt(g, req);
  }

  if (phase_ == 1 && mode_ == OptimizerMode::kCse &&
      memo_.group(g).is_shared() && plan != nullptr) {
    history_[g].CreditDelivered(plan->delivered);
  }

  winners_[key] = plan;
  return plan;
}

PhysicalNodePtr Optimizer::RunRounds(GroupId g, const RequiredProps& req) {
  in_rounds_.insert(g);
  std::vector<GroupId> here = shared_->SharedGroupsWithLca(g);

  if (mode_ == OptimizerMode::kNaiveSharing) {
    // Related-work baseline: exactly one round per LCA, every shared group
    // enforced with NO requirement — i.e. the locally cheapest shared plan,
    // which all consumers must then compensate above (paper Secs. I-II).
    diag_.rounds_planned += 1;
    ++diag_.rounds_executed;
    for (GroupId s : here) enforced_[s] = kNaiveEntryIndex;
    PhysicalNodePtr plan = LogPhysOpt(g, req);
    for (GroupId s : here) enforced_.erase(s);
    in_rounds_.erase(g);
    return plan;
  }

  // Sec. VIII-B: rank shared groups by potential repartitioning savings
  // RepartSav(G) = (NoConsumers(G)-1) * RepartCost(G).
  std::map<GroupId, double> savings;
  for (GroupId s : here) {
    double consumers =
        static_cast<double>(shared_->ConsumersOf(s).size());
    savings[s] = (consumers - 1.0) * cost_model_.RepartCostOf(StatsOf(s));
  }

  std::vector<std::vector<GroupId>> classes;
  if (config_.exploit_independent_groups) {
    classes = shared_->IndependenceClassesAt(memo_, g);
  } else {
    classes.push_back(here);
  }
  if (config_.rank_shared_groups) {
    for (auto& cls : classes) {
      std::stable_sort(cls.begin(), cls.end(), [&](GroupId a, GroupId b) {
        return savings[a] > savings[b];
      });
    }
    std::stable_sort(classes.begin(), classes.end(),
                     [&](const std::vector<GroupId>& a,
                         const std::vector<GroupId>& b) {
                       double ma = 0, mb = 0;
                       for (GroupId s : a) ma = std::max(ma, savings[s]);
                       for (GroupId s : b) mb = std::max(mb, savings[s]);
                       return ma > mb;
                     });
  }

  std::map<GroupId, int> sizes;
  for (GroupId s : here) sizes[s] = history_[s].size();

  RoundScheduler scheduler(classes, sizes);
  diag_.rounds_planned += scheduler.TotalRounds();

  PhysicalNodePtr best;
  double best_cost = kInf;
  RoundAssignment assignment;
  while (scheduler.Next(&assignment)) {
    if (BudgetExceeded() || diag_.rounds_executed >= config_.max_rounds) {
      budget_exhausted_ = true;
      diag_.budget_exhausted = true;
      break;
    }
    ++diag_.rounds_executed;
    for (const auto& [s, idx] : assignment) enforced_[s] = idx;
    PhysicalNodePtr plan = LogPhysOpt(g, req);
    double cost = plan != nullptr ? PlanCost(plan) : kInf;
    scheduler.ReportCost(cost);
    for (const auto& [s, idx] : assignment) enforced_.erase(s);
    if (plan != nullptr && cost < best_cost) {
      best = plan;
      best_cost = cost;
    }
    if (config_.trace_rounds) {
      RoundTraceEntry entry;
      entry.lca = g;
      entry.round_index = diag_.rounds_executed;
      entry.assignment = assignment;
      entry.cost = cost;
      entry.best_so_far = best_cost;
      diag_.round_trace.push_back(std::move(entry));
    }
  }
  in_rounds_.erase(g);
  if (best == nullptr) {
    best = LogPhysOpt(g, req);  // budget exhausted before the first round
  }
  return best;
}

PhysicalNodePtr Optimizer::SpoolBase(GroupId g, int entry_index) {
  GroupId child = memo_.group(g).initial_expr().children[0];
  // Nested enforcement below the spool can change the base across outer
  // rounds; include the child's enforcement signature in the key.
  auto full_key = std::make_tuple(g, entry_index, WinnerKeySuffix(child));
  auto it = spool_bases_.find(full_key);
  if (it != spool_bases_.end()) return it->second;

  RequiredProps eprops;  // trivial for the naive-sharing sentinel entry
  if (entry_index != kNaiveEntryIndex) {
    eprops = history_[g].entry(entry_index).props;
  }
  PhysicalNodePtr cp = OptimizeGroup(child, eprops);
  PhysicalNodePtr spool;
  if (cp != nullptr) {
    double write = cost_model_.SpoolWrite(StatsOf(child),
                                          cp->delivered.partitioning);
    spool = MakePhysicalNode(PhysicalOpKind::kSpool,
                             memo_.group(g).initial_expr().op, g, {cp},
                             cp->delivered, write);
    spool->extra_consumer_cost = cost_model_.SpoolRead(
        StatsOf(child), cp->delivered.partitioning);
  }
  spool_bases_[full_key] = spool;
  return spool;
}

PhysicalNodePtr Optimizer::OptimizeSharedEnforced(GroupId g,
                                                  const RequiredProps& req) {
  PhysicalNodePtr base = SpoolBase(g, enforced_.at(g));
  if (base == nullptr) return nullptr;
  std::vector<PhysicalNodePtr> valid;
  WrapEnforcersOverBase(g, base, req, &valid);
  return Cheapest(valid, mode_);
}

void Optimizer::WrapEnforcersOverBase(GroupId g, const PhysicalNodePtr& base,
                                      const RequiredProps& req,
                                      std::vector<PhysicalNodePtr>* valid) {
  const GroupStats& stats = StatsOf(g);
  if (PropertySatisfied(req, base->delivered)) {
    valid->push_back(base);
    return;
  }
  bool part_ok = req.partitioning.SatisfiedBy(base->delivered.partitioning);
  if (part_ok) {
    // Only the sort is missing: sort each partition above the spool.
    DeliveredProps d{base->delivered.partitioning, req.sort};
    PhysicalNodePtr sort = MakePhysicalNode(
        PhysicalOpKind::kSort, base->proto, g, {base}, d,
        cost_model_.Sort(stats, base->delivered.partitioning));
    sort->sort_spec = req.sort;
    valid->push_back(std::move(sort));
    return;
  }
  if (req.partitioning.kind == PartReqKind::kSerial) {
    DeliveredProps d{Partitioning::Serial(), base->delivered.sort};
    PhysicalNodePtr gather =
        MakePhysicalNode(PhysicalOpKind::kGather, base->proto, g, {base}, d,
                         cost_model_.Gather(stats));
    if (PropertySatisfied(req, gather->delivered)) {
      valid->push_back(gather);
    } else {
      DeliveredProps ds{Partitioning::Serial(), req.sort};
      PhysicalNodePtr sort = MakePhysicalNode(
          PhysicalOpKind::kSort, base->proto, g, {gather}, ds,
          cost_model_.Sort(stats, Partitioning::Serial()));
      sort->sort_spec = req.sort;
      valid->push_back(std::move(sort));
    }
    return;
  }
  if (req.partitioning.kind == PartReqKind::kRangeExact) {
    Partitioning range = Partitioning::Range(req.partitioning.range_cols);
    DeliveredProps d{range, {}};
    PhysicalNodePtr ex = MakePhysicalNode(
        PhysicalOpKind::kRangeExchange, base->proto, g, {base}, d,
        cost_model_.RangeExchange(stats, base->delivered.partitioning,
                                  req.partitioning.cols));
    ex->exchange_cols = req.partitioning.cols;
    if (req.sort.Empty()) {
      valid->push_back(std::move(ex));
    } else {
      DeliveredProps ds{range, req.sort};
      PhysicalNodePtr sort =
          MakePhysicalNode(PhysicalOpKind::kSort, base->proto, g, {ex}, ds,
                           cost_model_.Sort(stats, range));
      sort->sort_spec = req.sort;
      valid->push_back(std::move(sort));
    }
    return;
  }

  for (ColumnSet& cols : EnforceCandidates(req.partitioning)) {
    // Order-preserving exchange when the spool already delivers the order.
    if (!req.sort.Empty() &&
        base->delivered.sort.SatisfiesPrefix(req.sort)) {
      DeliveredProps d{Partitioning::Hash(cols), base->delivered.sort};
      PhysicalNodePtr ex = MakePhysicalNode(
          PhysicalOpKind::kMergeExchange, base->proto, g, {base}, d,
          cost_model_.MergeExchange(stats, base->delivered.partitioning,
                                    cols));
      ex->exchange_cols = cols;
      valid->push_back(std::move(ex));
      continue;
    }
    DeliveredProps d{Partitioning::Hash(cols), {}};
    PhysicalNodePtr ex = MakePhysicalNode(
        PhysicalOpKind::kHashExchange, base->proto, g, {base}, d,
        cost_model_.HashExchange(stats, base->delivered.partitioning, cols));
    ex->exchange_cols = cols;
    if (req.sort.Empty()) {
      valid->push_back(std::move(ex));
    } else {
      DeliveredProps ds{Partitioning::Hash(cols), req.sort};
      PhysicalNodePtr sort = MakePhysicalNode(
          PhysicalOpKind::kSort, base->proto, g, {ex}, ds,
          cost_model_.Sort(stats, Partitioning::Hash(cols)));
      sort->sort_spec = req.sort;
      valid->push_back(std::move(sort));
    }
  }
}

PhysicalNodePtr Optimizer::LogPhysOpt(GroupId g, const RequiredProps& req) {
  EnsureExplored(g);
  std::vector<PhysicalNodePtr> valid;
  // Copy: nested OptimizeGroup calls may add expressions to other groups
  // (and rules could add to this one) while we iterate.
  std::vector<GroupExpr> exprs = memo_.group(g).exprs();
  for (const GroupExpr& expr : exprs) {
    ImplementExpr(g, expr, req, &valid);
  }
  EnforceAlternatives(g, req, &valid);
  return Cheapest(valid, mode_);
}

void Optimizer::ImplementExpr(GroupId g, const GroupExpr& expr,
                              const RequiredProps& req,
                              std::vector<PhysicalNodePtr>* valid) {
  const LogicalNode& op = *expr.op;
  auto push_if_valid = [&](PhysicalNodePtr node) {
    if (node != nullptr && PropertySatisfied(req, node->delivered)) {
      valid->push_back(std::move(node));
    }
  };

  switch (op.kind()) {
    case LogicalOpKind::kExtract: {
      DeliveredProps d{Partitioning::Random(), {}};
      push_if_valid(MakePhysicalNode(PhysicalOpKind::kExtract, expr.op, g, {},
                                     d, cost_model_.Extract(StatsOf(g))));
      break;
    }
    case LogicalOpKind::kFilter: {
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], req);
      if (cp == nullptr) break;
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kFilter, expr.op, g, {cp}, cp->delivered,
          cost_model_.Filter(StatsOf(expr.children[0]),
                             cp->delivered.partitioning)));
      break;
    }
    case LogicalOpKind::kProject: {
      RequiredProps creq = MapRequiredThroughProject(req, op.project_map);
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], creq);
      if (cp == nullptr) break;
      DeliveredProps d =
          MapDeliveredThroughProject(cp->delivered, op.project_map);
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kProject, expr.op, g, {cp}, d,
          cost_model_.Project(StatsOf(expr.children[0]),
                              cp->delivered.partitioning)));
      break;
    }
    case LogicalOpKind::kCompute: {
      // Passthrough items keep their column ids, so requirements on them
      // push straight through; requirements touching computed outputs
      // cannot (the enforcer framework compensates above this node).
      ColumnSet pass;
      for (const ComputeItem& item : op.compute_items) {
        if (item.IsPassthrough()) pass.Insert(item.out);
      }
      RequiredProps creq;
      if (req.partitioning.kind == PartReqKind::kNone ||
          req.partitioning.kind == PartReqKind::kSerial ||
          req.partitioning.cols.IsSubsetOf(pass)) {
        creq.partitioning = req.partitioning;
      }
      for (ColumnId c : req.sort.cols) {
        if (!pass.Contains(c)) break;
        creq.sort.cols.push_back(c);
      }
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], creq);
      if (cp == nullptr) break;
      DeliveredProps d;
      const Partitioning& cpart = cp->delivered.partitioning;
      if (cpart.kind != PartitioningKind::kHash &&
          cpart.kind != PartitioningKind::kRange) {
        d.partitioning = cpart;
      } else if (cpart.cols.IsSubsetOf(pass)) {
        d.partitioning = cpart;
      } else {
        d.partitioning = Partitioning::Random();
      }
      for (ColumnId c : cp->delivered.sort.cols) {
        if (!pass.Contains(c)) break;
        d.sort.cols.push_back(c);
      }
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kCompute, expr.op, g, {cp}, d,
          cost_model_.Project(StatsOf(expr.children[0]),
                              cp->delivered.partitioning)));
      break;
    }
    case LogicalOpKind::kSpool: {
      // Un-enforced spool (phase 1, or phase 2 after budget exhaustion):
      // pass the consumer's requirement through to the producer.
      PhysicalNodePtr cp = OptimizeGroup(expr.children[0], req);
      if (cp == nullptr) break;
      PhysicalNodePtr spool = MakePhysicalNode(
          PhysicalOpKind::kSpool, expr.op, g, {cp}, cp->delivered,
          cost_model_.SpoolWrite(StatsOf(expr.children[0]),
                                 cp->delivered.partitioning));
      spool->extra_consumer_cost = cost_model_.SpoolRead(
          StatsOf(expr.children[0]), cp->delivered.partitioning);
      push_if_valid(std::move(spool));
      break;
    }
    case LogicalOpKind::kOutput: {
      // ORDER BY output: a globally ordered file can be produced either by
      // gathering everything into one sorted partition (Gather + Sort
      // enforcers) or, in parallel, by range-partitioning on the order
      // columns and sorting each partition — partition order then follows
      // key order. Both alternatives are costed.
      std::vector<RequiredProps> creqs;
      if (op.order_by.empty()) {
        creqs.push_back(RequiredProps{});
      } else {
        creqs.push_back(RequiredProps{PartitioningReq::Serial(),
                                      SortSpec{op.order_by}});
        creqs.push_back(RequiredProps{
            PartitioningReq::RangeExactly(op.order_by),
            SortSpec{op.order_by}});
      }
      for (const RequiredProps& creq : creqs) {
        PhysicalNodePtr cp = OptimizeGroup(expr.children[0], creq);
        if (cp == nullptr) continue;
        push_if_valid(MakePhysicalNode(
            PhysicalOpKind::kOutput, expr.op, g, {cp}, cp->delivered,
            cost_model_.Output(StatsOf(expr.children[0]),
                               cp->delivered.partitioning)));
      }
      break;
    }
    case LogicalOpKind::kSequence: {
      std::vector<PhysicalNodePtr> children;
      bool ok = true;
      for (GroupId c : expr.children) {
        PhysicalNodePtr cp = OptimizeGroup(c, RequiredProps{});
        if (cp == nullptr) {
          ok = false;
          break;
        }
        children.push_back(std::move(cp));
      }
      if (!ok) break;
      DeliveredProps d{Partitioning::Random(), {}};
      push_if_valid(MakePhysicalNode(PhysicalOpKind::kSequence, expr.op, g,
                                     std::move(children), d, 0));
      break;
    }
    case LogicalOpKind::kGbAgg:
    case LogicalOpKind::kGlobalGbAgg: {
      GroupId child = expr.children[0];
      std::optional<PartitioningReq> combined =
          op.group_cols.empty()
              ? std::optional<PartitioningReq>(PartitioningReq::Serial())
              : CombinePartReq(req.partitioning,
                               ColumnSet::FromVector(op.group_cols));
      if (!combined.has_value()) break;  // enforcers compensate above
      PartitioningReq part_req = *combined;
      // Stream aggregate: input sorted on a grouping-column order chosen to
      // also serve the required output order.
      std::optional<SortSpec> order = ExtendSort(req.sort, op.group_cols);
      if (order.has_value()) {
        RequiredProps creq{part_req, *order};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, *order};
          PhysicalNodePtr agg = MakePhysicalNode(
              PhysicalOpKind::kStreamAgg, expr.op, g, {cp}, d,
              cost_model_.StreamAgg(StatsOf(child),
                                    cp->delivered.partitioning));
          agg->sort_spec = *order;
          push_if_valid(std::move(agg));
        }
      }
      // Hash aggregate: no input order needed, no output order delivered.
      {
        RequiredProps creq{part_req, {}};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, {}};
          push_if_valid(MakePhysicalNode(
              PhysicalOpKind::kHashAgg, expr.op, g, {cp}, d,
              cost_model_.HashAgg(StatsOf(child),
                                  cp->delivered.partitioning)));
        }
      }
      break;
    }
    case LogicalOpKind::kLocalGbAgg: {
      // A local (partial) aggregate works on any placement and preserves it,
      // so the parent's partitioning requirement passes straight through.
      GroupId child = expr.children[0];
      std::optional<SortSpec> order = ExtendSort(req.sort, op.group_cols);
      if (order.has_value()) {
        RequiredProps creq{req.partitioning, *order};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, *order};
          PhysicalNodePtr agg = MakePhysicalNode(
              PhysicalOpKind::kStreamAgg, expr.op, g, {cp}, d,
              cost_model_.StreamAgg(StatsOf(child),
                                    cp->delivered.partitioning));
          agg->sort_spec = *order;
          push_if_valid(std::move(agg));
        }
      }
      {
        RequiredProps creq{req.partitioning, {}};
        PhysicalNodePtr cp = OptimizeGroup(child, creq);
        if (cp != nullptr) {
          DeliveredProps d{cp->delivered.partitioning, {}};
          push_if_valid(MakePhysicalNode(
              PhysicalOpKind::kHashAgg, expr.op, g, {cp}, d,
              cost_model_.HashAgg(StatsOf(child),
                                  cp->delivered.partitioning)));
        }
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      ImplementJoin(g, expr, req, valid);
      break;
    }
    case LogicalOpKind::kUnionAll: {
      std::vector<PhysicalNodePtr> children;
      bool ok = true;
      for (GroupId c : expr.children) {
        PhysicalNodePtr cp = OptimizeGroup(c, RequiredProps{});
        if (cp == nullptr) {
          ok = false;
          break;
        }
        children.push_back(std::move(cp));
      }
      if (!ok) break;
      // Concatenation gives no placement or order guarantee (the sources'
      // column identities differ, so even matching schemes are
      // inexpressible on the output ids).
      DeliveredProps d{Partitioning::Random(), {}};
      push_if_valid(MakePhysicalNode(
          PhysicalOpKind::kUnionAll, expr.op, g, std::move(children), d,
          cost_model_.Project(StatsOf(g), Partitioning::Random())));
      break;
    }
  }
}

void Optimizer::ImplementJoin(GroupId g, const GroupExpr& expr,
                              const RequiredProps& req,
                              std::vector<PhysicalNodePtr>* valid) {
  const LogicalNode& op = *expr.op;
  GroupId left = expr.children[0];
  GroupId right = expr.children[1];
  std::vector<ColumnId> lkeys, rkeys;
  for (const auto& [l, r] : op.join_keys) {
    lkeys.push_back(l);
    rkeys.push_back(r);
  }
  auto push_if_valid = [&](PhysicalNodePtr node) {
    if (node != nullptr && PropertySatisfied(req, node->delivered)) {
      valid->push_back(std::move(node));
    }
  };

  // Aligns the follower side's required columns with the positions the
  // driver side actually delivered.
  auto aligned_cols = [&](const ColumnSet& driver_cols,
                          const std::vector<ColumnId>& driver_keys,
                          const std::vector<ColumnId>& other_keys) {
    ColumnSet out;
    for (size_t i = 0; i < driver_keys.size(); ++i) {
      if (driver_cols.Contains(driver_keys[i])) out.Insert(other_keys[i]);
    }
    return out;
  };
  // Mirror of aligned_cols, mapping follower columns back to the left side
  // so delivered partitioning is always expressed in left-side columns.
  auto left_side_cols = [&](const ColumnSet& driver_cols, bool driver_left) {
    if (driver_left) return driver_cols;
    return aligned_cols(driver_cols, rkeys, lkeys);
  };

  // Hash join, driver side optimized first with a free subset requirement;
  // the other side is then pinned to the aligned exact scheme.
  for (bool driver_left : {true, false}) {
    GroupId driver = driver_left ? left : right;
    GroupId other = driver_left ? right : left;
    const std::vector<ColumnId>& dkeys = driver_left ? lkeys : rkeys;
    const std::vector<ColumnId>& okeys = driver_left ? rkeys : lkeys;

    // Fold the parent's partitioning requirement into the driver's when it
    // speaks of this side's key columns (delivered partitioning is always
    // expressed in left-side columns, so only fold for the left driver).
    std::optional<PartitioningReq> dpart =
        driver_left
            ? CombinePartReq(req.partitioning, ColumnSet::FromVector(dkeys))
            : std::optional<PartitioningReq>(
                  PartitioningReq::SubsetOf(ColumnSet::FromVector(dkeys)));
    if (!dpart.has_value()) continue;
    RequiredProps dreq{*dpart, {}};
    PhysicalNodePtr dp = OptimizeGroup(driver, dreq);
    if (dp == nullptr) continue;
    RequiredProps oreq;
    Partitioning delivered_part;
    if (dp->delivered.partitioning.kind == PartitioningKind::kSerial) {
      oreq.partitioning = PartitioningReq::Serial();
      delivered_part = Partitioning::Serial();
    } else {
      ColumnSet o =
          aligned_cols(dp->delivered.partitioning.cols, dkeys, okeys);
      oreq.partitioning = PartitioningReq::Exactly(o);
      delivered_part = Partitioning::Hash(
          left_side_cols(dp->delivered.partitioning.cols, driver_left));
    }
    PhysicalNodePtr opn = OptimizeGroup(other, oreq);
    if (opn == nullptr) continue;
    PhysicalNodePtr lp = driver_left ? dp : opn;
    PhysicalNodePtr rp = driver_left ? opn : dp;
    DeliveredProps d{delivered_part, {}};
    push_if_valid(MakePhysicalNode(
        PhysicalOpKind::kHashJoin, expr.op, g, {lp, rp}, d,
        cost_model_.HashJoin(StatsOf(left), StatsOf(right),
                             delivered_part)));
  }

  // Broadcast hash join: the (presumably small) right side is replicated to
  // every machine, so the left side needs NO particular partitioning — the
  // parent requirement passes straight through and no exchange of the big
  // side is ever needed.
  {
    // Pass the parent's requirement to the left side only where it speaks
    // of left-side columns (the probe stream flows through unchanged).
    // The replicated build side spans the whole cluster, so this variant
    // does not produce serial plans (Gather-based alternatives cover that).
    if (req.partitioning.kind != PartReqKind::kSerial) {
      ColumnSet left_schema_cols = memo_.group(left).schema().IdSet();
      RequiredProps lreq;
      if (req.partitioning.cols.IsSubsetOf(left_schema_cols)) {
        lreq.partitioning = req.partitioning;
      }
      if (SortSpec{req.sort}.AsSet().IsSubsetOf(left_schema_cols)) {
        lreq.sort = req.sort;
      }
      PhysicalNodePtr lp = OptimizeGroup(left, lreq);
      PhysicalNodePtr rp = OptimizeGroup(right, RequiredProps{});
      if (lp != nullptr && rp != nullptr &&
          lp->delivered.partitioning.kind != PartitioningKind::kSerial) {
        PhysicalNodePtr bcast = MakePhysicalNode(
            PhysicalOpKind::kBroadcastExchange, rp->proto, right, {rp},
            DeliveredProps{Partitioning::Random(), {}},
            cost_model_.Broadcast(StatsOf(right)));
        // The probe stream flows through unchanged: placement and order
        // of the left side are preserved.
        DeliveredProps d = lp->delivered;
        push_if_valid(MakePhysicalNode(
            PhysicalOpKind::kHashJoin, expr.op, g, {lp, std::move(bcast)}, d,
            cost_model_.HashJoin(StatsOf(left), StatsOf(right),
                                 lp->delivered.partitioning)));
      }
    }
  }

  // Merge join (left-driven): both sides sorted on the aligned full key
  // order; preserves the left order downstream.
  {
    SortSpec lorder;
    std::optional<SortSpec> ext = ExtendSort(req.sort, lkeys);
    lorder = ext.has_value() ? *ext : SortSpec{lkeys};
    std::optional<PartitioningReq> lpart =
        CombinePartReq(req.partitioning, ColumnSet::FromVector(lkeys));
    if (!lpart.has_value()) return;
    RequiredProps lreq{*lpart, lorder};
    PhysicalNodePtr lp = OptimizeGroup(left, lreq);
    if (lp != nullptr) {
      // Right order aligned with the left key permutation.
      SortSpec rorder;
      for (ColumnId lc : lorder.cols) {
        for (size_t i = 0; i < lkeys.size(); ++i) {
          if (lkeys[i] == lc) {
            rorder.cols.push_back(rkeys[i]);
            break;
          }
        }
      }
      RequiredProps rreq;
      Partitioning delivered_part;
      if (lp->delivered.partitioning.kind == PartitioningKind::kSerial) {
        rreq.partitioning = PartitioningReq::Serial();
        delivered_part = Partitioning::Serial();
      } else {
        ColumnSet o =
            aligned_cols(lp->delivered.partitioning.cols, lkeys, rkeys);
        rreq.partitioning = PartitioningReq::Exactly(o);
        delivered_part = lp->delivered.partitioning;
      }
      rreq.sort = rorder;
      PhysicalNodePtr rp = OptimizeGroup(right, rreq);
      if (rp != nullptr) {
        DeliveredProps d{delivered_part, lorder};
        push_if_valid(MakePhysicalNode(
            PhysicalOpKind::kMergeJoin, expr.op, g, {lp, rp}, d,
            cost_model_.MergeJoin(StatsOf(left), StatsOf(right),
                                  delivered_part)));
      }
    }
  }
}

void Optimizer::EnforceAlternatives(GroupId g, const RequiredProps& req,
                                    std::vector<PhysicalNodePtr>* valid) {
  const GroupStats& stats = StatsOf(g);

  // Sort enforcer: satisfy the partitioning first, then sort in place.
  if (!req.sort.Empty()) {
    RequiredProps relaxed{req.partitioning, {}};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      DeliveredProps d{inner->delivered.partitioning, req.sort};
      PhysicalNodePtr sort = MakePhysicalNode(
          PhysicalOpKind::kSort, inner->proto, g, {inner}, d,
          cost_model_.Sort(stats, inner->delivered.partitioning));
      sort->sort_spec = req.sort;
      valid->push_back(std::move(sort));
    }
  }

  if (req.partitioning.kind == PartReqKind::kSerial) {
    RequiredProps relaxed{PartitioningReq::None(), req.sort};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      DeliveredProps d{Partitioning::Serial(), inner->delivered.sort};
      valid->push_back(MakePhysicalNode(PhysicalOpKind::kGather, inner->proto,
                                        g, {inner}, d,
                                        cost_model_.Gather(stats)));
    }
    return;
  }

  if (req.partitioning.kind == PartReqKind::kRangeExact) {
    RequiredProps relaxed{PartitioningReq::None(), {}};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      Partitioning range = Partitioning::Range(req.partitioning.range_cols);
      DeliveredProps d{range, {}};
      PhysicalNodePtr ex = MakePhysicalNode(
          PhysicalOpKind::kRangeExchange, inner->proto, g, {inner}, d,
          cost_model_.RangeExchange(stats, inner->delivered.partitioning,
                                    req.partitioning.cols));
      ex->exchange_cols = req.partitioning.cols;
      if (req.sort.Empty()) {
        valid->push_back(std::move(ex));
      } else {
        DeliveredProps ds{range, req.sort};
        PhysicalNodePtr sort =
            MakePhysicalNode(PhysicalOpKind::kSort, inner->proto, g, {ex}, ds,
                             cost_model_.Sort(stats, range));
        sort->sort_spec = req.sort;
        valid->push_back(std::move(sort));
      }
    }
    return;
  }

  if (req.partitioning.kind != PartReqKind::kHashSubset &&
      req.partitioning.kind != PartReqKind::kHashExact) {
    return;
  }

  for (ColumnSet& cols : EnforceCandidates(req.partitioning)) {
    // Plain hash repartition (destroys order) + optional sort above.
    RequiredProps relaxed{PartitioningReq::None(), {}};
    PhysicalNodePtr inner = OptimizeGroup(g, relaxed);
    if (inner != nullptr) {
      DeliveredProps d{Partitioning::Hash(cols), {}};
      PhysicalNodePtr ex = MakePhysicalNode(
          PhysicalOpKind::kHashExchange, inner->proto, g, {inner}, d,
          cost_model_.HashExchange(stats, inner->delivered.partitioning,
                                   cols));
      ex->exchange_cols = cols;
      if (req.sort.Empty()) {
        valid->push_back(std::move(ex));
      } else {
        DeliveredProps ds{Partitioning::Hash(cols), req.sort};
        PhysicalNodePtr sort =
            MakePhysicalNode(PhysicalOpKind::kSort, inner->proto, g, {ex}, ds,
                             cost_model_.Sort(stats, Partitioning::Hash(cols)));
        sort->sort_spec = req.sort;
        valid->push_back(std::move(sort));
      }
    }
    // Order-preserving merge repartition over a locally sorted input.
    if (!req.sort.Empty()) {
      RequiredProps sorted_relax{PartitioningReq::None(), req.sort};
      PhysicalNodePtr inner2 = OptimizeGroup(g, sorted_relax);
      if (inner2 != nullptr) {
        DeliveredProps d{Partitioning::Hash(cols), inner2->delivered.sort};
        PhysicalNodePtr ex = MakePhysicalNode(
            PhysicalOpKind::kMergeExchange, inner2->proto, g, {inner2}, d,
            cost_model_.MergeExchange(stats, inner2->delivered.partitioning,
                                      cols));
        ex->exchange_cols = cols;
        valid->push_back(std::move(ex));
      }
    }
  }
}

}  // namespace scx
