#ifndef SCX_TESTING_DIFF_HARNESS_H_
#define SCX_TESTING_DIFF_HARNESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"

namespace scx {

/// Options for one differential-testing run.
struct HarnessOptions {
  int machines = 8;
  /// Thread count of the parallel arm of the determinism oracle (the serial
  /// arm is always 1). Applies to both optimizer rounds and executor
  /// partitions.
  int threads = 4;
  /// Slack for the cost oracle: cse_cost <= conv_cost * (1 + cost_slack).
  double cost_slack = 1e-4;
  bool minimize = true;
  /// When nonempty, failing (minimized) repros are written here as corpus
  /// files named seed<seed>_<oracle>.scx.
  std::string corpus_dir;
  /// When Enabled(), the fault-oracle family (8 and 9) also runs: faulted
  /// executions of the CSE plan must be bit-identical to the clean runs in
  /// outputs and every legacy counter, at any thread/batch/morsel knobs
  /// ("fault-identity" / "fault-determinism"), and recovery served by
  /// surviving spools must never move more bytes than pure recomputation
  /// ("recovery-cost"). Oracles 1-7 always run clean.
  FaultPlan fault_plan;
};

/// Result of checking one script against the oracles. `oracle` is one of
/// the failure tags below; empty when everything passed.
///
/// The paper-level invariants map onto the tags as:
///   (1) equivalence    -> "outputs"
///   (2) cost claim     -> "cost"
///   (3) determinism    -> "opt-determinism" / "exec-determinism"
///   (4) plan hygiene   -> "validate" / "roundtrip"
///   (5) batch identity -> "batch-identity" (the vectorized executor must
///       be bit-identical — raw rows and legacy counters — to the
///       batch_size=1 row-at-a-time path)
/// plus pipeline failures "compile" / "optimize" / "execute" (a generated
/// script must never fail to compile, optimize, or run).
struct OracleReport {
  bool ok = true;
  std::string oracle;
  std::string detail;
  uint64_t seed = 0;
  std::string script;            ///< the script as checked
  std::string minimized_script;  ///< filled when minimization ran
  std::string corpus_path;       ///< repro file written, when corpus_dir set
};

/// Differential-testing oracle harness (the scxcheck core). For one
/// (catalog, script) case it checks:
///   1. kConventional and kCse plans execute to identical canonical outputs;
///   2. estimated cost of the CSE plan <= conventional (paper Fig. 6/7);
///   3. serial and multi-threaded optimize + execute are bit-identical
///      (same plan JSON; same ExecMetrics counters and raw output rows);
///   4. both plans pass ValidatePlan and their JSON serialization survives a
///      parse -> serialize round-trip byte for byte;
///   5. columnar-batch execution (the default) is bit-identical to the
///      batch_size=1 legacy row path: same raw output rows and same legacy
///      counters (batch-only counters — batches_evaluated, exprs_deduped,
///      rows_converted, batch_pipeline_breaks — are excluded from this
///      oracle: they count batch-pipeline work and are 0 by definition on
///      the row path; the determinism oracle still compares them between
///      same-batch-size runs).
/// On failure it greedily minimizes the script (drop outputs -> drop
/// operators -> shrink WHERE/ORDER BY/GROUP BY clauses), re-checking the
/// failing oracle at every step, and optionally writes the shrunken repro
/// (with its seed and catalog) to a corpus directory.
class DiffHarness {
 public:
  explicit DiffHarness(HarnessOptions options = {}) : opts_(options) {}

  /// Runs all oracles on `script`; minimizes and records on failure.
  OracleReport Check(const Catalog& catalog, const std::string& script,
                     uint64_t seed = 0) const;

  /// Oracle 7, "batch-vs-sequential": submitting `scripts` through
  /// Engine::SubmitBatch as one merged run must (a) produce per-script raw
  /// outputs bit-identical to executing each script alone in kCse mode, (b)
  /// move no more bytes (shuffled + spooled) than the sequential runs
  /// combined, (c) stay bit-identical under thread-count and batch/morsel
  /// knob changes, and (d) reproduce identical outputs on resubmission
  /// through the warmed cross-query spool cache. Failures are reproducible
  /// from the seed alone (no multi-script minimizer / corpus writer).
  OracleReport CheckBatch(const Catalog& catalog,
                          const std::vector<std::string>& scripts,
                          uint64_t seed = 0) const;

  /// Minimizes `script` so that it still fails `oracle` (used by Check;
  /// exposed for replaying corpus entries and for tests).
  std::string Minimize(const Catalog& catalog, const std::string& script,
                       const std::string& oracle) const;

  const HarnessOptions& options() const { return opts_; }

 private:
  struct Failure {
    std::string oracle;
    std::string detail;
  };

  /// Runs the oracle battery; nullopt when all pass.
  std::optional<Failure> RunOracles(const Catalog& catalog,
                                    const std::string& script) const;

  HarnessOptions opts_;
};

/// One corpus repro: everything needed to replay a failure from the ctest
/// log or a checked-in file alone.
struct CorpusCase {
  uint64_t seed = 0;
  std::string oracle;  ///< empty for pass-regression entries
  int machines = 8;
  int threads = 4;
  /// Replayed into HarnessOptions::fault_plan; default-constructed (and the
  /// `# fault:` line absent) for clean repros.
  FaultPlan fault_plan;
  Catalog catalog;
  std::string script;
};

/// Serializes a corpus case:
///   # scxcheck repro
///   # seed: <n>
///   # oracle: <tag>
///   # machines: <n> threads: <n>
///   # fault: seed=<n> prob=<p> max=<n> straggler=<p>x<f> [norecovery]
///            [events=<pass>@<machine>,...]        (only when fault-armed)
///   file <path> rows=<n> seed=<n> <col>:<ndv> ...
///   ---
///   <script>
std::string CorpusCaseToText(const CorpusCase& c);
Result<CorpusCase> ParseCorpusText(const std::string& text);

/// Sorted *.scx paths under `dir` (empty when the directory is missing).
std::vector<std::string> ListCorpusFiles(const std::string& dir);

/// Reads and parses one corpus file.
Result<CorpusCase> LoadCorpusFile(const std::string& path);

}  // namespace scx

#endif  // SCX_TESTING_DIFF_HARNESS_H_
