#include "testing/catalog_text.h"

#include <cstdio>
#include <sstream>

namespace scx {

Result<Catalog> ParseCatalogText(const std::string& text) {
  Catalog catalog;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word[0] == '#') continue;
    if (word != "file") {
      return Status::ParseError("catalog line " + std::to_string(lineno) +
                                ": expected 'file', got '" + word + "'");
    }
    FileDef def;
    if (!(words >> def.path)) {
      return Status::ParseError("catalog line " + std::to_string(lineno) +
                                ": missing path");
    }
    std::string rows_spec;
    if (!(words >> rows_spec) || rows_spec.rfind("rows=", 0) != 0) {
      return Status::ParseError("catalog line " + std::to_string(lineno) +
                                ": expected rows=<n>");
    }
    def.row_count = std::stoll(rows_spec.substr(5));
    while (words >> word) {
      if (word.rfind("seed=", 0) == 0) {
        def.data_seed = std::stoull(word.substr(5));
        continue;
      }
      // <name>:<ndv>[:<type>][:skew=<alpha>]
      size_t c1 = word.find(':');
      if (c1 == std::string::npos) {
        return Status::ParseError("catalog line " + std::to_string(lineno) +
                                  ": column spec '" + word +
                                  "' needs <name>:<ndv>");
      }
      ColumnStats cs;
      cs.name = word.substr(0, c1);
      size_t c2 = word.find(':', c1 + 1);
      std::string ndv = word.substr(
          c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
      cs.distinct_count = std::stoll(ndv);
      cs.type = DataType::kInt64;
      cs.avg_width = 8;
      while (c2 != std::string::npos) {
        size_t c3 = word.find(':', c2 + 1);
        std::string part = word.substr(
            c2 + 1, c3 == std::string::npos ? std::string::npos : c3 - c2 - 1);
        if (part == "double") {
          cs.type = DataType::kDouble;
        } else if (part == "string") {
          cs.type = DataType::kString;
          cs.avg_width = 12;
        } else if (part.rfind("skew=", 0) == 0) {
          cs.skew_alpha = std::stod(part.substr(5));
          if (cs.skew_alpha < 0) {
            return Status::ParseError("catalog line " + std::to_string(lineno) +
                                      ": skew must be >= 0");
          }
        } else if (part != "int64") {
          return Status::ParseError("catalog line " + std::to_string(lineno) +
                                    ": unknown type '" + part + "'");
        }
        c2 = c3;
      }
      def.columns.push_back(std::move(cs));
    }
    if (def.columns.empty()) {
      return Status::ParseError("catalog line " + std::to_string(lineno) +
                                ": file has no columns");
    }
    SCX_RETURN_IF_ERROR(catalog.RegisterFile(std::move(def)));
  }
  if (catalog.files().empty()) {
    return Status::InvalidArgument("catalog text defines no files");
  }
  return catalog;
}

std::string CatalogToText(const Catalog& catalog) {
  std::string out;
  for (const auto& [path, def] : catalog.files()) {
    out += "file " + path + " rows=" + std::to_string(def.row_count) +
           " seed=" + std::to_string(def.data_seed);
    for (const ColumnStats& cs : def.columns) {
      out += " " + cs.name + ":" + std::to_string(cs.distinct_count);
      switch (cs.type) {
        case DataType::kInt64:
          break;
        case DataType::kDouble:
          out += ":double";
          break;
        case DataType::kString:
          out += ":string";
          break;
      }
      if (cs.skew_alpha > 0) {
        // %g keeps the value round-trip stable for the fractional alphas
        // the generator emits (no trailing zeros).
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", cs.skew_alpha);
        out += ":skew=";
        out += buf;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace scx
