#include "testing/diff_harness.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/engine.h"
#include "exec/executor.h"
#include "opt/plan_json.h"
#include "opt/plan_validator.h"
#include "testing/catalog_text.h"
#include "testing/json_lite.h"

namespace scx {

namespace {

Result<ExecMetrics> RunPlan(const PhysicalNodePtr& plan, int machines,
                            int exec_threads, int batch_size = 0,
                            int morsel_size = 0,
                            const FaultPlan* fault = nullptr) {
  ClusterConfig cluster;
  cluster.machines = machines;
  cluster.exec_threads = exec_threads;
  cluster.batch_size = batch_size;
  cluster.morsel_size = morsel_size;
  if (fault != nullptr) cluster.fault_plan = *fault;
  Executor executor(cluster);
  return executor.Execute(plan);
}

/// Full bitwise comparison of two executions (counters AND raw rows — the
/// determinism contract of docs/architecture.md §12/§15). The batch-path
/// counters are compared only when both runs used the same batch size
/// (`same_batch_size`): they count batch-path work, so a batch_size=1 run
/// legitimately reports 0 for both while producing identical rows. The
/// morsel counters additionally need the same morsel size
/// (`same_morsel_size`); every other counter is invariant to both knobs.
/// The fault counters are compared only when both runs used the same
/// FaultPlan AND the same pipeline kind (`same_fault_plan`): pass ids are
/// pipeline-structural (the batch path fuses operator chains into one
/// failure domain), so a faulted row-path run legitimately injects a
/// different failure set than the batch path while still recovering to
/// identical outputs and legacy counters.
bool MetricsEqual(const ExecMetrics& a, const ExecMetrics& b,
                  bool same_batch_size, bool same_morsel_size,
                  bool same_fault_plan, std::string* why) {
#define SCX_CMP(field)                                                  \
  if (a.field != b.field) {                                             \
    *why = #field ": " + std::to_string(a.field) + " vs " +             \
           std::to_string(b.field);                                     \
    return false;                                                       \
  }
  SCX_CMP(rows_extracted)
  SCX_CMP(bytes_extracted)
  SCX_CMP(rows_shuffled)
  SCX_CMP(bytes_shuffled)
  SCX_CMP(bytes_spooled)
  SCX_CMP(rows_spooled)
  SCX_CMP(spool_executions)
  SCX_CMP(spool_reads)
  SCX_CMP(spool_cache_hits)
  SCX_CMP(spool_bytes_evicted)
  SCX_CMP(operator_invocations)
  SCX_CMP(rows_output)
  if (same_batch_size) {
    SCX_CMP(cross_query_spool_hits)
    SCX_CMP(batches_evaluated)
    SCX_CMP(exprs_deduped)
    SCX_CMP(rows_converted)
    SCX_CMP(batch_pipeline_breaks)
  }
  if (same_batch_size && same_morsel_size) {
    SCX_CMP(morsels_evaluated)
    SCX_CMP(morsel_steal_count)
  }
  if (same_fault_plan) {
    SCX_CMP(machine_failures_injected)
    SCX_CMP(partitions_recovered)
    SCX_CMP(rows_recomputed)
    SCX_CMP(recovery_spool_hits)
    SCX_CMP(recovery_bytes_moved)
    SCX_CMP(sim_makespan_ticks)
  }
#undef SCX_CMP
  if (a.outputs != b.outputs) {
    *why = "raw output rows differ";
    return false;
  }
  return true;
}

/// Short human description of how two canonicalized output sets differ.
std::string DescribeOutputDiff(const ExecMetrics& conv,
                               const ExecMetrics& cse) {
  auto a = CanonicalOutputs(conv);
  auto b = CanonicalOutputs(cse);
  for (const auto& [path, rows] : a) {
    auto it = b.find(path);
    if (it == b.end()) return "path " + path + " missing from cse outputs";
    if (rows.size() != it->second.size()) {
      return "path " + path + ": conventional " +
             std::to_string(rows.size()) + " rows, cse " +
             std::to_string(it->second.size());
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] != it->second[i]) {
        return "path " + path + ": first canonical divergence at row " +
               std::to_string(i);
      }
    }
  }
  for (const auto& [path, rows] : b) {
    if (a.find(path) == a.end()) {
      return "path " + path + " missing from conventional outputs";
    }
  }
  return "outputs differ";
}

/// Oracle 4b: the plan's JSON serialization must parse, survive a
/// parse -> serialize round-trip byte for byte, and describe the same DAG
/// (node count, root, in-range child references).
Status CheckJsonRoundTrip(const PhysicalNodePtr& plan) {
  std::string json = PlanToJson(plan);
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  std::string again = SerializeJson(*parsed);
  if (again != json) {
    return Status::Internal("plan JSON not round-trip stable");
  }
  const JsonValue* nodes = parsed->Find("nodes");
  const JsonValue* root = parsed->Find("root");
  if (nodes == nullptr || nodes->kind != JsonValue::Kind::kArray ||
      root == nullptr) {
    return Status::Internal("plan JSON missing root/nodes");
  }
  int expect = CountDagNodes(plan);
  if (static_cast<int>(nodes->array.size()) != expect) {
    return Status::Internal(
        "plan JSON has " + std::to_string(nodes->array.size()) +
        " nodes, plan DAG has " + std::to_string(expect));
  }
  int n = static_cast<int>(nodes->array.size());
  for (const JsonValue& node : nodes->array) {
    const JsonValue* children = node.Find("children");
    if (children == nullptr || children->kind != JsonValue::Kind::kArray) {
      return Status::Internal("plan JSON node without children array");
    }
    for (const JsonValue& c : children->array) {
      int id = static_cast<int>(c.AsNumber());
      if (id < 0 || id >= n) {
        return Status::Internal("plan JSON child id out of range: " +
                                std::to_string(id));
      }
    }
  }
  return Status::OK();
}

/// Splits a script into trimmed single-statement lines ("<stmt>;").
std::vector<std::string> SplitStatements(const std::string& script) {
  std::vector<std::string> out;
  std::string current;
  for (char c : script) {
    current.push_back(c);
    if (c == ';') {
      size_t b = current.find_first_not_of(" \t\n\r");
      size_t e = current.find_last_not_of(" \t\n\r");
      if (b != std::string::npos) {
        out.push_back(current.substr(b, e - b + 1));
      }
      current.clear();
    }
  }
  return out;
}

std::string JoinStatements(const std::vector<std::string>& stmts) {
  std::string out;
  for (const std::string& s : stmts) out += s + "\n";
  return out;
}

/// Splits `list` ("A,B,Sum(C) AS S") on top-level commas.
std::vector<std::string> SplitTopLevel(const std::string& list) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (char c : list) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// True iff select item `item` is the bare (possibly qualified) column
/// `key` with no aggregate call and no alias.
bool ItemIsKey(const std::string& item, const std::string& key) {
  std::string t = Trim(item);
  if (t.find('(') != std::string::npos) return false;
  if (t == key) return true;
  size_t dot = t.rfind('.');
  return dot != std::string::npos && t.substr(dot + 1) == key;
}

/// Removes one grouping key from a statement: from the GROUP BY list, the
/// ORDER BY list (when present), and the matching bare select item. Returns
/// empty when the rewrite does not apply.
std::string RemoveGroupKey(const std::string& stmt, const std::string& key) {
  size_t gb = stmt.find(" GROUP BY ");
  if (gb == std::string::npos) return "";
  size_t gb_start = gb + 10;
  size_t gb_end = stmt.find(" ORDER BY ", gb_start);
  size_t tail = gb_end == std::string::npos ? stmt.find(';', gb_start)
                                            : gb_end;
  if (tail == std::string::npos) return "";
  std::vector<std::string> keys =
      SplitTopLevel(stmt.substr(gb_start, tail - gb_start));
  if (keys.size() < 2) return "";  // never drop the last key
  std::vector<std::string> kept;
  for (const std::string& k : keys) {
    if (Trim(k) != key) kept.push_back(Trim(k));
  }
  if (kept.size() != keys.size() - 1) return "";

  // Rebuild the select list without the bare `key` item.
  size_t sel = stmt.find("SELECT ");
  size_t from = stmt.find(" FROM ");
  if (sel == std::string::npos || from == std::string::npos || from < sel) {
    return "";
  }
  size_t sel_start = sel + 7;
  std::vector<std::string> items =
      SplitTopLevel(stmt.substr(sel_start, from - sel_start));
  std::vector<std::string> kept_items;
  bool dropped = false;
  for (const std::string& item : items) {
    if (!dropped && ItemIsKey(item, key)) {
      dropped = true;
      continue;
    }
    kept_items.push_back(Trim(item));
  }
  if (kept_items.empty()) return "";

  std::string out = stmt.substr(0, sel_start);
  for (size_t i = 0; i < kept_items.size(); ++i) {
    if (i > 0) out += ",";
    out += kept_items[i];
  }
  out += stmt.substr(from, gb_start - from);
  for (size_t i = 0; i < kept.size(); ++i) {
    if (i > 0) out += ",";
    out += kept[i];
  }
  if (gb_end != std::string::npos) {
    // Shrink the ORDER BY list too; drop the clause when it empties.
    size_t ob_start = gb_end + 10;
    size_t semi = stmt.find(';', ob_start);
    std::vector<std::string> order =
        SplitTopLevel(stmt.substr(ob_start, semi - ob_start));
    std::vector<std::string> kept_order;
    for (const std::string& o : order) {
      if (Trim(o) != key) kept_order.push_back(Trim(o));
    }
    if (!kept_order.empty()) {
      out += " ORDER BY ";
      for (size_t i = 0; i < kept_order.size(); ++i) {
        if (i > 0) out += ",";
        out += kept_order[i];
      }
    }
  }
  out += ";";
  return out;
}

/// Candidate one-statement simplifications, cheapest first.
std::vector<std::string> ShrinkStatement(const std::string& stmt) {
  std::vector<std::string> out;
  // Drop ORDER BY.
  size_t ob = stmt.find(" ORDER BY ");
  if (ob != std::string::npos) {
    out.push_back(stmt.substr(0, ob) + ";");
  }
  // Drop WHERE (joins will fail to rebind and be rejected by the caller).
  size_t wh = stmt.find(" WHERE ");
  if (wh != std::string::npos) {
    size_t end = stmt.find(" GROUP BY ", wh);
    if (end == std::string::npos) end = stmt.find(" ORDER BY ", wh);
    if (end == std::string::npos) end = stmt.find(';', wh);
    out.push_back(stmt.substr(0, wh) + stmt.substr(end));
  }
  // Shrink GROUP BY key sets one key at a time.
  size_t gb = stmt.find(" GROUP BY ");
  if (gb != std::string::npos) {
    size_t gb_start = gb + 10;
    size_t end = stmt.find(" ORDER BY ", gb_start);
    if (end == std::string::npos) end = stmt.find(';', gb_start);
    for (const std::string& key :
         SplitTopLevel(stmt.substr(gb_start, end - gb_start))) {
      std::string candidate = RemoveGroupKey(stmt, Trim(key));
      if (!candidate.empty()) out.push_back(candidate);
    }
  }
  return out;
}

/// Catalog restricted to the files the script actually references.
Catalog PruneCatalog(const Catalog& catalog, const std::string& script) {
  Catalog pruned;
  bool any = false;
  for (const auto& [path, def] : catalog.files()) {
    if (script.find("\"" + path + "\"") != std::string::npos) {
      Status s = pruned.RegisterFile(def);
      (void)s;
      any = true;
    }
  }
  return any ? pruned : catalog;
}

}  // namespace

std::optional<DiffHarness::Failure> DiffHarness::RunOracles(
    const Catalog& catalog, const std::string& script) const {
  OptimizerConfig cfg;
  cfg.cluster.machines = opts_.machines;
  cfg.cluster.exec_threads = 1;
  cfg.num_threads = 1;
  // The wall-clock phase-2 budget is the optimizer's one deliberate
  // nondeterminism (docs/architecture.md §10): where enumeration stops
  // depends on machine speed. The oracles test logic, not the budget
  // heuristic, so lift it far out of reach — otherwise a slow environment
  // (tsan is ~15x) turns budget expiry into spurious determinism and cost
  // failures.
  cfg.budget_seconds = 1e9;
  Engine engine(catalog, cfg);

  auto compiled = engine.Compile(script);
  if (!compiled.ok()) {
    return Failure{"compile", compiled.status().ToString()};
  }
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  if (!conv.ok()) {
    return Failure{"optimize", "conventional: " + conv.status().ToString()};
  }
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!cse.ok()) {
    return Failure{"optimize", "cse: " + cse.status().ToString()};
  }

  // Oracle 4: structural validity and JSON round-trip of both plans.
  for (const auto* opt : {&*conv, &*cse}) {
    const char* mode =
        opt->mode == OptimizerMode::kConventional ? "conventional" : "cse";
    Status valid = ValidatePlan(opt->plan());
    if (!valid.ok()) {
      return Failure{"validate",
                     std::string(mode) + ": " + valid.ToString()};
    }
    Status json = CheckJsonRoundTrip(opt->plan());
    if (!json.ok()) {
      return Failure{"roundtrip",
                     std::string(mode) + ": " + json.ToString()};
    }
  }

  // Oracle 2: the paper's cost claim — sharing never costs more.
  if (cse->cost() > conv->cost() * (1.0 + opts_.cost_slack)) {
    return Failure{"cost", "cse cost " + std::to_string(cse->cost()) +
                               " exceeds conventional cost " +
                               std::to_string(conv->cost())};
  }

  // Oracle 3a: parallel optimization is bit-identical to serial.
  if (opts_.threads > 1) {
    OptimizerConfig pcfg = cfg;
    pcfg.num_threads = opts_.threads;
    Engine parallel_engine(catalog, pcfg);
    auto cse_par = parallel_engine.Optimize(*compiled, OptimizerMode::kCse);
    if (!cse_par.ok()) {
      return Failure{"optimize",
                     "cse parallel: " + cse_par.status().ToString()};
    }
    if (cse_par->cost() != cse->cost() ||
        PlanToJson(cse_par->plan()) != PlanToJson(cse->plan())) {
      return Failure{"opt-determinism",
                     "parallel (" + std::to_string(opts_.threads) +
                         " threads) optimization chose a different plan "
                         "(serial cost " +
                         std::to_string(cse->cost()) + ", parallel cost " +
                         std::to_string(cse_par->cost()) + ")"};
    }
  }

  // Oracle 1: both modes execute to identical canonical outputs.
  auto conv_run = RunPlan(conv->plan(), opts_.machines, /*exec_threads=*/1);
  if (!conv_run.ok()) {
    return Failure{"execute",
                   "conventional: " + conv_run.status().ToString()};
  }
  auto cse_run = RunPlan(cse->plan(), opts_.machines, /*exec_threads=*/1);
  if (!cse_run.ok()) {
    return Failure{"execute", "cse: " + cse_run.status().ToString()};
  }
  if (!SameOutputs(*conv_run, *cse_run)) {
    return Failure{"outputs", DescribeOutputDiff(*conv_run, *cse_run)};
  }

  // Oracle 3b: parallel execution is bit-identical to serial.
  if (opts_.threads > 1) {
    auto cse_par_run = RunPlan(cse->plan(), opts_.machines, opts_.threads);
    if (!cse_par_run.ok()) {
      return Failure{"execute",
                     "cse parallel: " + cse_par_run.status().ToString()};
    }
    std::string why;
    if (!MetricsEqual(*cse_run, *cse_par_run, /*same_batch_size=*/true,
                      /*same_morsel_size=*/true, /*same_fault_plan=*/true,
                      &why)) {
      return Failure{"exec-determinism",
                     std::to_string(opts_.threads) +
                         "-thread execution diverged from serial: " + why};
    }
  }

  // Oracle 3c: the morsel size never changes results — outputs and every
  // non-morsel counter match the default-morsel serial run at degenerate
  // (1), adversarial (prime), and whole-partition (huge) morsel sizes, at
  // one and at opts_.threads threads.
  for (int morsel_size : {1, 61, 1 << 30}) {
    auto morsel_run = RunPlan(cse->plan(), opts_.machines,
                              /*exec_threads=*/1, /*batch_size=*/0,
                              morsel_size);
    if (!morsel_run.ok()) {
      return Failure{"execute", "cse morsel_size=" +
                                    std::to_string(morsel_size) + ": " +
                                    morsel_run.status().ToString()};
    }
    std::string why;
    if (!MetricsEqual(*cse_run, *morsel_run, /*same_batch_size=*/true,
                      /*same_morsel_size=*/false, /*same_fault_plan=*/true,
                      &why)) {
      return Failure{"morsel-identity",
                     "morsel_size=" + std::to_string(morsel_size) +
                         " diverged from the default morsel size: " + why};
    }
    if (opts_.threads > 1) {
      auto morsel_par = RunPlan(cse->plan(), opts_.machines, opts_.threads,
                                /*batch_size=*/0, morsel_size);
      if (!morsel_par.ok()) {
        return Failure{"execute", "cse parallel morsel_size=" +
                                      std::to_string(morsel_size) + ": " +
                                      morsel_par.status().ToString()};
      }
      if (!MetricsEqual(*morsel_run, *morsel_par, /*same_batch_size=*/true,
                        /*same_morsel_size=*/true, /*same_fault_plan=*/true,
                        &why)) {
        return Failure{"exec-determinism",
                       "morsel_size=" + std::to_string(morsel_size) + ", " +
                           std::to_string(opts_.threads) +
                           "-thread execution diverged from serial: " + why};
      }
    }
  }

  // Oracle 5: the columnar batch path (the default used by every run
  // above) is bit-identical to the batch_size=1 row-at-a-time path.
  {
    auto row_run = RunPlan(cse->plan(), opts_.machines, /*exec_threads=*/1,
                           /*batch_size=*/1);
    if (!row_run.ok()) {
      return Failure{"execute",
                     "cse batch_size=1: " + row_run.status().ToString()};
    }
    std::string why;
    if (!MetricsEqual(*cse_run, *row_run, /*same_batch_size=*/false,
                      /*same_morsel_size=*/false, /*same_fault_plan=*/true,
                      &why)) {
      return Failure{"batch-identity",
                     "batched execution diverged from the batch_size=1 row "
                     "path: " + why};
    }
  }

  // Fault-oracle family (oracles 8-9, docs/architecture.md §17). Only runs
  // when the harness is armed with a FaultPlan; everything above ran clean.
  if (opts_.fault_plan.Enabled()) {
    const FaultPlan& fp = opts_.fault_plan;

    // Oracle 8, "fault-identity": a faulted run recovers every lost
    // partition and stays bit-identical to the clean baseline — raw output
    // rows and every legacy counter (recovery is side-effect-free; the new
    // fault counters are strictly additive).
    auto fault_run = RunPlan(cse->plan(), opts_.machines, /*exec_threads=*/1,
                             /*batch_size=*/0, /*morsel_size=*/0, &fp);
    if (!fault_run.ok()) {
      return Failure{"execute",
                     "cse faulted: " + fault_run.status().ToString()};
    }
    std::string why;
    if (!MetricsEqual(*cse_run, *fault_run, /*same_batch_size=*/true,
                      /*same_morsel_size=*/true, /*same_fault_plan=*/false,
                      &why)) {
      return Failure{"fault-identity",
                     "faulted run diverged from the clean run: " + why};
    }
    if (fault_run->partitions_recovered !=
        fault_run->machine_failures_injected) {
      return Failure{
          "fault-identity",
          "injected " +
              std::to_string(fault_run->machine_failures_injected) +
              " machine failures but recovered " +
              std::to_string(fault_run->partitions_recovered) +
              " partitions"};
    }

    // Oracle 8b, "fault-determinism": the faulted run itself — fault
    // counters included — is bit-identical across the thread knob, and at
    // adversarial batch/morsel knobs it still reproduces the clean
    // baseline's legacy counters and raw outputs.
    if (opts_.threads > 1) {
      auto fault_par = RunPlan(cse->plan(), opts_.machines, opts_.threads,
                               /*batch_size=*/0, /*morsel_size=*/0, &fp);
      if (!fault_par.ok()) {
        return Failure{"execute", "cse faulted parallel: " +
                                      fault_par.status().ToString()};
      }
      if (!MetricsEqual(*fault_run, *fault_par, /*same_batch_size=*/true,
                        /*same_morsel_size=*/true, /*same_fault_plan=*/true,
                        &why)) {
        return Failure{"fault-determinism",
                       std::to_string(opts_.threads) +
                           "-thread faulted execution diverged from the "
                           "serial faulted run: " + why};
      }
    }
    {
      auto fault_knob = RunPlan(cse->plan(), opts_.machines, opts_.threads,
                                /*batch_size=*/61, /*morsel_size=*/53, &fp);
      if (!fault_knob.ok()) {
        return Failure{"execute", "cse faulted knob run: " +
                                      fault_knob.status().ToString()};
      }
      if (!MetricsEqual(*cse_run, *fault_knob, /*same_batch_size=*/false,
                        /*same_morsel_size=*/false, /*same_fault_plan=*/false,
                        &why)) {
        return Failure{"fault-identity",
                       "faulted run at batch_size=61 morsel_size=53 "
                       "diverged from the clean baseline: " + why};
      }
    }

    // Oracle 9, "recovery-cost": recovery through surviving spools must
    // never recompute more rows or move more bytes than the pure-recompute
    // strategy (the disable_recovery_spool_reads arm), while both arms stay
    // output-identical. The failure sets of the two arms are equal by
    // construction — FailsAt() ignores the recovery strategy.
    {
      FaultPlan pure = fp;
      pure.disable_recovery_spool_reads = true;
      auto pure_run = RunPlan(cse->plan(), opts_.machines,
                              /*exec_threads=*/1, /*batch_size=*/0,
                              /*morsel_size=*/0, &pure);
      if (!pure_run.ok()) {
        return Failure{"execute", "cse faulted pure-recompute: " +
                                      pure_run.status().ToString()};
      }
      if (!MetricsEqual(*cse_run, *pure_run, /*same_batch_size=*/true,
                        /*same_morsel_size=*/true, /*same_fault_plan=*/false,
                        &why)) {
        return Failure{"recovery-cost",
                       "pure-recompute recovery diverged from the clean "
                       "run: " + why};
      }
      if (fault_run->rows_recomputed > pure_run->rows_recomputed ||
          fault_run->recovery_bytes_moved > pure_run->recovery_bytes_moved) {
        return Failure{
            "recovery-cost",
            "spool-assisted recovery recomputed " +
                std::to_string(fault_run->rows_recomputed) + " rows / " +
                std::to_string(fault_run->recovery_bytes_moved) +
                " bytes, pure recomputation needed " +
                std::to_string(pure_run->rows_recomputed) + " rows / " +
                std::to_string(pure_run->recovery_bytes_moved) + " bytes"};
      }
    }
  }
  return std::nullopt;
}

std::string DiffHarness::Minimize(const Catalog& catalog,
                                  const std::string& script,
                                  const std::string& oracle) const {
  auto fails_same = [&](const std::string& candidate) {
    auto failure = RunOracles(catalog, candidate);
    return failure.has_value() && failure->oracle == oracle;
  };
  if (!fails_same(script)) return script;  // not reproducible; keep as-is

  std::vector<std::string> stmts = SplitStatements(script);
  bool improved = true;
  while (improved) {
    improved = false;
    // Pass 1: drop whole statements, last first (OUTPUTs sit at the end of
    // the generated scripts, so sinks shrink before producers).
    for (size_t i = stmts.size(); i-- > 0;) {
      if (stmts.size() <= 1) break;
      std::vector<std::string> candidate;
      for (size_t k = 0; k < stmts.size(); ++k) {
        if (k != i) candidate.push_back(stmts[k]);
      }
      if (fails_same(JoinStatements(candidate))) {
        stmts = std::move(candidate);
        improved = true;
      }
    }
    // Pass 2: shrink clauses (WHERE, ORDER BY, GROUP BY keys) per statement.
    for (size_t i = 0; i < stmts.size(); ++i) {
      bool shrunk = true;
      while (shrunk) {
        shrunk = false;
        for (const std::string& candidate : ShrinkStatement(stmts[i])) {
          std::vector<std::string> trial = stmts;
          trial[i] = candidate;
          if (fails_same(JoinStatements(trial))) {
            stmts[i] = candidate;
            improved = shrunk = true;
            break;
          }
        }
      }
    }
  }
  return JoinStatements(stmts);
}

OracleReport DiffHarness::Check(const Catalog& catalog,
                                const std::string& script,
                                uint64_t seed) const {
  OracleReport report;
  report.seed = seed;
  report.script = script;
  auto failure = RunOracles(catalog, script);
  if (!failure.has_value()) return report;

  report.ok = false;
  report.oracle = failure->oracle;
  report.detail = failure->detail;
  if (opts_.minimize) {
    report.minimized_script = Minimize(catalog, script, failure->oracle);
  }
  if (!opts_.corpus_dir.empty()) {
    const std::string& repro = report.minimized_script.empty()
                                   ? script
                                   : report.minimized_script;
    CorpusCase c;
    c.seed = seed;
    c.oracle = failure->oracle;
    c.machines = opts_.machines;
    c.threads = opts_.threads;
    c.fault_plan = opts_.fault_plan;
    c.catalog = PruneCatalog(catalog, repro);
    c.script = repro;
    std::error_code ec;
    std::filesystem::create_directories(opts_.corpus_dir, ec);
    std::string path = opts_.corpus_dir + "/seed" + std::to_string(seed) +
                       "_" + failure->oracle + ".scx";
    std::ofstream out(path);
    if (out) {
      out << CorpusCaseToText(c);
      report.corpus_path = path;
    }
  }
  return report;
}

namespace {

/// Total data movement of one run: store reads + network + spool writes.
/// This is the quantity batching can only shrink — a merged sub-DAG trades
/// (K-1) repeated extractions/shuffles for one spool write of its result.
int64_t BytesMoved(const ExecMetrics& m) {
  return m.bytes_extracted + m.bytes_shuffled + m.bytes_spooled;
}

/// Per-path row-sorted copy of one script's demultiplexed outputs. The
/// merged plan may legally reorder rows within an (unordered) sink — the
/// sharing decisions change exchange shapes — so the sequential-equivalence
/// comparison is canonical, like oracle 1; raw order is still pinned by the
/// knob and resubmission probes, which compare merged runs to merged runs.
std::map<std::string, std::vector<Row>> CanonicalScriptOutputs(
    const std::map<std::string, std::vector<Row>>& outputs) {
  std::map<std::string, std::vector<Row>> out;
  for (const auto& [path, rows] : outputs) {
    std::vector<Row> sorted = rows;
    std::sort(sorted.begin(), sorted.end());
    out.emplace(path, std::move(sorted));
  }
  return out;
}

}  // namespace

OracleReport DiffHarness::CheckBatch(const Catalog& catalog,
                                     const std::vector<std::string>& scripts,
                                     uint64_t seed) const {
  OracleReport report;
  report.seed = seed;
  for (size_t i = 0; i < scripts.size(); ++i) {
    report.script +=
        "---- script " + std::to_string(i) + " ----\n" + scripts[i];
  }
  auto fail = [&](const std::string& oracle, const std::string& detail) {
    report.ok = false;
    report.oracle = oracle;
    report.detail = detail;
    return report;
  };

  OptimizerConfig cfg;
  cfg.cluster.machines = opts_.machines;
  cfg.cluster.exec_threads = 1;
  cfg.num_threads = 1;
  cfg.budget_seconds = 1e9;  // see RunOracles

  // Sequential arm: each script compiled, optimized (kCse), and executed
  // alone. Engine::Execute never touches the cross-query cache, so this is
  // exactly the single-script behaviour batching must reproduce.
  Engine seq_engine(catalog, cfg);
  std::vector<std::map<std::string, std::vector<Row>>> seq_outputs;
  int64_t seq_bytes = 0;
  for (size_t i = 0; i < scripts.size(); ++i) {
    std::string tag = "script " + std::to_string(i) + ": ";
    auto compiled = seq_engine.Compile(scripts[i]);
    if (!compiled.ok()) {
      return fail("batch-compile", tag + compiled.status().ToString());
    }
    auto cse = seq_engine.Optimize(*compiled, OptimizerMode::kCse);
    if (!cse.ok()) {
      return fail("batch-optimize", tag + cse.status().ToString());
    }
    auto run = seq_engine.Execute(*cse);
    if (!run.ok()) {
      return fail("batch-execute", tag + run.status().ToString());
    }
    seq_bytes += BytesMoved(*run);
    seq_outputs.push_back(CanonicalScriptOutputs(run->outputs));
  }

  // Batched arm: one merged submission on a fresh engine (cold cache).
  Engine batch_engine(catalog, cfg);
  auto batch = batch_engine.SubmitBatch(scripts, OptimizerMode::kCse);
  if (!batch.ok()) {
    return fail("batch-execute", "merged: " + batch.status().ToString());
  }
  if (batch->script_outputs.size() != scripts.size()) {
    return fail("batch-vs-sequential",
                "merged run demultiplexed " +
                    std::to_string(batch->script_outputs.size()) +
                    " scripts, submitted " + std::to_string(scripts.size()));
  }
  for (size_t i = 0; i < scripts.size(); ++i) {
    if (CanonicalScriptOutputs(batch->script_outputs[i]) != seq_outputs[i]) {
      return fail("batch-vs-sequential",
                  "script " + std::to_string(i) +
                      ": batched outputs differ from running it alone");
    }
  }
  int64_t batch_bytes = BytesMoved(batch->metrics);
  if (batch_bytes > seq_bytes) {
    return fail("batch-vs-sequential",
                "batched run moved " + std::to_string(batch_bytes) +
                    " bytes, sequential runs moved " +
                    std::to_string(seq_bytes));
  }

  // Determinism probe: the merged run is bit-identical (outputs and every
  // knob-invariant counter) under thread count and batch/morsel changes.
  {
    OptimizerConfig kcfg = cfg;
    kcfg.cluster.exec_threads = opts_.threads;
    kcfg.cluster.batch_size = 61;
    kcfg.cluster.morsel_size = 53;
    Engine knob_engine(catalog, kcfg);
    auto knob = knob_engine.SubmitBatch(scripts, OptimizerMode::kCse);
    if (!knob.ok()) {
      return fail("batch-execute",
                  "merged knob run: " + knob.status().ToString());
    }
    std::string why;
    if (!MetricsEqual(batch->metrics, knob->metrics,
                      /*same_batch_size=*/false, /*same_morsel_size=*/false,
                      /*same_fault_plan=*/false, &why)) {
      return fail("batch-determinism",
                  "merged run diverged at threads=" +
                      std::to_string(opts_.threads) +
                      " batch_size=61 morsel_size=53: " + why);
    }
    if (knob->script_outputs != batch->script_outputs) {
      return fail("batch-determinism",
                  "per-script outputs diverged under knob changes");
    }
  }

  // Resubmission probe: the same batch through the now-warm cross-query
  // spool cache reproduces identical outputs, and actually hits the cache
  // whenever the merged plan spools anything.
  {
    auto again = batch_engine.SubmitBatch(scripts, OptimizerMode::kCse);
    if (!again.ok()) {
      return fail("batch-execute",
                  "resubmission: " + again.status().ToString());
    }
    if (again->script_outputs != batch->script_outputs) {
      return fail("batch-vs-sequential",
                  "resubmission through the warm cross-query cache changed "
                  "per-script outputs");
    }
    if (batch->metrics.spool_executions > 0 &&
        again->metrics.cross_query_spool_hits == 0) {
      return fail("batch-vs-sequential",
                  "resubmission missed the cross-query spool cache (" +
                      std::to_string(batch->metrics.spool_executions) +
                      " spools executed in the cold run)");
    }
  }

  // Fault probe (oracle 8 over merged runs): a machine failure in the
  // middle of a cross-query batched run — where a lost partition may be
  // recoverable from the run-local spools of the merged plan or from the
  // cross-query cache — must still demultiplex per-script outputs
  // bit-identical to the clean merged run, with identical legacy counters.
  if (opts_.fault_plan.Enabled()) {
    OptimizerConfig fcfg = cfg;
    fcfg.cluster.fault_plan = opts_.fault_plan;
    Engine fault_engine(catalog, fcfg);
    auto faulted = fault_engine.SubmitBatch(scripts, OptimizerMode::kCse);
    if (!faulted.ok()) {
      return fail("batch-execute",
                  "merged faulted run: " + faulted.status().ToString());
    }
    std::string why;
    if (!MetricsEqual(batch->metrics, faulted->metrics,
                      /*same_batch_size=*/true, /*same_morsel_size=*/true,
                      /*same_fault_plan=*/false, &why)) {
      return fail("fault-identity",
                  "merged faulted run diverged from the clean merged run: " +
                      why);
    }
    if (faulted->script_outputs != batch->script_outputs) {
      return fail("fault-identity",
                  "merged faulted run changed per-script outputs");
    }
  }
  return report;
}

namespace {

/// %g keeps probabilities/factors round-trip stable without trailing zeros
/// (the harness only ever arms short decimal literals).
std::string FormatG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string CorpusCaseToText(const CorpusCase& c) {
  std::string out = "# scxcheck repro\n";
  out += "# seed: " + std::to_string(c.seed) + "\n";
  if (!c.oracle.empty()) out += "# oracle: " + c.oracle + "\n";
  out += "# machines: " + std::to_string(c.machines) +
         " threads: " + std::to_string(c.threads) + "\n";
  if (c.fault_plan.Enabled()) {
    const FaultPlan& f = c.fault_plan;
    out += "# fault: seed=" + std::to_string(f.seed) +
           " prob=" + FormatG(f.failure_prob) +
           " max=" + std::to_string(f.max_failures) + " straggler=" +
           FormatG(f.straggler_prob) + "x" + FormatG(f.straggler_factor);
    if (f.disable_recovery_spool_reads) out += " norecovery";
    if (!f.failures.empty()) {
      out += " events=";
      for (size_t i = 0; i < f.failures.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(f.failures[i].pass) + "@" +
               std::to_string(f.failures[i].machine);
      }
    }
    out += "\n";
  }
  out += CatalogToText(c.catalog);
  out += "---\n";
  out += c.script;
  if (!c.script.empty() && c.script.back() != '\n') out += "\n";
  return out;
}

Result<CorpusCase> ParseCorpusText(const std::string& text) {
  CorpusCase c;
  std::string catalog_text;
  std::istringstream lines(text);
  std::string line;
  bool in_script = false;
  while (std::getline(lines, line)) {
    if (in_script) {
      c.script += line + "\n";
      continue;
    }
    if (line == "---") {
      in_script = true;
      continue;
    }
    if (line.rfind("# seed:", 0) == 0) {
      c.seed = std::stoull(line.substr(7));
    } else if (line.rfind("# oracle:", 0) == 0) {
      size_t b = line.find_first_not_of(' ', 9);
      if (b != std::string::npos) c.oracle = line.substr(b);
    } else if (line.rfind("# machines:", 0) == 0) {
      std::istringstream words(line.substr(1));
      std::string word;
      while (words >> word) {
        if (word == "machines:") words >> c.machines;
        if (word == "threads:") words >> c.threads;
      }
    } else if (line.rfind("# fault:", 0) == 0) {
      std::istringstream words(line.substr(8));
      std::string word;
      FaultPlan& f = c.fault_plan;
      while (words >> word) {
        if (word.rfind("seed=", 0) == 0) {
          f.seed = std::stoull(word.substr(5));
        } else if (word.rfind("prob=", 0) == 0) {
          f.failure_prob = std::stod(word.substr(5));
        } else if (word.rfind("max=", 0) == 0) {
          f.max_failures = std::stoi(word.substr(4));
        } else if (word.rfind("straggler=", 0) == 0) {
          std::string spec = word.substr(10);
          size_t x = spec.find('x');
          if (x == std::string::npos) {
            return Status::ParseError("fault straggler spec '" + spec +
                                      "' needs <prob>x<factor>");
          }
          f.straggler_prob = std::stod(spec.substr(0, x));
          f.straggler_factor = std::stod(spec.substr(x + 1));
        } else if (word == "norecovery") {
          f.disable_recovery_spool_reads = true;
        } else if (word.rfind("events=", 0) == 0) {
          std::string list = word.substr(7);
          size_t pos = 0;
          while (pos < list.size()) {
            size_t comma = list.find(',', pos);
            std::string ev = list.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            size_t at = ev.find('@');
            if (at == std::string::npos) {
              return Status::ParseError("fault event '" + ev +
                                        "' needs <pass>@<machine>");
            }
            FaultEvent e;
            e.pass = std::stoll(ev.substr(0, at));
            e.machine = std::stoi(ev.substr(at + 1));
            f.failures.push_back(e);
            pos = comma == std::string::npos ? list.size() : comma + 1;
          }
        } else {
          return Status::ParseError("unknown fault field '" + word + "'");
        }
      }
    } else if (!line.empty() && line[0] != '#') {
      catalog_text += line + "\n";
    }
  }
  if (!in_script || c.script.empty()) {
    return Status::ParseError("corpus file has no '---' script section");
  }
  SCX_ASSIGN_OR_RETURN(c.catalog, ParseCatalogText(catalog_text));
  return c;
}

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".scx") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<CorpusCase> LoadCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open corpus file " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ParseCorpusText(ss.str());
}

}  // namespace scx
