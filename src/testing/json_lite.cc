#include "testing/json_lite.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace scx {

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::AsNumber() const {
  if (kind != Kind::kNumber) return 0;
  return std::strtod(number_lexeme.c_str(), nullptr);
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SCX_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    JsonValue v;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      SCX_ASSIGN_OR_RETURN(v.string_value, ParseString());
      return v;
    }
    if (ConsumeLiteral("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = true;
      return v;
    }
    if (ConsumeLiteral("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = false;
      return v;
    }
    if (ConsumeLiteral("null")) {
      v.kind = JsonValue::Kind::kNull;
      return v;
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SCX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SCX_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.members.emplace_back(std::move(key), std::move(member));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return v;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      SCX_ASSIGN_OR_RETURN(JsonValue elem, ParseValue());
      v.array.push_back(std::move(elem));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // The emitter only produces \u00xx control bytes.
          if (code > 0xff) return Error("unsupported \\u escape > 0xff");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any_digit = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any_digit = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!any_digit) return Error("expected a value");
    // "inf"/"nan" must never appear in emitted JSON; strtod would accept
    // them, the grammar above does not.
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number_lexeme = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void SerializeInto(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.bool_value ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      *out += v.number_lexeme;
      break;
    case JsonValue::Kind::kString:
      AppendEscaped(v.string_value, out);
      break;
    case JsonValue::Kind::kArray:
      out->push_back('[');
      for (size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out->push_back(',');
        SerializeInto(v.array[i], out);
      }
      out->push_back(']');
      break;
    case JsonValue::Kind::kObject:
      out->push_back('{');
      for (size_t i = 0; i < v.members.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendEscaped(v.members[i].first, out);
        out->push_back(':');
        SerializeInto(v.members[i].second, out);
      }
      out->push_back('}');
      break;
  }
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string SerializeJson(const JsonValue& value) {
  std::string out;
  SerializeInto(value, &out);
  return out;
}

}  // namespace scx
