#include "testing/script_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace scx {

namespace {

/// Deterministic splitmix64: identical streams on every platform, unlike
/// std:: distributions whose mapping is implementation-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi] inclusive.
  int Int(int lo, int hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  int64_t Int64(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }

  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Next() % v.size()];
  }

 private:
  uint64_t state_;
};

/// Integer-result aggregate functions (safe in UNION arms, where both sides
/// must agree positionally on type).
const std::vector<std::string>& IntAggFns() {
  static const std::vector<std::string> fns = {"Sum", "Min", "Max", "Count"};
  return fns;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",";
    out += names[i];
  }
  return out;
}

/// Non-empty random subset of `cols`, preserving order.
std::vector<std::string> RandomSubset(Rng& rng,
                                      const std::vector<std::string>& cols) {
  std::vector<std::string> out;
  for (const std::string& c : cols) {
    if (rng.Chance(0.5)) out.push_back(c);
  }
  if (out.empty()) out.push_back(rng.Pick(cols));
  return out;
}

/// Generator state for one script.
class Generator {
 public:
  Generator(uint64_t seed, const ScriptGenOptions& opts)
      : rng_(seed ^ 0x5cf5cf5cf5cf5cf5ull), opts_(opts) {
    out_.seed = seed;
  }

  GeneratedCase Run() {
    int modules = rng_.Int(opts_.min_modules, opts_.max_modules);
    for (int j = 0; j < modules; ++j) EmitModule(j);
    if (rng_.Chance(opts_.filler_prob)) EmitFiller(modules);
    return std::move(out_);
  }

 private:
  void Line(const std::string& s) { out_.script += s + "\n"; }

  /// Registers a fresh log file and returns its path. NDVs are kept small
  /// so joins and group-bys produce non-trivial row counts at a few
  /// thousand input rows.
  std::string NewFile(const std::string& name_hint) {
    std::string path = name_hint + ".log";
    int64_t rows = rng_.Int64(opts_.min_rows, opts_.max_rows);
    if (opts_.force_empty_inputs || rng_.Chance(opts_.empty_input_prob)) {
      rows = 0;
    }
    std::vector<int64_t> ndvs = {
        rng_.Pick<int64_t>({2, 4, 8, 16}),
        rng_.Pick<int64_t>({10, 25, 50}),
        rng_.Pick<int64_t>({2, 4, 8}),
        rng_.Pick<int64_t>({50, 200, 500}),
    };
    uint64_t data_seed = rng_.Next();
    if (opts_.key_skew_alpha > 0) {
      // Skew the key columns (A and C — the low-NDV join/group keys) so the
      // data piles onto a few hash partitions. Registered directly: the
      // RegisterLog convenience has no skew parameter.
      FileDef def;
      def.path = path;
      def.row_count = rows;
      def.data_seed = data_seed;
      for (size_t i = 0; i < 4; ++i) {
        ColumnStats cs;
        cs.name = std::string(1, static_cast<char>('A' + i));
        cs.distinct_count = ndvs[i];
        if (cs.name == "A" || cs.name == "C") {
          cs.skew_alpha = opts_.key_skew_alpha;
        }
        def.columns.push_back(std::move(cs));
      }
      Status s = out_.catalog.RegisterFile(std::move(def));
      (void)s;  // paths are unique by construction
      return path;
    }
    Status s = out_.catalog.RegisterLog(path, {"A", "B", "C", "D"}, rows,
                                        ndvs, /*data_seed=*/data_seed);
    (void)s;  // paths are unique by construction
    return path;
  }

  void Output(const std::string& result, const std::string& path) {
    Line("OUTPUT " + result + " TO \"" + path + "\";");
    if (opts_.force_duplicate_outputs ||
        rng_.Chance(opts_.duplicate_output_prob)) {
      // Duplicate consumption of one result: either a second sink file or a
      // double-write to the same path (the executor concatenates).
      if (rng_.Chance(0.5)) {
        Line("OUTPUT " + result + " TO \"" + path + ".dup\";");
      } else {
        Line("OUTPUT " + result + " TO \"" + path + "\";");
      }
    }
  }

  /// One module: extract (opt. filtered) -> shared agg or shared multi-key
  /// join -> 2..4 consumers, each ending in OUTPUT.
  void EmitModule(int j) {
    std::string m = "M" + std::to_string(j);
    std::string extract = m + "E";
    std::string file = NewFile("g" + std::to_string(j));
    Line(extract + " = EXTRACT A,B,C,D FROM \"" + file +
         "\" USING LogExtractor;");

    std::string src = extract;
    if (rng_.Chance(opts_.filter_prob)) {
      std::string f = m + "F";
      const char* col = rng_.Chance(0.5) ? "D" : "C";
      Line(f + " = SELECT A,B,C,D FROM " + src + " WHERE " + col + " > " +
           std::to_string(rng_.Int(0, 3)) + ";");
      src = f;
    }

    // The shared subexpression: its name, key columns, and value columns.
    std::string shared = m + "S";
    std::vector<std::string> keys;
    std::vector<std::string> vals;
    if (rng_.Chance(opts_.shared_join_prob)) {
      // Shared multi-key join of two aggregated extracts.
      std::string file2 = NewFile("g" + std::to_string(j) + "b");
      std::string e2 = m + "E2";
      Line(e2 + " = EXTRACT A,B,C,D FROM \"" + file2 +
           "\" USING LogExtractor;");
      keys = RandomSubset(rng_, {"A", "B"});
      if (keys.size() < 2 && rng_.Chance(0.5)) keys = {"A", "B"};
      std::string ks = JoinNames(keys);
      std::string left = m + "L";
      std::string right = m + "R";
      Line(left + " = SELECT " + ks + ",Sum(D) AS S FROM " + src +
           " GROUP BY " + ks + ";");
      Line(right + " = SELECT " + ks + "," + rng_.Pick(IntAggFns()) +
           "(D) AS T FROM " + e2 + " GROUP BY " + ks + ";");
      std::string sel, where;
      for (size_t i = 0; i < keys.size(); ++i) {
        sel += left + "." + keys[i] + ",";
        if (i > 0) where += " AND ";
        where += left + "." + keys[i] + "=" + right + "." + keys[i];
      }
      Line(shared + " = SELECT " + sel + "S,T FROM " + left + "," + right +
           " WHERE " + where + ";");
      vals = {"S", "T"};
    } else {
      // Shared aggregate on 2–3 key columns.
      keys = RandomSubset(rng_, {"A", "B", "C"});
      if (keys.size() < 2) keys.push_back(keys[0] == "A" ? "B" : "A");
      std::string ks = JoinNames(keys);
      Line(shared + " = SELECT " + ks + "," + rng_.Pick(IntAggFns()) +
           "(D) AS S FROM " + src + " GROUP BY " + ks + ";");
      vals = {"S"};
    }

    int consumers = opts_.force_single_consumer
                        ? 1
                        : rng_.Int(opts_.min_consumers, opts_.max_consumers);
    for (int c = 0; c < consumers; ++c) {
      EmitConsumer(j, c, extract, shared, keys, vals);
    }
  }

  /// One consumer of the shared node `shared` (schema: keys ++ vals, all
  /// int64).
  void EmitConsumer(int j, int c, const std::string& extract,
                    const std::string& shared,
                    const std::vector<std::string>& keys,
                    const std::vector<std::string>& vals) {
    std::string base =
        "M" + std::to_string(j) + "C" + std::to_string(c);
    std::string sink =
        "o" + std::to_string(j) + "_" + std::to_string(c) + ".out";
    if (opts_.force_expr_consumers) {
      EmitExprConsumer(base, sink, shared, keys, vals);
      return;
    }
    if (opts_.force_pipeline_consumers) {
      EmitPipelineConsumer(base, sink, shared, keys, vals);
      return;
    }
    double roll = static_cast<double>(rng_.Next() >> 11) * 0x1.0p-53;

    if (roll < opts_.union_consumer_prob) {
      // Two structurally different aggregations of the shared node with
      // positionally identical schemas, concatenated.
      std::vector<std::string> gb = RandomSubset(rng_, keys);
      std::string ks = JoinNames(gb);
      const std::string& val = rng_.Pick(vals);
      Line(base + "A = SELECT " + ks + ",Sum(" + val + ") AS V FROM " +
           shared + " GROUP BY " + ks + ";");
      Line(base + "B = SELECT " + ks + "," +
           (rng_.Chance(0.5) ? "Min" : "Max") + "(" + val + ") AS V FROM " +
           shared + " GROUP BY " + ks + ";");
      Line(base + " = UNION ALL " + base + "A," + base + "B;");
      Output(base, sink);
      return;
    }
    roll -= opts_.union_consumer_prob;

    if (roll < opts_.join_consumer_prob) {
      // Two aggregations of the shared node joined back together on their
      // grouping keys (the S4 shape: non-independent sharing).
      std::vector<std::string> gb = RandomSubset(rng_, keys);
      std::string ks = JoinNames(gb);
      std::string left = base + "A";
      std::string right = base + "B";
      const std::string& val = rng_.Pick(vals);
      Line(left + " = SELECT " + ks + ",Sum(" + val + ") AS P FROM " +
           shared + " GROUP BY " + ks + ";");
      Line(right + " = SELECT " + ks + ",Max(" + val + ") AS Q FROM " +
           shared + " GROUP BY " + ks + ";");
      std::string sel, where;
      for (size_t i = 0; i < gb.size(); ++i) {
        sel += left + "." + gb[i] + ",";
        if (i > 0) where += " AND ";
        where += left + "." + gb[i] + "=" + right + "." + gb[i];
      }
      Line(base + " = SELECT " + sel + "P,Q FROM " + left + "," + right +
           " WHERE " + where + ";");
      Output(base, sink);
      return;
    }
    roll -= opts_.join_consumer_prob;

    if (roll < opts_.broadcast_consumer_prob) {
      // Raw extract joined with a small single-key aggregate of the shared
      // node — the big-small shape the optimizer answers with a broadcast
      // join. Also makes the extract itself a second shared subexpression.
      std::string key = rng_.Pick(keys);
      std::string dim = base + "D";
      const std::string& val = rng_.Pick(vals);
      Line(dim + " = SELECT " + key + ",Max(" + val + ") AS Cap FROM " +
           shared + " GROUP BY " + key + ";");
      std::string join = base + "J";
      Line(join + " = SELECT " + extract + "." + key + ",D,Cap FROM " +
           extract + "," + dim + " WHERE " + extract + "." + key + "=" +
           dim + "." + key + ";");
      Line(base + " = SELECT " + key + ",Sum(D) AS V,Min(Cap) AS W FROM " +
           join + " GROUP BY " + key + ";");
      Output(base, sink);
      return;
    }
    roll -= opts_.broadcast_consumer_prob;

    if (roll < opts_.expr_consumer_prob) {
      EmitExprConsumer(base, sink, shared, keys, vals);
      return;
    }
    roll -= opts_.expr_consumer_prob;

    if (roll < opts_.pipeline_consumer_prob) {
      EmitPipelineConsumer(base, sink, shared, keys, vals);
      return;
    }

    // Plain (optionally two-level) aggregation chain.
    std::vector<std::string> gb = RandomSubset(rng_, keys);
    std::string ks = JoinNames(gb);
    const std::string& val = rng_.Pick(vals);
    std::string fn = rng_.Pick(IntAggFns());
    std::string order;
    if (rng_.Chance(opts_.order_by_prob)) {
      order = " ORDER BY " + JoinNames(RandomSubset(rng_, gb));
    }
    Line(base + " = SELECT " + ks + "," + fn + "(" + val + ") AS V FROM " +
         shared + " GROUP BY " + ks + order + ";");
    if (gb.size() > 1 && rng_.Chance(opts_.second_level_prob)) {
      std::vector<std::string> gb2 = RandomSubset(rng_, gb);
      if (gb2.size() == gb.size()) gb2.pop_back();
      if (gb2.empty()) gb2.push_back(gb[0]);
      std::string deep = base + "X";
      Line(deep + " = SELECT " + JoinNames(gb2) + ",Sum(V) AS W FROM " +
           base + " GROUP BY " + JoinNames(gb2) + ";");
      Output(deep, sink);
    } else {
      Output(base, sink);
    }
  }

  /// Consumer with a Compute stage of deep arithmetic select items that
  /// deliberately repeat a subterm — textually, and operand-swapped for `+`
  /// (which the expression-CSE pass merges via commutative
  /// canonicalization) — then aggregates the computed columns back down.
  /// `/` results are double (0 on a zero divisor by the engine's
  /// definition), so the batch-vs-row oracle also covers the double
  /// kernels and float-addition ordering in aggregates.
  void EmitExprConsumer(const std::string& base, const std::string& sink,
                        const std::string& shared,
                        const std::vector<std::string>& keys,
                        const std::vector<std::string>& vals) {
    std::vector<std::string> cols = keys;
    cols.insert(cols.end(), vals.begin(), vals.end());

    const std::string a = rng_.Pick(cols);
    const std::string b = rng_.Pick(cols);
    bool add = rng_.Chance(0.7);
    std::string t = "(" + a + (add ? "+" : "-") + b + ")";
    // Operand-swapped duplicate of `t`: structurally distinct in the
    // script text, equal after commutative canonicalization ('+' only;
    // for '-' we repeat the exact spelling instead).
    std::string dup = add && rng_.Chance(0.5) ? "(" + b + "+" + a + ")" : t;
    const std::string m = rng_.Pick(cols);
    const std::string gk = rng_.Pick(keys);

    std::string compute = base + "E";
    std::string items = gk + "," + t + "*" + t + " AS X," + t + "*" + m +
                        " AS Y," + m + "*" + m + "+" + dup + " AS Z";
    bool with_div = rng_.Chance(0.4);
    if (with_div) items += "," + m + "/" + dup + " AS Q";
    Line(compute + " = SELECT " + items + " FROM " + shared + ";");
    // Q is double, so it must be folded with an order-independent aggregate
    // (Max): the conventional and cse plans may legitimately feed the final
    // aggregation in different row orders, and a double Sum would diverge
    // in the last bits between the two plans.
    std::string aggs = "Sum(X) AS V,Min(Y) AS W,Max(Z) AS U";
    if (with_div) aggs += ",Max(Q) AS R";
    Line(base + " = SELECT " + gk + "," + aggs + " FROM " + compute +
         " GROUP BY " + gk + ";");
    Output(base, sink);
  }

  /// Consumer that runs the shared node through a deep alternating chain —
  /// filter, compute, filter, compute, ... — before aggregating. The
  /// filters keep a full column list (pure kFilter), the computes repeat a
  /// parenthesized subterm across items (sometimes operand-swapped), so the
  /// batch pipeline sees maximal fusable chains with real cross-stage
  /// duplicates, fed through a shared spool whenever the module has >= 2
  /// consumers.
  void EmitPipelineConsumer(const std::string& base, const std::string& sink,
                            const std::string& shared,
                            const std::vector<std::string>& keys,
                            const std::vector<std::string>& vals) {
    std::vector<std::string> cols = keys;
    cols.insert(cols.end(), vals.begin(), vals.end());
    const std::string gk = rng_.Pick(keys);

    std::string src = shared;
    int stages = rng_.Int(opts_.min_chain_stages, opts_.max_chain_stages);
    for (int s = 0; s < stages; ++s) {
      std::string name = base + "P" + std::to_string(s);
      if (s % 2 == 0) {
        // Filter stage: full column list, one predicate. Thresholds are
        // small so key filters genuinely cut while filters over computed
        // (squared, hence large) columns mostly pass — both selectivities
        // matter for the fused schedules.
        const std::string& c = rng_.Pick(cols);
        Line(name + " = SELECT " + JoinNames(cols) + " FROM " + src +
             " WHERE " + c + " > " + std::to_string(rng_.Int(0, 3)) + ";");
      } else {
        // Compute stage: keep the group key, replace the rest with
        // arithmetic over the current schema that repeats subterm `t`.
        const std::string a = rng_.Pick(cols);
        const std::string b = rng_.Pick(cols);
        const std::string m = rng_.Pick(cols);
        std::string t = "(" + a + "+" + b + ")";
        std::string dup =
            rng_.Chance(0.5) ? "(" + b + "+" + a + ")" : t;
        std::string sx = "X" + std::to_string(s);
        std::string sy = "Y" + std::to_string(s);
        Line(name + " = SELECT " + gk + "," + t + "*" + t + " AS " + sx +
             "," + dup + "-" + m + " AS " + sy + " FROM " + src + ";");
        cols = {gk, sx, sy};
      }
      src = name;
    }
    // All chain columns are int64 (+,-,* only), so Sum stays exact and
    // order-independent across plan shapes.
    const std::string& v = cols.back();
    Line(base + " = SELECT " + gk + ",Sum(" + v + ") AS V,Min(" + v +
         ") AS W FROM " + src + " GROUP BY " + gk + ";");
    Output(base, sink);
  }

  /// Independent unshared pipeline (extract -> filter -> agg -> output):
  /// padding where conventional and cse must coincide.
  void EmitFiller(int j) {
    std::string m = "M" + std::to_string(j);
    std::string file = NewFile("g" + std::to_string(j));
    Line(m + "E = EXTRACT A,B,C,D FROM \"" + file +
         "\" USING LogExtractor;");
    Line(m + "F = SELECT A,B,C,D FROM " + m + "E WHERE A > 0;");
    Line(m + "S = SELECT B,Sum(D) AS S FROM " + m + "F GROUP BY B;");
    Output(m + "S", "o" + std::to_string(j) + "_f.out");
  }

  Rng rng_;
  const ScriptGenOptions& opts_;
  GeneratedCase out_;
};

/// Generator state for one multi-script batch. Library modules are decided
/// once (text + input file) and spliced verbatim into every member script,
/// so the merged memo's fingerprint pass sees structurally identical
/// sub-DAGs across scripts. All arithmetic stays in int64 (+,-,* and
/// Sum/Min/Max/Count), so per-script outputs are bit-exact regardless of
/// the row order the merged plan feeds consumers in.
class BatchGenerator {
 public:
  BatchGenerator(uint64_t seed, const BatchGenOptions& opts)
      : rng_(seed ^ 0xb47cb47cb47cb47cull), opts_(opts) {
    out_.seed = seed;
  }

  GeneratedBatch Run() {
    int k = rng_.Int(opts_.min_scripts, opts_.max_scripts);
    out_.scripts.assign(static_cast<size_t>(k), "");

    int modules =
        rng_.Int(opts_.min_library_modules, opts_.max_library_modules);
    std::vector<bool> has_library(static_cast<size_t>(k), false);
    for (int l = 0; l < modules; ++l) {
      EmitLibraryModule(l, k, &has_library);
    }
    for (int i = 0; i < k; ++i) {
      // Every script must produce at least one output; scripts outside all
      // library member sets always get a private module.
      if (!has_library[i] || rng_.Chance(opts_.private_module_prob)) {
        EmitPrivateModule(i);
      }
    }
    return std::move(out_);
  }

 private:
  void Line(int script, const std::string& s) {
    out_.scripts[static_cast<size_t>(script)] += s + "\n";
  }

  std::string NewFile(const std::string& path, int64_t rows) {
    std::vector<int64_t> ndvs = {
        rng_.Pick<int64_t>({2, 4, 8, 16}),
        rng_.Pick<int64_t>({10, 25, 50}),
        rng_.Pick<int64_t>({2, 4, 8}),
        rng_.Pick<int64_t>({50, 200, 500}),
    };
    Status s = out_.catalog.RegisterLog(path, {"A", "B", "C", "D"}, rows,
                                        ndvs, /*data_seed=*/rng_.Next());
    (void)s;  // paths are unique by construction
    return path;
  }

  /// The member scripts of one library module: a deterministic shuffle of
  /// [0, k), truncated to max(1, ceil(k * overlap)).
  std::vector<int> PickMembers(int k) {
    std::vector<int> order(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) order[i] = i;
    for (int i = k - 1; i > 0; --i) {
      std::swap(order[i], order[rng_.Int(0, i)]);
    }
    int members = static_cast<int>(
        std::ceil(static_cast<double>(k) * opts_.overlap));
    members = std::max(1, std::min(members, k));
    order.resize(static_cast<size_t>(members));
    std::sort(order.begin(), order.end());
    return order;
  }

  /// One library module: module text decided once, emitted verbatim into
  /// every member script, followed by per-script consumers.
  void EmitLibraryModule(int l, int k, std::vector<bool>* has_library) {
    std::string m = "L" + std::to_string(l);
    std::string file =
        NewFile("lib" + std::to_string(l) + ".log", opts_.library_rows);

    std::vector<std::string> keys = RandomSubset(rng_, {"A", "B", "C"});
    if (keys.size() < 2) keys.push_back(keys[0] == "A" ? "B" : "A");
    std::string ks = JoinNames(keys);
    std::string fn = rng_.Pick(IntAggFns());
    bool filtered = rng_.Chance(0.5);
    std::string fcol = rng_.Chance(0.5) ? "D" : "C";
    int fthresh = rng_.Int(0, 3);

    std::vector<std::string> module_text;
    module_text.push_back(m + "E = EXTRACT A,B,C,D FROM \"" + file +
                          "\" USING LogExtractor;");
    std::string src = m + "E";
    if (filtered) {
      module_text.push_back(m + "F = SELECT A,B,C,D FROM " + src +
                            " WHERE " + fcol + " > " +
                            std::to_string(fthresh) + ";");
      src = m + "F";
    }
    std::string shared = m + "S";
    module_text.push_back(shared + " = SELECT " + ks + "," + fn +
                          "(D) AS S FROM " + src + " GROUP BY " + ks + ";");

    for (int i : PickMembers(k)) {
      (*has_library)[static_cast<size_t>(i)] = true;
      for (const std::string& stmt : module_text) Line(i, stmt);
      int consumers = rng_.Int(opts_.min_consumers, opts_.max_consumers);
      for (int c = 0; c < consumers; ++c) {
        EmitConsumer(i, m + "C" + std::to_string(c),
                     "s" + std::to_string(i) + "_l" + std::to_string(l) +
                         "_" + std::to_string(c) + ".out",
                     shared, keys);
      }
    }
  }

  /// One private module for script `i`: same shape as a library module but
  /// over a per-script file, so it can never merge across scripts.
  void EmitPrivateModule(int i) {
    std::string m = "P" + std::to_string(i);
    std::string file = NewFile("p" + std::to_string(i) + ".log",
                               rng_.Int64(opts_.min_rows, opts_.max_rows));
    Line(i, m + "E = EXTRACT A,B,C,D FROM \"" + file +
                "\" USING LogExtractor;");
    std::string src = m + "E";
    if (rng_.Chance(0.5)) {
      Line(i, m + "F = SELECT A,B,C,D FROM " + src + " WHERE D > " +
                  std::to_string(rng_.Int(0, 3)) + ";");
      src = m + "F";
    }
    std::vector<std::string> keys = RandomSubset(rng_, {"A", "B"});
    if (keys.empty()) keys = {"A"};
    std::string ks = JoinNames(keys);
    std::string shared = m + "S";
    Line(i, shared + " = SELECT " + ks + "," + rng_.Pick(IntAggFns()) +
                "(D) AS S FROM " + src + " GROUP BY " + ks + ";");
    int consumers = rng_.Int(opts_.min_consumers, opts_.max_consumers);
    for (int c = 0; c < consumers; ++c) {
      EmitConsumer(i, m + "C" + std::to_string(c),
                   "s" + std::to_string(i) + "_p" + std::to_string(c) +
                       ".out",
                   shared, keys);
    }
  }

  /// One consumer of `shared` (schema: keys ++ {S}, all int64) in script
  /// `i`. Three shapes: plain (optionally two-level) aggregation, repeated-
  /// subterm arithmetic, or two aggregations joined back on their keys.
  void EmitConsumer(int i, const std::string& base, const std::string& sink,
                    const std::string& shared,
                    const std::vector<std::string>& keys) {
    double roll = static_cast<double>(rng_.Next() >> 11) * 0x1.0p-53;
    std::vector<std::string> gb = RandomSubset(rng_, keys);
    std::string ks = JoinNames(gb);

    if (roll < 0.25) {
      // Arithmetic consumer: a compute stage that repeats subterm `t`
      // (sometimes operand-swapped), then integer aggregates.
      std::vector<std::string> cols = keys;
      cols.push_back("S");
      const std::string a = rng_.Pick(cols);
      const std::string b = rng_.Pick(cols);
      const std::string gk = rng_.Pick(keys);
      std::string t = "(" + a + "+" + b + ")";
      std::string dup = rng_.Chance(0.5) ? "(" + b + "+" + a + ")" : t;
      Line(i, base + "E = SELECT " + gk + "," + t + "*" + t + " AS X," +
                  dup + "-S AS Y FROM " + shared + ";");
      Line(i, base + " = SELECT " + gk +
                  ",Sum(X) AS V,Min(Y) AS W FROM " + base + "E GROUP BY " +
                  gk + ";");
    } else if (roll < 0.45) {
      // Join-back consumer (the S4 shape: non-independent sharing).
      Line(i, base + "A = SELECT " + ks + ",Sum(S) AS P FROM " + shared +
                  " GROUP BY " + ks + ";");
      Line(i, base + "B = SELECT " + ks + ",Max(S) AS Q FROM " + shared +
                  " GROUP BY " + ks + ";");
      std::string sel, where;
      for (size_t j = 0; j < gb.size(); ++j) {
        sel += base + "A." + gb[j] + ",";
        if (j > 0) where += " AND ";
        where += base + "A." + gb[j] + "=" + base + "B." + gb[j];
      }
      Line(i, base + " = SELECT " + sel + "P,Q FROM " + base + "A," + base +
                  "B WHERE " + where + ";");
    } else {
      std::string fn = rng_.Pick(IntAggFns());
      Line(i, base + " = SELECT " + ks + "," + fn + "(S) AS V FROM " +
                  shared + " GROUP BY " + ks + ";");
      if (gb.size() > 1 && rng_.Chance(0.35)) {
        std::string deep = base + "X";
        Line(i, deep + " = SELECT " + gb[0] + ",Sum(V) AS W FROM " + base +
                    " GROUP BY " + gb[0] + ";");
        Line(i, "OUTPUT " + deep + " TO \"" + sink + "\";");
        return;
      }
    }
    Line(i, "OUTPUT " + base + " TO \"" + sink + "\";");
  }

  Rng rng_;
  const BatchGenOptions& opts_;
  GeneratedBatch out_;
};

}  // namespace

GeneratedCase GenerateScript(uint64_t seed, const ScriptGenOptions& options) {
  Generator gen(seed, options);
  return gen.Run();
}

GeneratedBatch GenerateScriptBatch(uint64_t seed,
                                   const BatchGenOptions& options) {
  BatchGenerator gen(seed, options);
  return gen.Run();
}

}  // namespace scx
