#ifndef SCX_TESTING_CATALOG_TEXT_H_
#define SCX_TESTING_CATALOG_TEXT_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"

namespace scx {

/// Textual catalog format shared by scx_cli, scx_fuzz, and the fuzz corpus.
/// One file per line, '#' comments:
///
///   file <path> rows=<n> [seed=<n>] <col>:<ndv>[:int64|double|string][:skew=<alpha>] ...
///
/// Example:
///   file test.log rows=2000000 seed=11 A:40 B:400 C:40 D:10000
///
/// `seed=` is the deterministic synthetic-data seed (FileDef::data_seed);
/// it defaults to 0 when omitted, matching FileDef's default.

/// Parses catalog text. Fails on malformed lines or an empty catalog.
Result<Catalog> ParseCatalogText(const std::string& text);

/// Serializes a catalog in the same format (one `file` line per file,
/// `seed=` always written). ParseCatalogText(CatalogToText(c)) reproduces
/// `c` up to file-id assignment order.
std::string CatalogToText(const Catalog& catalog);

}  // namespace scx

#endif  // SCX_TESTING_CATALOG_TEXT_H_
