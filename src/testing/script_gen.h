#ifndef SCX_TESTING_SCRIPT_GEN_H_
#define SCX_TESTING_SCRIPT_GEN_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"

namespace scx {

/// Knobs of the random script generator. Probabilities are per-decision;
/// the `force_*` switches pin a structural edge case for targeted tests
/// (they override the matching probability).
struct ScriptGenOptions {
  /// Independent "modules" per script: one shared subexpression each, plus
  /// its consumers. Distinct modules have distinct input files, so they are
  /// independent shared groups (paper Sec. VIII-A territory).
  int min_modules = 1;
  int max_modules = 3;
  /// Consumers per shared subexpression (2–4 exercises the sharing paths;
  /// 1 means no sharing at all, the conventional == cse degenerate case).
  int min_consumers = 2;
  int max_consumers = 4;
  /// Input sizes. Small enough that executor-backed oracles stay fast.
  int64_t min_rows = 400;
  int64_t max_rows = 3000;

  double filter_prob = 0.5;        ///< WHERE below the shared aggregate
  double order_by_prob = 0.25;     ///< ORDER BY on a consumer (range part.)
  double second_level_prob = 0.35; ///< consumer gets a second aggregation
  double shared_join_prob = 0.3;   ///< shared node is a multi-key join
  double union_consumer_prob = 0.2;
  double join_consumer_prob = 0.2;
  double broadcast_consumer_prob = 0.15;
  /// Consumer computes deep arithmetic select items that deliberately repeat
  /// a subterm (sometimes operand-swapped), so the executor's
  /// expression-CSE pass and the batch-vs-row oracle see real duplicates.
  double expr_consumer_prob = 0.2;
  /// Consumer runs the shared node through a deep alternating
  /// filter -> compute -> filter ... chain before aggregating — the shape
  /// the batch pipeline fuses into one cross-stage expression schedule, and
  /// (with >= 2 consumers) reads through a shared spool.
  double pipeline_consumer_prob = 0.15;
  int min_chain_stages = 3;  ///< stages per pipeline-consumer chain
  int max_chain_stages = 6;
  double filler_prob = 0.3;        ///< append an unshared filler pipeline
  double empty_input_prob = 0.05;  ///< a module's file has rows=0
  double duplicate_output_prob = 0.08;

  /// Edge-case pins.
  bool force_single_consumer = false;   ///< every shared node: 1 consumer
  bool force_empty_inputs = false;      ///< every input file: rows=0
  bool force_duplicate_outputs = false; ///< every consumer output duplicated
  bool force_expr_consumers = false;    ///< every consumer: arithmetic shape
  bool force_pipeline_consumers = false; ///< every consumer: deep chain
};

/// One generated differential-testing case: a SCOPE-dialect script with
/// deliberate structural sharing and the catalog it binds against.
struct GeneratedCase {
  uint64_t seed = 0;
  std::string script;
  Catalog catalog;
};

/// Deterministically generates a valid multi-output DAG script from `seed`.
/// The same (seed, options) pair always produces the same case, on every
/// platform (the generator uses its own splitmix64, not std distributions).
///
/// Structure: 1–3 modules, each module an EXTRACT (optionally filtered)
/// feeding a shared aggregate or a shared multi-key join, consumed by 2–4
/// downstream group-bys / joins / unions / second-level aggregations /
/// duplicated-arithmetic computes, each ending in an OUTPUT. Generated scripts always compile: the generator
/// tracks every intermediate result's schema and only references columns
/// that exist.
GeneratedCase GenerateScript(uint64_t seed, const ScriptGenOptions& options = {});

}  // namespace scx

#endif  // SCX_TESTING_SCRIPT_GEN_H_
