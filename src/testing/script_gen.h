#ifndef SCX_TESTING_SCRIPT_GEN_H_
#define SCX_TESTING_SCRIPT_GEN_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"

namespace scx {

/// Knobs of the random script generator. Probabilities are per-decision;
/// the `force_*` switches pin a structural edge case for targeted tests
/// (they override the matching probability).
struct ScriptGenOptions {
  /// Independent "modules" per script: one shared subexpression each, plus
  /// its consumers. Distinct modules have distinct input files, so they are
  /// independent shared groups (paper Sec. VIII-A territory).
  int min_modules = 1;
  int max_modules = 3;
  /// Consumers per shared subexpression (2–4 exercises the sharing paths;
  /// 1 means no sharing at all, the conventional == cse degenerate case).
  int min_consumers = 2;
  int max_consumers = 4;
  /// Input sizes. Small enough that executor-backed oracles stay fast.
  int64_t min_rows = 400;
  int64_t max_rows = 3000;

  double filter_prob = 0.5;        ///< WHERE below the shared aggregate
  double order_by_prob = 0.25;     ///< ORDER BY on a consumer (range part.)
  double second_level_prob = 0.35; ///< consumer gets a second aggregation
  double shared_join_prob = 0.3;   ///< shared node is a multi-key join
  double union_consumer_prob = 0.2;
  double join_consumer_prob = 0.2;
  double broadcast_consumer_prob = 0.15;
  /// Consumer computes deep arithmetic select items that deliberately repeat
  /// a subterm (sometimes operand-swapped), so the executor's
  /// expression-CSE pass and the batch-vs-row oracle see real duplicates.
  double expr_consumer_prob = 0.2;
  /// Consumer runs the shared node through a deep alternating
  /// filter -> compute -> filter ... chain before aggregating — the shape
  /// the batch pipeline fuses into one cross-stage expression schedule, and
  /// (with >= 2 consumers) reads through a shared spool.
  double pipeline_consumer_prob = 0.15;
  int min_chain_stages = 3;  ///< stages per pipeline-consumer chain
  int max_chain_stages = 6;
  double filler_prob = 0.3;        ///< append an unshared filler pipeline
  double empty_input_prob = 0.05;  ///< a module's file has rows=0
  double duplicate_output_prob = 0.08;
  /// Power-law skew applied to the key columns (A and C) of every generated
  /// input file: ColumnStats::skew_alpha, so low-numbered keys are hot and
  /// hash partitions pile up on a few machines. 0 = uniform (the legacy
  /// draw, bit-identical to before the knob existed). The histogram is a
  /// pure function of (file seed, alpha) — seed-deterministic by
  /// construction. The hostile fuzz profile sets this.
  double key_skew_alpha = 0;

  /// Edge-case pins.
  bool force_single_consumer = false;   ///< every shared node: 1 consumer
  bool force_empty_inputs = false;      ///< every input file: rows=0
  bool force_duplicate_outputs = false; ///< every consumer output duplicated
  bool force_expr_consumers = false;    ///< every consumer: arithmetic shape
  bool force_pipeline_consumers = false; ///< every consumer: deep chain
};

/// One generated differential-testing case: a SCOPE-dialect script with
/// deliberate structural sharing and the catalog it binds against.
struct GeneratedCase {
  uint64_t seed = 0;
  std::string script;
  Catalog catalog;
};

/// Knobs of the multi-script batch generator (the cross-query CSE profile).
/// A batch is K scripts over ONE shared catalog: some "library" modules —
/// identical statement text in every member script, over a shared input
/// file — plus per-script private modules. Batched submission merges the
/// library sub-DAGs across scripts (docs/architecture.md §16).
struct BatchGenOptions {
  int min_scripts = 2;
  int max_scripts = 5;
  /// Fraction of the batch's scripts that include each library module
  /// (members = max(1, ceil(K * overlap)); 0.0 pins each module to a single
  /// script — no cross-script sharing, the sequential-equivalence baseline).
  double overlap = 0.5;
  /// Consumers of each library module WITHIN each member script. Keep >= 2:
  /// then single-script kCse already spools the module, and batching can
  /// only remove work (fewer spool executions and extracts), which is what
  /// the batch-vs-sequential byte oracle asserts. With 1 in-script consumer
  /// the merged batch may introduce a spool the per-script plans lack, and
  /// "batched moves no more bytes" stops being a theorem.
  int min_consumers = 2;
  int max_consumers = 3;
  int min_library_modules = 1;
  int max_library_modules = 2;
  /// Library files are bigger than private ones so the shared work is worth
  /// sharing (the cost model must *choose* the spool, not be forced).
  int64_t library_rows = 8000;
  int64_t min_rows = 400;
  int64_t max_rows = 2000;
  /// Chance that a script gets a private (unshared) module in addition to
  /// its library memberships. Scripts with no membership always get one
  /// (every script must produce at least one output).
  double private_module_prob = 0.6;
};

/// One generated batch case: K scripts plus the one catalog they all bind
/// against.
struct GeneratedBatch {
  uint64_t seed = 0;
  Catalog catalog;
  std::vector<std::string> scripts;
};

/// Deterministically generates a valid multi-output DAG script from `seed`.
/// The same (seed, options) pair always produces the same case, on every
/// platform (the generator uses its own splitmix64, not std distributions).
///
/// Structure: 1–3 modules, each module an EXTRACT (optionally filtered)
/// feeding a shared aggregate or a shared multi-key join, consumed by 2–4
/// downstream group-bys / joins / unions / second-level aggregations /
/// duplicated-arithmetic computes, each ending in an OUTPUT. Generated scripts always compile: the generator
/// tracks every intermediate result's schema and only references columns
/// that exist.
GeneratedCase GenerateScript(uint64_t seed, const ScriptGenOptions& options = {});

/// Deterministically generates a batch of scripts sharing identical library
/// modules, for the batch-vs-sequential oracle and the multi-query bench.
/// All value types stay int64 (Sum/Min/Max/Count over +,-,* arithmetic), so
/// per-script outputs are bit-exact across any plan shape the merged
/// optimization picks.
GeneratedBatch GenerateScriptBatch(uint64_t seed,
                                   const BatchGenOptions& options = {});

}  // namespace scx

#endif  // SCX_TESTING_SCRIPT_GEN_H_
