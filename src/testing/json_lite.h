#ifndef SCX_TESTING_JSON_LITE_H_
#define SCX_TESTING_JSON_LITE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace scx {

/// Minimal JSON document model for the plan-JSON round-trip oracle. Object
/// member order is preserved and number lexemes are kept verbatim, so a
/// parse → serialize round-trip of any output of PlanToJson /
/// DiagnosticsToJson must reproduce the input byte for byte — any
/// divergence means the emitter produced malformed or ambiguous JSON.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Numbers are stored as their source lexeme (never reformatted).
  std::string number_lexeme;
  std::string string_value;  ///< decoded
  std::vector<JsonValue> array;
  /// Insertion-ordered object members.
  std::vector<std::pair<std::string, JsonValue>> members;

  /// Member lookup (first match); nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Convenience: numeric value of a kNumber node (0 otherwise).
  double AsNumber() const;
};

/// Parses strict JSON (as emitted by this repo: no comments, no trailing
/// commas). Fails with ParseError on malformed input or trailing garbage.
Result<JsonValue> ParseJson(const std::string& text);

/// Serializes with the exact conventions of plan_json.cc: no whitespace,
/// string escaping of `"` `\` `\n` `\t` and control bytes as \u00xx,
/// numbers re-emitted verbatim from their lexeme.
std::string SerializeJson(const JsonValue& value);

}  // namespace scx

#endif  // SCX_TESTING_JSON_LITE_H_
