#include "common/value.h"

#include <cstdio>
#include <cstdlib>

namespace scx {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  std::fprintf(stderr, "scx: fatal: AsNumeric on string value\n");
  std::abort();
}

uint64_t Value::Hash() const {
  switch (data_.index()) {
    case 0:
      return Mix64(static_cast<uint64_t>(as_int()));
    case 1: {
      double d = as_double();
      // Normalize -0.0 so that equal doubles hash equally.
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x5555555555555555ULL);
    }
    default:
      return Fnv1a64(as_string());
  }
}

int64_t Value::ByteWidth() const {
  switch (data_.index()) {
    case 0:
    case 1:
      return 8;
    default:
      return static_cast<int64_t>(as_string().size()) + 4;
  }
}

std::string Value::ToString() const {
  switch (data_.index()) {
    case 0:
      return std::to_string(as_int());
    case 1: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    default:
      return as_string();
  }
}

std::strong_ordering operator<=>(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) {
    return a.data_.index() <=> b.data_.index();
  }
  switch (a.data_.index()) {
    case 0:
      return a.as_int() <=> b.as_int();
    case 1: {
      double x = a.as_double(), y = b.as_double();
      if (x < y) return std::strong_ordering::less;
      if (x > y) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    default:
      return a.as_string().compare(b.as_string()) <=> 0;
  }
}

uint64_t HashRowKey(const Row& row, const std::vector<int>& positions) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int p : positions) {
    h = HashCombine(h, row[static_cast<size_t>(p)].Hash());
  }
  return h;
}

}  // namespace scx
