#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace scx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kOptimizeError:
      return "OptimizeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void AbortWithStatus(const std::string& what) {
  std::fprintf(stderr, "scx: fatal: %s\n", what.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace scx
