#ifndef SCX_COMMON_HASH_H_
#define SCX_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace scx {

/// 64-bit FNV-1a over an arbitrary byte string.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Strong 64-bit integer mixer (splitmix64 finalizer). Used for hashing row
/// keys into partitions and for fingerprint payload hashing.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace scx

#endif  // SCX_COMMON_HASH_H_
