#include "common/schema.h"

#include <cstdio>
#include <cstdlib>

namespace scx {

int Schema::PositionOf(ColumnId id) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Schema::PositionsOf(const ColumnSet& ids) const {
  return PositionsOf(ids.ToVector());
}

std::vector<int> Schema::PositionsOf(const std::vector<ColumnId>& ids) const {
  std::vector<int> out;
  out.reserve(ids.size());
  for (ColumnId id : ids) {
    int pos = PositionOf(id);
    if (pos < 0) {
      std::fprintf(stderr, "scx: fatal: column #%u not in schema %s\n", id,
                   ToString().c_str());
      std::abort();
    }
    out.push_back(pos);
  }
  return out;
}

Result<ColumnInfo> Schema::Resolve(const std::string& qualifier,
                                   const std::string& name) const {
  const ColumnInfo* found = nullptr;
  for (const ColumnInfo& c : columns_) {
    if (c.name != name) continue;
    if (!qualifier.empty() && c.qualifier != qualifier) continue;
    if (found != nullptr) {
      return Status::BindError("ambiguous column reference: " +
                               (qualifier.empty() ? name
                                                  : qualifier + "." + name));
    }
    found = &c;
  }
  if (found == nullptr) {
    return Status::BindError("unknown column: " +
                             (qualifier.empty() ? name
                                                : qualifier + "." + name));
  }
  return *found;
}

ColumnSet Schema::IdSet() const {
  ColumnSet s;
  for (const ColumnInfo& c : columns_) s.Insert(c.id);
  return s;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!columns_[i].qualifier.empty()) {
      out += columns_[i].qualifier;
      out += ".";
    }
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

std::string Schema::NameOf(ColumnId id) const {
  int pos = PositionOf(id);
  if (pos < 0) return "#" + std::to_string(id);
  return columns_[static_cast<size_t>(pos)].name;
}

}  // namespace scx
