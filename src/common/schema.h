#ifndef SCX_COMMON_SCHEMA_H_
#define SCX_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "common/value.h"

namespace scx {

/// One output column of an operator: a plan-wide id plus naming metadata.
struct ColumnInfo {
  ColumnId id = 0;
  std::string name;       ///< unqualified name, e.g. "B"
  std::string qualifier;  ///< producing relation name, e.g. "R1" (may be "")
  DataType type = DataType::kInt64;
};

/// Positional list of output columns of an operator. Rows produced by the
/// executor are positionally aligned with the operator's schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnInfo> columns)
      : columns_(std::move(columns)) {}

  int NumColumns() const { return static_cast<int>(columns_.size()); }
  const ColumnInfo& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<ColumnInfo>& columns() const { return columns_; }

  void AddColumn(ColumnInfo info) { columns_.push_back(std::move(info)); }

  /// Position of the column with plan-wide id `id`, or -1.
  int PositionOf(ColumnId id) const;

  /// Positions of `ids` (ascending id order). Dies if an id is missing.
  std::vector<int> PositionsOf(const ColumnSet& ids) const;
  std::vector<int> PositionsOf(const std::vector<ColumnId>& ids) const;

  /// Resolves `name` (optionally qualified). Returns the unique match or an
  /// error when missing/ambiguous.
  Result<ColumnInfo> Resolve(const std::string& qualifier,
                             const std::string& name) const;

  /// Set of all column ids in this schema.
  ColumnSet IdSet() const;

  /// "R.A:INT64, R.B:INT64" style rendering.
  std::string ToString() const;

  /// Human name for a column id in this schema ("B" or raw "#id" if absent).
  std::string NameOf(ColumnId id) const;

 private:
  std::vector<ColumnInfo> columns_;
};

}  // namespace scx

#endif  // SCX_COMMON_SCHEMA_H_
