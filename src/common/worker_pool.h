#ifndef SCX_COMMON_WORKER_POOL_H_
#define SCX_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scx {

/// Default parallelism for the optimizer's phase-2 rounds and the
/// executor's partition evaluation: the SCX_NUM_THREADS environment
/// variable when set to a positive integer, otherwise the hardware
/// concurrency.
int DefaultNumThreads();

/// A fixed-size pool of `threads - 1` workers plus the calling thread.
/// Run(n, fn) evaluates fn(0), ..., fn(n-1) across all participants and
/// returns once every job finished. Jobs of one batch must be mutually
/// independent; the caller is responsible for making their writes disjoint.
///
/// Run is not reentrant — a job must never call Run on the same pool (the
/// optimizer guarantees this by keeping nested-LCA rounds serial, the
/// executor by structuring each operator as a sequence of flat job lists —
/// per-partition passes and (partition, morsel) passes — with all fan-out
/// decided before the Run call, never from inside a job).
class WorkerPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// threads <= 1 creates no workers and Run degenerates to a serial loop.
  explicit WorkerPool(int threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(0..n-1); the calling thread participates. Returns when all
  /// jobs finished.
  void Run(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  const int threads_;
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t job_count_ = 0;
  size_t next_job_ = 0;
  size_t jobs_done_ = 0;
  bool stop_ = false;
};

}  // namespace scx

#endif  // SCX_COMMON_WORKER_POOL_H_
