#include "common/column_set.h"

#include <algorithm>

#include "common/hash.h"

namespace scx {

namespace {
constexpr int kWordBits = 64;
}  // namespace

ColumnSet ColumnSet::Of(std::initializer_list<ColumnId> ids) {
  ColumnSet s;
  for (ColumnId id : ids) s.Insert(id);
  return s;
}

ColumnSet ColumnSet::FromVector(const std::vector<ColumnId>& ids) {
  ColumnSet s;
  for (ColumnId id : ids) s.Insert(id);
  return s;
}

void ColumnSet::Insert(ColumnId id) {
  size_t word = id / kWordBits;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  words_[word] |= (uint64_t{1} << (id % kWordBits));
}

void ColumnSet::Remove(ColumnId id) {
  size_t word = id / kWordBits;
  if (word < words_.size()) {
    words_[word] &= ~(uint64_t{1} << (id % kWordBits));
    Normalize();
  }
}

bool ColumnSet::Contains(ColumnId id) const {
  size_t word = id / kWordBits;
  if (word >= words_.size()) return false;
  return (words_[word] >> (id % kWordBits)) & 1;
}

bool ColumnSet::Empty() const { return words_.empty(); }

int ColumnSet::Size() const {
  int n = 0;
  for (uint64_t w : words_) n += __builtin_popcountll(w);
  return n;
}

bool ColumnSet::IsSubsetOf(const ColumnSet& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t mine = words_[i];
    uint64_t theirs = i < other.words_.size() ? other.words_[i] : 0;
    if ((mine & ~theirs) != 0) return false;
  }
  return true;
}

bool ColumnSet::Intersects(const ColumnSet& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

ColumnSet ColumnSet::Union(const ColumnSet& other) const {
  ColumnSet out;
  out.words_.resize(std::max(words_.size(), other.words_.size()), 0);
  for (size_t i = 0; i < out.words_.size(); ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    out.words_[i] = a | b;
  }
  out.Normalize();
  return out;
}

ColumnSet ColumnSet::Intersect(const ColumnSet& other) const {
  ColumnSet out;
  out.words_.resize(std::min(words_.size(), other.words_.size()), 0);
  for (size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  out.Normalize();
  return out;
}

ColumnSet ColumnSet::Difference(const ColumnSet& other) const {
  ColumnSet out = *this;
  for (size_t i = 0; i < out.words_.size() && i < other.words_.size(); ++i) {
    out.words_[i] &= ~other.words_[i];
  }
  out.Normalize();
  return out;
}

std::vector<ColumnId> ColumnSet::ToVector() const {
  std::vector<ColumnId> out;
  out.reserve(static_cast<size_t>(Size()));
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    while (w != 0) {
      int bit = __builtin_ctzll(w);
      out.push_back(static_cast<ColumnId>(i * kWordBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

std::vector<ColumnSet> ColumnSet::NonEmptySubsets() const {
  std::vector<ColumnId> ids = ToVector();
  std::vector<ColumnSet> out;
  const size_t n = ids.size();
  if (n == 0 || n > 20) return out;  // caller caps size; hard safety net
  out.reserve((size_t{1} << n) - 1);
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    ColumnSet s;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) s.Insert(ids[i]);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const ColumnSet& a, const ColumnSet& b) {
    if (a.Size() != b.Size()) return a.Size() < b.Size();
    return a.ToVector() < b.ToVector();
  });
  return out;
}

uint64_t ColumnSet::Hash() const {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (uint64_t w : words_) h = HashCombine(h, w);
  return h;
}

std::string ColumnSet::ToString(
    const std::function<std::string(ColumnId)>& namer) const {
  std::string out = "{";
  bool first = true;
  for (ColumnId id : ToVector()) {
    if (!first) out += ",";
    first = false;
    out += namer(id);
  }
  out += "}";
  return out;
}

std::string ColumnSet::ToString() const {
  return ToString([](ColumnId id) { return "#" + std::to_string(id); });
}

bool operator==(const ColumnSet& a, const ColumnSet& b) {
  return a.words_ == b.words_;
}

void ColumnSet::Normalize() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

}  // namespace scx
