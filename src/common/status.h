#ifndef SCX_COMMON_STATUS_H_
#define SCX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace scx {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kOptimizeError,
  kExecutionError,
  kInternal,
  kResourceExhausted,
  kFailedPrecondition,
};

/// Returns a short human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. The library never throws across its
/// public API; fallible operations return `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status OptimizeError(std::string msg) {
    return Status(StatusCode::kOptimizeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error union. `ValueOrDie()` aborts on error (used in tests and
/// examples after the error path has been checked).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : data_(std::move(value)) {}
  /*implicit*/ Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() { return std::get<T>(data_); }
  const T& value() const { return std::get<T>(data_); }

  T ValueOrDie() && {
    if (!ok()) {
      Abort(std::get<Status>(data_));
    }
    return std::move(std::get<T>(data_));
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  [[noreturn]] static void Abort(const Status& status);

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void AbortWithStatus(const std::string& what);
}  // namespace internal

template <typename T>
void Result<T>::Abort(const Status& status) {
  internal::AbortWithStatus(status.ToString());
}

}  // namespace scx

/// Propagates a non-OK Status from the current function.
#define SCX_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::scx::Status _scx_st = (expr);           \
    if (!_scx_st.ok()) return _scx_st;        \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define SCX_ASSIGN_OR_RETURN(lhs, rexpr)          \
  SCX_ASSIGN_OR_RETURN_IMPL(                      \
      SCX_STATUS_CONCAT(_scx_result, __LINE__), lhs, rexpr)

#define SCX_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result.value());

#define SCX_STATUS_CONCAT_IMPL(x, y) x##y
#define SCX_STATUS_CONCAT(x, y) SCX_STATUS_CONCAT_IMPL(x, y)

#endif  // SCX_COMMON_STATUS_H_
