#include "common/worker_pool.h"

#include <cstdlib>

namespace scx {

int DefaultNumThreads() {
  if (const char* env = std::getenv("SCX_NUM_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

WorkerPool::WorkerPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  int extra = threads_ - 1;  // the calling thread is a worker too
  pool_.reserve(static_cast<size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    pool_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void WorkerPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (pool_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_fn_ = &fn;
    job_count_ = n;
    next_job_ = 0;
    jobs_done_ = 0;
  }
  cv_work_.notify_all();
  // The calling thread pulls jobs alongside the pool.
  for (;;) {
    size_t i;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (next_job_ >= job_count_) break;
      i = next_job_++;
    }
    fn(i);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++jobs_done_;
      if (jobs_done_ == job_count_) cv_done_.notify_all();
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return jobs_done_ == job_count_; });
  job_fn_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stop_ || (job_fn_ != nullptr && next_job_ < job_count_);
    });
    if (stop_) return;
    while (job_fn_ != nullptr && next_job_ < job_count_) {
      size_t i = next_job_++;
      const std::function<void(size_t)>* fn = job_fn_;
      lk.unlock();
      (*fn)(i);
      lk.lock();
      ++jobs_done_;
      if (jobs_done_ == job_count_) cv_done_.notify_all();
    }
  }
}

}  // namespace scx
