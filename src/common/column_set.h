#ifndef SCX_COMMON_COLUMN_SET_H_
#define SCX_COMMON_COLUMN_SET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace scx {

/// Plan-wide unique column identifier, assigned densely by the binder.
using ColumnId = uint32_t;

/// A set of plan-wide column ids, backed by a dynamic bitset. Column ids are
/// dense and small (one per distinct column produced anywhere in a script),
/// so word-packed bits are compact and set algebra is O(words).
class ColumnSet {
 public:
  ColumnSet() = default;

  /// Builds a set from an explicit id list.
  static ColumnSet Of(std::initializer_list<ColumnId> ids);
  static ColumnSet FromVector(const std::vector<ColumnId>& ids);

  void Insert(ColumnId id);
  void Remove(ColumnId id);
  bool Contains(ColumnId id) const;
  bool Empty() const;
  int Size() const;

  /// True iff every element of this set is in `other`.
  bool IsSubsetOf(const ColumnSet& other) const;
  bool Intersects(const ColumnSet& other) const;

  ColumnSet Union(const ColumnSet& other) const;
  ColumnSet Intersect(const ColumnSet& other) const;
  ColumnSet Difference(const ColumnSet& other) const;

  /// Ascending list of member ids.
  std::vector<ColumnId> ToVector() const;

  /// All non-empty subsets of this set, ascending by popcount then value.
  /// Intended for the paper's Sec. V requirement expansion; callers cap the
  /// input size (2^n growth).
  std::vector<ColumnSet> NonEmptySubsets() const;

  /// Stable content hash.
  uint64_t Hash() const;

  /// "{a,b,c}" using `namer` for each id; "{}" when empty.
  std::string ToString(
      const std::function<std::string(ColumnId)>& namer) const;
  /// "{#1,#4}" with raw ids.
  std::string ToString() const;

  friend bool operator==(const ColumnSet& a, const ColumnSet& b);

 private:
  void Normalize();

  std::vector<uint64_t> words_;
};

}  // namespace scx

#endif  // SCX_COMMON_COLUMN_SET_H_
