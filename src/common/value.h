#ifndef SCX_COMMON_VALUE_H_
#define SCX_COMMON_VALUE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"

namespace scx {

/// Column data types supported by the engine.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns "INT64" / "DOUBLE" / "STRING".
const char* DataTypeName(DataType type);

/// A single scalar value. Small, copyable, totally ordered within a type.
/// Cross-type comparisons order by type index first (deterministic canonical
/// ordering used when sorting result sets for comparison in tests).
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  DataType type() const {
    switch (data_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 widened to double; dies on strings.
  double AsNumeric() const;

  /// Stable 64-bit hash used for hash partitioning and hash aggregation.
  uint64_t Hash() const;

  /// Approximate serialized width in bytes (used by the cost model and the
  /// executor's shuffle byte accounting).
  int64_t ByteWidth() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b);

 private:
  std::variant<int64_t, double, std::string> data_;
};

/// A row is a flat vector of values positionally aligned with a Schema.
using Row = std::vector<Value>;

/// Stable hash of selected row positions (for partitioning on a column set).
uint64_t HashRowKey(const Row& row, const std::vector<int>& positions);

}  // namespace scx

#endif  // SCX_COMMON_VALUE_H_
