#ifndef SCX_COST_COST_MODEL_H_
#define SCX_COST_COST_MODEL_H_

#include <map>
#include <vector>

#include "memo/memo.h"
#include "plan/column_registry.h"
#include "props/physical_props.h"

namespace scx {

/// Static cluster description used by the cost model and the simulator.
struct ClusterConfig {
  /// Number of (virtual) machines; the default mirrors a modest SCOPE pod.
  int machines = 100;
  /// Worker threads the executor uses to evaluate per-machine partitions.
  /// 0 = DefaultNumThreads() (SCX_NUM_THREADS or hardware concurrency);
  /// 1 = the exact serial path. Results are bit-identical for every value
  /// (see docs/architecture.md §12). Ignored by the cost model.
  int exec_threads = 0;
  /// Rows per column batch in the vectorized executor kernels.
  /// 0 = DefaultBatchSize() (SCX_BATCH_SIZE or 4096); 1 = the exact legacy
  /// row-at-a-time path. Results are bit-identical for every value (see
  /// docs/architecture.md §14). Ignored by the cost model.
  int batch_size = 0;
  /// Live rows per morsel when one partition's work is split across worker
  /// threads (batch pipeline only). 0 = DefaultMorselSize() (SCX_MORSEL_SIZE
  /// or 16384); values at or above the partition size degenerate to one
  /// whole-partition job. Results are bit-identical for every value (see
  /// docs/architecture.md §15). Ignored by the cost model.
  int morsel_size = 0;
  /// Byte budget for spooled intermediate results — bounds both the run-local
  /// spool cache and the engine's cross-query spool cache. 0 =
  /// DefaultSpoolCacheBytes() (SCX_SPOOL_CACHE_BYTES or 256 MiB); negative =
  /// unlimited. Eviction is cost-aware and deterministic (see
  /// docs/architecture.md §16). Ignored by the cost model.
  int64_t spool_cache_bytes = 0;
};

/// Per-byte cost constants. Units are abstract "cost units" (the paper also
/// reports unitless estimated costs); only ratios matter. Network shuffle
/// dominates, matching shuffle-bound cloud jobs.
struct CostConstants {
  double read_per_byte = 0.5;          ///< extract from distributed storage
  double net_per_byte = 2.0;           ///< hash repartition shuffle
  double merge_exchange_extra = 0.4;   ///< extra for order-preserving merge
  double range_sample_extra = 0.15;    ///< extra for range-boundary sampling
  double gather_per_byte = 1.5;        ///< merge to a single partition
  double sort_per_byte_level = 0.03;   ///< x log2(rows per partition)
  double stream_agg_per_byte = 0.15;
  double hash_agg_per_byte = 0.40;
  double filter_per_byte = 0.05;
  double project_per_byte = 0.02;
  double hash_join_per_byte = 0.45;
  double merge_join_per_byte = 0.20;
  double spool_write_per_byte = 0.5;
  double spool_read_per_byte = 0.1;    ///< per consumer
  double output_per_byte = 0.4;
};

/// Estimated logical properties of one memo group.
struct GroupStats {
  double rows = 0;
  double row_width = 8;  ///< bytes

  double Bytes() const { return rows * row_width; }
};

/// Derives row-count/width estimates for every memo group, and
/// distinct-value counts for every column (base columns from the catalog via
/// the column registry; aggregate outputs derived from group cardinality).
class CardinalityEstimator {
 public:
  CardinalityEstimator(const ClusterConfig& cluster,
                       ColumnRegistryPtr columns)
      : cluster_(cluster), columns_(std::move(columns)) {}

  /// Computes stats for all groups reachable from the memo root. Must be
  /// re-run after Algorithm 1 restructures the memo (it is cheap).
  void EstimateMemo(const Memo& memo);

  const GroupStats& StatsOf(GroupId id) const { return stats_.at(id); }
  bool HasStats(GroupId id) const { return stats_.count(id) != 0; }

  /// Registers stats for a rule-created group (e.g. the LocalGbAgg group
  /// introduced by the aggregate-split transformation).
  void SetStats(GroupId id, GroupStats stats) { stats_[id] = stats; }

  /// Distinct-value count of one column.
  double Ndv(ColumnId id) const;

  /// Distinct-value count of a combination of columns: the product of the
  /// per-column counts (independence assumption), uncapped.
  double NdvOf(const ColumnSet& cols) const;

  /// Expected number of distinct values observed among `n` draws from a
  /// domain of `d` values: d * (1 - e^{-n/d}).
  static double DistinctSeen(double d, double n);

  /// Estimates output stats of the operator `expr` given child stats.
  GroupStats EstimateExpr(const LogicalNode& op,
                          const std::vector<GroupStats>& child_stats);

  /// Selectivity of a conjunction of predicates.
  double Selectivity(const std::vector<BoundPredicate>& preds) const;

  const ClusterConfig& cluster() const { return cluster_; }

 private:
  ClusterConfig cluster_;
  ColumnRegistryPtr columns_;
  std::map<GroupId, GroupStats> stats_;
  std::map<ColumnId, double> derived_ndv_;
};

/// Per-operator cost functions. Costs model per-stage makespan: the work of
/// an operator divided by its effective parallelism, which is capped by the
/// distinct-value count of the partitioning columns (the skew term: hash
/// partitioning on a low-NDV column set leaves machines idle).
class CostModel {
 public:
  CostModel(const CostConstants& constants, const ClusterConfig& cluster,
            const CardinalityEstimator* estimator)
      : c_(constants), cluster_(cluster), est_(estimator) {}

  /// Effective parallelism of a delivered partitioning.
  double EffectiveParallelism(const Partitioning& part) const;

  double Extract(const GroupStats& out) const;
  double Filter(const GroupStats& in, const Partitioning& in_part) const;
  double Project(const GroupStats& in, const Partitioning& in_part) const;
  double Sort(const GroupStats& in, const Partitioning& in_part) const;
  double StreamAgg(const GroupStats& in, const Partitioning& in_part) const;
  double HashAgg(const GroupStats& in, const Partitioning& in_part) const;
  double HashJoin(const GroupStats& left, const GroupStats& right,
                  const Partitioning& part) const;
  double MergeJoin(const GroupStats& left, const GroupStats& right,
                   const Partitioning& part) const;
  /// Hash repartition of `in` to hash partitioning on `to_cols`.
  double HashExchange(const GroupStats& in, const Partitioning& in_part,
                      const ColumnSet& to_cols) const;
  /// Order-preserving (merge) repartition.
  double MergeExchange(const GroupStats& in, const Partitioning& in_part,
                       const ColumnSet& to_cols) const;
  /// Range repartition (hash-exchange cost plus a boundary-sampling pass).
  double RangeExchange(const GroupStats& in, const Partitioning& in_part,
                       const ColumnSet& to_cols) const;
  /// Replicate the input to every machine (each machine receives a full
  /// copy, so the makespan is the full byte volume over the network).
  double Broadcast(const GroupStats& in) const;
  /// Merge all partitions into one (serial requirement).
  double Gather(const GroupStats& in) const;
  double SpoolWrite(const GroupStats& in, const Partitioning& in_part) const;
  double SpoolRead(const GroupStats& in, const Partitioning& in_part) const;
  double Output(const GroupStats& in, const Partitioning& in_part) const;

  /// Cost of one hash repartition of group `g`'s full output — the paper's
  /// RepartCost(G) used by the Sec. VIII-B shared-group ranking.
  double RepartCostOf(const GroupStats& g) const;

  const CostConstants& constants() const { return c_; }

 private:
  CostConstants c_;
  ClusterConfig cluster_;
  const CardinalityEstimator* est_;
};

}  // namespace scx

#endif  // SCX_COST_COST_MODEL_H_
