#ifndef SCX_COST_COST_MODEL_H_
#define SCX_COST_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/hash.h"
#include "memo/memo.h"
#include "plan/column_registry.h"
#include "props/physical_props.h"

namespace scx {

/// One deterministic machine-failure event: partition `machine` of the
/// operator pass with id `pass` (the value of
/// ExecMetrics::operator_invocations when the pass starts, 1-based) loses its
/// output and must be recovered.
struct FaultEvent {
  int64_t pass = 0;
  int machine = 0;
};

/// Seeded adversarial-cluster description carried by ClusterConfig. All
/// decisions are pure functions of (seed, pass, machine), so a FaultPlan is
/// bit-reproducible across thread counts, batch sizes and morsel sizes. The
/// executor's recovery contract (docs/architecture.md §17): for any FaultPlan
/// the outputs and every pre-existing ExecMetrics counter are bit-identical
/// to the clean run — faults only add to the fault/recovery counters.
/// Ignored by the cost model and the optimizer.
struct FaultPlan {
  /// Seed for the probabilistic failure / straggler draws. The plan is
  /// inert unless Enabled().
  uint64_t seed = 0;
  /// Per-(pass, machine) probability that the partition's output is lost.
  double failure_prob = 0;
  /// Cap on injected failures per execution (probabilistic and explicit
  /// combined); 0 = unlimited. Applied in deterministic DAG-walk order.
  int max_failures = 0;
  /// Explicit deterministic failures, checked before the probabilistic draw.
  std::vector<FaultEvent> failures;
  /// Per-machine probability of being a straggler for the whole run.
  double straggler_prob = 0;
  /// Simulated-time delay multiplier applied to straggler machines
  /// (feeds ExecMetrics::sim_makespan_ticks only; never changes results).
  double straggler_factor = 1.0;
  /// Forbid recovery from re-reading surviving spools (run-local or
  /// cross-query): every recovery recomputes the lost sub-DAG from scratch.
  /// The pure-recomputation arm of scxcheck oracle 9.
  bool disable_recovery_spool_reads = false;

  bool Enabled() const {
    return failure_prob > 0 || !failures.empty() || straggler_prob > 0 ||
           disable_recovery_spool_reads;
  }

  /// True iff partition `machine` of pass `pass` fails (before the
  /// executor's max_failures cap). Explicit events win; otherwise a
  /// deterministic Bernoulli draw on (seed, pass, machine).
  bool FailsAt(int64_t pass, int machine) const {
    for (const FaultEvent& e : failures) {
      if (e.pass == pass && e.machine == machine) return true;
    }
    if (failure_prob <= 0) return false;
    uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(pass) * 0x517cc1b727220a95ULL ^
                                    (static_cast<uint64_t>(machine) + 1)));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < failure_prob;
  }

  /// Simulated-delay multiplier of `machine` (>= 1.0; constant per run).
  double StragglerMultiplier(int machine) const {
    if (straggler_prob <= 0 || straggler_factor <= 1.0) return 1.0;
    uint64_t h = Mix64(seed ^ 0x2545f4914f6cdd1dULL ^
                       Mix64(static_cast<uint64_t>(machine) + 1));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < straggler_prob ? straggler_factor : 1.0;
  }
};

/// Static cluster description used by the cost model and the simulator.
struct ClusterConfig {
  /// Number of (virtual) machines; the default mirrors a modest SCOPE pod.
  int machines = 100;
  /// Worker threads the executor uses to evaluate per-machine partitions.
  /// 0 = DefaultNumThreads() (SCX_NUM_THREADS or hardware concurrency);
  /// 1 = the exact serial path. Results are bit-identical for every value
  /// (see docs/architecture.md §12). Ignored by the cost model.
  int exec_threads = 0;
  /// Rows per column batch in the vectorized executor kernels.
  /// 0 = DefaultBatchSize() (SCX_BATCH_SIZE or 4096); 1 = the exact legacy
  /// row-at-a-time path. Results are bit-identical for every value (see
  /// docs/architecture.md §14). Ignored by the cost model.
  int batch_size = 0;
  /// Live rows per morsel when one partition's work is split across worker
  /// threads (batch pipeline only). 0 = DefaultMorselSize() (SCX_MORSEL_SIZE
  /// or 16384); values at or above the partition size degenerate to one
  /// whole-partition job. Results are bit-identical for every value (see
  /// docs/architecture.md §15). Ignored by the cost model.
  int morsel_size = 0;
  /// Byte budget for spooled intermediate results — bounds both the run-local
  /// spool cache and the engine's cross-query spool cache. 0 =
  /// DefaultSpoolCacheBytes() (SCX_SPOOL_CACHE_BYTES or 256 MiB); negative =
  /// unlimited. Eviction is cost-aware and deterministic (see
  /// docs/architecture.md §16). Ignored by the cost model.
  int64_t spool_cache_bytes = 0;
  /// Adversarial-cluster simulation: seeded machine failures and stragglers
  /// with spool-based recovery. Inert (and free) unless fault_plan.Enabled().
  /// Never changes outputs or pre-existing counters — see
  /// docs/architecture.md §17. Ignored by the cost model.
  FaultPlan fault_plan;
};

/// Per-byte cost constants. Units are abstract "cost units" (the paper also
/// reports unitless estimated costs); only ratios matter. Network shuffle
/// dominates, matching shuffle-bound cloud jobs.
struct CostConstants {
  double read_per_byte = 0.5;          ///< extract from distributed storage
  double net_per_byte = 2.0;           ///< hash repartition shuffle
  double merge_exchange_extra = 0.4;   ///< extra for order-preserving merge
  double range_sample_extra = 0.15;    ///< extra for range-boundary sampling
  double gather_per_byte = 1.5;        ///< merge to a single partition
  double sort_per_byte_level = 0.03;   ///< x log2(rows per partition)
  double stream_agg_per_byte = 0.15;
  double hash_agg_per_byte = 0.40;
  double filter_per_byte = 0.05;
  double project_per_byte = 0.02;
  double hash_join_per_byte = 0.45;
  double merge_join_per_byte = 0.20;
  double spool_write_per_byte = 0.5;
  double spool_read_per_byte = 0.1;    ///< per consumer
  double output_per_byte = 0.4;
};

/// Estimated logical properties of one memo group.
struct GroupStats {
  double rows = 0;
  double row_width = 8;  ///< bytes

  double Bytes() const { return rows * row_width; }
};

/// Derives row-count/width estimates for every memo group, and
/// distinct-value counts for every column (base columns from the catalog via
/// the column registry; aggregate outputs derived from group cardinality).
class CardinalityEstimator {
 public:
  CardinalityEstimator(const ClusterConfig& cluster,
                       ColumnRegistryPtr columns)
      : cluster_(cluster), columns_(std::move(columns)) {}

  /// Computes stats for all groups reachable from the memo root. Must be
  /// re-run after Algorithm 1 restructures the memo (it is cheap).
  void EstimateMemo(const Memo& memo);

  const GroupStats& StatsOf(GroupId id) const { return stats_.at(id); }
  bool HasStats(GroupId id) const { return stats_.count(id) != 0; }

  /// Registers stats for a rule-created group (e.g. the LocalGbAgg group
  /// introduced by the aggregate-split transformation).
  void SetStats(GroupId id, GroupStats stats) { stats_[id] = stats; }

  /// Distinct-value count of one column.
  double Ndv(ColumnId id) const;

  /// Distinct-value count of a combination of columns: the product of the
  /// per-column counts (independence assumption), uncapped.
  double NdvOf(const ColumnSet& cols) const;

  /// Expected number of distinct values observed among `n` draws from a
  /// domain of `d` values: d * (1 - e^{-n/d}).
  static double DistinctSeen(double d, double n);

  /// Estimates output stats of the operator `expr` given child stats.
  GroupStats EstimateExpr(const LogicalNode& op,
                          const std::vector<GroupStats>& child_stats);

  /// Selectivity of a conjunction of predicates.
  double Selectivity(const std::vector<BoundPredicate>& preds) const;

  const ClusterConfig& cluster() const { return cluster_; }

 private:
  ClusterConfig cluster_;
  ColumnRegistryPtr columns_;
  std::map<GroupId, GroupStats> stats_;
  std::map<ColumnId, double> derived_ndv_;
};

/// Per-operator cost functions. Costs model per-stage makespan: the work of
/// an operator divided by its effective parallelism, which is capped by the
/// distinct-value count of the partitioning columns (the skew term: hash
/// partitioning on a low-NDV column set leaves machines idle).
class CostModel {
 public:
  CostModel(const CostConstants& constants, const ClusterConfig& cluster,
            const CardinalityEstimator* estimator)
      : c_(constants), cluster_(cluster), est_(estimator) {}

  /// Effective parallelism of a delivered partitioning.
  double EffectiveParallelism(const Partitioning& part) const;

  double Extract(const GroupStats& out) const;
  double Filter(const GroupStats& in, const Partitioning& in_part) const;
  double Project(const GroupStats& in, const Partitioning& in_part) const;
  double Sort(const GroupStats& in, const Partitioning& in_part) const;
  double StreamAgg(const GroupStats& in, const Partitioning& in_part) const;
  double HashAgg(const GroupStats& in, const Partitioning& in_part) const;
  double HashJoin(const GroupStats& left, const GroupStats& right,
                  const Partitioning& part) const;
  double MergeJoin(const GroupStats& left, const GroupStats& right,
                   const Partitioning& part) const;
  /// Hash repartition of `in` to hash partitioning on `to_cols`.
  double HashExchange(const GroupStats& in, const Partitioning& in_part,
                      const ColumnSet& to_cols) const;
  /// Order-preserving (merge) repartition.
  double MergeExchange(const GroupStats& in, const Partitioning& in_part,
                       const ColumnSet& to_cols) const;
  /// Range repartition (hash-exchange cost plus a boundary-sampling pass).
  double RangeExchange(const GroupStats& in, const Partitioning& in_part,
                       const ColumnSet& to_cols) const;
  /// Replicate the input to every machine (each machine receives a full
  /// copy, so the makespan is the full byte volume over the network).
  double Broadcast(const GroupStats& in) const;
  /// Merge all partitions into one (serial requirement).
  double Gather(const GroupStats& in) const;
  double SpoolWrite(const GroupStats& in, const Partitioning& in_part) const;
  double SpoolRead(const GroupStats& in, const Partitioning& in_part) const;
  double Output(const GroupStats& in, const Partitioning& in_part) const;

  /// Cost of one hash repartition of group `g`'s full output — the paper's
  /// RepartCost(G) used by the Sec. VIII-B shared-group ranking.
  double RepartCostOf(const GroupStats& g) const;

  const CostConstants& constants() const { return c_; }

 private:
  CostConstants c_;
  ClusterConfig cluster_;
  const CardinalityEstimator* est_;
};

}  // namespace scx

#endif  // SCX_COST_COST_MODEL_H_
