#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace scx {

void CardinalityEstimator::EstimateMemo(const Memo& memo) {
  for (GroupId id : memo.TopologicalOrder()) {
    const GroupExpr& expr = memo.group(id).initial_expr();
    std::vector<GroupStats> child_stats;
    child_stats.reserve(expr.children.size());
    for (GroupId child : expr.children) {
      child_stats.push_back(stats_.at(child));
    }
    stats_[id] = EstimateExpr(*expr.op, child_stats);
  }
}

double CardinalityEstimator::Ndv(ColumnId id) const {
  auto it = derived_ndv_.find(id);
  if (it != derived_ndv_.end()) return it->second;
  const ColumnMeta& meta = columns_->Get(id);
  if (meta.base_ndv > 0) return static_cast<double>(meta.base_ndv);
  return 1000.0;  // fallback for underived columns
}

double CardinalityEstimator::NdvOf(const ColumnSet& cols) const {
  double d = 1.0;
  for (ColumnId c : cols.ToVector()) d *= Ndv(c);
  return d;
}

double CardinalityEstimator::DistinctSeen(double d, double n) {
  if (d <= 0) return 0;
  if (n <= 0) return 0;
  return d * (1.0 - std::exp(-n / d));
}

double CardinalityEstimator::Selectivity(
    const std::vector<BoundPredicate>& preds) const {
  double sel = 1.0;
  for (const BoundPredicate& p : preds) {
    switch (p.op) {
      case CompareOp::kEq:
        if (p.rhs_is_column) {
          sel *= 1.0 / std::max(1.0, std::max(Ndv(p.lhs), Ndv(p.rhs)));
        } else {
          sel *= 1.0 / std::max(1.0, Ndv(p.lhs));
        }
        break;
      case CompareOp::kNe:
        sel *= 1.0 - 1.0 / std::max(1.0, Ndv(p.lhs));
        break;
      default:
        sel *= 1.0 / 3.0;
        break;
    }
  }
  return sel;
}

GroupStats CardinalityEstimator::EstimateExpr(
    const LogicalNode& op, const std::vector<GroupStats>& child_stats) {
  GroupStats out;
  auto schema_width = [this](const Schema& schema) {
    double w = 0;
    for (const ColumnInfo& c : schema.columns()) {
      w += static_cast<double>(columns_->Get(c.id).avg_width);
    }
    return std::max(8.0, w);
  };

  switch (op.kind()) {
    case LogicalOpKind::kExtract: {
      out.rows = static_cast<double>(op.file.row_count);
      out.row_width = schema_width(op.schema());
      break;
    }
    case LogicalOpKind::kFilter: {
      out.rows = child_stats[0].rows * Selectivity(op.predicates);
      out.row_width = child_stats[0].row_width;
      break;
    }
    case LogicalOpKind::kProject: {
      out.rows = child_stats[0].rows;
      out.row_width = schema_width(op.schema());
      // Renamed outputs inherit the source column's distinct count.
      for (const auto& [src, dst] : op.project_map) {
        if (src != dst) derived_ndv_[dst] = Ndv(src);
      }
      break;
    }
    case LogicalOpKind::kCompute: {
      out.rows = child_stats[0].rows;
      out.row_width = schema_width(op.schema());
      // A computed column has at most as many distinct values as the
      // product of its inputs' (capped by the row count).
      for (const ComputeItem& item : op.compute_items) {
        if (item.IsPassthrough()) continue;
        double d = NdvOf(item.expr->ReferencedColumns());
        derived_ndv_[item.out] = std::min(out.rows, std::max(1.0, d));
      }
      break;
    }
    case LogicalOpKind::kGbAgg:
    case LogicalOpKind::kGlobalGbAgg: {
      double d = NdvOf(ColumnSet::FromVector(op.group_cols));
      if (op.group_cols.empty()) d = 1;
      // GlobalGbAgg consumes partial rows; distinct groups are the same as
      // for the full aggregate over the original input, so use the child's
      // row count as the draw count — an upper bound that stays consistent.
      // A grouped aggregate over an empty input produces no groups (only a
      // grand total always emits one row) — don't clamp phantom rows into
      // empty pipelines, they surface as spurious spool/exchange costs.
      if (!op.group_cols.empty() && child_stats[0].rows <= 0) {
        out.rows = 0;
        out.row_width = schema_width(op.schema());
        for (const AggregateDesc& agg : op.aggregates) {
          derived_ndv_[agg.out] = 1;
          if (agg.hidden_count != 0) derived_ndv_[agg.hidden_count] = 1;
        }
        break;
      }
      out.rows = std::max(1.0, DistinctSeen(d, child_stats[0].rows));
      out.row_width = schema_width(op.schema());
      for (const AggregateDesc& agg : op.aggregates) {
        derived_ndv_[agg.out] = out.rows;
        if (agg.hidden_count != 0) derived_ndv_[agg.hidden_count] = out.rows;
      }
      break;
    }
    case LogicalOpKind::kLocalGbAgg: {
      double d = NdvOf(ColumnSet::FromVector(op.group_cols));
      if (op.group_cols.empty()) d = 1;
      double m = static_cast<double>(cluster_.machines);
      double per_machine = child_stats[0].rows / std::max(1.0, m);
      out.rows = std::max(1.0, m * DistinctSeen(d, per_machine));
      out.rows = std::min(out.rows, child_stats[0].rows);
      out.row_width = schema_width(op.schema());
      for (const AggregateDesc& agg : op.aggregates) {
        derived_ndv_[agg.out] = out.rows;
        if (agg.hidden_count != 0) derived_ndv_[agg.hidden_count] = out.rows;
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      ColumnSet lkeys, rkeys;
      for (const auto& [l, r] : op.join_keys) {
        lkeys.Insert(l);
        rkeys.Insert(r);
      }
      double d = std::max(NdvOf(lkeys), NdvOf(rkeys));
      out.rows = child_stats[0].rows * child_stats[1].rows / std::max(1.0, d);
      out.rows *= Selectivity(op.predicates);
      // An empty side means an empty join — same no-phantom-rows rule as
      // for grouped aggregates above.
      out.rows = child_stats[0].rows <= 0 || child_stats[1].rows <= 0
                     ? 0.0
                     : std::max(1.0, out.rows);
      out.row_width = schema_width(op.schema());
      break;
    }
    case LogicalOpKind::kUnionAll: {
      for (const GroupStats& cs : child_stats) out.rows += cs.rows;
      out.row_width = schema_width(op.schema());
      // Output columns inherit the first source's distinct counts, scaled
      // by the number of sources (capped by the row count).
      double scale = static_cast<double>(child_stats.size());
      for (const auto& [src, dst] : op.project_map) {
        derived_ndv_[dst] = std::min(out.rows, Ndv(src) * scale);
      }
      break;
    }
    case LogicalOpKind::kSpool:
    case LogicalOpKind::kOutput: {
      out = child_stats[0];
      break;
    }
    case LogicalOpKind::kSequence: {
      out.rows = 0;
      out.row_width = 8;
      break;
    }
  }
  return out;
}

double CostModel::EffectiveParallelism(const Partitioning& part) const {
  double m = static_cast<double>(cluster_.machines);
  switch (part.kind) {
    case PartitioningKind::kSerial:
      return 1.0;
    case PartitioningKind::kRandom:
      return m;
    case PartitioningKind::kRange:
    case PartitioningKind::kHash: {
      // Balls-into-bins occupancy: with d distinct key values hashed onto m
      // machines, the expected number of non-empty machines is
      // m * (1 - (1-1/m)^d) ≈ m * (1 - e^{-d/m}). Low-NDV partitioning
      // columns therefore limit parallelism — the skew penalty that makes a
      // covering subset like {B} locally sub-optimal (paper Sec. I).
      double d = est_->NdvOf(part.cols);
      return std::max(1.0, m * (1.0 - std::exp(-d / m)));
    }
  }
  return 1.0;
}

double CostModel::Extract(const GroupStats& out) const {
  double m = static_cast<double>(cluster_.machines);
  return out.Bytes() * c_.read_per_byte / m;
}

double CostModel::Filter(const GroupStats& in,
                         const Partitioning& in_part) const {
  return in.Bytes() * c_.filter_per_byte / EffectiveParallelism(in_part);
}

double CostModel::Project(const GroupStats& in,
                          const Partitioning& in_part) const {
  return in.Bytes() * c_.project_per_byte / EffectiveParallelism(in_part);
}

double CostModel::Sort(const GroupStats& in,
                       const Partitioning& in_part) const {
  double eff = EffectiveParallelism(in_part);
  double rows_per_part = std::max(2.0, in.rows / eff);
  return in.Bytes() * c_.sort_per_byte_level * std::log2(rows_per_part) / eff;
}

double CostModel::StreamAgg(const GroupStats& in,
                            const Partitioning& in_part) const {
  return in.Bytes() * c_.stream_agg_per_byte / EffectiveParallelism(in_part);
}

double CostModel::HashAgg(const GroupStats& in,
                          const Partitioning& in_part) const {
  return in.Bytes() * c_.hash_agg_per_byte / EffectiveParallelism(in_part);
}

double CostModel::HashJoin(const GroupStats& left, const GroupStats& right,
                           const Partitioning& part) const {
  return (left.Bytes() + right.Bytes()) * c_.hash_join_per_byte /
         EffectiveParallelism(part);
}

double CostModel::MergeJoin(const GroupStats& left, const GroupStats& right,
                            const Partitioning& part) const {
  return (left.Bytes() + right.Bytes()) * c_.merge_join_per_byte /
         EffectiveParallelism(part);
}

double CostModel::HashExchange(const GroupStats& in,
                               const Partitioning& in_part,
                               const ColumnSet& to_cols) const {
  double send_eff = EffectiveParallelism(in_part);
  double recv_eff = EffectiveParallelism(Partitioning::Hash(to_cols));
  double eff = std::min(send_eff, recv_eff);
  return in.Bytes() * c_.net_per_byte / std::max(1.0, eff);
}

double CostModel::MergeExchange(const GroupStats& in,
                                const Partitioning& in_part,
                                const ColumnSet& to_cols) const {
  return HashExchange(in, in_part, to_cols) +
         in.Bytes() * c_.merge_exchange_extra /
             EffectiveParallelism(Partitioning::Hash(to_cols));
}

double CostModel::RangeExchange(const GroupStats& in,
                                const Partitioning& in_part,
                                const ColumnSet& to_cols) const {
  return HashExchange(in, in_part, to_cols) +
         in.Bytes() * c_.range_sample_extra /
             EffectiveParallelism(in_part);
}

double CostModel::Broadcast(const GroupStats& in) const {
  return in.Bytes() * c_.net_per_byte;
}

double CostModel::Gather(const GroupStats& in) const {
  return in.Bytes() * c_.gather_per_byte;
}

double CostModel::SpoolWrite(const GroupStats& in,
                             const Partitioning& in_part) const {
  return in.Bytes() * c_.spool_write_per_byte /
         EffectiveParallelism(in_part);
}

double CostModel::SpoolRead(const GroupStats& in,
                            const Partitioning& in_part) const {
  return in.Bytes() * c_.spool_read_per_byte / EffectiveParallelism(in_part);
}

double CostModel::Output(const GroupStats& in,
                         const Partitioning& in_part) const {
  return in.Bytes() * c_.output_per_byte / EffectiveParallelism(in_part);
}

double CostModel::RepartCostOf(const GroupStats& g) const {
  double m = static_cast<double>(cluster_.machines);
  return g.Bytes() * c_.net_per_byte / m;
}

}  // namespace scx
