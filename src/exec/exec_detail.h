#ifndef SCX_EXEC_EXEC_DETAIL_H_
#define SCX_EXEC_EXEC_DETAIL_H_

// Internal helpers shared by the executor's two pipelines (the legacy row
// path in executor.cc and the batch-native pipeline in batch_executor.cc).
// Both paths MUST produce bit-identical results, so anything with per-cell
// arithmetic lives here exactly once instead of being reimplemented twice.

#include <cstdint>

#include "catalog/catalog.h"
#include "common/value.h"
#include "plan/expr.h"

namespace scx {
namespace exec_detail {

/// Deterministic synthetic cell value for (file, column, row) — the
/// simulated cluster's data generator.
Value SyntheticValue(const FileDef& file, int col_index, int64_t row_index);

/// Running state for one aggregate over one group.
struct AggState {
  double dsum = 0;
  int64_t isum = 0;
  int64_t count = 0;
  Value minv;
  Value maxv;
  bool seen = false;
};

/// The finalized output cell of aggregate `a` from state `s`. `global`
/// merges partial states (the split rule's merge phase); `local` emits the
/// partial (a local Avg emits its partial sum; the partial count is the
/// separate hidden column appended by the caller).
Value FinalizeAggCell(const AggregateDesc& a, const AggState& s, bool global,
                      bool local);

}  // namespace exec_detail
}  // namespace scx

#endif  // SCX_EXEC_EXEC_DETAIL_H_
