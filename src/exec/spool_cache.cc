#include "exec/spool_cache.h"

#include <cstdlib>
#include <limits>

namespace scx {

int64_t DefaultSpoolCacheBytes() {
  if (const char* env = std::getenv("SCX_SPOOL_CACHE_BYTES")) {
    int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return int64_t{256} * 1024 * 1024;
}

int64_t ResolveSpoolBudget(int64_t configured) {
  if (configured > 0) return configured;
  if (configured < 0) return std::numeric_limits<int64_t>::max();
  return DefaultSpoolCacheBytes();
}

namespace {

/// Pre-order serializer with dense column renaming and @id back-references
/// for shared interior nodes. See CanonicalSubDagDescription for the
/// exactness argument.
class CanonicalWriter {
 public:
  std::string Render(const PhysicalNode* root) {
    Walk(root);
    return std::move(out_);
  }

 private:
  void Num(int64_t v) {
    out_ += std::to_string(v);
    out_ += ',';
  }

  void Str(const std::string& s) {
    // Length-prefixed so path/name content can never collide with syntax.
    out_ += std::to_string(s.size());
    out_ += ':';
    out_ += s;
    out_ += ',';
  }

  void Col(ColumnId id) {
    auto it = canon_.find(id);
    if (it == canon_.end()) {
      it = canon_.emplace(id, static_cast<int>(canon_.size())).first;
    }
    out_ += 'c';
    Num(it->second);
  }

  void Cols(const std::vector<ColumnId>& ids) {
    out_ += '[';
    for (ColumnId id : ids) Col(id);
    out_ += ']';
  }

  void ColSet(const ColumnSet& set) { Cols(set.ToVector()); }

  void Lit(const Value& v) {
    out_ += 'v';
    Num(static_cast<int64_t>(v.type()));
    Str(v.ToString());
  }

  void Scalar(const ScalarExpr* e) {
    if (e == nullptr) {
      out_ += 'n';
      return;
    }
    switch (e->kind()) {
      case ScalarExpr::Kind::kColumn:
        Col(e->column());
        break;
      case ScalarExpr::Kind::kLiteral:
        Lit(e->literal());
        break;
      case ScalarExpr::Kind::kBinary:
        out_ += 'b';
        Num(static_cast<int64_t>(e->op()));
        Scalar(e->lhs().get());
        Scalar(e->rhs().get());
        break;
    }
  }

  void Predicate(const BoundPredicate& p) {
    out_ += 'p';
    Col(p.lhs);
    Num(static_cast<int64_t>(p.op));
    if (p.rhs_is_column) {
      Col(p.rhs);
    } else {
      Lit(p.literal);
    }
  }

  void Partition(const Partitioning& part) {
    out_ += 'P';
    Num(static_cast<int64_t>(part.kind));
    ColSet(part.cols);
    Cols(part.range_cols);
  }

  void Payload(const PhysicalNode* n) {
    const LogicalNode* proto = n->proto.get();
    if (proto == nullptr) return;
    switch (n->kind) {
      case PhysicalOpKind::kExtract: {
        const FileDef& f = proto->file;
        Num(f.file_id);
        Str(f.path);
        Num(f.row_count);
        Num(static_cast<int64_t>(f.data_seed));
        for (const ColumnStats& c : f.columns) {
          Str(c.name);
          Num(static_cast<int64_t>(c.type));
          Num(c.distinct_count);
          Num(c.avg_width);
          // Skew changes the synthetic data, so it must split cache keys.
          // Emitted only when set, keeping unskewed canon strings unchanged.
          if (c.skew_alpha != 0) {
            out_ += 's';
            Str(std::to_string(c.skew_alpha));
          }
        }
        break;
      }
      case PhysicalOpKind::kFilter:
        for (const BoundPredicate& p : proto->predicates) Predicate(p);
        break;
      case PhysicalOpKind::kProject:
        for (const auto& [src, dst] : proto->project_map) {
          Col(src);
          Col(dst);
        }
        break;
      case PhysicalOpKind::kCompute:
        for (const ComputeItem& item : proto->compute_items) {
          Scalar(item.expr.get());
          Col(item.out);
        }
        break;
      case PhysicalOpKind::kHashAgg:
      case PhysicalOpKind::kStreamAgg:
        Num(static_cast<int64_t>(proto->kind()));  // full/local/global split
        Cols(proto->group_cols);
        for (const AggregateDesc& a : proto->aggregates) {
          Num(static_cast<int64_t>(a.fn));
          Num(a.count_star ? 1 : 0);
          Col(a.arg);
          Col(a.out);
          Col(a.hidden_count);
          Num(static_cast<int64_t>(a.out_type));
        }
        break;
      case PhysicalOpKind::kHashJoin:
      case PhysicalOpKind::kMergeJoin:
        for (const auto& [l, r] : proto->join_keys) {
          Col(l);
          Col(r);
        }
        for (const BoundPredicate& p : proto->predicates) Predicate(p);
        break;
      case PhysicalOpKind::kOutput:
        Str(proto->output_path);
        Cols(proto->order_by);
        break;
      default:
        // UnionAll, Spool/SpoolScan, Sequence, and enforcers carry no
        // payload beyond the common fields (enforcers reuse the child's
        // proto, whose content the child emits itself).
        break;
    }
  }

  void Walk(const PhysicalNode* n) {
    auto it = node_ids_.find(n);
    if (it != node_ids_.end()) {
      out_ += '@';
      Num(it->second);
      return;
    }
    node_ids_.emplace(n, static_cast<int>(node_ids_.size()));
    out_ += '(';
    out_ += PhysicalOpKindName(n->kind);
    out_ += ';';
    // Schema: canonical id + type per column. Extract additionally binds
    // file columns by name, so there the names are semantic.
    if (n->proto != nullptr) {
      for (const ColumnInfo& c : n->proto->schema().columns()) {
        Col(c.id);
        Num(static_cast<int64_t>(c.type));
        if (n->kind == PhysicalOpKind::kExtract) Str(c.name);
      }
    }
    out_ += ';';
    Partition(n->delivered.partitioning);
    Cols(n->delivered.sort.cols);
    ColSet(n->exchange_cols);
    Cols(n->sort_spec.cols);
    out_ += ';';
    Payload(n);
    out_ += ';';
    for (const PhysicalNodePtr& child : n->children) Walk(child.get());
    out_ += ')';
  }

  std::string out_;
  std::map<const PhysicalNode*, int> node_ids_;
  std::map<ColumnId, int> canon_;
};

}  // namespace

std::string CanonicalSubDagDescription(const PhysicalNodePtr& node) {
  return CanonicalWriter().Render(node.get());
}

std::optional<PartitionedData> CrossQuerySpoolCache::LookupRows(
    const SpoolCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || key.batch) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second.reuse;
  return it->second.rows;
}

std::optional<BatchData> CrossQuerySpoolCache::LookupBatch(
    const SpoolCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !key.batch) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second.reuse;
  return it->second.batch;  // copies shared column pointers, not data
}

void CrossQuerySpoolCache::InsertRows(const SpoolCacheKey& key,
                                      PartitionedData data,
                                      double recompute_cost,
                                      int64_t* evicted_bytes) {
  Entry entry;
  entry.bytes = data.TotalBytes();
  entry.rows = std::move(data);
  entry.recompute_cost = recompute_cost;
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, std::move(entry), evicted_bytes);
}

void CrossQuerySpoolCache::InsertBatch(const SpoolCacheKey& key,
                                       BatchData data, double recompute_cost,
                                       int64_t* evicted_bytes) {
  Entry entry;
  entry.bytes = data.TotalLiveBytes();
  entry.batch = std::move(data);
  entry.recompute_cost = recompute_cost;
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, std::move(entry), evicted_bytes);
}

const PartitionedData& CrossQuerySpoolCache::PinnedEntry::rows() const {
  return entry_->rows;
}

const BatchData& CrossQuerySpoolCache::PinnedEntry::batch() const {
  return entry_->batch;
}

void CrossQuerySpoolCache::PinnedEntry::Release() {
  if (entry_ != nullptr) cache_->Unpin(entry_);
  cache_ = nullptr;
  entry_ = nullptr;
}

CrossQuerySpoolCache::PinnedEntry CrossQuerySpoolCache::Pin(
    const SpoolCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return PinnedEntry();
  ++it->second.pins;
  return PinnedEntry(this, &it->second);
}

void CrossQuerySpoolCache::Unpin(Entry* entry) {
  std::lock_guard<std::mutex> lock(mu_);
  --entry->pins;
}

void CrossQuerySpoolCache::InsertLocked(const SpoolCacheKey& key, Entry entry,
                                        int64_t* evicted_bytes) {
  entry.seq = next_seq_++;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A pinned entry must stay where it is (a recovery re-read may hold a
    // pointer into it). Same-key data is identical by construction — the key
    // is the exact canonical sub-DAG plus catalog version — so keeping the
    // old materialization is not just safe but equivalent.
    if (it->second.pins > 0) return;
    bytes_used_ -= it->second.bytes;
    entries_.erase(it);
  }
  bytes_used_ += entry.bytes;
  ++stats_.insertions;
  entries_.emplace(key, std::move(entry));
  EnforceBudgetLocked(evicted_bytes);
}

void CrossQuerySpoolCache::EnforceBudgetLocked(int64_t* evicted_bytes) {
  while (bytes_used_ > budget_ && !entries_.empty()) {
    auto victim = entries_.end();
    double victim_benefit = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;  // pinned: not evictable
      double benefit = it->second.recompute_cost * (1.0 + it->second.reuse);
      if (victim == entries_.end() || benefit < victim_benefit ||
          (benefit == victim_benefit && it->second.seq < victim->second.seq)) {
        victim = it;
        victim_benefit = benefit;
      }
    }
    // Every entry pinned: stay over budget until a pin drops (the next
    // insertion re-enforces the budget).
    if (victim == entries_.end()) break;
    bytes_used_ -= victim->second.bytes;
    ++stats_.evictions;
    stats_.bytes_evicted += victim->second.bytes;
    if (evicted_bytes != nullptr) *evicted_bytes += victim->second.bytes;
    entries_.erase(victim);
  }
}

SpoolCacheStats CrossQuerySpoolCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SpoolCacheStats s = stats_;
  s.bytes_used = bytes_used_;
  s.entries = static_cast<int64_t>(entries_.size());
  return s;
}

}  // namespace scx
