#include "exec/vector_kernels.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace scx {

namespace {

bool NumericRep(ColumnRep r) {
  return r == ColumnRep::kInt64 || r == ColumnRep::kDouble;
}

/// Three-way result of BoundPredicate::Evaluate's comparison rules.
inline int Cmp3(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

inline int CmpPredicateValues(const Value& l, const Value& r) {
  if (l.type() != r.type() && !l.is_string() && !r.is_string()) {
    return Cmp3(l.AsNumeric(), r.AsNumeric());
  }
  auto c = l <=> r;
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

inline bool PassOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Which three-way compare outcomes (<, ==, >) an operator accepts, hoisted
/// out of the inner loops: the per-lane mask is then pure arithmetic —
/// no operator switch, no branch — which is what lets the compiler
/// auto-vectorize the dense compare loops.
struct CmpWants {
  uint8_t lt, eq, gt;
};

inline CmpWants WantsOf(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return {0, 1, 0};
    case CompareOp::kNe:
      return {1, 0, 1};
    case CompareOp::kLt:
      return {1, 0, 0};
    case CompareOp::kLe:
      return {1, 1, 0};
    case CompareOp::kGt:
      return {0, 0, 1};
    case CompareOp::kGe:
      return {0, 1, 1};
  }
  return {0, 0, 0};
}

/// `PassOp(op, c)` for a three-way compare c in {-1, 0, +1}, branch-free.
inline uint8_t MaskCmp3(const CmpWants& w, int c) {
  return static_cast<uint8_t>((w.lt & (c < 0)) | (w.eq & (c == 0)) |
                              (w.gt & (c > 0)));
}

/// Rows per compare-mask block of the dense selection path: small enough to
/// stay in L1 alongside the key column, large enough to amortize the call.
constexpr size_t kSelectBlock = 1024;

/// First-predicate selection over physical rows [begin, rows): `fill` writes
/// a 0/1 byte mask for one block (the auto-vectorized compare loop), then
/// the passing indices are appended branchlessly — sel[w] = i; w += mask[i]
/// — so a selectivity-dependent branch never enters the hot loop.
template <typename MaskFill>
void DenseSelect(size_t begin, size_t rows, SelectionVector* sel,
                 const MaskFill& fill) {
  sel->clear();
  sel->resize(rows - begin);
  uint32_t* out = sel->data();
  size_t w = 0;
  uint8_t mask[kSelectBlock];
  for (size_t base = begin; base < rows; base += kSelectBlock) {
    const size_t n = std::min(rows - base, kSelectBlock);
    fill(base, n, mask);
    for (size_t i = 0; i < n; ++i) {
      out[w] = static_cast<uint32_t>(base + i);
      w += mask[i];
    }
  }
  sel->resize(w);
}

/// Re-filter of an existing selection: compacts it in place, branch-free
/// on the predicate outcome (`pass` returns 0 or 1).
template <typename PassFn>
void SparseSelect(SelectionVector* sel, const PassFn& pass) {
  uint32_t* data = sel->data();
  const size_t m = sel->size();
  size_t w = 0;
  for (size_t k = 0; k < m; ++k) {
    const uint32_t i = data[k];
    data[w] = i;
    w += pass(i);
  }
  sel->resize(w);
}

/// Generic fallback: runs `pass(i)` over rows [begin, rows) (first
/// predicate) or over the current selection, compacting it in place. Used
/// by the string and mixed-rep paths that cannot vectorize anyway.
template <typename PassFn>
void RunSelect(size_t begin, size_t rows, bool first, SelectionVector* sel,
               PassFn pass) {
  if (first) {
    sel->clear();
    sel->reserve(rows - begin);
    for (uint32_t i = static_cast<uint32_t>(begin);
         i < static_cast<uint32_t>(rows); ++i) {
      if (pass(i)) sel->push_back(i);
    }
    return;
  }
  size_t w = 0;
  for (uint32_t i : *sel) {
    if (pass(i)) (*sel)[w++] = i;
  }
  sel->resize(w);
}

/// Cell as double; caller guarantees a numeric rep.
inline double NumericAt(const ColumnVector& col, size_t i) {
  return col.rep() == ColumnRep::kInt64
             ? static_cast<double>(col.ints()[i])
             : col.doubles()[i];
}

/// The exact binary-operator semantics of ScalarExpr::Evaluate, on cells.
Value EvalBinaryValue(ScalarExpr::BinOp op, const Value& l, const Value& r) {
  if (op == ScalarExpr::BinOp::kDiv) {
    double d = r.AsNumeric();
    return Value::Real(d == 0 ? 0.0 : l.AsNumeric() / d);
  }
  if (l.is_int() && r.is_int()) {
    int64_t a = l.as_int(), b = r.as_int();
    switch (op) {
      case ScalarExpr::BinOp::kAdd:
        return Value::Int(a + b);
      case ScalarExpr::BinOp::kSub:
        return Value::Int(a - b);
      case ScalarExpr::BinOp::kMul:
        return Value::Int(a * b);
      case ScalarExpr::BinOp::kDiv:
        break;
    }
  }
  double a = l.AsNumeric(), b = r.AsNumeric();
  switch (op) {
    case ScalarExpr::BinOp::kAdd:
      return Value::Real(a + b);
    case ScalarExpr::BinOp::kSub:
      return Value::Real(a - b);
    case ScalarExpr::BinOp::kMul:
      return Value::Real(a * b);
    case ScalarExpr::BinOp::kDiv:
      break;
  }
  return Value::Real(0);
}

}  // namespace

void HashColumnCells(const ColumnVector& col, size_t begin, size_t end,
                     uint64_t* h) {
  switch (col.rep()) {
    case ColumnRep::kInt64: {
      const int64_t* d = col.ints().data();
      // simd-guard: hash-mix-int64
      for (size_t i = begin; i < end; ++i) {
        h[i] = HashCombine(h[i], Mix64(static_cast<uint64_t>(d[i])));
      }
      break;
    }
    case ColumnRep::kDouble: {
      const double* d = col.doubles().data();
      // simd-guard: hash-mix-double
      for (size_t i = begin; i < end; ++i) {
        double v = d[i] == 0.0 ? 0.0 : d[i];  // -0.0 normalize, as Value::Hash
        uint64_t bits;
        __builtin_memcpy(&bits, &v, sizeof(bits));
        h[i] = HashCombine(h[i], Mix64(bits ^ 0x5555555555555555ULL));
      }
      break;
    }
    case ColumnRep::kString: {
      const std::vector<std::string>& d = col.strings();
      for (size_t i = begin; i < end; ++i) {
        h[i] = HashCombine(h[i], Fnv1a64(d[i]));
      }
      break;
    }
    case ColumnRep::kValue: {
      const std::vector<Value>& d = col.values();
      for (size_t i = begin; i < end; ++i) {
        h[i] = HashCombine(h[i], d[i].Hash());
      }
      break;
    }
  }
}

void HashColumns(const ColumnBatch& batch, const std::vector<int>& positions,
                 std::vector<uint64_t>* hashes) {
  hashes->assign(batch.rows, kRowKeySeed);
  for (int pos : positions) {
    HashColumnCells(batch.col(pos), batch.rows, hashes->data());
  }
}

bool PredicatePassCells(CompareOp op, const Value& l, const Value& r) {
  return PassOp(op, CmpPredicateValues(l, r));
}

void SelectByPredicate(const ColumnVector& lhs, const ColumnVector* rhs,
                       const Value& literal, CompareOp op, size_t rows,
                       bool first, SelectionVector* sel, size_t begin) {
  const ColumnVector& l = lhs;
  const ColumnVector* rcol = rhs;
  const Value& lit = literal;
  const ColumnRep lr = l.rep();
  const ColumnRep rr = rcol != nullptr
                           ? rcol->rep()
                           : (lit.is_int() ? ColumnRep::kInt64
                              : lit.is_double() ? ColumnRep::kDouble
                                                : ColumnRep::kString);
  const CmpWants w = WantsOf(op);

  // Both sides int64: the canonical integer ordering.
  if (lr == ColumnRep::kInt64 && rr == ColumnRep::kInt64) {
    const int64_t* a = l.ints().data();
    if (rcol != nullptr) {
      const int64_t* b = rcol->ints().data();
      if (first) {
        DenseSelect(begin, rows, sel,
                    [&](size_t base, size_t n, uint8_t* mask) {
                      const int64_t* pa = a + base;
                      const int64_t* pb = b + base;
                      // simd-guard: predicate-mask-int64-col
                      for (size_t i = 0; i < n; ++i) {
                        mask[i] = MaskCmp3(w, (pa[i] > pb[i]) - (pa[i] < pb[i]));
                      }
                    });
      } else {
        SparseSelect(sel, [&](uint32_t i) {
          return MaskCmp3(w, (a[i] > b[i]) - (a[i] < b[i]));
        });
      }
    } else {
      const int64_t b = lit.as_int();
      if (first) {
        DenseSelect(begin, rows, sel,
                    [&](size_t base, size_t n, uint8_t* mask) {
                      const int64_t* pa = a + base;
                      // simd-guard: predicate-mask-int64-lit
                      for (size_t i = 0; i < n; ++i) {
                        mask[i] = MaskCmp3(w, (pa[i] > b) - (pa[i] < b));
                      }
                    });
      } else {
        SparseSelect(sel, [&](uint32_t i) {
          return MaskCmp3(w, (a[i] > b) - (a[i] < b));
        });
      }
    }
    return;
  }
  // int64 column vs double literal: the mixed-type numeric rule, with the
  // int lane cast to double (exactly Value::AsNumeric).
  if (lr == ColumnRep::kInt64 && rr == ColumnRep::kDouble && rcol == nullptr) {
    const int64_t* a = l.ints().data();
    const double b = lit.AsNumeric();
    if (first) {
      DenseSelect(begin, rows, sel, [&](size_t base, size_t n, uint8_t* mask) {
        const int64_t* pa = a + base;
        // Branchless but unguarded: the s64->f64 lane convert needs
        // AVX-512DQ, which the CI vectorization baseline does not assume.
        for (size_t i = 0; i < n; ++i) {
          const double x = static_cast<double>(pa[i]);
          mask[i] = MaskCmp3(w, (x > b) - (x < b));
        }
      });
    } else {
      SparseSelect(sel, [&](uint32_t i) {
        const double x = static_cast<double>(a[i]);
        return MaskCmp3(w, (x > b) - (x < b));
      });
    }
    return;
  }
  // Double column vs double column or numeric literal: Cmp3's three-way
  // outcome computed per lane (NaN lands on the cmp==0 case, exactly as
  // the row path's Cmp3 does).
  if (lr == ColumnRep::kDouble &&
      (rcol == nullptr ? NumericRep(rr) : rr == ColumnRep::kDouble)) {
    const double* a = l.doubles().data();
    if (rcol != nullptr) {
      const double* b = rcol->doubles().data();
      if (first) {
        DenseSelect(begin, rows, sel,
                    [&](size_t base, size_t n, uint8_t* mask) {
                      const double* pa = a + base;
                      const double* pb = b + base;
                      // simd-guard: predicate-mask-double-col
                      for (size_t i = 0; i < n; ++i) {
                        mask[i] = MaskCmp3(w, (pa[i] > pb[i]) - (pa[i] < pb[i]));
                      }
                    });
      } else {
        SparseSelect(sel, [&](uint32_t i) {
          return MaskCmp3(w, (a[i] > b[i]) - (a[i] < b[i]));
        });
      }
    } else {
      const double b = lit.AsNumeric();
      if (first) {
        DenseSelect(begin, rows, sel,
                    [&](size_t base, size_t n, uint8_t* mask) {
                      const double* pa = a + base;
                      // simd-guard: predicate-mask-double-lit
                      for (size_t i = 0; i < n; ++i) {
                        mask[i] = MaskCmp3(w, (pa[i] > b) - (pa[i] < b));
                      }
                    });
      } else {
        SparseSelect(sel, [&](uint32_t i) {
          return MaskCmp3(w, (a[i] > b) - (a[i] < b));
        });
      }
    }
    return;
  }
  // Remaining numeric pairs (mixed int64/double columns): numeric
  // comparison cell-at-a-time — both the mixed-type rule and the all-double
  // Value ordering reduce to Cmp3.
  if (NumericRep(lr) && NumericRep(rr)) {
    if (rcol != nullptr) {
      RunSelect(begin, rows, first, sel, [&](uint32_t i) {
        return PassOp(op, Cmp3(NumericAt(l, i), NumericAt(*rcol, i)));
      });
    } else {
      const double b = lit.AsNumeric();
      RunSelect(begin, rows, first, sel, [&](uint32_t i) {
        return PassOp(op, Cmp3(NumericAt(l, i), b));
      });
    }
    return;
  }
  // Both sides strings: plain string ordering.
  if (lr == ColumnRep::kString && rr == ColumnRep::kString) {
    const std::vector<std::string>& a = l.strings();
    if (rcol != nullptr) {
      const std::vector<std::string>& b = rcol->strings();
      RunSelect(begin, rows, first, sel, [&](uint32_t i) {
        int c = a[i].compare(b[i]);
        return PassOp(op, (c > 0) - (c < 0));
      });
    } else {
      const std::string& b = lit.as_string();
      RunSelect(begin, rows, first, sel, [&](uint32_t i) {
        int c = a[i].compare(b);
        return PassOp(op, (c > 0) - (c < 0));
      });
    }
    return;
  }
  // Mixed-rep columns or string/numeric pairs: the generic Value rules.
  RunSelect(begin, rows, first, sel, [&](uint32_t i) {
    Value lv = l.ValueAt(i);
    Value rv = rcol != nullptr ? rcol->ValueAt(i) : lit;
    return PassOp(op, CmpPredicateValues(lv, rv));
  });
}

void ApplyPredicate(const ColumnBatch& batch, const BoundPredicate& pred,
                    int lhs_pos, int rhs_pos, bool first,
                    SelectionVector* sel) {
  SelectByPredicate(batch.col(lhs_pos),
                    rhs_pos >= 0 ? &batch.col(rhs_pos) : nullptr,
                    pred.literal, pred.op, batch.rows, first, sel);
}

ColumnVector SplatColumn(const Value& v, size_t n) {
  ColumnVector out;
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.AppendValue(v);
  return out;
}

void EvalBinaryColumns(ScalarExpr::BinOp op, const ColumnVector& l,
                       const ColumnVector& r, size_t n, ColumnVector* out) {
  const ColumnRep lr = l.rep(), rr = r.rep();
  // Mixed-runtime-type columns fall back to cell-at-a-time Values — the
  // dynamic dispatch of the row path, reproduced verbatim.
  if (lr == ColumnRep::kValue || rr == ColumnRep::kValue ||
      !NumericRep(lr) || !NumericRep(rr)) {
    ColumnVector generic;
    generic.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      generic.AppendValue(EvalBinaryValue(op, l.ValueAt(i), r.ValueAt(i)));
    }
    *out = std::move(generic);
    return;
  }
  if (op == ScalarExpr::BinOp::kDiv) {
    ColumnVector res(ColumnRep::kDouble);
    std::vector<double>* d = res.mutable_doubles();
    d->resize(n);
    if (lr == ColumnRep::kDouble && rr == ColumnRep::kDouble) {
      const double* a = l.doubles().data();
      const double* b = r.doubles().data();
      double* o = d->data();
      // Not if-converted under default trapping-math (the zero-divisor
      // guard is semantic, not speculation-safe), so no simd-guard here.
      for (size_t i = 0; i < n; ++i) {
        o[i] = b[i] == 0 ? 0.0 : a[i] / b[i];
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        double b = NumericAt(r, i);
        (*d)[i] = b == 0 ? 0.0 : NumericAt(l, i) / b;
      }
    }
    *out = std::move(res);
    return;
  }
  if (lr == ColumnRep::kInt64 && rr == ColumnRep::kInt64) {
    const int64_t* a = l.ints().data();
    const int64_t* b = r.ints().data();
    ColumnVector res(ColumnRep::kInt64);
    std::vector<int64_t>* ov = res.mutable_ints();
    ov->resize(n);
    int64_t* o = ov->data();
    switch (op) {
      case ScalarExpr::BinOp::kAdd:
        // simd-guard: arith-int64-add
        for (size_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
        break;
      case ScalarExpr::BinOp::kSub:
        // simd-guard: arith-int64-sub
        for (size_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
        break;
      case ScalarExpr::BinOp::kMul:
        // simd-guard: arith-int64-mul
        for (size_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
        break;
      case ScalarExpr::BinOp::kDiv:
        break;  // handled above
    }
    *out = std::move(res);
    return;
  }
  ColumnVector res(ColumnRep::kDouble);
  std::vector<double>* ov = res.mutable_doubles();
  ov->resize(n);
  double* o = ov->data();
  if (lr == ColumnRep::kDouble && rr == ColumnRep::kDouble) {
    const double* a = l.doubles().data();
    const double* b = r.doubles().data();
    switch (op) {
      case ScalarExpr::BinOp::kAdd:
        // simd-guard: arith-double-add
        for (size_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
        break;
      case ScalarExpr::BinOp::kSub:
        // simd-guard: arith-double-sub
        for (size_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
        break;
      case ScalarExpr::BinOp::kMul:
        // simd-guard: arith-double-mul
        for (size_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
        break;
      case ScalarExpr::BinOp::kDiv:
        break;  // handled above
    }
    *out = std::move(res);
    return;
  }
  // One int64 side: cast that lane to double (Value::AsNumeric), cell-major.
  switch (op) {
    case ScalarExpr::BinOp::kAdd:
      for (size_t i = 0; i < n; ++i) o[i] = NumericAt(l, i) + NumericAt(r, i);
      break;
    case ScalarExpr::BinOp::kSub:
      for (size_t i = 0; i < n; ++i) o[i] = NumericAt(l, i) - NumericAt(r, i);
      break;
    case ScalarExpr::BinOp::kMul:
      for (size_t i = 0; i < n; ++i) o[i] = NumericAt(l, i) * NumericAt(r, i);
      break;
    case ScalarExpr::BinOp::kDiv:
      break;  // handled above
  }
  *out = std::move(res);
}

void EvalExprSchedule(const ExprSchedule& sched, const ColumnBatch& batch,
                      const std::vector<int>& step_pos,
                      EvaluatedSchedule* out) {
  const size_t nsteps = sched.steps.size();
  out->computed.clear();
  out->computed.resize(nsteps);
  out->cols.assign(nsteps, nullptr);
  for (size_t s = 0; s < nsteps; ++s) {
    const ExprStep& step = sched.steps[s];
    switch (step.kind) {
      case ScalarExpr::Kind::kColumn:
        out->cols[s] = &batch.col(step_pos[s]);
        break;
      case ScalarExpr::Kind::kLiteral:
        out->computed[s] = SplatColumn(step.literal, batch.rows);
        out->cols[s] = &out->computed[s];
        break;
      case ScalarExpr::Kind::kBinary:
        EvalBinaryColumns(step.op, *out->cols[static_cast<size_t>(step.lhs)],
                          *out->cols[static_cast<size_t>(step.rhs)],
                          batch.rows, &out->computed[s]);
        out->cols[s] = &out->computed[s];
        break;
    }
  }
}

}  // namespace scx
