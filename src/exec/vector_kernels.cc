#include "exec/vector_kernels.h"

#include <utility>

#include "common/hash.h"

namespace scx {

namespace {

bool NumericRep(ColumnRep r) {
  return r == ColumnRep::kInt64 || r == ColumnRep::kDouble;
}

/// Three-way result of BoundPredicate::Evaluate's comparison rules.
inline int Cmp3(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

inline int CmpPredicateValues(const Value& l, const Value& r) {
  if (l.type() != r.type() && !l.is_string() && !r.is_string()) {
    return Cmp3(l.AsNumeric(), r.AsNumeric());
  }
  auto c = l <=> r;
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

inline bool PassOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Runs `pass(i)` over all rows (first predicate) or over the current
/// selection, compacting it in place.
template <typename PassFn>
void RunSelect(size_t rows, bool first, SelectionVector* sel, PassFn pass) {
  if (first) {
    sel->clear();
    sel->reserve(rows);
    for (uint32_t i = 0; i < static_cast<uint32_t>(rows); ++i) {
      if (pass(i)) sel->push_back(i);
    }
    return;
  }
  size_t w = 0;
  for (uint32_t i : *sel) {
    if (pass(i)) (*sel)[w++] = i;
  }
  sel->resize(w);
}

/// Cell as double; caller guarantees a numeric rep.
inline double NumericAt(const ColumnVector& col, size_t i) {
  return col.rep() == ColumnRep::kInt64
             ? static_cast<double>(col.ints()[i])
             : col.doubles()[i];
}

/// The exact binary-operator semantics of ScalarExpr::Evaluate, on cells.
Value EvalBinaryValue(ScalarExpr::BinOp op, const Value& l, const Value& r) {
  if (op == ScalarExpr::BinOp::kDiv) {
    double d = r.AsNumeric();
    return Value::Real(d == 0 ? 0.0 : l.AsNumeric() / d);
  }
  if (l.is_int() && r.is_int()) {
    int64_t a = l.as_int(), b = r.as_int();
    switch (op) {
      case ScalarExpr::BinOp::kAdd:
        return Value::Int(a + b);
      case ScalarExpr::BinOp::kSub:
        return Value::Int(a - b);
      case ScalarExpr::BinOp::kMul:
        return Value::Int(a * b);
      case ScalarExpr::BinOp::kDiv:
        break;
    }
  }
  double a = l.AsNumeric(), b = r.AsNumeric();
  switch (op) {
    case ScalarExpr::BinOp::kAdd:
      return Value::Real(a + b);
    case ScalarExpr::BinOp::kSub:
      return Value::Real(a - b);
    case ScalarExpr::BinOp::kMul:
      return Value::Real(a * b);
    case ScalarExpr::BinOp::kDiv:
      break;
  }
  return Value::Real(0);
}

}  // namespace

void HashColumnCells(const ColumnVector& col, size_t n, uint64_t* h) {
  switch (col.rep()) {
    case ColumnRep::kInt64: {
      const int64_t* d = col.ints().data();
      for (size_t i = 0; i < n; ++i) {
        h[i] = HashCombine(h[i], Mix64(static_cast<uint64_t>(d[i])));
      }
      break;
    }
    case ColumnRep::kDouble: {
      const double* d = col.doubles().data();
      for (size_t i = 0; i < n; ++i) {
        double v = d[i];
        if (v == 0.0) v = 0.0;  // -0.0 normalization, as Value::Hash
        uint64_t bits;
        __builtin_memcpy(&bits, &v, sizeof(bits));
        h[i] = HashCombine(h[i], Mix64(bits ^ 0x5555555555555555ULL));
      }
      break;
    }
    case ColumnRep::kString: {
      const std::vector<std::string>& d = col.strings();
      for (size_t i = 0; i < n; ++i) {
        h[i] = HashCombine(h[i], Fnv1a64(d[i]));
      }
      break;
    }
    case ColumnRep::kValue: {
      const std::vector<Value>& d = col.values();
      for (size_t i = 0; i < n; ++i) {
        h[i] = HashCombine(h[i], d[i].Hash());
      }
      break;
    }
  }
}

void HashColumns(const ColumnBatch& batch, const std::vector<int>& positions,
                 std::vector<uint64_t>* hashes) {
  hashes->assign(batch.rows, kRowKeySeed);
  for (int pos : positions) {
    HashColumnCells(batch.col(pos), batch.rows, hashes->data());
  }
}

bool PredicatePassCells(CompareOp op, const Value& l, const Value& r) {
  return PassOp(op, CmpPredicateValues(l, r));
}

void SelectByPredicate(const ColumnVector& lhs, const ColumnVector* rhs,
                       const Value& literal, CompareOp op, size_t rows,
                       bool first, SelectionVector* sel) {
  const ColumnVector& l = lhs;
  const ColumnVector* rcol = rhs;
  const Value& lit = literal;
  const ColumnRep lr = l.rep();
  const ColumnRep rr = rcol != nullptr
                           ? rcol->rep()
                           : (lit.is_int() ? ColumnRep::kInt64
                              : lit.is_double() ? ColumnRep::kDouble
                                                : ColumnRep::kString);

  // Both sides int64: the canonical integer ordering.
  if (lr == ColumnRep::kInt64 && rr == ColumnRep::kInt64) {
    const int64_t* a = l.ints().data();
    if (rcol != nullptr) {
      const int64_t* b = rcol->ints().data();
      RunSelect(rows, first, sel, [&](uint32_t i) {
        return PassOp(op, (a[i] > b[i]) - (a[i] < b[i]));
      });
    } else {
      const int64_t b = lit.as_int();
      RunSelect(rows, first, sel, [&](uint32_t i) {
        return PassOp(op, (a[i] > b) - (a[i] < b));
      });
    }
    return;
  }
  // Numeric pair with at least one double: numeric comparison (both the
  // mixed-type rule and the all-double Value ordering reduce to Cmp3).
  if (NumericRep(lr) && NumericRep(rr)) {
    if (rcol != nullptr) {
      RunSelect(rows, first, sel, [&](uint32_t i) {
        return PassOp(op, Cmp3(NumericAt(l, i), NumericAt(*rcol, i)));
      });
    } else {
      const double b = lit.AsNumeric();
      RunSelect(rows, first, sel, [&](uint32_t i) {
        return PassOp(op, Cmp3(NumericAt(l, i), b));
      });
    }
    return;
  }
  // Both sides strings: plain string ordering.
  if (lr == ColumnRep::kString && rr == ColumnRep::kString) {
    const std::vector<std::string>& a = l.strings();
    if (rcol != nullptr) {
      const std::vector<std::string>& b = rcol->strings();
      RunSelect(rows, first, sel, [&](uint32_t i) {
        int c = a[i].compare(b[i]);
        return PassOp(op, (c > 0) - (c < 0));
      });
    } else {
      const std::string& b = lit.as_string();
      RunSelect(rows, first, sel, [&](uint32_t i) {
        int c = a[i].compare(b);
        return PassOp(op, (c > 0) - (c < 0));
      });
    }
    return;
  }
  // Mixed-rep columns or string/numeric pairs: the generic Value rules.
  RunSelect(rows, first, sel, [&](uint32_t i) {
    Value lv = l.ValueAt(i);
    Value rv = rcol != nullptr ? rcol->ValueAt(i) : lit;
    return PassOp(op, CmpPredicateValues(lv, rv));
  });
}

void ApplyPredicate(const ColumnBatch& batch, const BoundPredicate& pred,
                    int lhs_pos, int rhs_pos, bool first,
                    SelectionVector* sel) {
  SelectByPredicate(batch.col(lhs_pos),
                    rhs_pos >= 0 ? &batch.col(rhs_pos) : nullptr,
                    pred.literal, pred.op, batch.rows, first, sel);
}

ColumnVector SplatColumn(const Value& v, size_t n) {
  ColumnVector out;
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.AppendValue(v);
  return out;
}

void EvalBinaryColumns(ScalarExpr::BinOp op, const ColumnVector& l,
                       const ColumnVector& r, size_t n, ColumnVector* out) {
  const ColumnRep lr = l.rep(), rr = r.rep();
  // Mixed-runtime-type columns fall back to cell-at-a-time Values — the
  // dynamic dispatch of the row path, reproduced verbatim.
  if (lr == ColumnRep::kValue || rr == ColumnRep::kValue ||
      !NumericRep(lr) || !NumericRep(rr)) {
    ColumnVector generic;
    generic.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      generic.AppendValue(EvalBinaryValue(op, l.ValueAt(i), r.ValueAt(i)));
    }
    *out = std::move(generic);
    return;
  }
  if (op == ScalarExpr::BinOp::kDiv) {
    ColumnVector res(ColumnRep::kDouble);
    std::vector<double>* d = res.mutable_doubles();
    d->resize(n);
    for (size_t i = 0; i < n; ++i) {
      double b = NumericAt(r, i);
      (*d)[i] = b == 0 ? 0.0 : NumericAt(l, i) / b;
    }
    *out = std::move(res);
    return;
  }
  if (lr == ColumnRep::kInt64 && rr == ColumnRep::kInt64) {
    const int64_t* a = l.ints().data();
    const int64_t* b = r.ints().data();
    ColumnVector res(ColumnRep::kInt64);
    std::vector<int64_t>* o = res.mutable_ints();
    o->resize(n);
    switch (op) {
      case ScalarExpr::BinOp::kAdd:
        for (size_t i = 0; i < n; ++i) (*o)[i] = a[i] + b[i];
        break;
      case ScalarExpr::BinOp::kSub:
        for (size_t i = 0; i < n; ++i) (*o)[i] = a[i] - b[i];
        break;
      case ScalarExpr::BinOp::kMul:
        for (size_t i = 0; i < n; ++i) (*o)[i] = a[i] * b[i];
        break;
      case ScalarExpr::BinOp::kDiv:
        break;  // handled above
    }
    *out = std::move(res);
    return;
  }
  ColumnVector res(ColumnRep::kDouble);
  std::vector<double>* o = res.mutable_doubles();
  o->resize(n);
  switch (op) {
    case ScalarExpr::BinOp::kAdd:
      for (size_t i = 0; i < n; ++i) (*o)[i] = NumericAt(l, i) + NumericAt(r, i);
      break;
    case ScalarExpr::BinOp::kSub:
      for (size_t i = 0; i < n; ++i) (*o)[i] = NumericAt(l, i) - NumericAt(r, i);
      break;
    case ScalarExpr::BinOp::kMul:
      for (size_t i = 0; i < n; ++i) (*o)[i] = NumericAt(l, i) * NumericAt(r, i);
      break;
    case ScalarExpr::BinOp::kDiv:
      break;  // handled above
  }
  *out = std::move(res);
}

void EvalExprSchedule(const ExprSchedule& sched, const ColumnBatch& batch,
                      const std::vector<int>& step_pos,
                      EvaluatedSchedule* out) {
  const size_t nsteps = sched.steps.size();
  out->computed.clear();
  out->computed.resize(nsteps);
  out->cols.assign(nsteps, nullptr);
  for (size_t s = 0; s < nsteps; ++s) {
    const ExprStep& step = sched.steps[s];
    switch (step.kind) {
      case ScalarExpr::Kind::kColumn:
        out->cols[s] = &batch.col(step_pos[s]);
        break;
      case ScalarExpr::Kind::kLiteral:
        out->computed[s] = SplatColumn(step.literal, batch.rows);
        out->cols[s] = &out->computed[s];
        break;
      case ScalarExpr::Kind::kBinary:
        EvalBinaryColumns(step.op, *out->cols[static_cast<size_t>(step.lhs)],
                          *out->cols[static_cast<size_t>(step.rhs)],
                          batch.rows, &out->computed[s]);
        out->cols[s] = &out->computed[s];
        break;
    }
  }
}

}  // namespace scx
