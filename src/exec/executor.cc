#include "exec/executor.h"

#include <algorithm>
#include <iterator>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "exec/row_key_table.h"
#include "exec/vector_kernels.h"
#include "plan/expr_cse.h"

namespace scx {

int64_t PartitionedData::TotalRows() const {
  int64_t n = 0;
  for (const auto& p : partitions) n += static_cast<int64_t>(p.size());
  return n;
}

int64_t PartitionedData::TotalBytes() const {
  int64_t n = 0;
  for (const auto& p : partitions) {
    for (const Row& r : p) {
      for (const Value& v : r) n += v.ByteWidth();
    }
  }
  return n;
}

std::vector<Row> PartitionedData::Gathered() const {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(TotalRows()));
  for (const auto& p : partitions) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Row> PartitionedData::TakeGathered() {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(TotalRows()));
  for (auto& p : partitions) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
    p.clear();
  }
  return out;
}

std::vector<Row> CanonicalRows(const std::vector<Row>& rows) {
  std::vector<Row> out;
  out.reserve(rows.size());
  out.insert(out.end(), rows.begin(), rows.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Row> CanonicalRows(std::vector<Row>&& rows) {
  std::sort(rows.begin(), rows.end());
  return std::move(rows);
}

std::map<std::string, std::vector<Row>> CanonicalOutputs(
    const ExecMetrics& m) {
  std::map<std::string, std::vector<Row>> out;
  for (const auto& [path, rows] : m.outputs) {
    out.emplace(path, CanonicalRows(rows));
  }
  return out;
}

bool SameOutputs(const ExecMetrics& a, const ExecMetrics& b) {
  return CanonicalOutputs(a) == CanonicalOutputs(b);
}

std::string ExecMetricsToJson(const ExecMetrics& m) {
  std::ostringstream os;
  os << "{\"rows_extracted\":" << m.rows_extracted
     << ",\"rows_shuffled\":" << m.rows_shuffled
     << ",\"bytes_shuffled\":" << m.bytes_shuffled
     << ",\"bytes_spooled\":" << m.bytes_spooled
     << ",\"rows_spooled\":" << m.rows_spooled
     << ",\"spool_executions\":" << m.spool_executions
     << ",\"spool_reads\":" << m.spool_reads
     << ",\"spool_cache_hits\":" << m.spool_cache_hits
     << ",\"operator_invocations\":" << m.operator_invocations
     << ",\"rows_output\":" << m.rows_output
     << ",\"batches_evaluated\":" << m.batches_evaluated
     << ",\"exprs_deduped\":" << m.exprs_deduped << "}";
  return os.str();
}

namespace {

/// Sorts rows in place by the given column positions (all ascending).
void SortRows(std::vector<Row>* rows, const std::vector<int>& positions) {
  std::sort(rows->begin(), rows->end(), [&](const Row& a, const Row& b) {
    for (int p : positions) {
      auto c = a[static_cast<size_t>(p)] <=> b[static_cast<size_t>(p)];
      if (c != 0) return c < 0;
    }
    return false;
  });
}

/// Deterministic synthetic cell value for (file, column, row).
Value SyntheticValue(const FileDef& file, int col_index, int64_t row_index) {
  const ColumnStats& cs = file.columns[static_cast<size_t>(col_index)];
  uint64_t h = Mix64(file.data_seed ^
                     (static_cast<uint64_t>(col_index) + 1) *
                         0x9e3779b97f4a7c15ULL ^
                     static_cast<uint64_t>(row_index));
  uint64_t domain = static_cast<uint64_t>(std::max<int64_t>(1, cs.distinct_count));
  uint64_t k = h % domain;
  switch (cs.type) {
    case DataType::kInt64:
      return Value::Int(static_cast<int64_t>(k) + 1);
    case DataType::kDouble:
      return Value::Real(static_cast<double>(k) * 0.5);
    case DataType::kString:
      return Value::Str("v" + std::to_string(k));
  }
  return Value::Int(0);
}

/// Running state for one aggregate over one group.
struct AggState {
  double dsum = 0;
  int64_t isum = 0;
  int64_t count = 0;
  Value minv;
  Value maxv;
  bool seen = false;
};

/// Total column batches needed to process every partition of `d`.
int64_t CountBatches(const PartitionedData& d, size_t batch_size) {
  int64_t n = 0;
  for (const auto& p : d.partitions) n += NumBatches(p.size(), batch_size);
  return n;
}

/// Cell as double with ScalarExpr/Value::AsNumeric semantics (typed fast
/// paths; the kValue fallback aborts on strings exactly like the row path).
inline double NumericCell(const ColumnVector& col, size_t r) {
  switch (col.rep()) {
    case ColumnRep::kInt64:
      return static_cast<double>(col.ints()[r]);
    case ColumnRep::kDouble:
      return col.doubles()[r];
    default:
      return col.ValueAt(r).AsNumeric();
  }
}

/// Column-major aggregate update: folds one whole argument column into the
/// per-group states of aggregate `agg_index`. `ids[r]` is row r's dense
/// group id. Per (group, aggregate) pair the update order is the batch's
/// row order — exactly the row-at-a-time loop's order, so every partial
/// (including float sums) is bit-identical to the legacy path.
void UpdateAggColumnar(const AggregateDesc& a, bool global,
                       const ColumnVector* arg, const ColumnVector* hidden,
                       const std::vector<size_t>& ids, size_t naggs,
                       size_t agg_index, std::vector<AggState>* states) {
  const size_t n = ids.size();
  auto state = [&](size_t r) -> AggState& {
    return (*states)[ids[r] * naggs + agg_index];
  };
  switch (a.fn) {
    case AggFn::kSum:
      // Same in the merge (global) and raw-row cases: partial sums were
      // rewritten to kSum by the split rule.
      switch (arg->rep()) {
        case ColumnRep::kInt64: {
          const int64_t* v = arg->ints().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += v[r];
            s.seen = true;
          }
          break;
        }
        case ColumnRep::kDouble: {
          const double* v = arg->doubles().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.dsum += v[r];
            s.seen = true;
          }
          break;
        }
        default:
          for (size_t r = 0; r < n; ++r) {
            Value v = arg->ValueAt(r);
            AggState& s = state(r);
            if (v.is_int()) {
              s.isum += v.as_int();
            } else {
              s.dsum += v.AsNumeric();
            }
            s.seen = true;
          }
          break;
      }
      break;
    case AggFn::kCount:
      if (global) {
        // Merging partial counts: sum the int column.
        if (arg->rep() == ColumnRep::kInt64) {
          const int64_t* v = arg->ints().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += v[r];
            s.seen = true;
          }
        } else {
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += arg->ValueAt(r).as_int();
            s.seen = true;
          }
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          AggState& s = state(r);
          ++s.count;
          s.seen = true;
        }
      }
      break;
    case AggFn::kMin:
      for (size_t r = 0; r < n; ++r) {
        Value v = arg->ValueAt(r);
        AggState& s = state(r);
        if (!s.seen || v < s.minv) s.minv = v;
        s.seen = true;
      }
      break;
    case AggFn::kMax:
      for (size_t r = 0; r < n; ++r) {
        Value v = arg->ValueAt(r);
        AggState& s = state(r);
        if (!s.seen || v > s.maxv) s.maxv = v;
        s.seen = true;
      }
      break;
    case AggFn::kAvg:
      for (size_t r = 0; r < n; ++r) {
        AggState& s = state(r);
        s.dsum += NumericCell(*arg, r);
        if (global) {
          s.count += hidden->rep() == ColumnRep::kInt64
                         ? hidden->ints()[r]
                         : hidden->ValueAt(r).as_int();
        } else {
          ++s.count;
        }
        s.seen = true;
      }
      break;
  }
}

}  // namespace

void Executor::RunPartitions(size_t n, const std::function<void(size_t)>& fn) {
  if (threads_ <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<WorkerPool>(threads_);
  pool_->Run(n, fn);
}

template <typename DestFillFn>
PartitionedData Executor::ScatterByDest(PartitionedData in,
                                        DestFillFn dest_fill) {
  size_t machines = static_cast<size_t>(cluster_.machines);
  size_t nsrc = in.partitions.size();
  // Phase 1: each source partition moves its rows into per-destination
  // buffers with exact reserved capacity.
  std::vector<std::vector<std::vector<Row>>> buckets(nsrc);
  RunPartitions(nsrc, [&](size_t s) {
    std::vector<Row>& rows = in.partitions[s];
    std::vector<uint32_t> dest(rows.size());
    dest_fill(rows, &dest);
    std::vector<size_t> count(machines, 0);
    for (size_t i = 0; i < rows.size(); ++i) ++count[dest[i]];
    std::vector<std::vector<Row>>& b = buckets[s];
    b.resize(machines);
    for (size_t d = 0; d < machines; ++d) b[d].reserve(count[d]);
    for (size_t i = 0; i < rows.size(); ++i) {
      b[dest[i]].push_back(std::move(rows[i]));
    }
  });
  // Phase 2: each destination concatenates its buffers source-major —
  // exactly the row order the serial per-row push_back loop produced.
  PartitionedData out;
  out.schema = std::move(in.schema);
  out.partitions.resize(machines);
  RunPartitions(machines, [&](size_t d) {
    size_t total = 0;
    for (size_t s = 0; s < nsrc; ++s) total += buckets[s][d].size();
    std::vector<Row>& sink = out.partitions[d];
    sink.reserve(total);
    for (size_t s = 0; s < nsrc; ++s) {
      sink.insert(sink.end(), std::make_move_iterator(buckets[s][d].begin()),
                  std::make_move_iterator(buckets[s][d].end()));
    }
  });
  return out;
}

Result<ExecMetrics> Executor::Execute(const PhysicalNodePtr& plan) {
  ExecMetrics metrics;
  spool_cache_.clear();
  SCX_ASSIGN_OR_RETURN(PartitionedData ignored, Eval(plan, &metrics));
  (void)ignored;
  return metrics;
}

Result<PartitionedData> Executor::Eval(const PhysicalNodePtr& node,
                                       ExecMetrics* metrics) {
  ++metrics->operator_invocations;
  switch (node->kind) {
    case PhysicalOpKind::kExtract:
      return EvalExtract(*node, metrics);

    case PhysicalOpKind::kFilter: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = in.schema;
      out.partitions.resize(in.partitions.size());
      const std::vector<BoundPredicate>& preds = node->proto->predicates;
      if (batch_size_ > 1 && !preds.empty()) {
        // Batched path: evaluate each predicate over whole columns,
        // narrowing one selection vector, then move the surviving rows in
        // selection (= row) order — the exact legacy result set and order.
        const size_t nschema = in.schema.columns().size();
        std::vector<std::pair<int, int>> ppos;  // lhs/rhs schema positions
        std::vector<int> wanted;
        for (const BoundPredicate& pred : preds) {
          int lhs = in.schema.PositionOf(pred.lhs);
          int rhs = pred.rhs_is_column ? in.schema.PositionOf(pred.rhs) : -1;
          ppos.emplace_back(lhs, rhs);
          wanted.push_back(lhs);
          if (rhs >= 0) wanted.push_back(rhs);
        }
        metrics->batches_evaluated += CountBatches(in, batch_size_);
        RunPartitions(in.partitions.size(), [&](size_t p) {
          std::vector<Row>& rows = in.partitions[p];
          std::vector<Row>& sink = out.partitions[p];
          SelectionVector sel;
          for (size_t begin = 0; begin < rows.size(); begin += batch_size_) {
            size_t end = std::min(rows.size(), begin + batch_size_);
            ColumnBatch batch = BatchFromRows(rows, begin, end, nschema,
                                              wanted);
            bool first = true;
            for (size_t k = 0; k < preds.size(); ++k) {
              ApplyPredicate(batch, preds[k], ppos[k].first, ppos[k].second,
                             first, &sel);
              first = false;
              if (sel.empty()) break;
            }
            for (uint32_t i : sel) sink.push_back(std::move(rows[begin + i]));
          }
        });
        return out;
      }
      RunPartitions(in.partitions.size(), [&](size_t p) {
        for (Row& r : in.partitions[p]) {
          bool pass = true;
          for (const BoundPredicate& pred : preds) {
            if (!pred.Evaluate(r, in.schema)) {
              pass = false;
              break;
            }
          }
          if (pass) out.partitions[p].push_back(std::move(r));
        }
      });
      return out;
    }

    case PhysicalOpKind::kProject: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(in.partitions.size());
      std::vector<int> positions;
      for (const auto& [src, dst] : node->proto->project_map) {
        (void)dst;
        positions.push_back(in.schema.PositionOf(src));
      }
      if (batch_size_ > 1) {
        // Batched path: materialize the projected columns once per chunk
        // and re-emit rows from them (duplicate source positions share one
        // materialized column).
        const size_t nschema = in.schema.columns().size();
        metrics->batches_evaluated += CountBatches(in, batch_size_);
        RunPartitions(in.partitions.size(), [&](size_t p) {
          const std::vector<Row>& rows = in.partitions[p];
          out.partitions[p].reserve(rows.size());
          std::vector<const ColumnVector*> cols(positions.size());
          for (size_t begin = 0; begin < rows.size(); begin += batch_size_) {
            size_t end = std::min(rows.size(), begin + batch_size_);
            ColumnBatch batch = BatchFromRows(rows, begin, end, nschema,
                                              positions);
            for (size_t j = 0; j < positions.size(); ++j) {
              cols[j] = &batch.col(positions[j]);
            }
            AppendRowsFromColumns(cols, batch.rows, &out.partitions[p]);
          }
        });
        return out;
      }
      RunPartitions(in.partitions.size(), [&](size_t p) {
        out.partitions[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          Row projected;
          projected.reserve(positions.size());
          for (int pos : positions) {
            projected.push_back(r[static_cast<size_t>(pos)]);
          }
          out.partitions[p].push_back(std::move(projected));
        }
      });
      return out;
    }

    case PhysicalOpKind::kCompute: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(in.partitions.size());
      const auto& items = node->proto->compute_items;
      if (batch_size_ > 1) {
        // Batched path with expression-level CSE: lower the stage's items
        // into a shared-slot schedule once, then evaluate each step over
        // whole columns — duplicate subtrees compute once per batch.
        ExprSchedule sched = BuildExprSchedule(items);
        const size_t nschema = in.schema.columns().size();
        std::vector<int> step_pos(sched.steps.size(), -1);
        std::vector<int> wanted;
        for (size_t s = 0; s < sched.steps.size(); ++s) {
          if (sched.steps[s].kind == ScalarExpr::Kind::kColumn) {
            step_pos[s] = in.schema.PositionOf(sched.steps[s].column);
            wanted.push_back(step_pos[s]);
          }
        }
        metrics->exprs_deduped += sched.duplicates_eliminated;
        metrics->batches_evaluated += CountBatches(in, batch_size_);
        RunPartitions(in.partitions.size(), [&](size_t p) {
          const std::vector<Row>& rows = in.partitions[p];
          out.partitions[p].reserve(rows.size());
          EvaluatedSchedule ev;
          std::vector<const ColumnVector*> cols(sched.item_steps.size());
          for (size_t begin = 0; begin < rows.size(); begin += batch_size_) {
            size_t end = std::min(rows.size(), begin + batch_size_);
            ColumnBatch batch = BatchFromRows(rows, begin, end, nschema,
                                              wanted);
            EvalExprSchedule(sched, batch, step_pos, &ev);
            for (size_t j = 0; j < sched.item_steps.size(); ++j) {
              cols[j] = ev.cols[static_cast<size_t>(sched.item_steps[j])];
            }
            AppendRowsFromColumns(cols, batch.rows, &out.partitions[p]);
          }
        });
        return out;
      }
      RunPartitions(in.partitions.size(), [&](size_t p) {
        out.partitions[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          Row computed;
          computed.reserve(items.size());
          for (const ComputeItem& item : items) {
            computed.push_back(item.expr->Evaluate(r, in.schema));
          }
          out.partitions[p].push_back(std::move(computed));
        }
      });
      return out;
    }

    case PhysicalOpKind::kHashAgg:
    case PhysicalOpKind::kStreamAgg: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return EvalAggregate(*node, std::move(in), metrics);
    }

    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin: {
      SCX_ASSIGN_OR_RETURN(PartitionedData l, Eval(node->children[0], metrics));
      SCX_ASSIGN_OR_RETURN(PartitionedData r, Eval(node->children[1], metrics));
      return EvalJoin(*node, std::move(l), std::move(r), metrics);
    }

    case PhysicalOpKind::kUnionAll: {
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      for (const PhysicalNodePtr& child : node->children) {
        SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(child, metrics));
        for (size_t p = 0; p < in.partitions.size(); ++p) {
          size_t dest = p % out.partitions.size();
          auto& sink = out.partitions[dest];
          sink.insert(sink.end(),
                      std::make_move_iterator(in.partitions[p].begin()),
                      std::make_move_iterator(in.partitions[p].end()));
        }
      }
      return out;
    }

    case PhysicalOpKind::kSpool: {
      auto it = spool_cache_.find(node.get());
      if (it != spool_cache_.end()) {
        ++metrics->spool_reads;
        ++metrics->spool_cache_hits;
        return it->second;
      }
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      metrics->bytes_spooled += in.TotalBytes();
      metrics->rows_spooled += in.TotalRows();
      ++metrics->spool_executions;
      ++metrics->spool_reads;
      spool_cache_[node.get()] = in;
      return in;
    }

    case PhysicalOpKind::kSpoolScan:
      // Rejected by ValidatePlan before execution; kept only so the
      // operator switch stays exhaustive.
      break;

    case PhysicalOpKind::kOutput: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      // Output is terminal — a Sequence child or the plan root — so its
      // data is never read again; move the rows into the sink.
      size_t machines = in.partitions.size();
      std::vector<Row> rows = in.TakeGathered();
      metrics->rows_output += static_cast<int64_t>(rows.size());
      auto& sink = metrics->outputs[node->proto->output_path];
      sink.insert(sink.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
      PartitionedData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(machines);
      return out;
    }

    case PhysicalOpKind::kSequence: {
      for (const PhysicalNodePtr& c : node->children) {
        SCX_ASSIGN_OR_RETURN(PartitionedData ignored, Eval(c, metrics));
        (void)ignored;
      }
      PartitionedData out;
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      return out;
    }

    case PhysicalOpKind::kHashExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return Exchange(*node, std::move(in), metrics, /*preserve_order=*/false);
    }
    case PhysicalOpKind::kMergeExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return Exchange(*node, std::move(in), metrics, /*preserve_order=*/true);
    }

    case PhysicalOpKind::kRangeExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      std::vector<int> positions = in.schema.PositionsOf(
          node->delivered.partitioning.range_cols);
      // Boundary computation by exact quantiles over the key multiset —
      // the simulation stand-in for SCOPE's sampling pass.
      std::vector<std::vector<std::vector<Value>>> part_keys(
          in.partitions.size());
      RunPartitions(in.partitions.size(), [&](size_t p) {
        part_keys[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          std::vector<Value> key;
          key.reserve(positions.size());
          for (int pos : positions) key.push_back(r[static_cast<size_t>(pos)]);
          part_keys[p].push_back(std::move(key));
        }
      });
      std::vector<std::vector<Value>> keys;
      keys.reserve(static_cast<size_t>(in.TotalRows()));
      for (auto& pk : part_keys) {
        keys.insert(keys.end(), std::make_move_iterator(pk.begin()),
                    std::make_move_iterator(pk.end()));
      }
      std::sort(keys.begin(), keys.end());
      std::vector<std::vector<Value>> boundaries;
      for (size_t i = 1; i < machines && !keys.empty(); ++i) {
        boundaries.push_back(keys[i * keys.size() / machines]);
      }
      metrics->bytes_shuffled += in.TotalBytes();
      metrics->rows_shuffled += in.TotalRows();
      return ScatterByDest(
          std::move(in),
          [&](const std::vector<Row>& rows, std::vector<uint32_t>* dest) {
            for (size_t i = 0; i < rows.size(); ++i) {
              std::vector<Value> key;
              key.reserve(positions.size());
              for (int pos : positions) {
                key.push_back(rows[i][static_cast<size_t>(pos)]);
              }
              (*dest)[i] = static_cast<uint32_t>(
                  std::upper_bound(boundaries.begin(), boundaries.end(),
                                   key) -
                  boundaries.begin());
            }
          });
    }

    case PhysicalOpKind::kBroadcastExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      metrics->bytes_shuffled +=
          in.TotalBytes() * static_cast<int64_t>(machines);
      metrics->rows_shuffled +=
          in.TotalRows() * static_cast<int64_t>(machines);
      std::vector<Row> all = in.TakeGathered();
      PartitionedData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(machines);
      RunPartitions(machines - 1, [&](size_t m) {
        out.partitions[m] = all;
      });
      out.partitions[machines - 1] = std::move(all);
      return out;
    }

    case PhysicalOpKind::kGather: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      metrics->bytes_shuffled += in.TotalBytes();
      metrics->rows_shuffled += in.TotalRows();
      PartitionedData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(1);
      out.partitions[0] = in.TakeGathered();
      if (!node->delivered.sort.Empty()) {
        SortRows(&out.partitions[0],
                 out.schema.PositionsOf(node->delivered.sort.cols));
      }
      return out;
    }

    case PhysicalOpKind::kSort: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      std::vector<int> positions =
          in.schema.PositionsOf(node->sort_spec.cols);
      RunPartitions(in.partitions.size(),
                    [&](size_t p) { SortRows(&in.partitions[p], positions); });
      return in;
    }
  }
  return Status::Internal("unhandled physical operator " +
                          std::string(PhysicalOpKindName(node->kind)));
}

Result<PartitionedData> Executor::EvalExtract(const PhysicalNode& node,
                                              ExecMetrics* metrics) {
  const FileDef& file = node.proto->file;
  PartitionedData out;
  out.schema = node.proto->schema();
  size_t machines = static_cast<size_t>(cluster_.machines);
  out.partitions.resize(machines);

  std::vector<int> file_cols;
  for (const ColumnInfo& c : out.schema.columns()) {
    int idx = file.ColumnIndex(c.name);
    if (idx < 0) {
      return Status::ExecutionError("extract column " + c.name +
                                    " missing from file " + file.path);
    }
    file_cols.push_back(idx);
  }
  // Row i lands on machine i % machines, so machine m independently
  // synthesizes rows m, m + machines, ... — the same per-partition row
  // order as the serial round-robin loop.
  int64_t rows = file.row_count;
  RunPartitions(machines, [&](size_t m) {
    std::vector<Row>& part = out.partitions[m];
    if (static_cast<int64_t>(m) >= rows) return;
    part.reserve(static_cast<size_t>(
        (rows - static_cast<int64_t>(m) + static_cast<int64_t>(machines) - 1) /
        static_cast<int64_t>(machines)));
    for (int64_t i = static_cast<int64_t>(m); i < rows;
         i += static_cast<int64_t>(machines)) {
      Row row;
      row.reserve(file_cols.size());
      for (int idx : file_cols) {
        row.push_back(SyntheticValue(file, idx, i));
      }
      part.push_back(std::move(row));
    }
  });
  metrics->rows_extracted += rows;
  return out;
}

Result<PartitionedData> Executor::EvalAggregate(const PhysicalNode& node,
                                                PartitionedData in,
                                                ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  const bool local = proto.kind() == LogicalOpKind::kLocalGbAgg;
  const bool global = proto.kind() == LogicalOpKind::kGlobalGbAgg;

  std::vector<int> group_pos = in.schema.PositionsOf(proto.group_cols);
  struct AggIo {
    int arg_pos = -1;
    int hidden_pos = -1;  // global-Avg partial-count input
  };
  const size_t naggs = proto.aggregates.size();
  std::vector<AggIo> io(naggs);
  for (size_t i = 0; i < naggs; ++i) {
    const AggregateDesc& a = proto.aggregates[i];
    if (!a.count_star) io[i].arg_pos = in.schema.PositionOf(a.arg);
    if (global && a.fn == AggFn::kAvg && a.hidden_count != 0) {
      io[i].hidden_pos = in.schema.PositionOf(a.hidden_count);
    }
  }

  PartitionedData out;
  out.schema = proto.schema();
  out.partitions.resize(in.partitions.size());

  const bool batched = batch_size_ > 1;
  const size_t nschema = in.schema.columns().size();
  std::vector<int> wanted;
  if (batched) {
    wanted = group_pos;
    for (const AggIo& w : io) {
      if (w.arg_pos >= 0) wanted.push_back(w.arg_pos);
      if (w.hidden_pos >= 0) wanted.push_back(w.hidden_pos);
    }
    metrics->batches_evaluated += CountBatches(in, batch_size_);
  }

  RunPartitions(in.partitions.size(), [&](size_t p) {
    const std::vector<Row>& rows = in.partitions[p];
    // Pre-sized for the worst case (all keys distinct): no rehash ever.
    RowKeyTable table(rows.size());
    std::vector<AggState> states;  // naggs states per group, group-major
    if (batched) {
      // Batched path: hash whole key columns per chunk, assign dense group
      // ids row by row (the legacy insertion order), then fold each
      // aggregate's argument column group-wise. Update order per
      // (group, aggregate) is the batch row order, so every partial is
      // bit-identical to the row loop's.
      std::vector<uint64_t> hashes;
      std::vector<size_t> ids;
      for (size_t begin = 0; begin < rows.size(); begin += batch_size_) {
        size_t end = std::min(rows.size(), begin + batch_size_);
        ColumnBatch batch = BatchFromRows(rows, begin, end, nschema, wanted);
        HashColumns(batch, group_pos, &hashes);
        ids.resize(batch.rows);
        for (size_t r = 0; r < batch.rows; ++r) {
          auto [id, inserted] = table.FindOrInsertHashed(
              hashes[r],
              [&](const Row& key) {
                for (size_t j = 0; j < group_pos.size(); ++j) {
                  if (!batch.col(group_pos[j]).CellEquals(r, key[j])) {
                    return false;
                  }
                }
                return true;
              },
              [&] {
                Row key;
                key.reserve(group_pos.size());
                for (int gp : group_pos) {
                  key.push_back(batch.col(gp).ValueAt(r));
                }
                return key;
              });
          if (inserted) states.resize(states.size() + naggs);
          ids[r] = id;
        }
        for (size_t i = 0; i < naggs; ++i) {
          const ColumnVector* arg =
              io[i].arg_pos >= 0 ? &batch.col(io[i].arg_pos) : nullptr;
          const ColumnVector* hidden =
              io[i].hidden_pos >= 0 ? &batch.col(io[i].hidden_pos) : nullptr;
          UpdateAggColumnar(proto.aggregates[i], global, arg, hidden, ids,
                            naggs, i, &states);
        }
      }
    } else {
    for (const Row& r : rows) {
      auto [id, inserted] = table.FindOrInsert(r, group_pos);
      if (inserted) states.resize(states.size() + naggs);
      AggState* group_states = &states[id * naggs];
      for (size_t i = 0; i < naggs; ++i) {
        const AggregateDesc& a = proto.aggregates[i];
        AggState& s = group_states[i];
        if (global) {
          // Merge partial states: Sum/Count partials are summed (fn was
          // rewritten to kSum by the split rule); Min/Max fold; Avg sums
          // the partial sums and the partial counts.
          const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
          switch (a.fn) {
            case AggFn::kSum:
              if (v.is_int()) {
                s.isum += v.as_int();
              } else {
                s.dsum += v.AsNumeric();
              }
              break;
            case AggFn::kMin:
              if (!s.seen || v < s.minv) s.minv = v;
              break;
            case AggFn::kMax:
              if (!s.seen || v > s.maxv) s.maxv = v;
              break;
            case AggFn::kAvg: {
              s.dsum += v.AsNumeric();
              s.count +=
                  r[static_cast<size_t>(io[i].hidden_pos)].as_int();
              break;
            }
            case AggFn::kCount:
              s.isum += v.as_int();
              break;
          }
          s.seen = true;
          continue;
        }
        // Full or local aggregation over raw rows.
        switch (a.fn) {
          case AggFn::kSum: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (v.is_int()) {
              s.isum += v.as_int();
            } else {
              s.dsum += v.AsNumeric();
            }
            break;
          }
          case AggFn::kCount:
            ++s.count;
            break;
          case AggFn::kMin: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (!s.seen || v < s.minv) s.minv = v;
            break;
          }
          case AggFn::kMax: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (!s.seen || v > s.maxv) s.maxv = v;
            break;
          }
          case AggFn::kAvg: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            s.dsum += v.AsNumeric();
            ++s.count;
            break;
          }
        }
        s.seen = true;
      }
    }
    }  // legacy row path

    out.partitions[p].reserve(table.size());
    for (size_t id = 0; id < table.size(); ++id) {
      Row row = table.KeyAt(id);
      const AggState* group_states = &states[id * naggs];
      for (size_t i = 0; i < naggs; ++i) {
        const AggregateDesc& a = proto.aggregates[i];
        const AggState& s = group_states[i];
        if (global) {
          switch (a.fn) {
            case AggFn::kSum:
            case AggFn::kCount:
              if (a.out_type == DataType::kDouble) {
                row.push_back(Value::Real(s.dsum));
              } else {
                row.push_back(Value::Int(s.isum));
              }
              break;
            case AggFn::kMin:
              row.push_back(s.minv);
              break;
            case AggFn::kMax:
              row.push_back(s.maxv);
              break;
            case AggFn::kAvg:
              row.push_back(Value::Real(
                  s.count > 0 ? s.dsum / static_cast<double>(s.count) : 0));
              break;
          }
          continue;
        }
        switch (a.fn) {
          case AggFn::kSum:
            if (a.out_type == DataType::kDouble) {
              row.push_back(Value::Real(s.dsum));
            } else {
              row.push_back(Value::Int(s.isum));
            }
            break;
          case AggFn::kCount:
            row.push_back(Value::Int(s.count));
            break;
          case AggFn::kMin:
            row.push_back(s.minv);
            break;
          case AggFn::kMax:
            row.push_back(s.maxv);
            break;
          case AggFn::kAvg:
            if (local) {
              row.push_back(Value::Real(s.dsum));  // partial sum (out)
            } else {
              row.push_back(Value::Real(
                  s.count > 0 ? s.dsum / static_cast<double>(s.count) : 0));
            }
            break;
        }
        if (local && a.hidden_count != 0) {
          row.push_back(Value::Int(s.count));  // partial count (hidden)
        }
      }
      out.partitions[p].push_back(std::move(row));
    }
  });

  // Stream aggregates deliver rows ordered on their chosen sort order.
  if (node.kind == PhysicalOpKind::kStreamAgg && !node.sort_spec.Empty()) {
    std::vector<int> positions = out.schema.PositionsOf(node.sort_spec.cols);
    RunPartitions(out.partitions.size(),
                  [&](size_t p) { SortRows(&out.partitions[p], positions); });
  }
  return out;
}

Result<PartitionedData> Executor::EvalJoin(const PhysicalNode& node,
                                           PartitionedData left,
                                           PartitionedData right,
                                           ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  if (left.partitions.size() != right.partitions.size()) {
    return Status::ExecutionError(
        "join inputs have different partition counts (" +
        std::to_string(left.partitions.size()) + " vs " +
        std::to_string(right.partitions.size()) + ")");
  }
  std::vector<int> lpos, rpos;
  for (const auto& [l, r] : proto.join_keys) {
    lpos.push_back(left.schema.PositionOf(l));
    rpos.push_back(right.schema.PositionOf(r));
  }
  PartitionedData out;
  out.schema = proto.schema();
  out.partitions.resize(left.partitions.size());

  const bool batched = batch_size_ > 1;
  const size_t nlschema = left.schema.columns().size();
  const size_t nrschema = right.schema.columns().size();
  if (batched) {
    metrics->batches_evaluated += CountBatches(right, batch_size_) +
                                  CountBatches(left, batch_size_);
  }

  RunPartitions(left.partitions.size(), [&](size_t p) {
    const std::vector<Row>& build = right.partitions[p];
    RowKeyTable table(build.size());
    std::vector<std::vector<const Row*>> rows_by_key;
    // Emits the joined rows of probe row `l` against build group `id`,
    // applying the residual predicates — shared by both paths.
    auto emit = [&](const Row& l, size_t id) {
      for (const Row* r : rows_by_key[id]) {
        Row joined = l;
        joined.insert(joined.end(), r->begin(), r->end());
        bool pass = true;
        for (const BoundPredicate& pred : proto.predicates) {
          if (!pred.Evaluate(joined, out.schema)) {
            pass = false;
            break;
          }
        }
        if (pass) out.partitions[p].push_back(std::move(joined));
      }
    };
    if (batched) {
      // Batched path: hash whole key columns of the build and probe sides
      // per chunk; ids, probe order, and emitted row order all match the
      // legacy per-row loops exactly.
      std::vector<uint64_t> hashes;
      for (size_t begin = 0; begin < build.size(); begin += batch_size_) {
        size_t end = std::min(build.size(), begin + batch_size_);
        ColumnBatch batch = BatchFromRows(build, begin, end, nrschema, rpos);
        HashColumns(batch, rpos, &hashes);
        for (size_t r = 0; r < batch.rows; ++r) {
          auto [id, inserted] = table.FindOrInsertHashed(
              hashes[r],
              [&](const Row& key) {
                for (size_t j = 0; j < rpos.size(); ++j) {
                  if (!batch.col(rpos[j]).CellEquals(r, key[j])) return false;
                }
                return true;
              },
              [&] {
                Row key;
                key.reserve(rpos.size());
                for (int rp : rpos) key.push_back(batch.col(rp).ValueAt(r));
                return key;
              });
          if (inserted) rows_by_key.emplace_back();
          rows_by_key[id].push_back(&build[begin + r]);
        }
      }
      const std::vector<Row>& probe = left.partitions[p];
      for (size_t begin = 0; begin < probe.size(); begin += batch_size_) {
        size_t end = std::min(probe.size(), begin + batch_size_);
        ColumnBatch batch = BatchFromRows(probe, begin, end, nlschema, lpos);
        HashColumns(batch, lpos, &hashes);
        for (size_t i = 0; i < batch.rows; ++i) {
          size_t id = table.FindHashed(hashes[i], [&](const Row& key) {
            for (size_t j = 0; j < lpos.size(); ++j) {
              if (!batch.col(lpos[j]).CellEquals(i, key[j])) return false;
            }
            return true;
          });
          if (id == RowKeyTable::kNotFound) continue;
          emit(probe[begin + i], id);
        }
      }
      return;
    }
    for (const Row& r : build) {
      auto [id, inserted] = table.FindOrInsert(r, rpos);
      if (inserted) rows_by_key.emplace_back();
      rows_by_key[id].push_back(&r);
    }
    for (const Row& l : left.partitions[p]) {
      size_t id = table.Find(l, lpos);
      if (id == RowKeyTable::kNotFound) continue;
      emit(l, id);
    }
  });
  return out;
}

PartitionedData Executor::Exchange(const PhysicalNode& node,
                                   PartitionedData in, ExecMetrics* metrics,
                                   bool preserve_order) {
  size_t machines = static_cast<size_t>(cluster_.machines);
  std::vector<int> positions =
      in.schema.PositionsOf(node.exchange_cols.ToVector());
  const size_t nschema = in.schema.columns().size();
  metrics->bytes_shuffled += in.TotalBytes();
  metrics->rows_shuffled += in.TotalRows();
  const bool batched = batch_size_ > 1;
  if (batched) metrics->batches_evaluated += CountBatches(in, batch_size_);
  PartitionedData out = ScatterByDest(
      std::move(in),
      [&](const std::vector<Row>& rows, std::vector<uint32_t>* dest) {
        if (!batched) {
          for (size_t i = 0; i < rows.size(); ++i) {
            (*dest)[i] = static_cast<uint32_t>(HashRowKey(rows[i], positions) %
                                               machines);
          }
          return;
        }
        // Batched key hashing: hash whole key columns per chunk; the
        // per-row HashCombine chain is HashRowKey's exactly.
        std::vector<uint64_t> hashes;
        for (size_t begin = 0; begin < rows.size(); begin += batch_size_) {
          size_t end = std::min(rows.size(), begin + batch_size_);
          ColumnBatch batch =
              BatchFromRows(rows, begin, end, nschema, positions);
          HashColumns(batch, positions, &hashes);
          for (size_t i = 0; i < batch.rows; ++i) {
            (*dest)[begin + i] = static_cast<uint32_t>(hashes[i] % machines);
          }
        }
      });
  if (preserve_order && !node.delivered.sort.Empty()) {
    std::vector<int> sort_pos =
        out.schema.PositionsOf(node.delivered.sort.cols);
    RunPartitions(out.partitions.size(),
                  [&](size_t p) { SortRows(&out.partitions[p], sort_pos); });
  }
  return out;
}

}  // namespace scx
