#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "exec/exec_detail.h"
#include "exec/row_key_table.h"
#include "exec/spool_cache.h"

namespace scx {

int64_t PartitionedData::TotalRows() const {
  int64_t n = 0;
  for (const auto& p : partitions) n += static_cast<int64_t>(p.size());
  return n;
}

int64_t PartitionedData::TotalBytes() const {
  int64_t n = 0;
  for (const auto& p : partitions) {
    for (const Row& r : p) {
      for (const Value& v : r) n += v.ByteWidth();
    }
  }
  return n;
}

std::vector<Row> PartitionedData::Gathered() const {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(TotalRows()));
  for (const auto& p : partitions) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Row> PartitionedData::TakeGathered() {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(TotalRows()));
  for (auto& p : partitions) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
    p.clear();
  }
  return out;
}

std::vector<Row> CanonicalRows(const std::vector<Row>& rows) {
  std::vector<Row> out;
  out.reserve(rows.size());
  out.insert(out.end(), rows.begin(), rows.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Row> CanonicalRows(std::vector<Row>&& rows) {
  std::sort(rows.begin(), rows.end());
  return std::move(rows);
}

std::map<std::string, std::vector<Row>> CanonicalOutputs(
    const ExecMetrics& m) {
  std::map<std::string, std::vector<Row>> out;
  for (const auto& [path, rows] : m.outputs) {
    out.emplace(path, CanonicalRows(rows));
  }
  return out;
}

bool SameOutputs(const ExecMetrics& a, const ExecMetrics& b) {
  return CanonicalOutputs(a) == CanonicalOutputs(b);
}

std::string ExecMetricsToJson(const ExecMetrics& m) {
  std::ostringstream os;
  os << "{\"rows_extracted\":" << m.rows_extracted
     << ",\"bytes_extracted\":" << m.bytes_extracted
     << ",\"rows_shuffled\":" << m.rows_shuffled
     << ",\"bytes_shuffled\":" << m.bytes_shuffled
     << ",\"bytes_spooled\":" << m.bytes_spooled
     << ",\"rows_spooled\":" << m.rows_spooled
     << ",\"spool_executions\":" << m.spool_executions
     << ",\"spool_reads\":" << m.spool_reads
     << ",\"spool_cache_hits\":" << m.spool_cache_hits
     << ",\"cross_query_spool_hits\":" << m.cross_query_spool_hits
     << ",\"spool_bytes_evicted\":" << m.spool_bytes_evicted
     << ",\"operator_invocations\":" << m.operator_invocations
     << ",\"rows_output\":" << m.rows_output
     << ",\"batches_evaluated\":" << m.batches_evaluated
     << ",\"exprs_deduped\":" << m.exprs_deduped
     << ",\"rows_converted\":" << m.rows_converted
     << ",\"batch_pipeline_breaks\":" << m.batch_pipeline_breaks
     << ",\"morsels_evaluated\":" << m.morsels_evaluated
     << ",\"morsel_steal_count\":" << m.morsel_steal_count
     << ",\"machine_failures_injected\":" << m.machine_failures_injected
     << ",\"partitions_recovered\":" << m.partitions_recovered
     << ",\"rows_recomputed\":" << m.rows_recomputed
     << ",\"recovery_spool_hits\":" << m.recovery_spool_hits
     << ",\"recovery_bytes_moved\":" << m.recovery_bytes_moved
     << ",\"sim_makespan_ticks\":" << m.sim_makespan_ticks << "}";
  return os.str();
}

namespace exec_detail {

Value SyntheticValue(const FileDef& file, int col_index, int64_t row_index) {
  const ColumnStats& cs = file.columns[static_cast<size_t>(col_index)];
  uint64_t h = Mix64(file.data_seed ^
                     (static_cast<uint64_t>(col_index) + 1) *
                         0x9e3779b97f4a7c15ULL ^
                     static_cast<uint64_t>(row_index));
  uint64_t domain = static_cast<uint64_t>(std::max<int64_t>(1, cs.distinct_count));
  uint64_t k = h % domain;
  if (cs.skew_alpha > 0) {
    // Power-law draw: key floor(domain * u^(1+alpha)) for u uniform in
    // [0, 1) — low keys are hot, and hotter the larger alpha. alpha == 0
    // keeps the exact legacy modulo draw above (bit-identity for every
    // pre-existing catalog).
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    double scaled =
        std::pow(u, 1.0 + cs.skew_alpha) * static_cast<double>(domain);
    k = std::min(domain - 1, static_cast<uint64_t>(scaled));
  }
  switch (cs.type) {
    case DataType::kInt64:
      return Value::Int(static_cast<int64_t>(k) + 1);
    case DataType::kDouble:
      return Value::Real(static_cast<double>(k) * 0.5);
    case DataType::kString:
      return Value::Str("v" + std::to_string(k));
  }
  return Value::Int(0);
}

Value FinalizeAggCell(const AggregateDesc& a, const AggState& s, bool global,
                      bool local) {
  if (global) {
    switch (a.fn) {
      case AggFn::kSum:
      case AggFn::kCount:
        if (a.out_type == DataType::kDouble) {
          return Value::Real(s.dsum);
        }
        return Value::Int(s.isum);
      case AggFn::kMin:
        return s.minv;
      case AggFn::kMax:
        return s.maxv;
      case AggFn::kAvg:
        return Value::Real(
            s.count > 0 ? s.dsum / static_cast<double>(s.count) : 0);
    }
    return Value::Int(0);
  }
  switch (a.fn) {
    case AggFn::kSum:
      if (a.out_type == DataType::kDouble) {
        return Value::Real(s.dsum);
      }
      return Value::Int(s.isum);
    case AggFn::kCount:
      return Value::Int(s.count);
    case AggFn::kMin:
      return s.minv;
    case AggFn::kMax:
      return s.maxv;
    case AggFn::kAvg:
      if (local) {
        return Value::Real(s.dsum);  // partial sum (out)
      }
      return Value::Real(
          s.count > 0 ? s.dsum / static_cast<double>(s.count) : 0);
  }
  return Value::Int(0);
}

}  // namespace exec_detail

namespace {

using exec_detail::AggState;
using exec_detail::FinalizeAggCell;
using exec_detail::SyntheticValue;

/// Sorts rows in place by the given column positions (all ascending).
void SortRows(std::vector<Row>* rows, const std::vector<int>& positions) {
  std::sort(rows->begin(), rows->end(), [&](const Row& a, const Row& b) {
    for (int p : positions) {
      auto c = a[static_cast<size_t>(p)] <=> b[static_cast<size_t>(p)];
      if (c != 0) return c < 0;
    }
    return false;
  });
}

}  // namespace

void Executor::RunPartitions(size_t n, const std::function<void(size_t)>& fn) {
  if (threads_ <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<WorkerPool>(threads_);
  pool_->Run(n, fn);
}

void Executor::RunMorsels(const std::vector<size_t>& live, ExecMetrics* metrics,
                          const std::function<void(size_t, size_t, size_t)>& fn) {
  struct MorselJob {
    size_t part, begin, end;
  };
  std::vector<MorselJob> jobs;
  size_t nonempty = 0;
  for (size_t p = 0; p < live.size(); ++p) {
    if (live[p] == 0) continue;
    ++nonempty;
    for (size_t b = 0; b < live[p]; b += morsel_size_) {
      jobs.push_back({p, b, std::min(live[p], b + morsel_size_)});
    }
  }
  // Both counters depend on `live` and morsel_size_ only, never on the
  // thread count or execution order.
  metrics->morsels_evaluated += static_cast<int64_t>(jobs.size());
  metrics->morsel_steal_count += static_cast<int64_t>(jobs.size() - nonempty);
  RunPartitions(jobs.size(), [&](size_t j) {
    const MorselJob& job = jobs[j];
    fn(job.part, job.begin, job.end);
  });
}

Result<ExecMetrics> Executor::Execute(const PhysicalNodePtr& plan) {
  ExecMetrics metrics;
  spool_meta_.clear();
  run_spool_bytes_ = 0;
  spool_seq_ = 0;
  spool_budget_ = ResolveSpoolBudget(cluster_.spool_cache_bytes);
  fault_enabled_ = cluster_.fault_plan.Enabled();
  in_recovery_ = false;
  recovery_overlay_.clear();
  recovery_batch_overlay_.clear();
  if (batch_size_ > 1) {
    batch_spool_cache_.clear();
    SCX_ASSIGN_OR_RETURN(BatchData ignored, EvalBatch(plan, &metrics));
    (void)ignored;
    return metrics;
  }
  spool_cache_.clear();
  SCX_ASSIGN_OR_RETURN(PartitionedData ignored, Eval(plan, &metrics));
  (void)ignored;
  return metrics;
}

SpoolCacheKey Executor::CrossKeyFor(const PhysicalNode& node,
                                    bool batch) const {
  SpoolCacheKey key;
  key.canon = CanonicalSubDagDescription(node.children[0]);
  key.catalog_version = catalog_version_;
  key.machines = cluster_.machines;
  key.batch = batch;
  return key;
}

void Executor::TrackSpoolInsert(const PhysicalNode* node, int64_t bytes,
                                ExecMetrics* metrics) {
  RunSpoolMeta meta;
  meta.bytes = bytes;
  meta.recompute_cost = DagCost(node->children[0]);
  meta.seq = spool_seq_++;
  run_spool_bytes_ += bytes;
  spool_meta_[node] = meta;
  // Evict the least valuable materializations until the budget holds. The
  // (benefit, seq) order is a strict total order (seq is unique), so the
  // victim choice does not depend on unordered_map iteration order.
  while (run_spool_bytes_ > spool_budget_ && !spool_meta_.empty()) {
    auto victim = spool_meta_.end();
    for (auto it = spool_meta_.begin(); it != spool_meta_.end(); ++it) {
      if (victim == spool_meta_.end()) {
        victim = it;
        continue;
      }
      double benefit = it->second.recompute_cost * (1.0 + it->second.reads);
      double best =
          victim->second.recompute_cost * (1.0 + victim->second.reads);
      if (benefit < best ||
          (benefit == best && it->second.seq < victim->second.seq)) {
        victim = it;
      }
    }
    run_spool_bytes_ -= victim->second.bytes;
    metrics->spool_bytes_evicted += victim->second.bytes;
    spool_cache_.erase(victim->first);
    batch_spool_cache_.erase(victim->first);
    spool_meta_.erase(victim);
  }
}

void Executor::TrackSpoolRead(const PhysicalNode* node) {
  auto it = spool_meta_.find(node);
  if (it != spool_meta_.end()) ++it->second.reads;
}

Result<PartitionedData> Executor::Eval(const PhysicalNodePtr& node,
                                       ExecMetrics* metrics) {
  if (!fault_enabled_ || in_recovery_) return EvalInner(node, metrics);
  // Pass ids are pre-order: the id EvalInner assigns to this node before it
  // descends into its children. Captured here so the failure decision never
  // depends on how many passes the children consumed.
  int64_t pass = metrics->operator_invocations + 1;
  SCX_ASSIGN_OR_RETURN(PartitionedData out, EvalInner(node, metrics));
  SCX_RETURN_IF_ERROR(InjectFaults(node, pass, &out, metrics));
  return out;
}

Status Executor::InjectFaults(const PhysicalNodePtr& node, int64_t pass,
                              PartitionedData* out, ExecMetrics* metrics) {
  const FaultPlan& plan = cluster_.fault_plan;
  // Simulated makespan of this pass: the slowest machine, with stragglers
  // running straggler_factor x slower. A function of the plan, the data and
  // the pass structure only — identical across threads and morsel sizes.
  int64_t slowest = 0;
  for (size_t m = 0; m < out->partitions.size(); ++m) {
    double ticks = static_cast<double>(out->partitions[m].size()) *
                   plan.StragglerMultiplier(static_cast<int>(m));
    slowest = std::max(slowest, static_cast<int64_t>(ticks));
  }
  metrics->sim_makespan_ticks += slowest;
  // Output has already moved its rows into the metrics sink and Sequence
  // carries no data: nothing a machine failure could lose.
  if (node->kind == PhysicalOpKind::kOutput ||
      node->kind == PhysicalOpKind::kSequence) {
    return Status();
  }
  for (size_t m = 0; m < out->partitions.size(); ++m) {
    if (!plan.FailsAt(pass, static_cast<int>(m))) continue;
    if (plan.max_failures > 0 &&
        metrics->machine_failures_injected >= plan.max_failures) {
      break;
    }
    ++metrics->machine_failures_injected;
    out->partitions[m].clear();  // the machine's output is gone
    SCX_RETURN_IF_ERROR(RecoverPartition(node, m, out, metrics));
  }
  return Status();
}

Status Executor::RecoverPartition(const PhysicalNodePtr& node, size_t m,
                                  PartitionedData* out, ExecMetrics* metrics) {
  const FaultPlan& plan = cluster_.fault_plan;
  ++metrics->partitions_recovered;
  if (node->kind == PhysicalOpKind::kSpool &&
      !plan.disable_recovery_spool_reads) {
    // The spool's materialization is durable storage: the failed machine
    // only lost its in-flight copy. Re-read the surviving spool — run-local
    // first, then the cross-query cache via a pinned zero-copy peek (the pin
    // keeps concurrent insertions from evicting the entry mid-read; no reuse
    // bump, so future eviction victims match the clean run).
    auto it = spool_cache_.find(node.get());
    if (it != spool_cache_.end() && m < it->second.partitions.size()) {
      out->partitions[m] = it->second.partitions[m];
      ++metrics->recovery_spool_hits;
      return Status();
    }
    if (cross_cache_ != nullptr) {
      CrossQuerySpoolCache::PinnedEntry pin =
          cross_cache_->Pin(CrossKeyFor(*node, /*batch=*/false));
      if (pin && m < pin.rows().partitions.size()) {
        out->partitions[m] = pin.rows().partitions[m];
        ++metrics->recovery_spool_hits;
        return Status();
      }
    }
  }
  // No surviving spool: deterministically recompute the lost sub-DAG.
  // Recovery mode is side-effect-free — scratch metrics, read-only spool
  // lookups, recomputed spools memoized in a recovery-local overlay — so
  // every legacy counter stays bit-identical to the clean run.
  ExecMetrics scratch;
  in_recovery_ = true;
  auto recomputed = EvalInner(node, &scratch);
  in_recovery_ = false;
  recovery_overlay_.clear();
  recovery_batch_overlay_.clear();
  if (!recomputed.ok()) return recomputed.status();
  metrics->rows_recomputed += recomputed->TotalRows();
  metrics->recovery_spool_hits += scratch.spool_cache_hits;
  metrics->recovery_bytes_moved += scratch.bytes_extracted +
                                   scratch.bytes_shuffled +
                                   scratch.bytes_spooled;
  if (m < recomputed->partitions.size()) {
    out->partitions[m] = std::move(recomputed->partitions[m]);
  }
  return Status();
}

Result<PartitionedData> Executor::RecoverySpoolRows(const PhysicalNodePtr& node,
                                                    ExecMetrics* scratch) {
  const bool allow_reads = !cluster_.fault_plan.disable_recovery_spool_reads;
  if (allow_reads) {
    auto it = spool_cache_.find(node.get());
    if (it != spool_cache_.end()) {
      ++scratch->spool_reads;
      ++scratch->spool_cache_hits;  // folded into recovery_spool_hits
      return it->second;
    }
  }
  auto ov = recovery_overlay_.find(node.get());
  if (ov != recovery_overlay_.end()) {
    ++scratch->spool_reads;
    return ov->second;
  }
  if (allow_reads && cross_cache_ != nullptr) {
    CrossQuerySpoolCache::PinnedEntry pin =
        cross_cache_->Pin(CrossKeyFor(*node, /*batch=*/false));
    if (pin) {
      ++scratch->spool_reads;
      ++scratch->spool_cache_hits;
      PartitionedData data = pin.rows();
      recovery_overlay_[node.get()] = data;
      return data;
    }
  }
  SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], scratch));
  recovery_overlay_[node.get()] = in;
  return in;
}

Result<PartitionedData> Executor::EvalInner(const PhysicalNodePtr& node,
                                            ExecMetrics* metrics) {
  ++metrics->operator_invocations;
  switch (node->kind) {
    case PhysicalOpKind::kExtract:
      return EvalExtract(*node, metrics);

    case PhysicalOpKind::kFilter: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = in.schema;
      out.partitions.resize(in.partitions.size());
      const std::vector<BoundPredicate>& preds = node->proto->predicates;
      RunPartitions(in.partitions.size(), [&](size_t p) {
        for (Row& r : in.partitions[p]) {
          bool pass = true;
          for (const BoundPredicate& pred : preds) {
            if (!pred.Evaluate(r, in.schema)) {
              pass = false;
              break;
            }
          }
          if (pass) out.partitions[p].push_back(std::move(r));
        }
      });
      return out;
    }

    case PhysicalOpKind::kProject: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(in.partitions.size());
      std::vector<int> positions;
      for (const auto& [src, dst] : node->proto->project_map) {
        (void)dst;
        positions.push_back(in.schema.PositionOf(src));
      }
      RunPartitions(in.partitions.size(), [&](size_t p) {
        out.partitions[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          Row projected;
          projected.reserve(positions.size());
          for (int pos : positions) {
            projected.push_back(r[static_cast<size_t>(pos)]);
          }
          out.partitions[p].push_back(std::move(projected));
        }
      });
      return out;
    }

    case PhysicalOpKind::kCompute: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(in.partitions.size());
      const auto& items = node->proto->compute_items;
      RunPartitions(in.partitions.size(), [&](size_t p) {
        out.partitions[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          Row computed;
          computed.reserve(items.size());
          for (const ComputeItem& item : items) {
            computed.push_back(item.expr->Evaluate(r, in.schema));
          }
          out.partitions[p].push_back(std::move(computed));
        }
      });
      return out;
    }

    case PhysicalOpKind::kHashAgg:
    case PhysicalOpKind::kStreamAgg: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return EvalAggregate(*node, std::move(in), metrics);
    }

    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin: {
      SCX_ASSIGN_OR_RETURN(PartitionedData l, Eval(node->children[0], metrics));
      SCX_ASSIGN_OR_RETURN(PartitionedData r, Eval(node->children[1], metrics));
      return EvalJoin(*node, std::move(l), std::move(r), metrics);
    }

    case PhysicalOpKind::kUnionAll: {
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      for (const PhysicalNodePtr& child : node->children) {
        SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(child, metrics));
        for (size_t p = 0; p < in.partitions.size(); ++p) {
          size_t dest = p % out.partitions.size();
          auto& sink = out.partitions[dest];
          sink.insert(sink.end(),
                      std::make_move_iterator(in.partitions[p].begin()),
                      std::make_move_iterator(in.partitions[p].end()));
        }
      }
      return out;
    }

    case PhysicalOpKind::kSpool: {
      // Recovery recomputation must not mutate spool bookkeeping (caches,
      // reuse counts, budget): reroute to the read-only recovery path.
      if (in_recovery_) return RecoverySpoolRows(node, metrics);
      auto it = spool_cache_.find(node.get());
      if (it != spool_cache_.end()) {
        ++metrics->spool_reads;
        ++metrics->spool_cache_hits;
        TrackSpoolRead(node.get());
        return it->second;
      }
      if (cross_cache_ != nullptr) {
        SpoolCacheKey key = CrossKeyFor(*node, /*batch=*/false);
        if (auto hit = cross_cache_->LookupRows(key)) {
          // Served by an earlier execution: no materialization work, no
          // bytes_spooled. Keep a run-local copy so sibling consumers stay
          // on the ordinary in-run path (and within the byte budget).
          ++metrics->spool_reads;
          ++metrics->spool_cache_hits;
          ++metrics->cross_query_spool_hits;
          PartitionedData data = std::move(*hit);
          spool_cache_[node.get()] = data;
          TrackSpoolInsert(node.get(), data.TotalBytes(), metrics);
          return data;
        }
      }
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      metrics->bytes_spooled += in.TotalBytes();
      metrics->rows_spooled += in.TotalRows();
      ++metrics->spool_executions;
      ++metrics->spool_reads;
      if (cross_cache_ != nullptr) {
        cross_cache_->InsertRows(CrossKeyFor(*node, /*batch=*/false), in,
                                 DagCost(node->children[0]),
                                 &metrics->spool_bytes_evicted);
      }
      spool_cache_[node.get()] = in;
      TrackSpoolInsert(node.get(), in.TotalBytes(), metrics);
      return in;
    }

    case PhysicalOpKind::kSpoolScan:
      // Rejected by ValidatePlan before execution; kept only so the
      // operator switch stays exhaustive.
      break;

    case PhysicalOpKind::kOutput: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      // Output is terminal — a Sequence child or the plan root — so its
      // data is never read again; move the rows into the sink.
      size_t machines = in.partitions.size();
      std::vector<Row> rows = in.TakeGathered();
      metrics->rows_output += static_cast<int64_t>(rows.size());
      auto& sink = metrics->outputs[node->proto->output_path];
      sink.insert(sink.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
      PartitionedData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(machines);
      return out;
    }

    case PhysicalOpKind::kSequence: {
      for (const PhysicalNodePtr& c : node->children) {
        SCX_ASSIGN_OR_RETURN(PartitionedData ignored, Eval(c, metrics));
        (void)ignored;
      }
      PartitionedData out;
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      return out;
    }

    case PhysicalOpKind::kHashExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return Exchange(*node, std::move(in), metrics, /*preserve_order=*/false);
    }
    case PhysicalOpKind::kMergeExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return Exchange(*node, std::move(in), metrics, /*preserve_order=*/true);
    }

    case PhysicalOpKind::kRangeExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      std::vector<int> positions = in.schema.PositionsOf(
          node->delivered.partitioning.range_cols);
      // Boundary computation by exact quantiles over the key multiset —
      // the simulation stand-in for SCOPE's sampling pass.
      std::vector<std::vector<std::vector<Value>>> part_keys(
          in.partitions.size());
      RunPartitions(in.partitions.size(), [&](size_t p) {
        part_keys[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          std::vector<Value> key;
          key.reserve(positions.size());
          for (int pos : positions) key.push_back(r[static_cast<size_t>(pos)]);
          part_keys[p].push_back(std::move(key));
        }
      });
      std::vector<std::vector<Value>> keys;
      keys.reserve(static_cast<size_t>(in.TotalRows()));
      for (auto& pk : part_keys) {
        keys.insert(keys.end(), std::make_move_iterator(pk.begin()),
                    std::make_move_iterator(pk.end()));
      }
      std::sort(keys.begin(), keys.end());
      std::vector<std::vector<Value>> boundaries;
      for (size_t i = 1; i < machines && !keys.empty(); ++i) {
        boundaries.push_back(keys[i * keys.size() / machines]);
      }
      metrics->bytes_shuffled += in.TotalBytes();
      metrics->rows_shuffled += in.TotalRows();
      return ScatterByDest(
          std::move(in),
          [&](const std::vector<Row>& rows, std::vector<uint32_t>* dest) {
            for (size_t i = 0; i < rows.size(); ++i) {
              std::vector<Value> key;
              key.reserve(positions.size());
              for (int pos : positions) {
                key.push_back(rows[i][static_cast<size_t>(pos)]);
              }
              (*dest)[i] = static_cast<uint32_t>(
                  std::upper_bound(boundaries.begin(), boundaries.end(),
                                   key) -
                  boundaries.begin());
            }
          });
    }

    case PhysicalOpKind::kBroadcastExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      metrics->bytes_shuffled +=
          in.TotalBytes() * static_cast<int64_t>(machines);
      metrics->rows_shuffled +=
          in.TotalRows() * static_cast<int64_t>(machines);
      std::vector<Row> all = in.TakeGathered();
      PartitionedData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(machines);
      RunPartitions(machines - 1, [&](size_t m) {
        out.partitions[m] = all;
      });
      out.partitions[machines - 1] = std::move(all);
      return out;
    }

    case PhysicalOpKind::kGather: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      metrics->bytes_shuffled += in.TotalBytes();
      metrics->rows_shuffled += in.TotalRows();
      PartitionedData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(1);
      out.partitions[0] = in.TakeGathered();
      if (!node->delivered.sort.Empty()) {
        SortRows(&out.partitions[0],
                 out.schema.PositionsOf(node->delivered.sort.cols));
      }
      return out;
    }

    case PhysicalOpKind::kSort: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      std::vector<int> positions =
          in.schema.PositionsOf(node->sort_spec.cols);
      RunPartitions(in.partitions.size(),
                    [&](size_t p) { SortRows(&in.partitions[p], positions); });
      return in;
    }
  }
  return Status::Internal("unhandled physical operator " +
                          std::string(PhysicalOpKindName(node->kind)));
}

Result<PartitionedData> Executor::EvalExtract(const PhysicalNode& node,
                                              ExecMetrics* metrics) {
  const FileDef& file = node.proto->file;
  PartitionedData out;
  out.schema = node.proto->schema();
  size_t machines = static_cast<size_t>(cluster_.machines);
  out.partitions.resize(machines);

  std::vector<int> file_cols;
  for (const ColumnInfo& c : out.schema.columns()) {
    int idx = file.ColumnIndex(c.name);
    if (idx < 0) {
      return Status::ExecutionError("extract column " + c.name +
                                    " missing from file " + file.path);
    }
    file_cols.push_back(idx);
  }
  // Row i lands on machine i % machines, so machine m independently
  // synthesizes rows m, m + machines, ... — the same per-partition row
  // order as the serial round-robin loop.
  int64_t rows = file.row_count;
  RunPartitions(machines, [&](size_t m) {
    std::vector<Row>& part = out.partitions[m];
    if (static_cast<int64_t>(m) >= rows) return;
    part.reserve(static_cast<size_t>(
        (rows - static_cast<int64_t>(m) + static_cast<int64_t>(machines) - 1) /
        static_cast<int64_t>(machines)));
    for (int64_t i = static_cast<int64_t>(m); i < rows;
         i += static_cast<int64_t>(machines)) {
      Row row;
      row.reserve(file_cols.size());
      for (int idx : file_cols) {
        row.push_back(SyntheticValue(file, idx, i));
      }
      part.push_back(std::move(row));
    }
  });
  metrics->rows_extracted += rows;
  metrics->bytes_extracted += out.TotalBytes();
  return out;
}

Result<PartitionedData> Executor::EvalAggregate(const PhysicalNode& node,
                                                PartitionedData in,
                                                ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  const bool local = proto.kind() == LogicalOpKind::kLocalGbAgg;
  const bool global = proto.kind() == LogicalOpKind::kGlobalGbAgg;
  (void)metrics;

  std::vector<int> group_pos = in.schema.PositionsOf(proto.group_cols);
  struct AggIo {
    int arg_pos = -1;
    int hidden_pos = -1;  // global-Avg partial-count input
  };
  const size_t naggs = proto.aggregates.size();
  std::vector<AggIo> io(naggs);
  for (size_t i = 0; i < naggs; ++i) {
    const AggregateDesc& a = proto.aggregates[i];
    if (!a.count_star) io[i].arg_pos = in.schema.PositionOf(a.arg);
    if (global && a.fn == AggFn::kAvg && a.hidden_count != 0) {
      io[i].hidden_pos = in.schema.PositionOf(a.hidden_count);
    }
  }

  PartitionedData out;
  out.schema = proto.schema();
  out.partitions.resize(in.partitions.size());

  RunPartitions(in.partitions.size(), [&](size_t p) {
    const std::vector<Row>& rows = in.partitions[p];
    // Pre-sized for the worst case (all keys distinct): no rehash ever.
    RowKeyTable table(rows.size());
    std::vector<AggState> states;  // naggs states per group, group-major
    for (const Row& r : rows) {
      auto [id, inserted] = table.FindOrInsert(r, group_pos);
      if (inserted) states.resize(states.size() + naggs);
      AggState* group_states = &states[id * naggs];
      for (size_t i = 0; i < naggs; ++i) {
        const AggregateDesc& a = proto.aggregates[i];
        AggState& s = group_states[i];
        if (global) {
          // Merge partial states: Sum/Count partials are summed (fn was
          // rewritten to kSum by the split rule); Min/Max fold; Avg sums
          // the partial sums and the partial counts.
          const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
          switch (a.fn) {
            case AggFn::kSum:
              if (v.is_int()) {
                s.isum += v.as_int();
              } else {
                s.dsum += v.AsNumeric();
              }
              break;
            case AggFn::kMin:
              if (!s.seen || v < s.minv) s.minv = v;
              break;
            case AggFn::kMax:
              if (!s.seen || v > s.maxv) s.maxv = v;
              break;
            case AggFn::kAvg: {
              s.dsum += v.AsNumeric();
              s.count +=
                  r[static_cast<size_t>(io[i].hidden_pos)].as_int();
              break;
            }
            case AggFn::kCount:
              s.isum += v.as_int();
              break;
          }
          s.seen = true;
          continue;
        }
        // Full or local aggregation over raw rows.
        switch (a.fn) {
          case AggFn::kSum: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (v.is_int()) {
              s.isum += v.as_int();
            } else {
              s.dsum += v.AsNumeric();
            }
            break;
          }
          case AggFn::kCount:
            ++s.count;
            break;
          case AggFn::kMin: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (!s.seen || v < s.minv) s.minv = v;
            break;
          }
          case AggFn::kMax: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (!s.seen || v > s.maxv) s.maxv = v;
            break;
          }
          case AggFn::kAvg: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            s.dsum += v.AsNumeric();
            ++s.count;
            break;
          }
        }
        s.seen = true;
      }
    }

    out.partitions[p].reserve(table.size());
    for (size_t id = 0; id < table.size(); ++id) {
      Row row = table.KeyAt(id);
      const AggState* group_states = &states[id * naggs];
      for (size_t i = 0; i < naggs; ++i) {
        const AggregateDesc& a = proto.aggregates[i];
        const AggState& s = group_states[i];
        row.push_back(FinalizeAggCell(a, s, global, local));
        if (!global && local && a.hidden_count != 0) {
          row.push_back(Value::Int(s.count));  // partial count (hidden)
        }
      }
      out.partitions[p].push_back(std::move(row));
    }
  });

  // Stream aggregates deliver rows ordered on their chosen sort order.
  if (node.kind == PhysicalOpKind::kStreamAgg && !node.sort_spec.Empty()) {
    std::vector<int> positions = out.schema.PositionsOf(node.sort_spec.cols);
    RunPartitions(out.partitions.size(),
                  [&](size_t p) { SortRows(&out.partitions[p], positions); });
  }
  return out;
}

Result<PartitionedData> Executor::EvalJoin(const PhysicalNode& node,
                                           PartitionedData left,
                                           PartitionedData right,
                                           ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  (void)metrics;
  if (left.partitions.size() != right.partitions.size()) {
    return Status::ExecutionError(
        "join inputs have different partition counts (" +
        std::to_string(left.partitions.size()) + " vs " +
        std::to_string(right.partitions.size()) + ")");
  }
  std::vector<int> lpos, rpos;
  for (const auto& [l, r] : proto.join_keys) {
    lpos.push_back(left.schema.PositionOf(l));
    rpos.push_back(right.schema.PositionOf(r));
  }
  PartitionedData out;
  out.schema = proto.schema();
  out.partitions.resize(left.partitions.size());

  RunPartitions(left.partitions.size(), [&](size_t p) {
    const std::vector<Row>& build = right.partitions[p];
    RowKeyTable table(build.size());
    std::vector<std::vector<const Row*>> rows_by_key;
    // Emits the joined rows of probe row `l` against build group `id`,
    // applying the residual predicates.
    auto emit = [&](const Row& l, size_t id) {
      for (const Row* r : rows_by_key[id]) {
        Row joined = l;
        joined.insert(joined.end(), r->begin(), r->end());
        bool pass = true;
        for (const BoundPredicate& pred : proto.predicates) {
          if (!pred.Evaluate(joined, out.schema)) {
            pass = false;
            break;
          }
        }
        if (pass) out.partitions[p].push_back(std::move(joined));
      }
    };
    for (const Row& r : build) {
      auto [id, inserted] = table.FindOrInsert(r, rpos);
      if (inserted) rows_by_key.emplace_back();
      rows_by_key[id].push_back(&r);
    }
    for (const Row& l : left.partitions[p]) {
      size_t id = table.Find(l, lpos);
      if (id == RowKeyTable::kNotFound) continue;
      emit(l, id);
    }
  });
  return out;
}

PartitionedData Executor::Exchange(const PhysicalNode& node,
                                   PartitionedData in, ExecMetrics* metrics,
                                   bool preserve_order) {
  size_t machines = static_cast<size_t>(cluster_.machines);
  std::vector<int> positions =
      in.schema.PositionsOf(node.exchange_cols.ToVector());
  metrics->bytes_shuffled += in.TotalBytes();
  metrics->rows_shuffled += in.TotalRows();
  PartitionedData out = ScatterByDest(
      std::move(in),
      [&](const std::vector<Row>& rows, std::vector<uint32_t>* dest) {
        for (size_t i = 0; i < rows.size(); ++i) {
          (*dest)[i] = static_cast<uint32_t>(HashRowKey(rows[i], positions) %
                                             machines);
        }
      });
  if (preserve_order && !node.delivered.sort.Empty()) {
    std::vector<int> sort_pos =
        out.schema.PositionsOf(node.delivered.sort.cols);
    RunPartitions(out.partitions.size(),
                  [&](size_t p) { SortRows(&out.partitions[p], sort_pos); });
  }
  return out;
}

}  // namespace scx
